# Empty dependencies file for bench_fig12_oft_adaptive_th.
# This may be replaced when dependencies are built.
