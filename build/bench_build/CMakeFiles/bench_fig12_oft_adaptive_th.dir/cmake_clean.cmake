file(REMOVE_RECURSE
  "../bench/bench_fig12_oft_adaptive_th"
  "../bench/bench_fig12_oft_adaptive_th.pdb"
  "CMakeFiles/bench_fig12_oft_adaptive_th.dir/bench_fig12_oft_adaptive_th.cpp.o"
  "CMakeFiles/bench_fig12_oft_adaptive_th.dir/bench_fig12_oft_adaptive_th.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_oft_adaptive_th.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
