file(REMOVE_RECURSE
  "../bench/bench_ablation_a2a_schedule"
  "../bench/bench_ablation_a2a_schedule.pdb"
  "CMakeFiles/bench_ablation_a2a_schedule.dir/bench_ablation_a2a_schedule.cpp.o"
  "CMakeFiles/bench_ablation_a2a_schedule.dir/bench_ablation_a2a_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_a2a_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
