# Empty dependencies file for bench_fig8_sf_adaptive_th.
# This may be replaced when dependencies are built.
