file(REMOVE_RECURSE
  "../bench/bench_ablation_analytic"
  "../bench/bench_ablation_analytic.pdb"
  "CMakeFiles/bench_ablation_analytic.dir/bench_ablation_analytic.cpp.o"
  "CMakeFiles/bench_ablation_analytic.dir/bench_ablation_analytic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
