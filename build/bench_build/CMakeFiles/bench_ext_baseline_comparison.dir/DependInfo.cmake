
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_baseline_comparison.cpp" "bench_build/CMakeFiles/bench_ext_baseline_comparison.dir/bench_ext_baseline_comparison.cpp.o" "gcc" "bench_build/CMakeFiles/bench_ext_baseline_comparison.dir/bench_ext_baseline_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/d2net_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/d2net_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/d2net_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/d2net_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/d2net_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/d2net_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/d2net_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/d2net_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
