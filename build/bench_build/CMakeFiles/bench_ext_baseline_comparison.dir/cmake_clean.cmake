file(REMOVE_RECURSE
  "../bench/bench_ext_baseline_comparison"
  "../bench/bench_ext_baseline_comparison.pdb"
  "CMakeFiles/bench_ext_baseline_comparison.dir/bench_ext_baseline_comparison.cpp.o"
  "CMakeFiles/bench_ext_baseline_comparison.dir/bench_ext_baseline_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
