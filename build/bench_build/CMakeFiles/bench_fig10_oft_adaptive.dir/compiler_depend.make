# Empty compiler generated dependencies file for bench_fig10_oft_adaptive.
# This may be replaced when dependencies are built.
