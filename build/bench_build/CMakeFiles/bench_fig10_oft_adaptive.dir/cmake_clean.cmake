file(REMOVE_RECURSE
  "../bench/bench_fig10_oft_adaptive"
  "../bench/bench_fig10_oft_adaptive.pdb"
  "CMakeFiles/bench_fig10_oft_adaptive.dir/bench_fig10_oft_adaptive.cpp.o"
  "CMakeFiles/bench_fig10_oft_adaptive.dir/bench_fig10_oft_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_oft_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
