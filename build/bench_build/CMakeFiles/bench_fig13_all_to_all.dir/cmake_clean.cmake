file(REMOVE_RECURSE
  "../bench/bench_fig13_all_to_all"
  "../bench/bench_fig13_all_to_all.pdb"
  "CMakeFiles/bench_fig13_all_to_all.dir/bench_fig13_all_to_all.cpp.o"
  "CMakeFiles/bench_fig13_all_to_all.dir/bench_fig13_all_to_all.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_all_to_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
