file(REMOVE_RECURSE
  "../bench/bench_fig7_sf_adaptive"
  "../bench/bench_fig7_sf_adaptive.pdb"
  "CMakeFiles/bench_fig7_sf_adaptive.dir/bench_fig7_sf_adaptive.cpp.o"
  "CMakeFiles/bench_fig7_sf_adaptive.dir/bench_fig7_sf_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sf_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
