# Empty dependencies file for bench_fig11_mlfm_adaptive_th.
# This may be replaced when dependencies are built.
