# Empty compiler generated dependencies file for bench_fig9_mlfm_adaptive.
# This may be replaced when dependencies are built.
