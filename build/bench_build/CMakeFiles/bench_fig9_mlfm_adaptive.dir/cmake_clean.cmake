file(REMOVE_RECURSE
  "../bench/bench_fig9_mlfm_adaptive"
  "../bench/bench_fig9_mlfm_adaptive.pdb"
  "CMakeFiles/bench_fig9_mlfm_adaptive.dir/bench_fig9_mlfm_adaptive.cpp.o"
  "CMakeFiles/bench_fig9_mlfm_adaptive.dir/bench_fig9_mlfm_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mlfm_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
