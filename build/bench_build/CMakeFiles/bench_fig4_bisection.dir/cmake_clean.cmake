file(REMOVE_RECURSE
  "../bench/bench_fig4_bisection"
  "../bench/bench_fig4_bisection.pdb"
  "CMakeFiles/bench_fig4_bisection.dir/bench_fig4_bisection.cpp.o"
  "CMakeFiles/bench_fig4_bisection.dir/bench_fig4_bisection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
