# Empty compiler generated dependencies file for bench_table2_ml3b.
# This may be replaced when dependencies are built.
