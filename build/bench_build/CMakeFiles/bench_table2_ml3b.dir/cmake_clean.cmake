file(REMOVE_RECURSE
  "../bench/bench_table2_ml3b"
  "../bench/bench_table2_ml3b.pdb"
  "CMakeFiles/bench_table2_ml3b.dir/bench_table2_ml3b.cpp.o"
  "CMakeFiles/bench_table2_ml3b.dir/bench_table2_ml3b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ml3b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
