# Empty dependencies file for d2net_bench_common.
# This may be replaced when dependencies are built.
