file(REMOVE_RECURSE
  "CMakeFiles/d2net_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/d2net_bench_common.dir/bench_common.cpp.o.d"
  "libd2net_bench_common.a"
  "libd2net_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
