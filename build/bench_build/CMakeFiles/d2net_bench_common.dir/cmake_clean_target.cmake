file(REMOVE_RECURSE
  "libd2net_bench_common.a"
)
