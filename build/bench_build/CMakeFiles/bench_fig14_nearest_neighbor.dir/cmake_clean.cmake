file(REMOVE_RECURSE
  "../bench/bench_fig14_nearest_neighbor"
  "../bench/bench_fig14_nearest_neighbor.pdb"
  "CMakeFiles/bench_fig14_nearest_neighbor.dir/bench_fig14_nearest_neighbor.cpp.o"
  "CMakeFiles/bench_fig14_nearest_neighbor.dir/bench_fig14_nearest_neighbor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nearest_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
