# Empty compiler generated dependencies file for bench_fig14_nearest_neighbor.
# This may be replaced when dependencies are built.
