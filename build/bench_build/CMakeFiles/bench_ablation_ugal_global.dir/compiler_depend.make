# Empty compiler generated dependencies file for bench_ablation_ugal_global.
# This may be replaced when dependencies are built.
