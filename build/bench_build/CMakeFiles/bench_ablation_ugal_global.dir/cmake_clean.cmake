file(REMOVE_RECURSE
  "../bench/bench_ablation_ugal_global"
  "../bench/bench_ablation_ugal_global.pdb"
  "CMakeFiles/bench_ablation_ugal_global.dir/bench_ablation_ugal_global.cpp.o"
  "CMakeFiles/bench_ablation_ugal_global.dir/bench_ablation_ugal_global.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ugal_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
