file(REMOVE_RECURSE
  "../bench/bench_fig6_oblivious"
  "../bench/bench_fig6_oblivious.pdb"
  "CMakeFiles/bench_fig6_oblivious.dir/bench_fig6_oblivious.cpp.o"
  "CMakeFiles/bench_fig6_oblivious.dir/bench_fig6_oblivious.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
