file(REMOVE_RECURSE
  "libd2net_topology.a"
)
