# Empty compiler generated dependencies file for d2net_topology.
# This may be replaced when dependencies are built.
