
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cost_model.cpp" "src/topology/CMakeFiles/d2net_topology.dir/cost_model.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/cost_model.cpp.o.d"
  "/root/repo/src/topology/degrade.cpp" "src/topology/CMakeFiles/d2net_topology.dir/degrade.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/degrade.cpp.o.d"
  "/root/repo/src/topology/dragonfly.cpp" "src/topology/CMakeFiles/d2net_topology.dir/dragonfly.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/dragonfly.cpp.o.d"
  "/root/repo/src/topology/fat_tree.cpp" "src/topology/CMakeFiles/d2net_topology.dir/fat_tree.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/fat_tree.cpp.o.d"
  "/root/repo/src/topology/hyperx.cpp" "src/topology/CMakeFiles/d2net_topology.dir/hyperx.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/hyperx.cpp.o.d"
  "/root/repo/src/topology/io.cpp" "src/topology/CMakeFiles/d2net_topology.dir/io.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/io.cpp.o.d"
  "/root/repo/src/topology/mlfm.cpp" "src/topology/CMakeFiles/d2net_topology.dir/mlfm.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/mlfm.cpp.o.d"
  "/root/repo/src/topology/oft.cpp" "src/topology/CMakeFiles/d2net_topology.dir/oft.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/oft.cpp.o.d"
  "/root/repo/src/topology/properties.cpp" "src/topology/CMakeFiles/d2net_topology.dir/properties.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/properties.cpp.o.d"
  "/root/repo/src/topology/slim_fly.cpp" "src/topology/CMakeFiles/d2net_topology.dir/slim_fly.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/slim_fly.cpp.o.d"
  "/root/repo/src/topology/spec.cpp" "src/topology/CMakeFiles/d2net_topology.dir/spec.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/spec.cpp.o.d"
  "/root/repo/src/topology/sspt.cpp" "src/topology/CMakeFiles/d2net_topology.dir/sspt.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/sspt.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/d2net_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/d2net_topology.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2net_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/d2net_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
