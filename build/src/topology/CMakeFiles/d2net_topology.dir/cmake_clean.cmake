file(REMOVE_RECURSE
  "CMakeFiles/d2net_topology.dir/cost_model.cpp.o"
  "CMakeFiles/d2net_topology.dir/cost_model.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/degrade.cpp.o"
  "CMakeFiles/d2net_topology.dir/degrade.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/dragonfly.cpp.o"
  "CMakeFiles/d2net_topology.dir/dragonfly.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/fat_tree.cpp.o"
  "CMakeFiles/d2net_topology.dir/fat_tree.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/hyperx.cpp.o"
  "CMakeFiles/d2net_topology.dir/hyperx.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/io.cpp.o"
  "CMakeFiles/d2net_topology.dir/io.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/mlfm.cpp.o"
  "CMakeFiles/d2net_topology.dir/mlfm.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/oft.cpp.o"
  "CMakeFiles/d2net_topology.dir/oft.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/properties.cpp.o"
  "CMakeFiles/d2net_topology.dir/properties.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/slim_fly.cpp.o"
  "CMakeFiles/d2net_topology.dir/slim_fly.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/spec.cpp.o"
  "CMakeFiles/d2net_topology.dir/spec.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/sspt.cpp.o"
  "CMakeFiles/d2net_topology.dir/sspt.cpp.o.d"
  "CMakeFiles/d2net_topology.dir/topology.cpp.o"
  "CMakeFiles/d2net_topology.dir/topology.cpp.o.d"
  "libd2net_topology.a"
  "libd2net_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
