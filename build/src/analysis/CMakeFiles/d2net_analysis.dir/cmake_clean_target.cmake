file(REMOVE_RECURSE
  "libd2net_analysis.a"
)
