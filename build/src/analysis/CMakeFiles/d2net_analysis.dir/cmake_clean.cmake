file(REMOVE_RECURSE
  "CMakeFiles/d2net_analysis.dir/link_load.cpp.o"
  "CMakeFiles/d2net_analysis.dir/link_load.cpp.o.d"
  "CMakeFiles/d2net_analysis.dir/topology_report.cpp.o"
  "CMakeFiles/d2net_analysis.dir/topology_report.cpp.o.d"
  "libd2net_analysis.a"
  "libd2net_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
