
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/link_load.cpp" "src/analysis/CMakeFiles/d2net_analysis.dir/link_load.cpp.o" "gcc" "src/analysis/CMakeFiles/d2net_analysis.dir/link_load.cpp.o.d"
  "/root/repo/src/analysis/topology_report.cpp" "src/analysis/CMakeFiles/d2net_analysis.dir/topology_report.cpp.o" "gcc" "src/analysis/CMakeFiles/d2net_analysis.dir/topology_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2net_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/d2net_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/d2net_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/d2net_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/d2net_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
