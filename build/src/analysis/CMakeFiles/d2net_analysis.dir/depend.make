# Empty dependencies file for d2net_analysis.
# This may be replaced when dependencies are built.
