file(REMOVE_RECURSE
  "CMakeFiles/d2net_partition.dir/bisection_bandwidth.cpp.o"
  "CMakeFiles/d2net_partition.dir/bisection_bandwidth.cpp.o.d"
  "CMakeFiles/d2net_partition.dir/partitioner.cpp.o"
  "CMakeFiles/d2net_partition.dir/partitioner.cpp.o.d"
  "libd2net_partition.a"
  "libd2net_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
