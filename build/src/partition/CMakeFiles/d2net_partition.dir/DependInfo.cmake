
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/bisection_bandwidth.cpp" "src/partition/CMakeFiles/d2net_partition.dir/bisection_bandwidth.cpp.o" "gcc" "src/partition/CMakeFiles/d2net_partition.dir/bisection_bandwidth.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/partition/CMakeFiles/d2net_partition.dir/partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/d2net_partition.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2net_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/d2net_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/d2net_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
