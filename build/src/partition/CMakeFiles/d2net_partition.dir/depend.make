# Empty dependencies file for d2net_partition.
# This may be replaced when dependencies are built.
