file(REMOVE_RECURSE
  "libd2net_partition.a"
)
