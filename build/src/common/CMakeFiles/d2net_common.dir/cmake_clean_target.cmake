file(REMOVE_RECURSE
  "libd2net_common.a"
)
