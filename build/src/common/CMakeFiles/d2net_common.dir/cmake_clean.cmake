file(REMOVE_RECURSE
  "CMakeFiles/d2net_common.dir/cli.cpp.o"
  "CMakeFiles/d2net_common.dir/cli.cpp.o.d"
  "CMakeFiles/d2net_common.dir/stats.cpp.o"
  "CMakeFiles/d2net_common.dir/stats.cpp.o.d"
  "CMakeFiles/d2net_common.dir/table.cpp.o"
  "CMakeFiles/d2net_common.dir/table.cpp.o.d"
  "libd2net_common.a"
  "libd2net_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
