# Empty compiler generated dependencies file for d2net_common.
# This may be replaced when dependencies are built.
