file(REMOVE_RECURSE
  "libd2net_gf.a"
)
