
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf/galois_field.cpp" "src/gf/CMakeFiles/d2net_gf.dir/galois_field.cpp.o" "gcc" "src/gf/CMakeFiles/d2net_gf.dir/galois_field.cpp.o.d"
  "/root/repo/src/gf/mols.cpp" "src/gf/CMakeFiles/d2net_gf.dir/mols.cpp.o" "gcc" "src/gf/CMakeFiles/d2net_gf.dir/mols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2net_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
