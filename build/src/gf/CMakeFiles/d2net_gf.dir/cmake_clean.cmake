file(REMOVE_RECURSE
  "CMakeFiles/d2net_gf.dir/galois_field.cpp.o"
  "CMakeFiles/d2net_gf.dir/galois_field.cpp.o.d"
  "CMakeFiles/d2net_gf.dir/mols.cpp.o"
  "CMakeFiles/d2net_gf.dir/mols.cpp.o.d"
  "libd2net_gf.a"
  "libd2net_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
