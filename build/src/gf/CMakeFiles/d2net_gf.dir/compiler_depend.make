# Empty compiler generated dependencies file for d2net_gf.
# This may be replaced when dependencies are built.
