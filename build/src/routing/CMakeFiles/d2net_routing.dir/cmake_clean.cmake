file(REMOVE_RECURSE
  "CMakeFiles/d2net_routing.dir/cdg.cpp.o"
  "CMakeFiles/d2net_routing.dir/cdg.cpp.o.d"
  "CMakeFiles/d2net_routing.dir/factory.cpp.o"
  "CMakeFiles/d2net_routing.dir/factory.cpp.o.d"
  "CMakeFiles/d2net_routing.dir/minimal_routing.cpp.o"
  "CMakeFiles/d2net_routing.dir/minimal_routing.cpp.o.d"
  "CMakeFiles/d2net_routing.dir/minimal_table.cpp.o"
  "CMakeFiles/d2net_routing.dir/minimal_table.cpp.o.d"
  "CMakeFiles/d2net_routing.dir/ugal_global_routing.cpp.o"
  "CMakeFiles/d2net_routing.dir/ugal_global_routing.cpp.o.d"
  "CMakeFiles/d2net_routing.dir/ugal_routing.cpp.o"
  "CMakeFiles/d2net_routing.dir/ugal_routing.cpp.o.d"
  "CMakeFiles/d2net_routing.dir/valiant_routing.cpp.o"
  "CMakeFiles/d2net_routing.dir/valiant_routing.cpp.o.d"
  "CMakeFiles/d2net_routing.dir/vc_policy.cpp.o"
  "CMakeFiles/d2net_routing.dir/vc_policy.cpp.o.d"
  "libd2net_routing.a"
  "libd2net_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
