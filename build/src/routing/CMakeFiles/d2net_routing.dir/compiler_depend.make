# Empty compiler generated dependencies file for d2net_routing.
# This may be replaced when dependencies are built.
