file(REMOVE_RECURSE
  "libd2net_routing.a"
)
