
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/cdg.cpp" "src/routing/CMakeFiles/d2net_routing.dir/cdg.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/cdg.cpp.o.d"
  "/root/repo/src/routing/factory.cpp" "src/routing/CMakeFiles/d2net_routing.dir/factory.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/factory.cpp.o.d"
  "/root/repo/src/routing/minimal_routing.cpp" "src/routing/CMakeFiles/d2net_routing.dir/minimal_routing.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/minimal_routing.cpp.o.d"
  "/root/repo/src/routing/minimal_table.cpp" "src/routing/CMakeFiles/d2net_routing.dir/minimal_table.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/minimal_table.cpp.o.d"
  "/root/repo/src/routing/ugal_global_routing.cpp" "src/routing/CMakeFiles/d2net_routing.dir/ugal_global_routing.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/ugal_global_routing.cpp.o.d"
  "/root/repo/src/routing/ugal_routing.cpp" "src/routing/CMakeFiles/d2net_routing.dir/ugal_routing.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/ugal_routing.cpp.o.d"
  "/root/repo/src/routing/valiant_routing.cpp" "src/routing/CMakeFiles/d2net_routing.dir/valiant_routing.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/valiant_routing.cpp.o.d"
  "/root/repo/src/routing/vc_policy.cpp" "src/routing/CMakeFiles/d2net_routing.dir/vc_policy.cpp.o" "gcc" "src/routing/CMakeFiles/d2net_routing.dir/vc_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2net_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/d2net_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/d2net_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
