
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/exchange.cpp" "src/sim/CMakeFiles/d2net_sim.dir/exchange.cpp.o" "gcc" "src/sim/CMakeFiles/d2net_sim.dir/exchange.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/d2net_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/d2net_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/d2net_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/d2net_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/d2net_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/d2net_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/d2net_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/d2net_sim.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/d2net_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/d2net_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/d2net_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/d2net_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
