file(REMOVE_RECURSE
  "libd2net_sim.a"
)
