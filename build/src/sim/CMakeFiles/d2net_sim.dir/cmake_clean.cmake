file(REMOVE_RECURSE
  "CMakeFiles/d2net_sim.dir/exchange.cpp.o"
  "CMakeFiles/d2net_sim.dir/exchange.cpp.o.d"
  "CMakeFiles/d2net_sim.dir/experiment.cpp.o"
  "CMakeFiles/d2net_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/d2net_sim.dir/network.cpp.o"
  "CMakeFiles/d2net_sim.dir/network.cpp.o.d"
  "CMakeFiles/d2net_sim.dir/trace.cpp.o"
  "CMakeFiles/d2net_sim.dir/trace.cpp.o.d"
  "CMakeFiles/d2net_sim.dir/traffic.cpp.o"
  "CMakeFiles/d2net_sim.dir/traffic.cpp.o.d"
  "libd2net_sim.a"
  "libd2net_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2net_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
