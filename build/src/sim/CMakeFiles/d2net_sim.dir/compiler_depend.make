# Empty compiler generated dependencies file for d2net_sim.
# This may be replaced when dependencies are built.
