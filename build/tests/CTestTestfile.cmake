# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gf "/root/repo/build/tests/test_gf")
set_tests_properties(test_gf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_topology "/root/repo/build/tests/test_topology")
set_tests_properties(test_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_partition "/root/repo/build/tests/test_partition")
set_tests_properties(test_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_routing "/root/repo/build/tests/test_routing")
set_tests_properties(test_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_analysis "/root/repo/build/tests/test_analysis")
set_tests_properties(test_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sspt "/root/repo/build/tests/test_sspt")
set_tests_properties(test_sspt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_link_load "/root/repo/build/tests/test_link_load")
set_tests_properties(test_link_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim_edge "/root/repo/build/tests/test_sim_edge")
set_tests_properties(test_sim_edge PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dragonfly "/root/repo/build/tests/test_dragonfly")
set_tests_properties(test_dragonfly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;d2net_add_test;/root/repo/tests/CMakeLists.txt;0;")
