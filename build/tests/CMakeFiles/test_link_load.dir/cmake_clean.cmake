file(REMOVE_RECURSE
  "CMakeFiles/test_link_load.dir/test_link_load.cpp.o"
  "CMakeFiles/test_link_load.dir/test_link_load.cpp.o.d"
  "test_link_load"
  "test_link_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
