# Empty compiler generated dependencies file for test_sspt.
# This may be replaced when dependencies are built.
