file(REMOVE_RECURSE
  "CMakeFiles/test_sspt.dir/test_sspt.cpp.o"
  "CMakeFiles/test_sspt.dir/test_sspt.cpp.o.d"
  "test_sspt"
  "test_sspt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sspt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
