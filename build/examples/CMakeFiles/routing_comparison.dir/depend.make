# Empty dependencies file for routing_comparison.
# This may be replaced when dependencies are built.
