file(REMOVE_RECURSE
  "CMakeFiles/exchange_planner.dir/exchange_planner.cpp.o"
  "CMakeFiles/exchange_planner.dir/exchange_planner.cpp.o.d"
  "exchange_planner"
  "exchange_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
