# Empty compiler generated dependencies file for exchange_planner.
# This may be replaced when dependencies are built.
