// Fig. 3: scalability (endpoints vs router radix) and per-endpoint cost of
// the low-diameter topologies — the plot's curves as a table, plus the
// embedded cost comparison (diameter, links/endpoint, ports/endpoint).
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "topology/cost_model.h"

using namespace d2net;

int main(int argc, char** argv) {
  Cli cli("Fig. 3: scale and cost of low-diameter topologies vs router radix");
  cli.flag("csv", false, "also print CSV");
  if (!cli.parse(argc, argv)) return 0;

  std::printf("== Fig. 3 (curves): max endpoints per family vs router radix ==\n");
  const std::vector<std::string> families{"HyperX2D", "SF(floor)", "SF(ceil)", "FT2",
                                          "FT3",      "MLFM",      "OFT",      "Dragonfly"};
  Table t([&] {
    std::vector<std::string> h{"radix"};
    for (const auto& f : families) h.push_back(f);
    h.push_back("Moore-bound*p");
    return h;
  }());
  for (int r : {16, 24, 32, 40, 48, 56, 64, 80, 96}) {
    std::vector<std::string> row{std::to_string(r)};
    const auto points = max_scale_at_radix(r);
    for (const auto& fam : families) {
      std::string cell = "-";
      for (const auto& pt : points) {
        if (pt.family == fam) cell = std::to_string(pt.num_nodes);
      }
      row.push_back(cell);
    }
    // Diameter-2 Moore bound on routers, times p = r/3 endpoints each.
    row.push_back(std::to_string(moore_bound_d2(2 * r / 3) * (r / 3)));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (cli.get_bool("csv")) t.print_csv(std::cout);

  std::printf("\n== Fig. 3 (table): diameter and cost per endpoint at radix 48 ==\n");
  Table c({"topology", "config", "diam", "scale N", "links/N", "ports/N"});
  for (const auto& pt : max_scale_at_radix(48)) {
    c.add(pt.family, pt.config, pt.diameter, pt.num_nodes, fmt(pt.links_per_node, 2),
          fmt(pt.ports_per_node, 2));
  }
  c.print(std::cout);

  std::printf(
      "\n== Section 2.3.1 headline: radix-64 router scalability ==\n"
      "  (paper: OFT ~63.5K, MLFM ~36K, SF ~33.7K)\n");
  Table h({"topology", "config", "N"});
  for (const auto& pt : max_scale_at_radix(64)) {
    if (pt.family == "OFT" || pt.family == "MLFM" || pt.family == "SF(floor)") {
      h.add(pt.family, pt.config, pt.num_nodes);
    }
  }
  h.print(std::cout);
  return 0;
}
