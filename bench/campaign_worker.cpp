#include "campaign_worker.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/json.h"
#include "common/table.h"

namespace d2net::bench {

namespace fs = std::filesystem;

// ---------------------------------------------------------- solo executor

int execute_campaign(const CampaignSpec& spec, const ExpandedCampaign& plan,
                     const BenchOptions& opts, const std::string& manifest_extra) {
  BenchReport report(spec.name, opts, manifest_extra);

  struct StepSummary {
    std::string title;
    const char* kind;
    std::int64_t points = 0;
    std::int64_t restored = 0;
    std::int64_t timed_out = 0;
    std::int64_t failed = 0;
  };
  std::vector<StepSummary> summaries;

  for (const CampaignStep& step : plan.steps) {
    if (step.load) {
      const auto series = run_and_print_sweep(step.load->title, step.load->series, opts,
                                              &report);
      StepSummary sum{step.load->title, "sweep"};
      for (const auto& s : series) {
        for (const SweepPoint& pt : s) {
          ++sum.points;
          sum.restored += pt.restored ? 1 : 0;
          sum.timed_out += pt.result.timed_out ? 1 : 0;
          sum.failed += pt.failed ? 1 : 0;
        }
      }
      summaries.push_back(std::move(sum));
    } else {
      const CampaignExchangeSweep& ex = *step.exchange;
      std::vector<ExchangeRowSpec> rows;
      for (const CampaignExchangeRow& r : ex.rows) {
        rows.push_back({r.system, r.topo, r.strategy});
      }
      const auto done = run_exchange_table(ex.title, rows, ex.bytes_per_pair, ex.order,
                                           ex.time_limit, opts, &report);
      StepSummary sum{ex.title, "exchange"};
      for (const ExchangeRow& r : done) {
        ++sum.points;
        sum.restored += r.restored ? 1 : 0;
        sum.timed_out += (!r.result.completed) ? 1 : 0;
      }
      summaries.push_back(std::move(sum));
    }
  }

  std::printf("\n== campaign summary: %s ==\n", spec.name.c_str());
  Table summary({"step", "kind", "points", "restored", "timed out/aborted", "failed"});
  for (const StepSummary& s : summaries) {
    summary.add(s.title, s.kind, s.points, s.restored, s.timed_out, s.failed);
  }
  summary.print(std::cout);
  if (opts.csv) summary.print_csv(std::cout);

  return report.finish();
}

// ------------------------------------------------------------- worker mode

namespace {

/// Installs `<dir>/manifest.json` atomically if absent (first worker wins,
/// via link(2) like a lease claim), then validates the installed text
/// against `text`. The top-level journal.jsonl is deliberately NOT touched
/// — it is the --merge step's output, and a worker opening it for write
/// would truncate merged results.
void ensure_top_manifest(const std::string& dir, const std::string& text) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  D2NET_REQUIRE(!ec, "cannot create journal directory '" + dir + "': " + ec.message());
  const fs::path manifest = fs::path(dir) / "manifest.json";
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string prev;
    std::uint64_t prev_hash = 0;
    if (read_journal_manifest(dir, prev, prev_hash)) {
      if (prev != text) {
        throw ArgumentError(
            "journal manifest mismatch in '" + dir +
            "': another worker started this campaign under a different "
            "configuration.\n--- journal manifest ---\n" + prev +
            "--- this worker ---\n" + text +
            "All workers of one campaign must share spec, seed, duration and "
            "scale flags.");
      }
      return;
    }
    // The exact document SweepJournal writes, so the --merge invocation's
    // resume validates against it unchanged.
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(text)));
    const fs::path tmp =
        fs::path(dir) / ("manifest.json.tmp." + std::to_string(::getpid()));
    {
      std::ofstream mf(tmp, std::ios::trunc);
      mf << "{\"hash\": \"" << hex << "\", \"manifest\": \"" << json_escape(text)
         << "\"}\n";
      mf.flush();
      D2NET_REQUIRE(mf.good(), "cannot write journal manifest in '" + dir + "'");
    }
    if (::link(tmp.c_str(), manifest.c_str()) == 0) {
      ::unlink(tmp.c_str());
      fsync_dir(dir);
      return;
    }
    ::unlink(tmp.c_str());  // lost the race: loop once to validate theirs
  }
  throw ArgumentError("cannot install journal manifest in '" + dir + "'");
}

std::size_t campaign_point_total(const ExpandedCampaign& plan) {
  std::size_t total = 0;
  for (const CampaignStep& step : plan.steps) total += step_point_count(step);
  return total;
}

/// Auto shard granularity: ~4 shards per worker, so a straggler costs at
/// most a quarter of one worker's share and steals stay coarse enough to
/// amortize claim traffic.
int effective_shard_points(const ExpandedCampaign& plan,
                           const CampaignWorkerOptions& wopts) {
  if (wopts.shard_points > 0) return wopts.shard_points;
  const std::size_t total = campaign_point_total(plan);
  const std::size_t target = static_cast<std::size_t>(wopts.workers) * 4;
  return static_cast<int>(std::max<std::size_t>(1, (total + target - 1) / target));
}

}  // namespace

int run_campaign_worker(const CampaignSpec& spec, const ExpandedCampaign& plan,
                        const BenchOptions& opts, const std::string& manifest_extra,
                        const CampaignWorkerOptions& wopts) {
  D2NET_REQUIRE(!opts.journal_dir.empty(), "--workers requires --journal=<dir>");
  D2NET_REQUIRE(!wopts.worker_id.empty(), "worker mode requires a worker id");
  D2NET_REQUIRE(wopts.lease_ttl > 0.0, "--lease-ttl must be > 0");
  const std::string& id = wopts.worker_id;
  auto logf = [&](const char* fmt, auto... args) {
    std::string f = "[worker %s] " + std::string(fmt) + "\n";
    std::fprintf(stderr, f.c_str(), id.c_str(), args...);
  };

  const std::string manifest_text = bench_manifest(spec.name, opts) + manifest_extra;
  ensure_top_manifest(opts.journal_dir, manifest_text);

  const int shard_points = effective_shard_points(plan, wopts);
  const std::vector<CampaignShard> shards = plan_campaign_shards(plan, shard_points);

  ClaimOptions copts;
  copts.dir = opts.journal_dir;
  copts.worker = id;
  copts.spec_hash = fnv1a64(manifest_text);
  copts.lease_ttl = wopts.lease_ttl;
  copts.durable = opts.journal_durable;
  copts.clock = wopts.clock;
  ShardClaimer claimer(std::move(copts));
  claimer.pin_plan(static_cast<int>(shards.size()), shard_points);

  // This worker's own crash-safe journal: resume on, so a restarted worker
  // skips its previously completed points even inside a re-claimed shard.
  JournalOptions jopts;
  jopts.durable = opts.journal_durable;
  jopts.worker = id;
  SweepJournal journal((fs::path(opts.journal_dir) / "workers" / id).string(),
                       manifest_text, /*resume=*/true, std::move(jopts));

  // Chaos-drill hook: hold the first claimed shard (heartbeating, not yet
  // journaling) for this many seconds. A kill -9 in the window is exactly
  // the claim-before-first-entry crash the steal path must absorb.
  double hold_seconds = 0.0;
  if (const char* hold = std::getenv("D2NET_CAMPAIGN_HOLD")) {
    hold_seconds = std::strtod(hold, nullptr);
  }
  bool held = false;

  std::set<std::string> registered_scopes;
  std::int64_t executed_points = 0, failed_points = 0;
  std::size_t executed_shards = 0, stolen_shards = 0;

  auto execute_shard = [&](const CampaignShard& sh) {
    // Heartbeat alongside execution: cadence well under the TTL, on the
    // wall clock (the injected clock only decides the timestamps and
    // staleness math). Stops refreshing — but never aborts the running
    // simulation — once the lease is lost; the duplicate work that can
    // follow is the documented at-least-once case merge dedup absorbs.
    std::mutex hb_mu;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    const double period = std::min(5.0, std::max(0.05, wopts.lease_ttl / 3.0));
    std::thread hb([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      while (!hb_cv.wait_for(lock, std::chrono::duration<double>(period),
                             [&] { return hb_stop; })) {
        lock.unlock();
        const bool alive = claimer.heartbeat(sh.id);
        lock.lock();
        if (!alive) {
          logf("lost lease on shard %d (stolen after TTL); finishing anyway — "
               "merge dedups",
               sh.id);
          return;
        }
      }
    });
    struct HbGuard {
      std::mutex& mu;
      std::condition_variable& cv;
      bool& stop;
      std::thread& t;
      ~HbGuard() {
        {
          std::lock_guard<std::mutex> lock(mu);
          stop = true;
        }
        cv.notify_all();
        t.join();
      }
    } guard{hb_mu, hb_cv, hb_stop, hb};

    if (hold_seconds > 0.0 && !held) {
      held = true;
      logf("holding shard %d for %.1fs (D2NET_CAMPAIGN_HOLD)", sh.id, hold_seconds);
      claimer.options().clock.sleep(hold_seconds);
    }

    const CampaignStep& step = plan.steps[sh.step];
    const std::string scope = step_scope(step);
    const std::size_t total = step_point_count(step);
    std::vector<char> mask(total, 0);
    for (std::size_t i = sh.begin; i < sh.end; ++i) mask[i] = 1;
    const bool first_visit = registered_scopes.insert(scope).second;

    if (step.load) {
      SweepRunOptions ropts = opts.sweep_options();
      ropts.journal = &journal;
      ropts.scope = scope;
      ropts.register_scope = first_visit;
      ropts.tolerate_failures = true;
      ropts.serialize = [](const SweepPoint& pt) { return render_point_json(pt); };
      ropts.selected = &mask;
      SweepRunner runner(ropts);
      runner.run(step.load->series);
      executed_points += runner.stats().points - runner.stats().restored_points;
      failed_points += runner.stats().failed_points;
    } else {
      const CampaignExchangeSweep& ex = *step.exchange;
      std::vector<ExchangeRowSpec> rows;
      for (const CampaignExchangeRow& r : ex.rows) {
        rows.push_back({r.system, r.topo, r.strategy});
      }
      ExchangeRunControl ctl;
      ctl.selected = &mask;
      ctl.register_scope = first_visit;
      ctl.quiet = true;
      ctl.journal = &journal;
      run_exchange_table(ex.title, rows, ex.bytes_per_pair, ex.order, ex.time_limit,
                         opts, /*report=*/nullptr, &ctl);
      executed_points += static_cast<std::int64_t>(sh.end - sh.begin);
    }
  };

  logf("joining campaign '%s': %zu shard(s) of <= %d point(s), lease TTL %.1fs",
       spec.name.c_str(), shards.size(), shard_points, wopts.lease_ttl);

  while (true) {
    bool all_done = true;
    bool progress = false;
    for (const CampaignShard& sh : shards) {
      if (claimer.is_done(sh.id)) continue;
      all_done = false;
      bool stolen = false;
      if (!claimer.try_claim(sh.id)) {
        if (!claimer.try_steal(sh.id)) continue;  // live lease or lost race
        stolen = true;
        ++stolen_shards;
      }
      claimer.reset_backoff();
      if (stolen) {
        logf("stole stale lease on shard %d", sh.id);
      }
      logf("executing shard %d: %s points [%zu, %zu)", sh.id,
           step_scope(plan.steps[sh.step]).c_str(), sh.begin, sh.end);
      execute_shard(sh);
      claimer.complete(sh.id);
      ++executed_shards;
      progress = true;
    }
    if (all_done) break;
    if (!progress) {
      // Everything unfinished is leased to live workers: back off (bounded
      // exponential) and rescan — either they complete, or their leases go
      // stale and the next pass steals.
      claimer.options().clock.sleep(claimer.next_backoff());
    }
  }

  logf("campaign complete: executed %zu shard(s) (%lld point(s), %zu stolen), "
       "%lld point(s) failed permanently%s",
       executed_shards, static_cast<long long>(executed_points), stolen_shards,
       static_cast<long long>(failed_points),
       failed_points > 0 ? " — failures aggregate at --merge" : "");
  return 0;
}

// -------------------------------------------------------------- merge mode

int run_campaign_merge(const CampaignSpec& spec, const ExpandedCampaign& plan,
                       BenchOptions opts, const std::string& manifest_extra) {
  D2NET_REQUIRE(!opts.journal_dir.empty(), "--merge requires --journal=<dir>");
  const CampaignMergeStats st =
      merge_worker_journals(opts.journal_dir, campaign_scopes(plan));
  std::printf("merged %zu worker journal(s): %zu/%zu point(s), %zu duplicate(s) "
              "deduplicated, %zu missing, %zu failed\n",
              st.workers, st.merged, st.expected, st.duplicates, st.missing,
              st.failed);
  if (st.missing > 0) {
    std::fprintf(stderr,
                 "warning: %zu point(s) missing from every worker journal; "
                 "executing them in this process\n",
                 st.missing);
  }
  // Present through the ordinary resume path: restored points splice their
  // journaled payloads back verbatim, so stdout/--json is byte-identical
  // to a single-process run of the same spec.
  opts.resume = true;
  return execute_campaign(spec, plan, opts, manifest_extra);
}

// ------------------------------------------------------------- status mode

int print_campaign_status(const ExpandedCampaign& plan, const BenchOptions& opts,
                          double lease_ttl) {
  D2NET_REQUIRE(!opts.journal_dir.empty(), "--status requires --journal=<dir>");
  const std::string& dir = opts.journal_dir;

  const fs::path plan_path = fs::path(dir) / "leases" / "plan.json";
  std::ifstream plan_in(plan_path);
  if (!plan_in) {
    std::printf("no shard plan in %s — no worker has started this campaign\n",
                plan_path.string().c_str());
    return 1;
  }
  std::ostringstream plan_buf;
  plan_buf << plan_in.rdbuf();
  int num_shards = 0, shard_points = 0;
  try {
    const JsonValue doc = parse_json(plan_buf.str(), plan_path.string());
    if (const JsonValue* v = doc.find("shards")) num_shards = static_cast<int>(v->integer);
    if (const JsonValue* v = doc.find("shard_points")) {
      shard_points = static_cast<int>(v->integer);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot parse %s: %s\n", plan_path.string().c_str(), e.what());
    return 1;
  }
  D2NET_REQUIRE(num_shards >= 1 && shard_points >= 1,
                "shard plan in '" + plan_path.string() + "' is malformed");

  const std::vector<CampaignShard> shards = plan_campaign_shards(plan, shard_points);
  if (static_cast<int>(shards.size()) != num_shards) {
    std::fprintf(stderr,
                 "warning: spec expands to %zu shard(s) but the journal plan "
                 "records %d — the spec or flags differ from the running "
                 "campaign\n",
                 shards.size(), num_shards);
  }

  // Per-shard executed/failed counts, from the worker journals alone.
  std::vector<std::int64_t> ok_counts(shards.size(), 0), failed_counts(shards.size(), 0);
  // scope -> (step index) for key attribution; keys are "<scope>#<index>".
  std::map<std::string, std::size_t> step_by_scope;
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    step_by_scope[step_scope(plan.steps[s])] = s;
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(fs::path(dir) / "workers", ec)) {
    if (!entry.is_directory()) continue;
    std::ifstream in(entry.path() / "journal.jsonl");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      JournalEntry e;
      if (!SweepJournal::parse_line(line, e)) continue;
      const std::size_t hash_pos = e.key.rfind('#');
      if (hash_pos == std::string::npos) continue;
      const auto it = step_by_scope.find(e.key.substr(0, hash_pos));
      if (it == step_by_scope.end()) continue;
      const std::size_t index = std::strtoull(e.key.c_str() + hash_pos + 1, nullptr, 10);
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (shards[s].step == it->second && index >= shards[s].begin &&
            index < shards[s].end) {
          (e.status == "failed" ? failed_counts : ok_counts)[s] += 1;
          break;
        }
      }
    }
  }

  ClaimOptions copts;
  copts.dir = dir;
  copts.worker = "status";  // inspect-only; never claims
  copts.lease_ttl = lease_ttl;
  copts.durable = false;
  ShardClaimer claimer(std::move(copts));

  std::printf("campaign shards in %s (%d shard(s) x <= %d point(s), lease TTL %.1fs):\n",
              dir.c_str(), num_shards, shard_points, lease_ttl);
  Table t({"shard", "scope", "points", "state", "worker", "hb age (s)", "ok", "failed"});
  std::size_t done = 0, leased = 0, stale = 0;
  for (const CampaignShard& sh : shards) {
    const ShardStatus st = claimer.inspect(sh.id);
    done += st.state == ShardState::kDone ? 1 : 0;
    leased += st.state == ShardState::kLeased ? 1 : 0;
    stale += st.state == ShardState::kStale ? 1 : 0;
    const bool has_lease =
        st.state == ShardState::kLeased || st.state == ShardState::kStale;
    t.add(sh.id, step_scope(plan.steps[sh.step]),
          std::to_string(sh.begin) + ".." + std::to_string(sh.end - 1),
          to_string(st.state),
          st.lease.worker.empty() ? "-" : st.lease.worker,
          has_lease ? fmt(st.age, 1) : "-", ok_counts[sh.id], failed_counts[sh.id]);
  }
  t.print(std::cout);
  std::printf("summary: %zu/%zu done, %zu leased, %zu stale, %zu unclaimed\n", done,
              shards.size(), leased, stale,
              shards.size() - done - leased - stale);
  return 0;
}

}  // namespace d2net::bench
