// Ablation: analytic expected-link-load bounds vs simulated saturation.
//
// Section 4.2 of the paper derives the worst-case saturation points
// (1/2p, 1/h, 1/k) by hand; our link-load model generalizes that
// derivation to any oblivious routing + pattern, and this bench
// cross-validates it against the flit-accurate simulator for every paper
// configuration under uniform and worst-case traffic, MIN and INR.
#include <cstdio>
#include <iostream>

#include "analysis/link_load.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "routing/valiant_routing.h"
#include "sim/traffic.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Ablation: analytic link-load bound vs simulated saturation");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);

  SimConfig cfg;
  cfg.seed = opts.seed;

  std::printf("== analytic throughput bound vs simulated accepted throughput @ load 1.0 ==\n");
  Table t({"system", "pattern", "routing", "analytic bound", "simulated", "delta",
           "link corr", "link max|err|"});
  for (const auto& sys : paper_systems(opts.full)) {
    const MinimalTable table(sys.topo);
    Rng rng(opts.seed);
    const auto wc = make_worst_case(sys.topo, table, rng);
    const UniformTraffic uni(sys.topo.num_nodes());
    const auto vias = valiant_intermediates(sys.topo);

    // Uniform permutation proxy for the INR/uniform row: a random
    // permutation's analytic INR load matches uniform traffic closely.
    for (const bool worst_case : {false, true}) {
      for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kValiant}) {
        LinkLoadReport analytic;
        if (s == RoutingStrategy::kMinimal) {
          analytic = worst_case ? minimal_link_loads(sys.topo, table, wc->permutation())
                                : minimal_link_loads_uniform(sys.topo, table);
        } else {
          if (!worst_case) continue;  // INR/uniform: no closed permutation form here
          analytic = valiant_link_loads(sys.topo, table, wc->permutation(), vias);
        }
        SimStack stack(sys.topo, s, cfg);
        const TrafficPattern& pattern =
            worst_case ? static_cast<const TrafficPattern&>(*wc)
                       : static_cast<const TrafficPattern&>(uni);
        const OpenLoopResult sim =
            stack.run_open_loop(pattern, 1.0, opts.duration, opts.warmup);
        // Per-link agreement: the channel_stats order matches the analytic
        // report's (router, port) channel order. The network runs at its
        // accepted (not offered) rate at saturation, so compare expected
        // utilizations at that effective injection fraction.
        std::vector<double> observed;
        for (const auto& ch : stack.sim().channel_stats()) {
          observed.push_back(ch.utilization);
        }
        const LinkLoadComparison cmp = compare_link_loads(
            analytic, observed, std::max(sim.accepted_throughput, 1e-9));
        t.add(sys.label, worst_case ? "WC" : "UNI", to_string(s),
              fmt(analytic.throughput_bound, 3), fmt(sim.accepted_throughput, 3),
              fmt(sim.accepted_throughput - analytic.throughput_bound, 3),
              fmt(cmp.correlation, 3), fmt(cmp.max_abs_error, 3));
      }
    }
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
