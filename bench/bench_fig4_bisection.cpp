// Fig. 4: approximate bisection bandwidth per endpoint (units of link
// bandwidth b) via the multilevel partitioner, across network sizes for
// SF (both p roundings), MLFM and OFT.
//
// Note: the heuristic cut is an upper bound on the true bisection; our
// partitioner finds tighter OFT cuts (~0.73 b) than the paper quotes
// (~0.81-0.89 b) while matching the SF (~0.67-0.71 b) and MLFM (~0.5 b)
// levels and the overall ranking. See EXPERIMENTS.md.
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "partition/bisection_bandwidth.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

using namespace d2net;

namespace {

void report(Table& t, const Topology& topo, int seeds) {
  const BisectionBandwidth bb = approximate_bisection_bandwidth(topo, seeds);
  t.add(topo.name(), topo.num_nodes(), static_cast<std::int64_t>(bb.cut_links),
        fmt(bb.per_node, 3));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Fig. 4: approximate bisection bandwidth per endpoint");
  cli.flag("seeds", std::int64_t{6}, "partitioner restarts (best cut wins)");
  cli.flag("csv", false, "also print CSV");
  if (!cli.parse(argc, argv)) return 0;
  const int seeds = static_cast<int>(cli.get_int("seeds"));

  std::printf("== Fig. 4: bisection bandwidth per end-node (fraction of b) ==\n");
  std::printf("   paper levels: OFT ~0.81-0.89, SF floor ~0.71, SF ceil ~0.67, MLFM ~0.5\n");
  Table t({"topology", "N", "cut links", "bw per node (b)"});
  for (int q : {5, 7, 9, 11, 13}) {
    report(t, build_slim_fly(q, SlimFlyP::kFloor), seeds);
    report(t, build_slim_fly(q, SlimFlyP::kCeil), seeds);
  }
  for (int h : {5, 7, 9, 11, 13, 15}) report(t, build_mlfm(h), seeds);
  for (int k : {4, 6, 8, 10, 12}) report(t, build_oft(k), seeds);
  t.print(std::cout);
  if (cli.get_bool("csv")) t.print_csv(std::cout);
  return 0;
}
