// Ablation (beyond the paper): resilience of the diameter-two designs to
// random link failures. Low-diameter networks buy scale with minimal path
// diversity, so failures both stretch the endpoint diameter and erode
// uniform throughput; adaptive routing recovers part of the loss.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "topology/degrade.h"
#include "topology/properties.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Ablation: random link failures vs diameter and uniform throughput");
  add_standard_flags(cli);
  cli.flag("load", 0.9, "offered uniform load");
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  const double load = cli.get_double("load");

  SimConfig cfg;
  cfg.seed = opts.seed;

  std::printf("== random link failures: endpoint diameter and accepted uniform load ==\n");
  Table t({"system", "failed links", "fail %", "endpoint diam", "MIN accepted",
           "UGAL-Th accepted"});
  for (const auto& sys : paper_systems(opts.full)) {
    if (sys.label == "SF p=cl") continue;  // one SF flavor suffices here
    for (double frac : {0.0, 0.02, 0.05, 0.10}) {
      Rng rng(opts.seed + static_cast<std::uint64_t>(frac * 1000));
      const int count = static_cast<int>(frac * sys.topo.num_links());
      const DegradeResult deg = remove_random_links(sys.topo, count, rng);
      if (deg.shortfall()) {
        std::fprintf(stderr,
                     "warning: %s: keep_connected vetoed %d of %d requested link "
                     "removals; the \"fail %%\" column overstates this row's damage\n",
                     sys.label.c_str(), deg.requested - static_cast<int>(deg.removed.size()),
                     deg.requested);
      }
      const DistanceMatrix dist = all_pairs_distances(deg.topo);
      const int diam = node_diameter(deg.topo, dist);
      const UniformTraffic uni(deg.topo.num_nodes());
      SimStack min_stack(deg.topo, RoutingStrategy::kMinimal, cfg);
      const OpenLoopResult min_r =
          min_stack.run_open_loop(uni, load, opts.duration, opts.warmup);
      SimStack ugal_stack(deg.topo, RoutingStrategy::kUgalThreshold, cfg);
      const OpenLoopResult ugal_r =
          ugal_stack.run_open_loop(uni, load, opts.duration, opts.warmup);
      t.add(sys.label, static_cast<std::int64_t>(deg.removed.size()), fmt(frac * 100, 0),
            diam, fmt(min_r.accepted_throughput, 3), fmt(ugal_r.accepted_throughput, 3));
    }
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
