// Extension (beyond the paper's evaluation): the same uniform-traffic and
// all-to-all workloads run on the deployed-alternative baselines the
// paper's introduction argues against — 2-D HyperX, Dragonfly, two-level
// Fat-Tree — side by side with the three diameter-two designs, at roughly
// matched endpoint counts. Cost columns make the price of each design
// visible next to its performance.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/exchange.h"
#include "topology/dragonfly.h"
#include "topology/fat_tree.h"
#include "topology/hyperx.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Extension: diameter-two designs vs HyperX / Dragonfly / FT2 baselines");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);

  SimConfig cfg;
  cfg.seed = opts.seed;

  // Matched-scale baselines for the default trio (N ~ 370-590):
  // HyperX 11x11 p=4 (484), Dragonfly p=3 (342), FT2 r=30 (450).
  std::vector<SystemConfig> systems = paper_systems(opts.full);
  if (opts.full) {
    systems.push_back({"HyperX", build_hyperx2d(17, 17, 11)});     // 3179
    systems.push_back({"Dragonfly", build_dragonfly(12, 6, 6)});   // 5256 (closest balanced)
    systems.push_back({"FT2", build_fat_tree2(78)});               // 3042
  } else {
    systems.push_back({"HyperX", build_hyperx2d(11, 11, 4)});
    systems.push_back({"Dragonfly", build_dragonfly_balanced(11)});
    systems.push_back({"FT2", build_fat_tree2(30)});
  }

  std::printf("== baselines vs diameter-two designs: uniform + all-to-all ==\n");
  Table t({"system", "N", "ports/N", "links/N", "UNI acc @1.0", "UNI lat(ns) @0.7",
           "A2A eff (MIN)"});
  for (const auto& sys : systems) {
    if (sys.label == "SF p=cl") continue;
    UniformTraffic uni(sys.topo.num_nodes());
    SimStack stack(sys.topo, RoutingStrategy::kMinimal, cfg);
    const OpenLoopResult full_load =
        stack.run_open_loop(uni, 1.0, opts.duration, opts.warmup);
    const OpenLoopResult mid_load =
        stack.run_open_loop(uni, 0.7, opts.duration, opts.warmup);
    const ExchangePlan plan =
        make_all_to_all_plan(sys.topo.num_nodes(), 3840, A2aOrder::kShuffled, opts.seed);
    SimStack a2a_stack(sys.topo, RoutingStrategy::kMinimal, cfg);
    const ExchangeResult a2a = a2a_stack.run_exchange(plan, us(5'000'000));
    t.add(sys.label, sys.topo.num_nodes(), fmt(sys.topo.ports_per_node(), 2),
          fmt(sys.topo.links_per_node(), 2), fmt(full_load.accepted_throughput, 3),
          fmt(mid_load.avg_latency_ns, 0),
          a2a.completed ? fmt(a2a.effective_throughput, 3) : "t/o");
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
