// Multi-worker campaign execution (see docs/campaigns.md, "Distributed
// campaigns").
//
// N independent `d2net_campaign --workers=N --worker-id=<id>` processes —
// one host or many sharing a filesystem — cooperatively execute one
// campaign. Each worker claims contiguous shards of the deterministic
// expanded point list through the lease protocol (sim/claim.h), executes
// the claimed points into its own crash-safe journal under
// `<journal>/workers/<id>/`, and heartbeats while running so a dead or
// wedged worker's shards are stolen after --lease-ttl. A final
// `d2net_campaign --merge` invocation k-way merges the worker journals in
// spec expansion order and replays the campaign through the ordinary
// resume path, so its stdout/--json output is byte-identical to a
// single-process run (scripts/ci.sh stage 6 kills a worker mid-shard and
// enforces exactly that).
#pragma once

#include <string>

#include "bench_common.h"
#include "sim/campaign.h"
#include "sim/claim.h"

namespace d2net::bench {

/// Executes the whole campaign in this process through a BenchReport
/// (table printing, --json, journal/resume) and returns the process exit
/// code. The solo d2net_campaign path and the post---merge presentation
/// run share this one function — which is what makes merged output
/// byte-identical to a single-process run.
int execute_campaign(const CampaignSpec& spec, const ExpandedCampaign& plan,
                     const BenchOptions& opts, const std::string& manifest_extra);

struct CampaignWorkerOptions {
  int workers = 1;          ///< cooperating worker processes (capacity hint)
  std::string worker_id;    ///< unique per worker; journals under workers/<id>
  double lease_ttl = 30.0;  ///< seconds without heartbeat before a steal
  /// Points per claimed shard; 0 = auto (~4 shards per worker). Every
  /// worker of one campaign must agree (pinned on disk, mismatch is a hard
  /// error).
  int shard_points = 0;
  ClaimClock clock;  ///< injected by tests; empty = wall clock
};

/// Runs one cooperating worker to completion: claim or steal shards,
/// execute their points into `<journal>/workers/<id>/`, heartbeat while
/// running, mark complete; back off (bounded exponential) while other live
/// workers hold the remaining shards. Returns 0 once every shard of the
/// campaign is complete (whoever executed it); per-point failures are
/// journaled and reported, then aggregated by --merge — a worker never
/// silently drops a point. The D2NET_CAMPAIGN_HOLD env var (seconds)
/// makes the worker sleep that long after its first claim before
/// executing, while heartbeating — the CI chaos drill's kill window.
int run_campaign_worker(const CampaignSpec& spec, const ExpandedCampaign& plan,
                        const BenchOptions& opts, const std::string& manifest_extra,
                        const CampaignWorkerOptions& wopts);

/// Merges the per-worker journals into `<journal>/journal.jsonl` (see
/// merge_worker_journals), prints the merge summary, then resumes the
/// campaign through execute_campaign: restored points splice back
/// verbatim, missing ones are executed here, failures aggregate into the
/// exit code exactly as a solo run's would.
int run_campaign_merge(const CampaignSpec& spec, const ExpandedCampaign& plan,
                       BenchOptions opts, const std::string& manifest_extra);

/// Prints per-shard campaign state (unclaimed / leased by whom + heartbeat
/// age / stale / done, plus executed/failed point counts from the worker
/// journals) using only the journal directory — a stalled campaign is
/// diagnosable without attaching to any worker. Returns a process exit
/// code (non-zero when the directory holds no campaign).
int print_campaign_status(const ExpandedCampaign& plan, const BenchOptions& opts,
                          double lease_ttl);

}  // namespace d2net::bench
