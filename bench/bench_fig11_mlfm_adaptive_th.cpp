// Fig. 11: MLFM-ATh — MLFM-A with a 10% minimal-routing threshold, same
// sweeps as Fig. 9.
//
// DEPRECATED as a hand-maintained driver: the same figure is reproducible
// from the committed spec via `d2net_campaign --spec=campaigns/fig11.json`
// with byte-identical --json output (verified by scripts/ci.sh stage 6; see
// docs/campaigns.md). Kept as the identity baseline.
#include "bench_common.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 11: MLFM-ATh adaptive routing with threshold (T = 10%)");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  BenchReport report("bench_fig11_mlfm_adaptive_th", opts);

  AdaptiveFigureSpec spec;
  spec.title = "Fig. 11 MLFM-ATh";
  spec.strategy = RoutingStrategy::kUgalThreshold;
  spec.ni_values = {1, 5, 10};
  spec.fixed_c = 2.0;
  spec.c_values = {0.5, 2.0, 8.0};
  spec.fixed_ni = 5;
  run_adaptive_figure(paper_mlfm(opts.full), spec, opts, &report);
  return report.finish();
}
