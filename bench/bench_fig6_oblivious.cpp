// Fig. 6: throughput and saturation of oblivious routing — minimal (MIN)
// and indirect random (INR) — under (a) uniform random and (b) worst-case
// adversarial traffic, for all four paper configurations.
//
// Expected shape: MIN/UNI saturates at ~96-98% (SF p=ceil ~87%); MIN/WC
// collapses to ~1/2p (SF), 1/h (MLFM), 1/k (OFT); INR halves the uniform
// saturation and lifts the worst case to the same ~50% level.
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "sim/traffic.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 6: oblivious routing (MIN, INR) under UNI and WC traffic");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);

  SimConfig cfg;
  cfg.seed = opts.seed;

  for (const bool worst_case : {false, true}) {
    const auto loads = worst_case ? bench_adversarial_loads() : bench_uniform_loads();
    std::vector<std::string> labels;
    std::vector<std::vector<SweepPoint>> series;
    for (const auto& sys : paper_systems(opts.full)) {
      const MinimalTable table(sys.topo);
      Rng rng(opts.seed);
      const auto wc = make_worst_case(sys.topo, table, rng);
      const UniformTraffic uni(sys.topo.num_nodes());
      const TrafficPattern& pattern =
          worst_case ? static_cast<const TrafficPattern&>(*wc)
                     : static_cast<const TrafficPattern&>(uni);
      for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kValiant}) {
        SimStack stack(sys.topo, s, cfg);
        labels.push_back(sys.label + " " + to_string(s));
        series.push_back(run_load_sweep(stack, pattern, loads, opts.duration, opts.warmup));
      }
    }
    print_sweep_table(std::string("Fig. 6") + (worst_case ? "b — worst-case" : "a — uniform"),
                      labels, loads, series, opts.csv);
  }
  return 0;
}
