// Fig. 6: throughput and saturation of oblivious routing — minimal (MIN)
// and indirect random (INR) — under (a) uniform random and (b) worst-case
// adversarial traffic, for all four paper configurations.
//
// Expected shape: MIN/UNI saturates at ~96-98% (SF p=ceil ~87%); MIN/WC
// collapses to ~1/2p (SF), 1/h (MLFM), 1/k (OFT); INR halves the uniform
// saturation and lifts the worst case to the same ~50% level.
//
// Every (system, routing, load) point is an independent simulation; they
// run concurrently under --jobs with results identical to a serial run.
//
// DEPRECATED as a hand-maintained driver: the same figure is reproducible
// from the committed spec via `d2net_campaign --spec=campaigns/fig6.json`
// with byte-identical --json output (verified by scripts/ci.sh stage 6; see
// docs/campaigns.md). Kept as the identity baseline.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/rng.h"
#include "sim/traffic.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 6: oblivious routing (MIN, INR) under UNI and WC traffic");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  BenchReport report("bench_fig6_oblivious", opts);

  const auto systems = paper_systems(opts.full);
  // Precompute each system's minimal table and traffic patterns once; all
  // sweep points share them read-only.
  std::vector<std::shared_ptr<const MinimalTable>> tables;
  std::vector<std::unique_ptr<PermutationTraffic>> wc_patterns;
  std::vector<std::unique_ptr<UniformTraffic>> uni_patterns;
  for (const auto& sys : systems) {
    tables.push_back(std::make_shared<const MinimalTable>(sys.topo));
    Rng rng(opts.seed);
    wc_patterns.push_back(make_worst_case(sys.topo, *tables.back(), rng));
    uni_patterns.push_back(std::make_unique<UniformTraffic>(sys.topo.num_nodes()));
  }

  for (const bool worst_case : {false, true}) {
    const auto loads = worst_case ? bench_adversarial_loads() : bench_uniform_loads();
    std::vector<SweepSeriesSpec> specs;
    for (std::size_t i = 0; i < systems.size(); ++i) {
      for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kValiant}) {
        SweepSeriesSpec spec;
        spec.label = systems[i].label + " " + to_string(s);
        spec.topo = &systems[i].topo;
        spec.table = tables[i];
        spec.strategy = s;
        spec.pattern = worst_case
                           ? static_cast<const TrafficPattern*>(wc_patterns[i].get())
                           : static_cast<const TrafficPattern*>(uni_patterns[i].get());
        spec.loads = loads;
        specs.push_back(std::move(spec));
      }
    }
    run_and_print_sweep(
        std::string("Fig. 6") + (worst_case ? "b — worst-case" : "a — uniform"), specs,
        opts, &report);
  }
  return report.finish();
}
