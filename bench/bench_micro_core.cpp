// Engine micro-benchmarks (google-benchmark): the hot paths behind the
// figure reproductions — GF arithmetic, topology construction, BFS tables,
// route decisions, the partitioner, and raw event-queue throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gf/galois_field.h"
#include "partition/bisection_bandwidth.h"
#include "routing/factory.h"
#include "routing/minimal_table.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

void BM_GaloisFieldMul(benchmark::State& state) {
  GaloisField gf(static_cast<int>(state.range(0)));
  Rng rng(1);
  const int q = gf.order();
  for (auto _ : state) {
    const int a = 1 + static_cast<int>(rng.next_below(q - 1));
    const int b = 1 + static_cast<int>(rng.next_below(q - 1));
    benchmark::DoNotOptimize(gf.mul(a, b));
  }
}
BENCHMARK(BM_GaloisFieldMul)->Arg(13)->Arg(25);

void BM_BuildSlimFly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_slim_fly(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_BuildSlimFly)->Arg(7)->Arg(13);

void BM_BuildOft(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_oft(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_BuildOft)->Arg(6)->Arg(12);

void BM_MinimalTable(benchmark::State& state) {
  const Topology topo = build_slim_fly(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MinimalTable table(topo);
    benchmark::DoNotOptimize(table.distance(0, 1));
  }
}
BENCHMARK(BM_MinimalTable)->Arg(7)->Arg(13);

void BM_RouteDecisionMinimal(benchmark::State& state) {
  const Topology topo = build_slim_fly(7);
  const MinimalTable table(topo);
  ZeroLoadProvider loads;
  const auto algo = make_routing(topo, table, RoutingStrategy::kMinimal, loads);
  Rng rng(1);
  const int n = topo.num_routers();
  for (auto _ : state) {
    const int a = static_cast<int>(rng.next_below(n));
    int b = static_cast<int>(rng.next_below(n));
    if (b == a) b = (b + 1) % n;
    benchmark::DoNotOptimize(algo->route(a, b, rng));
  }
}
BENCHMARK(BM_RouteDecisionMinimal);

void BM_RouteDecisionUgal(benchmark::State& state) {
  const Topology topo = build_slim_fly(7);
  const MinimalTable table(topo);
  ZeroLoadProvider loads;
  const auto algo = make_routing(topo, table, RoutingStrategy::kUgal, loads);
  Rng rng(1);
  const int n = topo.num_routers();
  for (auto _ : state) {
    const int a = static_cast<int>(rng.next_below(n));
    int b = static_cast<int>(rng.next_below(n));
    if (b == a) b = (b + 1) % n;
    benchmark::DoNotOptimize(algo->route(a, b, rng));
  }
}
BENCHMARK(BM_RouteDecisionUgal);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    Rng rng(1);
    for (int i = 0; i < 4096; ++i) {
      q.push(static_cast<TimePs>(rng.next_below(1 << 20)), EventType::kNicFree, i);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueue);

void BM_EventQueueStress(benchmark::State& state) {
  // Simulator-shaped stress: the heap stays around `resident` entries while
  // pushes and pops interleave, so sift costs reflect steady-state depth
  // rather than a single fill/drain ramp.
  const int resident = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    q.reserve(resident + 8);
    Rng rng(1);
    TimePs now = 0;
    for (int i = 0; i < resident; ++i) {
      q.push(static_cast<TimePs>(rng.next_below(1 << 12)), EventType::kNicFree, i);
    }
    for (int i = 0; i < 1 << 16; ++i) {
      const Event e = q.pop();
      now = e.time;
      // Reschedule a short distance ahead, as packet events do.
      q.push(now + 1 + static_cast<TimePs>(rng.next_below(1 << 10)),
             EventType::kNicFree, e.a);
      benchmark::DoNotOptimize(now);
    }
  }
}
BENCHMARK(BM_EventQueueStress)->Arg(1 << 8)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

void BM_Bisection(benchmark::State& state) {
  const Topology topo = build_mlfm(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approximate_bisection_bandwidth(topo, 2));
  }
}
BENCHMARK(BM_Bisection);

void BM_SimulateUniformLoad(benchmark::State& state) {
  const Topology topo = build_oft(4);
  SimConfig cfg;
  for (auto _ : state) {
    SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
    UniformTraffic uni(topo.num_nodes());
    benchmark::DoNotOptimize(stack.run_open_loop(uni, 0.5, us(4), us(1)));
  }
}
BENCHMARK(BM_SimulateUniformLoad)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace d2net

BENCHMARK_MAIN();
