// Engine micro-benchmarks (google-benchmark): the hot paths behind the
// figure reproductions — GF arithmetic, topology construction, BFS tables,
// route decisions, the partitioner, raw event-queue throughput, and the
// intrusive VOQ / packet-pool / CSR primitives of the event core.
//
// Two modes:
//   bench_micro_core [gbench args]   the usual google-benchmark CLI
//   bench_micro_core --json=PATH     self-timed perf snapshot: end-to-end
//                                    events/sec at saturation plus ns/op
//                                    for the core primitives, written as
//                                    flat JSON (the BENCH_core.json
//                                    artifact scripts/ci.sh diffs against;
//                                    see docs/perf.md for refreshing it).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gf/galois_field.h"
#include "partition/bisection_bandwidth.h"
#include "routing/factory.h"
#include "routing/minimal_table.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/traffic.h"
#include "sim/voq.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

void BM_GaloisFieldMul(benchmark::State& state) {
  GaloisField gf(static_cast<int>(state.range(0)));
  Rng rng(1);
  const int q = gf.order();
  for (auto _ : state) {
    const int a = 1 + static_cast<int>(rng.next_below(q - 1));
    const int b = 1 + static_cast<int>(rng.next_below(q - 1));
    benchmark::DoNotOptimize(gf.mul(a, b));
  }
}
BENCHMARK(BM_GaloisFieldMul)->Arg(13)->Arg(25);

void BM_BuildSlimFly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_slim_fly(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_BuildSlimFly)->Arg(7)->Arg(13);

void BM_BuildOft(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_oft(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_BuildOft)->Arg(6)->Arg(12);

void BM_MinimalTable(benchmark::State& state) {
  const Topology topo = build_slim_fly(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MinimalTable table(topo);
    benchmark::DoNotOptimize(table.distance(0, 1));
  }
}
BENCHMARK(BM_MinimalTable)->Arg(7)->Arg(13);

void BM_RouteDecisionMinimal(benchmark::State& state) {
  const Topology topo = build_slim_fly(7);
  const MinimalTable table(topo);
  ZeroLoadProvider loads;
  const auto algo = make_routing(topo, table, RoutingStrategy::kMinimal, loads);
  Rng rng(1);
  const int n = topo.num_routers();
  for (auto _ : state) {
    const int a = static_cast<int>(rng.next_below(n));
    int b = static_cast<int>(rng.next_below(n));
    if (b == a) b = (b + 1) % n;
    benchmark::DoNotOptimize(algo->route(a, b, rng));
  }
}
BENCHMARK(BM_RouteDecisionMinimal);

void BM_RouteDecisionUgal(benchmark::State& state) {
  const Topology topo = build_slim_fly(7);
  const MinimalTable table(topo);
  ZeroLoadProvider loads;
  const auto algo = make_routing(topo, table, RoutingStrategy::kUgal, loads);
  Rng rng(1);
  const int n = topo.num_routers();
  for (auto _ : state) {
    const int a = static_cast<int>(rng.next_below(n));
    int b = static_cast<int>(rng.next_below(n));
    if (b == a) b = (b + 1) % n;
    benchmark::DoNotOptimize(algo->route(a, b, rng));
  }
}
BENCHMARK(BM_RouteDecisionUgal);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    Rng rng(1);
    for (int i = 0; i < 4096; ++i) {
      q.push(static_cast<TimePs>(rng.next_below(1 << 20)), EventType::kNicFree, i);
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueue);

void BM_EventQueueStress(benchmark::State& state) {
  // Simulator-shaped stress: the queue stays around `resident` entries while
  // pushes and pops interleave, so scheduling costs reflect steady-state
  // depth rather than a single fill/drain ramp. Arg 1 selects the scheduler
  // (0 = 4-ary heap, 1 = bucketed wheel).
  const int resident = static_cast<int>(state.range(0));
  const auto kind =
      state.range(1) == 0 ? SchedulerKind::kHeap : SchedulerKind::kWheel;
  for (auto _ : state) {
    EventQueue q;
    q.set_scheduler(kind);
    q.reserve(resident + 8);
    Rng rng(1);
    TimePs now = 0;
    for (int i = 0; i < resident; ++i) {
      q.push(static_cast<TimePs>(rng.next_below(1 << 17)), EventType::kNicFree, i);
    }
    for (int i = 0; i < 1 << 16; ++i) {
      const Event e = q.pop();
      now = e.time;
      // Reschedule ahead on the simulator's own scale (serialization ~20k ps,
      // router latency ~100k ps), as packet events do.
      q.push(now + 1 + static_cast<TimePs>(rng.next_below(1 << 17)),
             EventType::kNicFree, e.a);
      benchmark::DoNotOptimize(now);
    }
  }
}
BENCHMARK(BM_EventQueueStress)
    ->Args({1 << 8, 0})
    ->Args({1 << 12, 0})
    ->Args({1 << 8, 1})
    ->Args({1 << 12, 1})
    ->Unit(benchmark::kMillisecond);

void BM_VoqPushPop(benchmark::State& state) {
  // The intrusive FIFO primitive behind every (in_port, vc, out_port) VOQ:
  // push 8 pool packets through one cell and drain it, all index stores.
  PacketPool pool;
  int ids[8];
  for (int& id : ids) id = pool.alloc();
  VoqCell cell;
  for (auto _ : state) {
    for (const int id : ids) {
      benchmark::DoNotOptimize(voq_push(pool, cell, id, TimePs{100}));
    }
    while (cell.head >= 0) benchmark::DoNotOptimize(voq_pop(pool, cell));
  }
}
BENCHMARK(BM_VoqPushPop);

void BM_PacketPoolAllocRelease(benchmark::State& state) {
  // Steady-state pool churn: the free list stays warm, so alloc/release is
  // the pure index push/pop the simulator pays per packet.
  PacketPool pool;
  for (auto _ : state) {
    int ids[16];
    for (int& id : ids) id = pool.alloc();
    for (const int id : ids) pool.release(id);
    benchmark::DoNotOptimize(ids[0]);
  }
}
BENCHMARK(BM_PacketPoolAllocRelease);

void BM_CsrNextHops(benchmark::State& state) {
  // The CSR (offsets + values) next-hop lookup every per-hop routing draw
  // reads: two offset loads and a span over the shared table.
  const Topology topo = build_slim_fly(7);
  const MinimalTable table(topo);
  Rng rng(1);
  const int n = topo.num_routers();
  for (auto _ : state) {
    const int a = static_cast<int>(rng.next_below(n));
    int b = static_cast<int>(rng.next_below(n));
    if (b == a) b = (b + 1) % n;
    const auto nh = table.next_hops(a, b);
    benchmark::DoNotOptimize(nh.data());
    benchmark::DoNotOptimize(nh.size());
  }
}
BENCHMARK(BM_CsrNextHops);

void BM_Bisection(benchmark::State& state) {
  const Topology topo = build_mlfm(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approximate_bisection_bandwidth(topo, 2));
  }
}
BENCHMARK(BM_Bisection);

void BM_SimulateUniformLoad(benchmark::State& state) {
  const Topology topo = build_oft(4);
  SimConfig cfg;
  for (auto _ : state) {
    SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
    UniformTraffic uni(topo.num_nodes());
    benchmark::DoNotOptimize(stack.run_open_loop(uni, 0.5, us(4), us(1)));
  }
}
BENCHMARK(BM_SimulateUniformLoad)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------ --json
// Self-timed perf snapshot (no google-benchmark involvement, so the output
// is a deterministic set of flat keys the CI perf-smoke stage can diff).

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` end-to-end events/sec for one routing strategy on the
/// saturation scenario (SF(7), uniform, load 0.9, 20 us run / 5 us warmup,
/// seed 1 — deep in the saturated regime where the event core dominates).
std::int64_t scenario_events_per_sec(const Topology& topo, RoutingStrategy strategy,
                                     int reps) {
  UniformTraffic uni(topo.num_nodes());
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    SimConfig cfg;
    cfg.seed = 1;
    SimStack stack(topo, strategy, cfg);
    const double t0 = now_seconds();
    const OpenLoopResult res = stack.run_open_loop(uni, 0.9, us(20), us(5));
    const double dt = now_seconds() - t0;
    if (dt > 0.0) {
      best = std::max(best, static_cast<double>(res.events_processed) / dt);
    }
  }
  return static_cast<std::int64_t>(best);
}

/// Best-of-3 ns per operation for a self-contained kernel: `body(iters)`
/// must execute the operation exactly `iters * ops_per_iter` times.
template <typename Body>
double best_ns_per_op(std::int64_t iters, std::int64_t ops_per_iter, Body&& body) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_seconds();
    body(iters);
    const double dt = now_seconds() - t0;
    best = std::min(best, dt * 1e9 / static_cast<double>(iters * ops_per_iter));
  }
  return best;
}

/// Self-relative sharded events/sec on the paper-scale saturation scenario
/// (SF q=13, ~3.4k nodes, uniform, load 0.9). One run per shard count —
/// the runs are long enough that best-of-N would dominate snapshot time.
std::int64_t sharded_events_per_sec(const Topology& topo, int shards) {
  UniformTraffic uni(topo.num_nodes());
  SimConfig cfg;
  cfg.seed = 1;
  cfg.shards = shards;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  const double t0 = now_seconds();
  const OpenLoopResult res = stack.run_open_loop(uni, 0.9, us(4), us(1));
  const double dt = now_seconds() - t0;
  return dt > 0.0
             ? static_cast<std::int64_t>(
                   static_cast<double>(res.events_processed) / dt)
             : 0;
}

int write_json_snapshot(const std::string& path) {
  const Topology topo = build_slim_fly(7);

  const std::int64_t eps_min =
      scenario_events_per_sec(topo, RoutingStrategy::kMinimal, 3);
  const std::int64_t eps_ugal =
      scenario_events_per_sec(topo, RoutingStrategy::kUgal, 3);

  // VOQ push+pop pair through one intrusive cell.
  PacketPool pool;
  int ids[8];
  for (int& id : ids) id = pool.alloc();
  VoqCell cell;
  const double ns_voq = best_ns_per_op(2'000'000, 8, [&](std::int64_t iters) {
    for (std::int64_t i = 0; i < iters; ++i) {
      for (const int id : ids) voq_push(pool, cell, id, TimePs{100});
      while (cell.head >= 0) benchmark::DoNotOptimize(voq_pop(pool, cell));
    }
  });

  // Pool alloc+release pair with a warm free list.
  const double ns_pool = best_ns_per_op(2'000'000, 16, [&](std::int64_t iters) {
    for (std::int64_t i = 0; i < iters; ++i) {
      int batch[16];
      for (int& id : batch) id = pool.alloc();
      for (const int id : batch) pool.release(id);
      benchmark::DoNotOptimize(batch[0]);
    }
  });

  // CSR next-hop lookup on the shared minimal table.
  const MinimalTable table(topo);
  const int n = topo.num_routers();
  const double ns_csr = best_ns_per_op(4'000'000, 1, [&](std::int64_t iters) {
    Rng rng(1);
    for (std::int64_t i = 0; i < iters; ++i) {
      const int a = static_cast<int>(rng.next_below(n));
      int b = static_cast<int>(rng.next_below(n));
      if (b == a) b = (b + 1) % n;
      const auto nh = table.next_hops(a, b);
      benchmark::DoNotOptimize(nh.data());
    }
  });

  // Steady-state event-queue push+pop pair, both schedulers.
  const auto queue_ns = [&](SchedulerKind kind) {
    return best_ns_per_op(1 << 21, 1, [&](std::int64_t iters) {
      EventQueue q;
      q.set_scheduler(kind);
      q.reserve(1 << 12);
      Rng rng(1);
      for (int i = 0; i < 1 << 12; ++i) {
        q.push(static_cast<TimePs>(rng.next_below(1 << 17)), EventType::kNicFree, i);
      }
      for (std::int64_t i = 0; i < iters; ++i) {
        const Event e = q.pop();
        // Reschedule ahead on the simulator's own scale (serialization
        // ~20k ps, router latency ~100k ps).
        q.push(e.time + 1 + static_cast<TimePs>(rng.next_below(1 << 17)),
               EventType::kNicFree, e.a);
      }
      benchmark::DoNotOptimize(q.empty());
    });
  };
  const double ns_heap = queue_ns(SchedulerKind::kHeap);
  const double ns_wheel = queue_ns(SchedulerKind::kWheel);

  // Paper-scale sharded-vs-serial comparison. The speedup ratios are only
  // meaningful relative to the recorded core count: lanes time-slice on a
  // host with fewer physical cores than shards, so the ratio saturates at
  // ~1.0 on one core and approaches the shard count only with >= `shards`
  // cores (see docs/sharded_sim.md).
  const Topology paper = build_slim_fly(13);
  const std::int64_t eps_sh1 = sharded_events_per_sec(paper, 1);
  const std::int64_t eps_sh2 = sharded_events_per_sec(paper, 2);
  const std::int64_t eps_sh4 = sharded_events_per_sec(paper, 4);
  const auto speedup = [&](std::int64_t eps) {
    return eps_sh1 > 0 ? static_cast<double>(eps) / static_cast<double>(eps_sh1)
                       : 0.0;
  };

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_core: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_micro_core\",\n");
  std::fprintf(f,
               "  \"scenario\": \"slim_fly q=7, uniform, load 0.9, 20us run / "
               "5us warmup, seed 1, best of 3\",\n");
  std::fprintf(f, "  \"events_per_sec_minimal\": %lld,\n",
               static_cast<long long>(eps_min));
  std::fprintf(f, "  \"events_per_sec_ugal\": %lld,\n",
               static_cast<long long>(eps_ugal));
  std::fprintf(f,
               "  \"sharded_scenario\": \"slim_fly q=13, uniform, load 0.9, "
               "4us run / 1us warmup, seed 1, single run\",\n");
  std::fprintf(f, "  \"cores\": %d,\n", ThreadPool::hardware_concurrency());
  std::fprintf(f, "  \"events_per_sec_sharded_serial\": %lld,\n",
               static_cast<long long>(eps_sh1));
  std::fprintf(f, "  \"events_per_sec_sharded_2\": %lld,\n",
               static_cast<long long>(eps_sh2));
  std::fprintf(f, "  \"events_per_sec_sharded_4\": %lld,\n",
               static_cast<long long>(eps_sh4));
  std::fprintf(f, "  \"speedup_sharded_2\": %.3f,\n", speedup(eps_sh2));
  std::fprintf(f, "  \"speedup_sharded_4\": %.3f,\n", speedup(eps_sh4));
  std::fprintf(f, "  \"ns_voq_push_pop\": %.2f,\n", ns_voq);
  std::fprintf(f, "  \"ns_pool_alloc_release\": %.2f,\n", ns_pool);
  std::fprintf(f, "  \"ns_csr_next_hops\": %.2f,\n", ns_csr);
  std::fprintf(f, "  \"ns_event_queue_heap\": %.2f,\n", ns_heap);
  std::fprintf(f, "  \"ns_event_queue_wheel\": %.2f\n", ns_wheel);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("events/sec: minimal=%lld ugal=%lld -> %s\n",
              static_cast<long long>(eps_min), static_cast<long long>(eps_ugal),
              path.c_str());
  std::printf("sharded events/sec (SF q=13, %d core(s)): serial=%lld 2=%lld "
              "(%.2fx) 4=%lld (%.2fx)\n",
              ThreadPool::hardware_concurrency(), static_cast<long long>(eps_sh1),
              static_cast<long long>(eps_sh2), speedup(eps_sh2),
              static_cast<long long>(eps_sh4), speedup(eps_sh4));
  return 0;
}

}  // namespace
}  // namespace d2net

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      return d2net::write_json_snapshot(arg.substr(7));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
