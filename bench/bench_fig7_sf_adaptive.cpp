// Fig. 7: SF-A (generic UGAL-L with the original length-scaled cost) on the
// Slim Fly with p = floor(r'/2): (a) varying nI with cSF = 1, (b) varying
// cSF with nI = 4, under uniform and worst-case traffic.
//
// DEPRECATED as a hand-maintained driver: the same figure is reproducible
// from the committed spec via `d2net_campaign --spec=campaigns/fig7.json`
// with byte-identical --json output (verified by scripts/ci.sh stage 6; see
// docs/campaigns.md). Kept as the identity baseline.
#include "bench_common.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 7: SF-A adaptive routing parameter sweeps");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  BenchReport report("bench_fig7_sf_adaptive", opts);

  AdaptiveFigureSpec spec;
  spec.title = "Fig. 7 SF-A";
  spec.strategy = RoutingStrategy::kUgal;
  spec.ni_values = {1, 4, 8};
  spec.fixed_c = 1.0;  // cSF = 1
  spec.c_values = {0.25, 1.0, 4.0};
  spec.fixed_ni = 4;
  run_adaptive_figure(paper_slim_fly(opts.full, /*ceil_p=*/false), spec, opts, &report);
  return report.finish();
}
