// Shared plumbing for the per-figure bench binaries: standard flags, the
// paper's four topology configurations (scaled-down defaults + --full for
// the exact Section 4.1 systems), parallel sweep execution (--jobs), sweep
// table printing, and machine-readable perf/result JSON (--json).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/journal.h"
#include "common/table.h"
#include "sim/exchange.h"
#include "sim/experiment.h"
#include "sim/sweep_runner.h"
#include "topology/topology.h"

namespace d2net::bench {

/// Run-scale parameters shared by all simulation benches.
struct BenchOptions {
  bool full = false;         ///< paper-exact configurations (much slower)
  TimePs duration = 0;       ///< per-point simulated time
  TimePs warmup = 0;
  std::uint64_t seed = 1;
  bool csv = false;          ///< additionally dump CSV after each table
  int jobs = 0;              ///< sweep-point parallelism; 0 = all cores
  /// Worker event cores per simulation (SimConfig::shards). Results are
  /// bit-identical for every value; jobs auto-sizing (--jobs 0) divides the
  /// machine by this so shards x points compose without oversubscription
  /// (see docs/sharded_sim.md).
  int shards = 1;
  std::string json_path;     ///< write timing/result JSON here ("" = off)
  bool metrics = false;      ///< collect per-port/VC detail (see docs/observability.md)
  TimePs metrics_sample = 0; ///< occupancy sampling period with --metrics

  // Engine selection (see docs/flow_engine.md). The packet engine is the
  // default and its journal manifests / --json output are byte-identical to
  // versions that predate the flow engine; flow-engine knobs enter the
  // manifest only when --engine flow is selected.
  SimEngine engine = SimEngine::kPacket;  ///< --engine packet|flow
  std::int64_t flow_bytes = 4096;         ///< --flow-bytes: open-loop flow size
  TimePs flow_interval = 0;               ///< --flow-interval-us: 0 = exact rates
  int flow_active = 16;                   ///< --flow-active: concurrent flows/node

  // Durable execution (see docs/durable_sweeps.md):
  std::string journal_dir;     ///< --journal: crash-safe journal directory
  bool resume = false;         ///< --resume: replay completed points from it
  double point_timeout_s = 0;  ///< --point-timeout: wall budget per point, s
  int point_retries = 1;       ///< --point-retries: extra attempts per point

  // Multi-worker campaigns (see docs/campaigns.md, distributed campaigns).
  // These do not enter the journal manifest: like --jobs, they change how
  // the work is executed, never what it computes.
  /// fsync journal appends + directory metadata (JournalOptions::durable).
  /// Defaults off for plain benches (the historical flush-only behavior);
  /// the campaign runner turns it on.
  bool journal_durable = false;
  /// Worker id stamped on journal entries and stderr diagnostics
  /// (JournalOptions::worker). Empty = solo.
  std::string journal_worker;

  /// SweepRunner options carrying these settings (seed becomes the base
  /// seed for per-point derivation).
  SweepRunOptions sweep_options() const;
};

/// Registers the standard flags on a Cli.
void add_standard_flags(Cli& cli);

/// Reads them back after parsing. `workers` is the number of cooperating
/// campaign worker processes expected on this machine (1 for every plain
/// bench): the oversubscription warning accounts for workers x jobs x
/// shards threads landing on one host's cores.
BenchOptions read_standard_flags(const Cli& cli, int workers = 1);

/// One of the paper's four evaluated systems (Section 4.1).
struct SystemConfig {
  std::string label;  ///< e.g. "SF p=floor", "MLFM", "OFT"
  Topology topo;
};

/// The four evaluated configurations. Default scale: SF q=7 (p=5 and 6),
/// MLFM h=7, OFT k=6 (N ~ 370-590). --full: SF q=13 (p=9/10), MLFM h=15,
/// OFT k=12 (N ~ 3042-3600, the CORAL-Summit-like systems of the paper).
std::vector<SystemConfig> paper_systems(bool full);

/// Individual builders (used by the adaptive-routing figures).
Topology paper_slim_fly(bool full, bool ceil_p);
Topology paper_mlfm(bool full);
Topology paper_oft(bool full);

/// Accumulates one record per executed sweep and (if --json was given)
/// writes a single JSON document on write():
///   {"bench": ..., "jobs": N, "seed": S, "full": bool,
///    "duration_us": ..., "warmup_us": ...,
///    "sweeps": [{"title": ..., "wall_seconds": ..., "events": ...,
///                "events_per_second": ..., "points": N,
///                "series": [{"label": ..., "points": [{"load": ...,
///                  "throughput": ..., "avg_latency_ns": ...,
///                  "p99_latency_ns": ..., "packets_measured": ...,
///                  "phases": {"injected_warmup": ..., "injected_measured": ...,
///                    "delivered_warmup": ..., "delivered_measured": ...,
///                    "delivered_carryover": ..., "in_flight_at_end": ...}}]}]}]}
///
/// Points run with a non-empty fault schedule additionally carry a "faults"
/// object: {"faults_applied", "packets_dropped", "packets_retried",
/// "packets_lost", "reroutes", "unreachable_pairs", "wedged", plus a
/// "watchdog" snapshot when wedged and "delivered_bytes_buckets" /
/// "bucket_width_us" when recovery sampling is on} (see docs/resilience.md).
///
/// Points cut short by --point-timeout carry "timed_out": true; points that
/// needed retries carry "attempts": N; journaled points whose every attempt
/// threw carry "failed": true and "error": "..." (absent on healthy runs,
/// keeping their output byte-stable across versions).
///
/// Exchange tables (run_exchange_table) land in a sibling "exchanges"
/// array: [{"title": ..., "wall_seconds": ..., "points": N, "rows":
/// [{"system", "routing", "completed", "eff_throughput", "completion_us",
///   "delivered_bytes", "total_bytes", "avg_latency_ns", plus optional
///   "timed_out"/"wedged"/"faults"/"metrics"}]}]. The array is emitted only
/// when at least one exchange ran, keeping sweep-only benches' output
/// byte-stable.
///
/// Non-finite doubles (a NaN throughput from an empty measurement window,
/// an infinite latency) are emitted as JSON null via write_json_double —
/// "nan"/"inf" are not valid JSON and would corrupt the document.
///
/// With --metrics each point additionally carries a "metrics" object:
/// {"sample_period_us": ..., "counters": {name: value, ...},
///  "histograms": {name: {"count", "mean", "p50", "p99", "underflow",
///                        "overflow"}, ...},
///  "vc_totals": [{"vc", "packets", "bytes", "minimal", "indirect"}, ...],
///  "occupancy": [{"t_us", "bytes"}, ...],
///  "ports": [{"router", "port", "peer_router", "peer_node", "packets",
///             "bytes", "credit_stall_ns", "occ_mean_bytes", "occ_max_bytes",
///             "vcs": [{"vc", "packets", "bytes", "minimal", "indirect"}]}]}
/// (only ports that forwarded traffic or stalled on credit are listed; see
/// docs/observability.md for semantics). Points simulated with --shards > 1
/// additionally carry metrics.sharding: {"shards", "windows",
/// "mean_window_width_ns", "cross_shard_messages", "shards_detail":
/// [{"shard", "routers", "nodes", "events", "messages_sent",
///   "capacities": {...}}]} (see docs/sharded_sim.md).
/// One row of an exchange table (Fig. 13 shape): one (system, routing)
/// combination's all-to-all result. Restored rows carry their journaled
/// JSON fragment, spliced back verbatim like sweep points.
struct ExchangeRow {
  std::string system;
  std::string routing;
  ExchangeResult result;
  bool restored = false;
  std::string restored_json;
};

class BenchReport {
 public:
  /// With opts.journal_dir set, opens (or resumes) the crash-safe sweep
  /// journal — manifest mismatch on resume is a hard error (see
  /// docs/durable_sweeps.md). `manifest_extra` is appended to the standard
  /// manifest text — the campaign runner records its spec hash there, so a
  /// journal cannot resume under an edited spec.
  BenchReport(std::string bench_name, const BenchOptions& opts,
              std::string manifest_extra = "");

  void add_sweep(const std::string& title, const std::vector<std::string>& labels,
                 const std::vector<std::vector<SweepPoint>>& series,
                 const SweepRunStats& stats);

  /// Records one executed exchange table for the "exchanges" JSON array.
  void add_exchange(const std::string& title, const std::vector<ExchangeRow>& rows,
                    const SweepRunStats& stats);

  /// Writes the document to opts.json_path; no-op when the flag was unset.
  void write() const;

  /// Prints a failure summary (failed / timed-out points with their errors),
  /// writes the report, and returns the process exit code: non-zero iff any
  /// point permanently failed. Mains end with `return report.finish();`.
  int finish() const;

  /// The journal opened from opts.journal_dir (null without --journal).
  SweepJournal* journal() const { return journal_.get(); }

 private:
  struct SweepRecord {
    std::string title;
    std::vector<std::string> labels;
    std::vector<std::vector<SweepPoint>> series;
    SweepRunStats stats;
  };
  struct ExchangeRecord {
    std::string title;
    std::vector<ExchangeRow> rows;
    SweepRunStats stats;
  };

  std::string bench_name_;
  BenchOptions opts_;
  std::vector<SweepRecord> sweeps_;
  std::vector<ExchangeRecord> exchanges_;
  std::unique_ptr<SweepJournal> journal_;
};

/// Renders one sweep point as the JSON object BenchReport emits (the
/// journal's payload format). Restored points return their journaled
/// fragment verbatim — the single-serializer design that makes resumed
/// --json output byte-identical to an uninterrupted run.
std::string render_point_json(const SweepPoint& pt);

/// Renders one exchange row as the JSON object BenchReport emits (and the
/// journal payload for exchange scopes). Restored rows return their
/// journaled fragment verbatim.
std::string render_exchange_row_json(const ExchangeRow& row);

/// The manifest text for a bench invocation (hashed into the journal; see
/// docs/durable_sweeps.md for the fields).
std::string bench_manifest(const std::string& bench_name, const BenchOptions& opts);

/// Prints a sweep as the paper's two panels: throughput and mean delay vs
/// offered load, one row per load, one series per label.
void print_sweep_table(const std::string& title,
                       const std::vector<std::string>& series_labels,
                       const std::vector<double>& loads,
                       const std::vector<std::vector<SweepPoint>>& series, bool csv);

/// Runs every (series, load) point of `specs` through a SweepRunner with
/// opts.jobs workers, prints the table (all specs must share one load
/// grid), logs wall-clock/events-per-second, and appends to `report` when
/// non-null. Results are deterministic and independent of opts.jobs.
std::vector<std::vector<SweepPoint>> run_and_print_sweep(
    const std::string& title, const std::vector<SweepSeriesSpec>& specs,
    const BenchOptions& opts, BenchReport* report);

/// One planned row of an exchange table: which system (by pointer into the
/// caller's storage) runs the all-to-all under which routing strategy.
struct ExchangeRowSpec {
  std::string system;
  const Topology* topo = nullptr;
  RoutingStrategy strategy = RoutingStrategy::kMinimal;
};

/// Worker-mode execution control for run_exchange_table (see
/// docs/campaigns.md, distributed campaigns). Null = the solo behavior.
struct ExchangeRunControl {
  /// Row mask (size = rows.size()); rows with a zero entry are skipped
  /// entirely — not restored, not executed, not journaled — and returned
  /// as empty placeholders. Row keys are positional, so a worker
  /// executing a slice journals exactly the keys a solo run would.
  const std::vector<char>* selected = nullptr;
  /// Register the composed title as a journal scope. A worker executing
  /// several shards of one table passes false after the first.
  bool register_scope = true;
  /// Suppress the printed table/timing (workers execute; only the merged
  /// run presents).
  bool quiet = false;
  /// Journal override: journal rows here instead of report->journal()
  /// (worker mode runs without a BenchReport). Non-owning.
  SweepJournal* journal = nullptr;
};

/// Runs an all-to-all exchange table (the Fig. 13 shape): for each row, one
/// make_all_to_all_plan(num_nodes, bytes_per_pair, order, opts.seed)
/// exchange on a fresh SimStack with cfg.seed = opts.seed, bounded by
/// `time_limit` simulated time and opts.point_timeout_s wall clock. Prints
/// the table under "== <title_base> (<bytes> B/pair, <order>) ==" (aborted
/// rows marked WEDGED / DEADLINE / TIMEOUT), appends to `report` when
/// non-null, and — when the report carries a journal — journals every row
/// under that composed title as the scope, restoring completed rows on
/// --resume with byte-identical output. Both bench_fig13_all_to_all and
/// d2net_campaign execute through this one function, which is what makes
/// ported campaign specs reproduce the binary byte-for-byte.
std::vector<ExchangeRow> run_exchange_table(const std::string& title_base,
                                            const std::vector<ExchangeRowSpec>& rows,
                                            std::int64_t bytes_per_pair, A2aOrder order,
                                            TimePs time_limit, const BenchOptions& opts,
                                            BenchReport* report,
                                            const ExchangeRunControl* ctl = nullptr);

/// Default offered-load grids for the bench binaries (coarser than the
/// library's, sized for a single-core host).
std::vector<double> bench_uniform_loads();
std::vector<double> bench_adversarial_loads();

/// Spec for the adaptive-routing figures (Figs. 7-12): two panels, (a)
/// varying nI at a fixed cost penalty and (b) varying the penalty at a
/// fixed nI, each under uniform random (UNI) and worst-case (WC) traffic.
struct AdaptiveFigureSpec {
  std::string title;
  RoutingStrategy strategy = RoutingStrategy::kUgal;  ///< kUgal or kUgalThreshold
  std::vector<int> ni_values;
  double fixed_c = 2.0;
  std::vector<double> c_values;
  int fixed_ni = 4;
};

/// Runs and prints one adaptive figure for the given topology.
void run_adaptive_figure(const Topology& topo, const AdaptiveFigureSpec& spec,
                         const BenchOptions& opts, BenchReport* report = nullptr);

}  // namespace d2net::bench
