// Declarative campaign runner: one driver for the whole bench matrix.
//
// Reads a committed JSON spec (campaigns/*.json, schema in
// docs/campaigns.md), expands it into the exact sweep/exchange work the
// hand-written bench binaries construct in code, and executes it through
// the shared machinery — SweepRunner (--jobs/--shards), the crash-safe
// journal (--journal/--resume), per-point deadlines (--point-timeout) and
// BenchReport --json output. A spec ported from a bench binary reproduces
// that binary's --json byte-for-byte (scripts/ci.sh stage 6 enforces this
// for fig6, fig13 and the transient-faults ablation).
//
// The journal manifest additionally pins the spec text's FNV-1a hash:
// editing a spec invalidates its journals, so a resumed campaign can never
// silently mix results from two versions of the experiment.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.h"
#include "common/error.h"
#include "sim/campaign.h"

using namespace d2net;
using namespace d2net::bench;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  D2NET_REQUIRE(in.good(), "cannot open --spec file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  D2NET_REQUIRE(in.good() || in.eof(), "failed reading --spec file: " + path);
  return os.str();
}

void print_dry_run(const CampaignSpec& spec, const ExpandedCampaign& plan) {
  std::printf("campaign %s: %zu system(s), %zu step(s)\n", spec.name.c_str(),
              spec.systems.size(), plan.steps.size());
  for (std::size_t i = 0; i < spec.systems.size(); ++i) {
    const Topology& t = plan.topologies[i];
    std::printf("  system %-12s %s (r=%d, n=%d, l=%d)\n", spec.systems[i].label.c_str(),
                spec.systems[i].topology.c_str(), t.num_routers(), t.num_nodes(),
                t.num_links());
  }
  for (const CampaignStep& step : plan.steps) {
    if (step.load) {
      std::size_t points = 0;
      for (const SweepSeriesSpec& s : step.load->series) points += s.loads.size();
      std::printf("  sweep    %-48s %zu series x %zu load(s) = %zu point(s)%s\n",
                  step.load->title.c_str(), step.load->series.size(),
                  step.load->series.front().loads.size(), points,
                  step.load->series.front().fault.enabled() ? " [faults]" : "");
    } else {
      std::printf("  exchange %-48s %zu row(s), %lld B/pair\n",
                  step.exchange->title.c_str(), step.exchange->rows.size(),
                  static_cast<long long>(step.exchange->bytes_per_pair));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("declarative campaign runner: expand and execute a campaigns/*.json spec "
          "(see docs/campaigns.md)");
  cli.flag("spec", std::string{}, "campaign spec file (JSON; required)")
      .flag("dry-run", false, "print the expanded matrix and exit without simulating");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  const std::string spec_path = cli.get_string("spec");
  D2NET_REQUIRE(!spec_path.empty(), "--spec=<file> is required");

  const std::string spec_text = read_file(spec_path);
  const CampaignSpec spec = parse_campaign_spec(spec_text, spec_path);
  const CampaignParams params{opts.full, opts.seed, opts.duration, opts.warmup};
  const ExpandedCampaign plan = expand_campaign(spec, params);

  if (cli.get_bool("dry-run")) {
    print_dry_run(spec, plan);
    return 0;
  }

  // The spec hash joins the manifest so a journal written under one spec
  // version refuses to resume under an edited one.
  std::ostringstream extra;
  extra << "spec=" << spec_path << "\n"
        << "spec_fnv1a64=" << std::hex << fnv1a64(spec_text) << "\n";
  BenchReport report(spec.name, opts, extra.str());

  struct StepSummary {
    std::string title;
    const char* kind;
    std::int64_t points = 0;
    std::int64_t restored = 0;
    std::int64_t timed_out = 0;
    std::int64_t failed = 0;
  };
  std::vector<StepSummary> summaries;

  for (const CampaignStep& step : plan.steps) {
    if (step.load) {
      const auto series = run_and_print_sweep(step.load->title, step.load->series, opts,
                                              &report);
      StepSummary sum{step.load->title, "sweep"};
      for (const auto& s : series) {
        for (const SweepPoint& pt : s) {
          ++sum.points;
          sum.restored += pt.restored ? 1 : 0;
          sum.timed_out += pt.result.timed_out ? 1 : 0;
          sum.failed += pt.failed ? 1 : 0;
        }
      }
      summaries.push_back(std::move(sum));
    } else {
      const CampaignExchangeSweep& ex = *step.exchange;
      std::vector<ExchangeRowSpec> rows;
      for (const CampaignExchangeRow& r : ex.rows) {
        rows.push_back({r.system, r.topo, r.strategy});
      }
      const auto done = run_exchange_table(ex.title, rows, ex.bytes_per_pair, ex.order,
                                           ex.time_limit, opts, &report);
      StepSummary sum{ex.title, "exchange"};
      for (const ExchangeRow& r : done) {
        ++sum.points;
        sum.restored += r.restored ? 1 : 0;
        sum.timed_out += (!r.result.completed) ? 1 : 0;
      }
      summaries.push_back(std::move(sum));
    }
  }

  std::printf("\n== campaign summary: %s ==\n", spec.name.c_str());
  Table summary({"step", "kind", "points", "restored", "timed out/aborted", "failed"});
  for (const StepSummary& s : summaries) {
    summary.add(s.title, s.kind, s.points, s.restored, s.timed_out, s.failed);
  }
  summary.print(std::cout);
  if (opts.csv) summary.print_csv(std::cout);

  return report.finish();
}
