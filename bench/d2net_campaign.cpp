// Declarative campaign runner: one driver for the whole bench matrix.
//
// Reads a committed JSON spec (campaigns/*.json, schema in
// docs/campaigns.md), expands it into the exact sweep/exchange work the
// hand-written bench binaries construct in code, and executes it through
// the shared machinery — SweepRunner (--jobs/--shards), the crash-safe
// journal (--journal/--resume), per-point deadlines (--point-timeout) and
// BenchReport --json output. A spec ported from a bench binary reproduces
// that binary's --json byte-for-byte (scripts/ci.sh stage 6 enforces this
// for fig6, fig13 and the transient-faults ablation).
//
// The journal manifest additionally pins the spec text's FNV-1a hash:
// editing a spec invalidates its journals, so a resumed campaign can never
// silently mix results from two versions of the experiment.
//
// Beyond the solo path, the driver fans one campaign out across processes
// and hosts (see docs/campaigns.md, "Distributed campaigns"):
//   --workers/--worker-id   join as one cooperating worker (lease-based
//                           shard claiming; survives any worker dying)
//   --lease-ttl             staleness threshold for stealing a dead
//                           worker's shards
//   --merge                 merge worker journals and emit output
//                           byte-identical to a single-process run
//   --status                per-shard campaign state from the journal dir
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "campaign_worker.h"
#include "common/error.h"
#include "sim/campaign.h"

using namespace d2net;
using namespace d2net::bench;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  D2NET_REQUIRE(in.good(), "cannot open --spec file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  D2NET_REQUIRE(in.good() || in.eof(), "failed reading --spec file: " + path);
  return os.str();
}

void print_dry_run(const CampaignSpec& spec, const ExpandedCampaign& plan) {
  std::printf("campaign %s: %zu system(s), %zu step(s)\n", spec.name.c_str(),
              spec.systems.size(), plan.steps.size());
  for (std::size_t i = 0; i < spec.systems.size(); ++i) {
    const Topology& t = plan.topologies[i];
    std::printf("  system %-12s %s (r=%d, n=%d, l=%d)\n", spec.systems[i].label.c_str(),
                spec.systems[i].topology.c_str(), t.num_routers(), t.num_nodes(),
                t.num_links());
  }
  for (const CampaignStep& step : plan.steps) {
    if (step.load) {
      std::size_t points = 0;
      for (const SweepSeriesSpec& s : step.load->series) points += s.loads.size();
      std::printf("  sweep    %-48s %zu series x %zu load(s) = %zu point(s)%s\n",
                  step.load->title.c_str(), step.load->series.size(),
                  step.load->series.front().loads.size(), points,
                  step.load->series.front().fault.enabled() ? " [faults]" : "");
    } else {
      std::printf("  exchange %-48s %zu row(s), %lld B/pair\n",
                  step.exchange->title.c_str(), step.exchange->rows.size(),
                  static_cast<long long>(step.exchange->bytes_per_pair));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("declarative campaign runner: expand and execute a campaigns/*.json spec "
          "(see docs/campaigns.md)");
  cli.flag("spec", std::string{}, "campaign spec file (JSON; required)")
      .flag("dry-run", false, "print the expanded matrix and exit without simulating")
      .flag("workers", std::int64_t{1},
            "cooperating worker processes executing this campaign via "
            "lease-based shard claiming (see docs/campaigns.md); all must "
            "share --journal on one filesystem")
      .flag("worker-id", std::string{},
            "unique id of this worker (journals under <journal>/workers/<id>); "
            "setting it joins worker mode even with --workers=1")
      .flag("lease-ttl", 30.0,
            "seconds without heartbeat before a worker's shard lease is "
            "considered stale and stealable")
      .flag("shard-points", std::int64_t{0},
            "points per claimed shard (0 = auto, ~4 shards per worker); all "
            "workers of one campaign must agree")
      .flag("merge", false,
            "merge per-worker journals into <journal>/journal.jsonl and emit "
            "campaign output byte-identical to a single-process run")
      .flag("status", false,
            "print per-shard campaign state (unclaimed/leased/stale/done) "
            "from the journal directory and exit");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;

  const int workers = static_cast<int>(cli.get_int("workers"));
  D2NET_REQUIRE(workers >= 1, "--workers must be >= 1");
  BenchOptions opts = read_standard_flags(cli, workers);
  // Campaign mode defaults durable journaling on: the claim protocol (and
  // any long study worth journaling) assumes an acked point survives a
  // host power loss, not just a process kill. Bytes of all output are
  // unaffected.
  opts.journal_durable = !opts.journal_dir.empty();
  const std::string spec_path = cli.get_string("spec");
  D2NET_REQUIRE(!spec_path.empty(), "--spec=<file> is required");

  const std::string spec_text = read_file(spec_path);
  const CampaignSpec spec = parse_campaign_spec(spec_text, spec_path);
  // A spec-level "engine" key pins the experiment to one engine, overriding
  // --engine: the spec describes the experiment, the flags its scale. The
  // flow knobs (--flow-bytes/--flow-interval-us) stay invocation-scale.
  if (spec.engine.has_value()) opts.engine = *spec.engine;
  const CampaignParams params{opts.full, opts.seed, opts.duration, opts.warmup};
  const ExpandedCampaign plan = expand_campaign(spec, params);

  if (cli.get_bool("dry-run")) {
    print_dry_run(spec, plan);
    return 0;
  }

  // The spec hash joins the manifest so a journal written under one spec
  // version refuses to resume under an edited one.
  std::ostringstream extra;
  extra << "spec=" << spec_path << "\n"
        << "spec_fnv1a64=" << std::hex << fnv1a64(spec_text) << "\n";

  if (cli.get_bool("status")) {
    return print_campaign_status(plan, opts, cli.get_double("lease-ttl"));
  }
  if (cli.get_bool("merge")) {
    return run_campaign_merge(spec, plan, opts, extra.str());
  }
  if (workers > 1 || !cli.get_string("worker-id").empty()) {
    CampaignWorkerOptions wopts;
    wopts.workers = workers;
    wopts.worker_id = cli.get_string("worker-id");
    if (wopts.worker_id.empty()) {
      wopts.worker_id = std::string("w") + std::to_string(::getpid());
    }
    wopts.lease_ttl = cli.get_double("lease-ttl");
    wopts.shard_points = static_cast<int>(cli.get_int("shard-points"));
    D2NET_REQUIRE(wopts.shard_points >= 0, "--shard-points must be >= 0");
    opts.journal_worker = wopts.worker_id;
    return run_campaign_worker(spec, plan, opts, extra.str(), wopts);
  }

  // Solo path: exactly the pre-distributed behavior (no protocol overhead,
  // byte-identical output).
  return execute_campaign(spec, plan, opts, extra.str());
}
