// Ablation (design choice behind Fig. 14): rank-to-node mapping.
// Section 4.4 uses a *contiguous* mapping, which aligns the torus's X
// dimension with intra-router neighborhoods (X exchanges never leave the
// router) and lets adaptive routing exploit the topology's structure.
// A random placement destroys that alignment: X traffic enters the
// network and the MLFM's near-100% adaptive result degrades toward the
// INR level.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "sim/exchange.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Ablation: contiguous vs random rank mapping for the NN exchange");
  add_standard_flags(cli);
  cli.flag("bytes-per-neighbor", std::int64_t{32768}, "message size per neighbor");
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  const std::int64_t bytes = cli.get_int("bytes-per-neighbor");

  SimConfig cfg;
  cfg.seed = opts.seed;

  std::printf("== NN exchange: contiguous vs random mapping (effective throughput) ==\n");
  Table t({"system", "routing", "contiguous", "random"});
  for (const auto& sys : paper_systems(opts.full)) {
    if (sys.label == "SF p=cl") continue;
    const auto dims = paper_torus_dims(sys.topo);
    const ExchangePlan contiguous =
        make_nearest_neighbor_plan(sys.topo.num_nodes(), dims, bytes);
    Rng rng(opts.seed);
    const auto map =
        random_rank_mapping(sys.topo.num_nodes(), dims[0] * dims[1] * dims[2], rng);
    const ExchangePlan random_plan =
        make_nearest_neighbor_plan(sys.topo.num_nodes(), dims, bytes, map);
    for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kUgalThreshold}) {
      SimStack a(sys.topo, s, cfg);
      const ExchangeResult ra = a.run_exchange(contiguous, us(20'000'000));
      SimStack b(sys.topo, s, cfg);
      const ExchangeResult rb = b.run_exchange(random_plan, us(20'000'000));
      t.add(sys.label, to_string(s), ra.completed ? fmt(ra.effective_throughput, 3) : "t/o",
            rb.completed ? fmt(rb.effective_throughput, 3) : "t/o");
    }
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
