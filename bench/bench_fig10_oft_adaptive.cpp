// Fig. 10: OFT-A (generic UGAL-L) on the two-level OFT: (a) varying nI
// with c = 2, (b) varying c with nI = 1. The paper finds the OFT prefers a
// *constricted* indirect-path selection (low nI, high c) on uniform
// traffic, while the worst case is largely parameter-independent.
//
// DEPRECATED as a hand-maintained driver: the same figure is reproducible
// from the committed spec via `d2net_campaign --spec=campaigns/fig10.json`
// with byte-identical --json output (verified by scripts/ci.sh stage 6; see
// docs/campaigns.md). Kept as the identity baseline.
#include "bench_common.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 10: OFT-A adaptive routing parameter sweeps");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  BenchReport report("bench_fig10_oft_adaptive", opts);

  AdaptiveFigureSpec spec;
  spec.title = "Fig. 10 OFT-A";
  spec.strategy = RoutingStrategy::kUgal;
  spec.ni_values = {1, 5, 10};
  spec.fixed_c = 2.0;
  spec.c_values = {0.5, 2.0, 8.0};
  spec.fixed_ni = 1;
  run_adaptive_figure(paper_oft(opts.full), spec, opts, &report);
  return report.finish();
}
