// Fig. 8: SF-ATh — SF-A with a 10% minimal-routing threshold, same sweeps
// as Fig. 7. The threshold removes the generic-UGAL latency bump on
// uniform traffic at the price of higher low-load worst-case latency.
//
// DEPRECATED as a hand-maintained driver: the same figure is reproducible
// from the committed spec via `d2net_campaign --spec=campaigns/fig8.json`
// with byte-identical --json output (verified by scripts/ci.sh stage 6; see
// docs/campaigns.md). Kept as the identity baseline.
#include "bench_common.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 8: SF-ATh adaptive routing with threshold (T = 10%)");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  BenchReport report("bench_fig8_sf_adaptive_th", opts);

  AdaptiveFigureSpec spec;
  spec.title = "Fig. 8 SF-ATh";
  spec.strategy = RoutingStrategy::kUgalThreshold;
  spec.ni_values = {1, 4, 8};
  spec.fixed_c = 1.0;
  spec.c_values = {0.25, 1.0, 4.0};
  spec.fixed_ni = 4;
  run_adaptive_figure(paper_slim_fly(opts.full, /*ceil_p=*/false), spec, opts, &report);
  return report.finish();
}
