// Flow-engine performance snapshot (see docs/flow_engine.md): flows/sec
// and wall time for representative scenarios, from bench-scale sanity
// (SF q=7, exact and batched rate recompute) up to the >= 10^5-endpoint
// acceptance scenarios the engine exists for — a Slim Fly q=43 (118,336
// endpoints) open-loop sweep point and the fluid all-to-all model at the
// same scale.
//
//   bench_micro_flow               human-readable timings
//   bench_micro_flow --json=PATH   flat JSON snapshot (the BENCH_flow.json
//                                  artifact scripts/ci.sh stage 5 diffs
//                                  against, warn-only; see docs/perf.md)
//   bench_micro_flow --skip-large  bench-scale scenarios only (the q=43
//                                  runs need a few GB and tens of seconds)
//
// Deterministic result fields (accepted throughput, completion time) are
// exact for a given seed; only the wall-clock fields are machine-noisy.
#include <chrono>
#include <cstdio>
#include <string>

#include "flowsim/flow_sim.h"
#include "routing/minimal_table.h"
#include "sim/experiment.h"
#include "sim/traffic.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct OpenLoopTiming {
  double wall_seconds = 0.0;
  double flows_per_sec = 0.0;
  double accepted = 0.0;
  std::int64_t flows = 0;
};

/// One open-loop point under the flow engine; best wall time of `reps`.
/// The simulation itself is deterministic, so `accepted` and `flows` are
/// identical across reps — only the timing varies.
OpenLoopTiming time_open_loop(const Topology& topo, double load, TimePs duration,
                              TimePs warmup, TimePs rate_interval, int reps) {
  OpenLoopTiming out;
  out.wall_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    SimConfig cfg;
    cfg.engine = SimEngine::kFlow;
    cfg.flow.rate_interval = rate_interval;
    SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
    UniformTraffic uni(topo.num_nodes());
    const double t0 = now_seconds();
    const OpenLoopResult res = stack.run_open_loop(uni, load, duration, warmup);
    const double dt = now_seconds() - t0;
    out.wall_seconds = std::min(out.wall_seconds, dt);
    out.accepted = res.accepted_throughput;
    out.flows = res.packets_injected;
    if (dt > 0.0) {
      out.flows_per_sec = std::max(
          out.flows_per_sec, static_cast<double>(res.packets_injected) / dt);
    }
  }
  return out;
}

int run(const std::string& json_path, bool skip_large) {
  // Bench-scale sanity on the BENCH_core.json topology (SF q=7, uniform,
  // seed 1), one scenario per recompute mode in its intended regime:
  // exact per-event component recompute below the knee (components stay
  // small), batched ticks at saturation (where exact recompute would touch
  // a network-spanning component on every event).
  const Topology q7 = build_slim_fly(7);
  const OpenLoopTiming exact = time_open_loop(q7, 0.5, us(16), us(4), 0, 3);
  std::printf("sf q=7 load 0.5 exact:   %8.0f flows/s  wall %.2fs  accepted %.3f\n",
              exact.flows_per_sec, exact.wall_seconds, exact.accepted);
  std::fflush(stdout);
  const OpenLoopTiming batched =
      time_open_loop(q7, 0.9, us(16), us(4), ns(200), 3);
  std::printf("sf q=7 load 0.9 batched: %8.0f flows/s  wall %.2fs  accepted %.3f\n",
              batched.flows_per_sec, batched.wall_seconds, batched.accepted);
  std::fflush(stdout);

  // The >= 10^5-endpoint acceptance scenarios (SF q=43: R=3698, p=32,
  // N=118,336). Open loop runs below the saturation knee with batched
  // recompute; the all-to-all uses the closed-form fluid model.
  OpenLoopTiming large;
  double a2a_wall = 0.0;
  double a2a_completion_us = 0.0;
  if (!skip_large) {
    const Topology q43 = build_slim_fly(43);
    std::printf("sf q=43: N=%d endpoints, %d routers\n", q43.num_nodes(),
                q43.num_routers());
    large = time_open_loop(q43, 0.7, us(4), us(1), ns(500), 1);
    std::printf("sf q=43 open loop:   %8.0f flows/s  wall %.2fs  accepted %.3f "
                "(%lld flows)\n",
                large.flows_per_sec, large.wall_seconds, large.accepted,
                static_cast<long long>(large.flows));

    SimConfig cfg;
    cfg.engine = SimEngine::kFlow;
    SimStack stack(q43, RoutingStrategy::kMinimal, cfg);
    const double t0 = now_seconds();
    const ExchangeResult a2a = stack.run_fluid_all_to_all(4096);
    a2a_wall = now_seconds() - t0;
    a2a_completion_us = a2a.completion_us;
    std::printf("sf q=43 all-to-all (fluid): completion %.1f us  wall %.2fs\n",
                a2a.completion_us, a2a_wall);
  }

  if (json_path.empty()) return 0;
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_flow: cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_micro_flow\",\n");
  std::fprintf(f,
               "  \"scenario\": \"slim_fly q=7, uniform, MIN, 16us run / 4us "
               "warmup, seed 1, best of 3; exact recompute at load 0.5, "
               "0.2us batched ticks at load 0.9\",\n");
  std::fprintf(f, "  \"flows_per_sec_exact\": %.0f,\n", exact.flows_per_sec);
  std::fprintf(f, "  \"accepted_exact\": %.6f,\n", exact.accepted);
  std::fprintf(f, "  \"flows_per_sec_batched\": %.0f,\n", batched.flows_per_sec);
  std::fprintf(f, "  \"accepted_batched\": %.6f,\n", batched.accepted);
  std::fprintf(f,
               "  \"large_scenario\": \"slim_fly q=43 (118336 endpoints), "
               "uniform, MIN, load 0.7, 4us run / 1us warmup, 0.5us rate "
               "interval, seed 1, single run; all-to-all 4096 B/pair via the "
               "fluid model\",\n");
  std::fprintf(f, "  \"skip_large\": %s,\n", skip_large ? "true" : "false");
  std::fprintf(f, "  \"flows_per_sec_q43_open_loop\": %.0f,\n",
               large.flows_per_sec);
  std::fprintf(f, "  \"wall_seconds_q43_open_loop\": %.2f,\n",
               large.wall_seconds == 1e300 ? 0.0 : large.wall_seconds);
  std::fprintf(f, "  \"accepted_q43_open_loop\": %.6f,\n", large.accepted);
  std::fprintf(f, "  \"wall_seconds_q43_all_to_all\": %.2f,\n", a2a_wall);
  std::fprintf(f, "  \"completion_us_q43_all_to_all\": %.2f\n",
               a2a_completion_us);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("-> %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace d2net

int main(int argc, char** argv) {
  std::string json_path;
  bool skip_large = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--skip-large") {
      skip_large = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_flow [--json=PATH] [--skip-large]\n");
      return 1;
    }
  }
  return d2net::run(json_path, skip_large);
}
