// Fig. 14: effective throughput of one nearest-neighbor exchange on the
// largest 3-D torus embedded in each topology, with contiguous rank
// mapping (paper Section 4.4).
//
// Paper shape: MIN performs poorly (few routes carry everything), INR
// reaches ~70% (X dimension stays intra-router at 100%, Y/Z at INR's 50%),
// adaptive >= INR with ~100% on the MLFM and no gain on the OFT.
// The paper sends 512 KB per neighbor pair; the scaled default sends
// 64 KB to keep single-core runtimes reasonable (shape-preserving: the
// exchange is bandwidth-dominated either way).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/exchange.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 14: nearest-neighbor exchange effective throughput");
  add_standard_flags(cli);
  cli.flag("bytes-per-neighbor", std::int64_t{65536},
           "message size per neighbor (paper: 524288)");
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  std::int64_t bytes = cli.get_int("bytes-per-neighbor");
  if (opts.full && bytes == 65536) bytes = 524288;  // paper size at paper scale

  SimConfig cfg;
  cfg.seed = opts.seed;
  // --point-timeout bounds the wall clock of each exchange run.
  cfg.wall_limit_seconds = opts.point_timeout_s;

  std::printf("== Fig. 14: effective throughput, one nearest-neighbor exchange ==\n");
  Table t({"system", "torus", "routing", "eff. throughput", "completion (us)"});
  for (const auto& sys : paper_systems(opts.full)) {
    // Section 4.4 embeds the structure-aligned torus (15x16x15 on the
    // h=15 MLFM etc.); the alignment is what adaptive routing exploits.
    const auto dims = paper_torus_dims(sys.topo);
    const std::string torus = std::to_string(dims[0]) + "x" + std::to_string(dims[1]) + "x" +
                              std::to_string(dims[2]);
    const ExchangePlan plan = make_nearest_neighbor_plan(sys.topo.num_nodes(), dims, bytes);
    for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kValiant,
                              RoutingStrategy::kUgalThreshold}) {
      SimStack stack(sys.topo, s, cfg);
      const ExchangeResult r = stack.run_exchange(plan, us(20'000'000));
      // An aborted run has no meaningful completion time; an explicit
      // marker beats a misleading 0.0 in the table/CSV/JSON. WEDGED = no
      // simulated progress (watchdog), DEADLINE = --point-timeout wall
      // budget expired, TIMEOUT = simulated time limit elapsed.
      const char* abort_marker =
          r.faults.wedged ? "WEDGED" : r.timed_out ? "DEADLINE" : "TIMEOUT";
      t.add(sys.label, torus, to_string(s),
            r.completed ? fmt(r.effective_throughput, 3) : abort_marker,
            r.completed ? fmt(r.completion_us, 1) : abort_marker);
    }
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
