#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "common/error.h"
#include "common/journal.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "sim/campaign.h"
#include "sim/traffic.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net::bench {

SweepRunOptions BenchOptions::sweep_options() const {
  SweepRunOptions out;
  out.jobs = jobs;
  out.config.seed = seed;
  out.config.shards = shards;
  out.config.metrics.enabled = metrics;
  if (metrics_sample > 0) out.config.metrics.sample_period = metrics_sample;
  out.config.engine = engine;
  out.config.flow.flow_bytes = flow_bytes;
  out.config.flow.rate_interval = flow_interval;
  out.config.flow.max_active_per_node = flow_active;
  out.duration = duration;
  out.warmup = warmup;
  out.point_timeout_seconds = point_timeout_s;
  out.point_attempts = 1 + point_retries;
  return out;
}

void add_standard_flags(Cli& cli) {
  cli.flag("full", false, "run the paper-exact configurations (q=13/h=15/k=12; slow)")
      .flag("duration-us", 16.0, "simulated time per load point, microseconds")
      .flag("warmup-us", 4.0, "statistics warm-up, microseconds")
      .flag("seed", std::int64_t{1}, "simulation seed")
      .flag("csv", false, "also print CSV after each table")
      .flag("jobs", std::int64_t{0},
            "concurrent sweep points (0 = all hardware threads); results "
            "are identical for every value")
      .flag("shards", std::int64_t{1},
            "worker event cores per simulation (conservative time-window "
            "sharding; results are bit-identical for every value, see "
            "docs/sharded_sim.md)")
      .flag("json", std::string{},
            "write per-sweep timing/result JSON to this path")
      .flag("metrics", false,
            "collect per-port/VC metrics and run-phase detail into --json "
            "(does not change simulation results)")
      .flag("metrics-sample-us", 1.0,
            "buffer-occupancy sampling period with --metrics, microseconds")
      .flag("engine", std::string{"packet"},
            "simulation engine: 'packet' (per-packet events, the default) or "
            "'flow' (flow-level max-min-fair rates; see docs/flow_engine.md)")
      .flag("flow-bytes", std::int64_t{4096},
            "with --engine flow: bytes per open-loop flow")
      .flag("flow-interval-us", 0.0,
            "with --engine flow: rate-recompute batching interval in "
            "microseconds (0 = exact event-driven recompute)")
      .flag("flow-active", std::int64_t{16},
            "with --engine flow: concurrent flows one node may source "
            "before arrivals queue at the NIC")
      .flag("journal", std::string{},
            "crash-safe journal directory: manifest + append-only JSONL of "
            "completed points (see docs/durable_sweeps.md)")
      .flag("resume", false,
            "with --journal: skip points already completed in the journal "
            "and re-run only missing/failed ones (manifest must match)")
      .flag("point-timeout", 0.0,
            "wall-clock budget per sweep point in seconds (0 = unlimited); "
            "an over-budget point ends with timed_out=true + partial stats")
      .flag("point-retries", std::int64_t{1},
            "extra attempts (each with a fresh derived seed) for a point "
            "that timed out or threw");
}

BenchOptions read_standard_flags(const Cli& cli, int workers) {
  D2NET_REQUIRE(workers >= 1, "worker count must be >= 1");
  BenchOptions opts;
  opts.full = cli.get_bool("full");
  opts.duration = us(cli.get_double("duration-us"));
  opts.warmup = us(cli.get_double("warmup-us"));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.csv = cli.get_bool("csv");
  opts.jobs = static_cast<int>(cli.get_int("jobs"));
  D2NET_REQUIRE(opts.jobs >= 0, "--jobs must be >= 0");
  opts.shards = static_cast<int>(cli.get_int("shards"));
  D2NET_REQUIRE(opts.shards >= 1, "--shards must be >= 1");
  // With explicit --jobs the user overrides the auto-division; flag the
  // combination that lands shards x jobs threads on fewer cores. --jobs 0
  // never oversubscribes solo (SweepRunner divides the machine by shards),
  // but N co-located campaign workers each take that division — the
  // auto-sized case oversubscribes exactly when workers > 1.
  if ((opts.jobs > 0 && opts.shards > 1) || workers > 1) {
    const int hw = ThreadPool::hardware_concurrency();
    const int eff_jobs =
        opts.jobs > 0 ? opts.jobs : std::max(1, hw / std::max(1, opts.shards));
    const long long threads = static_cast<long long>(workers) * opts.shards * eff_jobs;
    // atomic for the same reason as the demotion notes in sim/network.cpp:
    // warn-once flags in reusable code must assume concurrent callers.
    static std::atomic<bool> warned{false};
    if (threads > hw && !warned.exchange(true, std::memory_order_relaxed)) {
      if (workers > 1) {
        std::fprintf(stderr,
                     "warning: --workers %d x --shards %d x %d job(s) = %lld "
                     "simulation threads exceeds hardware concurrency (%d) if "
                     "all workers share this host; expect contention, not "
                     "speedup\n",
                     workers, opts.shards, eff_jobs, threads, hw);
      } else {
        std::fprintf(stderr,
                     "warning: --shards %d x --jobs %d = %lld simulation "
                     "threads exceeds hardware concurrency (%d); expect "
                     "contention, not speedup\n",
                     opts.shards, opts.jobs, threads, hw);
      }
    }
  }
  opts.json_path = cli.get_string("json");
  opts.metrics = cli.get_bool("metrics");
  const double sample_us = cli.get_double("metrics-sample-us");
  D2NET_REQUIRE(sample_us > 0.0, "--metrics-sample-us must be > 0");
  opts.metrics_sample = us(sample_us);
  const std::string engine = cli.get_string("engine");
  if (engine == "packet") {
    opts.engine = SimEngine::kPacket;
  } else if (engine == "flow") {
    opts.engine = SimEngine::kFlow;
  } else {
    throw ArgumentError("--engine: unknown engine '" + engine +
                        "' (expected 'packet' or 'flow')");
  }
  opts.flow_bytes = cli.get_int("flow-bytes");
  D2NET_REQUIRE(opts.flow_bytes > 0, "--flow-bytes must be > 0");
  const double flow_interval_us = cli.get_double("flow-interval-us");
  D2NET_REQUIRE(flow_interval_us >= 0.0, "--flow-interval-us must be >= 0");
  opts.flow_interval = us(flow_interval_us);
  opts.flow_active = static_cast<int>(cli.get_int("flow-active"));
  D2NET_REQUIRE(opts.flow_active >= 1, "--flow-active must be >= 1");
  opts.journal_dir = cli.get_string("journal");
  opts.resume = cli.get_bool("resume");
  D2NET_REQUIRE(!opts.resume || !opts.journal_dir.empty(),
                "--resume requires --journal=<dir>");
  opts.point_timeout_s = cli.get_double("point-timeout");
  D2NET_REQUIRE(opts.point_timeout_s >= 0.0, "--point-timeout must be >= 0");
  opts.point_retries = static_cast<int>(cli.get_int("point-retries"));
  D2NET_REQUIRE(opts.point_retries >= 0, "--point-retries must be >= 0");
  if (opts.full) {
    // The paper simulates 200 us with a 20 us warm-up; scale up unless the
    // user overrode the defaults.
    if (opts.duration == us(16.0)) opts.duration = us(50.0);
    if (opts.warmup == us(4.0)) opts.warmup = us(10.0);
  }
  return opts;
}

Topology paper_slim_fly(bool full, bool ceil_p) {
  return build_slim_fly(full ? 13 : 7, ceil_p ? SlimFlyP::kCeil : SlimFlyP::kFloor);
}
Topology paper_mlfm(bool full) { return build_mlfm(full ? 15 : 7); }
Topology paper_oft(bool full) { return build_oft(full ? 12 : 6); }

std::vector<SystemConfig> paper_systems(bool full) {
  std::vector<SystemConfig> out;
  out.push_back({"SF p=fl", paper_slim_fly(full, false)});
  out.push_back({"SF p=cl", paper_slim_fly(full, true)});
  out.push_back({"MLFM", paper_mlfm(full)});
  out.push_back({"OFT", paper_oft(full)});
  return out;
}

// ------------------------------------------------------------- BenchReport

namespace {

// String emission uses the shared d2net::json_escape (common/journal.h):
// exception texts and labels must never corrupt a report or journal line.

void write_phases(std::ostream& os, const RunPhaseBreakdown& ph) {
  os << "{\"injected_warmup\": " << ph.injected_warmup
     << ", \"injected_measured\": " << ph.injected_measured
     << ", \"delivered_warmup\": " << ph.delivered_warmup
     << ", \"delivered_measured\": " << ph.delivered_measured
     << ", \"delivered_carryover\": " << ph.delivered_carryover
     << ", \"in_flight_at_end\": " << ph.in_flight_at_end << "}";
}

void write_vc(std::ostream& os, int vc, const VcMetrics& vm) {
  os << "{\"vc\": " << vc << ", \"packets\": " << vm.packets
     << ", \"bytes\": " << vm.bytes << ", \"minimal\": " << vm.minimal_packets
     << ", \"indirect\": " << vm.indirect_packets << "}";
}

void write_metrics(std::ostream& os, const SimMetrics& m) {
  os << "{\"sample_period_us\": " << to_us(m.sample_period);
  // Engine pre-sizing actuals (see EngineCapacities): a jump here between
  // runs of the same configuration is a sizing regression.
  os << ", \"capacities\": {\"event_queue_reserved\": "
     << m.capacities.event_queue_reserved
     << ", \"packet_pool_reserved\": " << m.capacities.packet_pool_reserved
     << ", \"packet_pool_slots\": " << m.capacities.packet_pool_slots
     << ", \"voq_cells\": " << m.capacities.voq_cells << "}";
  os << ", \"counters\": {";
  bool first = true;
  m.registry.for_each_counter([&](const std::string& name,
                                  const MetricsRegistry::Counter& c) {
    os << (first ? "" : ", ") << "\"" << json_escape(name) << "\": " << c.value;
    first = false;
  });
  os << "}, \"histograms\": {";
  first = true;
  m.registry.for_each_histogram([&](const std::string& name, const LogHistogram& h) {
    os << (first ? "" : ", ") << "\"" << json_escape(name)
       << "\": {\"count\": " << h.count() << ", \"mean\": ";
    write_json_double(os, h.mean());
    os << ", \"p50\": ";
    write_json_double(os, h.percentile(50));
    os << ", \"p99\": ";
    write_json_double(os, h.percentile(99));
    os << ", \"underflow\": " << h.underflow() << ", \"overflow\": " << h.overflow()
       << "}";
    first = false;
  });
  os << "}";
  // VC traffic aggregated over all ports.
  std::vector<VcMetrics> totals;
  for (const PortMetrics& pm : m.ports) {
    if (totals.size() < pm.vcs.size()) totals.resize(pm.vcs.size());
    for (std::size_t v = 0; v < pm.vcs.size(); ++v) {
      totals[v].packets += pm.vcs[v].packets;
      totals[v].bytes += pm.vcs[v].bytes;
      totals[v].minimal_packets += pm.vcs[v].minimal_packets;
      totals[v].indirect_packets += pm.vcs[v].indirect_packets;
    }
  }
  os << ", \"vc_totals\": [";
  for (std::size_t v = 0; v < totals.size(); ++v) {
    os << (v ? ", " : "");
    write_vc(os, static_cast<int>(v), totals[v]);
  }
  os << "], \"occupancy\": [";
  for (std::size_t i = 0; i < m.occupancy.size(); ++i) {
    os << (i ? ", " : "") << "{\"t_us\": " << to_us(m.occupancy[i].time)
       << ", \"bytes\": " << m.occupancy[i].buffered_bytes << "}";
  }
  os << "]";
  // Sharded runs additionally report window-barrier synchronization and
  // per-shard engine sizing (absent for serial runs, keeping their output
  // byte-stable across versions).
  if (m.sharding.shards > 1) {
    const ShardingMetrics& sh = m.sharding;
    os << ", \"sharding\": {\"shards\": " << sh.shards
       << ", \"windows\": " << sh.windows << ", \"mean_window_width_ns\": ";
    write_json_double(os, sh.mean_window_width_ns);
    os << ", \"cross_shard_messages\": " << sh.cross_shard_messages
       << ", \"shards_detail\": [";
    for (std::size_t s = 0; s < sh.shard.size(); ++s) {
      const ShardMetrics& sm = sh.shard[s];
      os << (s ? ", " : "") << "{\"shard\": " << s
         << ", \"routers\": " << sm.routers << ", \"nodes\": " << sm.nodes
         << ", \"events\": " << sm.events
         << ", \"messages_sent\": " << sm.messages_sent
         << ", \"capacities\": {\"event_queue_reserved\": "
         << sm.capacities.event_queue_reserved
         << ", \"packet_pool_reserved\": " << sm.capacities.packet_pool_reserved
         << ", \"packet_pool_slots\": " << sm.capacities.packet_pool_slots
         << ", \"voq_cells\": " << sm.capacities.voq_cells << "}}";
    }
    os << "]}";
  }
  os << ", \"ports\": [";
  bool first_port = true;
  for (const PortMetrics& pm : m.ports) {
    if (pm.packets_forwarded == 0 && pm.credit_stall_ps == 0) continue;
    os << (first_port ? "" : ", ");
    first_port = false;
    os << "{\"router\": " << pm.router << ", \"port\": " << pm.port
       << ", \"peer_router\": " << pm.peer_router
       << ", \"peer_node\": " << pm.peer_node
       << ", \"packets\": " << pm.packets_forwarded
       << ", \"bytes\": " << pm.bytes_forwarded
       << ", \"credit_stall_ns\": " << to_ns(pm.credit_stall_ps)
       << ", \"occ_mean_bytes\": ";
    write_json_double(os, pm.occupancy_bytes.mean());
    os << ", \"occ_max_bytes\": ";
    write_json_double(os, pm.occupancy_bytes.max());
    os << ", \"vcs\": [";
    bool first_vc = true;
    for (std::size_t v = 0; v < pm.vcs.size(); ++v) {
      if (pm.vcs[v].packets == 0) continue;
      os << (first_vc ? "" : ", ");
      first_vc = false;
      write_vc(os, static_cast<int>(v), pm.vcs[v]);
    }
    os << "]}";
  }
  os << "]}";
}

void write_faults(std::ostream& os, const FaultStats& f) {
  os << "{\"faults_applied\": " << f.faults_applied
     << ", \"packets_dropped\": " << f.packets_dropped
     << ", \"packets_retried\": " << f.packets_retried
     << ", \"packets_lost\": " << f.packets_lost
     << ", \"reroutes\": " << f.reroutes
     << ", \"unreachable_pairs\": " << f.unreachable_pairs
     << ", \"wedged\": " << (f.wedged ? "true" : "false");
  if (f.wedged) {
    os << ", \"watchdog\": {\"t_us\": " << to_us(f.watchdog.time)
       << ", \"in_flight\": " << f.watchdog.in_flight
       << ", \"nic_backlog\": " << f.watchdog.nic_backlog
       << ", \"stalled_heads\": " << f.watchdog.stalled_heads
       << ", \"zero_credit_vcs\": " << f.watchdog.zero_credit_vcs << "}";
  }
  if (!f.delivered_bytes_buckets.empty()) {
    os << ", \"bucket_width_us\": " << to_us(f.bucket_width)
       << ", \"delivered_bytes_buckets\": [";
    for (std::size_t i = 0; i < f.delivered_bytes_buckets.size(); ++i) {
      os << (i ? ", " : "") << f.delivered_bytes_buckets[i];
    }
    os << "]";
  }
  // Control-plane convergence (propagation runs only): the block appears
  // exactly when an update was originated, so oracle-fault output stays
  // byte-stable across versions.
  const ConvergenceStats& cv = f.convergence;
  if (cv.updates > 0) {
    os << ", \"convergence\": {\"updates\": " << cv.updates
       << ", \"converged\": " << cv.converged << ", \"detections\": " << cv.detections
       << ", \"flood_messages\": " << cv.flood_messages
       << ", \"routers_reached\": " << cv.routers_reached
       << ", \"misroutes\": " << cv.misroutes << ", \"budget_drops\": " << cv.budget_drops
       << ", \"detection_ns_mean\": ";
    write_json_double(os, cv.detections > 0
                              ? to_ns(cv.detection_latency_sum) /
                                    static_cast<double>(cv.detections)
                              : 0.0);
    os << ", \"detection_ns_max\": " << to_ns(cv.detection_latency_max)
       << ", \"epoch_lag_ns_mean\": ";
    write_json_double(os, cv.routers_reached > 0
                              ? to_ns(cv.epoch_lag_sum) /
                                    static_cast<double>(cv.routers_reached)
                              : 0.0);
    os << ", \"epoch_lag_ns_max\": " << to_ns(cv.epoch_lag_max)
       << ", \"consistency_us_mean\": ";
    write_json_double(os, cv.converged > 0 ? to_us(cv.consistency_time_sum) /
                                                 static_cast<double>(cv.converged)
                                           : 0.0);
    os << ", \"consistency_us_max\": " << to_us(cv.consistency_time_max) << "}";
  }
  os << "}";
}

// The one serializer for a sweep point's result object. Everything the
// report emits per point goes through here, so the journal can record the
// exact rendered fragment and splice it back verbatim on resume.
void write_point_json(std::ostream& os, const SweepPoint& pt) {
  // write_json_double: a NaN (empty measurement window) or inf must render
  // as null — "nan" is not JSON and would corrupt the document and every
  // journal line carrying this fragment.
  os << "{\"load\": ";
  write_json_double(os, pt.offered);
  os << ", \"throughput\": ";
  write_json_double(os, pt.result.accepted_throughput);
  os << ", \"avg_latency_ns\": ";
  write_json_double(os, pt.result.avg_latency_ns);
  os << ", \"p99_latency_ns\": ";
  write_json_double(os, pt.result.p99_latency_ns);
  os << ", \"packets_measured\": " << pt.result.packets_measured
     << ", \"phases\": ";
  write_phases(os, pt.result.phases);
  // Durability fields appear only when non-default, keeping healthy runs'
  // output byte-stable across versions.
  if (pt.result.timed_out) os << ", \"timed_out\": true";
  if (pt.attempts > 1) os << ", \"attempts\": " << pt.attempts;
  if (pt.failed) {
    os << ", \"failed\": true, \"error\": \"" << json_escape(pt.error) << "\"";
  }
  if (pt.result.faults.enabled) {
    os << ", \"faults\": ";
    write_faults(os, pt.result.faults);
  }
  if (pt.result.metrics != nullptr) {
    os << ", \"metrics\": ";
    write_metrics(os, *pt.result.metrics);
  }
  os << "}";
}

}  // namespace

std::string render_point_json(const SweepPoint& pt) {
  if (pt.restored && !pt.restored_json.empty()) return pt.restored_json;
  std::ostringstream os;
  os.precision(10);  // matches BenchReport::write's stream settings
  write_point_json(os, pt);
  return os.str();
}

std::string render_exchange_row_json(const ExchangeRow& row) {
  if (row.restored && !row.restored_json.empty()) return row.restored_json;
  const ExchangeResult& r = row.result;
  std::ostringstream os;
  os.precision(10);  // matches BenchReport::write's stream settings
  os << "{\"system\": \"" << json_escape(row.system) << "\", \"routing\": \""
     << json_escape(row.routing)
     << "\", \"completed\": " << (r.completed ? "true" : "false")
     << ", \"eff_throughput\": ";
  write_json_double(os, r.effective_throughput);
  os << ", \"completion_us\": ";
  write_json_double(os, r.completion_us);
  os << ", \"delivered_bytes\": " << r.delivered_bytes
     << ", \"total_bytes\": " << r.total_bytes << ", \"avg_latency_ns\": ";
  write_json_double(os, r.avg_latency_ns);
  // Like sweep points, abort markers appear only when set, keeping healthy
  // rows byte-stable across versions.
  if (r.timed_out) os << ", \"timed_out\": true";
  if (r.faults.wedged) os << ", \"wedged\": true";
  if (r.faults.enabled) {
    os << ", \"faults\": ";
    write_faults(os, r.faults);
  }
  if (r.metrics != nullptr) {
    os << ", \"metrics\": ";
    write_metrics(os, *r.metrics);
  }
  os << "}";
  return os.str();
}

std::string bench_manifest(const std::string& bench_name, const BenchOptions& opts) {
  // Everything that changes simulated results belongs here; presentation
  // knobs (--json path, --csv, --jobs, --shards) deliberately do not —
  // results are identical for every value (for --shards that is the
  // digest-verified sharding guarantee), so resuming across them is safe.
  std::ostringstream os;
  os.precision(17);
  os << "bench=" << bench_name << "\n"
     << "build=" << build_describe() << "\n"
     << "full=" << (opts.full ? 1 : 0) << "\n"
     << "duration_us=" << to_us(opts.duration) << "\n"
     << "warmup_us=" << to_us(opts.warmup) << "\n"
     << "seed=" << opts.seed << "\n"
     << "metrics=" << (opts.metrics ? 1 : 0) << "\n"
     << "metrics_sample_us=" << to_us(opts.metrics_sample) << "\n"
     << "point_timeout_s=" << opts.point_timeout_s << "\n"
     << "point_retries=" << opts.point_retries << "\n";
  // Flow-engine knobs appear only under --engine flow: packet-engine
  // manifests (and therefore every pre-existing journal) stay byte-identical
  // to versions that predate the flow engine, so old journals resume.
  if (opts.engine == SimEngine::kFlow) {
    os << "engine=flow\n"
       << "flow_bytes=" << opts.flow_bytes << "\n"
       << "flow_interval_us=" << to_us(opts.flow_interval) << "\n"
       << "flow_active=" << opts.flow_active << "\n";
  }
  return os.str();
}

BenchReport::BenchReport(std::string bench_name, const BenchOptions& opts,
                         std::string manifest_extra)
    : bench_name_(std::move(bench_name)), opts_(opts) {
  // Fail before the sweep runs, not after: a long --full run should not
  // discover an unwritable --json path at the very end.
  if (!opts_.json_path.empty()) {
    std::ofstream probe(opts_.json_path);
    D2NET_REQUIRE(probe.good(), "cannot open --json path: " + opts_.json_path);
  }
  if (!opts_.journal_dir.empty()) {
    JournalOptions jopts;
    jopts.durable = opts_.journal_durable;
    jopts.worker = opts_.journal_worker;
    journal_ = std::make_unique<SweepJournal>(
        opts_.journal_dir, bench_manifest(bench_name_, opts_) + manifest_extra,
        opts_.resume, std::move(jopts));
    if (opts_.resume && journal_->loaded_points() > 0) {
      const std::string prefix =
          opts_.journal_worker.empty() ? "" : "[worker " + opts_.journal_worker + "] ";
      std::printf("%sresuming from %s: %zu completed point(s) on record\n",
                  prefix.c_str(), opts_.journal_dir.c_str(), journal_->loaded_points());
    }
  }
}

void BenchReport::add_sweep(const std::string& title,
                            const std::vector<std::string>& labels,
                            const std::vector<std::vector<SweepPoint>>& series,
                            const SweepRunStats& stats) {
  sweeps_.push_back({title, labels, series, stats});
}

void BenchReport::add_exchange(const std::string& title,
                               const std::vector<ExchangeRow>& rows,
                               const SweepRunStats& stats) {
  exchanges_.push_back({title, rows, stats});
}

void BenchReport::write() const {
  if (opts_.json_path.empty()) return;
  std::ofstream os(opts_.json_path);
  D2NET_REQUIRE(os.good(), "cannot open --json path: " + opts_.json_path);
  os.precision(10);
  os << "{\n";
  os << "  \"bench\": \"" << json_escape(bench_name_) << "\",\n";
  os << "  \"jobs\": " << (sweeps_.empty() ? opts_.jobs : sweeps_.front().stats.jobs)
     << ",\n";
  os << "  \"shards\": " << opts_.shards << ",\n";
  os << "  \"seed\": " << opts_.seed << ",\n";
  os << "  \"full\": " << (opts_.full ? "true" : "false") << ",\n";
  os << "  \"duration_us\": " << to_us(opts_.duration) << ",\n";
  os << "  \"warmup_us\": " << to_us(opts_.warmup) << ",\n";
  os << "  \"sweeps\": [";
  for (std::size_t i = 0; i < sweeps_.size(); ++i) {
    const SweepRecord& sw = sweeps_[i];
    os << (i ? ",\n" : "\n");
    os << "    {\"title\": \"" << json_escape(sw.title) << "\",\n";
    os << "     \"wall_seconds\": " << sw.stats.wall_seconds << ",\n";
    os << "     \"events\": " << sw.stats.events << ",\n";
    os << "     \"events_per_second\": " << sw.stats.events_per_second() << ",\n";
    os << "     \"points\": " << sw.stats.points << ",\n";
    os << "     \"series\": [";
    for (std::size_t s = 0; s < sw.series.size(); ++s) {
      os << (s ? ",\n" : "\n");
      os << "       {\"label\": \""
         << json_escape(s < sw.labels.size() ? sw.labels[s] : "") << "\", \"points\": [";
      for (std::size_t p = 0; p < sw.series[s].size(); ++p) {
        // render_point_json returns journal-restored fragments verbatim, so
        // a resumed run's document is byte-identical to an uninterrupted one.
        os << (p ? ", " : "") << render_point_json(sw.series[s][p]);
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "\n  ]";
  // Emitted only when an exchange table actually ran: sweep-only benches'
  // documents stay byte-identical to previous versions.
  if (!exchanges_.empty()) {
    os << ",\n  \"exchanges\": [";
    for (std::size_t i = 0; i < exchanges_.size(); ++i) {
      const ExchangeRecord& ex = exchanges_[i];
      os << (i ? ",\n" : "\n");
      os << "    {\"title\": \"" << json_escape(ex.title) << "\",\n";
      os << "     \"wall_seconds\": " << ex.stats.wall_seconds << ",\n";
      os << "     \"points\": " << ex.stats.points << ",\n";
      os << "     \"rows\": [";
      for (std::size_t r = 0; r < ex.rows.size(); ++r) {
        // render_exchange_row_json returns journal-restored fragments
        // verbatim, like sweep points.
        os << (r ? ",\n       " : "\n       ") << render_exchange_row_json(ex.rows[r]);
      }
      os << "\n     ]}";
    }
    os << "\n  ]";
  }
  os << "\n}\n";
  D2NET_REQUIRE(os.good(), "failed writing --json output: " + opts_.json_path);
}

int BenchReport::finish() const {
  std::int64_t failed = 0;
  std::int64_t timed_out = 0;
  for (const SweepRecord& sw : sweeps_) {
    for (std::size_t s = 0; s < sw.series.size(); ++s) {
      for (const SweepPoint& pt : sw.series[s]) {
        if (pt.result.timed_out) {
          ++timed_out;
          std::fprintf(stderr, "timed out: %s / %s load %.3g (%d attempt%s)\n",
                       sw.title.c_str(),
                       s < sw.labels.size() ? sw.labels[s].c_str() : "?", pt.offered,
                       pt.attempts, pt.attempts == 1 ? "" : "s");
        }
        if (pt.failed) {
          ++failed;
          std::fprintf(stderr, "FAILED: %s\n", pt.error.c_str());
        }
      }
    }
  }
  if (failed > 0 || timed_out > 0) {
    std::fprintf(stderr,
                 "sweep summary: %lld point(s) failed, %lld timed out%s\n",
                 static_cast<long long>(failed), static_cast<long long>(timed_out),
                 journal_ != nullptr
                     ? " — re-run with --resume to retry only the failed points"
                     : "");
  }
  write();
  // Timed-out points carry valid partial statistics under a budget the user
  // chose; only points with no result at all make the run a failure.
  return failed > 0 ? 1 : 0;
}

// ---------------------------------------------------------- sweep running

void print_sweep_table(const std::string& title,
                       const std::vector<std::string>& series_labels,
                       const std::vector<double>& loads,
                       const std::vector<std::vector<SweepPoint>>& series, bool csv) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::string> header{"load"};
  for (const auto& l : series_labels) {
    header.push_back(l + " thr");
    header.push_back(l + " lat(ns)");
  }
  Table t(header);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> row{fmt(loads[i], 2)};
    for (const auto& s : series) {
      if (s[i].failed) {
        // No measurement exists; a zero would read as a real (terrible)
        // result.
        row.push_back("FAIL");
        row.push_back("FAIL");
      } else {
        // '*' marks partial statistics from a point cut off by
        // --point-timeout.
        const char* mark = s[i].result.timed_out ? "*" : "";
        row.push_back(fmt(s[i].result.accepted_throughput, 3) + mark);
        row.push_back(fmt(s[i].result.avg_latency_ns, 0) + mark);
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  // Saturation summary line.
  std::printf("saturation:");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf("  %s=%.3f", series_labels[s].c_str(), saturation_point(series[s]));
  }
  std::printf("\n");
}

std::vector<std::vector<SweepPoint>> run_and_print_sweep(
    const std::string& title, const std::vector<SweepSeriesSpec>& specs,
    const BenchOptions& opts, BenchReport* report) {
  D2NET_REQUIRE(!specs.empty(), "sweep needs at least one series");
  for (const SweepSeriesSpec& s : specs) {
    D2NET_REQUIRE(s.loads == specs.front().loads,
                  "all series of one printed sweep must share a load grid");
  }
  SweepRunOptions ropts = opts.sweep_options();
  if (report != nullptr && report->journal() != nullptr) {
    ropts.journal = report->journal();
    ropts.scope = title;  // unique per journal, enforced by register_scope
    ropts.tolerate_failures = true;
    ropts.serialize = [](const SweepPoint& pt) { return render_point_json(pt); };
  }
  SweepRunner runner(ropts);
  auto series = runner.run(specs);
  std::vector<std::string> labels;
  for (const SweepSeriesSpec& s : specs) labels.push_back(s.label);
  print_sweep_table(title, labels, specs.front().loads, series, opts.csv);
  const SweepRunStats& st = runner.stats();
  std::printf("timing: %.2fs wall, %d jobs, %lld events, %.2fM events/s\n",
              st.wall_seconds, st.jobs, static_cast<long long>(st.events),
              st.events_per_second() / 1e6);
  if (st.restored_points > 0 || st.timed_out_points > 0 || st.failed_points > 0) {
    std::printf("durability: %lld point(s) restored from journal, %lld timed out, "
                "%lld failed\n",
                static_cast<long long>(st.restored_points),
                static_cast<long long>(st.timed_out_points),
                static_cast<long long>(st.failed_points));
  }
  if (report != nullptr) report->add_sweep(title, labels, series, st);
  return series;
}

std::vector<ExchangeRow> run_exchange_table(const std::string& title_base,
                                            const std::vector<ExchangeRowSpec>& rows,
                                            std::int64_t bytes_per_pair, A2aOrder order,
                                            TimePs time_limit, const BenchOptions& opts,
                                            BenchReport* report,
                                            const ExchangeRunControl* ctl) {
  D2NET_REQUIRE(!rows.empty(), "exchange table needs at least one row");
  // exchange_table_title is shared with the campaign merge step's key
  // enumeration — the composed scope must never drift between them.
  const std::string title = exchange_table_title(title_base, bytes_per_pair, order);
  const bool quiet = ctl != nullptr && ctl->quiet;
  const std::vector<char>* selected = ctl != nullptr ? ctl->selected : nullptr;
  if (selected != nullptr) {
    D2NET_REQUIRE(selected->size() == rows.size(),
                  "selection mask must cover every exchange row");
  }

  SimConfig cfg = opts.sweep_options().config;
  // --point-timeout bounds the wall clock of each exchange run.
  cfg.wall_limit_seconds = opts.point_timeout_s;

  SweepJournal* journal = ctl != nullptr && ctl->journal != nullptr
                              ? ctl->journal
                              : (report != nullptr ? report->journal() : nullptr);
  auto key_for = [&](std::size_t i) { return title + "#" + std::to_string(i); };
  auto fingerprint = [](const Topology& t) {
    std::ostringstream os;
    os << "r=" << t.num_routers() << ",n=" << t.num_nodes() << ",l=" << t.num_links();
    return os.str();
  };
  if (journal != nullptr && (ctl == nullptr || ctl->register_scope)) {
    journal->register_scope(title);
  }

  if (!quiet) std::printf("== %s ==\n", title.c_str());
  Table t({"system", "routing", "eff. throughput", "completion (us)"});
  const auto wall_start = std::chrono::steady_clock::now();
  std::int64_t restored_rows = 0;

  // One plan per distinct topology: the plan is a pure function of
  // (num_nodes, bytes, order, seed), so sharing it across this topology's
  // rows is behavior-identical to rebuilding per row.
  std::map<const Topology*, ExchangePlan> plans;
  std::vector<ExchangeRow> out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ExchangeRowSpec& spec = rows[i];
    D2NET_REQUIRE(spec.topo != nullptr, "exchange row needs a topology");
    if (selected != nullptr && !(*selected)[i]) {
      // Another worker's row: untouched placeholder (never presented).
      out.emplace_back();
      continue;
    }
    ExchangeRow row;
    row.system = spec.system;
    row.routing = to_string(spec.strategy);

    const JournalEntry* e = journal != nullptr ? journal->find(key_for(i)) : nullptr;
    if (e != nullptr && e->completed()) {
      // Same second lock as the sweep runner's restore path: the manifest
      // hash should have caught config drift, but splicing a row from a
      // different table would be silent data corruption.
      D2NET_REQUIRE(e->label == row.system + " " + row.routing &&
                        e->seed == opts.seed && e->topo == fingerprint(*spec.topo),
                    "journal entry '" + e->key +
                        "' does not match the current exchange table "
                        "(system/routing/seed/topology drift); refusing to mix "
                        "results — use a fresh --journal dir");
      row.restored = true;
      row.restored_json = e->payload;
      row.result.completed = e->exchange_completed == 1;
      row.result.effective_throughput = e->throughput;
      row.result.completion_us = e->completion_us;
      row.result.avg_latency_ns = e->avg_latency_ns;
      row.result.timed_out = e->status == "timed_out";
      row.result.faults.wedged = e->wedged;
      ++restored_rows;
    } else {
      auto pit = plans.find(spec.topo);
      if (pit == plans.end()) {
        pit = plans
                  .emplace(spec.topo, make_all_to_all_plan(spec.topo->num_nodes(),
                                                           bytes_per_pair, order, opts.seed))
                  .first;
      }
      const auto row_start = std::chrono::steady_clock::now();
      SimStack stack(*spec.topo, spec.strategy, cfg);
      row.result = stack.run_exchange(pit->second, time_limit);
      if (journal != nullptr) {
        JournalEntry je;
        je.key = key_for(i);
        je.label = row.system + " " + row.routing;
        je.topo = fingerprint(*spec.topo);
        je.seed = opts.seed;
        je.status = row.result.timed_out ? "timed_out" : "ok";
        je.events = 0;  // ExchangeResult does not count events
        je.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - row_start)
                .count();
        je.throughput = row.result.effective_throughput;
        je.avg_latency_ns = row.result.avg_latency_ns;
        je.exchange_completed = row.result.completed ? 1 : 0;
        je.completion_us = row.result.completion_us;
        je.wedged = row.result.faults.wedged;
        je.payload = render_exchange_row_json(row);
        journal->append(je);
      }
    }

    // An aborted run has no meaningful completion time; an explicit marker
    // beats a misleading 0.0 in the table/CSV/JSON. The three abort modes
    // are distinct: WEDGED = no simulated progress (watchdog), DEADLINE =
    // --point-timeout wall-clock budget expired, TIMEOUT = the simulated
    // time limit elapsed while still progressing.
    const ExchangeResult& r = row.result;
    const char* abort_marker =
        r.faults.wedged ? "WEDGED" : r.timed_out ? "DEADLINE" : "TIMEOUT";
    if (!quiet) {
      t.add(row.system, row.routing,
            r.completed ? fmt(r.effective_throughput, 3) : abort_marker,
            r.completed ? fmt(r.completion_us, 1) : abort_marker);
    }
    out.push_back(std::move(row));
  }
  if (!quiet) {
    t.print(std::cout);
    if (opts.csv) t.print_csv(std::cout);
  }

  SweepRunStats stats;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  stats.points = static_cast<std::int64_t>(out.size());
  stats.restored_points = restored_rows;
  stats.jobs = 1;
  if (restored_rows > 0 && !quiet) {
    std::printf("durability: %lld row(s) restored from journal\n",
                static_cast<long long>(restored_rows));
  }
  if (report != nullptr) report->add_exchange(title, out, stats);
  return out;
}

std::vector<double> bench_uniform_loads() {
  return {0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0};
}

std::vector<double> bench_adversarial_loads() {
  return {0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0};
}

void run_adaptive_figure(const Topology& topo, const AdaptiveFigureSpec& spec,
                         const BenchOptions& opts, BenchReport* report) {
  const auto table = std::make_shared<const MinimalTable>(topo);
  Rng rng(opts.seed);
  const auto wc = make_worst_case(topo, *table, rng);
  const UniformTraffic uni(topo.num_nodes());
  const bool threshold = spec.strategy == RoutingStrategy::kUgalThreshold;

  auto panel = [&](const std::string& subtitle,
                   const std::function<UgalParams(std::size_t)>& make_params,
                   const std::vector<std::string>& labels) {
    for (const auto* pat : {static_cast<const TrafficPattern*>(&uni),
                            static_cast<const TrafficPattern*>(wc.get())}) {
      const bool is_uni = pat == &uni;
      const auto& loads = is_uni ? bench_uniform_loads() : bench_adversarial_loads();
      std::vector<SweepSeriesSpec> specs;
      for (std::size_t v = 0; v < labels.size(); ++v) {
        SweepSeriesSpec s;
        s.label = labels[v];
        s.topo = &topo;
        s.table = table;
        s.strategy = spec.strategy;
        s.params = make_params(v);
        s.pattern = pat;
        s.loads = loads;
        specs.push_back(std::move(s));
      }
      run_and_print_sweep(
          spec.title + " — " + subtitle + (is_uni ? " — UNI" : " — WC"), specs, opts,
          report);
    }
  };

  {
    std::vector<std::string> labels;
    for (int ni : spec.ni_values) labels.push_back("nI=" + std::to_string(ni));
    panel("vary nI (c=" + fmt(spec.fixed_c, 2) + ")",
          [&](std::size_t v) {
            UgalParams p = default_ugal_params(topo.kind(), threshold);
            p.num_indirect = spec.ni_values[v];
            p.c = spec.fixed_c;
            return p;
          },
          labels);
  }
  {
    std::vector<std::string> labels;
    for (double c : spec.c_values) labels.push_back("c=" + fmt(c, 2));
    panel("vary c (nI=" + std::to_string(spec.fixed_ni) + ")",
          [&](std::size_t v) {
            UgalParams p = default_ugal_params(topo.kind(), threshold);
            p.num_indirect = spec.fixed_ni;
            p.c = spec.c_values[v];
            return p;
          },
          labels);
  }
}

}  // namespace d2net::bench
