#include "bench_common.h"

#include <cstdio>
#include <iostream>

#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net::bench {

void add_standard_flags(Cli& cli) {
  cli.flag("full", false, "run the paper-exact configurations (q=13/h=15/k=12; slow)")
      .flag("duration-us", 16.0, "simulated time per load point, microseconds")
      .flag("warmup-us", 4.0, "statistics warm-up, microseconds")
      .flag("seed", std::int64_t{1}, "simulation seed")
      .flag("csv", false, "also print CSV after each table");
}

BenchOptions read_standard_flags(const Cli& cli) {
  BenchOptions opts;
  opts.full = cli.get_bool("full");
  opts.duration = us(cli.get_double("duration-us"));
  opts.warmup = us(cli.get_double("warmup-us"));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.csv = cli.get_bool("csv");
  if (opts.full) {
    // The paper simulates 200 us with a 20 us warm-up; scale up unless the
    // user overrode the defaults.
    if (opts.duration == us(16.0)) opts.duration = us(50.0);
    if (opts.warmup == us(4.0)) opts.warmup = us(10.0);
  }
  return opts;
}

Topology paper_slim_fly(bool full, bool ceil_p) {
  return build_slim_fly(full ? 13 : 7, ceil_p ? SlimFlyP::kCeil : SlimFlyP::kFloor);
}
Topology paper_mlfm(bool full) { return build_mlfm(full ? 15 : 7); }
Topology paper_oft(bool full) { return build_oft(full ? 12 : 6); }

std::vector<SystemConfig> paper_systems(bool full) {
  std::vector<SystemConfig> out;
  out.push_back({"SF p=fl", paper_slim_fly(full, false)});
  out.push_back({"SF p=cl", paper_slim_fly(full, true)});
  out.push_back({"MLFM", paper_mlfm(full)});
  out.push_back({"OFT", paper_oft(full)});
  return out;
}

void print_sweep_table(const std::string& title,
                       const std::vector<std::string>& series_labels,
                       const std::vector<double>& loads,
                       const std::vector<std::vector<SweepPoint>>& series, bool csv) {
  std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::string> header{"load"};
  for (const auto& l : series_labels) {
    header.push_back(l + " thr");
    header.push_back(l + " lat(ns)");
  }
  Table t(header);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> row{fmt(loads[i], 2)};
    for (const auto& s : series) {
      row.push_back(fmt(s[i].result.accepted_throughput, 3));
      row.push_back(fmt(s[i].result.avg_latency_ns, 0));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (csv) t.print_csv(std::cout);
  // Saturation summary line.
  std::printf("saturation:");
  for (std::size_t s = 0; s < series.size(); ++s) {
    std::printf("  %s=%.3f", series_labels[s].c_str(), saturation_point(series[s]));
  }
  std::printf("\n");
}

std::vector<double> bench_uniform_loads() {
  return {0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0};
}

std::vector<double> bench_adversarial_loads() {
  return {0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0};
}

void run_adaptive_figure(const Topology& topo, const AdaptiveFigureSpec& spec,
                         const BenchOptions& opts) {
  SimConfig cfg;
  cfg.seed = opts.seed;
  const MinimalTable table(topo);  // only for the WC pattern construction
  Rng rng(opts.seed);
  const auto wc = make_worst_case(topo, table, rng);
  const UniformTraffic uni(topo.num_nodes());
  const bool threshold = spec.strategy == RoutingStrategy::kUgalThreshold;

  auto run_variant = [&](const UgalParams& params, const TrafficPattern& pattern,
                         const std::vector<double>& loads) {
    SimStack stack(topo, spec.strategy, cfg, params);
    return run_load_sweep(stack, pattern, loads, opts.duration, opts.warmup);
  };

  auto panel = [&](const std::string& subtitle, auto make_params,
                   const std::vector<std::string>& labels) {
    for (const auto* pat : {static_cast<const TrafficPattern*>(&uni),
                            static_cast<const TrafficPattern*>(wc.get())}) {
      const bool is_uni = pat == &uni;
      const auto& loads = is_uni ? bench_uniform_loads() : bench_adversarial_loads();
      std::vector<std::vector<SweepPoint>> series;
      for (std::size_t v = 0; v < labels.size(); ++v) {
        series.push_back(run_variant(make_params(v), *pat, loads));
      }
      print_sweep_table(spec.title + " — " + subtitle + (is_uni ? " — UNI" : " — WC"), labels,
                        loads, series, opts.csv);
    }
  };

  {
    std::vector<std::string> labels;
    for (int ni : spec.ni_values) labels.push_back("nI=" + std::to_string(ni));
    panel("vary nI (c=" + fmt(spec.fixed_c, 2) + ")",
          [&](std::size_t v) {
            UgalParams p = default_ugal_params(topo.kind(), threshold);
            p.num_indirect = spec.ni_values[v];
            p.c = spec.fixed_c;
            return p;
          },
          labels);
  }
  {
    std::vector<std::string> labels;
    for (double c : spec.c_values) labels.push_back("c=" + fmt(c, 2));
    panel("vary c (nI=" + std::to_string(spec.fixed_ni) + ")",
          [&](std::size_t v) {
            UgalParams p = default_ugal_params(topo.kind(), threshold);
            p.num_indirect = spec.fixed_ni;
            p.c = spec.c_values[v];
            return p;
          },
          labels);
  }
}

}  // namespace d2net::bench
