// Section 2.3.3: diversity of shortest paths. The paper quotes, for the SF
// with q = 23, a mean of ~1.1 minimal paths between non-adjacent router
// pairs with a maximum of 8; for the MLFM, h paths between same-column LR
// pairs and 1 otherwise; for the OFT, k paths between symmetric L0/L2
// counterparts and 1 otherwise.
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/properties.h"
#include "topology/slim_fly.h"

using namespace d2net;

namespace {

void report(Table& t, const Topology& topo) {
  const PathDiversityStats d2 = path_diversity_at_distance(topo, 2);
  t.add(topo.name(), static_cast<std::int64_t>(d2.pairs), fmt(d2.mean, 3),
        static_cast<std::int64_t>(d2.max), static_cast<std::int64_t>(d2.pairs_with_diversity));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Section 2.3.3: minimal-path diversity at distance 2");
  cli.flag("sf-q23", false, "include the paper's q = 23 SF data point (slow-ish)");
  if (!cli.parse(argc, argv)) return 0;

  std::printf("== Minimal-path diversity between routers at distance 2 ==\n");
  std::printf("   paper: SF q=23 mean ~1.1, max 8; MLFM column pairs h paths; OFT\n");
  std::printf("   symmetric pairs k paths; all other pairs a single path\n");
  Table t({"topology", "dist-2 pairs", "mean paths", "max", "pairs >1 path"});
  for (int q : {7, 11, 13}) report(t, build_slim_fly(q));
  if (cli.get_bool("sf-q23")) report(t, build_slim_fly(23));
  for (int h : {7, 15}) report(t, build_mlfm(h));
  for (int k : {6, 12}) report(t, build_oft(k));
  t.print(std::cout);
  return 0;
}
