// Fig. 13: effective throughput of one all-to-all exchange per topology and
// routing strategy (MIN, INR, and each topology's best adaptive config).
// Paper shape: ~100% for MIN and adaptive, ~50% for INR.
//
// The paper exchanges 7.5 KB (30 packets) per pair at N ~ 3200; the scaled
// default keeps the 30-packet message at the smaller N. An ablation flag
// also runs the staggered (non-interleaved) schedule, which exposes the
// shift-permutation weakness of sequential per-destination sending.
//
// DEPRECATED as a hand-maintained driver: this binary is now a thin shim
// over bench::run_exchange_table, and the same table is reproducible from
// the committed spec via `d2net_campaign --spec=campaigns/fig13.json` with
// byte-identical --json output (verified by scripts/ci.sh stage 6; see
// docs/campaigns.md). Kept as the identity baseline and for one-off flag
// overrides (--bytes-per-pair, --staggered).
#include <cstdio>

#include "bench_common.h"
#include "sim/exchange.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 13: all-to-all exchange effective throughput");
  add_standard_flags(cli);
  cli.flag("bytes-per-pair", std::int64_t{7680}, "message size per pair (paper: 7680)");
  cli.flag("staggered", false, "ablation: staggered sequential schedule instead");
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  const std::int64_t bytes = cli.get_int("bytes-per-pair");
  const A2aOrder order = cli.get_bool("staggered") ? A2aOrder::kStaggered : A2aOrder::kShuffled;

  BenchReport report("bench_fig13_all_to_all", opts);
  const auto systems = paper_systems(opts.full);
  std::vector<ExchangeRowSpec> rows;
  for (const auto& sys : systems) {
    for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kValiant,
                              RoutingStrategy::kUgalThreshold}) {
      rows.push_back({sys.label, &sys.topo, s});
    }
  }
  run_exchange_table("Fig. 13: effective throughput, one all-to-all", rows, bytes, order,
                     us(5'000'000), opts, &report);
  return report.finish();
}
