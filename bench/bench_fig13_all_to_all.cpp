// Fig. 13: effective throughput of one all-to-all exchange per topology and
// routing strategy (MIN, INR, and each topology's best adaptive config).
// Paper shape: ~100% for MIN and adaptive, ~50% for INR.
//
// The paper exchanges 7.5 KB (30 packets) per pair at N ~ 3200; the scaled
// default keeps the 30-packet message at the smaller N. An ablation flag
// also runs the staggered (non-interleaved) schedule, which exposes the
// shift-permutation weakness of sequential per-destination sending.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/exchange.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Fig. 13: all-to-all exchange effective throughput");
  add_standard_flags(cli);
  cli.flag("bytes-per-pair", std::int64_t{7680}, "message size per pair (paper: 7680)");
  cli.flag("staggered", false, "ablation: staggered sequential schedule instead");
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  const std::int64_t bytes = cli.get_int("bytes-per-pair");
  const A2aOrder order = cli.get_bool("staggered") ? A2aOrder::kStaggered : A2aOrder::kShuffled;

  SimConfig cfg;
  cfg.seed = opts.seed;
  // --point-timeout bounds the wall clock of each exchange run.
  cfg.wall_limit_seconds = opts.point_timeout_s;

  std::printf("== Fig. 13: effective throughput, one all-to-all (%lld B/pair, %s) ==\n",
              static_cast<long long>(bytes),
              order == A2aOrder::kStaggered ? "staggered" : "shuffled+interleaved");
  Table t({"system", "routing", "eff. throughput", "completion (us)"});
  for (const auto& sys : paper_systems(opts.full)) {
    const ExchangePlan plan =
        make_all_to_all_plan(sys.topo.num_nodes(), bytes, order, opts.seed);
    for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kValiant,
                              RoutingStrategy::kUgalThreshold}) {
      SimStack stack(sys.topo, s, cfg);
      const ExchangeResult r = stack.run_exchange(plan, us(5'000'000));
      // An aborted run has no meaningful completion time; an explicit
      // marker beats a misleading 0.0 in the table/CSV/JSON. The three
      // abort modes are distinct: WEDGED = no simulated progress (watchdog),
      // DEADLINE = --point-timeout wall-clock budget expired, TIMEOUT = the
      // simulated time limit elapsed while still progressing.
      const char* abort_marker =
          r.faults.wedged ? "WEDGED" : r.timed_out ? "DEADLINE" : "TIMEOUT";
      t.add(sys.label, to_string(s),
            r.completed ? fmt(r.effective_throughput, 3) : abort_marker,
            r.completed ? fmt(r.completion_us, 1) : abort_marker);
    }
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
