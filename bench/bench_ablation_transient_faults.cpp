// Ablation (beyond the paper): TRANSIENT mid-run faults. A burst of random
// links dies partway through the measurement window and (optionally) comes
// back later. Static minimal routing with no recovery keeps aiming at the
// dead links and permanently loses everything they would have carried;
// fault-aware UGAL-Th (table invalidation + salvage reroute) dips while the
// burst is live and climbs back once paths are rebuilt — the degradation-
// and-recovery curve printed per system. A final demo deliberately isolates
// a destination router so the run cannot finish, showing the no-progress
// watchdog ending it gracefully with wedged=true and partial stats instead
// of spinning forever. See docs/resilience.md for the fault model.
//
// DEPRECATED as a hand-maintained driver: the fault sweeps (everything in
// --json) are reproducible from the committed spec via `d2net_campaign
// --spec=campaigns/transient_faults.json` with byte-identical --json output
// (verified by scripts/ci.sh stage 6; see docs/campaigns.md). Kept as the
// identity baseline and for the stdout-only recovery-curve tables and the
// --wedge-demo, which the declarative runner deliberately does not model.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "sim/exchange.h"
#include "sim/fault.h"

using namespace d2net;
using namespace d2net::bench;

namespace {

struct Mode {
  const char* label;
  RoutingStrategy strategy;
  FaultRecovery recovery;
  bool reroute;
};

// Contrast pair: the paper-pessimal static baseline vs the full recovery
// machinery.
const Mode kModes[] = {
    {"MIN static", RoutingStrategy::kMinimal, FaultRecovery::kNone, false},
    {"UGAL-Th reroute", RoutingStrategy::kUgalThreshold, FaultRecovery::kSalvage, true},
};

void wedge_demo(const SystemConfig& sys, std::uint64_t seed) {
  // One node streams 32 KB to a node on a router that dies mid-transfer.
  // With static routing and no recovery the exchange can never complete:
  // in-flight packets are destroyed, the injection VOQ head stalls against
  // the dead port, and nothing moves — the watchdog must end the run.
  const Topology& topo = sys.topo;
  int src = 0;
  const int src_router = topo.router_of_node(src);
  int dst = -1;
  for (int n = topo.num_nodes() - 1; n >= 0; --n) {
    if (topo.router_of_node(n) != src_router) {
      dst = n;
      break;
    }
  }
  ExchangePlan plan;
  plan.name = "wedge-demo";
  plan.per_node.resize(topo.num_nodes());
  plan.per_node[src].push_back({dst, 32768});

  SimConfig cfg;
  cfg.seed = seed;
  cfg.fault.schedule.push_back(
      {us(1.0), FaultKind::kRouterDown, topo.router_of_node(dst), -1});
  cfg.fault.recovery = FaultRecovery::kNone;
  cfg.fault.reroute = false;
  cfg.fault.watchdog_interval = us(10);

  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  const ExchangeResult r = stack.run_exchange(plan, us(5'000'000));
  std::printf(
      "\n== watchdog demo: %s, destination router killed mid-transfer ==\n"
      "completed=%s wedged=%s delivered=%lld/%lld B\n",
      sys.label.c_str(), r.completed ? "true" : "false",
      r.faults.wedged ? "true" : "false", static_cast<long long>(r.delivered_bytes),
      static_cast<long long>(r.total_bytes));
  if (r.faults.wedged) {
    std::printf(
        "watchdog: t=%.1fus in_flight=%lld nic_backlog=%lld stalled_heads=%d "
        "zero_credit_vcs=%d\n",
        to_us(r.faults.watchdog.time), static_cast<long long>(r.faults.watchdog.in_flight),
        static_cast<long long>(r.faults.watchdog.nic_backlog),
        r.faults.watchdog.stalled_heads, r.faults.watchdog.zero_credit_vcs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Ablation: transient link-fault burst, static loss vs fault-aware recovery");
  add_standard_flags(cli);
  cli.flag("load", 0.7, "offered uniform load")
      .flag("burst-frac", 0.05, "fraction of links in the fault burst")
      .flag("restore", true, "bring the burst links back up mid-run")
      .flag("wedge-demo", true, "also run the disconnecting-fault watchdog demo");
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  const double load = cli.get_double("load");
  const double burst_frac = cli.get_double("burst-frac");
  const bool restore = cli.get_bool("restore");

  // Burst a quarter into the measurement window; restoration halfway, so
  // both the dip and the recovery land inside the measured buckets.
  const TimePs t_burst = opts.warmup + (opts.duration - opts.warmup) / 4;
  const TimePs restore_after = restore ? (opts.duration - opts.warmup) / 4 : 0;
  const TimePs bucket = opts.duration / 12;

  BenchReport report("ablation_transient_faults", opts);
  std::printf("== transient fault burst: %.0f%% of links down at %.1fus%s ==\n",
              burst_frac * 100, to_us(t_burst),
              restore ? ", restored later" : ", permanent");

  // "wedged" (watchdog: no simulated progress) and "deadline"
  // (--point-timeout wall-clock budget expired) are distinct abort modes
  // and get separate columns.
  Table summary({"system", "routing", "accepted", "dropped", "retried", "lost",
                 "reroutes", "unreach", "wedged", "deadline"});
  for (const auto& sys : paper_systems(opts.full)) {
    if (sys.label == "SF p=cl") continue;  // one SF flavor suffices here
    const int count =
        std::max(1, static_cast<int>(burst_frac * sys.topo.num_links()));
    const UniformTraffic uni(sys.topo.num_nodes());

    std::vector<std::vector<SweepPoint>> series;
    std::vector<std::string> labels;
    const auto wall_start = std::chrono::steady_clock::now();
    std::int64_t events = 0;
    for (const Mode& mode : kModes) {
      SimConfig cfg;
      cfg.seed = opts.seed;
      cfg.wall_limit_seconds = opts.point_timeout_s;
      cfg.fault.schedule =
          make_link_burst(sys.topo, t_burst, count, opts.seed, restore_after);
      cfg.fault.recovery = mode.recovery;
      cfg.fault.reroute = mode.reroute;
      cfg.fault.recovery_sample = bucket;

      SimStack stack(sys.topo, mode.strategy, cfg);
      const OpenLoopResult r = stack.run_open_loop(uni, load, opts.duration, opts.warmup);
      events += r.events_processed;
      summary.add(sys.label, mode.label, fmt(r.accepted_throughput, 3),
                  r.faults.packets_dropped, r.faults.packets_retried,
                  r.faults.packets_lost, r.faults.reroutes, r.faults.unreachable_pairs,
                  r.faults.wedged ? "yes" : "no", r.timed_out ? "yes" : "no");
      labels.push_back(mode.label);
      SweepPoint pt;
      pt.offered = load;
      pt.result = r;
      series.push_back({std::move(pt)});
    }

    // Degradation-and-recovery curve: delivered bytes per bucket, normalized
    // to each series' own peak bucket so the dip depth and recovery slope
    // compare directly across routings.
    Table curve({"t (us)", std::string(kModes[0].label) + " rel",
                 std::string(kModes[1].label) + " rel"});
    std::size_t buckets = 0;
    for (const auto& s : series) {
      buckets = std::max(buckets, s[0].result.faults.delivered_bytes_buckets.size());
    }
    std::vector<double> peak(series.size(), 0.0);
    for (std::size_t m = 0; m < series.size(); ++m) {
      for (std::int64_t b : series[m][0].result.faults.delivered_bytes_buckets) {
        peak[m] = std::max(peak[m], static_cast<double>(b));
      }
    }
    for (std::size_t i = 0; i < buckets; ++i) {
      std::vector<std::string> row{fmt(to_us(bucket) * static_cast<double>(i), 1)};
      for (std::size_t m = 0; m < series.size(); ++m) {
        const auto& bks = series[m][0].result.faults.delivered_bytes_buckets;
        const double v = i < bks.size() ? static_cast<double>(bks[i]) : 0.0;
        row.push_back(peak[m] > 0 ? fmt(v / peak[m], 2) : "-");
      }
      curve.add_row(std::move(row));
    }
    std::printf("\n== %s: delivered bytes per %.1fus bucket (peak-relative) ==\n",
                sys.label.c_str(), to_us(bucket));
    curve.print(std::cout);
    if (opts.csv) curve.print_csv(std::cout);

    SweepRunStats stats;
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    stats.events = events;
    stats.points = static_cast<std::int64_t>(series.size());
    stats.jobs = 1;
    report.add_sweep("transient faults — " + sys.label, labels, series, stats);
  }

  // Detection-delay ablation: the same burst, but with the oracle control
  // plane replaced by modeled detection + hop-by-hop link-state propagation
  // (docs/resilience.md). Slower detection keeps routers aiming at dead
  // links for longer; the convergence columns quantify the control plane
  // itself, the accepted column its throughput cost.
  const double kDetectionUs[] = {0.2, 0.5, 1.0, 2.0};
  Table conv({"system", "detect (us)", "accepted", "detections", "floods",
              "converged (us)", "misroutes", "budget drops"});
  for (const auto& sys : paper_systems(opts.full)) {
    if (sys.label == "SF p=cl") continue;
    const int count =
        std::max(1, static_cast<int>(burst_frac * sys.topo.num_links()));
    const UniformTraffic uni(sys.topo.num_nodes());

    std::vector<std::vector<SweepPoint>> series;
    std::vector<std::string> labels;
    const auto wall_start = std::chrono::steady_clock::now();
    std::int64_t events = 0;
    for (const double d : kDetectionUs) {
      SimConfig cfg;
      cfg.seed = opts.seed;
      cfg.wall_limit_seconds = opts.point_timeout_s;
      cfg.fault.schedule =
          make_link_burst(sys.topo, t_burst, count, opts.seed, restore_after);
      cfg.fault.recovery = FaultRecovery::kSalvage;
      cfg.fault.reroute = true;
      cfg.fault.recovery_sample = bucket;
      cfg.fault.propagation = true;
      cfg.fault.detection_delay = us(d);

      SimStack stack(sys.topo, RoutingStrategy::kUgalThreshold, cfg);
      const OpenLoopResult r = stack.run_open_loop(uni, load, opts.duration, opts.warmup);
      events += r.events_processed;
      const ConvergenceStats& cv = r.faults.convergence;
      conv.add(sys.label, fmt(d, 1), fmt(r.accepted_throughput, 3), cv.detections,
               cv.flood_messages,
               cv.converged > 0 ? fmt(to_us(cv.consistency_time_max), 2) : "-",
               cv.misroutes, cv.budget_drops);
      labels.push_back("detect " + fmt(d, 1) + "us");
      SweepPoint pt;
      pt.offered = load;
      pt.result = r;
      series.push_back({std::move(pt)});
    }

    SweepRunStats stats;
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    stats.events = events;
    stats.points = static_cast<std::int64_t>(series.size());
    stats.jobs = 1;
    report.add_sweep("fault propagation — " + sys.label, labels, series, stats);
  }
  std::printf("\n== detection-delay sweep (modeled control plane) ==\n");
  conv.print(std::cout);
  if (opts.csv) conv.print_csv(std::cout);

  std::printf("\n== summary ==\n");
  summary.print(std::cout);
  if (opts.csv) summary.print_csv(std::cout);

  if (cli.get_bool("wedge-demo")) {
    wedge_demo(paper_systems(opts.full).front(), opts.seed);
  }
  return report.finish();
}
