// Ablation (extension of Section 3.3): how much performance does local
// UGAL leave on the table versus the impractical global variant? The paper
// only evaluates UGAL-L; UGAL-G with instantaneous knowledge of every queue
// along each candidate path is the oracle upper bound.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "sim/traffic.h"

using namespace d2net;
using namespace d2net::bench;

int main(int argc, char** argv) {
  Cli cli("Ablation: UGAL-L vs UGAL-G (global oracle) under UNI and WC traffic");
  add_standard_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);

  SimConfig cfg;
  cfg.seed = opts.seed;

  std::printf("== UGAL-L vs UGAL-G: accepted throughput / mean latency ==\n");
  Table t({"system", "pattern", "load", "UGAL-L thr", "UGAL-L lat", "UGAL-G thr",
           "UGAL-G lat"});
  for (const auto& sys : paper_systems(opts.full)) {
    if (sys.label == "SF p=cl") continue;
    const MinimalTable table(sys.topo);
    Rng rng(opts.seed);
    const auto wc = make_worst_case(sys.topo, table, rng);
    const UniformTraffic uni(sys.topo.num_nodes());
    struct Case {
      const TrafficPattern* pattern;
      const char* label;
      double load;
    };
    const Case cases[] = {{&uni, "UNI", 0.9}, {wc.get(), "WC", 0.45}};
    for (const Case& c : cases) {
      SimStack local(sys.topo, RoutingStrategy::kUgal, cfg);
      const OpenLoopResult rl = local.run_open_loop(*c.pattern, c.load, opts.duration,
                                                    opts.warmup);
      SimStack global(sys.topo, RoutingStrategy::kUgalGlobal, cfg);
      const OpenLoopResult rg = global.run_open_loop(*c.pattern, c.load, opts.duration,
                                                     opts.warmup);
      t.add(sys.label, c.label, fmt(c.load, 2), fmt(rl.accepted_throughput, 3),
            fmt(rl.avg_latency_ns, 0), fmt(rg.accepted_throughput, 3),
            fmt(rg.avg_latency_ns, 0));
    }
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
