// Ablation (design choice behind Fig. 13): all-to-all schedule sensitivity.
// The paper performs the exchange "in a manner similar to Kumar et al."
// — packet-interleaved across destinations. This bench quantifies why:
// draining one destination at a time (sequential staggered order) turns the
// instantaneous traffic into shift permutations, which collapse minimal
// routing on the SSPTs, while interleaving (round-robin) makes it
// uniform-like and restores near-full effective throughput.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "sim/exchange.h"

using namespace d2net;
using namespace d2net::bench;

namespace {

/// Variant of the A2A plan with sequential (non-interleaved) draining.
ExchangePlan sequential_plan(int num_nodes, std::int64_t bytes, A2aOrder order,
                             std::uint64_t seed) {
  ExchangePlan plan = make_all_to_all_plan(num_nodes, bytes, order, seed);
  plan.order = MessageOrder::kSequential;
  plan.name += "+sequential";
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Ablation: all-to-all schedule (interleaved vs sequential, shuffled vs staggered)");
  add_standard_flags(cli);
  cli.flag("bytes-per-pair", std::int64_t{7680}, "message size per pair");
  if (!cli.parse(argc, argv)) return 0;
  const BenchOptions opts = read_standard_flags(cli);
  const std::int64_t bytes = cli.get_int("bytes-per-pair");

  SimConfig cfg;
  cfg.seed = opts.seed;

  std::printf("== A2A schedule ablation (MIN routing, effective throughput) ==\n");
  Table t({"system", "interleaved+shuffled", "interleaved+staggered", "sequential+shuffled",
           "sequential+staggered"});
  for (const auto& sys : paper_systems(opts.full)) {
    if (sys.label == "SF p=cl") continue;
    std::vector<std::string> row{sys.label};
    const ExchangePlan plans[4] = {
        make_all_to_all_plan(sys.topo.num_nodes(), bytes, A2aOrder::kShuffled, opts.seed),
        make_all_to_all_plan(sys.topo.num_nodes(), bytes, A2aOrder::kStaggered, opts.seed),
        sequential_plan(sys.topo.num_nodes(), bytes, A2aOrder::kShuffled, opts.seed),
        sequential_plan(sys.topo.num_nodes(), bytes, A2aOrder::kStaggered, opts.seed),
    };
    for (const auto& plan : plans) {
      SimStack stack(sys.topo, RoutingStrategy::kMinimal, cfg);
      const ExchangeResult r = stack.run_exchange(plan, us(10'000'000));
      row.push_back(r.completed ? fmt(r.effective_throughput, 3) : "timeout");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  if (opts.csv) t.print_csv(std::cout);
  return 0;
}
