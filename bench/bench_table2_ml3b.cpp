// Table 2: the tabular representation of the 4-ML3B (Maximal Leaves Basic
// Building Block), plus validity checks for the other degrees used in the
// paper and benches. Reproduces the paper's table verbatim.
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "gf/galois_field.h"
#include "topology/oft.h"

using namespace d2net;

int main(int argc, char** argv) {
  Cli cli("Table 2: k-ML3B tabular representation (paper prints k = 4)");
  cli.flag("k", std::int64_t{4}, "ML3B degree (k - 1 must be a prime power)");
  if (!cli.parse(argc, argv)) return 0;
  const int k = static_cast<int>(cli.get_int("k"));

  const Ml3bTable table = build_ml3b(k);
  std::printf("== Table 2: %d-ML3B (rows: L0 router i -> its k L1 routers) ==\n", k);
  Table t([&] {
    std::vector<std::string> h{"i"};
    // Built without operator+(const char*, string&&): GCC 12's -Wrestrict
    // false-positives on that overload (PR105651) and CI builds -Werror.
    for (int c = 0; c < k; ++c) h.push_back(std::string("j") += std::to_string(c));
    return h;
  }());
  for (std::size_t i = 0; i < table.size(); ++i) {
    std::vector<std::string> row{std::to_string(i)};
    for (int v : table[i]) row.push_back(std::to_string(v));
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::printf("\nvalidity (exactly one shared L1 router per row pair; every L1 in k rows):\n");
  for (int kk : {2, 3, 4, 5, 6, 8, 12, 14, 18}) {
    if (kk != 2 && !GaloisField::is_prime_power(kk - 1)) continue;
    const bool ok = ml3b_is_valid(build_ml3b(kk), kk);
    std::printf("  k=%-3d RL=%-5d %s\n", kk, oft_routers_per_level(kk), ok ? "OK" : "FAIL");
  }
  return 0;
}
