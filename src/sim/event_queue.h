// Discrete-event core: a time-ordered queue with a deterministic FIFO
// tie-break so identical seeds replay identical packet traces.
//
// Two interchangeable scheduling structures live behind one interface,
// selected by set_scheduler() (driven by SimConfig::scheduler):
//
//  * SchedulerKind::kHeap — an implicit 4-ary min-heap over a flat vector.
//    The shallow tree halves the cache lines touched per sift relative to
//    std::priority_queue's binary heap. pop()/push() sift with a hole instead of swapping,
//    so each level moves one Event instead of three.
//
//  * SchedulerKind::kWheel — a two-level bucketed near-future wheel in
//    front of that same heap (calendar/ladder-queue style). Level 1 is a
//    ring of 64 buckets of 2^12 ps (~4 ns) each; level 2 is a ring of 64
//    buckets of 2^18 ps (~262 ns, exactly one full L1 span) each; events
//    beyond the ~16.8 us L2 horizon overflow into the heap. Pops consume a
//    sorted "active bucket"; pushes are O(1) ring appends except for the
//    rare push into the active bucket itself, which insertion-sorts into
//    the unconsumed tail. Nearly every event a saturated simulation
//    schedules (serialization ends, head eligibility, credit returns)
//    lands within a few L1 buckets of `now`, so steady-state cost is a
//    ring append plus an amortized small sort instead of an O(log n) sift.
//
// Both schedulers realize the exact same (time, okey, seq) total order, so
// a run is bit-identical under either — enforced by
// tests/test_determinism_digest via an FNV-1a digest of the full dispatched
// event stream. The okey (ordering key) ranks same-time events by a
// content-derived identity instead of raw insertion order, which makes the
// realized order independent of *where* an event was pushed from — the
// property sharded execution needs so that cross-shard arrivals delivered
// at a window barrier sort exactly where the serial engine would have
// placed them (see docs/sharded_sim.md). Two distinct pending events never
// tie on (time, okey) in-bounds (the key packs the event's full identity),
// so seq only orders byte-identical duplicates, whose relative order cannot
// matter.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace d2net {

enum class EventType : std::uint8_t {
  kGenerate,        ///< a = node: open-loop packet generation tick
  kNicFree,         ///< a = node: injection link finished serializing
  kArriveRouter,    ///< a = packet, b = router, c = in_port, d = vc
  kHeadEligible,    ///< a = router, b = in_port, c = vc
  kChannelFree,     ///< a = router, b = out_port
  kCreditToRouter,  ///< a = router, b = out_port, c = vc, d = bytes
  kCreditToNic,     ///< a = node, c = vc, d = bytes
  kArriveNode,      ///< a = packet, b = node
  /// Read-only buffer-occupancy sampling tick (metrics enabled only).
  /// Mutates nothing but the metric sinks and is excluded from
  /// events_processed, so enabling metrics cannot perturb a run.
  kMetricsSample,
  /// a = index into the sorted fault schedule (faults enabled only).
  kFault,
  /// a = packet: source re-injection attempt after a fault drop.
  kRetryInject,
  /// No-progress check tick. Like kMetricsSample it reads counters only,
  /// never touches the RNG and is excluded from events_processed, so the
  /// always-on watchdog cannot perturb a healthy run.
  kWatchdog,
  /// a = router, d = fault-schedule index (fault.propagation only): the
  /// router's missed-credit timeout fires and it learns about an attached
  /// fault, then originates a link-state flood. Control-plane event: runs
  /// in serialized steps when sharded, exactly like kFault.
  kFaultDetect,
  /// a = router, d = fault-schedule index (fault.propagation only): a
  /// flooded link-state update reaches the router. Operands b and c are
  /// deliberately zero — duplicate deliveries of the same update at the
  /// same time fold identically into the digest regardless of arrival
  /// (seq) order, whatever neighbor sent them.
  kFloodArrive,
};

struct Event {
  TimePs time = 0;
  /// Content-derived ordering key: primary tie-break at equal times (see
  /// pack_event_okey / the file comment). High byte is the EventType.
  std::uint64_t okey = 0;
  std::uint64_t seq = 0;  ///< insertion order; final FIFO tie-break
  EventType type{};
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
};

/// Ordering key for events whose operands are stable entity identities
/// (everything except the packet-carrying kinds, whose `a` is a pool slot):
/// type:8 | a:22 | b:12 | c:4 | d:18. NetworkSim enforces these widths when
/// sharding; a serial run with out-of-range operands merely aliases keys and
/// falls back to the (still deterministic) seq tie-break.
inline std::uint64_t pack_event_okey(EventType type, std::int32_t a, std::int32_t b,
                                     std::int32_t c, std::int32_t d) {
  return (static_cast<std::uint64_t>(type) << 56) |
         ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) & 0x3FFFFFu) << 34) |
         ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(b)) & 0xFFFu) << 22) |
         ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)) & 0xFu) << 18) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d)) & 0x3FFFFu);
}

/// Ordering key for packet-carrying events (kArriveRouter, kArriveNode,
/// kRetryInject): the packet's pool-independent uid replaces the operand
/// pack, so the key survives migration between per-shard pools.
inline std::uint64_t pack_packet_okey(EventType type, std::uint64_t uid) {
  return (static_cast<std::uint64_t>(type) << 56) | (uid & 0x00FFFFFFFFFFFFFFull);
}

/// Which scheduling structure EventQueue uses (see the file comment).
enum class SchedulerKind : std::uint8_t {
  kHeap,   ///< 4-ary implicit min-heap only
  kWheel,  ///< two-level bucketed wheel + heap overflow
};

class EventQueue {
 public:
  /// Selects the scheduling structure; only valid while the queue is empty
  /// (NetworkSim calls it once at construction from SimConfig::scheduler).
  void set_scheduler(SchedulerKind kind) {
    D2NET_REQUIRE(size_ == 0, "set_scheduler() on a non-empty EventQueue");
    kind_ = kind;
  }
  SchedulerKind scheduler() const { return kind_; }

  /// Convenience push for identity-operand events (computes the okey).
  void push(TimePs time, EventType type, std::int32_t a = 0, std::int32_t b = 0,
            std::int32_t c = 0, std::int32_t d = 0) {
    push_keyed(time, pack_event_okey(type, a, b, c, d), type, a, b, c, d);
  }

  void push_keyed(TimePs time, std::uint64_t okey, EventType type, std::int32_t a = 0,
                  std::int32_t b = 0, std::int32_t c = 0, std::int32_t d = 0) {
    const Event e{time, okey, next_seq_++, type, a, b, c, d};
    ++size_;
    if (kind_ == SchedulerKind::kHeap) {
      push_heap(e);
      return;
    }
    if (size_ == 1) reanchor(time);
    if (time < l1_start_) {
      // Lands in (or before) the active bucket: insertion-sort into the
      // unconsumed tail. Searching from cur_pos_ clamps an event that would
      // sort before already-consumed entries (a same-time push with a
      // smaller okey than the event being dispatched) to "popped next" —
      // exactly where the heap would surface it, since every
      // already-consumed entry was the minimum of the pending set when it
      // was popped.
      cur_.insert(std::upper_bound(cur_.begin() + static_cast<std::ptrdiff_t>(cur_pos_),
                                   cur_.end(), e, before),
                  e);
    } else if (time < l1_limit_) {
      const std::size_t b1 = l1_bucket(time);
      l1_[b1].push_back(e);
      l1_mask_ |= std::uint64_t{1} << b1;
    } else if (time < l2_start_ + kL2Span) {
      const std::size_t b2 = l2_bucket(time);
      l2_[b2].push_back(e);
      l2_mask_ |= std::uint64_t{1} << b2;
    } else {
      push_heap(e);
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  Event pop() {
    D2NET_HOT_ASSERT(size_ > 0, "pop() on empty EventQueue");
    --size_;
    if (kind_ == SchedulerKind::kHeap) return pop_heap();
    if (cur_pos_ >= cur_.size()) advance();
    return cur_[cur_pos_++];
  }

  /// Earliest pending event time. Non-const because the wheel may need to
  /// surface the next bucket first (pure scheduling work, no observable
  /// state change).
  TimePs next_time() {
    D2NET_HOT_ASSERT(size_ > 0, "next_time() on empty EventQueue");
    if (kind_ == SchedulerKind::kHeap) return heap_.front().time;
    if (cur_pos_ >= cur_.size()) advance();
    return cur_[cur_pos_].time;
  }

  /// The event pop() would return next, without removing it (the sharded
  /// coordinator's serialized-timestamp step interleaves several queues by
  /// comparing heads). Same const caveat as next_time().
  const Event& peek() {
    D2NET_HOT_ASSERT(size_ > 0, "peek() on empty EventQueue");
    if (kind_ == SchedulerKind::kHeap) return heap_.front();
    if (cur_pos_ >= cur_.size()) advance();
    return cur_[cur_pos_];
  }

  /// Pre-sizes the backing stores (one sim reuses the queue across runs).
  void reserve(std::size_t n) {
    heap_.reserve(n);
    if (kind_ == SchedulerKind::kWheel) {
      // At saturation one L1 bucket holds a small slice of the pending set;
      // reserve a fraction so early runs do not grow buckets one push at a
      // time.
      const std::size_t per_bucket = std::max<std::size_t>(n / (kL1Buckets * 4), 8);
      cur_.reserve(per_bucket * 2);
      for (auto& b : l1_) b.reserve(per_bucket);
    }
  }

  /// Event slots the primary backing store holds before reallocating (the
  /// heap in heap mode; overflow-heap capacity in wheel mode, which
  /// reserve() sizes identically). Exposed through EngineCapacities.
  std::size_t reserved() const { return heap_.capacity(); }

  /// Drops all pending events but keeps the allocated capacity and the
  /// monotone sequence counter (seq only ever breaks same-time ties, so
  /// continuing it across runs cannot change any ordering).
  void clear() {
    heap_.clear();
    cur_.clear();
    cur_pos_ = 0;
    if (l1_mask_ != 0) {
      for (auto& b : l1_) b.clear();
      l1_mask_ = 0;
    }
    if (l2_mask_ != 0) {
      for (auto& b : l2_) b.clear();
      l2_mask_ = 0;
    }
    l1_start_ = l1_limit_ = l2_start_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kArity = 4;

  // Wheel geometry: W2 == kL1Buckets * W1 so expanding one L2 bucket fills
  // exactly one full L1 ring span.
  static constexpr int kL1Shift = 12;  ///< W1 = 2^12 ps ~ 4 ns
  static constexpr int kL2Shift = 18;  ///< W2 = 2^18 ps ~ 262 ns
  static constexpr std::size_t kL1Buckets = 64;
  static constexpr std::size_t kL2Buckets = 64;
  static constexpr TimePs kW1 = TimePs{1} << kL1Shift;
  static constexpr TimePs kW2 = TimePs{1} << kL2Shift;
  static constexpr TimePs kL2Span = kW2 * static_cast<TimePs>(kL2Buckets);
  static_assert(kW2 == kW1 * static_cast<TimePs>(kL1Buckets));

  static bool before(const Event& x, const Event& y) {
    if (x.time != y.time) return x.time < y.time;
    if (x.okey != y.okey) return x.okey < y.okey;
    return x.seq < y.seq;
  }

  static std::size_t l1_bucket(TimePs t) {
    return static_cast<std::size_t>(t >> kL1Shift) & (kL1Buckets - 1);
  }
  static std::size_t l2_bucket(TimePs t) {
    return static_cast<std::size_t>(t >> kL2Shift) & (kL2Buckets - 1);
  }

  /// First set ring position at or after `from` (ring order), or npos.
  static std::size_t next_set_bit(std::uint64_t mask, std::size_t from) {
    const std::uint64_t rotated = std::rotr(mask, static_cast<int>(from));
    if (rotated == 0) return static_cast<std::size_t>(-1);
    return (from + static_cast<std::size_t>(std::countr_zero(rotated))) % 64;
  }

  // --- heap primitives (hole-based sifts: one Event moved per level) ---

  void push_heap(const Event& e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  Event pop_heap() {
    const Event top = heap_.front();
    const Event last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = kArity * i + 1;
        if (first >= n) break;
        const std::size_t end = std::min(first + kArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  // --- wheel machinery ---

  /// Re-anchors the (empty) wheel windows around the first pending time.
  void reanchor(TimePs t) {
    cur_.clear();
    cur_pos_ = 0;
    l1_start_ = (t >> kL1Shift) << kL1Shift;
    l1_limit_ = ((t >> kL2Shift) + 1) << kL2Shift;
    l2_start_ = l1_limit_;
  }

  /// Makes cur_[cur_pos_] the globally earliest pending event. Called only
  /// with size_ accounting for at least one pending event.
  void advance() {
    for (;;) {
      if (l1_mask_ != 0) {
        const std::size_t b = next_set_bit(l1_mask_, l1_bucket(l1_start_));
        D2NET_HOT_ASSERT(b != static_cast<std::size_t>(-1), "l1 mask empty");
        cur_.clear();
        cur_.swap(l1_[b]);
        cur_pos_ = 0;
        l1_mask_ &= ~(std::uint64_t{1} << b);
        // The consumed bucket's absolute start: ring position b at or after
        // l1_start_ within the (≤ one span) L1 window.
        const std::size_t from = l1_bucket(l1_start_);
        const std::size_t steps = (b + kL1Buckets - from) % kL1Buckets;
        l1_start_ += static_cast<TimePs>(steps + 1) * kW1;
        std::sort(cur_.begin(), cur_.end(), before);
        return;
      }
      l1_start_ = l1_limit_;  // L1 empty: its window closes at the L2 boundary
      if (l2_mask_ != 0) {
        const std::size_t b = next_set_bit(l2_mask_, l2_bucket(l2_start_));
        D2NET_HOT_ASSERT(b != static_cast<std::size_t>(-1), "l2 mask empty");
        std::vector<Event>& bucket = l2_[b];
        l2_mask_ &= ~(std::uint64_t{1} << b);
        const std::size_t from = l2_bucket(l2_start_);
        const std::size_t steps = (b + kL2Buckets - from) % kL2Buckets;
        const TimePs bucket_start = l2_start_ + static_cast<TimePs>(steps) * kW2;
        // Expand this W2 region across the L1 ring, then slide the L2
        // window past it and pull any heap events the wider window now
        // covers.
        l1_start_ = bucket_start;
        l1_limit_ = bucket_start + kW2;
        for (const Event& e : bucket) {
          const std::size_t b1 = l1_bucket(e.time);
          l1_[b1].push_back(e);
          l1_mask_ |= std::uint64_t{1} << b1;
        }
        bucket.clear();
        l2_start_ = l1_limit_;
        drain_heap_into_l2();
        continue;
      }
      // Both rings empty: re-anchor at the heap's earliest event.
      D2NET_HOT_ASSERT(!heap_.empty(), "advance() with no pending events");
      reanchor(heap_.front().time);
      drain_heap_into_l2_and_l1();
    }
  }

  void drain_heap_into_l2() {
    const TimePs limit = l2_start_ + kL2Span;
    while (!heap_.empty() && heap_.front().time < limit) {
      const Event e = pop_heap();
      const std::size_t b2 = l2_bucket(e.time);
      l2_[b2].push_back(e);
      l2_mask_ |= std::uint64_t{1} << b2;
    }
  }

  void drain_heap_into_l2_and_l1() {
    while (!heap_.empty() && heap_.front().time < l1_limit_) {
      const Event e = pop_heap();
      const std::size_t b1 = l1_bucket(e.time);
      l1_[b1].push_back(e);
      l1_mask_ |= std::uint64_t{1} << b1;
    }
    drain_heap_into_l2();
  }

  SchedulerKind kind_ = SchedulerKind::kHeap;
  std::size_t size_ = 0;
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;

  // Wheel state. cur_ is the sorted active bucket with consume index
  // cur_pos_; the L1 ring covers [l1_start_, l1_limit_), the L2 ring
  // [l2_start_, l2_start_ + kL2Span), the heap everything beyond.
  std::vector<Event> cur_;
  std::size_t cur_pos_ = 0;
  std::array<std::vector<Event>, kL1Buckets> l1_{};
  std::array<std::vector<Event>, kL2Buckets> l2_{};
  std::uint64_t l1_mask_ = 0;
  std::uint64_t l2_mask_ = 0;
  TimePs l1_start_ = 0;
  TimePs l1_limit_ = 0;
  TimePs l2_start_ = 0;
};

}  // namespace d2net
