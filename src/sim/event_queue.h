// Discrete-event core: a time-ordered queue with a deterministic FIFO
// tie-break so identical seeds replay identical packet traces.
//
// Implemented as an implicit 4-ary min-heap over a flat vector instead of
// std::priority_queue's binary heap: the shallower tree halves the number
// of cache lines touched per sift and the 32-byte Event packs two siblings
// per line, which is worth ~20-30% on the simulator's dominant push/pop
// cycle (see bench_micro_core BM_EventQueue*).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace d2net {

enum class EventType : std::uint8_t {
  kGenerate,        ///< a = node: open-loop packet generation tick
  kNicFree,         ///< a = node: injection link finished serializing
  kArriveRouter,    ///< a = packet, b = router, c = in_port, d = vc
  kHeadEligible,    ///< a = router, b = in_port, c = vc
  kChannelFree,     ///< a = router, b = out_port
  kCreditToRouter,  ///< a = router, b = out_port, c = vc, d = bytes
  kCreditToNic,     ///< a = node, c = vc, d = bytes
  kArriveNode,      ///< a = packet, b = node
  /// Read-only buffer-occupancy sampling tick (metrics enabled only).
  /// Mutates nothing but the metric sinks and is excluded from
  /// events_processed, so enabling metrics cannot perturb a run.
  kMetricsSample,
  /// a = index into the sorted fault schedule (faults enabled only).
  kFault,
  /// a = packet: source re-injection attempt after a fault drop.
  kRetryInject,
  /// No-progress check tick. Like kMetricsSample it reads counters only,
  /// never touches the RNG and is excluded from events_processed, so the
  /// always-on watchdog cannot perturb a healthy run.
  kWatchdog,
};

struct Event {
  TimePs time = 0;
  std::uint64_t seq = 0;  ///< insertion order; breaks time ties FIFO
  EventType type{};
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
};

class EventQueue {
 public:
  void push(TimePs time, EventType type, std::int32_t a = 0, std::int32_t b = 0,
            std::int32_t c = 0, std::int32_t d = 0) {
    heap_.push_back(Event{time, next_seq_++, type, a, b, c, d});
    sift_up(heap_.size() - 1);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Event pop() {
    D2NET_ASSERT(!heap_.empty(), "pop() on empty EventQueue");
    Event top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  TimePs next_time() const {
    D2NET_ASSERT(!heap_.empty(), "next_time() on empty EventQueue");
    return heap_.front().time;
  }

  /// Pre-sizes the backing store (one sim reuses the queue across runs).
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Drops all pending events but keeps the allocated capacity and the
  /// monotone sequence counter (seq only ever breaks same-time ties, so
  /// continuing it across runs cannot change any ordering).
  void clear() { heap_.clear(); }

 private:
  static constexpr std::size_t kArity = 4;

  static bool before(const Event& x, const Event& y) {
    if (x.time != y.time) return x.time < y.time;
    return x.seq < y.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + kArity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace d2net
