// Discrete-event core: a time-ordered queue with a deterministic FIFO
// tie-break so identical seeds replay identical packet traces.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/units.h"

namespace d2net {

enum class EventType : std::uint8_t {
  kGenerate,        ///< a = node: open-loop packet generation tick
  kNicFree,         ///< a = node: injection link finished serializing
  kArriveRouter,    ///< a = packet, b = router, c = in_port, d = vc
  kHeadEligible,    ///< a = router, b = in_port, c = vc
  kChannelFree,     ///< a = router, b = out_port
  kCreditToRouter,  ///< a = router, b = out_port, c = vc, d = bytes
  kCreditToNic,     ///< a = node, c = vc, d = bytes
  kArriveNode,      ///< a = packet, b = node
};

struct Event {
  TimePs time = 0;
  std::uint64_t seq = 0;  ///< insertion order; breaks time ties FIFO
  EventType type{};
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
};

class EventQueue {
 public:
  void push(TimePs time, EventType type, std::int32_t a = 0, std::int32_t b = 0,
            std::int32_t c = 0, std::int32_t d = 0) {
    heap_.push(Event{time, next_seq_++, type, a, b, c, d});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  TimePs next_time() const { return heap_.top().time; }

 private:
  struct Later {
    bool operator()(const Event& x, const Event& y) const {
      if (x.time != y.time) return x.time > y.time;
      return x.seq > y.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace d2net
