#include "sim/exchange.h"

#include "common/error.h"
#include "common/rng.h"
#include "topology/topology.h"

namespace d2net {

ExchangePlan make_all_to_all_plan(int num_nodes, std::int64_t bytes_per_pair, A2aOrder order,
                                  std::uint64_t seed) {
  D2NET_REQUIRE(num_nodes >= 2, "all-to-all needs >= 2 nodes");
  D2NET_REQUIRE(bytes_per_pair > 0, "message size must be positive");
  ExchangePlan plan;
  plan.name = order == A2aOrder::kStaggered ? "all-to-all(staggered)" : "all-to-all(shuffled)";
  // Packets are interleaved round-robin across all open messages, as in the
  // optimized exchanges of Kumar et al. — sending each message to
  // completion would make the instantaneous traffic a permutation and
  // needlessly serialize on the low path diversity of these topologies.
  plan.order = MessageOrder::kRoundRobin;
  plan.per_node.resize(num_nodes);
  Rng rng(seed);
  for (int n = 0; n < num_nodes; ++n) {
    auto& msgs = plan.per_node[n];
    msgs.reserve(num_nodes - 1);
    for (int i = 1; i < num_nodes; ++i) {
      msgs.push_back({(n + i) % num_nodes, bytes_per_pair});
    }
    if (order == A2aOrder::kShuffled) rng.shuffle(msgs);
  }
  return plan;
}

std::array<int, 3> best_torus_dims(int num_nodes) {
  D2NET_REQUIRE(num_nodes >= 8, "need at least a 2x2x2 torus");
  std::array<int, 3> best{2, 2, 2};
  std::int64_t best_count = 8;
  int best_spread = 0;
  for (int a = 2; a * a * a <= num_nodes; ++a) {
    for (int b = a; a * b * b <= num_nodes; ++b) {
      const int c = num_nodes / (a * b);
      if (c < b) break;
      const std::int64_t count = static_cast<std::int64_t>(a) * b * c;
      const int spread = c - a;
      if (count > best_count || (count == best_count && spread < best_spread)) {
        best = {a, b, c};
        best_count = count;
        best_spread = spread;
      }
    }
  }
  return best;
}

std::vector<int> random_rank_mapping(int num_nodes, int ranks, Rng& rng) {
  D2NET_REQUIRE(ranks <= num_nodes, "more ranks than nodes");
  std::vector<int> nodes(num_nodes);
  for (int i = 0; i < num_nodes; ++i) nodes[i] = i;
  rng.shuffle(nodes);
  nodes.resize(ranks);
  return nodes;
}

std::array<int, 3> paper_torus_dims(const Topology& topo) {
  switch (topo.kind()) {
    case TopologyKind::kMlfm: {
      // h-MLFM: l layers of h+1 LRs with p endpoints each; exact fit.
      const int lr0 = topo.edge_routers().front();
      const int p = topo.endpoints_of(lr0);
      int num_layers = 0;
      int per_layer = 0;
      for (int r : topo.edge_routers()) {
        num_layers = std::max(num_layers, topo.info(r).a + 1);
        per_layer = std::max(per_layer, topo.info(r).b + 1);
      }
      if (p >= 2 && per_layer >= 2 && num_layers >= 2) return {p, per_layer, num_layers};
      break;
    }
    case TopologyKind::kOft: {
      // X = k inside a router; Y x Z = the most balanced factor pair of
      // 2 * RL (always even, so a pair with both factors >= 2 exists).
      const int k = topo.endpoints_of(0);
      const int rest = topo.num_nodes() / k;  // = 2 * RL
      int best_a = 2;
      for (int a = 2; a * a <= rest; ++a) {
        if (rest % a == 0) best_a = a;
      }
      if (k >= 2 && best_a >= 2 && rest / best_a >= 2) return {k, best_a, rest / best_a};
      break;
    }
    default:
      break;
  }
  return best_torus_dims(topo.num_nodes());
}

ExchangePlan make_nearest_neighbor_plan(int num_nodes, const std::array<int, 3>& dims,
                                        std::int64_t bytes_per_neighbor,
                                        const std::vector<int>& rank_to_node) {
  const auto [dx, dy, dz] = dims;
  D2NET_REQUIRE(dx >= 2 && dy >= 2 && dz >= 2, "torus dimensions must be >= 2");
  const int ranks = dx * dy * dz;
  D2NET_REQUIRE(ranks <= num_nodes, "torus larger than the machine");
  D2NET_REQUIRE(bytes_per_neighbor > 0, "message size must be positive");
  D2NET_REQUIRE(rank_to_node.empty() || static_cast<int>(rank_to_node.size()) >= ranks,
                "rank mapping smaller than the torus");

  ExchangePlan plan;
  plan.name = "nearest-neighbor " + std::to_string(dx) + "x" + std::to_string(dy) + "x" +
              std::to_string(dz) + (rank_to_node.empty() ? "" : " (custom mapping)");
  plan.order = MessageOrder::kRoundRobin;
  plan.per_node.resize(num_nodes);

  auto node_at = [&](int x, int y, int z) {
    const int rank = x + dx * (y + dy * z);
    return rank_to_node.empty() ? rank : rank_to_node[rank];
  };
  for (int z = 0; z < dz; ++z) {
    for (int y = 0; y < dy; ++y) {
      for (int x = 0; x < dx; ++x) {
        auto& msgs = plan.per_node[node_at(x, y, z)];
        msgs.reserve(6);
        // +/- in each dimension, torus wraparound. With a dimension of
        // size 2 both directions reach the same neighbor — two messages are
        // still exchanged, as an MPI halo exchange would.
        const int neighbors[6] = {
            node_at((x + 1) % dx, y, z),      node_at((x + dx - 1) % dx, y, z),
            node_at(x, (y + 1) % dy, z),      node_at(x, (y + dy - 1) % dy, z),
            node_at(x, y, (z + 1) % dz),      node_at(x, y, (z + dz - 1) % dz)};
        for (int nb : neighbors) {
          D2NET_ASSERT(nb != node_at(x, y, z), "self neighbor in torus >= 2^3");
          msgs.push_back({nb, bytes_per_neighbor});
        }
      }
    }
  }
  return plan;
}

}  // namespace d2net
