#include "sim/experiment.h"

#include "common/error.h"

namespace d2net {

int num_vcs_needed(const Topology& topo, const MinimalTable& table, RoutingStrategy strategy) {
  const bool hop_index = vc_policy_for(topo.kind()) == VcPolicy::kHopIndex;
  const int minimal_vcs = hop_index ? std::max(1, table.diameter()) : 1;
  if (strategy == RoutingStrategy::kMinimal) return minimal_vcs;
  return hop_index ? 2 * minimal_vcs : 2;  // Valiant / UGAL-L / UGAL-G alike
}

SimStack::SimStack(const Topology& topo, RoutingStrategy strategy, const SimConfig& cfg,
                   std::optional<UgalParams> params)
    : SimStack(topo, std::make_shared<const MinimalTable>(topo), strategy, cfg,
               std::move(params)) {}

namespace {
const MinimalTable& checked_table(const std::shared_ptr<const MinimalTable>& table,
                                  const Topology& topo) {
  D2NET_REQUIRE(table != nullptr, "SimStack needs a minimal table");
  D2NET_REQUIRE(table->num_routers() == topo.num_routers(),
                "minimal table does not match the topology");
  return *table;
}
}  // namespace

SimStack::SimStack(const Topology& topo, std::shared_ptr<const MinimalTable> table,
                   RoutingStrategy strategy, const SimConfig& cfg,
                   std::optional<UgalParams> params, SharedIntermediates intermediates)
    : topo_(topo), table_(std::move(table)), cfg_engine_(cfg.engine) {
  const MinimalTable* routing_table = &checked_table(table_, topo);
  const UgalParams p = params.has_value()
                           ? *params
                           : default_ugal_params(topo.kind(),
                                                 strategy == RoutingStrategy::kUgalThreshold);
  if (cfg_engine_ == SimEngine::kFlow) {
    // Only the selected engine is constructed: the packet engine's VOQ and
    // credit arrays are prohibitive exactly at the scales the flow engine
    // exists for. FlowSim's constructor rejects packet-only config
    // (faults, metrics, shards) with a descriptive ArgumentError.
    flow_ = std::make_unique<flowsim::FlowSim>(topo, cfg);
    algo_ = make_routing(topo_, *routing_table, strategy, *flow_, p, std::move(intermediates));
    flow_->set_routing(*algo_);
    return;
  }
  packet_ = std::make_unique<NetworkSim>(
      topo, cfg, num_vcs_needed(topo, *table_, strategy));
  if (cfg.fault.enabled() && cfg.fault.reroute) {
    // Fault-aware rerouting mutates the table mid-run; give this stack a
    // private copy so the shared healthy table stays immutable.
    fault_table_ = std::make_unique<MinimalTable>(*table_);
    packet_->set_fault_table(fault_table_.get());
    routing_table = fault_table_.get();
  }
  algo_ = make_routing(topo_, *routing_table, strategy, *packet_, p, std::move(intermediates));
  packet_->set_routing(*algo_);
}

NetworkSim& SimStack::sim() {
  D2NET_REQUIRE(packet_ != nullptr,
                "SimStack::sim() is packet-engine only (this stack runs engine=flow)");
  return *packet_;
}

OpenLoopResult SimStack::run_open_loop(const TrafficPattern& pattern, double load,
                                       TimePs duration, TimePs warmup) {
  if (flow_) return flow_->run_open_loop(pattern, load, duration, warmup);
  return packet_->run_open_loop(pattern, load, duration, warmup);
}

ExchangeResult SimStack::run_exchange(const ExchangePlan& plan, TimePs time_limit) {
  if (flow_) return flow_->run_exchange(plan, time_limit);
  return packet_->run_exchange(plan, time_limit);
}

ExchangeResult SimStack::run_fluid_all_to_all(std::int64_t bytes_per_pair) {
  D2NET_REQUIRE(flow_ != nullptr,
                "run_fluid_all_to_all needs the flow engine (engine=flow)");
  return flow_->run_fluid_all_to_all(*table_, bytes_per_pair);
}

std::vector<SweepPoint> run_load_sweep(SimStack& stack, const TrafficPattern& pattern,
                                       const std::vector<double>& loads, TimePs duration,
                                       TimePs warmup) {
  std::vector<SweepPoint> out;
  out.reserve(loads.size());
  for (double load : loads) {
    SweepPoint pt;
    pt.offered = load;
    pt.result = stack.run_open_loop(pattern, load, duration, warmup);
    out.push_back(std::move(pt));
  }
  return out;
}

double saturation_point(const std::vector<SweepPoint>& sweep, double threshold) {
  double sat = 0.0;
  for (const SweepPoint& pt : sweep) {
    if (pt.failed) continue;  // no measurement to judge
    if (pt.result.accepted_throughput >= threshold * pt.offered) {
      sat = std::max(sat, pt.offered);
    }
  }
  // If even the lowest load saturates, report its accepted throughput — the
  // sustainable rate — rather than zero.
  if (sat == 0.0 && !sweep.empty()) sat = sweep.front().result.accepted_throughput;
  return sat;
}

std::vector<double> uniform_load_grid() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0};
}

std::vector<double> adversarial_load_grid() {
  return {0.02, 0.04, 0.06, 0.08, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0};
}

}  // namespace d2net
