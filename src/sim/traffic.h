// Synthetic traffic patterns (paper Sections 4.2 and 4.3): global uniform
// random, node-shift permutations, and the per-topology worst-case
// adversarial permutations of Section 4.2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace d2net {

class Topology;
class MinimalTable;

/// Chooses a destination node for each generated packet.
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  /// Destination node for a packet from src_node; must not equal src_node.
  virtual int dest(int src_node, Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Uniform random over all other nodes.
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(int num_nodes);
  int dest(int src_node, Rng& rng) const override;
  std::string name() const override { return "uniform"; }

 private:
  int num_nodes_;
};

/// Fixed permutation traffic (adversarial patterns are instances of this).
class PermutationTraffic final : public TrafficPattern {
 public:
  PermutationTraffic(std::vector<int> dest_of, std::string name);
  int dest(int src_node, Rng& rng) const override;
  std::string name() const override { return name_; }
  const std::vector<int>& permutation() const { return dest_of_; }

 private:
  std::vector<int> dest_of_;
  std::string name_;
};

/// dest = (src + shift) mod N. With shift == p this shifts traffic by one
/// router — the MLFM/OFT worst case of Section 4.2.
std::unique_ptr<PermutationTraffic> make_node_shift(int num_nodes, int shift);

/// Uniformly random fixed permutation without fixed points (each node gets
/// a distinct partner). Representative of unlucky-but-not-adversarial
/// job placements.
std::unique_ptr<PermutationTraffic> make_random_permutation(int num_nodes, Rng& rng);

/// The topology-specific worst-case permutation of Section 4.2:
///  * SF: greedy pairing of routers communicating at distance 2 with
///    overlapping minimal routes (Fig. 5) — the shared link carries 2p
///    flows, capping throughput at 1/2p.
///  * MLFM: node shift by p (router shift by one, crossing columns): the
///    single minimal path carries h flows -> 1/h.
///  * OFT: node shift by p (router shift by one, never the symmetric
///    counterpart): k flows on one path -> 1/k.
std::unique_ptr<PermutationTraffic> make_worst_case(const Topology& topo,
                                                    const MinimalTable& table, Rng& rng);

}  // namespace d2net
