#include "sim/sweep_runner.h"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/error.h"
#include "common/thread_pool.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace d2net {

std::uint64_t derive_point_seed(std::uint64_t base_seed, std::uint64_t point_index) {
  // SplitMix64 finalizer over a golden-ratio-spaced input stream.
  std::uint64_t x = base_seed + (point_index + 1) * 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

SweepRunner::SweepRunner(SweepRunOptions opts) : opts_(std::move(opts)) {
  D2NET_REQUIRE(opts_.jobs >= 0, "jobs must be >= 0 (0 = hardware concurrency)");
  jobs_ = opts_.jobs == 0 ? ThreadPool::hardware_concurrency() : opts_.jobs;
}

std::vector<std::vector<SweepPoint>> SweepRunner::run(
    const std::vector<SweepSeriesSpec>& specs) {
  struct PointRef {
    std::size_t series;
    std::size_t load_index;
  };

  // Resolve the shared minimal tables: one per distinct topology, reused
  // across series (and by every point of each series).
  std::vector<std::shared_ptr<const MinimalTable>> tables(specs.size());
  std::unordered_map<const Topology*, std::shared_ptr<const MinimalTable>> by_topo;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const SweepSeriesSpec& spec = specs[s];
    D2NET_REQUIRE(spec.topo != nullptr, "series needs a topology");
    D2NET_REQUIRE(spec.pattern != nullptr, "series needs a traffic pattern");
    if (spec.table != nullptr) {
      tables[s] = spec.table;
      by_topo.emplace(spec.topo, spec.table);
      continue;
    }
    auto it = by_topo.find(spec.topo);
    if (it == by_topo.end()) {
      it = by_topo.emplace(spec.topo, std::make_shared<const MinimalTable>(*spec.topo))
               .first;
    }
    tables[s] = it->second;
  }

  // Flatten to a deterministic point list: series-major, load-minor. The
  // global point index doubles as the seed-derivation index.
  std::vector<PointRef> points;
  std::vector<std::vector<SweepPoint>> out(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    out[s].resize(specs[s].loads.size());
    for (std::size_t l = 0; l < specs[s].loads.size(); ++l) points.push_back({s, l});
  }

  std::vector<std::int64_t> events(points.size(), 0);
  const auto t0 = std::chrono::steady_clock::now();

  auto run_point = [&](std::size_t i) {
    const SweepSeriesSpec& spec = specs[points[i].series];
    const double load = spec.loads[points[i].load_index];
    try {
      SimConfig cfg = opts_.config;
      cfg.seed = derive_point_seed(opts_.config.seed, i);
      SimStack stack(*spec.topo, tables[points[i].series], spec.strategy, cfg,
                     spec.params);
      SweepPoint pt;
      pt.offered = load;
      pt.result = stack.run_open_loop(*spec.pattern, load, opts_.duration, opts_.warmup);
      events[i] = pt.result.events_processed;
      out[points[i].series][points[i].load_index] = std::move(pt);
    } catch (const std::exception& e) {
      // Annotate with the failing point's identity: with many points in
      // flight a bare what() cannot be traced back to a simulation.
      std::ostringstream msg;
      msg << "sweep point failed (series \"" << spec.label << "\", load " << load
          << ", point " << i << "): " << e.what();
      throw std::runtime_error(msg.str());
    }
  };

  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  } else {
    // jobs_ - 1 pool workers: parallel_for has the calling thread claim
    // points too, so exactly jobs_ threads simulate.
    ThreadPool pool(jobs_ - 1);
    pool.parallel_for(points.size(), run_point);
  }

  const auto t1 = std::chrono::steady_clock::now();
  stats_ = SweepRunStats{};
  stats_.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats_.points = static_cast<std::int64_t>(points.size());
  stats_.jobs = jobs_;
  for (std::int64_t e : events) stats_.events += e;
  return out;
}

std::vector<SweepPoint> run_load_sweep_parallel(const SweepSeriesSpec& spec,
                                                const SweepRunOptions& opts) {
  SweepRunner runner(opts);
  auto tables = runner.run({spec});
  return std::move(tables.front());
}

}  // namespace d2net
