#include "sim/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/error.h"
#include "common/thread_pool.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace d2net {

std::uint64_t derive_point_seed(std::uint64_t base_seed, std::uint64_t point_index) {
  // SplitMix64 finalizer over a golden-ratio-spaced input stream.
  std::uint64_t x = base_seed + (point_index + 1) * 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

SweepRunner::SweepRunner(SweepRunOptions opts) : opts_(std::move(opts)) {
  D2NET_REQUIRE(opts_.jobs >= 0, "jobs must be >= 0 (0 = hardware concurrency)");
  if (opts_.jobs == 0) {
    // Auto-sizing composes with per-point sharding: each in-flight point
    // runs config.shards lanes, so divide the machine between them instead
    // of oversubscribing shards x points threads onto the same cores.
    const int shards = opts_.config.shards > 1 ? opts_.config.shards : 1;
    jobs_ = std::max(1, ThreadPool::hardware_concurrency() / shards);
  } else {
    jobs_ = opts_.jobs;
  }
}

std::vector<std::vector<SweepPoint>> SweepRunner::run(
    const std::vector<SweepSeriesSpec>& specs) {
  struct PointRef {
    std::size_t series;
    std::size_t load_index;
  };

  // Resolve the shared minimal tables: one per distinct topology, reused
  // across series (and by every point of each series). The Valiant/UGAL
  // intermediate candidate sets are shared the same way, so every in-flight
  // point reads one immutable copy instead of rebuilding its own.
  std::vector<std::shared_ptr<const MinimalTable>> tables(specs.size());
  std::vector<SharedIntermediates> intermediates(specs.size());
  std::unordered_map<const Topology*, std::shared_ptr<const MinimalTable>> by_topo;
  std::unordered_map<const Topology*, SharedIntermediates> vias_by_topo;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const SweepSeriesSpec& spec = specs[s];
    D2NET_REQUIRE(spec.topo != nullptr, "series needs a topology");
    D2NET_REQUIRE(spec.pattern != nullptr, "series needs a traffic pattern");
    if (spec.strategy != RoutingStrategy::kMinimal) {
      auto vit = vias_by_topo.find(spec.topo);
      if (vit == vias_by_topo.end()) {
        vit = vias_by_topo
                  .emplace(spec.topo, std::make_shared<const std::vector<int>>(
                                          valiant_intermediates(*spec.topo)))
                  .first;
      }
      intermediates[s] = vit->second;
    }
    if (spec.table != nullptr) {
      tables[s] = spec.table;
      by_topo.emplace(spec.topo, spec.table);
      continue;
    }
    auto it = by_topo.find(spec.topo);
    if (it == by_topo.end()) {
      it = by_topo.emplace(spec.topo, std::make_shared<const MinimalTable>(*spec.topo))
               .first;
    }
    tables[s] = it->second;
  }

  // Flatten to a deterministic point list: series-major, load-minor. The
  // global point index doubles as the seed-derivation index.
  std::vector<PointRef> points;
  std::vector<std::vector<SweepPoint>> out(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    out[s].resize(specs[s].loads.size());
    for (std::size_t l = 0; l < specs[s].loads.size(); ++l) points.push_back({s, l});
  }

  if (opts_.selected != nullptr) {
    D2NET_REQUIRE(opts_.selected->size() == points.size(),
                  "selection mask must cover every point of the sweep");
  }
  auto is_selected = [&](std::size_t i) {
    return opts_.selected == nullptr || (*opts_.selected)[i] != 0;
  };

  std::vector<std::int64_t> events(points.size(), 0);
  const auto t0 = std::chrono::steady_clock::now();

  auto key_for = [&](std::size_t i) { return opts_.scope + "#" + std::to_string(i); };
  auto topo_fingerprint = [](const Topology& t) {
    std::ostringstream os;
    os << "r=" << t.num_routers() << ",n=" << t.num_nodes() << ",l=" << t.num_links();
    return os.str();
  };

  // Resolve journal state up front, on the calling thread: configuration
  // mismatches must abort the run before any simulation starts, and doing
  // it here keeps the worker path free of validation branches.
  std::vector<const JournalEntry*> restored(points.size(), nullptr);
  if (opts_.journal != nullptr) {
    if (opts_.register_scope) opts_.journal->register_scope(opts_.scope);
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!is_selected(i)) continue;
      const JournalEntry* e = opts_.journal->find(key_for(i));
      if (e == nullptr || !e->completed()) continue;  // failed/missing: re-run
      const SweepSeriesSpec& spec = specs[points[i].series];
      const double load = spec.loads[points[i].load_index];
      const std::uint64_t seed =
          spec.seed_override ? *spec.seed_override : derive_point_seed(opts_.config.seed, i);
      // The manifest hash should have caught any config drift already;
      // these per-entry checks are the second lock on the same door (a
      // journal edited by hand, or a manifest that failed to capture some
      // input) — restoring a point from a different sweep is silent data
      // corruption, so they are hard errors, not warnings.
      D2NET_REQUIRE(e->label == spec.label && e->load == load && e->seed == seed &&
                        e->topo == topo_fingerprint(*spec.topo),
                    "journal entry '" + e->key +
                        "' does not match the current sweep (label/load/seed/topology "
                        "drift); refusing to mix results — use a fresh --journal dir");
      restored[i] = e;
    }
  }

  auto run_point = [&](std::size_t i) {
    if (!is_selected(i)) return;  // another worker's point; leave untouched
    const SweepSeriesSpec& spec = specs[points[i].series];
    const double load = spec.loads[points[i].load_index];
    const TimePs duration = spec.duration > 0 ? spec.duration : opts_.duration;
    const std::uint64_t seed0 =
        spec.seed_override ? *spec.seed_override : derive_point_seed(opts_.config.seed, i);

    if (const JournalEntry* e = restored[i]) {
      SweepPoint pt;
      pt.offered = load;
      pt.restored = true;
      pt.restored_json = e->payload;
      pt.attempts = e->attempts;
      pt.result.offered_load = load;
      pt.result.accepted_throughput = e->throughput;
      pt.result.avg_latency_ns = e->avg_latency_ns;
      pt.result.p99_latency_ns = e->p99_latency_ns;
      pt.result.packets_measured = e->packets_measured;
      pt.result.events_processed = e->events;
      pt.result.timed_out = e->status == "timed_out";
      events[i] = e->events;
      out[points[i].series][points[i].load_index] = std::move(pt);
      return;
    }

    const auto p0 = std::chrono::steady_clock::now();
    const int max_attempts = std::max(1, opts_.point_attempts);
    SweepPoint pt;
    pt.offered = load;
    // Bounded retry: a fresh attempt re-derives its seed from the point's
    // first-attempt seed, so retries explore genuinely different event
    // streams while staying a pure function of (base seed, index, attempt).
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      SimConfig cfg = opts_.config;
      cfg.seed = attempt == 0 ? seed0 : derive_point_seed(seed0, attempt);
      if (spec.fault.enabled()) cfg.fault = spec.fault;
      if (opts_.point_timeout_seconds > 0.0) {
        cfg.wall_limit_seconds = opts_.point_timeout_seconds;
      }
      try {
        SimStack stack(*spec.topo, tables[points[i].series], spec.strategy, cfg,
                       spec.params, intermediates[points[i].series]);
        pt.result = stack.run_open_loop(*spec.pattern, load, duration, opts_.warmup);
        pt.attempts = attempt + 1;
        pt.failed = false;
        pt.error.clear();
        if (!pt.result.timed_out) break;  // done; timed out => retry
      } catch (const std::exception& e) {
        // Annotate with the failing point's identity: with many points in
        // flight a bare what() cannot be traced back to a simulation.
        std::ostringstream msg;
        msg << "sweep point failed (series \"" << spec.label << "\", load " << load
            << ", point " << i << "): " << e.what();
        pt.attempts = attempt + 1;
        pt.failed = true;
        pt.error = msg.str();
        pt.result = OpenLoopResult{};
        if (attempt + 1 >= max_attempts && !(opts_.tolerate_failures && opts_.journal)) {
          throw std::runtime_error(pt.error);
        }
      }
    }
    events[i] = pt.result.events_processed;

    if (opts_.journal != nullptr) {
      JournalEntry e;
      e.key = key_for(i);
      e.label = spec.label;
      e.topo = topo_fingerprint(*spec.topo);
      e.load = load;
      e.seed = seed0;
      e.status = pt.failed ? "failed" : pt.result.timed_out ? "timed_out" : "ok";
      e.attempts = pt.attempts;
      e.events = pt.result.events_processed;
      e.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - p0).count();
      e.throughput = pt.result.accepted_throughput;
      e.avg_latency_ns = pt.result.avg_latency_ns;
      e.p99_latency_ns = pt.result.p99_latency_ns;
      e.packets_measured = pt.result.packets_measured;
      e.error = pt.error;
      if (!pt.failed && opts_.serialize) e.payload = opts_.serialize(pt);
      opts_.journal->append(e);
    }
    out[points[i].series][points[i].load_index] = std::move(pt);
  };

  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  } else {
    // jobs_ - 1 pool workers: parallel_for has the calling thread claim
    // points too, so exactly jobs_ threads simulate. Journaled runs stop
    // claiming new points after a hard error (journal I/O, non-tolerated
    // point failure) — everything already completed is on disk, so bailing
    // out fast beats burning hours on a run that will exit non-zero anyway.
    ThreadPool pool(jobs_ - 1);
    pool.parallel_for(points.size(), run_point,
                      /*stop_on_first_error=*/opts_.journal != nullptr);
  }

  const auto t1 = std::chrono::steady_clock::now();
  stats_ = SweepRunStats{};
  stats_.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (is_selected(i)) ++stats_.points;
  }
  stats_.jobs = jobs_;
  for (std::int64_t e : events) stats_.events += e;
  for (const auto& series : out) {
    for (const SweepPoint& pt : series) {
      stats_.restored_points += pt.restored ? 1 : 0;
      stats_.failed_points += pt.failed ? 1 : 0;
      stats_.timed_out_points += pt.result.timed_out ? 1 : 0;
    }
  }
  return out;
}

std::vector<SweepPoint> run_load_sweep_parallel(const SweepSeriesSpec& spec,
                                                const SweepRunOptions& opts) {
  SweepRunner runner(opts);
  auto tables = runner.run({spec});
  return std::move(tables.front());
}

}  // namespace d2net
