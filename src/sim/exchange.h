// Exchange-workload construction (paper Section 4.4):
//  * All-to-all: every process sends one message to every other process, in
//    the staggered shifted order of Kumar et al. (process n sends phase i to
//    (n + i) mod N), which spreads simultaneous traffic uniformly.
//  * Nearest-neighbor: processes arranged in the largest 3-D torus that
//    fits the machine; each sends one message to each of its 6 neighbors,
//    interleaved round-robin. Ranks map contiguously onto nodes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/network.h"

namespace d2net {

/// Destination ordering of the all-to-all exchange.
enum class A2aOrder {
  /// Phase i: node n sends to (n + i) mod N — the classic staggered
  /// schedule. While nodes stay synchronized each phase is a shift
  /// permutation, which is adversarial for minimal routing on the SSPTs.
  kStaggered,
  /// Each node visits its destinations in an independent random order,
  /// which spreads simultaneous traffic uniformly (the behavior the
  /// optimized exchanges of Kumar et al. achieve); default for Fig. 13.
  kShuffled,
};

/// The all-to-all plan: bytes_per_pair to each of the other N-1 nodes,
/// sequential message order. `seed` only matters for kShuffled.
ExchangePlan make_all_to_all_plan(int num_nodes, std::int64_t bytes_per_pair,
                                  A2aOrder order = A2aOrder::kShuffled,
                                  std::uint64_t seed = 1);

/// Largest 3-D torus (a <= b <= c, all >= 2) with a*b*c <= num_nodes;
/// maximizes the rank count, then minimizes the aspect spread c - a.
std::array<int, 3> best_torus_dims(int num_nodes);

/// The torus the paper embeds (Section 4.4), which exploits the topology's
/// structure under the contiguous mapping:
///  * MLFM: (p, h+1, l) — X stays inside a router, Y inside a layer, Z runs
///    across a router column (15x16x15 for h=15; this alignment is what
///    lets MLFM adaptive routing reach ~100% in Fig. 14).
///  * OFT: X = k (inside a router) and the best factor pair of 2*RL for
///    Y x Z (12x14x19 for k=12).
///  * Others (incl. SF): the generic largest fit (13x13x18 / 13x13x20 for
///    the two q=13 Slim Flys).
/// Dimensions are returned in mapping order (X fastest), not sorted.
std::array<int, 3> paper_torus_dims(const Topology& topo);

/// Nearest-neighbor plan on the given torus: rank r = x + dims[0]*(y +
/// dims[1]*z); each active rank sends bytes_per_neighbor to each of its 6
/// torus neighbors (duplicates allowed when a dimension has size 2).
/// `rank_to_node` maps ranks onto nodes — empty means the paper's
/// contiguous mapping (rank r -> node r); nodes without a rank stay idle.
ExchangePlan make_nearest_neighbor_plan(int num_nodes, const std::array<int, 3>& dims,
                                        std::int64_t bytes_per_neighbor,
                                        const std::vector<int>& rank_to_node = {});

/// A uniformly random rank-to-node assignment for `ranks` ranks over
/// `num_nodes` nodes — the anti-thesis of the contiguous mapping, used to
/// quantify how much Fig. 14's results depend on placement.
std::vector<int> random_rank_mapping(int num_nodes, int ranks, Rng& rng);

}  // namespace d2net
