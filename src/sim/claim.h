// Lease-based shard claiming for multi-worker campaigns (see
// docs/campaigns.md, "Distributed campaigns").
//
// N independent d2net_campaign processes — on one host or many sharing a
// filesystem — cooperatively execute one campaign by claiming *shards*
// (contiguous slices of the deterministic expanded point list) through
// lease files in `<journal>/leases/`. The protocol is built entirely from
// atomic filesystem primitives, so it needs no coordinator and survives
// any worker dying at any moment:
//
//  - **Claim** — `link(tmp, shard-<id>.lease)` publishes a fully written
//    lease atomically; link(2) fails with EEXIST when the shard is already
//    claimed, so exactly one contender wins and no reader ever sees a
//    half-written lease.
//  - **Heartbeat** — the owner periodically rewrites its lease (tmp +
//    atomic rename) with a fresh `heartbeat_at`. A lease whose heartbeat
//    is older than the TTL is *stale*: its worker is presumed dead or
//    wedged.
//  - **Steal** — a stale lease is taken over by first renaming it away to
//    a private name (exactly one stealer's rename succeeds; rename of a
//    missing path fails with ENOENT) and then claiming the shard afresh.
//  - **Complete** — an atomic `shard-<id>.done` marker; done shards are
//    never claimed again.
//
// The protocol guarantees *at-least-once* execution, not exactly-once: in
// the narrow race where an owner's heartbeat resurrects a lease that was
// just stolen, two workers can run the same shard. That is safe by
// design — every executed point lands in the executing worker's own
// journal, and the merge step deduplicates by point key, picking a
// deterministic winner (results are deterministic functions of the seed,
// so duplicates carry identical payloads). Leases exist to make double
// work rare, not to make it impossible.
//
// Staleness compares wall-clock timestamps written by (possibly) another
// host, so multi-host deployments need clocks synchronized to well under
// the TTL — the same assumption every lease system on a shared filesystem
// makes. The clock is injected (ClaimClock) so TTL logic is unit-testable
// without sleeping.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/journal.h"

namespace d2net {

/// Injected time source. `now` returns seconds since the Unix epoch (the
/// shared wall clock — leases are compared across processes and hosts);
/// `sleep` blocks for the given seconds. Tests substitute both to drive
/// TTL expiry synchronously.
struct ClaimClock {
  std::function<double()> now;
  std::function<void(double)> sleep;
};

/// The real wall clock (std::chrono::system_clock + sleep_for).
ClaimClock system_claim_clock();

struct ClaimOptions {
  std::string dir;     ///< campaign journal directory (leases live in dir/leases)
  std::string worker;  ///< this worker's id; must be non-empty
  /// Manifest hash pinned in every lease and in the shard-plan file: two
  /// workers disagreeing about the campaign must fail loudly, not share a
  /// lease directory.
  std::uint64_t spec_hash = 0;
  /// A lease whose heartbeat is older than this is stale and stealable.
  double lease_ttl = 60.0;
  /// fsync the lease directory after create/rename, so a claim acked to
  /// the protocol survives host power loss (JournalOptions::durable's
  /// sibling).
  bool durable = true;
  /// Time source; defaults to system_claim_clock() when `now` is empty.
  ClaimClock clock;
};

enum class ShardState {
  kUnclaimed,  ///< no lease, no done marker
  kLeased,     ///< live lease (heartbeat within TTL)
  kStale,      ///< lease present but heartbeat older than TTL
  kDone,       ///< completion marker present
};

const char* to_string(ShardState s);

/// Point-in-time view of one shard (for --status and the steal scan).
struct ShardStatus {
  ShardState state = ShardState::kUnclaimed;
  LeaseRecord lease;  ///< valid when state is kLeased/kStale (best effort)
  double age = 0.0;   ///< seconds since last heartbeat (kLeased/kStale)
};

/// One worker's handle on the lease directory: claim → heartbeat →
/// complete (or lose the lease and move on). Methods are safe to call
/// from a heartbeat thread concurrently with the claim loop as long as
/// each shard is driven by one thread at a time per process.
class ShardClaimer {
 public:
  explicit ShardClaimer(ClaimOptions opts);

  /// Pins the shard plan (shard count + points per shard + spec hash) in
  /// the lease directory: the first worker writes it atomically, every
  /// later worker must match — two workers planning different shard
  /// boundaries over one journal would corrupt the campaign. Throws
  /// ArgumentError on mismatch.
  void pin_plan(int num_shards, int shard_points);

  /// Attempts to claim an unclaimed shard. True = this worker now owns it
  /// (lease published, heartbeat fresh). False = already claimed, done, or
  /// lost the creation race.
  bool try_claim(int shard);

  /// Attempts to take over a stale lease: rename it away (one stealer
  /// wins), then claim afresh. False when the lease is live, missing, or
  /// another stealer won.
  bool try_steal(int shard);

  /// Refreshes this worker's lease on `shard`. False when the lease was
  /// stolen or removed — the caller should treat the shard as lost (any
  /// duplicate execution is resolved at merge).
  bool heartbeat(int shard);

  /// Marks the shard complete (atomic done marker; fsync'd when durable)
  /// and releases the lease. Idempotent — two workers completing the same
  /// shard after a double execution is harmless.
  void complete(int shard);

  bool is_done(int shard) const;

  /// Reads the shard's current state (done marker, lease freshness).
  ShardStatus inspect(int shard) const;

  /// Bounded exponential backoff for the contention loop: returns the next
  /// sleep in seconds (0.05 → 2× → min(2, TTL)), reset by reset_backoff().
  double next_backoff();
  void reset_backoff() { backoff_ = 0.0; }

  const ClaimOptions& options() const { return opts_; }
  std::string lease_path(int shard) const;
  std::string done_path(int shard) const;

 private:
  LeaseRecord make_record(int shard, double acquired_at) const;
  bool publish(const std::string& tmp_name, const LeaseRecord& rec,
               const std::string& dest, bool exclusive);

  ClaimOptions opts_;
  std::uint64_t token_ = 0;  ///< unique per claim attempt (steal dedup)
  double backoff_ = 0.0;
  /// Shards currently owned by this claimer: lease record as last written.
  std::map<int, LeaseRecord> owned_;
  mutable std::mutex mu_;
};

}  // namespace d2net
