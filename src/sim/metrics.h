// Detailed simulator observability (opt-in via SimConfig::metrics).
//
// When enabled, NetworkSim instruments every router output port and VC —
// forwarded traffic split minimal/indirect, credit-stall time, sampled
// buffer occupancy — plus network-wide scalar counters in a
// MetricsRegistry, and exports one immutable SimMetrics block per run.
// The run-phase breakdown (warmup / measurement / drain accounting) is
// cheap enough that it is always collected and lives directly on
// OpenLoopResult.
//
// Instrumentation is perturbation-free by construction: it never touches
// the RNG, never reorders events (occupancy sampling uses dedicated
// read-only events that are excluded from events_processed), and with
// metrics disabled every added hot-path cost is a single predictable
// branch — enforced by test_metrics.cpp, which asserts bit-identical core
// results for enabled and disabled runs of the same seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/units.h"

namespace d2net {

/// Where each packet of a run fell relative to the measurement window
/// [window_start, window_end]. Always collected (a couple of integer
/// increments per packet), independent of SimConfig::metrics.enabled.
struct RunPhaseBreakdown {
  std::int64_t injected_warmup = 0;    ///< injected with gen_time < window start
  std::int64_t injected_measured = 0;  ///< injected with gen_time >= window start
  std::int64_t delivered_warmup = 0;   ///< delivered before the window opened
  /// Generated AND delivered inside the window — exactly the packets the
  /// latency/hop statistics are computed over.
  std::int64_t delivered_measured = 0;
  /// Generated during warmup but delivered inside the window. These carry
  /// the queueing transient the warmup exists to discard and are excluded
  /// from the measured distribution (their latencies go to the metrics
  /// registry histogram "carryover_latency_ns" when metrics are enabled).
  std::int64_t delivered_carryover = 0;
  /// Still in the network when the run stopped (the drain the open-loop
  /// run never waits for).
  std::int64_t in_flight_at_end = 0;
};

/// Per-VC traffic through one output port (the VC is the one the packet
/// occupied in the input buffer it was granted from).
struct VcMetrics {
  std::int64_t packets = 0;
  std::int64_t bytes = 0;
  std::int64_t minimal_packets = 0;   ///< packets on a minimal route
  std::int64_t indirect_packets = 0;  ///< packets on an indirect route
};

/// One router output port (network channel or ejection channel).
struct PortMetrics {
  int router = -1;
  int port = -1;         ///< output-port index at `router`
  int peer_router = -1;  ///< downstream router; -1 for ejection ports
  int peer_node = -1;    ///< ejected-to node; -1 for network ports
  /// Forwarded traffic inside the measurement window (matches the
  /// accounting of NetworkSim::channel_stats()).
  std::int64_t packets_forwarded = 0;
  std::int64_t bytes_forwarded = 0;
  /// Total simulated time during which this port sat idle with at least
  /// one eligible head blocked purely on downstream credit.
  TimePs credit_stall_ps = 0;
  /// Output-queue depth (bytes waiting at this router for this port),
  /// sampled every SimConfig::metrics.sample_period over the whole run.
  RunningStats occupancy_bytes;
  std::vector<VcMetrics> vcs;  ///< indexed by VC
};

/// One point of the network-wide buffer-occupancy time series.
struct OccupancySample {
  TimePs time = 0;
  std::int64_t buffered_bytes = 0;  ///< sum of all output-queue depths
};

/// Engine storage pre-sizing, reported per run so capacity planning is
/// observable: NetworkSim reserves these at construction from the topology
/// shape (radix x VC count x expected in-flight), and the *_reserved
/// fields confirm what the backing stores actually grew to by run end.
struct EngineCapacities {
  std::size_t event_queue_reserved = 0;  ///< event slots without reallocation
  std::size_t packet_pool_reserved = 0;  ///< packet slots without reallocation
  std::size_t packet_pool_slots = 0;     ///< pool slots ever allocated (peak in-flight)
  std::size_t voq_cells = 0;             ///< intrusive VOQ cells (in x vc x out, all routers)
};

/// One shard (worker event core) of a sharded run: its slice of the router
/// set and the engine storage its private lane grew to.
struct ShardMetrics {
  int routers = 0;                 ///< routers owned by this shard
  int nodes = 0;                   ///< endpoints attached to those routers
  std::int64_t events = 0;         ///< events dispatched on this lane
  std::int64_t messages_sent = 0;  ///< cross-shard packets/credits sent
  EngineCapacities capacities;     ///< per-lane queue/pool/VOQ sizing
};

/// Window-barrier synchronization counters for a sharded run (see
/// docs/sharded_sim.md). All zero for serial runs.
struct ShardingMetrics {
  int shards = 1;                        ///< lanes actually used (after demotion/clamping)
  std::int64_t windows = 0;              ///< conservative time windows executed
  double mean_window_width_ns = 0.0;     ///< mean simulated-time span per window
  std::int64_t cross_shard_messages = 0; ///< total mailbox deliveries (all barriers)
  std::vector<ShardMetrics> shard;       ///< per-shard breakdown, size `shards`
};

/// Everything the instrumentation collected for one run. Attached to the
/// result as shared_ptr<const SimMetrics> so copying results stays cheap.
struct SimMetrics {
  TimePs sample_period = 0;
  EngineCapacities capacities;
  RunPhaseBreakdown phases;
  ShardingMetrics sharding;
  std::vector<PortMetrics> ports;          ///< ordered by (router, out port)
  std::vector<OccupancySample> occupancy;  ///< whole-run, one entry per sample tick
  /// Scalar sinks: counters "grants", "credit_blocked_skips",
  /// "injection_credit_stalls", "occupancy_samples"; histogram
  /// "carryover_latency_ns".
  MetricsRegistry registry;
};

}  // namespace d2net
