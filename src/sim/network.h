// Event-driven network simulator (paper Section 4.1).
//
// Model: input-buffered, VC-capable routers with credit-based flow control.
// Every directed link has a serialization stage at the sender (line rate),
// a propagation latency, and a per-VC input buffer at the receiver guarded
// by credits held at the sender. A packet becomes eligible for forwarding
// one router-traversal latency after it has fully arrived; output ports
// arbitrate round-robin over the eligible input-VC heads that request them
// and start serialization only when the downstream VC has buffer credit.
// Credits return with one link latency when a packet leaves the input
// buffer. Routing decisions (including the adaptive ones, which read this
// router's local output-queue occupancies through PortLoadProvider) are
// made once per packet, at injection.
//
// Granularity: events are per packet, with byte-accurate serialization,
// credit and buffer accounting. Relative to the paper's flit-level
// simulator this adds a store-and-forward delay of one packet
// serialization per hop (20.48 ns at 100 Gb/s / 256 B) — small against the
// 100 ns router traversal — and does not affect saturation behavior.
//
// Sharded execution (SimConfig::shards > 1, see docs/sharded_sim.md): the
// router set is partitioned across worker event cores ("lanes") under
// conservative time-window synchronization. The wire latency on cut links
// is guaranteed lookahead, so each lane may safely execute every event
// within one link latency of the global window floor; cross-shard packet
// and credit arrivals are exchanged through per-lane mailboxes at window
// barriers. The (time, okey, seq) event order realized by EventQueue is
// push-site independent, so a sharded run reproduces the serial run's
// event stream — and its FNV-1a digest — bit for bit (enforced by
// tests/test_determinism_digest.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "routing/local_view.h"
#include "routing/routing_algorithm.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/packet.h"
#include "sim/trace.h"
#include "sim/voq.h"

namespace d2net {

class Topology;
class TrafficPattern;
class MinimalTable;

/// Result of one open-loop synthetic-traffic run at a fixed offered load.
struct OpenLoopResult {
  double offered_load = 0.0;
  /// Ejected bytes in the measurement window over the aggregate ejection
  /// capacity — the paper's "throughput" axis (fraction of injection rate).
  double accepted_throughput = 0.0;
  double avg_latency_ns = 0.0;
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  std::int64_t packets_measured = 0;
  std::int64_t packets_injected = 0;
  /// Discrete events dispatched during the run (engine-speed denominator
  /// for the benches' events/sec reporting).
  std::int64_t events_processed = 0;
  /// FNV-1a digest of the dispatched event stream; 0 unless
  /// SimConfig::collect_event_digest. Identical across scheduler kinds,
  /// sweep parallelism, and shard counts (tests/test_determinism_digest.cpp).
  std::uint64_t event_digest = 0;
  double avg_hops = 0.0;
  /// Share of packets the routing algorithm sent minimally (1.0 for MIN).
  double fraction_minimal = 0.0;
  /// Jain fairness index over per-node ejected bytes in the window
  /// (1.0 = perfectly even service; 1/N = one node starves all others).
  double jain_fairness = 0.0;
  /// Warmup / measurement / drain packet accounting; always populated.
  RunPhaseBreakdown phases;
  /// True when SimConfig::wall_limit_seconds expired before the run
  /// finished; the statistics above cover only the simulated time actually
  /// reached. Distinct from faults.wedged (no simulated progress).
  bool timed_out = false;
  /// Fault-injection accounting (faults.enabled false for healthy runs).
  FaultStats faults;
  /// Per-port/VC detail; non-null only with SimConfig::metrics.enabled.
  std::shared_ptr<const SimMetrics> metrics;
};

/// One message of an exchange workload.
struct ExchangeMessage {
  int dst_node = -1;
  std::int64_t bytes = 0;
};

/// How a node works through its message list.
enum class MessageOrder {
  kSequential,  ///< finish message i before starting i+1 (all-to-all phases)
  kRoundRobin,  ///< interleave packets across all open messages (neighbor exchange)
};

/// A complete exchange: per-node message lists plus ordering discipline.
struct ExchangePlan {
  std::string name;
  std::vector<std::vector<ExchangeMessage>> per_node;
  MessageOrder order = MessageOrder::kSequential;

  std::int64_t total_bytes() const;
  int active_nodes() const;  ///< nodes with at least one message
};

struct ExchangeResult {
  bool completed = false;
  double completion_us = 0.0;
  std::int64_t total_bytes = 0;
  /// Bytes actually delivered; equals total_bytes iff completed. A run cut
  /// short by the time limit or the watchdog reports its partial progress.
  std::int64_t delivered_bytes = 0;
  /// Delivered bytes per active node over completion time, as a fraction of
  /// the line rate — the paper's "effective throughput" (Figs. 13, 14).
  double effective_throughput = 0.0;
  double avg_latency_ns = 0.0;  ///< mean in-network packet latency
  /// FNV-1a digest of the dispatched event stream; 0 unless
  /// SimConfig::collect_event_digest.
  std::uint64_t event_digest = 0;
  /// True when SimConfig::wall_limit_seconds expired before completion or
  /// the simulated time limit (completed is false in that case).
  bool timed_out = false;
  /// Fault-injection accounting (faults.enabled false for healthy runs).
  FaultStats faults;
  /// Per-port/VC detail; non-null only with SimConfig::metrics.enabled.
  std::shared_ptr<const SimMetrics> metrics;
};

/// Simulator instance bound to one topology. Create, then attach a routing
/// algorithm (adaptive ones should be constructed with this object as their
/// PortLoadProvider), then call one run method per instance-reset cycle.
class NetworkSim final : public PortLoadProvider {
 public:
  /// `num_vcs` sizes the per-port VC buffers (buffer_bytes_per_port is
  /// split evenly); it must cover the highest VC index the routing emits.
  NetworkSim(const Topology& topo, const SimConfig& cfg, int num_vcs);

  /// Attaches the routing algorithm; must be called before running.
  void set_routing(const RoutingAlgorithm& algo) { routing_ = &algo; }

  /// Attaches an optional per-packet trace sink (nullptr detaches); the
  /// sink must outlive the runs it observes. Tracing demotes sharded runs
  /// to serial (the sink sees one globally ordered stream).
  void set_trace(PacketTraceSink* sink) { trace_ = sink; }

  /// Attaches a private, mutable minimal table for fault-aware rerouting
  /// (nullptr detaches). The sim rebuilds it healthy at run start and
  /// incrementally invalidates it on every fault event; the attached
  /// routing algorithm should be constructed over this same table so
  /// post-fault injections avoid dead links. Must outlive the runs. Without
  /// it (or with FaultConfig::reroute off) routing stays static and packets
  /// aimed at dead links are dropped on arrival.
  void set_fault_table(MinimalTable* table) { fault_table_ = table; }

  /// Synthetic open-loop run: Poisson generation at `load` (fraction of
  /// line rate) per node, simulated for `duration`. Throughput counts all
  /// bytes ejected in [warmup, duration]; the latency/hop distributions
  /// count only packets *generated* at or after `warmup` (warmup-born
  /// queueing transients are excluded and reported in the run-phase
  /// breakdown instead).
  OpenLoopResult run_open_loop(const TrafficPattern& pattern, double load, TimePs duration,
                               TimePs warmup);

  /// Closed-loop exchange run; aborts (completed = false) at `time_limit`.
  /// Always executes serially (completion detection and post-completion
  /// statistics need a global event view); SimConfig::shards > 1 demotes
  /// with a stderr note.
  ExchangeResult run_exchange(const ExchangePlan& plan, TimePs time_limit);

  // PortLoadProvider (read by UGAL at injection time):
  std::int64_t output_queue_bytes(int router, int next_hop) const override;
  std::int64_t output_queue_capacity() const override;

  /// Observed traffic of one directed router-to-router channel during the
  /// last run's measurement window.
  struct ChannelStats {
    int router = -1;
    int neighbor = -1;
    std::int64_t bytes = 0;
    double utilization = 0.0;  ///< fraction of the channel's line rate
  };

  /// Per-channel forwarded bytes and utilization over the measurement
  /// window of the last run (ejection channels excluded). Ordered by
  /// (router, port).
  std::vector<ChannelStats> channel_stats() const;

  const Topology& topology() const { return topo_; }
  const SimConfig& config() const { return cfg_; }
  int num_vcs() const { return num_vcs_; }
  /// Events dispatched by the last completed run (summed across shards).
  std::int64_t events_processed() const { return events_processed_; }
  /// Event lanes the last run actually used (1 for serial or demoted runs).
  int shards_used() const { return active_lanes_; }

 private:
  // --- state types ---
  // Input VC buffers are organized as virtual output queues so a blocked
  // head for one output cannot stall traffic for another (the paper's
  // input-output-buffered switch is not head-of-line limited; a plain FIFO
  // input queue would cap uniform throughput near 75%). Each
  // (in_port, vc, out_port) FIFO is one VoqCell in the flat `voq_` array
  // (see sim/voq.h), threaded through the owning lane's packet pool slots.
  struct InPort {
    bool from_node = false;
    int peer_node = -1;
    int peer_router = -1;
    int peer_out_port = -1;
  };
  struct OutPort {
    TimePs free_at = 0;
    bool to_node = false;
    int peer_node = -1;
    int peer_router = -1;
    int peer_in_port = -1;
    std::vector<std::int64_t> credits;  ///< per VC; empty for ejection ports
    std::int64_t queued_bytes = 0;      ///< UGAL occupancy: waiting at this router
    std::int64_t bytes_sent_window = 0; ///< forwarded bytes inside the window
    /// Intrusive FIFO (through VoqCell::next_ready) of the input VOQs whose
    /// eligible head requests this port.
    ReadyList ready;
    // Fault state (only read when the schedule is non-empty):
    /// *Believed* liveness of this direction — what the owning router acts
    /// on when granting and salvaging. With oracle faults it always equals
    /// phys_up; with FaultConfig::propagation it lags by the detection and
    /// flood latency, which is exactly the modeled inconsistency window.
    bool up = true;
    /// *Physical* liveness of the wire: drives in-flight destruction and
    /// arrival checks regardless of what any router believes.
    bool phys_up = true;
    /// Liveness the shared fault table currently reflects (propagation
    /// runs only): advanced at each update's convergence, in lock-step
    /// with the incremental table refresh (see link_admitted).
    bool table_up = true;
    std::uint32_t epoch = 0;   ///< bumped per cut; mismatched packets died on the wire
    /// Per-VC bytes of credit currently in flight toward this port; lets a
    /// link-up resync recompute credits without double-counting returns
    /// that were already on the (intact) reverse wire.
    std::vector<std::int64_t> credits_pending;
  };
  struct RouterState {
    std::vector<InPort> in_ports;    ///< [0, deg): network; then injection
    std::vector<OutPort> out_ports;  ///< [0, deg): network; then ejection
    std::vector<std::pair<int, int>> port_of_neighbor;  ///< sorted (neighbor, out port)
    std::int32_t voq_base = 0;  ///< first VoqCell of this router in voq_
    std::int32_t num_out = 0;   ///< cached out_ports.size() for cell indexing
  };
  struct NicState {
    TimePs free_at = 0;
    std::vector<std::int64_t> credits;  ///< mirror of injection in-port buffer
    std::deque<TimePs> pending;         ///< open-loop generation timestamps
    std::vector<ExchangeMessage> messages;
    std::size_t cursor = 0;
    int router = -1;
    int in_port = -1;
    std::vector<std::int64_t> credits_pending;  ///< see OutPort::credits_pending
  };

  // --- sharding types ---
  /// One cross-shard arrival, exchanged through mailboxes at window
  /// barriers. Packet-carrying messages move the packet itself between the
  /// per-lane pools (Packet is one trivially copyable slab).
  struct CrossMsg {
    TimePs time = 0;
    std::uint64_t okey = 0;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    std::int32_t d = 0;
    EventType type{};
    bool has_pkt = false;
    Packet pkt;
  };
  /// Deferred remote credits_pending update (the += targets another lane's
  /// out port, so parallel rounds append here and the barrier applies it).
  struct PendingCredit {
    std::int32_t router = 0;
    std::int32_t port = 0;
    std::int32_t vc = 0;
    std::int32_t bytes = 0;
  };
  /// One dispatched event of a lane's window, logged for the barrier's
  /// k-way digest merge (w1/w2 are the packed digest words).
  struct DigestRec {
    TimePs time = 0;
    std::uint64_t okey = 0;
    std::uint64_t w1 = 0;
    std::uint64_t w2 = 0;
  };

  /// One worker event core: a private event queue, packet pool and
  /// statistics block over the routers the partition assigned to it. Serial
  /// runs use lane 0 for everything. Never shared between threads inside a
  /// window; all cross-lane traffic goes through outboxes/ledgers drained
  /// single-threaded at barriers.
  struct Lane {
    int id = 0;
    EventQueue queue;
    PacketPool pool;
    std::int64_t events_processed = 0;
    std::uint64_t progress = 0;
    // statistics (merged by collect_lanes() at run end)
    std::int64_t ejected_bytes_window = 0;
    std::int64_t packets_injected = 0;
    std::int64_t packets_minimal = 0;
    std::int64_t hop_sum = 0;    ///< integer hop total: order-independent mean
    std::int64_t hop_count = 0;
    LogHistogram latency_ns;
    RunPhaseBreakdown phases;
    // fault accounting
    std::int64_t dropped = 0;
    std::int64_t retried = 0;
    std::int64_t lost = 0;
    std::int64_t reroutes = 0;
    std::int64_t misroutes = 0;      ///< local-view detours (propagation)
    std::int64_t budget_drops = 0;   ///< misroute budget exhaustions
    std::vector<std::int64_t> delivered_buckets;
    // metrics scalars (merged into the registry by build_metrics)
    std::int64_t m_grants = 0;
    std::int64_t m_credit_skips = 0;
    std::int64_t m_injection_stalls = 0;
    LogHistogram carryover_ns;
    // cross-shard machinery
    std::int64_t messages_sent = 0;
    std::vector<std::vector<CrossMsg>> outbox;  ///< indexed by target lane
    std::vector<PendingCredit> ledger;
    std::vector<DigestRec> dlog;
  };

  // --- helpers ---
  void reset();
  /// Index of the (in_port, vc, out_idx) VOQ cell of `rs` in voq_.
  std::int32_t voq_index(const RouterState& rs, int in_port, int vc, int out_idx) const {
    return rs.voq_base +
           static_cast<std::int32_t>((in_port * num_vcs_ + vc) * rs.num_out + out_idx);
  }
  int out_port_toward(int router, int neighbor) const;
  int out_port_for_packet(int router, const Packet& pkt) const;

  int lane_index_of_router(int r) const { return sharded_run_ ? lane_of_router_[r] : 0; }
  int lane_index_of_node(int n) const { return sharded_run_ ? lane_of_node_[n] : 0; }
  Lane& lane_of_router(int r) { return lanes_[static_cast<std::size_t>(lane_index_of_router(r))]; }
  Lane& lane_of_node(int n) { return lanes_[static_cast<std::size_t>(lane_index_of_node(n))]; }
  /// Queue that carries the serialized control events (kFault, kWatchdog,
  /// kMetricsSample, and the kFaultDetect/kFloodArrive control plane):
  /// lane 0's queue for serial runs, the coordinator-side control queue for
  /// sharded ones.
  EventQueue& control_queue() { return sharded_run_ ? control_ : lanes_[0].queue; }

  void try_inject(Lane& ln, int node, TimePs now);
  void handle_arrive_router(Lane& ln, int pkt_id, int router, int in_port, int vc,
                            TimePs now);
  void handle_head_eligible(Lane& ln, int router, int in_port, int vc, int out_idx,
                            TimePs now);
  void try_grant(Lane& ln, int router, int out_idx, TimePs now);
  void handle_arrive_node(Lane& ln, int pkt_id, TimePs now);
  void handle_metrics_sample(TimePs now);
  void dispatch(Lane& ln, const Event& e);
  /// Serial event loop over lane 0 (the pre-sharding engine, unchanged).
  void run_until(TimePs end);

  // --- sharded driver (see docs/sharded_sim.md) ---
  /// Per-run mode selection: applies shard demotion (shard-unsafe routing,
  /// tracing, exchange workloads) with a one-time stderr note and validates
  /// the sharded-run preconditions.
  void setup_run(bool exchange);
  /// Conservative time-window loop: barriers exchange mailboxes, merge the
  /// per-lane digest logs, run serialized control timestamps, and launch
  /// parallel windows of width = lookahead (one link latency).
  void run_windows(TimePs end);
  /// Executes every lane event with time < limit (one window, one thread).
  void run_lane_window(Lane& ln, TimePs limit);
  /// Single-threaded execution of one control timestamp: interleaves the
  /// control queue and all lane queues in exact (time, okey) order until no
  /// event at `tc` remains (fault application can spawn same-time events).
  void serialized_step(TimePs tc);
  /// Drains every outbox into the target lanes' queues and applies the
  /// deferred credits_pending ledgers. Single-threaded, deterministic order.
  void deliver_cross();
  /// Folds the per-lane window logs into the global digest by k-way merge
  /// on (time, okey) — provably the serial realized order (docs).
  void merge_digest_logs();
  std::uint64_t total_progress() const;

  // Cross-shard-capable push helpers. Same-lane targets push directly;
  // cross-lane targets go to the mailbox (parallel rounds) or push into the
  // target lane immediately (serialized barrier phase).
  void send_arrive_router(Lane& ln, TimePs t, int pkt_id, int router, int in_port, int vc);
  void send_retry(Lane& ln, TimePs t, int pkt_id);
  void send_credit_to_router(Lane& ln, TimePs t, int router, int out_port, int vc,
                             int bytes);

  // --- fault machinery (see sim/fault.h; inert with an empty schedule) ---
  /// Per-run fault/watchdog setup: resets counters, seeds kFault/kWatchdog
  /// events, rebuilds the attached fault table healthy.
  void setup_faults();
  /// True when `out_idx` of `router` cannot currently send.
  bool out_port_dead(int router, int out_idx) const;
  /// The link-aliveness predicate fed to MinimalTable rebuilds.
  bool link_admitted(int a, int b) const;
  /// Applies schedule entry `idx` physically; with propagation it also
  /// registers the link-state update and schedules the detections (all
  /// believed-state changes then happen at detect/flood time).
  void apply_fault(int idx, TimePs now);
  /// Refreshes the fault table after the link (u, v) changed (u < 0 = full
  /// rebuild, used by router events) and tracks peak disconnection.
  void refresh_fault_table(int u, int v);
  /// Empties every VOQ feeding `out_idx`, salvaging or dropping the
  /// stranded packets. `credit_returns` off when the router itself died.
  void drain_out_port(int router, int out_idx, TimePs now, bool credit_returns,
                      bool allow_salvage);
  /// Recomputes credits for direction u -> v from the peer's actual buffer
  /// occupancy minus credit returns still in flight.
  void resync_link_credits(int u, int v);
  void resync_nic_credits(int node);
  /// Bytes buffered in the input VC (in_port, vc) of `rs`, summed over its
  /// per-output FIFOs (credit resync and the paranoid audit). `pool` is the
  /// owning lane's pool.
  std::int64_t input_vc_bytes(const PacketPool& pool, const RouterState& rs, int in_port,
                              int vc) const;
  /// Rewrites pkt's route tail with a fresh path from `router`; false when
  /// salvage is unavailable (no table / unreachable / hop limit, or — with
  /// propagation — every believed-live option is exhausted). `ln` carries
  /// the misroute accounting (lane-local, merged at run end).
  bool salvage_route(Lane& ln, Packet& pkt, int router);
  /// Returns the freed input-buffer credit upstream (skipped when the
  /// upstream side is dead; its credits resync on revival).
  void return_input_credit(Lane& ln, int router, int in_port, int vc, int bytes,
                           TimePs now);
  /// Drop accounting + retry-with-backoff or permanent loss.
  void drop_packet(Lane& ln, int pkt_id, TimePs now);
  void handle_retry(Lane& ln, int pkt_id, TimePs now);
  void handle_watchdog(TimePs now);
  bool outstanding_work() const;

  // --- modeled control plane (FaultConfig::propagation; see
  // docs/resilience.md). All of it runs on the control queue — serialized
  // steps when sharded, the ordinary serial loop otherwise — so learning is
  // single-threaded and bit-identical across shard counts.
  /// kFaultDetect: `router`'s missed-credit timeout for schedule entry
  /// `idx` fires; it learns locally and originates the flood.
  void handle_fault_detect(int router, int idx, TimePs now);
  /// kFloodArrive: the flooded update for entry `idx` reaches `router`
  /// (duplicates are digested no-ops).
  void handle_flood_arrive(int router, int idx, TimePs now);
  /// Shared learning path: absorb update `idx` into `router`'s local view,
  /// re-derive its believed port states, re-flood to physical neighbors,
  /// and advance the convergence tracker (shared-table refresh happens at
  /// convergence, not before).
  void learn_update(int router, int idx, bool detection, TimePs now);
  /// Re-derives `router`'s believed out-port `up` flags from its local
  /// view: newly-believed-dead ports drain (local-view salvage), newly-
  /// believed-live ones resync credits and resume granting.
  void apply_believed_ports(int router, TimePs now);
  /// Schedules the kFaultDetect events of schedule entry `idx` for every
  /// router that locally observes it (link endpoints / the neighborhood of
  /// a downed or revived router).
  void schedule_detections(int idx, TimePs now);
  /// True when `router`'s local view believes every remaining hop of
  /// `pkt`'s route (from `from_hop` on) is alive.
  bool route_believed_alive(const Packet& pkt, int router, int from_hop) const;
  /// Local-greedy detour: rewrites the route through a believed-live
  /// neighbor, spending one unit of the packet's misroute budget. False
  /// when the budget or every neighbor is exhausted.
  bool misroute_detour(Packet& pkt, int router);

  /// Arms (or disarms) the cooperative wall-clock deadline for one run.
  void arm_deadline();
  /// Paranoid invariant sweep (see SimConfig::paranoid): per-wire credit
  /// conservation and buffer-occupancy bounds, VOQ byte-count consistency.
  /// Throws InternalError with the violated invariant. No-op unless
  /// paranoid mode is on.
  void self_audit(const char* where) const;

  /// Merges the per-lane statistics into the run-level aggregates (exact:
  /// integer sums and element-wise histogram merges only).
  void collect_lanes();

  /// Finalizes the per-run SimMetrics block (nullptr when disabled).
  std::shared_ptr<const SimMetrics> build_metrics();

  /// Builds the packet's route at injection; returns false when the NIC
  /// must stall (insufficient injection credit).
  bool start_injection(Lane& ln, int node, int dst, int size, TimePs gen_time,
                       std::int64_t msg_id, TimePs now);

  // --- immutable wiring ---
  const Topology& topo_;
  SimConfig cfg_;
  int num_vcs_;
  std::int64_t vc_buffer_bytes_;
  const RoutingAlgorithm* routing_ = nullptr;
  PacketTraceSink* trace_ = nullptr;

  // --- sharding wiring (fixed at construction) ---
  int num_lanes_ = 1;  ///< clamp(cfg.shards, 1, num_routers)
  std::vector<int> lane_of_router_;
  std::vector<int> lane_of_node_;

  // --- mutable run state ---
  std::vector<RouterState> routers_;
  /// All VOQ cells of all routers, contiguous (see voq_index()). Each cell
  /// is touched only by the lane owning its router between barriers.
  std::vector<VoqCell> voq_;
  std::vector<NicState> nics_;
  std::vector<Lane> lanes_;
  EventQueue control_;  ///< coordinator-side control events (sharded runs)
  /// Per-entity RNG streams (seeded per run from SimConfig::seed): one per
  /// node (generation, destination draw, injection routing) and one per
  /// router (salvage rerouting). Entity-local streams make the draw
  /// sequences independent of global event interleaving, which is what lets
  /// shards consume randomness concurrently yet bit-identically.
  std::vector<Rng> node_rng_;
  std::vector<Rng> router_rng_;
  /// Per-node injection counter behind Packet::uid; reset per run.
  std::vector<std::uint64_t> node_uid_ctr_;

  int active_lanes_ = 1;      ///< lanes the current/last run uses (after demotion)
  bool sharded_run_ = false;  ///< active_lanes_ > 1
  /// True while the coordinator executes a serialized control timestamp:
  /// cross-lane sends push directly (single-threaded) instead of through
  /// the mailboxes.
  bool barrier_phase_ = false;
  std::int64_t windows_ = 0;          ///< parallel windows executed
  TimePs window_width_ps_ = 0;        ///< summed window widths
  std::int64_t coord_events_ = 0;  ///< control events executed by the coordinator

  TimePs now_ = 0;
  std::int64_t events_processed_ = 0;  ///< merged at run end (collect_lanes)
  /// FNV-1a over the dispatched event stream; see
  /// SimConfig::collect_event_digest.
  bool digest_enabled_ = false;
  std::uint64_t event_digest_ = 0;

  // open-loop bookkeeping
  const TrafficPattern* pattern_ = nullptr;
  double load_ = 0.0;
  TimePs gen_end_ = 0;
  TimePs window_start_ = 0;
  TimePs window_end_ = 0;

  // exchange bookkeeping
  bool exchange_mode_ = false;
  MessageOrder plan_order_ = MessageOrder::kSequential;
  std::int64_t exchange_remaining_ = 0;
  TimePs exchange_completion_ = -1;

  // fault / watchdog state (all counters; the hot path only ever tests
  // faults_enabled_ when the schedule is empty)
  bool faults_enabled_ = false;
  /// FaultConfig::propagation_enabled() snapshot for the run: gates every
  /// control-plane branch, so oracle runs stay bit-identical to pre-
  /// propagation builds (enforced by tests/test_determinism_digest.cpp).
  bool prop_enabled_ = false;
  MinimalTable* fault_table_ = nullptr;  ///< non-owning, see set_fault_table
  std::vector<std::uint8_t> router_dead_;
  /// Router liveness the shared fault table reflects (propagation runs
  /// only); the router-level counterpart of OutPort::table_up.
  std::vector<std::uint8_t> table_router_dead_;
  /// Per-router believed fault knowledge (propagation runs only; cleared —
  /// and never consulted — otherwise).
  LocalFaultView view_;
  FaultStats fstats_;
  int hop_limit_ = 0;  ///< effective per-run value (config 0 = auto)
  bool wedged_ = false;
  /// Coordinator-side slice of the monotone activity counter (fault
  /// applications); lane-side activity lives on Lane::progress and
  /// total_progress() sums both. The watchdog fires when the total stops
  /// moving while work is outstanding.
  std::uint64_t progress_ = 0;
  std::uint64_t watch_last_ = 0;

  // wall-clock deadline (cooperative cancellation; see
  // SimConfig::wall_limit_seconds). Serial runs read the clock once per
  // kDeadlineStride dispatched events, sharded runs once per window
  // barrier; either way the event sequence — and thus every result — is
  // bit-identical whether the deadline is off, armed but unhit, or absent
  // entirely.
  static constexpr int kDeadlineStride = 2048;
  bool deadline_enabled_ = false;
  bool timed_out_ = false;
  int deadline_countdown_ = 0;
  std::chrono::steady_clock::time_point deadline_{};

  bool paranoid_ = false;  ///< SimConfig::paranoid or D2NET_PARANOID env

  // statistics (run-level aggregates, filled by collect_lanes at run end)
  std::int64_t ejected_bytes_window_ = 0;
  std::vector<std::int64_t> ejected_per_node_;
  std::int64_t packets_injected_ = 0;
  std::int64_t packets_minimal_ = 0;
  std::int64_t hop_sum_ = 0;
  std::int64_t hop_count_ = 0;
  LogHistogram latency_ns_;
  RunPhaseBreakdown phases_;  ///< always collected (integer increments only)

  // detailed instrumentation (allocated/active only when
  // cfg_.metrics.enabled; see sim/metrics.h for the exported shape)
  struct PortInstr {
    PortMetrics m;
    TimePs stall_since = -1;  ///< open credit-stall interval start, -1 = none
  };
  bool metrics_enabled_ = false;
  std::vector<std::vector<PortInstr>> port_instr_;  ///< [router][out port]
  std::vector<OccupancySample> occupancy_series_;
  std::unique_ptr<MetricsRegistry> registry_;  ///< rebuilt per run
  // Handles resolved once per run so hot paths never do name lookups.
  MetricsRegistry::Counter* ctr_grants_ = nullptr;
  MetricsRegistry::Counter* ctr_credit_skips_ = nullptr;
  MetricsRegistry::Counter* ctr_injection_stalls_ = nullptr;
  MetricsRegistry::Counter* ctr_samples_ = nullptr;
  LogHistogram* hist_carryover_ns_ = nullptr;
};

}  // namespace d2net
