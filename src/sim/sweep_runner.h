// Parallel load-sweep execution.
//
// A sweep is a set of series — one (topology, routing, traffic) combination
// each — evaluated over a grid of offered loads. Every (series, load) point
// is a fully independent simulation, so the runner fans the points out over
// a thread pool: one freshly constructed SimStack per in-flight point,
// sharing only the immutable Topology and (precomputed, per-system)
// MinimalTable.
//
// Determinism: each point derives its own seed from the base seed and its
// global point index via SplitMix64, and results land in a pre-sized table
// indexed by point position — so runs with jobs=1 and jobs=N produce
// byte-identical results, and so does re-running any single point alone.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "routing/factory.h"
#include "sim/experiment.h"

namespace d2net {

/// Per-point seed: one SplitMix64 step over base_seed + (index + 1) * phi.
/// Distinct indices give decorrelated streams even for adjacent base seeds,
/// and a point's seed never depends on how many points ran before it.
std::uint64_t derive_point_seed(std::uint64_t base_seed, std::uint64_t point_index);

/// One series of a sweep. Pointers/references must outlive the run; all
/// referenced objects must be immutable during it (Topology, MinimalTable,
/// TrafficPattern and the routing configuration all are).
struct SweepSeriesSpec {
  std::string label;
  const Topology* topo = nullptr;
  /// Precomputed minimal table; leave null to have the runner build it
  /// (once per distinct topology, shared between series and points).
  std::shared_ptr<const MinimalTable> table;
  RoutingStrategy strategy = RoutingStrategy::kMinimal;
  std::optional<UgalParams> params;
  const TrafficPattern* pattern = nullptr;
  std::vector<double> loads;
};

struct SweepRunOptions {
  /// Worker threads; 1 runs inline on the caller (no pool), 0 = hardware
  /// concurrency.
  int jobs = 1;
  /// cfg.seed acts as the sweep's base seed; each point overrides it with
  /// derive_point_seed(cfg.seed, point_index).
  SimConfig config;
  TimePs duration = 0;
  TimePs warmup = 0;
};

/// Aggregate execution metrics of the last run (for the benches' JSON
/// perf trajectory).
struct SweepRunStats {
  double wall_seconds = 0.0;
  std::int64_t events = 0;  ///< simulator events dispatched, all points
  std::int64_t points = 0;
  int jobs = 1;
  double events_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepRunOptions opts);

  /// Runs all points of all series; out[s][l] corresponds to
  /// specs[s].loads[l] regardless of execution interleaving.
  std::vector<std::vector<SweepPoint>> run(const std::vector<SweepSeriesSpec>& specs);

  /// Metrics of the most recent run().
  const SweepRunStats& stats() const { return stats_; }

  int jobs() const { return jobs_; }

 private:
  SweepRunOptions opts_;
  int jobs_ = 1;
  SweepRunStats stats_;
};

/// Convenience: runs one series (the run_load_sweep shape) through the
/// runner. Unlike run_load_sweep — which reuses one SimStack and one seed
/// for every point — each point gets a fresh stack and a derived seed.
std::vector<SweepPoint> run_load_sweep_parallel(const SweepSeriesSpec& spec,
                                                const SweepRunOptions& opts);

}  // namespace d2net
