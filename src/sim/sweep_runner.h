// Parallel load-sweep execution.
//
// A sweep is a set of series — one (topology, routing, traffic) combination
// each — evaluated over a grid of offered loads. Every (series, load) point
// is a fully independent simulation, so the runner fans the points out over
// a thread pool: one freshly constructed SimStack per in-flight point,
// sharing only the immutable Topology and (precomputed, per-system)
// MinimalTable.
//
// Determinism: each point derives its own seed from the base seed and its
// global point index via SplitMix64, and results land in a pre-sized table
// indexed by point position — so runs with jobs=1 and jobs=N produce
// byte-identical results, and so does re-running any single point alone.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/journal.h"
#include "routing/factory.h"
#include "sim/experiment.h"

namespace d2net {

/// Per-point seed: one SplitMix64 step over base_seed + (index + 1) * phi.
/// Distinct indices give decorrelated streams even for adjacent base seeds,
/// and a point's seed never depends on how many points ran before it.
std::uint64_t derive_point_seed(std::uint64_t base_seed, std::uint64_t point_index);

/// One series of a sweep. Pointers/references must outlive the run; all
/// referenced objects must be immutable during it (Topology, MinimalTable,
/// TrafficPattern and the routing configuration all are).
struct SweepSeriesSpec {
  std::string label;
  const Topology* topo = nullptr;
  /// Precomputed minimal table; leave null to have the runner build it
  /// (once per distinct topology, shared between series and points).
  std::shared_ptr<const MinimalTable> table;
  RoutingStrategy strategy = RoutingStrategy::kMinimal;
  std::optional<UgalParams> params;
  const TrafficPattern* pattern = nullptr;
  std::vector<double> loads;
  /// Per-series simulated duration override; 0 uses SweepRunOptions::
  /// duration. Lets one sweep mix short series with much longer ones (the
  /// deadline tests rely on this to build an unfinishable point next to
  /// quick ones).
  TimePs duration = 0;
  /// Per-series fault injection: a non-empty schedule replaces
  /// SweepRunOptions::config.fault for this series' points, so one sweep
  /// can contrast recovery policies over the same burst (the campaign
  /// runner's fault matrix; see docs/campaigns.md). Empty = inherit.
  FaultConfig fault;
  /// Fixed seed for every point of this series, replacing the per-point
  /// derive_point_seed(base, index) stream. Used by campaign sweeps ported
  /// from serial benches that ran all points on the invocation seed —
  /// reproduction must be bit-identical, so the seed policy is data.
  std::optional<std::uint64_t> seed_override;
};

struct SweepRunOptions {
  /// Worker threads; 1 runs inline on the caller (no pool). 0 auto-sizes
  /// to hardware concurrency divided by config.shards (floor 1), so
  /// per-point sharding and sweep parallelism compose without
  /// oversubscription.
  int jobs = 1;
  /// cfg.seed acts as the sweep's base seed; each point overrides it with
  /// derive_point_seed(cfg.seed, point_index).
  SimConfig config;
  TimePs duration = 0;
  TimePs warmup = 0;

  // --- durable execution (see docs/durable_sweeps.md) ---
  /// Optional crash-safe journal (non-owning; must outlive the run). Every
  /// finished point is appended and flushed; points already completed in
  /// the journal are restored instead of re-simulated. Null = volatile run.
  SweepJournal* journal = nullptr;
  /// Journal key prefix for this sweep ("<scope>#<point index>"); must be
  /// unique per journaled sweep within one journal.
  std::string scope;
  /// Wall-clock budget per point attempt in seconds (0 = unlimited);
  /// forwarded to SimConfig::wall_limit_seconds.
  double point_timeout_seconds = 0.0;
  /// Max attempts per point: attempt 0 uses derive_point_seed(seed, i),
  /// attempt k > 0 re-derives from that (fresh decorrelated stream), so a
  /// point that timed out by bad luck gets a genuinely different run.
  int point_attempts = 1;
  /// With a journal: record a point whose every attempt threw as
  /// failed (error text journaled, point re-run on resume) instead of
  /// propagating the exception and abandoning the remaining points.
  bool tolerate_failures = false;
  /// Renders a finished point's result JSON for the journal (the fragment
  /// restored points splice back verbatim). Null journals summaries only.
  std::function<std::string(const SweepPoint&)> serialize;

  // --- multi-worker campaigns (see docs/campaigns.md) ---
  /// Optional selection mask over the flattened point list (series-major,
  /// load-minor — the same order global point indices follow). When set it
  /// must cover every point; points with a zero mask entry are skipped
  /// entirely (not restored, not executed, not journaled) and stats count
  /// only selected points. Global indices — and thus keys and derived
  /// seeds — are unaffected by the mask, so a worker executing shard k of
  /// a sweep journals exactly the lines a solo run would. Null = run all.
  const std::vector<char>* selected = nullptr;
  /// Register `scope` with the journal (duplicate-scope guard). A worker
  /// executing several shards of one sweep runs it multiple times over the
  /// same scope; only the first run per scope may register. True for every
  /// solo caller.
  bool register_scope = true;
};

/// Aggregate execution metrics of the last run (for the benches' JSON
/// perf trajectory).
struct SweepRunStats {
  double wall_seconds = 0.0;
  /// Simulator events dispatched, all points. Restored points contribute
  /// their journaled counts, so a resumed sweep reports the same total as
  /// an uninterrupted one.
  std::int64_t events = 0;
  std::int64_t points = 0;
  std::int64_t restored_points = 0;   ///< replayed from the journal
  std::int64_t timed_out_points = 0;  ///< wall-clock budget exhausted
  std::int64_t failed_points = 0;     ///< every attempt threw (journaled runs)
  int jobs = 1;
  double events_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  }
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepRunOptions opts);

  /// Runs all points of all series; out[s][l] corresponds to
  /// specs[s].loads[l] regardless of execution interleaving.
  std::vector<std::vector<SweepPoint>> run(const std::vector<SweepSeriesSpec>& specs);

  /// Metrics of the most recent run().
  const SweepRunStats& stats() const { return stats_; }

  int jobs() const { return jobs_; }

 private:
  SweepRunOptions opts_;
  int jobs_ = 1;
  SweepRunStats stats_;
};

/// Convenience: runs one series (the run_load_sweep shape) through the
/// runner. Unlike run_load_sweep — which reuses one SimStack and one seed
/// for every point — each point gets a fresh stack and a derived seed.
std::vector<SweepPoint> run_load_sweep_parallel(const SweepSeriesSpec& spec,
                                                const SweepRunOptions& opts);

}  // namespace d2net
