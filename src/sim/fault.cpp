#include "sim/fault.h"

#include <cstdio>

#include "common/error.h"
#include "common/rng.h"
#include "topology/topology.h"

namespace d2net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kRouterDown: return "router-down";
    case FaultKind::kRouterUp: return "router-up";
  }
  return "?";
}

const char* to_string(FaultRecovery r) {
  switch (r) {
    case FaultRecovery::kNone: return "none";
    case FaultRecovery::kRetry: return "retry";
    case FaultRecovery::kSalvage: return "salvage";
  }
  return "?";
}

std::vector<FaultEvent> make_link_burst(const Topology& topo, TimePs at, int count,
                                        std::uint64_t seed, TimePs restore_after) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  D2NET_REQUIRE(count >= 0 && count <= topo.num_links(),
                "burst larger than the link count");
  std::vector<std::size_t> order(topo.links().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.shuffle(order);

  std::vector<FaultEvent> out;
  out.reserve(static_cast<std::size_t>(count) * (restore_after > 0 ? 2 : 1));
  for (int i = 0; i < count; ++i) {
    const Link& l = topo.links()[order[static_cast<std::size_t>(i)]];
    out.push_back({at, FaultKind::kLinkDown, l.r1, l.r2});
  }
  if (restore_after > 0) {
    for (int i = 0; i < count; ++i) {
      const Link& l = topo.links()[order[static_cast<std::size_t>(i)]];
      out.push_back({at + restore_after, FaultKind::kLinkUp, l.r1, l.r2});
    }
  }
  return out;
}

void validate_fault_schedule(const Topology& topo, const std::vector<FaultEvent>& schedule,
                             TimePs run_end, TimePs warmup_end) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  const int nr = topo.num_routers();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const FaultEvent& e = schedule[i];
    const auto reject = [&](const std::string& why) {
      throw ArgumentError("fault schedule entry #" + std::to_string(i) + " (" +
                          to_string(e) + "): " + why);
    };
    if (e.time < 0) reject("negative time");
    if (e.time > run_end) {
      char when[128];
      std::snprintf(when, sizeof when, "fires after the run ends at %.1fus and would silently never apply",
                    to_us(run_end));
      reject(when);
    }
    const bool link_event =
        e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp;
    if (e.a < 0 || e.a >= nr) reject("router id out of range");
    if (link_event) {
      if (e.b < 0 || e.b >= nr) reject("router id out of range");
      if (e.a == e.b) reject("link endpoints are the same router");
      bool adjacent = false;
      for (const int n : topo.neighbors(e.a)) {
        if (n == e.b) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) reject("no such link in the topology");
    }
  }
  if (!schedule.empty() && warmup_end > 0) {
    bool any_measured = false;
    for (const FaultEvent& e : schedule) any_measured |= e.time >= warmup_end;
    if (!any_measured)
      std::fprintf(stderr,
                   "d2net: warning: the whole fault schedule fires before the "
                   "warmup ends at %.1fus; the measured window sees no fault\n",
                   to_us(warmup_end));
  }
}

std::string to_string(const FaultEvent& e) {
  char buf[96];
  if (e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp) {
    std::snprintf(buf, sizeof buf, "link %d-%d %s @%.1fus", e.a, e.b,
                  e.kind == FaultKind::kLinkDown ? "down" : "up", to_us(e.time));
  } else {
    std::snprintf(buf, sizeof buf, "router %d %s @%.1fus", e.a,
                  e.kind == FaultKind::kRouterDown ? "down" : "up", to_us(e.time));
  }
  return buf;
}

}  // namespace d2net
