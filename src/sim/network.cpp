#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "routing/minimal_table.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace d2net {

std::int64_t ExchangePlan::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& msgs : per_node) {
    for (const auto& m : msgs) total += m.bytes;
  }
  return total;
}

int ExchangePlan::active_nodes() const {
  int n = 0;
  for (const auto& msgs : per_node) n += msgs.empty() ? 0 : 1;
  return n;
}

namespace {
// D2NET_PARANOID: any non-empty value other than "0" enables the self-audit
// without touching configs — handy for soaking an entire bench suite.
bool paranoid_env() {
  static const bool on = [] {
    const char* v = std::getenv("D2NET_PARANOID");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
  }();
  return on;
}

// FNV-1a over the dispatched-event stream (see run_until); the offset doubles
// as the empty-stream digest so "no events" still hashes to a fixed value.
constexpr std::uint64_t kDigestOffset = 1469598103934665603ULL;
constexpr std::uint64_t kDigestPrime = 1099511628211ULL;

inline std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFFu)) * kDigestPrime;
  }
  return h;
}
}  // namespace

NetworkSim::NetworkSim(const Topology& topo, const SimConfig& cfg, int num_vcs)
    : topo_(topo), cfg_(cfg), num_vcs_(num_vcs) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  D2NET_REQUIRE(num_vcs >= 1 && num_vcs <= 8, "unreasonable VC count");
  vc_buffer_bytes_ = cfg_.buffer_bytes_per_port / num_vcs_;
  D2NET_REQUIRE(vc_buffer_bytes_ >= cfg_.packet_bytes,
                "per-VC buffer smaller than one packet");
  // The VCT fast path assumes the whole packet is buffered by the time the
  // router may forward it (eligibility = head + router latency).
  D2NET_REQUIRE(!cfg_.cut_through || cfg_.router_latency >= cfg_.packet_serialization(),
                "cut-through mode requires router latency >= packet serialization");

  routers_.resize(topo.num_routers());
  nics_.resize(topo.num_nodes());
  for (int r = 0; r < topo.num_routers(); ++r) {
    RouterState& rs = routers_[r];
    const auto& nbrs = topo.neighbors(r);
    const int deg = static_cast<int>(nbrs.size());
    const int p = topo.endpoints_of(r);
    rs.in_ports.resize(deg + p);
    rs.out_ports.resize(deg + p);
    for (int i = 0; i < deg; ++i) {
      rs.port_of_neighbor.emplace_back(nbrs[i], i);
    }
    std::sort(rs.port_of_neighbor.begin(), rs.port_of_neighbor.end());
    for (std::size_t i = 1; i < rs.port_of_neighbor.size(); ++i) {
      D2NET_REQUIRE(rs.port_of_neighbor[i].first != rs.port_of_neighbor[i - 1].first,
                    "parallel links are not supported by the simulator");
    }
    for (int j = 0; j < p; ++j) {
      const int node = topo.node_base(r) + j;
      nics_[node].router = r;
      nics_[node].in_port = deg + j;
    }
  }
  // Wire peer indices: out port i of router r toward neighbor n lands in
  // n's in port that faces r.
  for (int r = 0; r < topo.num_routers(); ++r) {
    const auto& nbrs = topo.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      const int n = nbrs[i];
      OutPort& op = routers_[r].out_ports[i];
      op.to_node = false;
      op.peer_router = n;
      op.peer_in_port = out_port_toward(n, r);  // symmetric port numbering
      InPort& ip = routers_[r].in_ports[i];
      ip.from_node = false;
      ip.peer_router = n;
      ip.peer_out_port = out_port_toward(n, r);
    }
    const int deg = static_cast<int>(nbrs.size());
    for (int j = 0; j < topo.endpoints_of(r); ++j) {
      OutPort& op = routers_[r].out_ports[deg + j];
      op.to_node = true;
      op.peer_node = topo.node_base(r) + j;
      InPort& ip = routers_[r].in_ports[deg + j];
      ip.from_node = true;
      ip.peer_node = topo.node_base(r) + j;
    }
  }
  // Allocate the VC/VOQ structure once; reset() only clears it in place, so
  // back-to-back runs on one instance do no structural allocation. Every
  // (in_port, vc, out_port) FIFO is one 16-byte cell in the flat voq_
  // array; each cell records its (in_port, vc) identity so a ready-list
  // entry alone locates the credit-return path.
  std::size_t total_cells = 0;
  std::size_t total_ports = 0;
  for (RouterState& rs : routers_) {
    rs.num_out = static_cast<std::int32_t>(rs.out_ports.size());
    rs.voq_base = static_cast<std::int32_t>(total_cells);
    total_cells += rs.in_ports.size() * static_cast<std::size_t>(num_vcs_) *
                   static_cast<std::size_t>(rs.num_out);
    total_ports += rs.out_ports.size();
    D2NET_REQUIRE(total_cells <= static_cast<std::size_t>(INT32_MAX),
                  "VOQ cell count overflows 32-bit indexing");
    for (OutPort& op : rs.out_ports) {
      op.credits.resize(op.to_node ? 0 : num_vcs_);
      op.credits_pending.resize(op.to_node ? 0 : num_vcs_);
    }
  }
  voq_.resize(total_cells);
  for (const RouterState& rs : routers_) {
    for (int ipx = 0; ipx < static_cast<int>(rs.in_ports.size()); ++ipx) {
      for (int vc = 0; vc < num_vcs_; ++vc) {
        for (int o = 0; o < rs.num_out; ++o) {
          VoqCell& cell = voq_[voq_index(rs, ipx, vc, o)];
          cell.in_port = static_cast<std::int16_t>(ipx);
          cell.vc = static_cast<std::uint8_t>(vc);
        }
      }
    }
  }
  for (NicState& nic : nics_) {
    nic.credits.resize(num_vcs_);
    nic.credits_pending.resize(num_vcs_);
  }
  router_dead_.assign(routers_.size(), 0);
  // Pre-size the engine stores from the topology shape so a run's ramp-up
  // does not grow them one element at a time: at saturation every node has
  // a handful of generator/NIC events in flight and every network port a
  // few pending channel/credit events; packets in flight scale with ports
  // times a small per-VC queue depth. Reported via EngineCapacities.
  queue_.set_scheduler(cfg_.scheduler);
  queue_.reserve(static_cast<std::size_t>(topo.num_nodes()) * 8 +
                 total_ports * static_cast<std::size_t>(num_vcs_) * 2);
  pool_.reserve(static_cast<std::size_t>(topo.num_nodes()) * 4 +
                total_ports * static_cast<std::size_t>(num_vcs_) * 4);
  paranoid_ = cfg_.paranoid || paranoid_env();
  digest_enabled_ = cfg_.collect_event_digest;

  metrics_enabled_ = cfg_.metrics.enabled;
  if (metrics_enabled_) {
    D2NET_REQUIRE(cfg_.metrics.sample_period > 0,
                  "metrics sample period must be positive");
    port_instr_.resize(routers_.size());
    for (std::size_t r = 0; r < routers_.size(); ++r) {
      port_instr_[r].resize(routers_[r].out_ports.size());
    }
  }
  reset();
}

void NetworkSim::reset() {
  for (VoqCell& cell : voq_) {
    cell.head = cell.tail = cell.next_ready = -1;
    cell.in_ready = 0;
  }
  for (RouterState& rs : routers_) {
    for (OutPort& op : rs.out_ports) {
      op.free_at = 0;
      op.queued_bytes = 0;
      op.bytes_sent_window = 0;
      op.ready.clear();
      std::fill(op.credits.begin(), op.credits.end(), vc_buffer_bytes_);
      op.up = true;
      op.epoch = 0;
      std::fill(op.credits_pending.begin(), op.credits_pending.end(), std::int64_t{0});
    }
  }
  for (NicState& nic : nics_) {
    nic.free_at = 0;
    std::fill(nic.credits.begin(), nic.credits.end(), vc_buffer_bytes_);
    nic.pending.clear();
    nic.messages.clear();
    nic.cursor = 0;
    std::fill(nic.credits_pending.begin(), nic.credits_pending.end(), std::int64_t{0});
  }
  std::fill(router_dead_.begin(), router_dead_.end(), std::uint8_t{0});
  fstats_ = FaultStats{};
  wedged_ = false;
  timed_out_ = false;
  progress_ = 0;
  watch_last_ = 0;
  pool_.recycle_all();
  queue_.clear();
  now_ = 0;
  events_processed_ = 0;
  event_digest_ = kDigestOffset;
  ejected_bytes_window_ = 0;
  ejected_per_node_.assign(topo_.num_nodes(), 0);
  packets_injected_ = 0;
  packets_minimal_ = 0;
  latency_ns_ = LogHistogram{};
  hops_ = RunningStats{};
  phases_ = RunPhaseBreakdown{};
  exchange_mode_ = false;
  exchange_remaining_ = 0;
  exchange_completion_ = -1;

  if (metrics_enabled_) {
    for (int r = 0; r < topo_.num_routers(); ++r) {
      const RouterState& rs = routers_[r];
      for (std::size_t o = 0; o < rs.out_ports.size(); ++o) {
        PortInstr& pi = port_instr_[r][o];
        pi.stall_since = -1;
        pi.m = PortMetrics{};
        pi.m.router = r;
        pi.m.port = static_cast<int>(o);
        pi.m.peer_router = rs.out_ports[o].to_node ? -1 : rs.out_ports[o].peer_router;
        pi.m.peer_node = rs.out_ports[o].to_node ? rs.out_ports[o].peer_node : -1;
        pi.m.vcs.resize(num_vcs_);
      }
    }
    occupancy_series_.clear();
    registry_ = std::make_unique<MetricsRegistry>();
    ctr_grants_ = &registry_->counter("grants");
    ctr_credit_skips_ = &registry_->counter("credit_blocked_skips");
    ctr_injection_stalls_ = &registry_->counter("injection_credit_stalls");
    ctr_samples_ = &registry_->counter("occupancy_samples");
    hist_carryover_ns_ = &registry_->histogram("carryover_latency_ns");
  }
}

int NetworkSim::out_port_toward(int router, int neighbor) const {
  const auto& map = routers_[router].port_of_neighbor;
  auto it = std::lower_bound(map.begin(), map.end(), std::make_pair(neighbor, -1));
  D2NET_ASSERT(it != map.end() && it->first == neighbor, "no port toward neighbor");
  return it->second;
}

int NetworkSim::out_port_for_packet(int router, const Packet& pkt) const {
  if (pkt.at_destination_router()) {
    const int deg = topo_.network_degree(router);
    const int j = pkt.dst_node - topo_.node_base(router);
    D2NET_ASSERT(j >= 0 && j < topo_.endpoints_of(router), "destination not on this router");
    return deg + j;
  }
  return out_port_toward(router, pkt.route.routers[pkt.hop + 1]);
}

std::int64_t NetworkSim::output_queue_bytes(int router, int next_hop) const {
  return routers_[router].out_ports[out_port_toward(router, next_hop)].queued_bytes;
}

std::int64_t NetworkSim::output_queue_capacity() const { return cfg_.buffer_bytes_per_port; }

std::vector<NetworkSim::ChannelStats> NetworkSim::channel_stats() const {
  std::vector<ChannelStats> out;
  const double window_bytes =
      static_cast<double>(window_end_ - window_start_) / static_cast<double>(cfg_.ps_per_byte);
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const auto& nbrs = topo_.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      const OutPort& op = routers_[r].out_ports[i];
      ChannelStats cs;
      cs.router = r;
      cs.neighbor = nbrs[i];
      cs.bytes = op.bytes_sent_window;
      cs.utilization =
          window_bytes > 0 ? static_cast<double>(op.bytes_sent_window) / window_bytes : 0.0;
      out.push_back(cs);
    }
  }
  return out;
}

bool NetworkSim::start_injection(int node, int dst, int size, TimePs gen_time,
                                 std::int64_t msg_id, TimePs now) {
  NicState& nic = nics_[node];
  const int src_router = nic.router;
  const int dst_router = topo_.router_of_node(dst);

  // Route directly into the pooled packet's Route so its vector capacity is
  // reused across packets (no per-packet allocation in steady state).
  const int pkt_id = pool_.alloc();
  Packet& pkt = pool_[pkt_id];
  Route& route = pkt.route;
  if (dst_router == src_router) {
    route.routers.assign(1, src_router);
    route.vcs.clear();
    route.intermediate_pos = -1;
  } else {
    routing_->route_into(src_router, dst_router, rng_, route);
    if (faults_enabled_ && route.routers.empty()) {
      // Destination currently unreachable: the NIC head-of-line blocks and
      // keeps retrying (next tick / credit return) until the network heals
      // or the watchdog declares the run wedged.
      pool_.release(pkt_id);
      return false;
    }
  }
  int vc0 = route.vcs.empty() ? 0 : route.vcs.front();
  // Fault-degraded paths can be longer than the healthy provisioning
  // assumed; collapse overflow onto the top VC (watchdog guards the
  // resulting deadlock risk).
  if (faults_enabled_ && vc0 >= num_vcs_) vc0 = num_vcs_ - 1;
  if (nic.credits[vc0] < size) {
    pool_.release(pkt_id);
    if (metrics_enabled_) ctr_injection_stalls_->add();
    return false;  // stall; retried on credit return
  }

  pkt.src_node = node;
  pkt.dst_node = dst;
  pkt.size = size;
  pkt.gen_time = gen_time;
  pkt.inject_time = now;
  pkt.hop = 0;
  pkt.msg_id = msg_id;
  pkt.retries = 0;
  pkt.link_epoch = 0;

  nic.credits[vc0] -= size;
  const TimePs ser = static_cast<TimePs>(size) * cfg_.ps_per_byte;
  nic.free_at = now + ser;
  queue_.push(nic.free_at, EventType::kNicFree, node);
  // Cut-through: the router sees the packet when its head lands; the
  // eligibility delay (router latency > serialization at these parameters)
  // guarantees the tail is in the buffer before any forwarding decision.
  const TimePs arrival_ser = cfg_.cut_through ? 0 : ser;
  queue_.push(now + arrival_ser + cfg_.link_latency, EventType::kArriveRouter, pkt_id,
              src_router, nic.in_port, vc0);
  ++progress_;
  ++packets_injected_;
  if (pkt.route.minimal()) ++packets_minimal_;
  ++(gen_time < window_start_ ? phases_.injected_warmup : phases_.injected_measured);
  return true;
}

void NetworkSim::try_inject(int node, TimePs now) {
  NicState& nic = nics_[node];
  if (nic.free_at > now) return;  // kNicFree will retry

  if (!nic.pending.empty()) {
    // Open loop: destination drawn per packet at injection time.
    const TimePs gen_time = nic.pending.front();
    const int dst = pattern_->dest(node, rng_);
    if (start_injection(node, dst, cfg_.packet_bytes, gen_time, -1, now)) {
      nic.pending.pop_front();
    }
    return;
  }

  if (exchange_mode_ && !nic.messages.empty()) {
    if (nic.cursor >= nic.messages.size()) nic.cursor = 0;
    ExchangeMessage& m = nic.messages[nic.cursor];
    const int chunk =
        static_cast<int>(std::min<std::int64_t>(m.bytes, cfg_.packet_bytes));
    if (!start_injection(node, m.dst_node, chunk, now, static_cast<std::int64_t>(nic.cursor),
                         now)) {
      return;
    }
    m.bytes -= chunk;
    if (m.bytes == 0) {
      nic.messages.erase(nic.messages.begin() + static_cast<std::ptrdiff_t>(nic.cursor));
      if (nic.cursor >= nic.messages.size()) nic.cursor = 0;
    } else if (plan_order_ == MessageOrder::kRoundRobin) {
      // Round-robin interleaves open messages; sequential drains in order.
      nic.cursor = (nic.cursor + 1) % nic.messages.size();
    }
  }
}

void NetworkSim::handle_arrive_router(int pkt_id, int router, int in_port, int vc,
                                      TimePs now) {
  RouterState& rs = routers_[router];
  if (faults_enabled_) {
    const InPort& ipc = rs.in_ports[in_port];
    bool destroyed = router_dead_[router] != 0;
    if (!destroyed && !ipc.from_node) {
      const OutPort& sender = routers_[ipc.peer_router].out_ports[ipc.peer_out_port];
      destroyed = !sender.up || router_dead_[ipc.peer_router] != 0 ||
                  pool_[pkt_id].link_epoch != sender.epoch;
    }
    if (destroyed) {
      // The wire was cut (or a router died) while the packet was in
      // flight: it never lands in the input buffer and no credit moves;
      // the sender's lost credits are recreated by the link-up resync.
      drop_packet(pkt_id, now);
      return;
    }
  }
  int out_idx = out_port_for_packet(router, pool_[pkt_id]);
  if (faults_enabled_ && out_port_dead(router, out_idx)) {
    // Arrived intact but the planned next link is gone: salvage onto the
    // rebuilt table, or free the buffer (credit upstream) and drop/retry.
    Packet& pkt = pool_[pkt_id];
    if (salvage_route(pkt, router)) {
      ++fstats_.reroutes;
      out_idx = out_port_for_packet(router, pkt);
    } else {
      return_input_credit(router, in_port, vc, pkt.size, now);
      drop_packet(pkt_id, now);
      return;
    }
  }
  const int size = pool_[pkt_id].size;
  rs.out_ports[out_idx].queued_bytes += size;
  VoqCell& cell = voq_[voq_index(rs, in_port, vc, out_idx)];
  if (voq_push(pool_, cell, pkt_id, now + cfg_.router_latency)) {
    queue_.push(now + cfg_.router_latency, EventType::kHeadEligible, router, in_port, vc,
                out_idx);
  }
}

void NetworkSim::handle_head_eligible(int router, int in_port, int vc, int out_idx,
                                      TimePs now) {
  RouterState& rs = routers_[router];
  const std::int32_t ci = voq_index(rs, in_port, vc, out_idx);
  VoqCell& cell = voq_[ci];
  if (cell.head < 0 || cell.in_ready) {
    return;  // stale event (head already granted and successor rescheduled)
  }
  const TimePs eligible_at = pool_[cell.head].eligible_at;
  if (eligible_at > now) {
    // Defensive: never strand a head — re-arm at its eligibility time.
    queue_.push(eligible_at, EventType::kHeadEligible, router, in_port, vc, out_idx);
    return;
  }
  cell.in_ready = 1;
  ready_append(rs.out_ports[out_idx].ready, voq_, ci);
  try_grant(router, out_idx, now);
}

void NetworkSim::try_grant(int router, int out_idx, TimePs now) {
  RouterState& rs = routers_[router];
  OutPort& out = rs.out_ports[out_idx];
  if (out.free_at > now) return;  // kChannelFree retries
  if (faults_enabled_ && out_port_dead(router, out_idx)) return;  // link-up kicks again

  // Round-robin over the ready list: pop each candidate off the head; a
  // skipped (credit-blocked) entry re-appends at the tail, which is exactly
  // the erase-then-rotate order of the old vector arbitration. The budget
  // bounds the scan to one pass over the entries present on entry.
  bool credit_blocked = false;
  int budget = out.ready.count;
  while (budget-- > 0) {
    const std::int32_t ci = ready_pop(out.ready, voq_);
    VoqCell& cell = voq_[ci];
    D2NET_HOT_ASSERT(cell.head >= 0 && cell.in_ready, "ready list out of sync");
    const int pkt_id = cell.head;
    Packet& pkt = pool_[pkt_id];
    int vc_next = 0;
    if (!out.to_node) {
      vc_next = pkt.vc_at_hop();
      if (faults_enabled_ && vc_next >= num_vcs_) vc_next = num_vcs_ - 1;
      if (out.credits[vc_next] < pkt.size) {  // blocked on credit
        credit_blocked = true;
        if (metrics_enabled_) ctr_credit_skips_->add();
        ready_append(out.ready, voq_, ci);
        continue;
      }
    }

    // Grant: the cell leaves the ready list (already popped) and the packet
    // leaves its FIFO.
    const int in_port = cell.in_port;
    const int in_vc = cell.vc;
    cell.in_ready = 0;
    voq_pop(pool_, cell);
    out.queued_bytes -= pkt.size;

    const TimePs ser = static_cast<TimePs>(pkt.size) * cfg_.ps_per_byte;
    out.free_at = now + ser;
    if (now >= window_start_ && now <= window_end_) out.bytes_sent_window += pkt.size;
    queue_.push(out.free_at, EventType::kChannelFree, router, out_idx);

    if (metrics_enabled_) {
      PortInstr& pi = port_instr_[router][out_idx];
      if (pi.stall_since >= 0) {
        pi.m.credit_stall_ps += now - pi.stall_since;
        pi.stall_since = -1;
      }
      ctr_grants_->add();
      if (now >= window_start_ && now <= window_end_) {
        ++pi.m.packets_forwarded;
        pi.m.bytes_forwarded += pkt.size;
        VcMetrics& vm = pi.m.vcs[in_vc];
        ++vm.packets;
        vm.bytes += pkt.size;
        ++(pkt.route.minimal() ? vm.minimal_packets : vm.indirect_packets);
      }
    }

    // Return the freed input-buffer credit upstream.
    return_input_credit(router, in_port, in_vc, pkt.size, now);

    if (out.to_node) {
      // Delivery completes when the tail reaches the NIC, regardless of
      // forwarding mode.
      queue_.push(now + ser + cfg_.link_latency, EventType::kArriveNode, pkt_id,
                  out.peer_node);
    } else {
      out.credits[vc_next] -= pkt.size;
      if (faults_enabled_) pkt.link_epoch = out.epoch;
      pkt.hop += 1;
      const TimePs arrival_ser = cfg_.cut_through ? 0 : ser;
      queue_.push(now + arrival_ser + cfg_.link_latency, EventType::kArriveRouter, pkt_id,
                  out.peer_router, out.peer_in_port, vc_next);
    }
    ++progress_;

    // Wake the new head of the drained FIFO, if any.
    if (cell.head >= 0) {
      queue_.push(std::max(now, pool_[cell.head].eligible_at), EventType::kHeadEligible,
                  router, in_port, in_vc, out_idx);
    }
    return;
  }
  // Nothing granted: if the idle channel has eligible heads blocked purely
  // on downstream credit, open (or keep open) this port's stall interval.
  if (metrics_enabled_ && credit_blocked) {
    PortInstr& pi = port_instr_[router][out_idx];
    if (pi.stall_since < 0) pi.stall_since = now;
  }
}

void NetworkSim::handle_arrive_node(int pkt_id, TimePs now) {
  const Packet& pkt = pool_[pkt_id];
  if (now < window_start_) {
    ++phases_.delivered_warmup;
  } else if (now <= window_end_) {
    // Throughput counts every in-window ejection (steady-state byte flow);
    // the latency/hop distributions count only packets *generated* inside
    // the window — a packet born during warmup carries exactly the
    // queueing transient the warmup exists to discard.
    ejected_bytes_window_ += pkt.size;
    ejected_per_node_[pkt.dst_node] += pkt.size;
    if (pkt.gen_time >= window_start_) {
      ++phases_.delivered_measured;
      latency_ns_.add(static_cast<std::int64_t>(to_ns(now - pkt.gen_time)));
      hops_.add(static_cast<double>(pkt.route.hops()));
    } else {
      ++phases_.delivered_carryover;
      if (metrics_enabled_) {
        hist_carryover_ns_->add(static_cast<std::int64_t>(to_ns(now - pkt.gen_time)));
      }
    }
    if (trace_ != nullptr) {
      trace_->record({pkt.src_node, pkt.dst_node, pkt.size, pkt.gen_time, pkt.inject_time,
                      now, pkt.route.hops(), pkt.route.minimal()});
    }
  }
  if (exchange_mode_) {
    exchange_remaining_ -= pkt.size;
    if (exchange_remaining_ == 0) exchange_completion_ = now;
  }
  if (cfg_.fault.recovery_sample > 0) {
    const auto bucket = static_cast<std::size_t>(now / cfg_.fault.recovery_sample);
    if (bucket >= fstats_.delivered_bytes_buckets.size()) {
      fstats_.delivered_bytes_buckets.resize(bucket + 1, 0);
    }
    fstats_.delivered_bytes_buckets[bucket] += pkt.size;
  }
  ++progress_;
  pool_.release(pkt_id);
}

void NetworkSim::dispatch(const Event& e) {
  switch (e.type) {
    case EventType::kGenerate: {
      if (e.time >= gen_end_) break;
      nics_[e.a].pending.push_back(e.time);
      try_inject(e.a, e.time);
      // Poisson arrivals: exponential inter-arrival with mean pkt_time/load.
      const double mean =
          static_cast<double>(cfg_.packet_serialization()) / std::max(load_, 1e-9);
      const double u = 1.0 - rng_.uniform();  // (0, 1]
      const auto dt = static_cast<TimePs>(-std::log(u) * mean) + 1;
      queue_.push(e.time + dt, EventType::kGenerate, e.a);
      break;
    }
    case EventType::kNicFree:
      try_inject(e.a, e.time);
      break;
    case EventType::kArriveRouter:
      handle_arrive_router(e.a, e.b, e.c, e.d, e.time);
      break;
    case EventType::kHeadEligible:
      handle_head_eligible(e.a, e.b, e.c, e.d, e.time);
      break;
    case EventType::kChannelFree:
      try_grant(e.a, e.b, e.time);
      break;
    case EventType::kCreditToRouter:
      routers_[e.a].out_ports[e.b].credits[e.c] += e.d;
      if (faults_enabled_) {
        routers_[e.a].out_ports[e.b].credits_pending[e.c] -= e.d;
        ++progress_;
      }
      try_grant(e.a, e.b, e.time);
      break;
    case EventType::kCreditToNic:
      nics_[e.a].credits[e.c] += e.d;
      if (faults_enabled_) {
        nics_[e.a].credits_pending[e.c] -= e.d;
        ++progress_;
      }
      try_inject(e.a, e.time);
      break;
    case EventType::kArriveNode:
      handle_arrive_node(e.a, e.time);
      break;
    case EventType::kFault:
      apply_fault(cfg_.fault.schedule[static_cast<std::size_t>(e.a)], e.time);
      // Fault application rewires credits and drains VOQs wholesale — the
      // exact transitions the paranoid audit exists to police.
      if (paranoid_) self_audit("apply_fault");
      break;
    case EventType::kRetryInject:
      handle_retry(e.a, e.time);
      break;
    case EventType::kMetricsSample:
    case EventType::kWatchdog:
      // Handled in run_until (excluded from events_processed).
      break;
  }
}

void NetworkSim::handle_metrics_sample(TimePs now) {
  // Read-only over simulation state: records queue depths and schedules
  // the next tick. Must not touch the RNG or any router/NIC state.
  std::int64_t total = 0;
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const RouterState& rs = routers_[r];
    for (std::size_t o = 0; o < rs.out_ports.size(); ++o) {
      const std::int64_t q = rs.out_ports[o].queued_bytes;
      port_instr_[r][o].m.occupancy_bytes.add(static_cast<double>(q));
      total += q;
    }
  }
  occupancy_series_.push_back({now, total});
  ctr_samples_->add();
  const TimePs next = now + cfg_.metrics.sample_period;
  if (next <= window_end_) queue_.push(next, EventType::kMetricsSample);
}

// --- fault machinery (inert with an empty schedule) ---

bool NetworkSim::out_port_dead(int router, int out_idx) const {
  if (router_dead_[router]) return true;
  const OutPort& op = routers_[router].out_ports[out_idx];
  if (op.to_node) return false;
  return !op.up || router_dead_[op.peer_router] != 0;
}

bool NetworkSim::link_admitted(int a, int b) const {
  if (router_dead_[a] || router_dead_[b]) return false;
  return routers_[a].out_ports[out_port_toward(a, b)].up;
}

void NetworkSim::refresh_fault_table(int u, int v) {
  if (!cfg_.fault.reroute || fault_table_ == nullptr) return;
  const LinkFilter alive = [this](int a, int b) { return link_admitted(a, b); };
  if (u >= 0) {
    fault_table_->update_link(topo_, alive, u, v);
  } else {
    fault_table_->rebuild(topo_, alive);
  }
  fstats_.unreachable_pairs =
      std::max(fstats_.unreachable_pairs, fault_table_->unreachable_pairs());
}

bool NetworkSim::salvage_route(Packet& pkt, int router) {
  if (cfg_.fault.recovery != FaultRecovery::kSalvage || fault_table_ == nullptr) {
    return false;
  }
  const int dst_router = topo_.router_of_node(pkt.dst_node);
  D2NET_ASSERT(router != dst_router, "salvage at the destination router");
  const int dist = fault_table_->distance(router, dst_router);
  if (dist < 0) return false;                            // disconnected
  if (pkt.hop + dist > hop_limit_) return false;         // livelock guard
  // Keep the traversed prefix, replace the tail with a fresh shortest path
  // over the surviving links. VCs continue hop-indexed, collapsed onto the
  // top VC once the stretched path exceeds the healthy provisioning.
  Route& route = pkt.route;
  D2NET_ASSERT(route.routers[static_cast<std::size_t>(pkt.hop)] == router,
               "salvage at a router the packet does not occupy");
  route.routers.resize(static_cast<std::size_t>(pkt.hop) + 1);
  fault_table_->sample_path_append(router, dst_router, rng_, route.routers);
  if (route.intermediate_pos > pkt.hop) route.intermediate_pos = pkt.hop;
  const int hops = route.hops();
  route.vcs.resize(static_cast<std::size_t>(hops));
  for (int i = pkt.hop; i < hops; ++i) {
    route.vcs[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(std::min(i, num_vcs_ - 1));
  }
  return true;
}

void NetworkSim::return_input_credit(int router, int in_port, int vc, int bytes,
                                     TimePs now) {
  const InPort& ip = routers_[router].in_ports[in_port];
  if (ip.from_node) {
    if (faults_enabled_) {
      if (router_dead_[router]) return;  // the injection wire died with the router
      nics_[ip.peer_node].credits_pending[vc] += bytes;
    }
    queue_.push(now + cfg_.link_latency, EventType::kCreditToNic, ip.peer_node, 0, vc,
                bytes);
  } else {
    if (faults_enabled_) {
      const OutPort& peer = routers_[ip.peer_router].out_ports[ip.peer_out_port];
      // A cut reverse wire carries no credit; the link-up resync recreates it.
      if (!peer.up || router_dead_[ip.peer_router] || router_dead_[router]) return;
      routers_[ip.peer_router].out_ports[ip.peer_out_port].credits_pending[vc] += bytes;
    }
    queue_.push(now + cfg_.link_latency, EventType::kCreditToRouter, ip.peer_router,
                ip.peer_out_port, vc, bytes);
  }
}

void NetworkSim::drop_packet(int pkt_id, TimePs now) {
  ++fstats_.packets_dropped;
  Packet& pkt = pool_[pkt_id];
  if (cfg_.fault.recovery != FaultRecovery::kNone && pkt.retries < cfg_.fault.max_retries) {
    const TimePs backoff = cfg_.fault.retry_backoff * (TimePs{1} << pkt.retries);
    ++pkt.retries;
    queue_.push(now + backoff, EventType::kRetryInject, pkt_id);
  } else {
    ++fstats_.packets_lost;
    pool_.release(pkt_id);
  }
}

void NetworkSim::handle_retry(int pkt_id, TimePs now) {
  ++progress_;
  Packet& pkt = pool_[pkt_id];
  NicState& nic = nics_[pkt.src_node];
  const int src_router = nic.router;
  const int dst_router = topo_.router_of_node(pkt.dst_node);
  bool ok = nic.free_at <= now && !router_dead_[src_router];
  int vc0 = 0;
  if (ok) {
    if (dst_router == src_router) {
      pkt.route.routers.assign(1, src_router);
      pkt.route.vcs.clear();
      pkt.route.intermediate_pos = -1;
    } else {
      routing_->route_into(src_router, dst_router, rng_, pkt.route);
      ok = !pkt.route.routers.empty();
    }
    if (ok) {
      vc0 = pkt.route.vcs.empty() ? 0 : pkt.route.vcs.front();
      if (vc0 >= num_vcs_) vc0 = num_vcs_ - 1;
      ok = nic.credits[vc0] >= pkt.size;
    }
  }
  if (!ok) {
    // NIC busy, destination unreachable, or no credit: burn one attempt and
    // back off again, or give the packet up for good.
    if (pkt.retries < cfg_.fault.max_retries) {
      const TimePs backoff = cfg_.fault.retry_backoff * (TimePs{1} << pkt.retries);
      ++pkt.retries;
      queue_.push(now + backoff, EventType::kRetryInject, pkt_id);
    } else {
      ++fstats_.packets_lost;
      pool_.release(pkt_id);
    }
    return;
  }
  pkt.hop = 0;
  pkt.inject_time = now;
  pkt.link_epoch = 0;
  nic.credits[vc0] -= pkt.size;
  const TimePs ser = static_cast<TimePs>(pkt.size) * cfg_.ps_per_byte;
  nic.free_at = now + ser;
  queue_.push(nic.free_at, EventType::kNicFree, pkt.src_node);
  const TimePs arrival_ser = cfg_.cut_through ? 0 : ser;
  queue_.push(now + arrival_ser + cfg_.link_latency, EventType::kArriveRouter, pkt_id,
              src_router, nic.in_port, vc0);
  ++fstats_.packets_retried;
}

void NetworkSim::drain_out_port(int router, int out_idx, TimePs now, bool credit_returns,
                                bool allow_salvage) {
  RouterState& rs = routers_[router];
  OutPort& op = rs.out_ports[out_idx];
  for (std::size_t ipx = 0; ipx < rs.in_ports.size(); ++ipx) {
    for (int vc = 0; vc < num_vcs_; ++vc) {
      VoqCell& cell = voq_[voq_index(rs, static_cast<int>(ipx), vc, out_idx)];
      while (cell.head >= 0) {
        const int pkt_id = voq_pop(pool_, cell);
        Packet& pkt = pool_[pkt_id];
        if (allow_salvage && salvage_route(pkt, router)) {
          // The packet stays in its input buffer, re-queued for the out
          // port of its fresh route after a re-decision latency.
          const int new_out = out_port_for_packet(router, pkt);
          D2NET_ASSERT(new_out != out_idx, "salvage re-chose the dead port");
          ++fstats_.reroutes;
          VoqCell& fresh = voq_[voq_index(rs, static_cast<int>(ipx), vc, new_out)];
          rs.out_ports[new_out].queued_bytes += pkt.size;
          if (voq_push(pool_, fresh, pkt_id, now + cfg_.router_latency)) {
            queue_.push(now + cfg_.router_latency, EventType::kHeadEligible, router,
                        static_cast<int>(ipx), vc, new_out);
          }
        } else {
          if (credit_returns) {
            return_input_credit(router, static_cast<int>(ipx), vc, pkt.size, now);
          }
          drop_packet(pkt_id, now);
        }
      }
      cell.in_ready = 0;
    }
  }
  op.ready.clear();
  op.queued_bytes = 0;
}

std::int64_t NetworkSim::input_vc_bytes(const RouterState& rs, int in_port, int vc) const {
  std::int64_t occupied = 0;
  for (int o = 0; o < rs.num_out; ++o) {
    const VoqCell& cell = voq_[voq_index(rs, in_port, vc, o)];
    for (int id = cell.head; id >= 0; id = pool_[id].vnext) occupied += pool_[id].size;
  }
  return occupied;
}

void NetworkSim::resync_link_credits(int u, int v) {
  OutPort& op = routers_[u].out_ports[out_port_toward(u, v)];
  const RouterState& peer = routers_[v];
  for (int vc = 0; vc < num_vcs_; ++vc) {
    op.credits[vc] = vc_buffer_bytes_ - input_vc_bytes(peer, op.peer_in_port, vc) -
                     op.credits_pending[vc];
  }
}

void NetworkSim::resync_nic_credits(int node) {
  NicState& nic = nics_[node];
  const RouterState& rs = routers_[nic.router];
  for (int vc = 0; vc < num_vcs_; ++vc) {
    nic.credits[vc] =
        vc_buffer_bytes_ - input_vc_bytes(rs, nic.in_port, vc) - nic.credits_pending[vc];
  }
}

void NetworkSim::apply_fault(const FaultEvent& f, TimePs now) {
  switch (f.kind) {
    case FaultKind::kLinkDown: {
      D2NET_REQUIRE(f.a >= 0 && f.a < topo_.num_routers() && f.b >= 0 &&
                        f.b < topo_.num_routers(),
                    "link fault endpoint out of range");
      const int pu = out_port_toward(f.a, f.b);  // asserts adjacency
      const int pv = out_port_toward(f.b, f.a);
      OutPort& uv = routers_[f.a].out_ports[pu];
      OutPort& vu = routers_[f.b].out_ports[pv];
      if (!uv.up) return;  // idempotent
      ++fstats_.faults_applied;
      ++progress_;
      uv.up = vu.up = false;
      ++uv.epoch;  // destroys both directions' in-flight traffic
      ++vu.epoch;
      refresh_fault_table(f.a, f.b);  // before draining, so salvage avoids the cut
      drain_out_port(f.a, pu, now, /*credit_returns=*/true, /*allow_salvage=*/true);
      drain_out_port(f.b, pv, now, /*credit_returns=*/true, /*allow_salvage=*/true);
      break;
    }
    case FaultKind::kLinkUp: {
      D2NET_REQUIRE(f.a >= 0 && f.a < topo_.num_routers() && f.b >= 0 &&
                        f.b < topo_.num_routers(),
                    "link fault endpoint out of range");
      const int pu = out_port_toward(f.a, f.b);
      const int pv = out_port_toward(f.b, f.a);
      OutPort& uv = routers_[f.a].out_ports[pu];
      OutPort& vu = routers_[f.b].out_ports[pv];
      if (uv.up) return;
      ++fstats_.faults_applied;
      ++progress_;
      uv.up = vu.up = true;
      if (!router_dead_[f.a] && !router_dead_[f.b]) {
        resync_link_credits(f.a, f.b);
        resync_link_credits(f.b, f.a);
      }
      refresh_fault_table(f.a, f.b);
      try_grant(f.a, pu, now);
      try_grant(f.b, pv, now);
      break;
    }
    case FaultKind::kRouterDown: {
      const int r = f.a;
      D2NET_REQUIRE(r >= 0 && r < topo_.num_routers(), "router fault out of range");
      if (router_dead_[r]) return;
      ++fstats_.faults_applied;
      ++progress_;
      router_dead_[r] = 1;
      RouterState& rs = routers_[r];
      const auto& nbrs = topo_.neighbors(r);
      for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
        ++rs.out_ports[i].epoch;  // wires die in both directions
        ++routers_[nbrs[i]].out_ports[out_port_toward(nbrs[i], r)].epoch;
      }
      refresh_fault_table(-1, -1);
      // Everything queued inside the dead router dies with it; no credits
      // move (the upstream side resyncs when the router comes back).
      for (int o = 0; o < static_cast<int>(rs.out_ports.size()); ++o) {
        drain_out_port(r, o, now, /*credit_returns=*/false, /*allow_salvage=*/false);
      }
      // Neighbors salvage or drop what they had queued toward r.
      for (int n : nbrs) {
        drain_out_port(n, out_port_toward(n, r), now, /*credit_returns=*/true,
                       /*allow_salvage=*/true);
      }
      break;
    }
    case FaultKind::kRouterUp: {
      const int r = f.a;
      D2NET_REQUIRE(r >= 0 && r < topo_.num_routers(), "router fault out of range");
      if (!router_dead_[r]) return;
      ++fstats_.faults_applied;
      ++progress_;
      router_dead_[r] = 0;
      refresh_fault_table(-1, -1);
      const auto& nbrs = topo_.neighbors(r);
      for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
        const int n = nbrs[i];
        if (!routers_[r].out_ports[i].up || router_dead_[n]) continue;
        resync_link_credits(r, n);
        resync_link_credits(n, r);
        try_grant(r, i, now);
        try_grant(n, out_port_toward(n, r), now);
      }
      for (int j = 0; j < topo_.endpoints_of(r); ++j) {
        const int node = topo_.node_base(r) + j;
        resync_nic_credits(node);
        try_inject(node, now);
      }
      break;
    }
  }
}

bool NetworkSim::outstanding_work() const {
  if (exchange_mode_) return exchange_remaining_ > 0;
  if (pool_.in_use() > 0) return true;
  for (const NicState& nic : nics_) {
    if (!nic.pending.empty()) return true;
  }
  return false;
}

void NetworkSim::handle_watchdog(TimePs now) {
  if (progress_ == watch_last_ && outstanding_work()) {
    // Nothing moved for a whole interval with work outstanding: declare the
    // run wedged, snapshot the stuck state and let run_until() exit.
    wedged_ = true;
    fstats_.wedged = true;
    WatchdogSnapshot& s = fstats_.watchdog;
    s.time = now;
    s.in_flight = static_cast<std::int64_t>(pool_.in_use());
    s.nic_backlog = 0;
    for (const NicState& nic : nics_) {
      s.nic_backlog += static_cast<std::int64_t>(nic.pending.size() + nic.messages.size());
    }
    s.stalled_heads = 0;
    s.zero_credit_vcs = 0;
    for (const RouterState& rs : routers_) {
      for (const OutPort& op : rs.out_ports) {
        s.stalled_heads += op.ready.count;
        for (std::int64_t c : op.credits) {
          if (c < cfg_.packet_bytes) ++s.zero_credit_vcs;
        }
      }
    }
    return;
  }
  watch_last_ = progress_;
  queue_.push(now + cfg_.fault.watchdog_interval, EventType::kWatchdog);
}

void NetworkSim::setup_faults() {
  faults_enabled_ = cfg_.fault.enabled();
  fstats_.enabled = faults_enabled_;
  fstats_.bucket_width = cfg_.fault.recovery_sample;
  hop_limit_ = cfg_.fault.hop_limit;
  if (hop_limit_ <= 0 && fault_table_ != nullptr) {
    hop_limit_ = 4 * fault_table_->diameter() + 4;
  }
  // Salvaged routes live in the inline Route storage; a longer limit could
  // never be exercised without overflowing it.
  hop_limit_ = std::min(hop_limit_, Route::kMaxHops);
  if (faults_enabled_ && fault_table_ != nullptr && cfg_.fault.reroute) {
    // Start from the healthy table regardless of what a previous faulted
    // run on this instance left behind.
    fault_table_->rebuild(topo_, nullptr);
  }
  if (faults_enabled_) {
    for (std::size_t i = 0; i < cfg_.fault.schedule.size(); ++i) {
      D2NET_REQUIRE(cfg_.fault.schedule[i].time >= 0, "fault times must be non-negative");
      queue_.push(cfg_.fault.schedule[i].time, EventType::kFault,
                  static_cast<std::int32_t>(i));
    }
  }
  if (cfg_.fault.watchdog_interval > 0) {
    queue_.push(cfg_.fault.watchdog_interval, EventType::kWatchdog);
  }
}

void NetworkSim::arm_deadline() {
  deadline_enabled_ = cfg_.wall_limit_seconds > 0.0;
  if (!deadline_enabled_) return;
  deadline_countdown_ = kDeadlineStride;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(cfg_.wall_limit_seconds));
}

void NetworkSim::run_until(TimePs end) {
  while (!queue_.empty()) {
    if (queue_.next_time() > end) break;
    if (exchange_mode_ && exchange_remaining_ == 0) break;
    if (wedged_ || timed_out_) break;
    const Event e = queue_.pop();
    now_ = e.time;
    if (e.type == EventType::kMetricsSample) {
      // Sampling ticks observe without perturbing: they bypass dispatch()
      // and the events_processed count so enabled and disabled runs report
      // identical engine statistics.
      handle_metrics_sample(e.time);
      continue;
    }
    if (e.type == EventType::kWatchdog) {
      // Same discipline: the check reads one counter, so the always-on
      // watchdog cannot perturb a healthy run either.
      handle_watchdog(e.time);
      continue;
    }
    if (digest_enabled_) {
      // Order-sensitive digest of exactly the dispatched stream (the same
      // events events_processed counts): any divergence in event content or
      // ordering between two runs flips it.
      std::uint64_t h = event_digest_;
      h = fnv1a_step(h, static_cast<std::uint64_t>(e.time));
      h = fnv1a_step(h, e.seq);
      h = fnv1a_step(h, static_cast<std::uint64_t>(e.type));
      h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.a)) |
                            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.b))
                             << 32));
      h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.c)) |
                            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.d))
                             << 32));
      event_digest_ = h;
    }
    dispatch(e);
    ++events_processed_;
    // Cooperative wall-clock deadline: one countdown decrement per event,
    // one steady_clock read per stride. The event sequence is untouched, so
    // a run that finishes under budget is bit-identical to one with no
    // budget at all; an over-budget run stops at the next stride boundary
    // with partial statistics and timed_out=true.
    if (deadline_enabled_ && --deadline_countdown_ <= 0) {
      deadline_countdown_ = kDeadlineStride;
      if (std::chrono::steady_clock::now() >= deadline_) timed_out_ = true;
    }
  }
}

void NetworkSim::self_audit(const char* where) const {
  if (!paranoid_) return;
  auto fail = [&](const std::string& msg) {
    throw InternalError(std::string("paranoid self-audit failed at ") + where + ": " + msg);
  };
  auto id = [](int router, std::size_t port) {
    return "router " + std::to_string(router) + " port " + std::to_string(port);
  };
  // Per-VC bytes sitting in the input buffer feeding each in port, and the
  // recomputed per-out-port VOQ totals.
  std::vector<std::int64_t> voq_bytes;
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const RouterState& rs = routers_[r];
    voq_bytes.assign(rs.out_ports.size(), 0);
    for (int ipx = 0; ipx < static_cast<int>(rs.in_ports.size()); ++ipx) {
      for (int vc = 0; vc < num_vcs_; ++vc) {
        std::int64_t occupied = 0;
        for (int o = 0; o < rs.num_out; ++o) {
          const VoqCell& cell = voq_[voq_index(rs, ipx, vc, o)];
          for (int id = cell.head; id >= 0; id = pool_[id].vnext) {
            occupied += pool_[id].size;
            voq_bytes[static_cast<std::size_t>(o)] += pool_[id].size;
          }
        }
        if (occupied > vc_buffer_bytes_) {
          fail("input VC holds " + std::to_string(occupied) + " bytes, buffer is " +
               std::to_string(vc_buffer_bytes_));
        }
      }
    }
    for (std::size_t o = 0; o < rs.out_ports.size(); ++o) {
      const OutPort& op = rs.out_ports[o];
      if (op.queued_bytes != voq_bytes[o]) {
        fail(id(r, o) + " queued_bytes " + std::to_string(op.queued_bytes) +
             " != VOQ contents " + std::to_string(voq_bytes[o]));
      }
      if (op.to_node) continue;
      // Credit conservation on the wire r -> peer: every byte of the
      // receiving VC buffer is either available as sender credit, in
      // flight as a pending credit return, or occupied by a buffered
      // packet. In-flight packets hold the balance, so the sum never
      // exceeds the buffer and each term stays non-negative.
      const RouterState& peer = routers_[op.peer_router];
      for (int v = 0; v < num_vcs_; ++v) {
        const std::int64_t occupied = input_vc_bytes(peer, op.peer_in_port, v);
        const std::int64_t credits = op.credits[v];
        const std::int64_t pending = op.credits_pending[v];
        if (credits < 0) fail(id(r, o) + " vc " + std::to_string(v) + " negative credits");
        if (pending < 0) {
          fail(id(r, o) + " vc " + std::to_string(v) + " negative pending credits");
        }
        if (credits + pending + occupied > vc_buffer_bytes_) {
          fail(id(r, o) + " vc " + std::to_string(v) + " over-credited: credits " +
               std::to_string(credits) + " + pending " + std::to_string(pending) +
               " + occupied " + std::to_string(occupied) + " > buffer " +
               std::to_string(vc_buffer_bytes_));
        }
      }
    }
  }
  // Same conservation law on every injection wire (NIC -> router).
  for (std::size_t n = 0; n < nics_.size(); ++n) {
    const NicState& nic = nics_[n];
    for (int v = 0; v < num_vcs_; ++v) {
      const std::int64_t occupied = input_vc_bytes(routers_[nic.router], nic.in_port, v);
      const std::int64_t credits = nic.credits[v];
      const std::int64_t pending = nic.credits_pending[v];
      if (credits < 0) fail("nic " + std::to_string(n) + " negative credits");
      if (pending < 0) fail("nic " + std::to_string(n) + " negative pending credits");
      if (credits + pending + occupied > vc_buffer_bytes_) {
        fail("nic " + std::to_string(n) + " vc " + std::to_string(v) +
             " over-credited: credits " + std::to_string(credits) + " + pending " +
             std::to_string(pending) + " + occupied " + std::to_string(occupied) +
             " > buffer " + std::to_string(vc_buffer_bytes_));
      }
    }
  }
}

std::shared_ptr<const SimMetrics> NetworkSim::build_metrics() {
  if (!metrics_enabled_) return nullptr;
  auto out = std::make_shared<SimMetrics>();
  out->sample_period = cfg_.metrics.sample_period;
  out->capacities.event_queue_reserved = queue_.reserved();
  out->capacities.packet_pool_reserved = pool_.reserved();
  out->capacities.packet_pool_slots = pool_.capacity();
  out->capacities.voq_cells = voq_.size();
  out->phases = phases_;
  out->occupancy = std::move(occupancy_series_);
  occupancy_series_.clear();
  std::size_t num_ports = 0;
  for (const auto& per_router : port_instr_) num_ports += per_router.size();
  out->ports.reserve(num_ports);
  for (auto& per_router : port_instr_) {
    for (PortInstr& pi : per_router) {
      if (pi.stall_since >= 0) {  // close stall intervals open at run end
        pi.m.credit_stall_ps += now_ - pi.stall_since;
        pi.stall_since = -1;
      }
      out->ports.push_back(pi.m);
    }
  }
  out->registry = std::move(*registry_);
  // The cached handles point into the moved-from registry; reset()
  // recreates both before the next run.
  registry_.reset();
  ctr_grants_ = ctr_credit_skips_ = ctr_injection_stalls_ = ctr_samples_ = nullptr;
  hist_carryover_ns_ = nullptr;
  return out;
}

OpenLoopResult NetworkSim::run_open_loop(const TrafficPattern& pattern, double load,
                                         TimePs duration, TimePs warmup) {
  D2NET_REQUIRE(routing_ != nullptr, "set_routing() before running");
  D2NET_REQUIRE(load > 0.0 && load <= 1.001, "load must be in (0, 1]");
  D2NET_REQUIRE(warmup < duration, "warmup must precede the end of the run");
  reset();
  rng_.reseed(cfg_.seed);
  pattern_ = &pattern;
  load_ = load;
  gen_end_ = duration;
  window_start_ = warmup;
  window_end_ = duration;

  // Stagger first generations uniformly over one mean inter-arrival.
  const double mean = static_cast<double>(cfg_.packet_serialization()) / load;
  for (int node = 0; node < topo_.num_nodes(); ++node) {
    queue_.push(static_cast<TimePs>(rng_.uniform() * mean), EventType::kGenerate, node);
  }
  if (metrics_enabled_) {
    queue_.push(cfg_.metrics.sample_period, EventType::kMetricsSample);
  }
  setup_faults();
  arm_deadline();
  run_until(duration);
  phases_.in_flight_at_end = static_cast<std::int64_t>(pool_.in_use());
  if (paranoid_) self_audit("run_open_loop end");

  OpenLoopResult res;
  res.offered_load = load;
  res.timed_out = timed_out_;
  const double window_ps = static_cast<double>(window_end_ - window_start_);
  const double capacity_bytes =
      window_ps / static_cast<double>(cfg_.ps_per_byte) * topo_.num_nodes();
  res.accepted_throughput = static_cast<double>(ejected_bytes_window_) / capacity_bytes;
  res.avg_latency_ns = latency_ns_.mean();
  res.p50_latency_ns = latency_ns_.percentile(50);
  res.p99_latency_ns = latency_ns_.percentile(99);
  res.packets_measured = latency_ns_.count();
  res.packets_injected = packets_injected_;
  res.events_processed = events_processed_;
  res.event_digest = digest_enabled_ ? event_digest_ : 0;
  res.avg_hops = hops_.mean();
  res.fraction_minimal =
      packets_injected_ > 0
          ? static_cast<double>(packets_minimal_) / static_cast<double>(packets_injected_)
          : 0.0;
  // Jain index over per-node ejected bytes: (sum x)^2 / (n * sum x^2).
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::int64_t x : ejected_per_node_) {
    sum += static_cast<double>(x);
    sum_sq += static_cast<double>(x) * static_cast<double>(x);
  }
  res.jain_fairness =
      sum_sq > 0.0 ? sum * sum / (static_cast<double>(ejected_per_node_.size()) * sum_sq)
                   : 0.0;
  res.phases = phases_;
  res.faults = fstats_;
  res.metrics = build_metrics();
  return res;
}

ExchangeResult NetworkSim::run_exchange(const ExchangePlan& plan, TimePs time_limit) {
  D2NET_REQUIRE(routing_ != nullptr, "set_routing() before running");
  D2NET_REQUIRE(static_cast<int>(plan.per_node.size()) == topo_.num_nodes(),
                "plan arity must match node count");
  reset();
  rng_.reseed(cfg_.seed);
  exchange_mode_ = true;
  plan_order_ = plan.order;
  window_start_ = 0;
  window_end_ = time_limit;
  gen_end_ = 0;

  exchange_remaining_ = plan.total_bytes();
  D2NET_REQUIRE(exchange_remaining_ > 0, "empty exchange plan");
  for (int node = 0; node < topo_.num_nodes(); ++node) {
    nics_[node].messages = plan.per_node[node];
    queue_.push(0, EventType::kNicFree, node);
  }
  if (metrics_enabled_) {
    queue_.push(cfg_.metrics.sample_period, EventType::kMetricsSample);
  }
  setup_faults();
  arm_deadline();
  run_until(time_limit);
  phases_.in_flight_at_end = static_cast<std::int64_t>(pool_.in_use());
  if (paranoid_) self_audit("run_exchange end");

  ExchangeResult res;
  res.total_bytes = plan.total_bytes();
  res.timed_out = timed_out_;
  res.delivered_bytes = res.total_bytes - exchange_remaining_;
  res.completed = exchange_completion_ >= 0;
  if (res.completed) {
    res.completion_us = to_us(exchange_completion_);
    const double per_node_bytes =
        static_cast<double>(res.total_bytes) / std::max(1, plan.active_nodes());
    const double line_bytes =
        static_cast<double>(exchange_completion_) / static_cast<double>(cfg_.ps_per_byte);
    res.effective_throughput = per_node_bytes / line_bytes;
  }
  res.avg_latency_ns = latency_ns_.mean();
  res.event_digest = digest_enabled_ ? event_digest_ : 0;
  res.faults = fstats_;
  res.metrics = build_metrics();
  return res;
}

}  // namespace d2net
