#include "sim/network.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/thread_pool.h"
#include "partition/partitioner.h"
#include "routing/minimal_table.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace d2net {

std::int64_t ExchangePlan::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& msgs : per_node) {
    for (const auto& m : msgs) total += m.bytes;
  }
  return total;
}

int ExchangePlan::active_nodes() const {
  int n = 0;
  for (const auto& msgs : per_node) n += msgs.empty() ? 0 : 1;
  return n;
}

namespace {
// D2NET_PARANOID: any non-empty value other than "0" enables the self-audit
// without touching configs — handy for soaking an entire bench suite.
bool paranoid_env() {
  static const bool on = [] {
    const char* v = std::getenv("D2NET_PARANOID");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
  }();
  return on;
}

// FNV-1a over the dispatched-event stream; the offset doubles as the
// empty-stream digest so "no events" still hashes to a fixed value.
constexpr std::uint64_t kDigestOffset = 1469598103934665603ULL;
constexpr std::uint64_t kDigestPrime = 1099511628211ULL;

inline std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFFu)) * kDigestPrime;
  }
  return h;
}

// The digest words fold an event's full identity without its pool slot:
// `a` is a per-lane pool index for the packet-carrying kinds (and is
// embedded in the okey for every other kind), so hashing it would make the
// digest depend on allocator state instead of simulation content.
inline std::uint64_t digest_w1(const Event& e) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.b)) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.c)) << 32);
}

inline std::uint64_t digest_w2(const Event& e) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.d)) |
         (static_cast<std::uint64_t>(e.type) << 32);
}

inline std::uint64_t fold_digest(std::uint64_t h, TimePs time, std::uint64_t okey,
                                 std::uint64_t w1, std::uint64_t w2) {
  h = fnv1a_step(h, static_cast<std::uint64_t>(time));
  h = fnv1a_step(h, okey);
  h = fnv1a_step(h, w1);
  h = fnv1a_step(h, w2);
  return h;
}

// SplitMix64 finalizer: decorrelated per-entity seed streams from one run
// seed. Entity-local streams are what keep random draws identical between
// serial and sharded execution (the draw order within one entity is fixed
// by the realized event order, which sharding reproduces exactly).
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr TimePs kNoEvent = std::numeric_limits<TimePs>::max();

// Bounded shared-table resamples against the local fault view before a
// salvage escalates to a local-greedy detour (propagation runs only). The
// count is fixed so the router-local RNG draw sequence stays deterministic.
constexpr int kSalvageSamples = 4;
}  // namespace

NetworkSim::NetworkSim(const Topology& topo, const SimConfig& cfg, int num_vcs)
    : topo_(topo), cfg_(cfg), num_vcs_(num_vcs) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  D2NET_REQUIRE(num_vcs >= 1 && num_vcs <= 8, "unreasonable VC count");
  D2NET_REQUIRE(cfg_.shards >= 1, "shard count must be >= 1");
  vc_buffer_bytes_ = cfg_.buffer_bytes_per_port / num_vcs_;
  D2NET_REQUIRE(vc_buffer_bytes_ >= cfg_.packet_bytes,
                "per-VC buffer smaller than one packet");
  // The VCT fast path assumes the whole packet is buffered by the time the
  // router may forward it (eligibility = head + router latency).
  D2NET_REQUIRE(!cfg_.cut_through || cfg_.router_latency >= cfg_.packet_serialization(),
                "cut-through mode requires router latency >= packet serialization");

  routers_.resize(topo.num_routers());
  nics_.resize(topo.num_nodes());
  for (int r = 0; r < topo.num_routers(); ++r) {
    RouterState& rs = routers_[r];
    const auto& nbrs = topo.neighbors(r);
    const int deg = static_cast<int>(nbrs.size());
    const int p = topo.endpoints_of(r);
    rs.in_ports.resize(deg + p);
    rs.out_ports.resize(deg + p);
    for (int i = 0; i < deg; ++i) {
      rs.port_of_neighbor.emplace_back(nbrs[i], i);
    }
    std::sort(rs.port_of_neighbor.begin(), rs.port_of_neighbor.end());
    for (std::size_t i = 1; i < rs.port_of_neighbor.size(); ++i) {
      D2NET_REQUIRE(rs.port_of_neighbor[i].first != rs.port_of_neighbor[i - 1].first,
                    "parallel links are not supported by the simulator");
    }
    for (int j = 0; j < p; ++j) {
      const int node = topo.node_base(r) + j;
      nics_[node].router = r;
      nics_[node].in_port = deg + j;
    }
  }
  // Wire peer indices: out port i of router r toward neighbor n lands in
  // n's in port that faces r.
  for (int r = 0; r < topo.num_routers(); ++r) {
    const auto& nbrs = topo.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      const int n = nbrs[i];
      OutPort& op = routers_[r].out_ports[i];
      op.to_node = false;
      op.peer_router = n;
      op.peer_in_port = out_port_toward(n, r);  // symmetric port numbering
      InPort& ip = routers_[r].in_ports[i];
      ip.from_node = false;
      ip.peer_router = n;
      ip.peer_out_port = out_port_toward(n, r);
    }
    const int deg = static_cast<int>(nbrs.size());
    for (int j = 0; j < topo.endpoints_of(r); ++j) {
      OutPort& op = routers_[r].out_ports[deg + j];
      op.to_node = true;
      op.peer_node = topo.node_base(r) + j;
      InPort& ip = routers_[r].in_ports[deg + j];
      ip.from_node = true;
      ip.peer_node = topo.node_base(r) + j;
    }
  }
  // Allocate the VC/VOQ structure once; reset() only clears it in place, so
  // back-to-back runs on one instance do no structural allocation. Every
  // (in_port, vc, out_port) FIFO is one 16-byte cell in the flat voq_
  // array; each cell records its (in_port, vc) identity so a ready-list
  // entry alone locates the credit-return path.
  std::size_t total_cells = 0;
  std::size_t total_ports = 0;
  for (RouterState& rs : routers_) {
    rs.num_out = static_cast<std::int32_t>(rs.out_ports.size());
    rs.voq_base = static_cast<std::int32_t>(total_cells);
    total_cells += rs.in_ports.size() * static_cast<std::size_t>(num_vcs_) *
                   static_cast<std::size_t>(rs.num_out);
    total_ports += rs.out_ports.size();
    D2NET_REQUIRE(total_cells <= static_cast<std::size_t>(INT32_MAX),
                  "VOQ cell count overflows 32-bit indexing");
    for (OutPort& op : rs.out_ports) {
      op.credits.resize(op.to_node ? 0 : num_vcs_);
      op.credits_pending.resize(op.to_node ? 0 : num_vcs_);
    }
  }
  voq_.resize(total_cells);
  for (const RouterState& rs : routers_) {
    for (int ipx = 0; ipx < static_cast<int>(rs.in_ports.size()); ++ipx) {
      for (int vc = 0; vc < num_vcs_; ++vc) {
        for (int o = 0; o < rs.num_out; ++o) {
          VoqCell& cell = voq_[voq_index(rs, ipx, vc, o)];
          cell.in_port = static_cast<std::int16_t>(ipx);
          cell.vc = static_cast<std::uint8_t>(vc);
        }
      }
    }
  }
  for (NicState& nic : nics_) {
    nic.credits.resize(num_vcs_);
    nic.credits_pending.resize(num_vcs_);
  }
  router_dead_.assign(routers_.size(), 0);
  table_router_dead_.assign(routers_.size(), 0);

  // --- shard assignment (fixed for the life of the instance) ---
  // The okey packing (event_queue.h) gives same-time events a total order
  // independent of which lane pushed them — but only when every operand
  // fits its field. Serial runs degrade gracefully to the seq tie-break;
  // sharded runs must not, so the widths become hard requirements here.
  num_lanes_ = std::clamp(cfg_.shards, 1, topo.num_routers());
  lane_of_router_.assign(routers_.size(), 0);
  lane_of_node_.assign(nics_.size(), 0);
  if (num_lanes_ > 1) {
    D2NET_REQUIRE(cfg_.link_latency > 0,
                  "sharded execution needs link_latency > 0 (conservative lookahead)");
    D2NET_REQUIRE(topo.num_routers() < (1 << 22) && topo.num_nodes() < (1 << 22),
                  "sharded okey packing requires router/node ids < 2^22");
    D2NET_REQUIRE(cfg_.packet_bytes < (1 << 18),
                  "sharded okey packing requires packet_bytes < 2^18");
    for (const RouterState& rs : routers_) {
      D2NET_REQUIRE(rs.in_ports.size() < 4096,
                    "sharded okey packing requires port indices < 2^12");
    }
    D2NET_REQUIRE(cfg_.fault.schedule.size() < (1u << 22),
                  "sharded okey packing requires fault schedule indices < 2^22");
    if (cfg_.fault.propagation_enabled()) {
      // kFaultDetect/kFloodArrive carry the schedule index in the 18-bit
      // d-field (the a-field holds the learning router).
      D2NET_REQUIRE(cfg_.fault.schedule.size() < (1u << 18),
                    "fault propagation okey packing requires schedule indices < 2^18");
    }
    // Balanced low-cut shard assignment from the multilevel partitioner.
    // Vertex weight approximates per-router event work: endpoint ports run
    // generation + injection + ejection on top of forwarding.
    std::vector<std::array<int, 3>> edges;
    std::vector<int> vwgt(routers_.size());
    for (int r = 0; r < topo.num_routers(); ++r) {
      vwgt[r] = 2 * topo.endpoints_of(r) + topo.network_degree(r);
      for (int n : topo.neighbors(r)) {
        if (n > r) edges.push_back({r, n, 1});
      }
    }
    const KwayResult kp =
        partition_kway(make_csr(topo.num_routers(), edges, std::move(vwgt)), num_lanes_, {});
    lane_of_router_ = kp.part;
    for (int n = 0; n < topo.num_nodes(); ++n) {
      lane_of_node_[n] = lane_of_router_[topo.router_of_node(n)];
    }
  }

  // Pre-size the engine stores from the topology shape so a run's ramp-up
  // does not grow them one element at a time: at saturation every node has
  // a handful of generator/NIC events in flight and every network port a
  // few pending channel/credit events; packets in flight scale with ports
  // times a small per-VC queue depth. Reported via EngineCapacities. Lane 0
  // keeps the full-topology reserve (serial and demoted runs execute
  // everything there); the other lanes get a 2x proportional share so
  // imbalance does not force early regrowth.
  const std::size_t q_reserve = static_cast<std::size_t>(topo.num_nodes()) * 8 +
                                total_ports * static_cast<std::size_t>(num_vcs_) * 2;
  const std::size_t p_reserve = static_cast<std::size_t>(topo.num_nodes()) * 4 +
                                total_ports * static_cast<std::size_t>(num_vcs_) * 4;
  lanes_.resize(static_cast<std::size_t>(num_lanes_));
  for (int l = 0; l < num_lanes_; ++l) {
    Lane& ln = lanes_[static_cast<std::size_t>(l)];
    ln.id = l;
    ln.queue.set_scheduler(cfg_.scheduler);
    ln.queue.reserve(l == 0 ? q_reserve
                            : q_reserve * 2 / static_cast<std::size_t>(num_lanes_));
    ln.pool.reserve(l == 0 ? p_reserve
                           : p_reserve * 2 / static_cast<std::size_t>(num_lanes_));
    ln.outbox.resize(static_cast<std::size_t>(num_lanes_));
  }
  control_.set_scheduler(cfg_.scheduler);
  node_rng_.resize(nics_.size());
  router_rng_.resize(routers_.size());
  node_uid_ctr_.assign(nics_.size(), 0);

  paranoid_ = cfg_.paranoid || paranoid_env();
  digest_enabled_ = cfg_.collect_event_digest;

  metrics_enabled_ = cfg_.metrics.enabled;
  if (metrics_enabled_) {
    D2NET_REQUIRE(cfg_.metrics.sample_period > 0,
                  "metrics sample period must be positive");
    port_instr_.resize(routers_.size());
    for (std::size_t r = 0; r < routers_.size(); ++r) {
      port_instr_[r].resize(routers_[r].out_ports.size());
    }
  }
  reset();
}

void NetworkSim::reset() {
  for (VoqCell& cell : voq_) {
    cell.head = cell.tail = cell.next_ready = -1;
    cell.in_ready = 0;
  }
  for (RouterState& rs : routers_) {
    for (OutPort& op : rs.out_ports) {
      op.free_at = 0;
      op.queued_bytes = 0;
      op.bytes_sent_window = 0;
      op.ready.clear();
      std::fill(op.credits.begin(), op.credits.end(), vc_buffer_bytes_);
      op.up = true;
      op.phys_up = true;
      op.table_up = true;
      op.epoch = 0;
      std::fill(op.credits_pending.begin(), op.credits_pending.end(), std::int64_t{0});
    }
  }
  for (NicState& nic : nics_) {
    nic.free_at = 0;
    std::fill(nic.credits.begin(), nic.credits.end(), vc_buffer_bytes_);
    nic.pending.clear();
    nic.messages.clear();
    nic.cursor = 0;
    std::fill(nic.credits_pending.begin(), nic.credits_pending.end(), std::int64_t{0});
  }
  std::fill(router_dead_.begin(), router_dead_.end(), std::uint8_t{0});
  std::fill(table_router_dead_.begin(), table_router_dead_.end(), std::uint8_t{0});
  fstats_ = FaultStats{};
  wedged_ = false;
  timed_out_ = false;
  progress_ = 0;
  watch_last_ = 0;
  for (Lane& ln : lanes_) {
    ln.queue.clear();
    ln.pool.recycle_all();
    ln.events_processed = 0;
    ln.progress = 0;
    ln.ejected_bytes_window = 0;
    ln.packets_injected = 0;
    ln.packets_minimal = 0;
    ln.hop_sum = 0;
    ln.hop_count = 0;
    ln.latency_ns = LogHistogram{};
    ln.phases = RunPhaseBreakdown{};
    ln.dropped = 0;
    ln.retried = 0;
    ln.lost = 0;
    ln.reroutes = 0;
    ln.misroutes = 0;
    ln.budget_drops = 0;
    ln.delivered_buckets.clear();
    ln.m_grants = 0;
    ln.m_credit_skips = 0;
    ln.m_injection_stalls = 0;
    ln.carryover_ns = LogHistogram{};
    ln.messages_sent = 0;
    for (auto& box : ln.outbox) box.clear();
    ln.ledger.clear();
    ln.dlog.clear();
  }
  control_.clear();
  // Per-entity RNG streams: every run replays the same per-node/per-router
  // draw sequences regardless of shard count (see the header comment).
  for (std::size_t n = 0; n < node_rng_.size(); ++n) {
    node_rng_[n].reseed(mix_seed(cfg_.seed, static_cast<std::uint64_t>(n)));
  }
  for (std::size_t r = 0; r < router_rng_.size(); ++r) {
    router_rng_[r].reseed(mix_seed(cfg_.seed, node_rng_.size() + static_cast<std::uint64_t>(r)));
  }
  std::fill(node_uid_ctr_.begin(), node_uid_ctr_.end(), std::uint64_t{0});
  active_lanes_ = 1;
  sharded_run_ = false;
  barrier_phase_ = false;
  windows_ = 0;
  window_width_ps_ = 0;
  coord_events_ = 0;
  now_ = 0;
  events_processed_ = 0;
  event_digest_ = kDigestOffset;
  ejected_bytes_window_ = 0;
  ejected_per_node_.assign(topo_.num_nodes(), 0);
  packets_injected_ = 0;
  packets_minimal_ = 0;
  hop_sum_ = 0;
  hop_count_ = 0;
  latency_ns_ = LogHistogram{};
  phases_ = RunPhaseBreakdown{};
  exchange_mode_ = false;
  exchange_remaining_ = 0;
  exchange_completion_ = -1;

  if (metrics_enabled_) {
    for (int r = 0; r < topo_.num_routers(); ++r) {
      const RouterState& rs = routers_[r];
      for (std::size_t o = 0; o < rs.out_ports.size(); ++o) {
        PortInstr& pi = port_instr_[r][o];
        pi.stall_since = -1;
        pi.m = PortMetrics{};
        pi.m.router = r;
        pi.m.port = static_cast<int>(o);
        pi.m.peer_router = rs.out_ports[o].to_node ? -1 : rs.out_ports[o].peer_router;
        pi.m.peer_node = rs.out_ports[o].to_node ? rs.out_ports[o].peer_node : -1;
        pi.m.vcs.resize(num_vcs_);
      }
    }
    occupancy_series_.clear();
    registry_ = std::make_unique<MetricsRegistry>();
    ctr_grants_ = &registry_->counter("grants");
    ctr_credit_skips_ = &registry_->counter("credit_blocked_skips");
    ctr_injection_stalls_ = &registry_->counter("injection_credit_stalls");
    ctr_samples_ = &registry_->counter("occupancy_samples");
    hist_carryover_ns_ = &registry_->histogram("carryover_latency_ns");
  }
}

int NetworkSim::out_port_toward(int router, int neighbor) const {
  const auto& map = routers_[router].port_of_neighbor;
  auto it = std::lower_bound(map.begin(), map.end(), std::make_pair(neighbor, -1));
  D2NET_ASSERT(it != map.end() && it->first == neighbor, "no port toward neighbor");
  return it->second;
}

int NetworkSim::out_port_for_packet(int router, const Packet& pkt) const {
  if (pkt.at_destination_router()) {
    const int deg = topo_.network_degree(router);
    const int j = pkt.dst_node - topo_.node_base(router);
    D2NET_ASSERT(j >= 0 && j < topo_.endpoints_of(router), "destination not on this router");
    return deg + j;
  }
  return out_port_toward(router, pkt.route.routers[pkt.hop + 1]);
}

std::int64_t NetworkSim::output_queue_bytes(int router, int next_hop) const {
  return routers_[router].out_ports[out_port_toward(router, next_hop)].queued_bytes;
}

std::int64_t NetworkSim::output_queue_capacity() const { return cfg_.buffer_bytes_per_port; }

std::vector<NetworkSim::ChannelStats> NetworkSim::channel_stats() const {
  std::vector<ChannelStats> out;
  const double window_bytes =
      static_cast<double>(window_end_ - window_start_) / static_cast<double>(cfg_.ps_per_byte);
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const auto& nbrs = topo_.neighbors(r);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      const OutPort& op = routers_[r].out_ports[i];
      ChannelStats cs;
      cs.router = r;
      cs.neighbor = nbrs[i];
      cs.bytes = op.bytes_sent_window;
      cs.utilization =
          window_bytes > 0 ? static_cast<double>(op.bytes_sent_window) / window_bytes : 0.0;
      out.push_back(cs);
    }
  }
  return out;
}

bool NetworkSim::start_injection(Lane& ln, int node, int dst, int size, TimePs gen_time,
                                 std::int64_t msg_id, TimePs now) {
  NicState& nic = nics_[node];
  const int src_router = nic.router;
  const int dst_router = topo_.router_of_node(dst);

  // Route directly into the pooled packet's Route so its inline storage is
  // reused across packets (no per-packet allocation in steady state).
  const int pkt_id = ln.pool.alloc();
  Packet& pkt = ln.pool[pkt_id];
  Route& route = pkt.route;
  if (dst_router == src_router) {
    route.routers.assign(1, src_router);
    route.vcs.clear();
    route.intermediate_pos = -1;
  } else {
    routing_->route_into(src_router, dst_router, node_rng_[node], route);
    if (faults_enabled_ && route.routers.empty()) {
      // Destination currently unreachable: the NIC head-of-line blocks and
      // keeps retrying (next tick / credit return) until the network heals
      // or the watchdog declares the run wedged.
      ln.pool.release(pkt_id);
      return false;
    }
  }
  int vc0 = route.vcs.empty() ? 0 : route.vcs.front();
  // Fault-degraded paths can be longer than the healthy provisioning
  // assumed; collapse overflow onto the top VC (watchdog guards the
  // resulting deadlock risk).
  if (faults_enabled_ && vc0 >= num_vcs_) vc0 = num_vcs_ - 1;
  if (nic.credits[vc0] < size) {
    ln.pool.release(pkt_id);
    if (metrics_enabled_) ++ln.m_injection_stalls;
    return false;  // stall; retried on credit return
  }

  pkt.src_node = node;
  pkt.dst_node = dst;
  pkt.size = size;
  pkt.gen_time = gen_time;
  pkt.inject_time = now;
  pkt.hop = 0;
  pkt.msg_id = msg_id;
  pkt.retries = 0;
  pkt.misroutes = 0;
  pkt.link_epoch = 0;
  // Pool-independent identity, assigned once per successful injection:
  // ordering keys and the digest use it instead of the pool slot.
  pkt.uid = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 34) |
            node_uid_ctr_[node]++;

  nic.credits[vc0] -= size;
  const TimePs ser = static_cast<TimePs>(size) * cfg_.ps_per_byte;
  nic.free_at = now + ser;
  ln.queue.push(nic.free_at, EventType::kNicFree, node);
  // Cut-through: the router sees the packet when its head lands; the
  // eligibility delay (router latency > serialization at these parameters)
  // guarantees the tail is in the buffer before any forwarding decision.
  const TimePs arrival_ser = cfg_.cut_through ? 0 : ser;
  ln.queue.push_keyed(now + arrival_ser + cfg_.link_latency,
                      pack_packet_okey(EventType::kArriveRouter, pkt.uid),
                      EventType::kArriveRouter, pkt_id, src_router, nic.in_port, vc0);
  ++ln.progress;
  ++ln.packets_injected;
  if (pkt.route.minimal()) ++ln.packets_minimal;
  ++(gen_time < window_start_ ? ln.phases.injected_warmup : ln.phases.injected_measured);
  return true;
}

void NetworkSim::try_inject(Lane& ln, int node, TimePs now) {
  NicState& nic = nics_[node];
  if (nic.free_at > now) return;  // kNicFree will retry

  if (!nic.pending.empty()) {
    // Open loop: destination drawn per packet at injection time.
    const TimePs gen_time = nic.pending.front();
    const int dst = pattern_->dest(node, node_rng_[node]);
    if (start_injection(ln, node, dst, cfg_.packet_bytes, gen_time, -1, now)) {
      nic.pending.pop_front();
    }
    return;
  }

  if (exchange_mode_ && !nic.messages.empty()) {
    if (nic.cursor >= nic.messages.size()) nic.cursor = 0;
    ExchangeMessage& m = nic.messages[nic.cursor];
    const int chunk =
        static_cast<int>(std::min<std::int64_t>(m.bytes, cfg_.packet_bytes));
    if (!start_injection(ln, node, m.dst_node, chunk, now,
                         static_cast<std::int64_t>(nic.cursor), now)) {
      return;
    }
    m.bytes -= chunk;
    if (m.bytes == 0) {
      nic.messages.erase(nic.messages.begin() + static_cast<std::ptrdiff_t>(nic.cursor));
      if (nic.cursor >= nic.messages.size()) nic.cursor = 0;
    } else if (plan_order_ == MessageOrder::kRoundRobin) {
      // Round-robin interleaves open messages; sequential drains in order.
      nic.cursor = (nic.cursor + 1) % nic.messages.size();
    }
  }
}

void NetworkSim::handle_arrive_router(Lane& ln, int pkt_id, int router, int in_port,
                                      int vc, TimePs now) {
  RouterState& rs = routers_[router];
  if (faults_enabled_) {
    const InPort& ipc = rs.in_ports[in_port];
    bool destroyed = router_dead_[router] != 0;
    if (!destroyed && !ipc.from_node) {
      // Destruction is *physical*: with propagation a router may grant onto
      // a wire it still believes up — the packet dies here, at arrival,
      // where the cut (phys_up / epoch) is authoritative.
      const OutPort& sender = routers_[ipc.peer_router].out_ports[ipc.peer_out_port];
      destroyed = !sender.phys_up || router_dead_[ipc.peer_router] != 0 ||
                  ln.pool[pkt_id].link_epoch != sender.epoch;
    }
    if (destroyed) {
      // The wire was cut (or a router died) while the packet was in
      // flight: it never lands in the input buffer and no credit moves;
      // the sender's lost credits are recreated by the link-up resync.
      drop_packet(ln, pkt_id, now);
      return;
    }
  }
  int out_idx = out_port_for_packet(router, ln.pool[pkt_id]);
  if (faults_enabled_ && out_port_dead(router, out_idx)) {
    // Arrived intact but the planned next link is gone: salvage onto the
    // rebuilt table, or free the buffer (credit upstream) and drop/retry.
    Packet& pkt = ln.pool[pkt_id];
    if (salvage_route(ln, pkt, router)) {
      ++ln.reroutes;
      out_idx = out_port_for_packet(router, pkt);
    } else {
      return_input_credit(ln, router, in_port, vc, pkt.size, now);
      drop_packet(ln, pkt_id, now);
      return;
    }
  }
  const int size = ln.pool[pkt_id].size;
  rs.out_ports[out_idx].queued_bytes += size;
  VoqCell& cell = voq_[voq_index(rs, in_port, vc, out_idx)];
  if (voq_push(ln.pool, cell, pkt_id, now + cfg_.router_latency)) {
    ln.queue.push(now + cfg_.router_latency, EventType::kHeadEligible, router, in_port, vc,
                  out_idx);
  }
}

void NetworkSim::handle_head_eligible(Lane& ln, int router, int in_port, int vc,
                                      int out_idx, TimePs now) {
  RouterState& rs = routers_[router];
  const std::int32_t ci = voq_index(rs, in_port, vc, out_idx);
  VoqCell& cell = voq_[ci];
  if (cell.head < 0 || cell.in_ready) {
    return;  // stale event (head already granted and successor rescheduled)
  }
  const TimePs eligible_at = ln.pool[cell.head].eligible_at;
  if (eligible_at > now) {
    // Defensive: never strand a head — re-arm at its eligibility time.
    ln.queue.push(eligible_at, EventType::kHeadEligible, router, in_port, vc, out_idx);
    return;
  }
  cell.in_ready = 1;
  ready_append(rs.out_ports[out_idx].ready, voq_, ci);
  try_grant(ln, router, out_idx, now);
}

void NetworkSim::try_grant(Lane& ln, int router, int out_idx, TimePs now) {
  RouterState& rs = routers_[router];
  OutPort& out = rs.out_ports[out_idx];
  if (out.free_at > now) return;  // kChannelFree retries
  if (faults_enabled_ && out_port_dead(router, out_idx)) return;  // link-up kicks again

  // Round-robin over the ready list: pop each candidate off the head; a
  // skipped (credit-blocked) entry re-appends at the tail, which is exactly
  // the erase-then-rotate order of the old vector arbitration. The budget
  // bounds the scan to one pass over the entries present on entry.
  bool credit_blocked = false;
  int budget = out.ready.count;
  while (budget-- > 0) {
    const std::int32_t ci = ready_pop(out.ready, voq_);
    VoqCell& cell = voq_[ci];
    D2NET_HOT_ASSERT(cell.head >= 0 && cell.in_ready, "ready list out of sync");
    const int pkt_id = cell.head;
    Packet& pkt = ln.pool[pkt_id];
    int vc_next = 0;
    if (!out.to_node) {
      vc_next = pkt.vc_at_hop();
      if (faults_enabled_ && vc_next >= num_vcs_) vc_next = num_vcs_ - 1;
      if (out.credits[vc_next] < pkt.size) {  // blocked on credit
        credit_blocked = true;
        if (metrics_enabled_) ++ln.m_credit_skips;
        ready_append(out.ready, voq_, ci);
        continue;
      }
    }

    // Grant: the cell leaves the ready list (already popped) and the packet
    // leaves its FIFO.
    const int in_port = cell.in_port;
    const int in_vc = cell.vc;
    cell.in_ready = 0;
    voq_pop(ln.pool, cell);
    out.queued_bytes -= pkt.size;

    const TimePs ser = static_cast<TimePs>(pkt.size) * cfg_.ps_per_byte;
    out.free_at = now + ser;
    if (now >= window_start_ && now <= window_end_) out.bytes_sent_window += pkt.size;
    ln.queue.push(out.free_at, EventType::kChannelFree, router, out_idx);

    if (metrics_enabled_) {
      PortInstr& pi = port_instr_[router][out_idx];
      if (pi.stall_since >= 0) {
        pi.m.credit_stall_ps += now - pi.stall_since;
        pi.stall_since = -1;
      }
      ++ln.m_grants;
      if (now >= window_start_ && now <= window_end_) {
        ++pi.m.packets_forwarded;
        pi.m.bytes_forwarded += pkt.size;
        VcMetrics& vm = pi.m.vcs[in_vc];
        ++vm.packets;
        vm.bytes += pkt.size;
        ++(pkt.route.minimal() ? vm.minimal_packets : vm.indirect_packets);
      }
    }

    // Return the freed input-buffer credit upstream.
    return_input_credit(ln, router, in_port, in_vc, pkt.size, now);

    if (out.to_node) {
      // Delivery completes when the tail reaches the NIC, regardless of
      // forwarding mode. The ejected-to node hangs off this router, so the
      // event is always lane-local.
      ln.queue.push_keyed(now + ser + cfg_.link_latency,
                          pack_packet_okey(EventType::kArriveNode, pkt.uid),
                          EventType::kArriveNode, pkt_id, out.peer_node);
    } else {
      out.credits[vc_next] -= pkt.size;
      if (faults_enabled_) pkt.link_epoch = out.epoch;
      pkt.hop += 1;
      const TimePs arrival_ser = cfg_.cut_through ? 0 : ser;
      // May cross a shard boundary; pkt must not be touched afterwards (a
      // cross-lane send migrates it out of this lane's pool).
      send_arrive_router(ln, now + arrival_ser + cfg_.link_latency, pkt_id,
                         out.peer_router, out.peer_in_port, vc_next);
    }
    ++ln.progress;

    // Wake the new head of the drained FIFO, if any.
    if (cell.head >= 0) {
      ln.queue.push(std::max(now, ln.pool[cell.head].eligible_at),
                    EventType::kHeadEligible, router, in_port, in_vc, out_idx);
    }
    return;
  }
  // Nothing granted: if the idle channel has eligible heads blocked purely
  // on downstream credit, open (or keep open) this port's stall interval.
  if (metrics_enabled_ && credit_blocked) {
    PortInstr& pi = port_instr_[router][out_idx];
    if (pi.stall_since < 0) pi.stall_since = now;
  }
}

void NetworkSim::handle_arrive_node(Lane& ln, int pkt_id, TimePs now) {
  const Packet& pkt = ln.pool[pkt_id];
  if (now < window_start_) {
    ++ln.phases.delivered_warmup;
  } else if (now <= window_end_) {
    // Throughput counts every in-window ejection (steady-state byte flow);
    // the latency/hop distributions count only packets *generated* inside
    // the window — a packet born during warmup carries exactly the
    // queueing transient the warmup exists to discard.
    ln.ejected_bytes_window += pkt.size;
    ejected_per_node_[pkt.dst_node] += pkt.size;  // dst node lives on this lane
    if (pkt.gen_time >= window_start_) {
      ++ln.phases.delivered_measured;
      ln.latency_ns.add(static_cast<std::int64_t>(to_ns(now - pkt.gen_time)));
      ln.hop_sum += pkt.route.hops();
      ++ln.hop_count;
    } else {
      ++ln.phases.delivered_carryover;
      if (metrics_enabled_) {
        ln.carryover_ns.add(static_cast<std::int64_t>(to_ns(now - pkt.gen_time)));
      }
    }
    if (trace_ != nullptr) {  // tracing demotes to serial; always lane 0
      trace_->record({pkt.src_node, pkt.dst_node, pkt.size, pkt.gen_time, pkt.inject_time,
                      now, pkt.route.hops(), pkt.route.minimal()});
    }
  }
  if (exchange_mode_) {  // exchange runs are always serial
    exchange_remaining_ -= pkt.size;
    if (exchange_remaining_ == 0) exchange_completion_ = now;
  }
  if (cfg_.fault.recovery_sample > 0) {
    const auto bucket = static_cast<std::size_t>(now / cfg_.fault.recovery_sample);
    if (bucket >= ln.delivered_buckets.size()) {
      ln.delivered_buckets.resize(bucket + 1, 0);
    }
    ln.delivered_buckets[bucket] += pkt.size;
  }
  ++ln.progress;
  ln.pool.release(pkt_id);
}

void NetworkSim::dispatch(Lane& ln, const Event& e) {
  switch (e.type) {
    case EventType::kGenerate: {
      if (e.time >= gen_end_) break;
      nics_[e.a].pending.push_back(e.time);
      try_inject(ln, e.a, e.time);
      // Poisson arrivals: exponential inter-arrival with mean pkt_time/load.
      const double mean =
          static_cast<double>(cfg_.packet_serialization()) / std::max(load_, 1e-9);
      const double u = 1.0 - node_rng_[e.a].uniform();  // (0, 1]
      const auto dt = static_cast<TimePs>(-std::log(u) * mean) + 1;
      ln.queue.push(e.time + dt, EventType::kGenerate, e.a);
      break;
    }
    case EventType::kNicFree:
      try_inject(ln, e.a, e.time);
      break;
    case EventType::kArriveRouter:
      handle_arrive_router(ln, e.a, e.b, e.c, e.d, e.time);
      break;
    case EventType::kHeadEligible:
      handle_head_eligible(ln, e.a, e.b, e.c, e.d, e.time);
      break;
    case EventType::kChannelFree:
      try_grant(ln, e.a, e.b, e.time);
      break;
    case EventType::kCreditToRouter:
      routers_[e.a].out_ports[e.b].credits[e.c] += e.d;
      if (faults_enabled_) {
        routers_[e.a].out_ports[e.b].credits_pending[e.c] -= e.d;
        ++ln.progress;
      }
      try_grant(ln, e.a, e.b, e.time);
      break;
    case EventType::kCreditToNic:
      nics_[e.a].credits[e.c] += e.d;
      if (faults_enabled_) {
        nics_[e.a].credits_pending[e.c] -= e.d;
        ++ln.progress;
      }
      try_inject(ln, e.a, e.time);
      break;
    case EventType::kArriveNode:
      handle_arrive_node(ln, e.a, e.time);
      break;
    case EventType::kFault:
      // Serial path only; sharded runs execute kFault on the coordinator
      // (serialized_step), never through a lane dispatch.
      apply_fault(e.a, e.time);
      // Fault application rewires credits and drains VOQs wholesale — the
      // exact transitions the paranoid audit exists to police.
      if (paranoid_) self_audit("apply_fault");
      break;
    case EventType::kFaultDetect:
      // Control plane (serial path; sharded runs execute these on the
      // coordinator like kFault): the router's missed-credit timeout.
      handle_fault_detect(e.a, e.d, e.time);
      if (paranoid_) self_audit("fault_detect");
      break;
    case EventType::kFloodArrive:
      handle_flood_arrive(e.a, e.d, e.time);
      if (paranoid_) self_audit("flood_arrive");
      break;
    case EventType::kRetryInject:
      handle_retry(ln, e.a, e.time);
      break;
    case EventType::kMetricsSample:
    case EventType::kWatchdog:
      // Handled in run_until / serialized_step (excluded from
      // events_processed).
      break;
  }
}

void NetworkSim::handle_metrics_sample(TimePs now) {
  // Read-only over simulation state: records queue depths and schedules
  // the next tick. Must not touch the RNG or any router/NIC state. Sharded
  // runs execute it on the coordinator at a window barrier, where every
  // lane has retired all events before `now` — the same prefix the serial
  // engine has retired when it samples.
  std::int64_t total = 0;
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const RouterState& rs = routers_[r];
    for (std::size_t o = 0; o < rs.out_ports.size(); ++o) {
      const std::int64_t q = rs.out_ports[o].queued_bytes;
      port_instr_[r][o].m.occupancy_bytes.add(static_cast<double>(q));
      total += q;
    }
  }
  occupancy_series_.push_back({now, total});
  ctr_samples_->add();
  const TimePs next = now + cfg_.metrics.sample_period;
  if (next <= window_end_) control_queue().push(next, EventType::kMetricsSample);
}

// --- cross-shard-capable push helpers ---

void NetworkSim::send_arrive_router(Lane& ln, TimePs t, int pkt_id, int router,
                                    int in_port, int vc) {
  const std::uint64_t okey =
      pack_packet_okey(EventType::kArriveRouter, ln.pool[pkt_id].uid);
  const int target = lane_index_of_router(router);
  if (!sharded_run_ || target == ln.id) {
    ln.queue.push_keyed(t, okey, EventType::kArriveRouter, pkt_id, router, in_port, vc);
    return;
  }
  ++ln.messages_sent;
  Lane& dst = lanes_[static_cast<std::size_t>(target)];
  if (barrier_phase_) {
    // Serialized phase: single-threaded, so migrate and push directly.
    const int id = dst.pool.alloc();
    dst.pool[id] = ln.pool[pkt_id];
    ln.pool.release(pkt_id);
    dst.queue.push_keyed(t, okey, EventType::kArriveRouter, id, router, in_port, vc);
    return;
  }
  CrossMsg m;
  m.time = t;
  m.okey = okey;
  m.b = router;
  m.c = in_port;
  m.d = vc;
  m.type = EventType::kArriveRouter;
  m.has_pkt = true;
  m.pkt = ln.pool[pkt_id];
  ln.outbox[static_cast<std::size_t>(target)].push_back(m);
  ln.pool.release(pkt_id);
}

void NetworkSim::send_retry(Lane& ln, TimePs t, int pkt_id) {
  const Packet& pkt = ln.pool[pkt_id];
  const std::uint64_t okey = pack_packet_okey(EventType::kRetryInject, pkt.uid);
  // Retries re-inject at the source NIC, which may live on another shard
  // than the router that dropped the packet. The backoff is >= one link
  // latency (enforced by setup_run), so the lookahead bound holds.
  const int target = lane_index_of_node(pkt.src_node);
  if (!sharded_run_ || target == ln.id) {
    ln.queue.push_keyed(t, okey, EventType::kRetryInject, pkt_id);
    return;
  }
  ++ln.messages_sent;
  Lane& dst = lanes_[static_cast<std::size_t>(target)];
  if (barrier_phase_) {
    const int id = dst.pool.alloc();
    dst.pool[id] = ln.pool[pkt_id];
    ln.pool.release(pkt_id);
    dst.queue.push_keyed(t, okey, EventType::kRetryInject, id);
    return;
  }
  CrossMsg m;
  m.time = t;
  m.okey = okey;
  m.type = EventType::kRetryInject;
  m.has_pkt = true;
  m.pkt = ln.pool[pkt_id];
  ln.outbox[static_cast<std::size_t>(target)].push_back(m);
  ln.pool.release(pkt_id);
}

void NetworkSim::send_credit_to_router(Lane& ln, TimePs t, int router, int out_port,
                                       int vc, int bytes) {
  const int target = lane_index_of_router(router);
  if (!sharded_run_ || target == ln.id) {
    if (faults_enabled_) {
      routers_[router].out_ports[out_port].credits_pending[vc] += bytes;
    }
    ln.queue.push(t, EventType::kCreditToRouter, router, out_port, vc, bytes);
    return;
  }
  ++ln.messages_sent;
  if (barrier_phase_) {
    if (faults_enabled_) {
      routers_[router].out_ports[out_port].credits_pending[vc] += bytes;
    }
    lanes_[static_cast<std::size_t>(target)].queue.push(t, EventType::kCreditToRouter,
                                                        router, out_port, vc, bytes);
    return;
  }
  // Parallel round: the credits_pending += targets another lane's port, so
  // defer it to the barrier (ledger); the event itself rides the mailbox.
  if (faults_enabled_) {
    ln.ledger.push_back({router, out_port, vc, bytes});
  }
  CrossMsg m;
  m.time = t;
  m.okey = pack_event_okey(EventType::kCreditToRouter, router, out_port, vc, bytes);
  m.a = router;
  m.b = out_port;
  m.c = vc;
  m.d = bytes;
  m.type = EventType::kCreditToRouter;
  ln.outbox[static_cast<std::size_t>(target)].push_back(m);
}

// --- fault machinery (inert with an empty schedule) ---

bool NetworkSim::out_port_dead(int router, int out_idx) const {
  if (router_dead_[router]) return true;
  const OutPort& op = routers_[router].out_ports[out_idx];
  if (op.to_node) return false;
  if (!op.up) return true;
  // Oracle mode may consult the peer's physical state directly; with
  // propagation the owning router acts only on its *believed* view — a
  // neighbor's death is unknown here until detected or flooded, and packets
  // granted toward it meanwhile die physically on arrival.
  return !prop_enabled_ && router_dead_[op.peer_router] != 0;
}

bool NetworkSim::link_admitted(int a, int b) const {
  // The shared table's incremental invalidation is only sound when its
  // filter changes one element per update_link call. Oracle mode satisfies
  // that by refreshing inside apply_fault; propagation refreshes at each
  // update's *convergence*, so the filter must be the converged state the
  // table has been walked through (table_up / table_router_dead_), not the
  // believed `up` flags, which run ahead of the refresh sequence.
  if (prop_enabled_) {
    if (table_router_dead_[a] || table_router_dead_[b]) return false;
    return routers_[a].out_ports[out_port_toward(a, b)].table_up;
  }
  if (router_dead_[a] || router_dead_[b]) return false;
  return routers_[a].out_ports[out_port_toward(a, b)].up;
}

void NetworkSim::refresh_fault_table(int u, int v) {
  if (!cfg_.fault.reroute || fault_table_ == nullptr) return;
  const LinkFilter alive = [this](int a, int b) { return link_admitted(a, b); };
  if (u >= 0) {
    fault_table_->update_link(topo_, alive, u, v);
  } else {
    fault_table_->rebuild(topo_, alive);
  }
  fstats_.unreachable_pairs =
      std::max(fstats_.unreachable_pairs, fault_table_->unreachable_pairs());
}

bool NetworkSim::salvage_route(Lane& ln, Packet& pkt, int router) {
  if (cfg_.fault.recovery != FaultRecovery::kSalvage || fault_table_ == nullptr) {
    return false;
  }
  const int dst_router = topo_.router_of_node(pkt.dst_node);
  D2NET_ASSERT(router != dst_router, "salvage at the destination router");
  const int dist = fault_table_->distance(router, dst_router);
  if (dist < 0) return false;                            // disconnected
  if (pkt.hop + dist > hop_limit_) return false;         // livelock guard
  // Keep the traversed prefix, replace the tail with a fresh shortest path
  // over the surviving links. VCs continue hop-indexed, collapsed onto the
  // top VC once the stretched path exceeds the healthy provisioning.
  Route& route = pkt.route;
  D2NET_ASSERT(route.routers[static_cast<std::size_t>(pkt.hop)] == router,
               "salvage at a router the packet does not occupy");
  const auto finish_tail = [&] {
    if (route.intermediate_pos > pkt.hop) route.intermediate_pos = pkt.hop;
    const int hops = route.hops();
    route.vcs.resize(static_cast<std::size_t>(hops));
    for (int i = pkt.hop; i < hops; ++i) {
      route.vcs[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(std::min(i, num_vcs_ - 1));
    }
  };
  if (!prop_enabled_) {
    route.routers.resize(static_cast<std::size_t>(pkt.hop) + 1);
    fault_table_->sample_path_append(router, dst_router, router_rng_[router],
                                     route.routers);
    finish_tail();
    return true;
  }
  // Propagation: the shared table only reflects *converged* updates, so a
  // sampled path may cross links this router already believes dead.
  // Escalate — resample a bounded number of times against the local view,
  // then fall back to a local-greedy detour on the misroute budget.
  for (int attempt = 0; attempt < kSalvageSamples; ++attempt) {
    route.routers.resize(static_cast<std::size_t>(pkt.hop) + 1);
    fault_table_->sample_path_append(router, dst_router, router_rng_[router],
                                     route.routers);
    if (route_believed_alive(pkt, router, pkt.hop)) {
      finish_tail();
      return true;
    }
  }
  if (misroute_detour(pkt, router)) {
    finish_tail();
    ++ln.misroutes;
    return true;
  }
  if (pkt.misroutes >= cfg_.fault.misroute_limit) ++ln.budget_drops;
  return false;
}

bool NetworkSim::route_believed_alive(const Packet& pkt, int router, int from_hop) const {
  const auto& hops = pkt.route.routers;
  for (std::size_t i = static_cast<std::size_t>(from_hop); i + 1 < hops.size(); ++i) {
    if (!view_.believes_link_alive(router, hops[i], hops[i + 1])) return false;
  }
  return true;
}

bool NetworkSim::misroute_detour(Packet& pkt, int router) {
  if (pkt.misroutes >= cfg_.fault.misroute_limit) return false;
  const auto& nbrs = topo_.neighbors(router);
  const int deg = static_cast<int>(nbrs.size());
  if (deg == 0) return false;
  const int dst_router = topo_.router_of_node(pkt.dst_node);
  // Round-robin from a random offset over believed-live neighbors; the RNG
  // stream is router-local, so shard count cannot shift the pick.
  const int start = std::min(
      deg - 1, static_cast<int>(router_rng_[router].uniform() * static_cast<double>(deg)));
  for (int k = 0; k < deg; ++k) {
    const int i = (start + k) % deg;
    const int m = nbrs[static_cast<std::size_t>(i)];
    const OutPort& op = routers_[router].out_ports[static_cast<std::size_t>(i)];
    if (!op.up) continue;  // believed dead locally
    if (!view_.believes_router_alive(router, m)) continue;
    const int dist = m == dst_router ? 0 : fault_table_->distance(m, dst_router);
    if (dist < 0) continue;
    if (pkt.hop + 1 + dist > hop_limit_) continue;  // TTL-style loop guard
    Route& route = pkt.route;
    route.routers.resize(static_cast<std::size_t>(pkt.hop) + 1);
    route.routers.push_back(m);
    if (m != dst_router) {
      fault_table_->sample_path_append(m, dst_router, router_rng_[router], route.routers);
    }
    ++pkt.misroutes;
    return true;
  }
  return false;
}

void NetworkSim::return_input_credit(Lane& ln, int router, int in_port, int vc, int bytes,
                                     TimePs now) {
  const InPort& ip = routers_[router].in_ports[in_port];
  if (ip.from_node) {
    // The NIC is colocated with its router's shard, so this never crosses.
    if (faults_enabled_) {
      if (router_dead_[router]) return;  // the injection wire died with the router
      nics_[ip.peer_node].credits_pending[vc] += bytes;
    }
    ln.queue.push(now + cfg_.link_latency, EventType::kCreditToNic, ip.peer_node, 0, vc,
                  bytes);
  } else {
    if (faults_enabled_) {
      const OutPort& peer = routers_[ip.peer_router].out_ports[ip.peer_out_port];
      // A *physically* cut reverse wire carries no credit (whatever anyone
      // believes); the link-up resync recreates it.
      if (!peer.phys_up || router_dead_[ip.peer_router] || router_dead_[router]) return;
    }
    // The pending += bookkeeping lives inside the helper (it must be
    // deferred when the peer port belongs to another lane).
    send_credit_to_router(ln, now + cfg_.link_latency, ip.peer_router, ip.peer_out_port,
                          vc, bytes);
  }
}

void NetworkSim::drop_packet(Lane& ln, int pkt_id, TimePs now) {
  ++ln.dropped;
  Packet& pkt = ln.pool[pkt_id];
  if (cfg_.fault.recovery != FaultRecovery::kNone && pkt.retries < cfg_.fault.max_retries) {
    const TimePs backoff = cfg_.fault.retry_backoff * (TimePs{1} << pkt.retries);
    ++pkt.retries;
    send_retry(ln, now + backoff, pkt_id);  // pkt may migrate; no access after
  } else {
    ++ln.lost;
    ln.pool.release(pkt_id);
  }
}

void NetworkSim::handle_retry(Lane& ln, int pkt_id, TimePs now) {
  ++ln.progress;
  Packet& pkt = ln.pool[pkt_id];
  NicState& nic = nics_[pkt.src_node];
  const int src_router = nic.router;
  const int dst_router = topo_.router_of_node(pkt.dst_node);
  bool ok = nic.free_at <= now && !router_dead_[src_router];
  int vc0 = 0;
  if (ok) {
    if (dst_router == src_router) {
      pkt.route.routers.assign(1, src_router);
      pkt.route.vcs.clear();
      pkt.route.intermediate_pos = -1;
    } else {
      routing_->route_into(src_router, dst_router, node_rng_[pkt.src_node], pkt.route);
      ok = !pkt.route.routers.empty();
    }
    if (ok) {
      vc0 = pkt.route.vcs.empty() ? 0 : pkt.route.vcs.front();
      if (vc0 >= num_vcs_) vc0 = num_vcs_ - 1;
      ok = nic.credits[vc0] >= pkt.size;
    }
  }
  if (!ok) {
    // NIC busy, destination unreachable, or no credit: burn one attempt and
    // back off again, or give the packet up for good. The packet already
    // sits on its source node's lane, so the re-push is lane-local.
    if (pkt.retries < cfg_.fault.max_retries) {
      const TimePs backoff = cfg_.fault.retry_backoff * (TimePs{1} << pkt.retries);
      ++pkt.retries;
      ln.queue.push_keyed(now + backoff, pack_packet_okey(EventType::kRetryInject, pkt.uid),
                          EventType::kRetryInject, pkt_id);
    } else {
      ++ln.lost;
      ln.pool.release(pkt_id);
    }
    return;
  }
  pkt.hop = 0;
  pkt.inject_time = now;
  pkt.link_epoch = 0;
  pkt.misroutes = 0;  // the detour budget is per delivery attempt
  nic.credits[vc0] -= pkt.size;
  const TimePs ser = static_cast<TimePs>(pkt.size) * cfg_.ps_per_byte;
  nic.free_at = now + ser;
  ln.queue.push(nic.free_at, EventType::kNicFree, pkt.src_node);
  const TimePs arrival_ser = cfg_.cut_through ? 0 : ser;
  ln.queue.push_keyed(now + arrival_ser + cfg_.link_latency,
                      pack_packet_okey(EventType::kArriveRouter, pkt.uid),
                      EventType::kArriveRouter, pkt_id, src_router, nic.in_port, vc0);
  ++ln.retried;
}

void NetworkSim::drain_out_port(int router, int out_idx, TimePs now, bool credit_returns,
                                bool allow_salvage) {
  Lane& ln = lane_of_router(router);  // faults execute at barriers: safe anywhere
  RouterState& rs = routers_[router];
  OutPort& op = rs.out_ports[out_idx];
  for (std::size_t ipx = 0; ipx < rs.in_ports.size(); ++ipx) {
    for (int vc = 0; vc < num_vcs_; ++vc) {
      VoqCell& cell = voq_[voq_index(rs, static_cast<int>(ipx), vc, out_idx)];
      while (cell.head >= 0) {
        const int pkt_id = voq_pop(ln.pool, cell);
        Packet& pkt = ln.pool[pkt_id];
        if (allow_salvage && salvage_route(ln, pkt, router)) {
          // The packet stays in its input buffer, re-queued for the out
          // port of its fresh route after a re-decision latency.
          const int new_out = out_port_for_packet(router, pkt);
          D2NET_ASSERT(new_out != out_idx, "salvage re-chose the dead port");
          ++ln.reroutes;
          VoqCell& fresh = voq_[voq_index(rs, static_cast<int>(ipx), vc, new_out)];
          rs.out_ports[new_out].queued_bytes += pkt.size;
          if (voq_push(ln.pool, fresh, pkt_id, now + cfg_.router_latency)) {
            ln.queue.push(now + cfg_.router_latency, EventType::kHeadEligible, router,
                          static_cast<int>(ipx), vc, new_out);
          }
        } else {
          if (credit_returns) {
            return_input_credit(ln, router, static_cast<int>(ipx), vc, pkt.size, now);
          }
          drop_packet(ln, pkt_id, now);
        }
      }
      cell.in_ready = 0;
    }
  }
  op.ready.clear();
  op.queued_bytes = 0;
}

std::int64_t NetworkSim::input_vc_bytes(const PacketPool& pool, const RouterState& rs,
                                        int in_port, int vc) const {
  std::int64_t occupied = 0;
  for (int o = 0; o < rs.num_out; ++o) {
    const VoqCell& cell = voq_[voq_index(rs, in_port, vc, o)];
    for (int id = cell.head; id >= 0; id = pool[id].vnext) occupied += pool[id].size;
  }
  return occupied;
}

void NetworkSim::resync_link_credits(int u, int v) {
  OutPort& op = routers_[u].out_ports[out_port_toward(u, v)];
  const RouterState& peer = routers_[v];
  const PacketPool& pool = lanes_[static_cast<std::size_t>(lane_index_of_router(v))].pool;
  for (int vc = 0; vc < num_vcs_; ++vc) {
    op.credits[vc] = vc_buffer_bytes_ - input_vc_bytes(pool, peer, op.peer_in_port, vc) -
                     op.credits_pending[vc];
  }
}

void NetworkSim::resync_nic_credits(int node) {
  NicState& nic = nics_[node];
  const RouterState& rs = routers_[nic.router];
  const PacketPool& pool =
      lanes_[static_cast<std::size_t>(lane_index_of_router(nic.router))].pool;
  for (int vc = 0; vc < num_vcs_; ++vc) {
    nic.credits[vc] =
        vc_buffer_bytes_ - input_vc_bytes(pool, rs, nic.in_port, vc) - nic.credits_pending[vc];
  }
}

void NetworkSim::schedule_detections(int idx, TimePs now) {
  // Each physically-attached live router arms a missed-credit timeout: it
  // notices the change `detection_delay` after the wire actually flips.
  // Control-plane events ride the serialized queue, so there is no lookahead
  // constraint on the delay.
  const FaultEvent& f = cfg_.fault.schedule[static_cast<std::size_t>(idx)];
  const TimePs t = now + cfg_.fault.detection_delay;
  auto detect = [&](int r) {
    if (router_dead_[r]) return;
    control_queue().push(t, EventType::kFaultDetect, r, 0, 0, idx);
  };
  switch (f.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      detect(f.a);
      detect(f.b);
      break;
    case FaultKind::kRouterDown:
      for (int n : topo_.neighbors(f.a)) detect(n);
      break;
    case FaultKind::kRouterUp:
      // The revived router knows about itself; neighbors see credits resume.
      detect(f.a);
      for (int n : topo_.neighbors(f.a)) detect(n);
      break;
  }
}

void NetworkSim::handle_fault_detect(int router, int idx, TimePs now) {
  if (router_dead_[router]) return;  // died between the fault and the timeout
  learn_update(router, idx, /*detection=*/true, now);
}

void NetworkSim::handle_flood_arrive(int router, int idx, TimePs now) {
  if (router_dead_[router]) return;
  learn_update(router, idx, /*detection=*/false, now);
}

void NetworkSim::learn_update(int router, int idx, bool detection, TimePs now) {
  if (!view_.learn(router, idx)) return;  // duplicate flood / already detected
  ++progress_;  // the control plane moving counts as forward progress
  ConvergenceStats& cv = fstats_.convergence;
  const LinkStateUpdate& u = view_.update(idx);
  const TimePs lag = now - u.phys_time;
  ++cv.routers_reached;
  cv.epoch_lag_sum += lag;
  cv.epoch_lag_max = std::max(cv.epoch_lag_max, lag);
  if (detection) {
    ++cv.detections;
    cv.detection_latency_sum += lag;
    cv.detection_latency_max = std::max(cv.detection_latency_max, lag);
  }
  apply_believed_ports(router, now);
  if (u.v < 0 && u.alive && u.u == router) {
    // A revived router learning its own up-update brings its endpoints back
    // online (the oracle path does this inside apply_fault).
    for (int j = 0; j < topo_.endpoints_of(router); ++j) {
      const int node = topo_.node_base(router) + j;
      resync_nic_credits(node);
      try_inject(lane_of_node(node), node, now);
    }
  }
  // Standard link-state flooding: only the first learning re-floods, so each
  // update crosses every live wire at most twice.
  const RouterState& rs = routers_[router];
  for (int i = 0; i < static_cast<int>(topo_.neighbors(router).size()); ++i) {
    const OutPort& op = rs.out_ports[i];
    if (!op.phys_up || router_dead_[op.peer_router]) continue;
    ++cv.flood_messages;
    control_queue().push(now + cfg_.link_latency + cfg_.fault.flood_process,
                         EventType::kFloodArrive, op.peer_router, 0, 0, idx);
  }
  if (view_.converged(idx)) {
    ++cv.converged;
    cv.consistency_time_sum += lag;
    cv.consistency_time_max = std::max(cv.consistency_time_max, lag);
    // Every live router now agrees with the physical truth about this
    // update, so the shared routing table may fold it in: salvage sampling
    // stops proposing the dead element without consulting local views. The
    // converged-state flags advance in lock-step with the refresh sequence
    // (see link_admitted).
    if (u.v < 0) {
      table_router_dead_[u.u] = u.alive ? 0 : 1;
      refresh_fault_table(-1, -1);
    } else {
      routers_[u.u].out_ports[out_port_toward(u.u, u.v)].table_up = u.alive;
      routers_[u.v].out_ports[out_port_toward(u.v, u.u)].table_up = u.alive;
      refresh_fault_table(u.u, u.v);
    }
  }
}

void NetworkSim::apply_believed_ports(int router, TimePs now) {
  // Reconciles the router's granting state (`up`) with what it now
  // believes, mirroring the oracle apply_fault transitions one router at a
  // time: newly-believed-dead ports drain (salvage with the *local* view),
  // newly-believed-alive ports resync credits and resume granting.
  RouterState& rs = routers_[router];
  const auto& nbrs = topo_.neighbors(router);
  for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
    const int peer = nbrs[i];
    OutPort& op = rs.out_ports[i];
    const bool want =
        view_.believes_link_alive(router, router, peer) && view_.believes_router_alive(router, peer);
    if (op.up == want) continue;
    op.up = want;
    if (!want) {
      drain_out_port(router, i, now, /*credit_returns=*/true, /*allow_salvage=*/true);
    } else if (op.phys_up && !router_dead_[router] && !router_dead_[peer]) {
      resync_link_credits(router, peer);
      try_grant(lane_of_router(router), router, i, now);
    }
  }
}

void NetworkSim::apply_fault(int idx, TimePs now) {
  const FaultEvent& f = cfg_.fault.schedule[static_cast<std::size_t>(idx)];
  // Live routers at the instant the fault physically applies; an update is
  // converged once they all learned it (dead routers can't participate).
  auto live_routers = [&]() {
    int live = 0;
    for (int r = 0; r < topo_.num_routers(); ++r) {
      if (!router_dead_[r]) ++live;
    }
    return live;
  };
  switch (f.kind) {
    case FaultKind::kLinkDown: {
      D2NET_REQUIRE(f.a >= 0 && f.a < topo_.num_routers() && f.b >= 0 &&
                        f.b < topo_.num_routers(),
                    "link fault endpoint out of range");
      const int pu = out_port_toward(f.a, f.b);  // asserts adjacency
      const int pv = out_port_toward(f.b, f.a);
      OutPort& uv = routers_[f.a].out_ports[pu];
      OutPort& vu = routers_[f.b].out_ports[pv];
      if (!uv.phys_up) return;  // idempotent
      ++fstats_.faults_applied;
      ++progress_;
      uv.phys_up = vu.phys_up = false;
      ++uv.epoch;  // destroys both directions' in-flight traffic
      ++vu.epoch;
      if (prop_enabled_) {
        // Routing state is untouched here: the endpoints keep granting onto
        // the dead wire (grants die at arrival via the epoch/phys check)
        // until their detection timeouts fire.
        view_.register_update(idx, f.a, f.b, /*alive=*/false, now, live_routers());
        ++fstats_.convergence.updates;
        schedule_detections(idx, now);
      } else {
        uv.up = vu.up = false;
        refresh_fault_table(f.a, f.b);  // before draining, so salvage avoids the cut
        drain_out_port(f.a, pu, now, /*credit_returns=*/true, /*allow_salvage=*/true);
        drain_out_port(f.b, pv, now, /*credit_returns=*/true, /*allow_salvage=*/true);
      }
      break;
    }
    case FaultKind::kLinkUp: {
      D2NET_REQUIRE(f.a >= 0 && f.a < topo_.num_routers() && f.b >= 0 &&
                        f.b < topo_.num_routers(),
                    "link fault endpoint out of range");
      const int pu = out_port_toward(f.a, f.b);
      const int pv = out_port_toward(f.b, f.a);
      OutPort& uv = routers_[f.a].out_ports[pu];
      OutPort& vu = routers_[f.b].out_ports[pv];
      if (uv.phys_up) return;
      ++fstats_.faults_applied;
      ++progress_;
      uv.phys_up = vu.phys_up = true;
      if (prop_enabled_) {
        // A grant launched during the dead window must not survive into the
        // restored wire; the epoch bump kills it at arrival. Safe because
        // the epoch is not a digest operand and the oracle path never runs
        // this branch.
        ++uv.epoch;
        ++vu.epoch;
        view_.register_update(idx, f.a, f.b, /*alive=*/true, now, live_routers());
        ++fstats_.convergence.updates;
        schedule_detections(idx, now);
      } else {
        uv.up = vu.up = true;
        if (!router_dead_[f.a] && !router_dead_[f.b]) {
          resync_link_credits(f.a, f.b);
          resync_link_credits(f.b, f.a);
        }
        refresh_fault_table(f.a, f.b);
        try_grant(lane_of_router(f.a), f.a, pu, now);
        try_grant(lane_of_router(f.b), f.b, pv, now);
      }
      break;
    }
    case FaultKind::kRouterDown: {
      const int r = f.a;
      D2NET_REQUIRE(r >= 0 && r < topo_.num_routers(), "router fault out of range");
      if (router_dead_[r]) return;
      ++fstats_.faults_applied;
      ++progress_;
      router_dead_[r] = 1;
      RouterState& rs = routers_[r];
      const auto& nbrs = topo_.neighbors(r);
      for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
        ++rs.out_ports[i].epoch;  // wires die in both directions
        ++routers_[nbrs[i]].out_ports[out_port_toward(nbrs[i], r)].epoch;
      }
      if (!prop_enabled_) refresh_fault_table(-1, -1);
      // Everything queued inside the dead router dies with it; no credits
      // move (the upstream side resyncs when the router comes back).
      for (int o = 0; o < static_cast<int>(rs.out_ports.size()); ++o) {
        drain_out_port(r, o, now, /*credit_returns=*/false, /*allow_salvage=*/false);
      }
      if (prop_enabled_) {
        // Neighbors keep feeding the silent router until their detection
        // timeouts fire; those packets die at arrival like any other
        // physically-destroyed traffic.
        view_.register_update(idx, r, -1, /*alive=*/false, now, live_routers());
        ++fstats_.convergence.updates;
        schedule_detections(idx, now);
      } else {
        // Neighbors salvage or drop what they had queued toward r.
        for (int n : nbrs) {
          drain_out_port(n, out_port_toward(n, r), now, /*credit_returns=*/true,
                         /*allow_salvage=*/true);
        }
      }
      break;
    }
    case FaultKind::kRouterUp: {
      const int r = f.a;
      D2NET_REQUIRE(r >= 0 && r < topo_.num_routers(), "router fault out of range");
      if (!router_dead_[r]) return;
      ++fstats_.faults_applied;
      ++progress_;
      router_dead_[r] = 0;
      const auto& nbrs = topo_.neighbors(r);
      if (prop_enabled_) {
        // Traffic launched toward the dead router during its outage must not
        // arrive after revival; bump the incident epochs in both directions.
        RouterState& rs = routers_[r];
        for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
          ++rs.out_ports[i].epoch;
          ++routers_[nbrs[i]].out_ports[out_port_toward(nbrs[i], r)].epoch;
        }
        view_.register_update(idx, r, -1, /*alive=*/true, now, live_routers());
        ++fstats_.convergence.updates;
        schedule_detections(idx, now);
      } else {
        refresh_fault_table(-1, -1);
        for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
          const int n = nbrs[i];
          if (!routers_[r].out_ports[i].up || router_dead_[n]) continue;
          resync_link_credits(r, n);
          resync_link_credits(n, r);
          try_grant(lane_of_router(r), r, i, now);
          try_grant(lane_of_router(n), n, out_port_toward(n, r), now);
        }
        for (int j = 0; j < topo_.endpoints_of(r); ++j) {
          const int node = topo_.node_base(r) + j;
          resync_nic_credits(node);
          try_inject(lane_of_node(node), node, now);
        }
      }
      break;
    }
  }
}

bool NetworkSim::outstanding_work() const {
  if (exchange_mode_) return exchange_remaining_ > 0;
  for (int l = 0; l < active_lanes_; ++l) {
    if (lanes_[static_cast<std::size_t>(l)].pool.in_use() > 0) return true;
  }
  for (const NicState& nic : nics_) {
    if (!nic.pending.empty()) return true;
  }
  return false;
}

std::uint64_t NetworkSim::total_progress() const {
  std::uint64_t total = progress_;
  for (int l = 0; l < active_lanes_; ++l) {
    total += lanes_[static_cast<std::size_t>(l)].progress;
  }
  return total;
}

void NetworkSim::handle_watchdog(TimePs now) {
  const std::uint64_t progress = total_progress();
  if (progress == watch_last_ && outstanding_work()) {
    // Nothing moved for a whole interval with work outstanding: declare the
    // run wedged, snapshot the stuck state and let the driver exit.
    wedged_ = true;
    fstats_.wedged = true;
    WatchdogSnapshot& s = fstats_.watchdog;
    s.time = now;
    s.in_flight = 0;
    for (int l = 0; l < active_lanes_; ++l) {
      s.in_flight += static_cast<std::int64_t>(lanes_[static_cast<std::size_t>(l)].pool.in_use());
    }
    s.nic_backlog = 0;
    for (const NicState& nic : nics_) {
      s.nic_backlog += static_cast<std::int64_t>(nic.pending.size() + nic.messages.size());
    }
    s.stalled_heads = 0;
    s.zero_credit_vcs = 0;
    for (const RouterState& rs : routers_) {
      for (const OutPort& op : rs.out_ports) {
        s.stalled_heads += op.ready.count;
        for (std::int64_t c : op.credits) {
          if (c < cfg_.packet_bytes) ++s.zero_credit_vcs;
        }
      }
    }
    return;
  }
  watch_last_ = progress;
  control_queue().push(now + cfg_.fault.watchdog_interval, EventType::kWatchdog);
}

void NetworkSim::setup_faults() {
  faults_enabled_ = cfg_.fault.enabled();
  prop_enabled_ = cfg_.fault.propagation_enabled();
  fstats_.enabled = faults_enabled_;
  fstats_.bucket_width = cfg_.fault.recovery_sample;
  hop_limit_ = cfg_.fault.hop_limit;
  if (hop_limit_ <= 0 && fault_table_ != nullptr) {
    hop_limit_ = 4 * fault_table_->diameter() + 4;
  }
  // Salvaged routes live in the inline Route storage; a longer limit could
  // never be exercised without overflowing it.
  hop_limit_ = std::min(hop_limit_, Route::kMaxHops);
  if (faults_enabled_ && fault_table_ != nullptr && cfg_.fault.reroute) {
    // Start from the healthy table regardless of what a previous faulted
    // run on this instance left behind.
    fault_table_->rebuild(topo_, nullptr);
  }
  if (faults_enabled_) {
    // Entries that can never apply (after run end, unknown ids, non-adjacent
    // links) used to vanish silently; reject them up front with a located
    // error instead.
    validate_fault_schedule(topo_, cfg_.fault.schedule, window_end_, window_start_);
    for (std::size_t i = 0; i < cfg_.fault.schedule.size(); ++i) {
      control_queue().push(cfg_.fault.schedule[i].time, EventType::kFault,
                           static_cast<std::int32_t>(i));
    }
  }
  if (prop_enabled_) {
    D2NET_REQUIRE(cfg_.fault.detection_delay >= 0,
                  "fault.detection_delay must be non-negative");
    D2NET_REQUIRE(cfg_.fault.flood_process >= 0,
                  "fault.flood_process must be non-negative");
    D2NET_REQUIRE(cfg_.fault.misroute_limit >= 0,
                  "fault.misroute_limit must be non-negative");
    view_.reset(topo_.num_routers(), static_cast<int>(cfg_.fault.schedule.size()));
  } else {
    view_.clear();
  }
  if (cfg_.fault.watchdog_interval > 0) {
    control_queue().push(cfg_.fault.watchdog_interval, EventType::kWatchdog);
  }
}

void NetworkSim::arm_deadline() {
  deadline_enabled_ = cfg_.wall_limit_seconds > 0.0;
  if (!deadline_enabled_) return;
  deadline_countdown_ = kDeadlineStride;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(cfg_.wall_limit_seconds));
}

void NetworkSim::run_until(TimePs end) {
  Lane& ln = lanes_[0];
  while (!ln.queue.empty()) {
    if (ln.queue.next_time() > end) break;
    if (exchange_mode_ && exchange_remaining_ == 0) break;
    if (wedged_ || timed_out_) break;
    const Event e = ln.queue.pop();
    now_ = e.time;
    if (e.type == EventType::kMetricsSample) {
      // Sampling ticks observe without perturbing: they bypass dispatch()
      // and the events_processed count so enabled and disabled runs report
      // identical engine statistics.
      handle_metrics_sample(e.time);
      continue;
    }
    if (e.type == EventType::kWatchdog) {
      // Same discipline: the check reads one counter, so the always-on
      // watchdog cannot perturb a healthy run either.
      handle_watchdog(e.time);
      continue;
    }
    if (digest_enabled_) {
      // Order-sensitive digest of exactly the dispatched stream (the same
      // events events_processed counts): any divergence in event content or
      // ordering between two runs flips it. The fold hashes (time, okey,
      // operands-sans-pool-slot), so a sharded run folding the identical
      // realized stream produces the identical value.
      event_digest_ =
          fold_digest(event_digest_, e.time, e.okey, digest_w1(e), digest_w2(e));
    }
    dispatch(ln, e);
    ++ln.events_processed;
    // Cooperative wall-clock deadline: one countdown decrement per event,
    // one steady_clock read per stride. The event sequence is untouched, so
    // a run that finishes under budget is bit-identical to one with no
    // budget at all; an over-budget run stops at the next stride boundary
    // with partial statistics and timed_out=true.
    if (deadline_enabled_ && --deadline_countdown_ <= 0) {
      deadline_countdown_ = kDeadlineStride;
      if (std::chrono::steady_clock::now() >= deadline_) timed_out_ = true;
    }
  }
}

// --- sharded driver (see docs/sharded_sim.md) ---

void NetworkSim::setup_run(bool exchange) {
  // The warn-once latches are std::atomic: setup_run executes on sweep
  // worker threads (one per in-flight point under --jobs), so a plain
  // static bool would be a write-write data race. exchange() makes the
  // note print at most once process-wide while every racing thread still
  // demotes its own run.
  active_lanes_ = num_lanes_;
  if (active_lanes_ > 1 && exchange) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "d2net: note: exchange workloads run serially "
                   "(completion detection needs a global event view); shards=%d ignored\n",
                   num_lanes_);
    }
    active_lanes_ = 1;
  }
  if (active_lanes_ > 1 && !routing_->shard_safe()) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "d2net: note: routing '%s' reads remote router state; "
                   "demoting shards=%d to serial execution\n",
                   routing_->name().c_str(), num_lanes_);
    }
    active_lanes_ = 1;
  }
  if (active_lanes_ > 1 && trace_ != nullptr) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "d2net: note: packet tracing needs one globally ordered "
                   "stream; demoting shards=%d to serial execution\n",
                   num_lanes_);
    }
    active_lanes_ = 1;
  }
  sharded_run_ = active_lanes_ > 1;
  if (sharded_run_ && cfg_.fault.enabled() &&
      cfg_.fault.recovery != FaultRecovery::kNone) {
    // send_retry targets the source node's lane with delay >= the backoff;
    // the conservative window is only safe if that delay covers the
    // lookahead.
    if (cfg_.fault.retry_backoff < cfg_.link_latency) {
      char msg[512];
      std::snprintf(msg, sizeof(msg),
                    "fault.retry_backoff=%.3fus is below link_latency=%.3fus: sharded "
                    "runs re-inject retries across shard boundaries, and the "
                    "conservative time window is only safe when that delay covers one "
                    "link latency of lookahead. Raise fault.retry_backoff to at least "
                    "the link latency, or run with --shards=1.",
                    to_us(cfg_.fault.retry_backoff), to_us(cfg_.link_latency));
      throw ArgumentError(msg);
    }
  }
}

void NetworkSim::run_lane_window(Lane& ln, TimePs limit) {
  // One conservative window on one thread: every event strictly before
  // `limit` is safe to execute — any cross-shard consequence lands at least
  // one link latency past the window floor, i.e. at or after `limit`.
  // Touches only lane-owned state (never now_); cross-lane effects queue in
  // the outbox/ledger for the barrier.
  EventQueue& q = ln.queue;
  while (!q.empty() && q.next_time() < limit) {
    const Event e = q.pop();
    if (digest_enabled_) {
      ln.dlog.push_back({e.time, e.okey, digest_w1(e), digest_w2(e)});
    }
    dispatch(ln, e);
    ++ln.events_processed;
  }
}

void NetworkSim::serialized_step(TimePs tc) {
  // Single-threaded execution of one control timestamp. Control events
  // (kFault / kFaultDetect / kFloodArrive / kWatchdog / kMetricsSample)
  // interleave with any lane events at exactly tc in (time, okey) order — a rescan per event, because fault
  // application can spawn further same-time events. Cross-lane sends made
  // here push directly (barrier_phase_), keeping pending-credit state in
  // step for same-timestamp resyncs.
  barrier_phase_ = true;
  for (;;) {
    int src = -2;  // -2 = none, -1 = control queue, >= 0 = lane index
    TimePs bt = 0;
    std::uint64_t bk = 0;
    if (!control_.empty()) {
      const Event& e = control_.peek();
      src = -1;
      bt = e.time;
      bk = e.okey;
    }
    for (int l = 0; l < active_lanes_; ++l) {
      EventQueue& q = lanes_[static_cast<std::size_t>(l)].queue;
      if (q.empty()) continue;
      const Event& e = q.peek();
      // Strict comparison is exact: okeys never tie across distinct event
      // types (the high byte is the type), so control vs lane order at one
      // timestamp is fully determined.
      if (src == -2 || e.time < bt || (e.time == bt && e.okey < bk)) {
        src = l;
        bt = e.time;
        bk = e.okey;
      }
    }
    if (src == -2 || bt != tc) break;
    if (src == -1) {
      const Event e = control_.pop();
      now_ = e.time;
      if (e.type == EventType::kMetricsSample) {
        handle_metrics_sample(e.time);
        continue;
      }
      if (e.type == EventType::kWatchdog) {
        handle_watchdog(e.time);
        if (wedged_) break;
        continue;
      }
      // Fault and control-plane events: digest-visible and counted,
      // exactly like the serial path.
      if (digest_enabled_) {
        event_digest_ =
            fold_digest(event_digest_, e.time, e.okey, digest_w1(e), digest_w2(e));
      }
      switch (e.type) {
        case EventType::kFault:
          apply_fault(e.a, e.time);
          if (paranoid_) self_audit("apply_fault");
          break;
        case EventType::kFaultDetect:
          handle_fault_detect(e.a, e.d, e.time);
          if (paranoid_) self_audit("fault_detect");
          break;
        case EventType::kFloodArrive:
          handle_flood_arrive(e.a, e.d, e.time);
          if (paranoid_) self_audit("flood_arrive");
          break;
        default:
          D2NET_ASSERT(false, "unexpected control event type");
      }
      ++coord_events_;
    } else {
      Lane& ln = lanes_[static_cast<std::size_t>(src)];
      const Event e = ln.queue.pop();
      now_ = e.time;
      if (digest_enabled_) {
        event_digest_ =
            fold_digest(event_digest_, e.time, e.okey, digest_w1(e), digest_w2(e));
      }
      dispatch(ln, e);
      ++ln.events_processed;
    }
  }
  barrier_phase_ = false;
}

void NetworkSim::deliver_cross() {
  if (!sharded_run_) return;
  // Fixed (target, source) drain order: deterministic seq assignment. seq
  // only breaks byte-identical ties, so any fixed order realizes the same
  // event stream; determinism makes that checkable.
  for (int t = 0; t < active_lanes_; ++t) {
    Lane& dst = lanes_[static_cast<std::size_t>(t)];
    for (int s = 0; s < active_lanes_; ++s) {
      auto& box = lanes_[static_cast<std::size_t>(s)].outbox[static_cast<std::size_t>(t)];
      for (const CrossMsg& m : box) {
        if (m.has_pkt) {
          const int id = dst.pool.alloc();
          dst.pool[id] = m.pkt;
          dst.queue.push_keyed(m.time, m.okey, m.type, id, m.b, m.c, m.d);
        } else {
          dst.queue.push_keyed(m.time, m.okey, m.type, m.a, m.b, m.c, m.d);
        }
      }
      box.clear();
    }
  }
  for (int l = 0; l < active_lanes_; ++l) {
    Lane& ln = lanes_[static_cast<std::size_t>(l)];
    for (const PendingCredit& pc : ln.ledger) {
      routers_[pc.router].out_ports[pc.port].credits_pending[pc.vc] += pc.bytes;
    }
    ln.ledger.clear();
  }
}

void NetworkSim::merge_digest_logs() {
  if (!digest_enabled_ || !sharded_run_) return;
  // K-way merge over the per-lane window logs, comparing current heads by
  // (time, okey). Each lane's log is its realized dispatch order; the
  // global serial order interleaves the lanes head-by-head because at every
  // step the serial engine pops the minimum of the pending set, which is
  // the minimum over the per-lane stream heads.
  std::vector<std::size_t> idx(static_cast<std::size_t>(active_lanes_), 0);
  for (;;) {
    int best = -1;
    for (int l = 0; l < active_lanes_; ++l) {
      const auto& dl = lanes_[static_cast<std::size_t>(l)].dlog;
      if (idx[static_cast<std::size_t>(l)] >= dl.size()) continue;
      if (best < 0) {
        best = l;
        continue;
      }
      const DigestRec& r = dl[idx[static_cast<std::size_t>(l)]];
      const DigestRec& rb = lanes_[static_cast<std::size_t>(best)]
                                .dlog[idx[static_cast<std::size_t>(best)]];
      if (r.time < rb.time || (r.time == rb.time && r.okey < rb.okey)) best = l;
    }
    if (best < 0) break;
    const DigestRec& r =
        lanes_[static_cast<std::size_t>(best)].dlog[idx[static_cast<std::size_t>(best)]++];
    event_digest_ = fold_digest(event_digest_, r.time, r.okey, r.w1, r.w2);
  }
  for (int l = 0; l < active_lanes_; ++l) lanes_[static_cast<std::size_t>(l)].dlog.clear();
}

void NetworkSim::run_windows(TimePs end) {
  const TimePs lookahead = cfg_.link_latency;
  ThreadPool pool(active_lanes_ - 1);
  for (;;) {
    // Barrier: exchange cross-shard arrivals, then fold the window's digest
    // logs. Every exit path passes through here, so trailing logs always
    // merge before the run finishes.
    deliver_cross();
    merge_digest_logs();
    if (wedged_ || timed_out_) break;
    TimePs tq = kNoEvent;
    for (int l = 0; l < active_lanes_; ++l) {
      EventQueue& q = lanes_[static_cast<std::size_t>(l)].queue;
      if (!q.empty()) tq = std::min(tq, q.next_time());
    }
    const TimePs tc = control_.empty() ? kNoEvent : control_.next_time();
    const TimePs tmin = std::min(tq, tc);
    if (tmin == kNoEvent || tmin > end) break;
    now_ = tmin;
    if (tc <= tq) {
      // A control event is (joint-)earliest: run its whole timestamp
      // single-threaded, then barrier again.
      serialized_step(tc);
      continue;
    }
    // Conservative window [tq, limit): every cross-shard consequence of an
    // event at t < limit arrives at t + lookahead >= tq + lookahead >=
    // limit, so the lanes are independent within the window.
    const TimePs limit = std::min({tq + lookahead, tc, end + 1});
    ++windows_;
    window_width_ps_ += limit - tq;
    pool.parallel_for(static_cast<std::size_t>(active_lanes_), [&](std::size_t l) {
      run_lane_window(lanes_[l], limit);
    });
    // One wall-clock check per barrier (vs per-stride serially); an armed
    // but unhit deadline leaves the event sequence bit-identical either way.
    if (deadline_enabled_ && std::chrono::steady_clock::now() >= deadline_) {
      timed_out_ = true;
    }
  }
}

void NetworkSim::collect_lanes() {
  for (int l = 0; l < active_lanes_; ++l) {
    const Lane& ln = lanes_[static_cast<std::size_t>(l)];
    events_processed_ += ln.events_processed;
    ejected_bytes_window_ += ln.ejected_bytes_window;
    packets_injected_ += ln.packets_injected;
    packets_minimal_ += ln.packets_minimal;
    hop_sum_ += ln.hop_sum;
    hop_count_ += ln.hop_count;
    latency_ns_.merge(ln.latency_ns);
    phases_.injected_warmup += ln.phases.injected_warmup;
    phases_.injected_measured += ln.phases.injected_measured;
    phases_.delivered_warmup += ln.phases.delivered_warmup;
    phases_.delivered_measured += ln.phases.delivered_measured;
    phases_.delivered_carryover += ln.phases.delivered_carryover;
    fstats_.packets_dropped += ln.dropped;
    fstats_.packets_retried += ln.retried;
    fstats_.packets_lost += ln.lost;
    fstats_.reroutes += ln.reroutes;
    fstats_.convergence.misroutes += ln.misroutes;
    fstats_.convergence.budget_drops += ln.budget_drops;
    if (!ln.delivered_buckets.empty()) {
      if (fstats_.delivered_bytes_buckets.size() < ln.delivered_buckets.size()) {
        fstats_.delivered_bytes_buckets.resize(ln.delivered_buckets.size(), 0);
      }
      for (std::size_t i = 0; i < ln.delivered_buckets.size(); ++i) {
        fstats_.delivered_bytes_buckets[i] += ln.delivered_buckets[i];
      }
    }
  }
  events_processed_ += coord_events_;
}

void NetworkSim::self_audit(const char* where) const {
  if (!paranoid_) return;
  auto fail = [&](const std::string& msg) {
    throw InternalError(std::string("paranoid self-audit failed at ") + where + ": " + msg);
  };
  auto id = [](int router, std::size_t port) {
    return "router " + std::to_string(router) + " port " + std::to_string(port);
  };
  // Per-VC bytes sitting in the input buffer feeding each in port, and the
  // recomputed per-out-port VOQ totals. Packets live in the pool of the
  // lane owning their router.
  std::vector<std::int64_t> voq_bytes;
  for (int r = 0; r < topo_.num_routers(); ++r) {
    const RouterState& rs = routers_[r];
    const PacketPool& pool = lanes_[static_cast<std::size_t>(lane_index_of_router(r))].pool;
    voq_bytes.assign(rs.out_ports.size(), 0);
    for (int ipx = 0; ipx < static_cast<int>(rs.in_ports.size()); ++ipx) {
      for (int vc = 0; vc < num_vcs_; ++vc) {
        std::int64_t occupied = 0;
        for (int o = 0; o < rs.num_out; ++o) {
          const VoqCell& cell = voq_[voq_index(rs, ipx, vc, o)];
          for (int id = cell.head; id >= 0; id = pool[id].vnext) {
            occupied += pool[id].size;
            voq_bytes[static_cast<std::size_t>(o)] += pool[id].size;
          }
        }
        if (occupied > vc_buffer_bytes_) {
          fail("input VC holds " + std::to_string(occupied) + " bytes, buffer is " +
               std::to_string(vc_buffer_bytes_));
        }
      }
    }
    for (std::size_t o = 0; o < rs.out_ports.size(); ++o) {
      const OutPort& op = rs.out_ports[o];
      if (op.queued_bytes != voq_bytes[o]) {
        fail(id(r, o) + " queued_bytes " + std::to_string(op.queued_bytes) +
             " != VOQ contents " + std::to_string(voq_bytes[o]));
      }
      if (op.to_node) continue;
      // Credit conservation on the wire r -> peer: every byte of the
      // receiving VC buffer is either available as sender credit, in
      // flight as a pending credit return, or occupied by a buffered
      // packet. In-flight packets hold the balance, so the sum never
      // exceeds the buffer and each term stays non-negative.
      const RouterState& peer = routers_[op.peer_router];
      const PacketPool& peer_pool =
          lanes_[static_cast<std::size_t>(lane_index_of_router(op.peer_router))].pool;
      for (int v = 0; v < num_vcs_; ++v) {
        const std::int64_t occupied = input_vc_bytes(peer_pool, peer, op.peer_in_port, v);
        const std::int64_t credits = op.credits[v];
        const std::int64_t pending = op.credits_pending[v];
        if (credits < 0) fail(id(r, o) + " vc " + std::to_string(v) + " negative credits");
        if (pending < 0) {
          fail(id(r, o) + " vc " + std::to_string(v) + " negative pending credits");
        }
        if (credits + pending + occupied > vc_buffer_bytes_) {
          fail(id(r, o) + " vc " + std::to_string(v) + " over-credited: credits " +
               std::to_string(credits) + " + pending " + std::to_string(pending) +
               " + occupied " + std::to_string(occupied) + " > buffer " +
               std::to_string(vc_buffer_bytes_));
        }
      }
    }
  }
  // Same conservation law on every injection wire (NIC -> router).
  for (std::size_t n = 0; n < nics_.size(); ++n) {
    const NicState& nic = nics_[n];
    const PacketPool& pool =
        lanes_[static_cast<std::size_t>(lane_index_of_router(nic.router))].pool;
    for (int v = 0; v < num_vcs_; ++v) {
      const std::int64_t occupied = input_vc_bytes(pool, routers_[nic.router], nic.in_port, v);
      const std::int64_t credits = nic.credits[v];
      const std::int64_t pending = nic.credits_pending[v];
      if (credits < 0) fail("nic " + std::to_string(n) + " negative credits");
      if (pending < 0) fail("nic " + std::to_string(n) + " negative pending credits");
      if (credits + pending + occupied > vc_buffer_bytes_) {
        fail("nic " + std::to_string(n) + " vc " + std::to_string(v) +
             " over-credited: credits " + std::to_string(credits) + " + pending " +
             std::to_string(pending) + " + occupied " + std::to_string(occupied) +
             " > buffer " + std::to_string(vc_buffer_bytes_));
      }
    }
  }
}

std::shared_ptr<const SimMetrics> NetworkSim::build_metrics() {
  if (!metrics_enabled_) return nullptr;
  auto out = std::make_shared<SimMetrics>();
  out->sample_period = cfg_.metrics.sample_period;
  out->capacities.voq_cells = voq_.size();
  out->sharding.shards = active_lanes_;
  out->sharding.windows = windows_;
  out->sharding.mean_window_width_ns =
      windows_ > 0 ? to_ns(window_width_ps_) / static_cast<double>(windows_) : 0.0;
  // Serial runs get an empty per-shard vector: there was no partition to
  // describe, and consumers key the whole block on shards > 1.
  if (active_lanes_ > 1) {
    out->sharding.shard.resize(static_cast<std::size_t>(active_lanes_));
  }
  for (int l = 0; l < active_lanes_; ++l) {
    const Lane& ln = lanes_[static_cast<std::size_t>(l)];
    if (active_lanes_ > 1) {
      ShardMetrics& sm = out->sharding.shard[static_cast<std::size_t>(l)];
      std::size_t cells = 0;
      for (int r = 0; r < topo_.num_routers(); ++r) {
        if (lane_of_router_[r] != l) continue;
        ++sm.routers;
        const RouterState& rs = routers_[r];
        cells += rs.in_ports.size() * static_cast<std::size_t>(num_vcs_) *
                 static_cast<std::size_t>(rs.num_out);
      }
      for (int n = 0; n < topo_.num_nodes(); ++n) sm.nodes += lane_of_node_[n] == l ? 1 : 0;
      sm.capacities.voq_cells = cells;
      sm.events = ln.events_processed;
      sm.messages_sent = ln.messages_sent;
      sm.capacities.event_queue_reserved = ln.queue.reserved();
      sm.capacities.packet_pool_reserved = ln.pool.reserved();
      sm.capacities.packet_pool_slots = ln.pool.capacity();
    }
    out->sharding.cross_shard_messages += ln.messages_sent;
    // Run-level capacities: summed across the lanes the run actually used.
    out->capacities.event_queue_reserved += ln.queue.reserved();
    out->capacities.packet_pool_reserved += ln.pool.reserved();
    out->capacities.packet_pool_slots += ln.pool.capacity();
    // Scalar sinks collected lock-free per lane, merged here.
    ctr_grants_->add(ln.m_grants);
    ctr_credit_skips_->add(ln.m_credit_skips);
    ctr_injection_stalls_->add(ln.m_injection_stalls);
    hist_carryover_ns_->merge(ln.carryover_ns);
  }
  out->phases = phases_;
  out->occupancy = std::move(occupancy_series_);
  occupancy_series_.clear();
  std::size_t num_ports = 0;
  for (const auto& per_router : port_instr_) num_ports += per_router.size();
  out->ports.reserve(num_ports);
  for (auto& per_router : port_instr_) {
    for (PortInstr& pi : per_router) {
      if (pi.stall_since >= 0) {  // close stall intervals open at run end
        pi.m.credit_stall_ps += now_ - pi.stall_since;
        pi.stall_since = -1;
      }
      out->ports.push_back(pi.m);
    }
  }
  if (prop_enabled_) {
    // Control-plane convergence as first-class registry counters; written
    // only at export so the metrics path cannot perturb the run. Guarded on
    // propagation so disabled runs export the same registry as before.
    const ConvergenceStats& cv = fstats_.convergence;
    registry_->counter("fault_updates").add(cv.updates);
    registry_->counter("fault_updates_converged").add(cv.converged);
    registry_->counter("fault_detections").add(cv.detections);
    registry_->counter("fault_flood_messages").add(cv.flood_messages);
    registry_->counter("fault_routers_reached").add(cv.routers_reached);
    registry_->counter("fault_misroutes").add(cv.misroutes);
    registry_->counter("fault_misroute_budget_drops").add(cv.budget_drops);
  }
  out->registry = std::move(*registry_);
  // The cached handles point into the moved-from registry; reset()
  // recreates both before the next run.
  registry_.reset();
  ctr_grants_ = ctr_credit_skips_ = ctr_injection_stalls_ = ctr_samples_ = nullptr;
  hist_carryover_ns_ = nullptr;
  return out;
}

OpenLoopResult NetworkSim::run_open_loop(const TrafficPattern& pattern, double load,
                                         TimePs duration, TimePs warmup) {
  D2NET_REQUIRE(routing_ != nullptr, "set_routing() before running");
  D2NET_REQUIRE(load > 0.0 && load <= 1.001, "load must be in (0, 1]");
  D2NET_REQUIRE(warmup < duration, "warmup must precede the end of the run");
  reset();
  pattern_ = &pattern;
  load_ = load;
  gen_end_ = duration;
  window_start_ = warmup;
  window_end_ = duration;
  setup_run(/*exchange=*/false);

  // Stagger first generations uniformly over one mean inter-arrival. The
  // stagger is the first draw of each node's private stream, so shard count
  // cannot shift it.
  const double mean = static_cast<double>(cfg_.packet_serialization()) / load;
  for (int node = 0; node < topo_.num_nodes(); ++node) {
    lane_of_node(node).queue.push(static_cast<TimePs>(node_rng_[node].uniform() * mean),
                                  EventType::kGenerate, node);
  }
  if (metrics_enabled_) {
    control_queue().push(cfg_.metrics.sample_period, EventType::kMetricsSample);
  }
  setup_faults();
  arm_deadline();
  if (sharded_run_) {
    run_windows(duration);
  } else {
    run_until(duration);
  }
  collect_lanes();
  for (int l = 0; l < active_lanes_; ++l) {
    phases_.in_flight_at_end +=
        static_cast<std::int64_t>(lanes_[static_cast<std::size_t>(l)].pool.in_use());
  }
  if (paranoid_) self_audit("run_open_loop end");

  OpenLoopResult res;
  res.offered_load = load;
  res.timed_out = timed_out_;
  const double window_ps = static_cast<double>(window_end_ - window_start_);
  const double capacity_bytes =
      window_ps / static_cast<double>(cfg_.ps_per_byte) * topo_.num_nodes();
  res.accepted_throughput = static_cast<double>(ejected_bytes_window_) / capacity_bytes;
  res.avg_latency_ns = latency_ns_.mean();
  res.p50_latency_ns = latency_ns_.percentile(50);
  res.p99_latency_ns = latency_ns_.percentile(99);
  res.packets_measured = latency_ns_.count();
  res.packets_injected = packets_injected_;
  res.events_processed = events_processed_;
  res.event_digest = digest_enabled_ ? event_digest_ : 0;
  res.avg_hops =
      hop_count_ > 0 ? static_cast<double>(hop_sum_) / static_cast<double>(hop_count_) : 0.0;
  res.fraction_minimal =
      packets_injected_ > 0
          ? static_cast<double>(packets_minimal_) / static_cast<double>(packets_injected_)
          : 0.0;
  // Jain index over per-node ejected bytes: (sum x)^2 / (n * sum x^2).
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::int64_t x : ejected_per_node_) {
    sum += static_cast<double>(x);
    sum_sq += static_cast<double>(x) * static_cast<double>(x);
  }
  res.jain_fairness =
      sum_sq > 0.0 ? sum * sum / (static_cast<double>(ejected_per_node_.size()) * sum_sq)
                   : 0.0;
  res.phases = phases_;
  res.faults = fstats_;
  res.metrics = build_metrics();
  return res;
}

ExchangeResult NetworkSim::run_exchange(const ExchangePlan& plan, TimePs time_limit) {
  D2NET_REQUIRE(routing_ != nullptr, "set_routing() before running");
  D2NET_REQUIRE(static_cast<int>(plan.per_node.size()) == topo_.num_nodes(),
                "plan arity must match node count");
  reset();
  exchange_mode_ = true;
  plan_order_ = plan.order;
  window_start_ = 0;
  window_end_ = time_limit;
  gen_end_ = 0;
  setup_run(/*exchange=*/true);  // always demotes to serial

  exchange_remaining_ = plan.total_bytes();
  D2NET_REQUIRE(exchange_remaining_ > 0, "empty exchange plan");
  for (int node = 0; node < topo_.num_nodes(); ++node) {
    nics_[node].messages = plan.per_node[node];
    lane_of_node(node).queue.push(0, EventType::kNicFree, node);
  }
  if (metrics_enabled_) {
    control_queue().push(cfg_.metrics.sample_period, EventType::kMetricsSample);
  }
  setup_faults();
  arm_deadline();
  run_until(time_limit);
  collect_lanes();
  for (int l = 0; l < active_lanes_; ++l) {
    phases_.in_flight_at_end +=
        static_cast<std::int64_t>(lanes_[static_cast<std::size_t>(l)].pool.in_use());
  }
  if (paranoid_) self_audit("run_exchange end");

  ExchangeResult res;
  res.total_bytes = plan.total_bytes();
  res.timed_out = timed_out_;
  res.delivered_bytes = res.total_bytes - exchange_remaining_;
  res.completed = exchange_completion_ >= 0;
  if (res.completed) {
    res.completion_us = to_us(exchange_completion_);
    const double per_node_bytes =
        static_cast<double>(res.total_bytes) / std::max(1, plan.active_nodes());
    const double line_bytes =
        static_cast<double>(exchange_completion_) / static_cast<double>(cfg_.ps_per_byte);
    res.effective_throughput = per_node_bytes / line_bytes;
  }
  res.avg_latency_ns = latency_ns_.mean();
  res.event_digest = digest_enabled_ ? event_digest_ : 0;
  res.faults = fstats_;
  res.metrics = build_metrics();
  return res;
}

}  // namespace d2net
