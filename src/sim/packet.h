// Packet representation and pool. Routes are computed once at injection and
// travel with the packet (source routing, Section 3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "routing/route.h"

namespace d2net {

struct Packet {
  int src_node = -1;
  int dst_node = -1;
  int size = 0;  ///< bytes
  /// Pool-independent identity: (src_node << 34) | per-node injection
  /// counter, assigned once at successful injection. Event ordering keys
  /// and the event digest use it instead of the pool slot, so sharded runs
  /// (per-shard pools, packets migrating between them) realize the exact
  /// ordering and digest of the serial engine.
  std::uint64_t uid = 0;
  TimePs gen_time = 0;     ///< when the workload created it
  TimePs inject_time = 0;  ///< when the NIC started serializing it
  Route route;
  int hop = 0;  ///< index of the router the packet currently occupies
  std::int64_t msg_id = -1;  ///< exchange-workload message id, -1 for synthetic
  int retries = 0;  ///< fault-retry attempts consumed (see FaultConfig)
  /// Local-view detours consumed while routing tables were transiently
  /// inconsistent (fault.propagation only, see FaultConfig::misroute_limit);
  /// reset on injection and on every retry re-injection.
  int misroutes = 0;
  /// Epoch of the sending out-port at grant time; a link fault bumps the
  /// port epoch, so a mismatch on arrival means the wire died under the
  /// packet and it must be destroyed (fault runs only).
  std::uint32_t link_epoch = 0;

  // Intrusive VOQ linkage (see sim/voq.h): while the packet waits in an
  // input-buffer virtual output queue these thread it into that FIFO, so
  // queue membership costs no allocation and a queue walk is sequential
  // pool-slot loads.
  std::int32_t vnext = -1;   ///< pool id of the next packet in the same VOQ
  TimePs eligible_at = 0;    ///< forwarding eligibility (arrival + router latency)

  /// Next-hop VC used when traversing `hop -> hop + 1`.
  int vc_at_hop() const { return route.vcs.empty() ? 0 : route.vcs[hop]; }
  bool at_destination_router() const {
    return hop == static_cast<int>(route.routers.size()) - 1;
  }
};

/// Index-based free-list pool: packet ids stay valid across vector growth.
/// With the inline-array Route a packet is one contiguous slab, so
/// steady-state operation allocates nothing per packet (the simulator
/// rewrites every field, including the route, on reuse).
class PacketPool {
 public:
  int alloc() {
    if (!free_.empty()) {
      const int id = free_.back();
      free_.pop_back();
      return id;
    }
    packets_.emplace_back();
    return static_cast<int>(packets_.size()) - 1;
  }

  void release(int id) { free_.push_back(id); }

  /// Returns every packet to the free list; used by NetworkSim::reset()
  /// between runs on the same instance.
  void recycle_all() {
    free_.resize(packets_.size());
    for (std::size_t i = 0; i < free_.size(); ++i) free_[i] = static_cast<int>(i);
  }

  /// Pre-sizes the slab and free list for an expected in-flight packet
  /// count, so a run's ramp-up does not grow the pool one packet at a time
  /// (NetworkSim sizes this from the topology's buffering capacity).
  void reserve(std::size_t n) {
    packets_.reserve(n);
    free_.reserve(n);
  }

  Packet& operator[](int id) { return packets_[id]; }
  const Packet& operator[](int id) const { return packets_[id]; }
  std::size_t capacity() const { return packets_.size(); }
  /// Slots the backing store can hold before reallocating.
  std::size_t reserved() const { return packets_.capacity(); }
  std::size_t in_use() const { return packets_.size() - free_.size(); }

 private:
  std::vector<Packet> packets_;
  std::vector<int> free_;
};

}  // namespace d2net
