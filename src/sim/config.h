// Simulator configuration, defaulting to the paper's Section 4.1 setup:
// 100 Gb/s links with 50 ns latency, 100 ns switch traversal, 100 KB of
// buffering per port per direction, credit-based flow control, 256 B
// packets.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace d2net {

/// Opt-in detailed instrumentation (see sim/metrics.h). Disabled costs
/// nothing beyond a predictable branch per event handler; enabled runs
/// produce bit-identical core results (same event sequence, same RNG
/// stream) plus the SimMetrics block.
struct MetricsConfig {
  bool enabled = false;
  /// Buffer-occupancy sampling period (simulated time); must be > 0 when
  /// enabled.
  TimePs sample_period = us(1);
};

/// Which simulation backend executes a run (see docs/flow_engine.md).
enum class SimEngine {
  kPacket,  ///< per-packet event simulation (sim/network.h) — the default
  kFlow,    ///< flow-level max-min-fair rate model (flowsim/flow_sim.h)
};

/// Flow-engine knobs; ignored by the packet engine.
struct FlowSimConfig {
  /// Open-loop flow size in bytes (exchange runs use the plan's message
  /// sizes instead). 4 KiB = 16 packet-engine packets per flow, 327.68 ns
  /// of serialization at 100 Gb/s — small enough that bench-scale windows
  /// (16-50 us) see dozens of completed flows per node, large enough that
  /// one flow event still stands in for many packet events.
  std::int64_t flow_bytes = 4096;
  /// Concurrent flows one node may source; further arrivals queue at the
  /// NIC. Must be large enough that a node can keep its injection link
  /// busy while individual flows are throttled by shared links downstream
  /// (1 would serialize the NIC and cap accepted throughput at the mean
  /// per-flow rate — far below the packet engine's saturation point); 16
  /// recovers the packet engine's saturation knee on the paper systems
  /// while bounding per-node state at overload.
  int max_active_per_node = 16;
  /// Rate recompute discipline: 0 re-waterfills the affected component
  /// after every flow event (exact max-min at all times); > 0 batches
  /// recomputes into periodic ticks of this simulated-time interval —
  /// the amortization needed at 10^5+ endpoints where one arrival touches
  /// a network-spanning bottleneck component.
  TimePs rate_interval = 0;
};

struct SimConfig {
  /// Simulation backend. Everything below ps_per_byte..seed applies to
  /// both engines; fault/metrics/shards/scheduler knobs are packet-only
  /// (the flow engine rejects them up front — see flowsim/flow_sim.h).
  SimEngine engine = SimEngine::kPacket;
  FlowSimConfig flow;

  /// Serialization cost; 80 ps/B == 100 Gb/s.
  std::int64_t ps_per_byte = ps_per_byte_at_gbps(100.0);
  TimePs link_latency = ns(50);
  TimePs router_latency = ns(100);
  int packet_bytes = 256;
  /// Input buffering per port per direction, split evenly across VCs.
  std::int64_t buffer_bytes_per_port = 100'000;
  std::uint64_t seed = 1;

  /// Virtual cut-through forwarding: a packet becomes forwardable one
  /// router latency after its *head* arrives instead of after its tail
  /// (how the paper's flit-level simulator behaves). With equal link
  /// rates this removes exactly one packet serialization (20.48 ns) of
  /// latency per hop and leaves saturation behavior untouched; buffers
  /// still hold whole packets (VCT, not wormhole). Default keeps
  /// store-and-forward for strict conservatism.
  bool cut_through = false;

  /// Event-scheduling structure (see sim/event_queue.h). Both realize the
  /// exact same (time, okey, seq) event order — runs are bit-identical
  /// either way (enforced by tests/test_determinism_digest.cpp); the wheel
  /// is faster at saturation, the heap is the cross-check reference.
  SchedulerKind scheduler = SchedulerKind::kWheel;

  /// Worker event cores one simulation is partitioned across (conservative
  /// time-window synchronization, lookahead = link_latency; see
  /// docs/sharded_sim.md). 1 = the plain serial engine. Sharded runs
  /// reproduce the serial event digest bit-for-bit; runs that need a global
  /// event view (UGAL-G routing, packet tracing, exchange workloads) demote
  /// to serial with a stderr note. Clamped to the router count.
  int shards = 1;

  /// Fold an FNV-1a digest over the dispatched event stream (time, seq,
  /// type, operands; sampling/watchdog ticks excluded like they are from
  /// events_processed). Costs a few ns per event — off outside determinism
  /// tests. The digest lands on OpenLoopResult/ExchangeResult.
  bool collect_event_digest = false;

  MetricsConfig metrics;

  /// Dynamic fault injection and the no-progress watchdog (see sim/fault.h
  /// and docs/resilience.md). Inert with an empty schedule.
  FaultConfig fault;

  /// Wall-clock budget per run in seconds; 0 disables. When the budget is
  /// exhausted the event loop stops cooperatively and the result carries
  /// timed_out=true plus whatever statistics accumulated (see
  /// docs/durable_sweeps.md). Distinct from the watchdog's wedged flag:
  /// wedged means the simulation stopped making progress, timed_out means
  /// the host ran out of patience.
  double wall_limit_seconds = 0.0;

  /// Paranoid self-audit: verify credit conservation and buffer-occupancy
  /// bounds on every wire at end-of-run and after every fault application
  /// (InternalError on violation). Also enabled by a non-empty, non-"0"
  /// D2NET_PARANOID environment variable. Off by default; bit-identical
  /// when off or passing (read-only checks outside the event loop).
  bool paranoid = false;

  /// Time for one packet to cross one link at line rate.
  TimePs packet_serialization() const {
    return static_cast<TimePs>(packet_bytes) * ps_per_byte;
  }
};

}  // namespace d2net
