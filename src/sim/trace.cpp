#include "sim/trace.h"

#include <ostream>

namespace d2net {

void PacketTraceSink::write_csv(std::ostream& os) const {
  os << "src_node,dst_node,size,gen_ns,inject_ns,eject_ns,latency_ns,hops,minimal\n";
  for (const PacketTraceEntry& e : entries_) {
    os << e.src_node << ',' << e.dst_node << ',' << e.size << ',' << to_ns(e.gen_time) << ','
       << to_ns(e.inject_time) << ',' << to_ns(e.eject_time) << ','
       << to_ns(e.total_latency()) << ',' << e.hops << ',' << (e.minimal ? 1 : 0) << '\n';
  }
}

}  // namespace d2net
