// Dynamic fault injection (beyond the paper's static degradation study).
//
// A FaultSchedule is a list of timed link-down / link-up / router-down /
// router-up events executed mid-run by the event core. The diameter-two
// designs buy scale with minimal path diversity, so the interesting
// questions are dynamic: what happens to packets in flight on a link when
// it dies, how fast routing converges onto the surviving paths, and whether
// accepted throughput recovers. See docs/resilience.md for the full model.
//
// Semantics summary:
//  - A link cut destroys everything in flight on it (both directions,
//    packets and credits) and strands the packets queued for it.
//  - Recovery policy (FaultConfig::recovery): stranded/destroyed packets
//    are either dropped permanently (kNone), re-injected at the source
//    with bounded exponential backoff (kRetry), or salvage-rerouted at the
//    last healthy router over the rebuilt minimal table (kSalvage).
//  - With FaultConfig::reroute the per-run minimal/UGAL tables are
//    incrementally invalidated and recomputed on every fault event, so
//    packets injected after the fault avoid dead links.
//  - Every run is additionally wrapped in a no-progress watchdog: if no
//    packet, credit or grant moves for watchdog_interval of simulated time
//    while work is outstanding, the run ends gracefully with wedged=true
//    and a diagnostic snapshot instead of spinning forever.
//
// With an empty schedule the whole layer is inert: results are bit
// identical to a build without it (enforced by tests/test_faults.cpp, same
// discipline as the metrics layer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace d2net {

class Topology;

enum class FaultKind : std::uint8_t {
  kLinkDown,    ///< cut the undirected link (a, b)
  kLinkUp,      ///< restore the undirected link (a, b), resyncing credits
  kRouterDown,  ///< all of router a's links die; queued packets are lost
  kRouterUp,    ///< restore router a and every incident link that is up
};

const char* to_string(FaultKind kind);

/// One timed fault. Link events use (a, b) as router endpoints; router
/// events use `a` only.
struct FaultEvent {
  TimePs time = 0;
  FaultKind kind = FaultKind::kLinkDown;
  int a = -1;
  int b = -1;
};

/// What happens to a packet that lost its path (destroyed on a cut wire,
/// stranded in a queue for a dead port, or routed onto a link that no
/// longer exists).
enum class FaultRecovery : std::uint8_t {
  kNone,     ///< drop permanently (static-routing baseline)
  kRetry,    ///< re-inject at the source NIC with exponential backoff
  kSalvage,  ///< recompute the rest of the route at the last healthy router
};

const char* to_string(FaultRecovery r);

struct FaultConfig {
  /// Executed in (time, list-order) order. Every entry is validated when a
  /// run starts: an entry timed after the run end or naming an out-of-range
  /// or non-adjacent link/router is an ArgumentError locating the entry
  /// (they used to vanish silently). Empty = layer fully inert.
  std::vector<FaultEvent> schedule;

  FaultRecovery recovery = FaultRecovery::kSalvage;

  /// Rebuild the routing tables on every fault event (fault-aware
  /// rerouting). Off = static tables: traffic keeps aiming at dead links,
  /// the paper-pessimal baseline.
  bool reroute = true;

  /// Source-retry policy (recovery == kRetry): per-packet attempt budget
  /// and the base delay, doubled on every attempt. Deliberately RNG-free so
  /// retries stay deterministic.
  int max_retries = 8;
  TimePs retry_backoff = ns(500);

  /// Livelock guard: a packet whose traversed plus remaining hops would
  /// exceed this is dropped instead of salvaged. 0 = auto (4 * diameter + 4).
  int hop_limit = 0;

  /// No-progress watchdog period; 0 disables. Active on every run (even
  /// with an empty schedule) and perturbation-free by construction: the
  /// check reads one counter and never touches the RNG or event ordering.
  TimePs watchdog_interval = us(50);

  /// When > 0, delivered bytes are additionally accumulated into buckets of
  /// this width (FaultStats::delivered_bytes_buckets) — the degradation-
  /// and-recovery curve of bench_ablation_transient_faults.
  TimePs recovery_sample = 0;

  /// Modeled control plane (docs/resilience.md, "Detection and
  /// propagation"). Off (default): oracle faults — every router and the
  /// shared routing table learn about a fault the instant it happens,
  /// exactly the pre-propagation behavior, bit-identical by test. On: a
  /// fault is physical first and known later — each attached router
  /// detects it only after detection_delay (missed-credit heuristic), then
  /// floods a link-state update hop-by-hop over surviving wires, so
  /// routing state is transiently inconsistent across the network.
  bool propagation = false;

  /// How long an attached router takes to notice a dead (or restored)
  /// link: the modeled missed-credit timeout (propagation only).
  TimePs detection_delay = us(1);

  /// Per-hop processing delay of a flooded link-state update, added on top
  /// of the wire latency (propagation only).
  TimePs flood_process = ns(100);

  /// Per-packet budget of local-view detours while tables disagree: a
  /// packet whose salvage paths all cross links the router believes dead
  /// may be misrouted to a believed-live neighbor at most this many times
  /// before falling back to drop/retry. The hop_limit above acts as the
  /// TTL-style loop guard on top (propagation only).
  int misroute_limit = 4;

  bool enabled() const { return !schedule.empty(); }
  bool propagation_enabled() const { return propagation && enabled(); }
};

/// State captured when the watchdog declares a run wedged.
struct WatchdogSnapshot {
  TimePs time = -1;              ///< simulated time of the trigger, -1 = never fired
  std::int64_t in_flight = 0;    ///< packets inside the network or awaiting retry
  std::int64_t nic_backlog = 0;  ///< generated-but-not-injected packets
  int stalled_heads = 0;         ///< registered VOQ heads that cannot be granted
  int zero_credit_vcs = 0;       ///< (network out-port, VC) pairs without packet credit
};

/// Control-plane convergence accounting (FaultConfig::propagation only; all
/// zero otherwise, and the JSON/metrics block is omitted). Latencies are
/// measured from the physical fault time. "Consistency" for one update means
/// every router alive at the fault instant has learned it; means are
/// computed at serialization time from the sums kept here.
struct ConvergenceStats {
  std::int64_t updates = 0;       ///< link-state updates originated
  std::int64_t converged = 0;     ///< updates every eligible router learned
  std::int64_t detections = 0;    ///< local detections (missed-credit timeouts)
  std::int64_t flood_messages = 0;  ///< link-state messages put on the wire
  std::int64_t routers_reached = 0;  ///< sum over updates of flood span
  std::int64_t misroutes = 0;     ///< local-view detours taken on stale tables
  std::int64_t budget_drops = 0;  ///< packets that exhausted misroute_limit
  TimePs detection_latency_sum = 0;  ///< over `detections`
  TimePs detection_latency_max = 0;
  /// Per-(router, update) lag between the physical fault and the router
  /// learning it — the table-epoch lag; summed over `routers_reached`.
  TimePs epoch_lag_sum = 0;
  TimePs epoch_lag_max = 0;
  TimePs consistency_time_sum = 0;  ///< over `converged`
  TimePs consistency_time_max = 0;
};

/// Per-run fault accounting, attached by value to OpenLoopResult and
/// ExchangeResult and exported through bench_common --json.
struct FaultStats {
  bool enabled = false;               ///< schedule was non-empty
  std::int64_t faults_applied = 0;    ///< schedule events executed
  /// Drop events: wire destructions, stranded-queue drops, hop-limit and
  /// retry-budget exhaustions. A packet dropped and later re-injected
  /// counts here once per drop.
  std::int64_t packets_dropped = 0;
  std::int64_t packets_retried = 0;   ///< successful source re-injections
  std::int64_t packets_lost = 0;      ///< permanently gone (no retry left)
  std::int64_t reroutes = 0;          ///< salvage reroutes at a mid-path router
  /// Ordered router pairs with no surviving path, maximum over the run
  /// (0 when the network never disconnected or rerouting was off).
  std::int64_t unreachable_pairs = 0;
  bool wedged = false;                ///< the watchdog terminated the run
  WatchdogSnapshot watchdog;

  /// Delivered bytes per recovery_sample bucket (empty when sampling off).
  std::vector<std::int64_t> delivered_bytes_buckets;
  TimePs bucket_width = 0;

  ConvergenceStats convergence;  ///< propagation runs only, zero otherwise
};

/// Validates every schedule entry against the topology and the run window:
/// ids must be in range, link endpoints adjacent, and times within
/// [0, run_end] (run_until executes events at exactly run_end, so only
/// strictly-later times can never fire). Violations throw ArgumentError
/// naming the entry index and its rendering. Additionally warns once on
/// stderr when a non-empty schedule fires entirely before `warmup_end` —
/// legal, but the measured window then sees no fault at all.
void validate_fault_schedule(const Topology& topo, const std::vector<FaultEvent>& schedule,
                             TimePs run_end, TimePs warmup_end);

/// Random fault burst: `count` distinct router-to-router links of `topo` go
/// down at `at`; when `restore_after` > 0 each comes back up at
/// `at + restore_after`. Link choice is driven by its own SplitMix64/xoshiro
/// stream over `seed` (pass SimConfig::seed), independent of the run's RNG.
std::vector<FaultEvent> make_link_burst(const Topology& topo, TimePs at, int count,
                                        std::uint64_t seed, TimePs restore_after = 0);

/// Human-readable one-liner ("link 3-17 down @12.0us"), for bench logs.
std::string to_string(const FaultEvent& e);

}  // namespace d2net
