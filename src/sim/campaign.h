// Declarative experiment campaigns (see docs/campaigns.md).
//
// A campaign spec is a committed JSON file describing a matrix of
// {topology, routing, traffic, loads, fault schedule} combinations; the
// d2net_campaign driver expands it into the exact SweepSeriesSpec /
// exchange-table work the hand-written bench binaries construct in code,
// and executes it through the same SweepRunner journal/resume/deadline
// layer. The porting contract is byte-identity: a campaign spec ported
// from a bench binary must reproduce that binary's --json output
// byte-for-byte (enforced by scripts/ci.sh stage 6), so the expansion
// rules below mirror the benches' construction order precisely:
//
//  - Load sweeps expand system-major, series-minor: for each selected
//    system, one SweepSeriesSpec per series entry, in spec order. That is
//    the loop order of bench_fig6_oblivious (labels and point indices —
//    and therefore derived seeds and journal keys — depend on it).
//  - A sweep's optional `grid` axis multiplies each series entry by the
//    grid values, series-major grid-minor, substituting {grid} in labels
//    ("nI=4" / "c=0.25") — the loop order of the adaptive panel benches
//    (bench_fig8_sf_adaptive_th and friends).
//  - Worst-case traffic builds its permutation from a fresh Rng seeded
//    with the invocation seed per system, matching the benches.
//  - seed_mode "base" pins every point of the sweep to the invocation
//    seed (SweepSeriesSpec::seed_override) — the policy of the ported
//    serial benches; "derived" (default) uses the per-point SplitMix64
//    stream.
//  - Fault bursts compute their times with the benches' integer
//    arithmetic: burst at warmup + (duration - warmup) / at_div, restored
//    after (duration - warmup) / restore_div (0 = permanent), recovery
//    sampled in duration / sample_div buckets.
//
// Parsing is strict (unknown keys, bad enums and empty matrices are
// ArgumentErrors naming the offending spec path): a silently ignored typo
// in a committed spec would quietly simulate the wrong experiment.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "routing/factory.h"
#include "routing/minimal_table.h"
#include "sim/exchange.h"
#include "sim/sweep_runner.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace d2net {

/// One evaluated system: a display label plus the topology spec strings
/// (topology/spec.h grammar) for the default and --full scales.
struct CampaignSystem {
  std::string label;
  std::string topology;       ///< e.g. "sf:q=7"
  std::string topology_full;  ///< --full variant; "" = same as `topology`
};

enum class CampaignTraffic {
  kUniform,    ///< UniformTraffic
  kWorstCase,  ///< make_worst_case (per-topology adversarial permutation)
  kShift,      ///< make_node_shift by `shift` nodes
};

const char* to_string(CampaignTraffic t);

/// Random link burst (make_link_burst), with times expressed as divisors of
/// the run window so one spec scales across --duration-us/--full.
struct CampaignFault {
  double frac = 0.0;    ///< fraction of links in the burst (count >= 1)
  int at_div = 4;       ///< burst at warmup + (duration - warmup) / at_div
  int restore_div = 0;  ///< restore after (duration - warmup) / restore_div; 0 = permanent
  int sample_div = 0;   ///< recovery buckets of duration / sample_div; 0 = off
};

/// One series of a sweep. `label` may contain the placeholders {system}
/// and {routing} — and, on grid sweeps, {grid} — substituted at expansion
/// time.
struct CampaignSeries {
  std::string label;
  RoutingStrategy strategy = RoutingStrategy::kMinimal;
  /// UGAL parameter overrides; absent fields keep the paper defaults for
  /// the topology (default_ugal_params).
  std::optional<int> ni;
  std::optional<double> c;
  /// Fault-mode contrast knobs (meaningful only when the sweep has a
  /// fault): what happens to packets that lost their path, and whether
  /// routing tables rebuild on fault events.
  FaultRecovery recovery = FaultRecovery::kSalvage;
  bool reroute = true;
  /// Modeled control plane (requires a sweep fault): presence of
  /// detection_us enables FaultConfig::propagation with that detection
  /// timeout; flood_hop_us overrides the per-hop flood processing delay.
  std::optional<double> detection_us;
  std::optional<double> flood_hop_us;
};

/// Parameter-grid axis of a load sweep: crosses every series entry with
/// each value of one UGAL knob — the "vary nI" / "vary c" panels of the
/// adaptive benches (Fig. 8/10/12 shape). Expansion is series-major,
/// grid-minor: for each series entry, one expanded series per grid value
/// in spec order, with the value substituted for {grid} in the label
/// ("nI=4", "c=0.25").
struct CampaignGrid {
  bool is_ni = true;           ///< grid over `ni` (else over `c`)
  std::vector<double> values;  ///< integers >= 1 when is_ni, > 0 otherwise
};

enum class CampaignSweepKind {
  kLoadSweep,  ///< open-loop load sweep (Fig. 6-12 shape)
  kExchange,   ///< all-to-all exchange table (Fig. 13 shape)
};

struct CampaignSweep {
  std::string title;  ///< must contain {system} when per_system
  CampaignSweepKind kind = CampaignSweepKind::kLoadSweep;
  /// System labels to include; empty = every campaign system, in order.
  std::vector<std::string> systems;
  /// One printed sweep (and journal scope) per system instead of one big
  /// sweep with all systems' series — the ablation benches' shape.
  bool per_system = false;
  /// "derived" (false): per-point SplitMix64 seeds. "base" (true): every
  /// point runs on the invocation seed, as the ported serial benches did.
  bool base_seed = false;
  std::vector<CampaignSeries> series;

  // --- load sweeps ---
  CampaignTraffic traffic = CampaignTraffic::kUniform;
  int shift = 0;  ///< node shift for traffic == kShift
  std::vector<double> loads;
  std::optional<CampaignFault> fault;
  std::optional<CampaignGrid> grid;

  // --- exchanges ---
  std::int64_t bytes_per_pair = 7680;
  A2aOrder order = A2aOrder::kShuffled;
  double time_limit_us = 5'000'000.0;
};

struct CampaignSpec {
  std::string name;  ///< report/bench name (BenchReport "bench" field)
  /// Optional top-level "engine" key ("packet" | "flow"): pins the campaign
  /// to one simulation engine. When set it overrides the driver's --engine
  /// flag — the spec describes the experiment, the flags describe the
  /// invocation scale. Specs selecting "flow" are validated against
  /// packet-only features at parse time (fault schedules fail with a
  /// path-qualified error); absent = the driver's flag (default packet).
  std::optional<SimEngine> engine;
  std::vector<CampaignSystem> systems;
  std::vector<CampaignSweep> sweeps;
};

/// Parses and validates a campaign spec document. Throws ArgumentError —
/// naming `where` and the offending spec path — on malformed JSON, unknown
/// keys, bad enum tokens, duplicate labels/titles, or an empty matrix.
CampaignSpec parse_campaign_spec(std::string_view text,
                                 const std::string& where = "campaign spec");

/// Invocation-scale parameters (the driver's standard flags).
struct CampaignParams {
  bool full = false;
  std::uint64_t seed = 1;
  TimePs duration = 0;
  TimePs warmup = 0;
};

/// One expanded load sweep: run through run_and_print_sweep under `title`
/// as the journal scope.
struct CampaignLoadSweep {
  std::string title;
  std::vector<SweepSeriesSpec> series;
};

/// One row of an expanded exchange table.
struct CampaignExchangeRow {
  std::string system;
  RoutingStrategy strategy = RoutingStrategy::kMinimal;
  const Topology* topo = nullptr;
};

/// One expanded exchange sweep: run through bench::run_exchange_table.
struct CampaignExchangeSweep {
  std::string title;  ///< base title (the runner appends bytes/order)
  std::int64_t bytes_per_pair = 0;
  A2aOrder order = A2aOrder::kShuffled;
  TimePs time_limit = 0;
  std::vector<CampaignExchangeRow> rows;
};

/// One executable step, in spec order. Exactly one member is engaged.
struct CampaignStep {
  std::optional<CampaignLoadSweep> load;
  std::optional<CampaignExchangeSweep> exchange;
};

/// The expanded campaign. Owns every object the steps reference
/// (topologies, minimal tables, traffic patterns, fault schedules), so it
/// must outlive their execution. Not copyable — steps hold pointers into
/// the owned storage.
struct ExpandedCampaign {
  ExpandedCampaign() = default;
  ExpandedCampaign(const ExpandedCampaign&) = delete;
  ExpandedCampaign& operator=(const ExpandedCampaign&) = delete;
  ExpandedCampaign(ExpandedCampaign&&) = default;
  ExpandedCampaign& operator=(ExpandedCampaign&&) = default;

  std::vector<CampaignStep> steps;

  /// Owned backing storage (deque: element addresses are stable across
  /// push_back, and SweepSeriesSpec/CampaignExchangeRow keep raw pointers
  /// into it).
  std::deque<Topology> topologies;
  std::vector<std::shared_ptr<const MinimalTable>> tables;
  std::deque<std::unique_ptr<TrafficPattern>> patterns;
};

/// Expands the matrix into concrete, executable steps (topologies built,
/// tables shared per system, patterns constructed, fault times resolved).
/// Throws ArgumentError on a spec that references an unknown system or
/// whose topology spec string does not parse.
ExpandedCampaign expand_campaign(const CampaignSpec& spec, const CampaignParams& params);

// ------------------------------------------------- multi-worker campaigns
// (see docs/campaigns.md, "Distributed campaigns")

/// The composed title an exchange table is printed and journaled under —
/// "<base> (<bytes> B/pair, <order>)". One function shared by the exchange
/// runner (scope registration, row keys) and the merge step (expected-key
/// enumeration): the two must never drift apart.
std::string exchange_table_title(const std::string& title_base,
                                 std::int64_t bytes_per_pair, A2aOrder order);

/// Number of flattened points of one step: series x loads for a load
/// sweep (the SweepRunner flattening order), rows for an exchange table.
std::size_t step_point_count(const CampaignStep& step);

/// The journal scope (key prefix) of one step: the sweep title, or the
/// composed exchange table title.
std::string step_scope(const CampaignStep& step);

/// One journal scope with its point count, in campaign execution order.
/// Journal keys of the scope are "<scope>#0" .. "<scope>#<points-1>".
struct CampaignScope {
  std::string scope;
  std::size_t points = 0;
};

/// Every step's scope + point count, in spec order: the campaign's full
/// deterministic key space (what the merge step enumerates).
std::vector<CampaignScope> campaign_scopes(const ExpandedCampaign& plan);

/// One contiguous shard of the campaign's flattened point list: points
/// [begin, end) of step `step`. Shards never span steps, so a worker
/// executing a shard touches exactly one journal scope.
struct CampaignShard {
  int id = 0;
  std::size_t step = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Splits the campaign into contiguous shards of at most `points_per_shard`
/// points each (>= 1), step by step in spec order. The plan is a pure
/// function of (expanded campaign, points_per_shard), so every worker
/// invoked with the same spec and --shard-points computes the same shards
/// (enforced on disk by ShardClaimer::pin_plan).
std::vector<CampaignShard> plan_campaign_shards(const ExpandedCampaign& plan,
                                                int points_per_shard);

/// Outcome of merging per-worker journals (see merge_worker_journals).
struct CampaignMergeStats {
  std::size_t workers = 0;     ///< worker journals read
  std::size_t expected = 0;    ///< points the campaign defines
  std::size_t merged = 0;      ///< entries written to the merged journal
  std::size_t missing = 0;     ///< expected keys no worker recorded
  std::size_t duplicates = 0;  ///< keys recorded by more than one worker
  std::size_t failed = 0;      ///< merged entries with status "failed"
};

/// K-way merges the per-worker journals under `<dir>/workers/*/` into the
/// top-level `<dir>/journal.jsonl`, in campaign expansion order (the order
/// `scopes` lists). Duplicate keys — the at-least-once residue of a lease
/// steal racing its owner's heartbeat — are deduplicated with a
/// deterministic winner: a completed entry beats a failed one, ties go to
/// the lexicographically first worker directory (results are deterministic
/// functions of the seed, so completed duplicates carry identical
/// payloads). Worker journals whose manifest does not match the top-level
/// manifest are a hard error (never silently mix configurations); torn
/// lines are skipped exactly as resume skips them. Failed entries are
/// merged, not dropped — the follow-up resumed run re-executes and reports
/// them just as a solo run would. The merged file is written to a temp
/// name and atomically renamed into place.
CampaignMergeStats merge_worker_journals(const std::string& dir,
                                         const std::vector<CampaignScope>& scopes);

}  // namespace d2net
