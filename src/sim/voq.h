// Intrusive virtual-output-queue storage for the simulator hot path.
//
// Every (input port, VC, output port) FIFO of a router is one 16-byte
// VoqCell in a single contiguous per-simulator vector; queue membership is
// threaded through the packet-pool slots themselves (Packet::vnext /
// Packet::eligible_at), so pushing or popping a packet never allocates and
// walking a queue is a chain of sequential pool-slot loads. The cells that
// currently have an eligible head requesting an output port form that
// port's ready list — an intrusive singly-linked FIFO through
// VoqCell::next_ready whose pop-head / append-tail discipline reproduces
// the round-robin arbitration order of the previous deque-based
// implementation exactly (grant at position i == erase + rotate by i).
//
// The operations live here as free functions over (PacketPool, cell array)
// so bench_micro_core can exercise them in isolation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "sim/packet.h"

namespace d2net {

/// One virtual output queue: FIFO of pooled packets plus its ready-list
/// linkage. `in_port` / `vc` identify the input buffer the cell belongs to
/// (written once at construction) so a ready-list entry alone tells the
/// arbiter where to return credits.
struct VoqCell {
  std::int32_t head = -1;        ///< pool id of the queue head, -1 = empty
  std::int32_t tail = -1;        ///< pool id of the queue tail
  std::int32_t next_ready = -1;  ///< next cell index in the out-port ready list
  std::int16_t in_port = 0;
  std::uint8_t vc = 0;
  /// Head registered in the out port's ready list (mirror of the old
  /// per-output in_ready bitmap).
  std::uint8_t in_ready = 0;
};
static_assert(sizeof(VoqCell) == 16);

/// Intrusive FIFO of VoqCells awaiting arbitration at one output port.
struct ReadyList {
  std::int32_t head = -1;  ///< cell index, -1 = empty
  std::int32_t tail = -1;
  std::int32_t count = 0;

  void clear() {
    head = tail = -1;
    count = 0;
  }
};

inline bool voq_empty(const VoqCell& cell) { return cell.head < 0; }

/// Appends `pkt_id` to the cell's FIFO; returns true when it became the new
/// head (the caller then schedules its eligibility event).
inline bool voq_push(PacketPool& pool, VoqCell& cell, int pkt_id, TimePs eligible_at) {
  Packet& pkt = pool[pkt_id];
  pkt.vnext = -1;
  pkt.eligible_at = eligible_at;
  const bool was_empty = cell.head < 0;
  if (was_empty) {
    cell.head = pkt_id;
  } else {
    pool[cell.tail].vnext = pkt_id;
  }
  cell.tail = pkt_id;
  return was_empty;
}

/// Pops and returns the FIFO head (the cell must be non-empty).
inline int voq_pop(PacketPool& pool, VoqCell& cell) {
  D2NET_HOT_ASSERT(cell.head >= 0, "voq_pop on empty VOQ");
  const int pkt_id = cell.head;
  cell.head = pool[pkt_id].vnext;
  if (cell.head < 0) cell.tail = -1;
  return pkt_id;
}

/// Appends cell `ci` to the ready list tail.
inline void ready_append(ReadyList& rl, std::vector<VoqCell>& cells, std::int32_t ci) {
  cells[ci].next_ready = -1;
  if (rl.head < 0) {
    rl.head = ci;
  } else {
    cells[rl.tail].next_ready = ci;
  }
  rl.tail = ci;
  ++rl.count;
}

/// Pops and returns the ready list head (must be non-empty).
inline std::int32_t ready_pop(ReadyList& rl, std::vector<VoqCell>& cells) {
  D2NET_HOT_ASSERT(rl.head >= 0, "ready_pop on empty ready list");
  const std::int32_t ci = rl.head;
  rl.head = cells[ci].next_ready;
  if (rl.head < 0) rl.tail = -1;
  --rl.count;
  return ci;
}

}  // namespace d2net
