#include "sim/traffic.h"

#include <algorithm>

#include "common/error.h"
#include "routing/minimal_table.h"
#include "topology/topology.h"

namespace d2net {

UniformTraffic::UniformTraffic(int num_nodes) : num_nodes_(num_nodes) {
  D2NET_REQUIRE(num_nodes >= 2, "uniform traffic needs >= 2 nodes");
}

int UniformTraffic::dest(int src_node, Rng& rng) const {
  // Uniform over the other N-1 nodes.
  const int d = static_cast<int>(rng.next_below(num_nodes_ - 1));
  return d >= src_node ? d + 1 : d;
}

PermutationTraffic::PermutationTraffic(std::vector<int> dest_of, std::string name)
    : dest_of_(std::move(dest_of)), name_(std::move(name)) {
  for (std::size_t i = 0; i < dest_of_.size(); ++i) {
    D2NET_REQUIRE(dest_of_[i] >= 0 && dest_of_[i] < static_cast<int>(dest_of_.size()) &&
                      dest_of_[i] != static_cast<int>(i),
                  "invalid permutation entry");
  }
}

int PermutationTraffic::dest(int src_node, Rng&) const { return dest_of_[src_node]; }

std::unique_ptr<PermutationTraffic> make_node_shift(int num_nodes, int shift) {
  D2NET_REQUIRE(num_nodes >= 2, "shift traffic needs >= 2 nodes");
  D2NET_REQUIRE(shift % num_nodes != 0, "zero shift would self-send");
  std::vector<int> dest(num_nodes);
  for (int i = 0; i < num_nodes; ++i) dest[i] = (i + shift) % num_nodes;
  return std::make_unique<PermutationTraffic>(std::move(dest),
                                              "shift+" + std::to_string(shift));
}

std::unique_ptr<PermutationTraffic> make_random_permutation(int num_nodes, Rng& rng) {
  D2NET_REQUIRE(num_nodes >= 2, "permutation needs >= 2 nodes");
  std::vector<int> dest(num_nodes);
  for (int i = 0; i < num_nodes; ++i) dest[i] = i;
  rng.shuffle(dest);
  // Remove fixed points by swapping with a neighbor (cyclically).
  for (int i = 0; i < num_nodes; ++i) {
    if (dest[i] == i) std::swap(dest[i], dest[(i + 1) % num_nodes]);
  }
  return std::make_unique<PermutationTraffic>(std::move(dest), "random-permutation");
}

namespace {

/// Greedy construction of the SF worst case (Fig. 5): repeatedly pick
/// unassigned routers A and a neighbor B, a destination C at distance 2
/// from A whose unique minimal path runs through B, and a destination D at
/// distance 2 from B whose unique minimal path runs through C. The B->C
/// link then carries the 2p flows of both router pairs.
std::vector<int> slim_fly_wc_router_permutation(const Topology& topo,
                                                const MinimalTable& table, Rng& rng) {
  const int n = topo.num_routers();
  std::vector<int> dst_of(n, -1);
  std::vector<bool> dst_used(n, false);

  auto unique_via = [&](int from, int to, int via) {
    const auto nh = table.next_hops(from, to);
    return nh.size() == 1 && nh[0] == via;
  };

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);

  for (int a : order) {
    if (dst_of[a] >= 0) continue;
    bool placed = false;
    for (int b : topo.neighbors(a)) {
      if (dst_of[b] >= 0) continue;
      for (int c : topo.neighbors(b)) {
        if (dst_used[c] || table.distance(a, c) != 2 || !unique_via(a, c, b)) continue;
        for (int d : topo.neighbors(c)) {
          if (dst_used[d] || d == a || table.distance(b, d) != 2 || !unique_via(b, d, c)) {
            continue;
          }
          // Found the overlapping pair of routes A->B->C and B->C->D.
          dst_of[a] = c;
          dst_used[c] = true;
          dst_of[b] = d;
          dst_used[d] = true;
          placed = true;
          break;
        }
        if (placed) break;
      }
      if (placed) break;
    }
  }
  // Fallback for leftover routers: pair them to any free destination at
  // distance 2 if possible, else any free destination.
  for (int a : order) {
    if (dst_of[a] >= 0) continue;
    int pick = -1;
    for (int c = 0; c < n; ++c) {
      if (dst_used[c] || c == a) continue;
      if (table.distance(a, c) == 2) {
        pick = c;
        break;
      }
      if (pick < 0) pick = c;
    }
    D2NET_ASSERT(pick >= 0, "no destination left for router pairing");
    dst_of[a] = pick;
    dst_used[pick] = true;
  }
  return dst_of;
}

/// Router-level permutation -> node-level permutation (node i of the source
/// router talks to node i of the destination router).
std::vector<int> router_to_node_permutation(const Topology& topo,
                                            const std::vector<int>& router_dst) {
  std::vector<int> dest(topo.num_nodes(), -1);
  for (int r = 0; r < topo.num_routers(); ++r) {
    const int d = router_dst[r];
    if (d < 0) continue;
    const int p_src = topo.endpoints_of(r);
    const int p_dst = topo.endpoints_of(d);
    for (int i = 0; i < p_src; ++i) {
      dest[topo.node_base(r) + i] = topo.node_base(d) + (i % std::max(1, p_dst));
    }
  }
  return dest;
}

}  // namespace

std::unique_ptr<PermutationTraffic> make_worst_case(const Topology& topo,
                                                    const MinimalTable& table, Rng& rng) {
  switch (topo.kind()) {
    case TopologyKind::kSlimFly: {
      const std::vector<int> router_dst = slim_fly_wc_router_permutation(topo, table, rng);
      auto dest = router_to_node_permutation(topo, router_dst);
      return std::make_unique<PermutationTraffic>(std::move(dest), "wc-sf-pairing");
    }
    case TopologyKind::kMlfm:
    case TopologyKind::kOft: {
      // Router shift by one = node shift by p (Section 4.2); the paper's
      // "shift value of h" (MLFM) / "offset of k" (OFT) counts endpoints.
      const int p = topo.endpoints_of(topo.edge_routers().front());
      return make_node_shift(topo.num_nodes(), p);
    }
    default: {
      // Generic adversary: router shift by one.
      const int p = topo.endpoints_of(topo.edge_routers().front());
      return make_node_shift(topo.num_nodes(), std::max(1, p));
    }
  }
}

}  // namespace d2net
