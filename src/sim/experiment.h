// Experiment orchestration: ties a topology to its minimal table, routing
// algorithm, VC provisioning and a simulator instance, and provides the
// load-sweep / exchange drivers the benches are built from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flowsim/flow_sim.h"
#include "routing/factory.h"
#include "routing/minimal_table.h"
#include "sim/exchange.h"
#include "sim/network.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace d2net {

/// VCs a strategy needs on a given topology (Section 3.4): minimal routing
/// uses hop-indexed VCs on the SF (2) and a single VC on the SSPTs;
/// indirect/adaptive routing doubles both.
int num_vcs_needed(const Topology& topo, const MinimalTable& table, RoutingStrategy strategy);

/// Owns the full simulation stack for one (topology, routing) combination.
/// The adaptive algorithms read the simulator's live queue state.
///
/// SimConfig::engine picks the backend: the per-packet event simulator
/// (kPacket, the default) or the flow-level max-min-fair rate engine
/// (kFlow; see docs/flow_engine.md). Only the selected engine is
/// constructed — a flow run at 10^5+ endpoints must never pay for the
/// packet engine's per-port VOQ arrays (gigabytes at that scale) — and
/// both engines see the identical topology/table/routing/traffic inputs.
class SimStack {
 public:
  SimStack(const Topology& topo, RoutingStrategy strategy, const SimConfig& cfg,
           std::optional<UgalParams> params = std::nullopt);

  /// Shares a precomputed minimal table instead of rebuilding the all-pairs
  /// BFS per stack — the parallel sweep runner constructs one stack per
  /// in-flight point, all referencing one immutable table per system.
  /// `intermediates` optionally shares the Valiant candidate set the same
  /// way (null = built privately when the strategy needs one).
  SimStack(const Topology& topo, std::shared_ptr<const MinimalTable> table,
           RoutingStrategy strategy, const SimConfig& cfg,
           std::optional<UgalParams> params = std::nullopt,
           SharedIntermediates intermediates = nullptr);

  OpenLoopResult run_open_loop(const TrafficPattern& pattern, double load, TimePs duration,
                               TimePs warmup);
  ExchangeResult run_exchange(const ExchangePlan& plan, TimePs time_limit);

  /// Closed-form fluid all-to-all completion at scales where the per-pair
  /// ExchangePlan cannot be materialized; flow engine only (see
  /// flowsim::FlowSim::run_fluid_all_to_all).
  ExchangeResult run_fluid_all_to_all(std::int64_t bytes_per_pair);

  const Topology& topology() const { return topo_; }
  const MinimalTable& table() const { return *table_; }
  const RoutingAlgorithm& routing() const { return *algo_; }
  /// The packet engine instance; rejects flow-engine stacks (callers that
  /// poke packet internals — tracing, channel stats, shard counts — have
  /// no flow-level counterpart to fall back on).
  NetworkSim& sim();
  /// Engine selected by the config this stack was built with.
  SimEngine engine() const { return cfg_engine_; }

 private:
  const Topology& topo_;
  std::shared_ptr<const MinimalTable> table_;
  SimEngine cfg_engine_;
  std::unique_ptr<NetworkSim> packet_;
  std::unique_ptr<flowsim::FlowSim> flow_;
  std::unique_ptr<RoutingAlgorithm> algo_;
  /// Private mutable table copy for fault-aware rerouting: allocated only
  /// when the config schedules faults with reroute on, so concurrent sweep
  /// points can keep sharing the immutable healthy table. The routing
  /// algorithm and the simulator both point at this copy, which the sim
  /// invalidates incrementally on every fault event.
  std::unique_ptr<MinimalTable> fault_table_;
};

/// One row of a Fig. 6-12 style sweep.
struct SweepPoint {
  double offered = 0.0;
  OpenLoopResult result;
  /// Simulation attempts consumed (> 1 after deadline/exception retries;
  /// see docs/durable_sweeps.md).
  int attempts = 1;
  /// True when every attempt ended in an exception; `error` carries the
  /// last exception text and `result` is default-constructed. Only set
  /// under a journaled run (otherwise the exception propagates).
  bool failed = false;
  std::string error;
  /// True when this point was not simulated but replayed from a journal;
  /// restored_json is the rendered result fragment recorded by the original
  /// run, spliced verbatim into reports for byte-identical output.
  bool restored = false;
  std::string restored_json;
};

/// Runs the open-loop simulation at each offered load.
std::vector<SweepPoint> run_load_sweep(SimStack& stack, const TrafficPattern& pattern,
                                       const std::vector<double>& loads, TimePs duration,
                                       TimePs warmup);

/// Offered load of the last point that still accepts >= `threshold` of its
/// offered traffic — the "throughput saturation point" reported in Fig. 6.
double saturation_point(const std::vector<SweepPoint>& sweep, double threshold = 0.95);

/// Default load grids.
std::vector<double> uniform_load_grid();     ///< coarse 0.1 .. 1.0
std::vector<double> adversarial_load_grid(); ///< dense at low loads

}  // namespace d2net
