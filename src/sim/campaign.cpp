#include "sim/campaign.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/fault.h"
#include "topology/spec.h"

namespace d2net {

const char* to_string(CampaignTraffic t) {
  switch (t) {
    case CampaignTraffic::kUniform: return "uniform";
    case CampaignTraffic::kWorstCase: return "worst_case";
    case CampaignTraffic::kShift: return "shift";
  }
  return "?";
}

namespace {

std::string replace_all(std::string s, std::string_view token, const std::string& value) {
  std::size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    s.replace(pos, token.size(), value);
    pos += value.size();
  }
  return s;
}

std::string substitute(const std::string& s, const std::string& system,
                       const std::string& routing) {
  return replace_all(replace_all(s, "{system}", system), "{routing}", routing);
}

/// A series label with {routing} resolved ({system} is sweep-wide, so this
/// is the per-sweep uniqueness key).
std::string expanded_series_label(const std::string& tmpl, RoutingStrategy s) {
  return replace_all(tmpl, "{routing}", to_string(s));
}

/// The label fragment one grid value substitutes for {grid}: the adaptive
/// benches' convention ("nI=4", "c=0.25" — c with two decimals, fmt(v, 2)).
std::string grid_value_label(const CampaignGrid& g, double v) {
  char buf[32];
  if (g.is_ni) {
    std::snprintf(buf, sizeof buf, "nI=%d", static_cast<int>(v));
  } else {
    std::snprintf(buf, sizeof buf, "c=%.2f", v);
  }
  return buf;
}

// ------------------------------------------------------------ spec parsing
//
// Every helper threads the spec path ("sweeps[2].series[0]") through to the
// error text, so a typo in a committed spec is reported where it sits, not
// as a generic failure.

struct Parse {
  const std::string& where;

  [[noreturn]] void fail(const std::string& path, const std::string& msg) const {
    throw ArgumentError(where + ": " + path + ": " + msg);
  }

  const JsonValue* opt(const JsonValue& obj, const std::string& path, const char* key,
                       JsonValue::Kind kind) const {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return nullptr;
    if (v->kind != kind) {
      fail(path + "." + key, std::string("expected ") + to_string(kind) + ", got " +
                                 to_string(v->kind));
    }
    return v;
  }

  const JsonValue& req(const JsonValue& obj, const std::string& path, const char* key,
                       JsonValue::Kind kind) const {
    const JsonValue* v = opt(obj, path, key, kind);
    if (v == nullptr) fail(path, std::string("missing required key '") + key + "'");
    return *v;
  }

  std::int64_t req_int(const JsonValue& obj, const std::string& path,
                       const char* key) const {
    const JsonValue& v = req(obj, path, key, JsonValue::Kind::kNumber);
    if (!v.number_is_int) fail(path + "." + key, "expected an integer");
    return v.integer;
  }

  std::int64_t opt_int(const JsonValue& obj, const std::string& path, const char* key,
                       std::int64_t dflt) const {
    const JsonValue* v = opt(obj, path, key, JsonValue::Kind::kNumber);
    if (v == nullptr) return dflt;
    if (!v->number_is_int) fail(path + "." + key, "expected an integer");
    return v->integer;
  }

  bool opt_bool(const JsonValue& obj, const std::string& path, const char* key,
                bool dflt) const {
    const JsonValue* v = opt(obj, path, key, JsonValue::Kind::kBool);
    return v == nullptr ? dflt : v->boolean;
  }

  /// Rejects members outside `allowed`. Keys in `misplaced` get a targeted
  /// message (a load-sweep key on an exchange sweep and vice versa) instead
  /// of a generic "unknown key".
  void check_keys(const JsonValue& obj, const std::string& path,
                  std::initializer_list<const char*> allowed,
                  std::initializer_list<const char*> misplaced = {},
                  const char* misplaced_hint = "") const {
    for (const auto& [key, value] : obj.object) {
      (void)value;
      bool ok = false;
      for (const char* a : allowed) ok = ok || key == a;
      if (ok) continue;
      for (const char* m : misplaced) {
        if (key == m) fail(path, "key '" + key + "' is " + misplaced_hint);
      }
      fail(path, "unknown key '" + key + "'");
    }
  }

  template <typename T>
  T parse_enum(const std::string& path, const std::string& token,
               std::initializer_list<std::pair<const char*, T>> table,
               const char* what) const {
    for (const auto& [name, value] : table) {
      if (token == name) return value;
    }
    std::string valid;
    for (const auto& [name, value] : table) {
      (void)value;
      valid += valid.empty() ? "" : "|";
      valid += name;
    }
    fail(path, std::string("unknown ") + what + " '" + token + "' (expected " + valid + ")");
  }
};

RoutingStrategy parse_routing(const Parse& p, const std::string& path,
                              const std::string& s) {
  return p.parse_enum<RoutingStrategy>(
      path, s,
      {{"min", RoutingStrategy::kMinimal},
       {"valiant", RoutingStrategy::kValiant},
       {"ugal", RoutingStrategy::kUgal},
       {"ugal_th", RoutingStrategy::kUgalThreshold},
       {"ugal_g", RoutingStrategy::kUgalGlobal}},
      "routing");
}

CampaignSeries parse_series(const Parse& p, const std::string& path, const JsonValue& v,
                            const CampaignSweep& sweep) {
  if (!v.is_object()) p.fail(path, "expected an object");
  CampaignSeries out;
  if (sweep.kind == CampaignSweepKind::kExchange) {
    p.check_keys(v, path, {"label", "routing"},
                 {"recovery", "reroute", "ni", "c", "detection_us", "flood_hop_us"},
                 "only valid for load_sweep series");
  } else {
    p.check_keys(v, path,
                 {"label", "routing", "recovery", "reroute", "ni", "c", "detection_us",
                  "flood_hop_us"});
  }
  out.strategy =
      parse_routing(p, path + ".routing", p.req(v, path, "routing", JsonValue::Kind::kString).str);
  if (const JsonValue* l = p.opt(v, path, "label", JsonValue::Kind::kString)) {
    if (l->str.empty()) p.fail(path + ".label", "label must be non-empty");
    out.label = l->str;
  } else if (sweep.grid) {
    // Grid sweeps label their expanded series by the grid value alone, the
    // adaptive benches' convention ("nI=1", "nI=4", ...).
    out.label = "{grid}";
  } else {
    // The fig6 convention: "SF p=fl MIN", "MLFM INR", ...
    out.label = "{system} {routing}";
  }
  if (sweep.grid && out.label.find("{grid}") == std::string::npos) {
    p.fail(path + ".label",
           "series labels of a grid sweep must contain '{grid}' (the expanded "
           "series would otherwise collide)");
  }
  if (const JsonValue* r = p.opt(v, path, "recovery", JsonValue::Kind::kString)) {
    if (!sweep.fault) p.fail(path + ".recovery", "series 'recovery' requires a sweep 'fault'");
    out.recovery = p.parse_enum<FaultRecovery>(path + ".recovery", r->str,
                                               {{"none", FaultRecovery::kNone},
                                                {"retry", FaultRecovery::kRetry},
                                                {"salvage", FaultRecovery::kSalvage}},
                                               "recovery");
  }
  if (v.find("reroute") != nullptr) {
    if (!sweep.fault) p.fail(path + ".reroute", "series 'reroute' requires a sweep 'fault'");
    out.reroute = p.opt_bool(v, path, "reroute", true);
  }
  if (const JsonValue* ni = p.opt(v, path, "ni", JsonValue::Kind::kNumber)) {
    if (!ni->number_is_int || ni->integer < 1) p.fail(path + ".ni", "expected an integer >= 1");
    if (sweep.grid && sweep.grid->is_ni) {
      p.fail(path + ".ni", "the sweep grid already varies 'ni'");
    }
    out.ni = static_cast<int>(ni->integer);
  }
  if (const JsonValue* c = p.opt(v, path, "c", JsonValue::Kind::kNumber)) {
    if (c->number <= 0.0) p.fail(path + ".c", "expected a number > 0");
    if (sweep.grid && !sweep.grid->is_ni) {
      p.fail(path + ".c", "the sweep grid already varies 'c'");
    }
    out.c = c->number;
  }
  if (const JsonValue* d = p.opt(v, path, "detection_us", JsonValue::Kind::kNumber)) {
    if (!sweep.fault) {
      p.fail(path + ".detection_us", "series 'detection_us' requires a sweep 'fault'");
    }
    if (d->number <= 0.0) p.fail(path + ".detection_us", "expected a number > 0");
    out.detection_us = d->number;
  }
  if (const JsonValue* fh = p.opt(v, path, "flood_hop_us", JsonValue::Kind::kNumber)) {
    if (!out.detection_us) {
      p.fail(path + ".flood_hop_us", "series 'flood_hop_us' requires 'detection_us'");
    }
    if (fh->number < 0.0) p.fail(path + ".flood_hop_us", "expected a number >= 0");
    out.flood_hop_us = fh->number;
  }
  return out;
}

CampaignFault parse_fault(const Parse& p, const std::string& path, const JsonValue& v) {
  if (!v.is_object()) p.fail(path, "expected an object");
  p.check_keys(v, path, {"kind", "frac", "at_div", "restore_div", "sample_div"});
  if (const JsonValue* k = p.opt(v, path, "kind", JsonValue::Kind::kString)) {
    if (k->str != "link_burst") {
      p.fail(path + ".kind", "unknown fault kind '" + k->str + "' (expected link_burst)");
    }
  }
  CampaignFault out;
  out.frac = p.req(v, path, "frac", JsonValue::Kind::kNumber).number;
  if (out.frac <= 0.0 || out.frac > 1.0) p.fail(path + ".frac", "expected a fraction in (0, 1]");
  out.at_div = static_cast<int>(p.opt_int(v, path, "at_div", 4));
  if (out.at_div < 1) p.fail(path + ".at_div", "expected an integer >= 1");
  out.restore_div = static_cast<int>(p.opt_int(v, path, "restore_div", 0));
  if (out.restore_div < 0) p.fail(path + ".restore_div", "expected an integer >= 0");
  out.sample_div = static_cast<int>(p.opt_int(v, path, "sample_div", 0));
  if (out.sample_div < 0) p.fail(path + ".sample_div", "expected an integer >= 0");
  return out;
}

CampaignGrid parse_grid(const Parse& p, const std::string& path, const JsonValue& v) {
  if (!v.is_object()) p.fail(path, "expected an object");
  p.check_keys(v, path, {"param", "values"});
  CampaignGrid out;
  out.is_ni = p.parse_enum<bool>(path + ".param",
                                 p.req(v, path, "param", JsonValue::Kind::kString).str,
                                 {{"ni", true}, {"c", false}}, "grid param");
  const JsonValue& values = p.req(v, path, "values", JsonValue::Kind::kArray);
  if (values.array.empty()) p.fail(path + ".values", "grid values must be non-empty");
  for (std::size_t i = 0; i < values.array.size(); ++i) {
    const std::string ipath = path + ".values[" + std::to_string(i) + "]";
    const JsonValue& e = values.array[i];
    if (out.is_ni) {
      if (!e.is_number() || !e.number_is_int || e.integer < 1) {
        p.fail(ipath, "expected an integer >= 1");
      }
    } else if (!e.is_number() || e.number <= 0.0) {
      p.fail(ipath, "expected a number > 0");
    }
    out.values.push_back(e.number);
  }
  return out;
}

CampaignSweep parse_sweep(const Parse& p, const std::string& path, const JsonValue& v,
                          const CampaignSpec& spec) {
  if (!v.is_object()) p.fail(path, "expected an object");
  CampaignSweep out;
  if (const JsonValue* k = p.opt(v, path, "kind", JsonValue::Kind::kString)) {
    out.kind = p.parse_enum<CampaignSweepKind>(path + ".kind", k->str,
                                               {{"load_sweep", CampaignSweepKind::kLoadSweep},
                                                {"exchange", CampaignSweepKind::kExchange}},
                                               "sweep kind");
  }
  if (out.kind == CampaignSweepKind::kLoadSweep) {
    p.check_keys(v, path,
                 {"title", "kind", "systems", "per_system", "seed_mode", "series", "traffic",
                  "shift", "loads", "fault", "grid"},
                 {"bytes_per_pair", "order", "time_limit_us"},
                 "only valid for exchange sweeps");
  } else {
    p.check_keys(v, path,
                 {"title", "kind", "systems", "series", "bytes_per_pair", "order",
                  "time_limit_us"},
                 {"traffic", "shift", "loads", "fault", "per_system", "seed_mode", "grid"},
                 "only valid for load_sweep sweeps");
  }

  out.title = p.req(v, path, "title", JsonValue::Kind::kString).str;
  if (out.title.empty()) p.fail(path + ".title", "title must be non-empty");

  if (const JsonValue* sys = p.opt(v, path, "systems", JsonValue::Kind::kArray)) {
    if (sys->array.empty()) p.fail(path + ".systems", "system filter must be non-empty");
    for (std::size_t i = 0; i < sys->array.size(); ++i) {
      const std::string ipath = path + ".systems[" + std::to_string(i) + "]";
      if (!sys->array[i].is_string()) p.fail(ipath, "expected a system label string");
      const std::string& label = sys->array[i].str;
      const bool known = std::any_of(spec.systems.begin(), spec.systems.end(),
                                     [&](const CampaignSystem& s) { return s.label == label; });
      if (!known) p.fail(ipath, "unknown system '" + label + "'");
      if (std::count(out.systems.begin(), out.systems.end(), label) > 0) {
        p.fail(ipath, "duplicate system '" + label + "'");
      }
      out.systems.push_back(label);
    }
  }

  if (out.kind == CampaignSweepKind::kLoadSweep) {
    out.per_system = p.opt_bool(v, path, "per_system", false);
    const bool templated = out.title.find("{system}") != std::string::npos;
    if (out.per_system && !templated) {
      p.fail(path + ".title", "per_system sweeps need '{system}' in the title");
    }
    if (!out.per_system && templated) {
      p.fail(path + ".title", "'{system}' in the title requires per_system");
    }
    if (const JsonValue* sm = p.opt(v, path, "seed_mode", JsonValue::Kind::kString)) {
      out.base_seed = p.parse_enum<bool>(path + ".seed_mode", sm->str,
                                         {{"derived", false}, {"base", true}}, "seed_mode");
    }
    if (const JsonValue* t = p.opt(v, path, "traffic", JsonValue::Kind::kString)) {
      out.traffic = p.parse_enum<CampaignTraffic>(path + ".traffic", t->str,
                                                  {{"uniform", CampaignTraffic::kUniform},
                                                   {"worst_case", CampaignTraffic::kWorstCase},
                                                   {"shift", CampaignTraffic::kShift}},
                                                  "traffic");
    }
    if (out.traffic == CampaignTraffic::kShift) {
      out.shift = static_cast<int>(p.req_int(v, path, "shift"));
      if (out.shift < 1) p.fail(path + ".shift", "expected an integer >= 1");
    } else if (v.find("shift") != nullptr) {
      p.fail(path + ".shift", "'shift' requires traffic = shift");
    }
    const JsonValue& loads = p.req(v, path, "loads", JsonValue::Kind::kArray);
    if (loads.array.empty()) p.fail(path + ".loads", "load grid must be non-empty");
    for (std::size_t i = 0; i < loads.array.size(); ++i) {
      const std::string ipath = path + ".loads[" + std::to_string(i) + "]";
      if (!loads.array[i].is_number() || loads.array[i].number <= 0.0) {
        p.fail(ipath, "expected a load > 0");
      }
      out.loads.push_back(loads.array[i].number);
    }
    if (const JsonValue* f = v.find("fault")) {
      out.fault = parse_fault(p, path + ".fault", *f);
    }
    if (const JsonValue* g = v.find("grid")) {
      out.grid = parse_grid(p, path + ".grid", *g);
    }
  } else {
    out.bytes_per_pair = p.opt_int(v, path, "bytes_per_pair", 7680);
    if (out.bytes_per_pair < 1) p.fail(path + ".bytes_per_pair", "expected an integer >= 1");
    if (const JsonValue* o = p.opt(v, path, "order", JsonValue::Kind::kString)) {
      out.order = p.parse_enum<A2aOrder>(path + ".order", o->str,
                                         {{"staggered", A2aOrder::kStaggered},
                                          {"shuffled", A2aOrder::kShuffled}},
                                         "order");
    }
    if (const JsonValue* tl = p.opt(v, path, "time_limit_us", JsonValue::Kind::kNumber)) {
      if (tl->number <= 0.0) p.fail(path + ".time_limit_us", "expected a number > 0");
      out.time_limit_us = tl->number;
    }
  }

  const JsonValue& series = p.req(v, path, "series", JsonValue::Kind::kArray);
  if (series.array.empty()) p.fail(path + ".series", "series list must be non-empty");
  std::set<std::string> labels;
  for (std::size_t i = 0; i < series.array.size(); ++i) {
    const std::string ipath = path + ".series[" + std::to_string(i) + "]";
    CampaignSeries s = parse_series(p, ipath, series.array[i], out);
    // Uniqueness is judged with {routing} resolved: every series of a sweep
    // shares the same {system} substitution, so two series collide exactly
    // when their routing-resolved labels match (e.g. two default-labelled
    // "min" entries).
    const std::string resolved = expanded_series_label(s.label, s.strategy);
    if (!labels.insert(resolved).second) {
      p.fail(ipath + ".label", "duplicate series label '" + resolved + "'");
    }
    out.series.push_back(std::move(s));
  }
  return out;
}

}  // namespace

CampaignSpec parse_campaign_spec(std::string_view text, const std::string& where) {
  const JsonValue doc = parse_json(text, where);
  const Parse p{where};
  if (!doc.is_object()) p.fail("$", "campaign spec must be a JSON object");
  p.check_keys(doc, "$", {"name", "engine", "systems", "sweeps"});

  CampaignSpec out;
  out.name = p.req(doc, "$", "name", JsonValue::Kind::kString).str;
  if (out.name.empty()) p.fail("$.name", "name must be non-empty");

  if (const JsonValue* e = p.opt(doc, "$", "engine", JsonValue::Kind::kString)) {
    out.engine = p.parse_enum<SimEngine>("$.engine", e->str,
                                         {{"packet", SimEngine::kPacket},
                                          {"flow", SimEngine::kFlow}},
                                         "engine");
  }

  const JsonValue& systems = p.req(doc, "$", "systems", JsonValue::Kind::kArray);
  if (systems.array.empty()) p.fail("$.systems", "campaign needs at least one system");
  std::set<std::string> labels;
  for (std::size_t i = 0; i < systems.array.size(); ++i) {
    const std::string path = "$.systems[" + std::to_string(i) + "]";
    const JsonValue& v = systems.array[i];
    if (!v.is_object()) p.fail(path, "expected an object");
    p.check_keys(v, path, {"label", "topology", "topology_full"});
    CampaignSystem sys;
    sys.label = p.req(v, path, "label", JsonValue::Kind::kString).str;
    if (sys.label.empty()) p.fail(path + ".label", "label must be non-empty");
    if (!labels.insert(sys.label).second) {
      p.fail(path + ".label", "duplicate system label '" + sys.label + "'");
    }
    sys.topology = p.req(v, path, "topology", JsonValue::Kind::kString).str;
    if (sys.topology.empty()) p.fail(path + ".topology", "topology spec must be non-empty");
    if (const JsonValue* f = p.opt(v, path, "topology_full", JsonValue::Kind::kString)) {
      sys.topology_full = f->str;
    }
    out.systems.push_back(std::move(sys));
  }

  const JsonValue& sweeps = p.req(doc, "$", "sweeps", JsonValue::Kind::kArray);
  if (sweeps.array.empty()) p.fail("$.sweeps", "campaign needs at least one sweep");
  std::set<std::string> titles;
  for (std::size_t i = 0; i < sweeps.array.size(); ++i) {
    const std::string path = "$.sweeps[" + std::to_string(i) + "]";
    CampaignSweep sw = parse_sweep(p, path, sweeps.array[i], out);
    // Raw-title uniqueness guarantees unique journal scopes: per_system
    // titles expand with distinct (unique) system labels substituted.
    if (!titles.insert(sw.title).second) {
      p.fail(path + ".title", "duplicate sweep title '" + sw.title + "'");
    }
    out.sweeps.push_back(std::move(sw));
  }

  // Engine/feature compatibility is a parse error, not a mid-campaign
  // surprise: a committed flow-engine spec must never reach simulation with
  // a packet-only feature it would then throw on hours in.
  if (out.engine == SimEngine::kFlow) {
    for (std::size_t i = 0; i < out.sweeps.size(); ++i) {
      if (out.sweeps[i].fault.has_value()) {
        p.fail("$.sweeps[" + std::to_string(i) + "].fault",
               "the flow engine does not support fault injection; drop the "
               "fault schedule or set engine = packet");
      }
    }
  }
  return out;
}

// -------------------------------------------------------------- expansion

ExpandedCampaign expand_campaign(const CampaignSpec& spec, const CampaignParams& params) {
  ExpandedCampaign out;

  // Build every system's topology up front (cheap, and validates all spec
  // strings before any simulation); minimal tables are built lazily — an
  // exchange-only campaign leaves SimStack to build its own per run,
  // exactly as the hand-written fig13 bench does.
  std::vector<const Topology*> topos;
  out.tables.assign(spec.systems.size(), nullptr);
  for (const CampaignSystem& sys : spec.systems) {
    const std::string& ts =
        params.full && !sys.topology_full.empty() ? sys.topology_full : sys.topology;
    try {
      out.topologies.push_back(build_topology_from_spec(ts));
    } catch (const std::exception& e) {
      throw ArgumentError("campaign system '" + sys.label + "': " + e.what());
    }
    topos.push_back(&out.topologies.back());
  }
  auto ensure_table = [&](std::size_t i) {
    if (out.tables[i] == nullptr) {
      out.tables[i] = std::make_shared<const MinimalTable>(*topos[i]);
    }
    return out.tables[i];
  };

  // Traffic patterns, one per (system, traffic, shift): worst-case builds
  // its permutation from a fresh Rng seeded with the invocation seed, the
  // fig6 convention — so caching across sweeps is behavior-identical to
  // rebuilding.
  std::map<std::tuple<std::size_t, CampaignTraffic, int>, const TrafficPattern*> patterns;
  auto ensure_pattern = [&](std::size_t i, CampaignTraffic traffic, int shift) {
    const auto key = std::make_tuple(i, traffic, shift);
    auto it = patterns.find(key);
    if (it != patterns.end()) return it->second;
    std::unique_ptr<TrafficPattern> pat;
    switch (traffic) {
      case CampaignTraffic::kUniform:
        pat = std::make_unique<UniformTraffic>(topos[i]->num_nodes());
        break;
      case CampaignTraffic::kWorstCase: {
        Rng rng(params.seed);
        pat = make_worst_case(*topos[i], *ensure_table(i), rng);
        break;
      }
      case CampaignTraffic::kShift:
        pat = make_node_shift(topos[i]->num_nodes(), shift);
        break;
    }
    out.patterns.push_back(std::move(pat));
    return patterns.emplace(key, out.patterns.back().get()).first->second;
  };

  auto selected = [&](const CampaignSweep& sw) {
    std::vector<std::size_t> sel;
    if (sw.systems.empty()) {
      for (std::size_t i = 0; i < spec.systems.size(); ++i) sel.push_back(i);
      return sel;
    }
    for (const std::string& label : sw.systems) {
      for (std::size_t i = 0; i < spec.systems.size(); ++i) {
        if (spec.systems[i].label == label) sel.push_back(i);
      }
    }
    return sel;
  };

  auto make_series = [&](const CampaignSweep& sw, const CampaignSeries& s, std::size_t i) {
    SweepSeriesSpec spec_;
    spec_.label = substitute(s.label, spec.systems[i].label, to_string(s.strategy));
    spec_.topo = topos[i];
    spec_.table = ensure_table(i);
    spec_.strategy = s.strategy;
    if (s.ni || s.c) {
      UgalParams up = default_ugal_params(topos[i]->kind(),
                                          s.strategy == RoutingStrategy::kUgalThreshold);
      if (s.ni) up.num_indirect = *s.ni;
      if (s.c) up.c = *s.c;
      spec_.params = up;
    }
    spec_.pattern = ensure_pattern(i, sw.traffic, sw.shift);
    spec_.loads = sw.loads;
    if (sw.fault) {
      // The transient-faults bench's arithmetic, verbatim (integer TimePs
      // division): burst a quarter into the measurement window, restored
      // halfway, sampled into duration/sample_div buckets.
      const TimePs window = params.duration - params.warmup;
      const TimePs at = params.warmup + window / sw.fault->at_div;
      const TimePs restore_after =
          sw.fault->restore_div > 0 ? window / sw.fault->restore_div : 0;
      const int count =
          std::max(1, static_cast<int>(sw.fault->frac *
                                       static_cast<double>(topos[i]->num_links())));
      spec_.fault.schedule = make_link_burst(*topos[i], at, count, params.seed, restore_after);
      spec_.fault.recovery = s.recovery;
      spec_.fault.reroute = s.reroute;
      if (sw.fault->sample_div > 0) {
        spec_.fault.recovery_sample = params.duration / sw.fault->sample_div;
      }
      if (s.detection_us) {
        spec_.fault.propagation = true;
        spec_.fault.detection_delay = us(*s.detection_us);
        if (s.flood_hop_us) spec_.fault.flood_process = us(*s.flood_hop_us);
      }
    }
    if (sw.base_seed) spec_.seed_override = params.seed;
    return spec_;
  };

  // One system's series block: each spec entry, multiplied by the grid
  // values when the sweep has a grid axis (series-major, grid-minor — the
  // adaptive benches' panel order), with {grid} resolved in the label.
  auto push_series = [&](const CampaignSweep& sw, std::size_t i,
                         std::vector<SweepSeriesSpec>& dst) {
    for (const CampaignSeries& s : sw.series) {
      if (!sw.grid) {
        dst.push_back(make_series(sw, s, i));
        continue;
      }
      for (const double v : sw.grid->values) {
        CampaignSeries g = s;
        if (sw.grid->is_ni) {
          g.ni = static_cast<int>(v);
        } else {
          g.c = v;
        }
        g.label = replace_all(g.label, "{grid}", grid_value_label(*sw.grid, v));
        dst.push_back(make_series(sw, g, i));
      }
    }
  };

  for (const CampaignSweep& sw : spec.sweeps) {
    const std::vector<std::size_t> sel = selected(sw);
    if (sw.kind == CampaignSweepKind::kExchange) {
      CampaignStep step;
      CampaignExchangeSweep ex;
      ex.title = sw.title;
      ex.bytes_per_pair = sw.bytes_per_pair;
      ex.order = sw.order;
      ex.time_limit = us(sw.time_limit_us);
      for (std::size_t i : sel) {
        for (const CampaignSeries& s : sw.series) {
          ex.rows.push_back({spec.systems[i].label, s.strategy, topos[i]});
        }
      }
      step.exchange = std::move(ex);
      out.steps.push_back(std::move(step));
      continue;
    }
    if (sw.per_system) {
      for (std::size_t i : sel) {
        CampaignStep step;
        CampaignLoadSweep ls;
        ls.title = substitute(sw.title, spec.systems[i].label, "");
        push_series(sw, i, ls.series);
        step.load = std::move(ls);
        out.steps.push_back(std::move(step));
      }
    } else {
      CampaignStep step;
      CampaignLoadSweep ls;
      ls.title = sw.title;
      // System-major, series-minor: the benches' loop order, which the
      // per-point seed stream and journal keys depend on.
      for (std::size_t i : sel) push_series(sw, i, ls.series);
      step.load = std::move(ls);
      out.steps.push_back(std::move(step));
    }
  }
  return out;
}

// ------------------------------------------------- multi-worker campaigns

std::string exchange_table_title(const std::string& title_base,
                                 std::int64_t bytes_per_pair, A2aOrder order) {
  return title_base + " (" + std::to_string(bytes_per_pair) + " B/pair, " +
         (order == A2aOrder::kStaggered ? "staggered" : "shuffled+interleaved") + ")";
}

std::size_t step_point_count(const CampaignStep& step) {
  if (step.load) {
    std::size_t n = 0;
    for (const SweepSeriesSpec& s : step.load->series) n += s.loads.size();
    return n;
  }
  return step.exchange->rows.size();
}

std::string step_scope(const CampaignStep& step) {
  if (step.load) return step.load->title;
  return exchange_table_title(step.exchange->title, step.exchange->bytes_per_pair,
                              step.exchange->order);
}

std::vector<CampaignScope> campaign_scopes(const ExpandedCampaign& plan) {
  std::vector<CampaignScope> out;
  for (const CampaignStep& step : plan.steps) {
    out.push_back({step_scope(step), step_point_count(step)});
  }
  return out;
}

std::vector<CampaignShard> plan_campaign_shards(const ExpandedCampaign& plan,
                                                int points_per_shard) {
  D2NET_REQUIRE(points_per_shard >= 1, "points per shard must be >= 1");
  std::vector<CampaignShard> out;
  const std::size_t chunk = static_cast<std::size_t>(points_per_shard);
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    const std::size_t n = step_point_count(plan.steps[s]);
    for (std::size_t b = 0; b < n; b += chunk) {
      CampaignShard sh;
      sh.id = static_cast<int>(out.size());
      sh.step = s;
      sh.begin = b;
      sh.end = std::min(n, b + chunk);
      out.push_back(sh);
    }
  }
  return out;
}

CampaignMergeStats merge_worker_journals(const std::string& dir,
                                         const std::vector<CampaignScope>& scopes) {
  namespace fs = std::filesystem;
  CampaignMergeStats stats;

  std::string top_text;
  std::uint64_t top_hash = 0;
  D2NET_REQUIRE(read_journal_manifest(dir, top_text, top_hash),
                "merge: no readable manifest.json in '" + dir +
                    "' — has the campaign been started?");

  // Worker directories in sorted (lexicographic) order: the dedup
  // tie-break below depends on a deterministic iteration order.
  std::vector<std::string> workers;
  const fs::path workers_root = fs::path(dir) / "workers";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(workers_root, ec)) {
    if (entry.is_directory()) workers.push_back(entry.path().string());
  }
  D2NET_REQUIRE(!ec && !workers.empty(),
                "merge: no worker journals under '" + workers_root.string() + "'");
  std::sort(workers.begin(), workers.end());
  stats.workers = workers.size();

  // Best entry per key, with the raw line preserved: the merged journal
  // carries each winning line verbatim, so the follow-up resumed run
  // restores exactly the bytes the executing worker recorded.
  struct Merged {
    std::string line;
    bool completed = false;
    bool failed = false;
  };
  std::map<std::string, Merged> best;
  for (const std::string& wdir : workers) {
    std::string wtext;
    std::uint64_t whash = 0;
    D2NET_REQUIRE(read_journal_manifest(wdir, wtext, whash),
                  "merge: worker journal '" + wdir + "' has no readable manifest");
    if (wtext != top_text) {
      throw ArgumentError(
          "merge: worker journal '" + wdir +
          "' was written under a different configuration than '" + dir +
          "' — refusing to mix results.\n--- worker manifest ---\n" + wtext +
          "--- campaign manifest ---\n" + top_text);
    }
    std::ifstream in(fs::path(wdir) / "journal.jsonl");
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      JournalEntry e;
      if (!SweepJournal::parse_line(line, e)) continue;  // torn tail: skip
      auto it = best.find(e.key);
      if (it == best.end()) {
        best.emplace(e.key, Merged{line, e.completed(), e.status == "failed"});
        continue;
      }
      ++stats.duplicates;
      // Completed beats failed; otherwise the first (sorted-order) worker
      // already won. Within one worker's journal, a later line supersedes
      // an earlier one for the same key (the resume-retry convention) —
      // but only if it is at least as good.
      if (e.completed() && !it->second.completed) {
        it->second = Merged{line, true, false};
      }
    }
  }

  // Emit in campaign expansion order, so the merged journal reads like a
  // solo run's.
  const fs::path tmp = fs::path(dir) / ("journal.jsonl.merge." + std::to_string(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    D2NET_REQUIRE(out.good(), "merge: cannot write '" + tmp.string() + "'");
    for (const CampaignScope& sc : scopes) {
      for (std::size_t i = 0; i < sc.points; ++i) {
        ++stats.expected;
        auto it = best.find(sc.scope + "#" + std::to_string(i));
        if (it == best.end()) {
          ++stats.missing;
          continue;
        }
        out << it->second.line << "\n";
        ++stats.merged;
        if (it->second.failed) ++stats.failed;
      }
    }
    out.flush();
    D2NET_REQUIRE(out.good(), "merge: failed writing '" + tmp.string() + "'");
  }
  fs::rename(tmp, fs::path(dir) / "journal.jsonl", ec);
  D2NET_REQUIRE(!ec, "merge: cannot install merged journal in '" + dir +
                         "': " + ec.message());
  fsync_dir(dir);
  return stats;
}

}  // namespace d2net
