#include "sim/claim.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.h"

namespace d2net {

namespace fs = std::filesystem;

ClaimClock system_claim_clock() {
  ClaimClock c;
  c.now = [] {
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  };
  c.sleep = [](double seconds) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  };
  return c;
}

const char* to_string(ShardState s) {
  switch (s) {
    case ShardState::kUnclaimed: return "unclaimed";
    case ShardState::kLeased: return "leased";
    case ShardState::kStale: return "stale";
    case ShardState::kDone: return "done";
  }
  return "?";
}

namespace {

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Writes `content` to `path` (O_TRUNC), optionally fsyncing the file fd.
/// Returns false on any I/O failure.
bool write_file(const std::string& path, const std::string& content, bool durable) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  bool ok = true;
  while (ok && off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n <= 0) ok = false;
    else off += static_cast<std::size_t>(n);
  }
  if (ok && durable) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) ::unlink(path.c_str());
  return ok;
}

/// Seconds since the last sign of life in a lease: heartbeat_at when the
/// record parses, file mtime as the fallback for a lease torn by a dying
/// writer (it must eventually be stealable, not wedge the campaign).
double lease_age(const std::string& path, const std::string& content,
                 const ClaimClock& clock, LeaseRecord& rec, bool& parsed) {
  parsed = parse_lease(content, rec);
  if (parsed) {
    return clock.now() - std::max(rec.heartbeat_at, rec.acquired_at);
  }
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return 0.0;  // vanished between read and stat: treat as fresh
  const double mtime_s = std::chrono::duration<double>(
                             mtime.time_since_epoch() -
                             fs::file_time_type::clock::now().time_since_epoch())
                             .count();
  return -mtime_s;  // age = now - mtime, expressed via the file clock
}

}  // namespace

ShardClaimer::ShardClaimer(ClaimOptions opts) : opts_(std::move(opts)) {
  D2NET_REQUIRE(!opts_.dir.empty(), "claim: journal directory must not be empty");
  D2NET_REQUIRE(!opts_.worker.empty(), "claim: worker id must not be empty");
  D2NET_REQUIRE(opts_.lease_ttl > 0.0, "claim: lease TTL must be > 0");
  if (!opts_.clock.now) opts_.clock = system_claim_clock();
  std::error_code ec;
  fs::create_directories(fs::path(opts_.dir) / "leases", ec);
  D2NET_REQUIRE(!ec, "claim: cannot create lease directory under '" + opts_.dir +
                         "': " + ec.message());
  // Token: unique per (worker, process, claim) so a stealer can tell its
  // own rename-away files apart and heartbeat can detect lease loss even
  // against a same-named worker restarted after a crash.
  token_ = fnv1a64(opts_.worker) ^
           (static_cast<std::uint64_t>(::getpid()) << 32) ^
           static_cast<std::uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count());
}

std::string ShardClaimer::lease_path(int shard) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04d.lease", shard);
  return (fs::path(opts_.dir) / "leases" / buf).string();
}

std::string ShardClaimer::done_path(int shard) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04d.done", shard);
  return (fs::path(opts_.dir) / "leases" / buf).string();
}

LeaseRecord ShardClaimer::make_record(int shard, double acquired_at) const {
  LeaseRecord rec;
  rec.worker = opts_.worker;
  rec.shard = shard;
  rec.spec_hash = opts_.spec_hash;
  rec.acquired_at = acquired_at;
  rec.heartbeat_at = acquired_at;
  rec.token = token_;
  return rec;
}

bool ShardClaimer::publish(const std::string& tmp_name, const LeaseRecord& rec,
                           const std::string& dest, bool exclusive) {
  const std::string tmp =
      (fs::path(opts_.dir) / "leases" / tmp_name).string();
  if (!write_file(tmp, render_lease(rec), opts_.durable)) return false;
  bool ok;
  if (exclusive) {
    // link(2): atomic publish that fails with EEXIST when the shard is
    // already claimed — the O_CREAT|O_EXCL idiom, but the lease appears
    // fully written (a reader never sees an empty claim).
    ok = ::link(tmp.c_str(), dest.c_str()) == 0;
    ::unlink(tmp.c_str());
  } else {
    ok = ::rename(tmp.c_str(), dest.c_str()) == 0;
    if (!ok) ::unlink(tmp.c_str());
  }
  if (ok && opts_.durable) {
    fsync_dir((fs::path(opts_.dir) / "leases").string());
  }
  return ok;
}

void ShardClaimer::pin_plan(int num_shards, int shard_points) {
  D2NET_REQUIRE(num_shards >= 1 && shard_points >= 1,
                "claim: shard plan must have >= 1 shard of >= 1 point");
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(opts_.spec_hash));
  std::ostringstream os;
  os << "{\"shards\": " << num_shards << ", \"shard_points\": " << shard_points
     << ", \"spec_hash\": \"" << hex << "\"}\n";
  const std::string want = os.str();
  const std::string path = (fs::path(opts_.dir) / "leases" / "plan.json").string();
  const std::string tmp =
      (fs::path(opts_.dir) / "leases" /
       (".plan.tmp." + opts_.worker + "." + std::to_string(token_ & 0xffff)))
          .string();
  if (write_file(tmp, want, opts_.durable) && ::link(tmp.c_str(), path.c_str()) == 0) {
    ::unlink(tmp.c_str());
    if (opts_.durable) fsync_dir((fs::path(opts_.dir) / "leases").string());
    return;  // this worker pinned the plan
  }
  ::unlink(tmp.c_str());
  const std::string have = read_whole_file(path);
  D2NET_REQUIRE(!have.empty(), "claim: cannot pin shard plan in '" + opts_.dir + "'");
  if (have != want) {
    throw ArgumentError(
        "claim: shard plan mismatch in '" + path + "':\n  on disk: " + have +
        "  this worker: " + want +
        "all workers of one campaign must agree on --shard-points and the spec");
  }
}

bool ShardClaimer::try_claim(int shard) {
  if (is_done(shard)) return false;
  const LeaseRecord rec = make_record(shard, opts_.clock.now());
  const std::string tmp_name =
      ".claim.tmp." + opts_.worker + "." + std::to_string(shard);
  if (!publish(tmp_name, rec, lease_path(shard), /*exclusive=*/true)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  owned_[shard] = rec;
  return true;
}

bool ShardClaimer::try_steal(int shard) {
  if (is_done(shard)) return false;
  const std::string path = lease_path(shard);
  const std::string content = read_whole_file(path);
  if (content.empty()) return false;  // vanished (completed or being stolen)
  LeaseRecord rec;
  bool parsed = false;
  const double age = lease_age(path, content, opts_.clock, rec, parsed);
  if (parsed && rec.worker == opts_.worker && rec.token == token_) {
    return false;  // our own live lease; nothing to steal
  }
  if (age <= opts_.lease_ttl) return false;  // live (or torn but recent)
  // Rename the stale lease to a private name: exactly one stealer's rename
  // succeeds (a second gets ENOENT), so the follow-up claim race has at
  // most one ex-lease in flight.
  const std::string moved =
      (fs::path(opts_.dir) / "leases" /
       (".stale." + std::to_string(shard) + "." + opts_.worker + "." +
        std::to_string(token_ & 0xffffff)))
          .string();
  if (::rename(path.c_str(), moved.c_str()) != 0) return false;
  ::unlink(moved.c_str());
  if (opts_.durable) fsync_dir((fs::path(opts_.dir) / "leases").string());
  // The shard is now unclaimed; claim it like anyone else (a third worker
  // may still win the link race — that is a clean loss, not a protocol
  // violation).
  return try_claim(shard);
}

bool ShardClaimer::heartbeat(int shard) {
  LeaseRecord rec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = owned_.find(shard);
    if (it == owned_.end()) return false;
    rec = it->second;
  }
  // Verify the lease on disk is still ours before refreshing: if a stealer
  // took it (TTL expired while a point ran long), renaming over their
  // lease would silently re-acquire the shard. The verify-then-rename
  // window is not atomic — the residual race is exactly the at-least-once
  // case the merge dedup absorbs — but it keeps double execution rare.
  LeaseRecord on_disk;
  if (!parse_lease(read_whole_file(lease_path(shard)), on_disk) ||
      on_disk.worker != rec.worker || on_disk.token != rec.token) {
    std::lock_guard<std::mutex> lock(mu_);
    owned_.erase(shard);
    return false;
  }
  rec.heartbeat_at = opts_.clock.now();
  const std::string tmp_name =
      ".hb.tmp." + opts_.worker + "." + std::to_string(shard);
  if (!publish(tmp_name, rec, lease_path(shard), /*exclusive=*/false)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  owned_[shard] = rec;
  return true;
}

void ShardClaimer::complete(int shard) {
  // Done marker first (the durable fact), lease release second: a crash
  // between the two leaves a lease that every scanner ignores because the
  // done marker wins.
  const LeaseRecord rec = make_record(shard, opts_.clock.now());
  const std::string tmp =
      (fs::path(opts_.dir) / "leases" /
       (".done.tmp." + opts_.worker + "." + std::to_string(shard)))
          .string();
  const bool ok = write_file(tmp, render_lease(rec), opts_.durable) &&
                  ::rename(tmp.c_str(), done_path(shard).c_str()) == 0;
  D2NET_REQUIRE(ok, "claim: cannot write done marker for shard " +
                        std::to_string(shard) + " in '" + opts_.dir + "'");
  if (opts_.durable) fsync_dir((fs::path(opts_.dir) / "leases").string());
  ::unlink(lease_path(shard).c_str());
  std::lock_guard<std::mutex> lock(mu_);
  owned_.erase(shard);
}

bool ShardClaimer::is_done(int shard) const {
  std::error_code ec;
  return fs::exists(done_path(shard), ec);
}

ShardStatus ShardClaimer::inspect(int shard) const {
  ShardStatus st;
  if (is_done(shard)) {
    st.state = ShardState::kDone;
    parse_lease(read_whole_file(done_path(shard)), st.lease);
    return st;
  }
  const std::string path = lease_path(shard);
  const std::string content = read_whole_file(path);
  if (content.empty()) {
    st.state = ShardState::kUnclaimed;
    return st;
  }
  bool parsed = false;
  st.age = lease_age(path, content, opts_.clock, st.lease, parsed);
  st.state = st.age > opts_.lease_ttl ? ShardState::kStale : ShardState::kLeased;
  return st;
}

double ShardClaimer::next_backoff() {
  const double cap = std::min(2.0, opts_.lease_ttl);
  backoff_ = backoff_ <= 0.0 ? 0.05 : std::min(cap, backoff_ * 2.0);
  return backoff_;
}

}  // namespace d2net
