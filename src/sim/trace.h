// Optional per-packet tracing: when a sink is attached to a NetworkSim,
// every packet delivered inside the measurement window is recorded
// (source, destination, generation / injection / delivery times, hop
// count, minimal-vs-indirect). Unlike the built-in latency statistics the
// trace does NOT filter on generation time — warmup-born carryover
// deliveries appear too, each carrying its gen_time so consumers can
// apply their own window. Useful for debugging routing decisions and for
// latency-breakdown analysis outside the built-in histograms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/units.h"

namespace d2net {

struct PacketTraceEntry {
  int src_node = -1;
  int dst_node = -1;
  int size = 0;
  TimePs gen_time = 0;
  TimePs inject_time = 0;
  TimePs eject_time = 0;
  int hops = 0;
  bool minimal = true;

  TimePs total_latency() const { return eject_time - gen_time; }
  TimePs queueing_delay() const { return inject_time - gen_time; }
};

/// Bounded in-memory sink; recording stops silently once `capacity`
/// entries are held (the count of dropped records is kept).
class PacketTraceSink {
 public:
  explicit PacketTraceSink(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void record(const PacketTraceEntry& entry) {
    if (entries_.size() < capacity_) {
      entries_.push_back(entry);
    } else {
      ++dropped_;
    }
  }

  void clear() {
    entries_.clear();
    dropped_ = 0;
  }

  const std::vector<PacketTraceEntry>& entries() const { return entries_; }
  std::int64_t dropped() const { return dropped_; }

  /// CSV with a header row; times in nanoseconds.
  void write_csv(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::vector<PacketTraceEntry> entries_;
  std::int64_t dropped_ = 0;
};

}  // namespace d2net
