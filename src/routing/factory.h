// Convenience construction of the paper's routing configurations.
//
// Maps each topology kind to its VC policy (Section 3.4) and carries the
// per-topology UGAL defaults the paper converges on in Section 4.3.2:
// SF-A (cSF = 1, nI = 4, length-scaled cost), MLFM-A (c = 2, nI = 5),
// OFT-A (c = 2, nI = 1), with T = 10% for the threshold variants.
#pragma once

#include <memory>
#include <string>

#include "routing/routing_algorithm.h"
#include "routing/ugal_routing.h"
#include "routing/valiant_routing.h"
#include "topology/topology.h"

namespace d2net {

class Topology;
class MinimalTable;

enum class RoutingStrategy {
  kMinimal,        ///< MIN
  kValiant,        ///< INR (indirect random)
  kUgal,           ///< x-A (generic UGAL-L)
  kUgalThreshold,  ///< x-ATh (UGAL-L with a minimal-routing threshold)
  kUgalGlobal,     ///< UGAL-G oracle baseline (global queue knowledge)
};

const char* to_string(RoutingStrategy s);

/// Deadlock-avoidance VC policy per topology (Section 3.4): hop-indexed VCs
/// for the direct topologies, phase VCs for the SSPT family and Fat-Trees.
VcPolicy vc_policy_for(TopologyKind kind);

/// The paper's tuned adaptive-routing parameters for each topology.
UgalParams default_ugal_params(TopologyKind kind, bool threshold);

/// Builds a routing algorithm. `topo`, `table` and `loads` must outlive the
/// returned object. For oblivious strategies `loads` may be a
/// ZeroLoadProvider. Pass `params` to override the defaults (ignored for
/// oblivious strategies). Pass `intermediates` to share one precomputed
/// Valiant candidate set across many algorithm instances (the parallel
/// sweep runner builds it once per topology); null builds a private copy.
std::unique_ptr<RoutingAlgorithm> make_routing(const Topology& topo, const MinimalTable& table,
                                               RoutingStrategy strategy,
                                               const PortLoadProvider& loads);
std::unique_ptr<RoutingAlgorithm> make_routing(const Topology& topo, const MinimalTable& table,
                                               RoutingStrategy strategy,
                                               const PortLoadProvider& loads,
                                               const UgalParams& params,
                                               SharedIntermediates intermediates = nullptr);

}  // namespace d2net
