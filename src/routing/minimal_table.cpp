#include "routing/minimal_table.h"

#include <queue>

#include "common/error.h"
#include "topology/topology.h"

namespace d2net {

namespace {
inline bool admits(const LinkFilter& alive, int a, int b) {
  return alive == nullptr || alive(a, b);
}
}  // namespace

MinimalTable::MinimalTable(const Topology& topo) : n_(topo.num_routers()) {
  rebuild(topo, nullptr);
  // The healthy-topology constructor keeps the historical strictness; the
  // fault layer goes through rebuild()/update_link(), which tolerate
  // disconnection.
  D2NET_REQUIRE(unreachable_pairs() == 0, "topology is disconnected");
}

void MinimalTable::bfs_row(const Topology& topo, const LinkFilter& alive, int s) {
  const std::size_t row = idx(s, 0);
  for (int t = 0; t < n_; ++t) dist_[row + static_cast<std::size_t>(t)] = -1;
  std::queue<int> q;
  dist_[row + static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    const std::int16_t du = dist_[row + static_cast<std::size_t>(u)];
    for (int v : topo.neighbors(u)) {
      if (dist_[row + static_cast<std::size_t>(v)] < 0 && admits(alive, u, v)) {
        dist_[row + static_cast<std::size_t>(v)] = static_cast<std::int16_t>(du + 1);
        q.push(v);
      }
    }
  }
}

void MinimalTable::pack_next_hops(const Topology& topo, const LinkFilter& alive) {
  // Neighbor v of a is a next hop toward b iff the a->v link is admitted
  // and dist(v, b) == dist(a, b) - 1. Unreachable pairs get empty sets.
  std::size_t total = 0;
  for (int a = 0; a < n_; ++a) {
    for (int b = 0; b < n_; ++b) {
      const int d = dist_[idx(a, b)];
      if (a == b || d < 0) continue;
      for (int v : topo.neighbors(a)) {
        if (admits(alive, a, v) && dist_[idx(v, b)] == d - 1) ++total;
      }
    }
  }
  nh_data_.resize(total);
  std::size_t fill = 0;
  for (int a = 0; a < n_; ++a) {
    for (int b = 0; b < n_; ++b) {
      nh_off_[idx(a, b)] = static_cast<std::uint32_t>(fill);
      const int d = dist_[idx(a, b)];
      if (a != b && d > 0) {
        for (int v : topo.neighbors(a)) {
          if (admits(alive, a, v) && dist_[idx(v, b)] == d - 1) nh_data_[fill++] = v;
        }
      }
    }
  }
  nh_off_.back() = static_cast<std::uint32_t>(fill);
  D2NET_ASSERT(fill == total, "next-hop fill mismatch");
}

void MinimalTable::recompute_diameter() {
  diameter_ = 0;
  for (std::int16_t d : dist_) {
    if (d > diameter_) diameter_ = d;
  }
}

void MinimalTable::rebuild(const Topology& topo, const LinkFilter& alive) {
  D2NET_REQUIRE(topo.num_routers() == n_ || dist_.empty(),
                "rebuild against a different-sized topology");
  n_ = topo.num_routers();
  dist_.assign(static_cast<std::size_t>(n_) * n_, -1);
  nh_off_.assign(static_cast<std::size_t>(n_) * n_ + 1, 0);
  for (int s = 0; s < n_; ++s) bfs_row(topo, alive, s);
  recompute_diameter();
  pack_next_hops(topo, alive);
}

void MinimalTable::update_link(const Topology& topo, const LinkFilter& alive, int u, int v) {
  D2NET_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v, "update_link endpoints");
  const bool now_alive = admits(alive, u, v);
  // A single link change can only move distances for sources where the link
  // matters: on a cut, sources whose BFS DAG had the link tight
  // (|d(s,u) - d(s,v)| == 1); on a revival, sources it brings strictly
  // closer (|d(s,u) - d(s,v)| > 1, unreachable counting as infinity).
  // Everything else keeps its distances; only the next-hop packing (which
  // reads the admitted adjacency directly) is redone in full.
  for (int s = 0; s < n_; ++s) {
    const int du = dist_[idx(s, u)];
    const int dv = dist_[idx(s, v)];
    bool affected;
    if (du < 0 && dv < 0) {
      affected = false;  // both already unreachable; a link between them changes nothing
    } else if (du < 0 || dv < 0) {
      // One side reachable, one not: a cut cannot cause this retroactively,
      // a revival bridges the components for this source.
      affected = now_alive;
    } else {
      const int gap = du > dv ? du - dv : dv - du;
      affected = now_alive ? gap > 1 : gap == 1;
    }
    if (affected) bfs_row(topo, alive, s);
  }
  recompute_diameter();
  pack_next_hops(topo, alive);
}

std::int64_t MinimalTable::unreachable_pairs() const {
  std::int64_t count = 0;
  for (std::int16_t d : dist_) count += d < 0 ? 1 : 0;
  return count;
}

std::vector<int> MinimalTable::sample_path(int a, int b, Rng& rng) const {
  std::vector<int> path;
  sample_path_into(a, b, rng, path);
  return path;
}

void MinimalTable::enumerate_paths(int a, int b, std::vector<std::vector<int>>& out) const {
  std::vector<int> stack{a};
  // Iterative DFS over the shortest-path DAG.
  struct Frame {
    int router;
    std::size_t next_index;
  };
  std::vector<Frame> frames{{a, 0}};
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.router == b) {
      out.push_back(stack);
      frames.pop_back();
      stack.pop_back();
      continue;
    }
    const auto nh = next_hops(f.router, b);
    if (f.next_index >= nh.size()) {
      frames.pop_back();
      stack.pop_back();
      continue;
    }
    const int v = nh[f.next_index++];
    frames.push_back({v, 0});
    stack.push_back(v);
  }
}

}  // namespace d2net
