#include "routing/minimal_table.h"

#include <queue>

#include "common/error.h"
#include "topology/topology.h"

namespace d2net {

MinimalTable::MinimalTable(const Topology& topo) : n_(topo.num_routers()) {
  dist_.assign(static_cast<std::size_t>(n_) * n_, -1);
  nh_off_.assign(static_cast<std::size_t>(n_) * n_ + 1, 0);

  // Pass 1: BFS per source to fill distances.
  std::vector<int> dist(n_);
  for (int s = 0; s < n_; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<int> q;
    dist[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : topo.neighbors(u)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          q.push(v);
        }
      }
    }
    for (int t = 0; t < n_; ++t) {
      D2NET_REQUIRE(dist[t] >= 0, "topology is disconnected");
      dist_[idx(s, t)] = static_cast<std::int16_t>(dist[t]);
      if (dist[t] > diameter_) diameter_ = dist[t];
    }
  }

  // Pass 2: next-hop sets. Neighbor v of a is a next hop toward b iff
  // dist(v, b) == dist(a, b) - 1.
  std::size_t total = 0;
  for (int a = 0; a < n_; ++a) {
    for (int b = 0; b < n_; ++b) {
      if (a == b) continue;
      const int d = dist_[idx(a, b)];
      for (int v : topo.neighbors(a)) {
        if (dist_[idx(v, b)] == d - 1) ++total;
      }
    }
  }
  nh_data_.resize(total);
  std::size_t fill = 0;
  for (int a = 0; a < n_; ++a) {
    for (int b = 0; b < n_; ++b) {
      nh_off_[idx(a, b)] = static_cast<std::uint32_t>(fill);
      if (a != b) {
        const int d = dist_[idx(a, b)];
        for (int v : topo.neighbors(a)) {
          if (dist_[idx(v, b)] == d - 1) nh_data_[fill++] = v;
        }
      }
    }
  }
  nh_off_.back() = static_cast<std::uint32_t>(fill);
  D2NET_ASSERT(fill == total, "next-hop fill mismatch");
}

std::vector<int> MinimalTable::sample_path(int a, int b, Rng& rng) const {
  std::vector<int> path;
  sample_path_into(a, b, rng, path);
  return path;
}

void MinimalTable::sample_path_into(int a, int b, Rng& rng, std::vector<int>& out) const {
  out.clear();
  out.push_back(a);
  int cur = a;
  while (cur != b) {
    const auto nh = next_hops(cur, b);
    D2NET_ASSERT(!nh.empty(), "no next hop on minimal path");
    cur = nh[rng.next_below(nh.size())];
    out.push_back(cur);
  }
}

void MinimalTable::enumerate_paths(int a, int b, std::vector<std::vector<int>>& out) const {
  std::vector<int> stack{a};
  // Iterative DFS over the shortest-path DAG.
  struct Frame {
    int router;
    std::size_t next_index;
  };
  std::vector<Frame> frames{{a, 0}};
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.router == b) {
      out.push_back(stack);
      frames.pop_back();
      stack.pop_back();
      continue;
    }
    const auto nh = next_hops(f.router, b);
    if (f.next_index >= nh.size()) {
      frames.pop_back();
      stack.pop_back();
      continue;
    }
    const int v = nh[f.next_index++];
    frames.push_back({v, 0});
    stack.push_back(v);
  }
}

}  // namespace d2net
