// Precomputed minimal (shortest-path) routing structure: for every ordered
// router pair, the distance and the set of next-hop neighbors that lie on a
// shortest path. Stored flat for cache friendliness at R^2 scale.
//
// For dynamic fault injection the table is rebuildable mid-run: rebuild()
// and update_link() recompute it against a link-aliveness filter, tolerate
// a disconnected graph (distance() < 0, empty next_hops()), and
// update_link() recomputes only the BFS trees a single link change can
// actually affect (incremental invalidation).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace d2net {

class Topology;

/// Returns true when the directed adjacency a -> b is currently usable.
using LinkFilter = std::function<bool(int, int)>;

class MinimalTable {
 public:
  /// Builds the table for the healthy topology; throws if disconnected.
  explicit MinimalTable(const Topology& topo);

  int num_routers() const { return n_; }
  /// Hops from a to b; negative when b is unreachable from a (only possible
  /// after a rebuild against a disconnecting link filter).
  int distance(int a, int b) const { return dist_[idx(a, b)]; }
  /// Longest finite shortest path (unreachable pairs excluded).
  int diameter() const { return diameter_; }

  /// Recomputes the whole table over the links `alive` admits (nullptr =
  /// all). Unlike the constructor this tolerates disconnection.
  void rebuild(const Topology& topo, const LinkFilter& alive);

  /// Incremental variant after the single link (u, v) changed state:
  /// re-runs BFS only from sources whose shortest-path structure the change
  /// can affect (for a cut: sources for which the link was tight; for a
  /// revival: sources it brings strictly closer), then repacks the next-hop
  /// sets. Equivalent to rebuild() (enforced by test).
  void update_link(const Topology& topo, const LinkFilter& alive, int u, int v);

  /// Ordered router pairs (a != b) with no surviving path.
  std::int64_t unreachable_pairs() const;

  /// Neighbors of `a` that start a shortest path toward `b`; empty iff
  /// a == b.
  std::span<const int> next_hops(int a, int b) const {
    const std::size_t i = idx(a, b);
    return {nh_data_.data() + nh_off_[i], nh_data_.data() + nh_off_[i + 1]};
  }

  /// Samples one minimal path a -> b, choosing uniformly among next hops at
  /// every step. Returns {a} when a == b.
  std::vector<int> sample_path(int a, int b, Rng& rng) const;

  /// Allocation-free variant: writes the sampled path into `out` (cleared
  /// first, capacity reused) for the simulator's per-packet hot path.
  /// `Path` is any push_back/clear container (std::vector, the Route's
  /// InlineVec); the RNG draw sequence is identical for all of them.
  template <typename Path>
  void sample_path_into(int a, int b, Rng& rng, Path& out) const {
    out.clear();
    out.push_back(a);
    sample_path_append(a, b, rng, out);
  }

  /// Appends the remaining hops of one sampled minimal path cur -> b
  /// (excluding `cur`, which the caller already recorded). Same RNG draws
  /// as sample_path_into from `cur` — the routing algorithms splice route
  /// segments with this without changing any random stream.
  template <typename Path>
  void sample_path_append(int cur, int b, Rng& rng, Path& out) const {
    while (cur != b) {
      const auto nh = next_hops(cur, b);
      D2NET_ASSERT(!nh.empty(), "no next hop on minimal path");
      cur = nh[rng.next_below(nh.size())];
      out.push_back(cur);
    }
  }

  /// Appends all minimal paths a -> b to `out` (each path includes both
  /// endpoints). Exponential in principle but bounded by the tiny path
  /// diversity of the studied networks; used by the deadlock checker.
  void enumerate_paths(int a, int b, std::vector<std::vector<int>>& out) const;

 private:
  std::size_t idx(int a, int b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) + b;
  }

  /// BFS from s over the admitted links into dist_ (unreached rows = -1).
  void bfs_row(const Topology& topo, const LinkFilter& alive, int s);
  /// Rebuilds nh_off_/nh_data_ from dist_ and the admitted adjacency.
  void pack_next_hops(const Topology& topo, const LinkFilter& alive);
  void recompute_diameter();

  int n_ = 0;
  int diameter_ = 0;
  std::vector<std::int16_t> dist_;
  std::vector<std::uint32_t> nh_off_;  ///< size n^2 + 1
  std::vector<int> nh_data_;
};

}  // namespace d2net
