// Precomputed minimal (shortest-path) routing structure: for every ordered
// router pair, the distance and the set of next-hop neighbors that lie on a
// shortest path. Stored flat for cache friendliness at R^2 scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace d2net {

class Topology;

class MinimalTable {
 public:
  explicit MinimalTable(const Topology& topo);

  int num_routers() const { return n_; }
  int distance(int a, int b) const { return dist_[idx(a, b)]; }
  int diameter() const { return diameter_; }

  /// Neighbors of `a` that start a shortest path toward `b`; empty iff
  /// a == b.
  std::span<const int> next_hops(int a, int b) const {
    const std::size_t i = idx(a, b);
    return {nh_data_.data() + nh_off_[i], nh_data_.data() + nh_off_[i + 1]};
  }

  /// Samples one minimal path a -> b, choosing uniformly among next hops at
  /// every step. Returns {a} when a == b.
  std::vector<int> sample_path(int a, int b, Rng& rng) const;

  /// Allocation-free variant: writes the sampled path into `out` (cleared
  /// first, capacity reused) for the simulator's per-packet hot path.
  void sample_path_into(int a, int b, Rng& rng, std::vector<int>& out) const;

  /// Appends all minimal paths a -> b to `out` (each path includes both
  /// endpoints). Exponential in principle but bounded by the tiny path
  /// diversity of the studied networks; used by the deadlock checker.
  void enumerate_paths(int a, int b, std::vector<std::vector<int>>& out) const;

 private:
  std::size_t idx(int a, int b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) + b;
  }

  int n_ = 0;
  int diameter_ = 0;
  std::vector<std::int16_t> dist_;
  std::vector<std::uint32_t> nh_off_;  ///< size n^2 + 1
  std::vector<int> nh_data_;
};

}  // namespace d2net
