#include "routing/local_view.h"

namespace d2net {

bool LocalFaultView::believes_link_alive(int router, int u, int v) const {
  bool alive = true;
  bool u_alive = true;
  bool v_alive = true;
  for (const int id : applied_order_) {
    const Slot& s = slot(id);
    if (!s.known[static_cast<std::size_t>(router)]) continue;
    const LinkStateUpdate& lu = s.info;
    if (lu.v < 0) {
      if (lu.u == u) u_alive = lu.alive;
      if (lu.u == v) v_alive = lu.alive;
    } else if ((lu.u == u && lu.v == v) || (lu.u == v && lu.v == u)) {
      alive = lu.alive;
    }
  }
  return alive && u_alive && v_alive;
}

bool LocalFaultView::believes_router_alive(int router, int r) const {
  bool alive = true;
  for (const int id : applied_order_) {
    const Slot& s = slot(id);
    if (!s.known[static_cast<std::size_t>(router)]) continue;
    if (s.info.v < 0 && s.info.u == r) alive = s.info.alive;
  }
  return alive;
}

}  // namespace d2net
