// Oblivious minimal routing (paper Section 3.1). Where several minimal
// paths exist the next hop is drawn uniformly at random (footnote 1 of the
// paper allows either random or lowest-cost selection; the adaptive
// algorithms use the cost-aware variant instead).
#pragma once

#include <string>

#include "routing/minimal_table.h"
#include "routing/routing_algorithm.h"

namespace d2net {

class MinimalRouting final : public RoutingAlgorithm {
 public:
  /// `table` must outlive the algorithm.
  MinimalRouting(const MinimalTable& table, VcPolicy policy);

  void route_into(int src_router, int dst_router, Rng& rng, Route& out) const override;
  int num_vcs() const override;
  std::string name() const override { return "MIN"; }

 private:
  const MinimalTable& table_;
  VcPolicy policy_;
};

}  // namespace d2net
