#include "routing/valiant_routing.h"

#include "common/error.h"
#include "topology/topology.h"

namespace d2net {

std::vector<int> valiant_intermediates(const Topology& topo) {
  switch (topo.kind()) {
    case TopologyKind::kSlimFly:
    case TopologyKind::kHyperX2D:
    case TopologyKind::kDragonfly: {
      std::vector<int> all(topo.num_routers());
      for (int r = 0; r < topo.num_routers(); ++r) all[r] = r;
      return all;
    }
    default:
      // Indirect topologies: restrict to endpoint-attached routers so
      // indirect routes are exactly two 2-hop segments (Section 3.2).
      return topo.edge_routers();
  }
}

ValiantRouting::ValiantRouting(const MinimalTable& table, VcPolicy policy,
                               std::vector<int> intermediates)
    : table_(table), policy_(policy), intermediates_(std::move(intermediates)) {
  D2NET_REQUIRE(intermediates_.size() >= 3,
                "Valiant needs at least three eligible intermediate routers");
}

Route ValiantRouting::make_indirect(const MinimalTable& table, VcPolicy policy, int src,
                                    int via, int dst, Rng& rng) {
  Route r;
  r.routers = table.sample_path(src, via, rng);
  r.intermediate_pos = static_cast<int>(r.routers.size()) - 1;
  const std::vector<int> second = table.sample_path(via, dst, rng);
  r.routers.insert(r.routers.end(), second.begin() + 1, second.end());
  assign_vcs(r, policy);
  return r;
}

Route ValiantRouting::route(int src_router, int dst_router, Rng& rng) const {
  D2NET_REQUIRE(src_router != dst_router, "route() needs distinct routers");
  // Draw an intermediate other than the source and destination routers.
  int via;
  do {
    via = intermediates_[rng.next_below(intermediates_.size())];
  } while (via == src_router || via == dst_router);
  return make_indirect(table_, policy_, src_router, via, dst_router, rng);
}

int ValiantRouting::num_vcs() const {
  return policy_ == VcPolicy::kHopIndex ? 2 * table_.diameter() : 2;
}

}  // namespace d2net
