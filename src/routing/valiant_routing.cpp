#include "routing/valiant_routing.h"

#include "common/error.h"
#include "topology/topology.h"

namespace d2net {

std::vector<int> valiant_intermediates(const Topology& topo) {
  switch (topo.kind()) {
    case TopologyKind::kSlimFly:
    case TopologyKind::kHyperX2D:
    case TopologyKind::kDragonfly: {
      std::vector<int> all(topo.num_routers());
      for (int r = 0; r < topo.num_routers(); ++r) all[r] = r;
      return all;
    }
    default:
      // Indirect topologies: restrict to endpoint-attached routers so
      // indirect routes are exactly two 2-hop segments (Section 3.2).
      return topo.edge_routers();
  }
}

ValiantRouting::ValiantRouting(const MinimalTable& table, VcPolicy policy,
                               std::vector<int> intermediates)
    : table_(table), policy_(policy), intermediates_(std::move(intermediates)) {
  D2NET_REQUIRE(intermediates_.size() >= 3,
                "Valiant needs at least three eligible intermediate routers");
}

Route ValiantRouting::make_indirect(const MinimalTable& table, VcPolicy policy, int src,
                                    int via, int dst, Rng& rng) {
  Route r;
  r.routers = table.sample_path(src, via, rng);
  r.intermediate_pos = static_cast<int>(r.routers.size()) - 1;
  const std::vector<int> second = table.sample_path(via, dst, rng);
  r.routers.insert(r.routers.end(), second.begin() + 1, second.end());
  assign_vcs(r, policy);
  return r;
}

Route ValiantRouting::route(int src_router, int dst_router, Rng& rng) const {
  D2NET_REQUIRE(src_router != dst_router, "route() needs distinct routers");
  if (table_.distance(src_router, dst_router) < 0) {
    // Destination unreachable on the (fault-degraded) table: an empty route
    // tells the simulator to drop or retry the packet.
    return Route{};
  }
  // Draw an intermediate other than the source and destination routers.
  // Redraws on src/dst behave exactly as before (same RNG stream on a
  // healthy table); draws whose segments a fault broke count toward a
  // bounded budget, falling back to the minimal path when exhausted.
  int via = -1;
  int broken_draws = 0;
  do {
    const int cand = intermediates_[rng.next_below(intermediates_.size())];
    if (cand == src_router || cand == dst_router) continue;
    if (table_.distance(src_router, cand) < 0 || table_.distance(cand, dst_router) < 0) {
      if (++broken_draws >= 2 * static_cast<int>(intermediates_.size())) break;
      continue;
    }
    via = cand;
  } while (via < 0);
  if (via < 0) {
    Route r;
    r.routers = table_.sample_path(src_router, dst_router, rng);
    r.intermediate_pos = -1;
    assign_vcs(r, policy_);
    return r;
  }
  return make_indirect(table_, policy_, src_router, via, dst_router, rng);
}

int ValiantRouting::num_vcs() const {
  return policy_ == VcPolicy::kHopIndex ? 2 * table_.diameter() : 2;
}

}  // namespace d2net
