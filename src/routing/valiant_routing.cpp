#include "routing/valiant_routing.h"

#include "common/error.h"
#include "topology/topology.h"

namespace d2net {

std::vector<int> valiant_intermediates(const Topology& topo) {
  switch (topo.kind()) {
    case TopologyKind::kSlimFly:
    case TopologyKind::kHyperX2D:
    case TopologyKind::kDragonfly: {
      std::vector<int> all(topo.num_routers());
      for (int r = 0; r < topo.num_routers(); ++r) all[r] = r;
      return all;
    }
    default:
      // Indirect topologies: restrict to endpoint-attached routers so
      // indirect routes are exactly two 2-hop segments (Section 3.2).
      return topo.edge_routers();
  }
}

ValiantRouting::ValiantRouting(const MinimalTable& table, VcPolicy policy,
                               SharedIntermediates intermediates)
    : table_(table), policy_(policy), intermediates_(std::move(intermediates)) {
  D2NET_REQUIRE(intermediates_ != nullptr && intermediates_->size() >= 3,
                "Valiant needs at least three eligible intermediate routers");
}

void ValiantRouting::route_into(int src_router, int dst_router, Rng& rng, Route& out) const {
  D2NET_REQUIRE(src_router != dst_router, "route() needs distinct routers");
  out.routers.clear();
  out.vcs.clear();
  out.intermediate_pos = -1;
  if (table_.distance(src_router, dst_router) < 0) {
    // Destination unreachable on the (fault-degraded) table: an empty route
    // tells the simulator to drop or retry the packet.
    return;
  }
  // Draw an intermediate other than the source and destination routers.
  // Redraws on src/dst behave exactly as before (same RNG stream on a
  // healthy table); draws whose segments a fault broke count toward a
  // bounded budget, falling back to the minimal path when exhausted.
  const std::vector<int>& vias = *intermediates_;
  int via = -1;
  int broken_draws = 0;
  do {
    const int cand = vias[rng.next_below(vias.size())];
    if (cand == src_router || cand == dst_router) continue;
    if (table_.distance(src_router, cand) < 0 || table_.distance(cand, dst_router) < 0) {
      if (++broken_draws >= 2 * static_cast<int>(vias.size())) break;
      continue;
    }
    via = cand;
  } while (via < 0);
  if (via < 0) {
    table_.sample_path_into(src_router, dst_router, rng, out.routers);
    assign_vcs(out, policy_);
    return;
  }
  // Two minimal segments through the intermediate, spliced in place (same
  // per-hop RNG draws as sampling each segment separately).
  table_.sample_path_into(src_router, via, rng, out.routers);
  out.intermediate_pos = static_cast<int>(out.routers.size()) - 1;
  table_.sample_path_append(via, dst_router, rng, out.routers);
  assign_vcs(out, policy_);
}

int ValiantRouting::num_vcs() const {
  return policy_ == VcPolicy::kHopIndex ? 2 * table_.diameter() : 2;
}

}  // namespace d2net
