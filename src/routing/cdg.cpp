#include "routing/cdg.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "routing/minimal_table.h"
#include "routing/routing_algorithm.h"
#include "topology/topology.h"

namespace d2net {
namespace {

/// Directed channel index: every (u, v) link direction gets a dense id.
class ChannelIndex {
 public:
  explicit ChannelIndex(const Topology& topo) {
    ids_.reserve(2 * topo.links().size());
    int next = 0;
    for (const Link& l : topo.links()) {
      ids_.emplace(key(l.r1, l.r2), next++);
      ids_.emplace(key(l.r2, l.r1), next++);
    }
    count_ = next;
  }

  int id(int u, int v) const {
    auto it = ids_.find(key(u, v));
    D2NET_ASSERT(it != ids_.end(), "unknown channel");
    return it->second;
  }
  int count() const { return count_; }

 private:
  static std::uint64_t key(int u, int v) {
    return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
  }
  std::unordered_map<std::uint64_t, int> ids_;
  int count_ = 0;
};

/// Dependency graph over (channel, vc) nodes with duplicate-free edges.
class DepGraph {
 public:
  DepGraph(int channels, int vcs) : vcs_(vcs), out_(static_cast<std::size_t>(channels) * vcs) {}

  int node(int channel, int vc) const { return channel * vcs_ + vc; }

  void add_edge(int from, int to) {
    if (seen_.insert((static_cast<std::uint64_t>(from) << 32) |
                     static_cast<std::uint32_t>(to))
            .second) {
      out_[from].push_back(to);
      ++edges_;
    }
  }

  /// Kahn's algorithm; true iff acyclic.
  bool acyclic() const {
    const int n = static_cast<int>(out_.size());
    std::vector<int> indeg(n, 0);
    for (int u = 0; u < n; ++u) {
      for (int v : out_[u]) ++indeg[v];
    }
    std::vector<int> stack;
    for (int u = 0; u < n; ++u) {
      if (indeg[u] == 0) stack.push_back(u);
    }
    int removed = 0;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      ++removed;
      for (int v : out_[u]) {
        if (--indeg[v] == 0) stack.push_back(v);
      }
    }
    return removed == n;
  }

  std::int64_t num_edges() const { return edges_; }
  std::int64_t used_nodes() const {
    std::unordered_set<int> used;
    for (std::size_t u = 0; u < out_.size(); ++u) {
      if (!out_[u].empty()) used.insert(static_cast<int>(u));
      for (int v : out_[u]) used.insert(v);
    }
    return static_cast<std::int64_t>(used.size());
  }

 private:
  int vcs_;
  std::vector<std::vector<int>> out_;
  std::unordered_set<std::uint64_t> seen_;
  std::int64_t edges_ = 0;
};

/// Adds the internal dependencies of every minimal path from a router in
/// `sources` to a router in `dests`, mapping hop position `pos` to VC via
/// `vc_of(pos)`. Only pairs that traffic can actually generate matter:
/// packets originate and terminate at endpoint-attached routers, and
/// Valiant segments start/end at eligible intermediates — enumerating
/// arbitrary pairs (e.g. GR -> GR in the MLFM, an away-then-towards walk)
/// would report spurious cycles.
template <typename VcOf>
void add_all_minimal_deps(const MinimalTable& table, const ChannelIndex& channels,
                          DepGraph& graph, const std::vector<int>& sources,
                          const std::vector<int>& dests, VcOf vc_of) {
  std::vector<std::vector<int>> paths;
  for (int s : sources) {
    for (int d : dests) {
      if (s == d || table.distance(s, d) < 2) continue;  // single-hop: no deps
      paths.clear();
      table.enumerate_paths(s, d, paths);
      for (const auto& p : paths) {
        for (std::size_t i = 0; i + 2 < p.size(); ++i) {
          const int ch1 = channels.id(p[i], p[i + 1]);
          const int ch2 = channels.id(p[i + 1], p[i + 2]);
          graph.add_edge(graph.node(ch1, vc_of(static_cast<int>(i))),
                         graph.node(ch2, vc_of(static_cast<int>(i) + 1)));
        }
      }
    }
  }
}

}  // namespace

CdgReport check_minimal_deadlock_freedom(const Topology& topo, const MinimalTable& table,
                                         VcPolicy policy) {
  const ChannelIndex channels(topo);
  const int vcs = policy == VcPolicy::kHopIndex ? std::max(1, table.diameter()) : 1;
  DepGraph graph(channels.count(), vcs);
  add_all_minimal_deps(table, channels, graph, topo.edge_routers(), topo.edge_routers(),
                       [&](int pos) { return policy == VcPolicy::kHopIndex ? pos : 0; });
  CdgReport report;
  report.acyclic = graph.acyclic();
  report.edges = graph.num_edges();
  report.nodes = graph.used_nodes();
  return report;
}

CdgReport check_indirect_deadlock_freedom(const Topology& topo, const MinimalTable& table,
                                          VcPolicy policy,
                                          const std::vector<int>& intermediates) {
  const ChannelIndex channels(topo);
  const int diam = std::max(1, table.diameter());
  const int vcs = policy == VcPolicy::kHopIndex ? 2 * diam : 2;
  DepGraph graph(channels.count(), vcs);

  // Phase-1 internal dependencies: edge router -> intermediate, VC mapping
  // of positions 0..L1-1.
  add_all_minimal_deps(table, channels, graph, topo.edge_routers(), intermediates,
                       [&](int pos) { return policy == VcPolicy::kHopIndex ? pos : 0; });
  // Phase-2 internal dependencies: intermediate -> edge router, positions
  // shifted by every feasible phase-1 length (conservative superset; see
  // header).
  if (policy == VcPolicy::kHopIndex) {
    for (int l1 = 1; l1 <= diam; ++l1) {
      add_all_minimal_deps(table, channels, graph, intermediates, topo.edge_routers(),
                           [&](int pos) { return std::min(l1 + pos, vcs - 1); });
    }
  } else {
    add_all_minimal_deps(table, channels, graph, intermediates, topo.edge_routers(),
                         [&](int) { return 1; });
  }
  // Junction dependencies at each eligible intermediate router: any
  // incoming channel (ending phase 1) to any outgoing channel (starting
  // phase 2).
  for (int via : intermediates) {
    for (int in_nb : topo.neighbors(via)) {
      const int ch_in = channels.id(in_nb, via);
      // Note: out_nb == in_nb stays included — a Valiant route may U-turn at
      // the intermediate (e.g. s->GR->via then via->GR->d in the MLFM).
      for (int out_nb : topo.neighbors(via)) {
        const int ch_out = channels.id(via, out_nb);
        if (policy == VcPolicy::kHopIndex) {
          for (int l1 = 1; l1 <= diam; ++l1) {
            graph.add_edge(graph.node(ch_in, l1 - 1), graph.node(ch_out, std::min(l1, vcs - 1)));
          }
        } else {
          graph.add_edge(graph.node(ch_in, 0), graph.node(ch_out, 1));
        }
      }
    }
  }

  CdgReport report;
  report.acyclic = graph.acyclic();
  report.edges = graph.num_edges();
  report.nodes = graph.used_nodes();
  return report;
}

CdgReport check_indirect_single_vc(const Topology& topo, const MinimalTable& table,
                                   const std::vector<int>& intermediates) {
  const ChannelIndex channels(topo);
  DepGraph graph(channels.count(), 1);
  add_all_minimal_deps(table, channels, graph, topo.edge_routers(), intermediates,
                       [](int) { return 0; });
  add_all_minimal_deps(table, channels, graph, intermediates, topo.edge_routers(),
                       [](int) { return 0; });
  for (int via : intermediates) {
    for (int in_nb : topo.neighbors(via)) {
      const int ch_in = channels.id(in_nb, via);
      for (int out_nb : topo.neighbors(via)) {
        graph.add_edge(graph.node(ch_in, 0), graph.node(channels.id(via, out_nb), 0));
      }
    }
  }
  CdgReport report;
  report.acyclic = graph.acyclic();
  report.edges = graph.num_edges();
  report.nodes = graph.used_nodes();
  return report;
}

}  // namespace d2net
