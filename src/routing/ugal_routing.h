// UGAL-L adaptive routing (paper Section 3.3).
//
// At injection the source router compares the cost of one minimal candidate
// (CM = occupancy of its first output queue) against nI random indirect
// candidates (CI_j = c * occupancy of that candidate's first output queue)
// and picks the cheapest, preferring the minimal route on ties. Two knobs
// from the paper:
//   * SF length scaling (SF-A): c = cSF * L_I / L_M, the original UGAL cost
//     ratio, because SF minimal routes are 1 or 2 hops long.
//   * Threshold variant (x-ATh): route minimally whenever the minimal
//     queue occupancy is below T (a fraction of the queue capacity).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "routing/minimal_table.h"
#include "routing/routing_algorithm.h"
#include "routing/valiant_routing.h"

namespace d2net {

struct UgalParams {
  int num_indirect = 4;      ///< nI: indirect candidates per decision
  double c = 2.0;            ///< indirect-path cost penalty (cSF for the SF)
  bool sf_length_scaling = false;  ///< c_eff = c * L_I / L_M (SF-A / SF-ATh)
  double threshold = -1.0;   ///< T as a fraction of queue capacity; < 0 = off
};

class UgalRouting final : public RoutingAlgorithm {
 public:
  /// `table` and `loads` must outlive the algorithm.
  UgalRouting(const MinimalTable& table, VcPolicy policy, SharedIntermediates intermediates,
              const UgalParams& params, const PortLoadProvider& loads, std::string name);
  UgalRouting(const MinimalTable& table, VcPolicy policy, std::vector<int> intermediates,
              const UgalParams& params, const PortLoadProvider& loads, std::string name)
      : UgalRouting(table, policy,
                    std::make_shared<const std::vector<int>>(std::move(intermediates)),
                    params, loads, std::move(name)) {}

  void route_into(int src_router, int dst_router, Rng& rng, Route& out) const override;
  int num_vcs() const override;
  std::string name() const override { return name_; }

  const UgalParams& params() const { return params_; }

 private:
  const MinimalTable& table_;
  VcPolicy policy_;
  SharedIntermediates intermediates_;
  UgalParams params_;
  const PortLoadProvider& loads_;
  std::string name_;
};

}  // namespace d2net
