// Per-router believed fault state for the modeled control plane
// (FaultConfig::propagation; see docs/resilience.md, "Detection and
// propagation").
//
// With an oracle fault layer every router shares one global truth. With a
// modeled control plane each fault becomes a *link-state update* that
// routers learn at different times — at detection for the attached routers,
// at flood arrival for everyone else — so, transiently, two routers can
// disagree about which links exist. This class is that disagreement made
// queryable: per (router, update) knowledge bits plus the derived believed
// liveness of any link or router from a given router's viewpoint. The
// engine consults it when salvage-rerouting ("does *this* router believe
// the sampled path survives?") and the convergence tracker reads the
// knowledge counts.
//
// Deliberately independent of sim/ headers: routing code stays below the
// event core in the library layering.
#pragma once

#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace d2net {

/// One flooded link-state update: the undirected link (u, v) — or, when
/// v < 0, router u — changed believed liveness to `alive`.
struct LinkStateUpdate {
  int u = -1;
  int v = -1;  ///< < 0 marks a router-liveness update about `u`
  bool alive = false;
  TimePs phys_time = 0;  ///< when the physical fault happened
  /// Routers eligible to learn the update (alive at phys_time); an update
  /// is *converged* once known_count reaches this.
  int target = 0;
};

class LocalFaultView {
 public:
  /// (Re)arms the view for a run: all knowledge cleared, slots for one
  /// update per fault-schedule entry. `clear()`-ed views stay inert.
  void reset(int num_routers, int num_updates) {
    num_routers_ = num_routers;
    updates_.assign(static_cast<std::size_t>(num_updates), Slot{});
    applied_order_.clear();
  }
  void clear() { reset(0, 0); }
  bool active() const { return num_routers_ > 0; }

  /// Registers schedule entry `id` the instant its fault physically
  /// applies. Updates register in simulated-time order, which is the order
  /// believed-state queries replay them in.
  void register_update(int id, int u, int v, bool alive, TimePs phys_time, int target) {
    Slot& s = slot(id);
    D2NET_ASSERT(!s.registered, "fault update registered twice");
    s.registered = true;
    s.info = {u, v, alive, phys_time, target};
    s.known.assign(static_cast<std::size_t>(num_routers_), 0);
    s.known_count = 0;
    applied_order_.push_back(id);
  }
  bool registered(int id) const { return slot(id).registered; }
  const LinkStateUpdate& update(int id) const { return slot(id).info; }

  /// Router learns update `id`; false when it already knew. From the first
  /// learning on, the router's believed liveness reflects the update.
  bool learn(int router, int id) {
    Slot& s = slot(id);
    D2NET_ASSERT(s.registered, "learning an unregistered fault update");
    char& bit = s.known[static_cast<std::size_t>(router)];
    if (bit) return false;
    bit = 1;
    ++s.known_count;
    return true;
  }
  bool knows(int router, int id) const {
    const Slot& s = slot(id);
    return s.registered && s.known[static_cast<std::size_t>(router)] != 0;
  }
  int known_count(int id) const { return slot(id).known_count; }
  bool converged(int id) const {
    const Slot& s = slot(id);
    return s.registered && s.known_count >= s.info.target;
  }

  /// Believed liveness of the undirected link (u, v) from `router`'s
  /// viewpoint: the latest *learned* update about it wins; with none the
  /// link is believed alive. A learned router-down about either endpoint
  /// also kills the belief (a dead router's links carry nothing).
  bool believes_link_alive(int router, int u, int v) const;
  /// Believed liveness of router r from `router`'s viewpoint.
  bool believes_router_alive(int router, int r) const;

 private:
  struct Slot {
    bool registered = false;
    LinkStateUpdate info;
    std::vector<char> known;  ///< per-router knowledge bit
    int known_count = 0;
  };
  Slot& slot(int id) { return updates_[static_cast<std::size_t>(id)]; }
  const Slot& slot(int id) const { return updates_[static_cast<std::size_t>(id)]; }

  int num_routers_ = 0;
  std::vector<Slot> updates_;
  /// Update ids in physical-application order; believed-state queries scan
  /// it so later state overrides earlier (down then up = up, once both are
  /// known). Fault schedules are short, so the scan is cheap.
  std::vector<int> applied_order_;
};

}  // namespace d2net
