#include "routing/minimal_routing.h"

#include "common/error.h"

namespace d2net {

MinimalRouting::MinimalRouting(const MinimalTable& table, VcPolicy policy)
    : table_(table), policy_(policy) {}

void MinimalRouting::route_into(int src_router, int dst_router, Rng& rng, Route& out) const {
  D2NET_REQUIRE(src_router != dst_router, "route() needs distinct routers");
  if (table_.distance(src_router, dst_router) < 0) {
    // Destination unreachable on the (fault-degraded) table: an empty route
    // tells the simulator to drop or retry the packet.
    out.routers.clear();
    out.vcs.clear();
    out.intermediate_pos = -1;
    return;
  }
  table_.sample_path_into(src_router, dst_router, rng, out.routers);
  out.intermediate_pos = -1;
  assign_vcs(out, policy_);
}

int MinimalRouting::num_vcs() const {
  // Hop-indexed VCs need one VC per hop of the longest minimal route;
  // the phase policy keeps every minimal route on VC 0.
  return policy_ == VcPolicy::kHopIndex ? table_.diameter() : 1;
}

}  // namespace d2net
