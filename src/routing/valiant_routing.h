// Oblivious indirect random routing (paper Section 3.2): Valiant's scheme.
// A packet is first routed minimally to a uniformly chosen intermediate
// router, then minimally to its destination. For the SF every router is an
// eligible intermediate (routes of 2-4 hops); for the MLFM and OFT only
// endpoint-attached routers are eligible, which pins indirect routes to
// exactly 4 hops and keeps load balancing effective (Section 3.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "routing/minimal_table.h"
#include "routing/routing_algorithm.h"

namespace d2net {

class Topology;

/// The intermediate-router set Valiant draws from for a given topology:
/// all routers for direct topologies, endpoint-attached routers otherwise.
std::vector<int> valiant_intermediates(const Topology& topo);

/// Shared, immutable form of the same set: built once per topology and
/// handed to every algorithm instance (the parallel sweep runner constructs
/// one routing stack per in-flight point, all referencing one copy).
using SharedIntermediates = std::shared_ptr<const std::vector<int>>;

class ValiantRouting final : public RoutingAlgorithm {
 public:
  /// `table` must outlive the algorithm; `intermediates` must be non-empty
  /// beyond {src, dst} for every pair (guaranteed by the studied networks).
  ValiantRouting(const MinimalTable& table, VcPolicy policy,
                 SharedIntermediates intermediates);
  ValiantRouting(const MinimalTable& table, VcPolicy policy, std::vector<int> intermediates)
      : ValiantRouting(table, policy,
                       std::make_shared<const std::vector<int>>(std::move(intermediates))) {}

  void route_into(int src_router, int dst_router, Rng& rng, Route& out) const override;
  int num_vcs() const override;
  std::string name() const override { return "INR"; }

 private:
  const MinimalTable& table_;
  VcPolicy policy_;
  SharedIntermediates intermediates_;
};

}  // namespace d2net
