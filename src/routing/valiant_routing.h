// Oblivious indirect random routing (paper Section 3.2): Valiant's scheme.
// A packet is first routed minimally to a uniformly chosen intermediate
// router, then minimally to its destination. For the SF every router is an
// eligible intermediate (routes of 2-4 hops); for the MLFM and OFT only
// endpoint-attached routers are eligible, which pins indirect routes to
// exactly 4 hops and keeps load balancing effective (Section 3.2).
#pragma once

#include <string>
#include <vector>

#include "routing/minimal_table.h"
#include "routing/routing_algorithm.h"

namespace d2net {

class Topology;

/// The intermediate-router set Valiant draws from for a given topology:
/// all routers for direct topologies, endpoint-attached routers otherwise.
std::vector<int> valiant_intermediates(const Topology& topo);

class ValiantRouting final : public RoutingAlgorithm {
 public:
  /// `table` must outlive the algorithm; `intermediates` must be non-empty
  /// beyond {src, dst} for every pair (guaranteed by the studied networks).
  ValiantRouting(const MinimalTable& table, VcPolicy policy, std::vector<int> intermediates);

  Route route(int src_router, int dst_router, Rng& rng) const override;
  int num_vcs() const override;
  std::string name() const override { return "INR"; }

  /// Builds the concatenated two-segment route through `via`; shared with
  /// UGAL's candidate construction.
  static Route make_indirect(const MinimalTable& table, VcPolicy policy, int src, int via,
                             int dst, Rng& rng);

 private:
  const MinimalTable& table_;
  VcPolicy policy_;
  std::vector<int> intermediates_;
};

}  // namespace d2net
