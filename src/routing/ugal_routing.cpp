#include "routing/ugal_routing.h"

#include "common/error.h"

namespace d2net {

UgalRouting::UgalRouting(const MinimalTable& table, VcPolicy policy,
                         SharedIntermediates intermediates, const UgalParams& params,
                         const PortLoadProvider& loads, std::string name)
    : table_(table),
      policy_(policy),
      intermediates_(std::move(intermediates)),
      params_(params),
      loads_(loads),
      name_(std::move(name)) {
  D2NET_REQUIRE(params_.num_indirect >= 1, "UGAL needs at least one indirect candidate");
  D2NET_REQUIRE(intermediates_ != nullptr && intermediates_->size() >= 3,
                "UGAL needs at least three intermediates");
}

void UgalRouting::route_into(int src_router, int dst_router, Rng& rng, Route& out) const {
  D2NET_REQUIRE(src_router != dst_router, "route() needs distinct routers");
  out.routers.clear();
  out.vcs.clear();
  out.intermediate_pos = -1;

  // Minimal candidate: among equally short first hops pick the least-loaded
  // output queue (footnote 1 of the paper permits lowest-cost selection).
  const auto nh = table_.next_hops(src_router, dst_router);
  if (nh.empty()) {
    // Destination unreachable on the (fault-degraded) table: an empty route
    // tells the simulator to drop or retry the packet.
    return;
  }
  int min_first = nh[0];
  std::int64_t q_min = loads_.output_queue_bytes(src_router, nh[0]);
  for (std::size_t i = 1; i < nh.size(); ++i) {
    const std::int64_t q = loads_.output_queue_bytes(src_router, nh[i]);
    if (q < q_min) {
      q_min = q;
      min_first = nh[i];
    }
  }

  auto make_minimal = [&] {
    out.routers.push_back(src_router);
    out.routers.push_back(min_first);
    if (min_first != dst_router) {
      table_.sample_path_append(min_first, dst_router, rng, out.routers);
    }
    out.intermediate_pos = -1;
    assign_vcs(out, policy_);
  };

  // Threshold variant: minimal whenever the local queue is nearly empty.
  if (params_.threshold >= 0.0) {
    const auto limit = static_cast<std::int64_t>(params_.threshold *
                                                 static_cast<double>(loads_.output_queue_capacity()));
    if (q_min < limit) {
      make_minimal();
      return;
    }
  }

  const double len_min = static_cast<double>(table_.distance(src_router, dst_router));
  const double cost_min = static_cast<double>(q_min);

  // Indirect candidates. The cost is read on a concrete first hop; the
  // winning route is then built through that same first hop so the decision
  // and the traffic agree.
  const std::vector<int>& vias = *intermediates_;
  double best_cost = cost_min;
  int best_via = -1;
  int best_first = -1;
  for (int j = 0; j < params_.num_indirect; ++j) {
    // Redraw on src/dst exactly as before (same RNG stream on a healthy
    // table); intermediates with a broken segment additionally count toward
    // a bounded budget so a heavily disconnected table cannot spin forever.
    int via = -1;
    int broken_draws = 0;
    do {
      const int cand = vias[rng.next_below(vias.size())];
      if (cand == src_router || cand == dst_router) continue;
      if (table_.distance(src_router, cand) < 0 || table_.distance(cand, dst_router) < 0) {
        if (++broken_draws >= 2 * static_cast<int>(vias.size())) break;
        continue;
      }
      via = cand;
    } while (via < 0);
    if (via < 0) continue;
    const auto first_hops = table_.next_hops(src_router, via);
    D2NET_ASSERT(!first_hops.empty(), "no next hop toward intermediate");
    const int first = first_hops[rng.next_below(first_hops.size())];
    const std::int64_t q = loads_.output_queue_bytes(src_router, first);
    double c_eff = params_.c;
    if (params_.sf_length_scaling) {
      const double len_ind = static_cast<double>(table_.distance(src_router, via) +
                                                 table_.distance(via, dst_router));
      c_eff = params_.c * len_ind / len_min;
    }
    const double cost = c_eff * static_cast<double>(q);
    // Strict inequality: the minimal candidate wins ties.
    if (cost < best_cost) {
      best_cost = cost;
      best_via = via;
      best_first = first;
    }
  }

  if (best_via < 0) {
    make_minimal();
    return;
  }
  out.routers.push_back(src_router);
  out.routers.push_back(best_first);
  if (best_first != best_via) {
    table_.sample_path_append(best_first, best_via, rng, out.routers);
  }
  out.intermediate_pos = static_cast<int>(out.routers.size()) - 1;
  if (best_via != dst_router) {
    table_.sample_path_append(best_via, dst_router, rng, out.routers);
  }
  assign_vcs(out, policy_);
}

int UgalRouting::num_vcs() const {
  return policy_ == VcPolicy::kHopIndex ? 2 * table_.diameter() : 2;
}

}  // namespace d2net
