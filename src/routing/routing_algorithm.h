// Routing algorithm interface (paper Section 3).
//
// All algorithms decide the complete route at injection time at the source
// router; adaptive algorithms additionally read the *local* output-queue
// occupancies of the source router through PortLoadProvider (the "local
// UGAL" variant of Section 3.3 — no global buffer knowledge).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "routing/route.h"

namespace d2net {

/// Read-only view of a router's local output-queue state, implemented by
/// the simulator. The zero implementation makes adaptive algorithms behave
/// like their oblivious counterparts and serves graph-level tests.
class PortLoadProvider {
 public:
  virtual ~PortLoadProvider() = default;

  /// Bytes currently queued at `router` for the output port toward the
  /// adjacent router `next_hop` (all VCs combined).
  virtual std::int64_t output_queue_bytes(int router, int next_hop) const = 0;

  /// Capacity of one output queue in bytes (for threshold-based decisions).
  virtual std::int64_t output_queue_capacity() const = 0;
};

/// A PortLoadProvider that always reports empty queues.
class ZeroLoadProvider final : public PortLoadProvider {
 public:
  std::int64_t output_queue_bytes(int, int) const override { return 0; }
  std::int64_t output_queue_capacity() const override { return 1; }
};

/// How per-hop virtual channels are assigned (Section 3.4).
enum class VcPolicy {
  /// SF scheme [Besta & Hoefler]: VC = hop index. 2 VCs suffice for minimal
  /// routes, 4 for indirect ones.
  kHopIndex,
  /// MLFM/OFT scheme: minimal routes are inherently deadlock-free on VC 0
  /// (towards/away ordering); indirect routes use VC 0 up to the
  /// intermediate router and VC 1 afterwards.
  kPhase,
};

/// Fills route.vcs according to the policy; route.intermediate_pos must be
/// set beforehand. Returns the number of VCs the policy may use for routes
/// of this shape.
void assign_vcs(Route& route, VcPolicy policy);

/// Decides routes between router pairs. Implementations are immutable and
/// thread-compatible; the Rng carries all mutable state.
class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Writes the route from src_router to dst_router (src != dst) into `out`
  /// (overwritten, not appended). This is the simulator's per-packet entry
  /// point; with the inline-array Route it never allocates.
  virtual void route_into(int src_router, int dst_router, Rng& rng, Route& out) const = 0;

  /// Convenience wrapper for tests and analysis code.
  Route route(int src_router, int dst_router, Rng& rng) const {
    Route out;
    route_into(src_router, dst_router, rng, out);
    return out;
  }

  /// Upper bound on VC indices this algorithm emits, for simulator sizing.
  virtual int num_vcs() const = 0;

  /// True when route decisions read only source-router-local state (the
  /// PortLoadProvider queries stay on the source router). Sharded execution
  /// requires it — a shard owns its routers' state exclusively between
  /// window barriers — so NetworkSim demotes shard-unsafe algorithms
  /// (UGAL-G reads every router on each candidate path) to serial runs.
  virtual bool shard_safe() const { return true; }

  virtual std::string name() const = 0;
};

}  // namespace d2net
