// UGAL-G — the *global* UGAL variant (Section 3.3 mentions it and sets it
// aside as impractical to implement in hardware; we provide it as an
// oracle baseline for the local variant).
//
// At injection the algorithm evaluates one sampled minimal path and nI
// indirect candidates using the queue occupancies of EVERY router along
// each candidate path (not just the source router's): cost = sum of the
// per-hop output-queue occupancies, scaled by the penalty c for indirect
// candidates. This is the idealized "perfect knowledge, zero latency"
// upper bound on what adaptivity can achieve.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "routing/minimal_table.h"
#include "routing/routing_algorithm.h"
#include "routing/valiant_routing.h"

namespace d2net {

class UgalGlobalRouting final : public RoutingAlgorithm {
 public:
  UgalGlobalRouting(const MinimalTable& table, VcPolicy policy,
                    SharedIntermediates intermediates, int num_indirect, double c,
                    const PortLoadProvider& loads);
  UgalGlobalRouting(const MinimalTable& table, VcPolicy policy,
                    std::vector<int> intermediates, int num_indirect, double c,
                    const PortLoadProvider& loads)
      : UgalGlobalRouting(table, policy,
                          std::make_shared<const std::vector<int>>(std::move(intermediates)),
                          num_indirect, c, loads) {}

  void route_into(int src_router, int dst_router, Rng& rng, Route& out) const override;
  int num_vcs() const override;
  /// Reads queue occupancies of every router on each candidate path.
  bool shard_safe() const override { return false; }
  std::string name() const override { return "UGAL-G"; }

 private:
  /// Sum of output-queue occupancies along a concrete router path.
  std::int64_t path_cost(const int* routers, std::size_t n) const;

  const MinimalTable& table_;
  VcPolicy policy_;
  SharedIntermediates intermediates_;
  int num_indirect_;
  double c_;
  const PortLoadProvider& loads_;
};

}  // namespace d2net
