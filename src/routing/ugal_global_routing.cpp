#include "routing/ugal_global_routing.h"

#include "common/error.h"

namespace d2net {

UgalGlobalRouting::UgalGlobalRouting(const MinimalTable& table, VcPolicy policy,
                                     std::vector<int> intermediates, int num_indirect,
                                     double c, const PortLoadProvider& loads)
    : table_(table),
      policy_(policy),
      intermediates_(std::move(intermediates)),
      num_indirect_(num_indirect),
      c_(c),
      loads_(loads) {
  D2NET_REQUIRE(num_indirect_ >= 1, "UGAL-G needs at least one indirect candidate");
  D2NET_REQUIRE(intermediates_.size() >= 3, "UGAL-G needs at least three intermediates");
}

std::int64_t UgalGlobalRouting::path_cost(const std::vector<int>& routers) const {
  std::int64_t cost = 0;
  for (std::size_t i = 0; i + 1 < routers.size(); ++i) {
    cost += loads_.output_queue_bytes(routers[i], routers[i + 1]);
  }
  return cost;
}

Route UgalGlobalRouting::route(int src_router, int dst_router, Rng& rng) const {
  D2NET_REQUIRE(src_router != dst_router, "route() needs distinct routers");
  if (table_.distance(src_router, dst_router) < 0) {
    // Destination unreachable on the (fault-degraded) table: an empty route
    // tells the simulator to drop or retry the packet.
    return Route{};
  }

  std::vector<int> best_path = table_.sample_path(src_router, dst_router, rng);
  double best_cost = static_cast<double>(path_cost(best_path));
  int best_intermediate_pos = -1;

  for (int j = 0; j < num_indirect_; ++j) {
    // Same RNG stream as before on a healthy table (see UgalRouting).
    int via = -1;
    int broken_draws = 0;
    do {
      const int cand = intermediates_[rng.next_below(intermediates_.size())];
      if (cand == src_router || cand == dst_router) continue;
      if (table_.distance(src_router, cand) < 0 || table_.distance(cand, dst_router) < 0) {
        if (++broken_draws >= 2 * static_cast<int>(intermediates_.size())) break;
        continue;
      }
      via = cand;
    } while (via < 0);
    if (via < 0) continue;
    std::vector<int> candidate = table_.sample_path(src_router, via, rng);
    const int via_pos = static_cast<int>(candidate.size()) - 1;
    const std::vector<int> second = table_.sample_path(via, dst_router, rng);
    candidate.insert(candidate.end(), second.begin() + 1, second.end());
    const double cost = c_ * static_cast<double>(path_cost(candidate));
    if (cost < best_cost) {  // strict: minimal wins ties
      best_cost = cost;
      best_path = std::move(candidate);
      best_intermediate_pos = via_pos;
    }
  }

  Route r;
  r.routers = std::move(best_path);
  r.intermediate_pos = best_intermediate_pos;
  assign_vcs(r, policy_);
  return r;
}

int UgalGlobalRouting::num_vcs() const {
  return policy_ == VcPolicy::kHopIndex ? 2 * table_.diameter() : 2;
}

}  // namespace d2net
