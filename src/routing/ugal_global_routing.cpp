#include "routing/ugal_global_routing.h"

#include "common/error.h"

namespace d2net {

UgalGlobalRouting::UgalGlobalRouting(const MinimalTable& table, VcPolicy policy,
                                     SharedIntermediates intermediates, int num_indirect,
                                     double c, const PortLoadProvider& loads)
    : table_(table),
      policy_(policy),
      intermediates_(std::move(intermediates)),
      num_indirect_(num_indirect),
      c_(c),
      loads_(loads) {
  D2NET_REQUIRE(num_indirect_ >= 1, "UGAL-G needs at least one indirect candidate");
  D2NET_REQUIRE(intermediates_ != nullptr && intermediates_->size() >= 3,
                "UGAL-G needs at least three intermediates");
}

std::int64_t UgalGlobalRouting::path_cost(const int* routers, std::size_t n) const {
  std::int64_t cost = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cost += loads_.output_queue_bytes(routers[i], routers[i + 1]);
  }
  return cost;
}

void UgalGlobalRouting::route_into(int src_router, int dst_router, Rng& rng,
                                   Route& out) const {
  D2NET_REQUIRE(src_router != dst_router, "route() needs distinct routers");
  out.routers.clear();
  out.vcs.clear();
  out.intermediate_pos = -1;
  if (table_.distance(src_router, dst_router) < 0) {
    // Destination unreachable on the (fault-degraded) table: an empty route
    // tells the simulator to drop or retry the packet.
    return;
  }

  // Best-so-far path accumulates directly in `out`; candidates build in an
  // inline scratch of the same capacity (no heap traffic per decision).
  table_.sample_path_into(src_router, dst_router, rng, out.routers);
  double best_cost = static_cast<double>(path_cost(out.routers.begin(), out.routers.size()));

  InlineVec<int, Route::kMaxRouters> candidate;
  const std::vector<int>& vias = *intermediates_;
  for (int j = 0; j < num_indirect_; ++j) {
    // Same RNG stream as before on a healthy table (see UgalRouting).
    int via = -1;
    int broken_draws = 0;
    do {
      const int cand = vias[rng.next_below(vias.size())];
      if (cand == src_router || cand == dst_router) continue;
      if (table_.distance(src_router, cand) < 0 || table_.distance(cand, dst_router) < 0) {
        if (++broken_draws >= 2 * static_cast<int>(vias.size())) break;
        continue;
      }
      via = cand;
    } while (via < 0);
    if (via < 0) continue;
    table_.sample_path_into(src_router, via, rng, candidate);
    const int via_pos = static_cast<int>(candidate.size()) - 1;
    table_.sample_path_append(via, dst_router, rng, candidate);
    const double cost = c_ * static_cast<double>(path_cost(candidate.begin(), candidate.size()));
    if (cost < best_cost) {  // strict: minimal wins ties
      best_cost = cost;
      out.routers = candidate;
      out.intermediate_pos = via_pos;
    }
  }

  assign_vcs(out, policy_);
}

int UgalGlobalRouting::num_vcs() const {
  return policy_ == VcPolicy::kHopIndex ? 2 * table_.diameter() : 2;
}

}  // namespace d2net
