#include "common/error.h"
#include "routing/routing_algorithm.h"

namespace d2net {

void assign_vcs(Route& route, VcPolicy policy) {
  route.vcs.assign(route.routers.size() > 0 ? route.routers.size() - 1 : 0, 0);
  switch (policy) {
    case VcPolicy::kHopIndex:
      for (std::size_t i = 0; i < route.vcs.size(); ++i) {
        route.vcs[i] = static_cast<std::uint8_t>(i);
      }
      break;
    case VcPolicy::kPhase:
      if (route.intermediate_pos >= 0) {
        // VC 0 while moving towards the intermediate destination, VC 1 on
        // the second minimal segment (Section 3.4).
        for (std::size_t i = 0; i < route.vcs.size(); ++i) {
          route.vcs[i] = static_cast<std::uint8_t>(
              static_cast<int>(i) >= route.intermediate_pos ? 1 : 0);
        }
      }
      break;
  }
}

}  // namespace d2net
