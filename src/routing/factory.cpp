#include "routing/factory.h"

#include "common/error.h"
#include "routing/minimal_routing.h"
#include "routing/ugal_global_routing.h"
#include "routing/valiant_routing.h"
#include "topology/topology.h"

namespace d2net {

const char* to_string(RoutingStrategy s) {
  switch (s) {
    case RoutingStrategy::kMinimal: return "MIN";
    case RoutingStrategy::kValiant: return "INR";
    case RoutingStrategy::kUgal: return "UGAL";
    case RoutingStrategy::kUgalThreshold: return "UGAL-Th";
    case RoutingStrategy::kUgalGlobal: return "UGAL-G";
  }
  return "?";
}

VcPolicy vc_policy_for(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSlimFly:
    case TopologyKind::kHyperX2D:
    // Dragonfly minimal routes (local-global-local) are not ordered by a
    // towards/away classification; the standard scheme increments the VC
    // per hop, which the hop-index policy implements.
    case TopologyKind::kDragonfly:
      return VcPolicy::kHopIndex;
    default:
      return VcPolicy::kPhase;
  }
}

UgalParams default_ugal_params(TopologyKind kind, bool threshold) {
  UgalParams p;
  switch (kind) {
    case TopologyKind::kSlimFly:
    case TopologyKind::kHyperX2D:
    case TopologyKind::kDragonfly:  // UGAL's original target topology
      p.num_indirect = 4;
      p.c = 1.0;  // cSF
      p.sf_length_scaling = true;
      break;
    case TopologyKind::kMlfm:
      p.num_indirect = 5;
      p.c = 2.0;
      break;
    case TopologyKind::kOft:
      p.num_indirect = 1;
      p.c = 2.0;
      break;
    default:
      p.num_indirect = 4;
      p.c = 2.0;
      break;
  }
  p.threshold = threshold ? 0.10 : -1.0;
  return p;
}

std::unique_ptr<RoutingAlgorithm> make_routing(const Topology& topo, const MinimalTable& table,
                                               RoutingStrategy strategy,
                                               const PortLoadProvider& loads) {
  return make_routing(topo, table, strategy, loads,
                      default_ugal_params(topo.kind(), strategy == RoutingStrategy::kUgalThreshold));
}

std::unique_ptr<RoutingAlgorithm> make_routing(const Topology& topo, const MinimalTable& table,
                                               RoutingStrategy strategy,
                                               const PortLoadProvider& loads,
                                               const UgalParams& params,
                                               SharedIntermediates intermediates) {
  const VcPolicy policy = vc_policy_for(topo.kind());
  // Routes are stored in the packets' fixed inline arrays: a healthy
  // indirect route needs at most 2 * diameter + 1 routers. (Fault salvage
  // can stretch routes further; the simulator clamps its hop limit to the
  // same capacity.)
  D2NET_REQUIRE(2 * table.diameter() + 1 <= Route::kMaxRouters,
                "topology diameter exceeds the inline route capacity");
  auto vias = [&]() -> SharedIntermediates {
    if (intermediates != nullptr) return std::move(intermediates);
    return std::make_shared<const std::vector<int>>(valiant_intermediates(topo));
  };
  switch (strategy) {
    case RoutingStrategy::kMinimal:
      return std::make_unique<MinimalRouting>(table, policy);
    case RoutingStrategy::kValiant:
      return std::make_unique<ValiantRouting>(table, policy, vias());
    case RoutingStrategy::kUgalGlobal:
      return std::make_unique<UgalGlobalRouting>(table, policy, vias(), params.num_indirect,
                                                 params.c, loads);
    case RoutingStrategy::kUgal:
    case RoutingStrategy::kUgalThreshold: {
      UgalParams p = params;
      if (strategy == RoutingStrategy::kUgalThreshold && p.threshold < 0) p.threshold = 0.10;
      if (strategy == RoutingStrategy::kUgal) p.threshold = -1.0;
      std::string label = std::string(to_string(topo.kind())) +
                          (strategy == RoutingStrategy::kUgal ? "-A" : "-ATh");
      return std::make_unique<UgalRouting>(table, policy, vias(), p, loads, std::move(label));
    }
  }
  D2NET_ASSERT(false, "unreachable");
  return nullptr;
}

}  // namespace d2net
