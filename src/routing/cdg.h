// Channel-dependency-graph (CDG) construction and cycle detection
// (Dally & Towles; paper Section 3.4).
//
// A virtual channel network is deadlock-free if the dependency graph over
// (directed channel, VC) pairs is acyclic. We build the CDG from the exact
// route set an algorithm can emit — all minimal paths for minimal routing,
// all (src, via, dst) two-segment combinations for indirect/adaptive
// routing — and run a topological-order check.
#pragma once

#include <cstdint>
#include <vector>

namespace d2net {

class Topology;
class MinimalTable;
enum class VcPolicy;

struct CdgReport {
  bool acyclic = false;
  std::int64_t nodes = 0;  ///< (channel, VC) pairs actually used
  std::int64_t edges = 0;  ///< dependencies
};

/// CDG over every minimal route (all shortest paths for all router pairs)
/// under the given VC policy.
CdgReport check_minimal_deadlock_freedom(const Topology& topo, const MinimalTable& table,
                                         VcPolicy policy);

/// CDG over every possible indirect route: for each ordered (src, dst) pair
/// and each eligible intermediate, all shortest-path combinations of the two
/// segments. This also covers UGAL (whose route set is the union of the
/// minimal and indirect sets) when combined with the minimal check.
/// O(R^2 * |intermediates|) pair enumeration — intended for the moderate
/// topology sizes used in tests.
CdgReport check_indirect_deadlock_freedom(const Topology& topo, const MinimalTable& table,
                                          VcPolicy policy,
                                          const std::vector<int>& intermediates);

/// Same dependency set as check_indirect_deadlock_freedom but with every hop
/// forced onto a single virtual channel. Expected to be *cyclic* on all the
/// studied topologies — this is the negative control demonstrating why the
/// VC schemes of Section 3.4 are required.
CdgReport check_indirect_single_vc(const Topology& topo, const MinimalTable& table,
                                   const std::vector<int>& intermediates);

}  // namespace d2net
