// Route representation shared by the routing algorithms and the simulator.
//
// Routing decisions are made once, at injection, at the source router
// (paper Section 3.3, local UGAL); the chosen router path and the per-hop
// virtual channels travel with the packet.
#pragma once

#include <cstdint>
#include <vector>

namespace d2net {

struct Route {
  /// Routers visited, source first, destination last. A route within a
  /// single router has size 1 and no hops.
  std::vector<int> routers;
  /// vcs[i] is the virtual channel used on the link routers[i]->routers[i+1];
  /// size == routers.size() - 1.
  std::vector<std::uint8_t> vcs;
  /// Index into `routers` of the Valiant intermediate, or -1 for a minimal
  /// route.
  int intermediate_pos = -1;

  int hops() const { return static_cast<int>(routers.size()) - 1; }
  bool minimal() const { return intermediate_pos < 0; }
};

}  // namespace d2net
