// Route representation shared by the routing algorithms and the simulator.
//
// Routing decisions are made once, at injection, at the source router
// (paper Section 3.3, local UGAL); the chosen router path and the per-hop
// virtual channels travel with the packet.
//
// Storage is a fixed inline array rather than two heap vectors: a route is
// one contiguous slab inside the pooled Packet, so building or copying one
// never allocates and the simulator's per-hop reads are offset loads from
// the packet's own cache lines. Diameter-2 routes need at most 5 routers
// (2 + 2 hops through a Valiant intermediate, plus slack); the capacity
// covers fault-salvaged detours too, whose length the simulator clamps via
// its hop limit (see NetworkSim::setup_faults). Route construction sites
// guard the capacity with D2NET_HOT_ASSERT — fatal in Debug/sanitizer
// builds — and cold entry points (make_routing, fault setup) check it with
// always-on requires.
#pragma once

#include <cstdint>
#include <initializer_list>

#include "common/error.h"

namespace d2net {

/// Fixed-capacity inline vector with the small slice of the std::vector
/// interface the routing code uses. Trivially copyable when T is.
template <typename T, int N>
class InlineVec {
 public:
  using value_type = T;

  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }
  InlineVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  static constexpr int capacity() { return N; }
  std::size_t size() const { return static_cast<std::size_t>(size_); }
  bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void push_back(T v) {
    D2NET_HOT_ASSERT(size_ < N, "InlineVec overflow");
    data_[size_++] = v;
  }

  /// Shrinks or zero-fill-grows to n (vector::resize semantics).
  void resize(std::size_t n) {
    D2NET_HOT_ASSERT(n <= static_cast<std::size_t>(N), "InlineVec overflow");
    for (int i = size_; i < static_cast<int>(n); ++i) data_[i] = T{};
    size_ = static_cast<int>(n);
  }

  void assign(std::size_t n, T v) {
    D2NET_HOT_ASSERT(n <= static_cast<std::size_t>(N), "InlineVec overflow");
    size_ = static_cast<int>(n);
    for (int i = 0; i < size_; ++i) data_[i] = v;
  }
  // Exact-match overload so assign(1, x) does not fall into the iterator
  // template below.
  void assign(int n, T v) { assign(static_cast<std::size_t>(n), v); }

  template <typename It>
  void assign(It first, It last) {
    clear();
    append(first, last);
  }

  /// Appends [first, last) — the only insert position the routing code
  /// uses is end().
  template <typename It>
  void append(It first, It last) {
    for (; first != last; ++first) push_back(static_cast<T>(*first));
  }

 private:
  T data_[N];
  int size_ = 0;
};

struct Route {
  /// Inline capacity in routers. Valiant on a diameter-D topology needs
  /// 2D + 1; fault salvage stretches routes further but is clamped to
  /// kMaxHops by the simulator's hop limit. 24 leaves generous slack for
  /// every studied network (diameter 2) and the small synthetic test
  /// topologies (diameter <= 5).
  static constexpr int kMaxRouters = 24;
  static constexpr int kMaxHops = kMaxRouters - 1;

  /// Routers visited, source first, destination last. A route within a
  /// single router has size 1 and no hops.
  InlineVec<int, kMaxRouters> routers;
  /// vcs[i] is the virtual channel used on the link routers[i]->routers[i+1];
  /// size == routers.size() - 1.
  InlineVec<std::uint8_t, kMaxHops> vcs;
  /// Index into `routers` of the Valiant intermediate, or -1 for a minimal
  /// route.
  int intermediate_pos = -1;

  int hops() const { return static_cast<int>(routers.size()) - 1; }
  bool minimal() const { return intermediate_pos < 0; }
};

}  // namespace d2net
