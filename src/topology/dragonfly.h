// Dragonfly (Kim, Dally, Scott & Abts, ISCA'08) — the most widely deployed
// cost-reduced topology (PERCS, Cray Cascade) that the paper's introduction
// positions the diameter-two designs against. Included as a baseline
// comparator: diameter 3 (local-global-local), cost close to but not
// matching the 2-links/3-ports budget of the diameter-two designs.
//
// Structure: g groups of `a` routers; routers within a group form a full
// mesh; each router has h global links; every pair of groups is joined by
// (at least) one global link. The balanced configuration of the original
// paper uses a = 2p = 2h and g = a*h + 1 groups.
#pragma once

#include "topology/topology.h"

namespace d2net {

/// Builds a Dragonfly with `a` routers per group, `h` global links per
/// router, `p` endpoints per router, and g = a*h + 1 groups (the maximal
/// single-link-per-group-pair arrangement). Global link g of router r in
/// group G connects toward group (G + 1 + r*h + g) mod num_groups, the
/// standard "consecutive" arrangement.
Topology build_dragonfly(int a, int h, int p);

/// Balanced Dragonfly for router radix r (= p + a - 1 + h with a = 2p,
/// h = p): requires (r + 1) % 4 == 0, p = (r + 1) / 4.
Topology build_dragonfly_balanced(int r);

}  // namespace d2net
