// Two-dimensional HyperX / Generalized Hypercube (Ahn et al. SC'09;
// Bhuyan & Agrawal 1984), Section 2.1.1 of the paper.
//
// Routers form an s1 x s2 grid; each router is fully connected to every
// other router in its row and in its column, giving diameter two. The
// balanced configuration with router radix r uses s1 = s2 = r/3 + 1 and
// p = r/3 endpoints per router.
#pragma once

#include "topology/topology.h"

namespace d2net {

/// Builds the s1 x s2 HyperX with p endpoints per router.
Topology build_hyperx2d(int s1, int s2, int p);

/// Builds the balanced 2-D HyperX for router radix r (r divisible by 3).
Topology build_hyperx2d_balanced(int r);

}  // namespace d2net
