#include "topology/fat_tree.h"

#include <string>

#include "common/error.h"

namespace d2net {

Topology build_fat_tree2(int r) {
  D2NET_REQUIRE(r >= 2 && r % 2 == 0, "two-level Fat-Tree needs an even radix");
  const int half = r / 2;
  Topology topo("FatTree2(r=" + std::to_string(r) + ")", TopologyKind::kFatTree2);
  // Leaves first (they carry the endpoints), spines after.
  for (int i = 0; i < r; ++i) topo.add_router(RouterInfo{0, i, 0}, half);
  for (int s = 0; s < half; ++s) topo.add_router(RouterInfo{1, s, 0}, 0);
  for (int i = 0; i < r; ++i) {
    for (int s = 0; s < half; ++s) topo.add_link(i, r + s);
  }
  topo.finalize();
  D2NET_ASSERT(topo.num_nodes() == r * half, "FT2 node count");
  return topo;
}

Topology build_fat_tree3(int r) {
  D2NET_REQUIRE(r >= 2 && r % 2 == 0, "three-level Fat-Tree needs an even radix");
  const int half = r / 2;
  Topology topo("FatTree3(r=" + std::to_string(r) + ")", TopologyKind::kFatTree3);

  // Leaves of all pods first, so endpoints are contiguous pod-major.
  // Leaf (pod, i) id = pod * half + i.
  for (int pod = 0; pod < r; ++pod) {
    for (int i = 0; i < half; ++i) topo.add_router(RouterInfo{0, pod, i}, half);
  }
  // Aggregation (pod, j) id = r*half + pod*half + j.
  const int agg_base = r * half;
  for (int pod = 0; pod < r; ++pod) {
    for (int j = 0; j < half; ++j) topo.add_router(RouterInfo{1, pod, j}, 0);
  }
  // Core (group j, index m) id = agg_base + r*half + j*half + m. Core group
  // j serves aggregation router j of every pod.
  const int core_base = agg_base + r * half;
  for (int j = 0; j < half; ++j) {
    for (int m = 0; m < half; ++m) topo.add_router(RouterInfo{2, j, m}, 0);
  }

  for (int pod = 0; pod < r; ++pod) {
    for (int i = 0; i < half; ++i) {
      for (int j = 0; j < half; ++j) {
        topo.add_link(pod * half + i, agg_base + pod * half + j);
      }
    }
    for (int j = 0; j < half; ++j) {
      for (int m = 0; m < half; ++m) {
        topo.add_link(agg_base + pod * half + j, core_base + j * half + m);
      }
    }
  }

  topo.finalize();
  D2NET_ASSERT(topo.num_nodes() == r * r * r / 4, "FT3 node count");
  for (int c = 0; c < half * half; ++c) {
    D2NET_ASSERT(topo.network_degree(core_base + c) == r, "core radix");
  }
  return topo;
}

}  // namespace d2net
