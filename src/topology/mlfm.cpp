#include "topology/mlfm.h"

#include <string>

#include "common/error.h"

namespace d2net {

Topology build_mlfm(int h, int l, int p) {
  D2NET_REQUIRE(h >= 2, "MLFM h must be >= 2");
  D2NET_REQUIRE(l >= 1, "MLFM l must be >= 1");
  D2NET_REQUIRE(p >= 1, "MLFM p must be >= 1");

  Topology topo("MLFM(h=" + std::to_string(h) + ",l=" + std::to_string(l) +
                    ",p=" + std::to_string(p) + ")",
                TopologyKind::kMlfm);

  // Local routers: layer-major so node ids run intra-router, intra-layer,
  // then across layers (paper Section 4.4 mapping).
  for (int layer = 0; layer < l; ++layer) {
    for (int idx = 0; idx <= h; ++idx) {
      topo.add_router(RouterInfo{/*level=*/0, /*a=*/layer, /*b=*/idx}, p);
    }
  }

  // Global routers, one per unordered LR-index pair (i < j); each connects
  // to LR i and LR j in every layer.
  for (int i = 0; i <= h; ++i) {
    for (int j = i + 1; j <= h; ++j) {
      const int gr = topo.add_router(RouterInfo{/*level=*/1, /*a=*/i, /*b=*/j}, 0);
      for (int layer = 0; layer < l; ++layer) {
        topo.add_link(gr, mlfm_lr_id(h, layer, i));
        topo.add_link(gr, mlfm_lr_id(h, layer, j));
      }
    }
  }

  topo.finalize();
  D2NET_ASSERT(topo.num_routers() == l * (h + 1) + h * (h + 1) / 2, "MLFM router count");
  D2NET_ASSERT(topo.num_nodes() == l * (h + 1) * p, "MLFM node count");
  return topo;
}

Topology build_mlfm(int h) { return build_mlfm(h, h, h); }

}  // namespace d2net
