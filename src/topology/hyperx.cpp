#include "topology/hyperx.h"

#include <string>

#include "common/error.h"

namespace d2net {

Topology build_hyperx2d(int s1, int s2, int p) {
  D2NET_REQUIRE(s1 >= 2 && s2 >= 2, "HyperX dimensions must be >= 2");
  D2NET_REQUIRE(p >= 1, "HyperX p must be >= 1");

  Topology topo("HyperX2D(" + std::to_string(s1) + "x" + std::to_string(s2) +
                    ",p=" + std::to_string(p) + ")",
                TopologyKind::kHyperX2D);
  auto rid = [s2](int i, int j) { return i * s2 + j; };
  for (int i = 0; i < s1; ++i) {
    for (int j = 0; j < s2; ++j) {
      topo.add_router(RouterInfo{0, i, j}, p);
    }
  }
  // Full mesh within each row (dimension 2) and each column (dimension 1).
  for (int i = 0; i < s1; ++i) {
    for (int j = 0; j < s2; ++j) {
      for (int j2 = j + 1; j2 < s2; ++j2) topo.add_link(rid(i, j), rid(i, j2));
      for (int i2 = i + 1; i2 < s1; ++i2) topo.add_link(rid(i, j), rid(i2, j));
    }
  }
  topo.finalize();
  return topo;
}

Topology build_hyperx2d_balanced(int r) {
  D2NET_REQUIRE(r >= 3 && r % 3 == 0, "balanced 2-D HyperX needs radix divisible by 3");
  const int s = r / 3 + 1;
  return build_hyperx2d(s, s, r / 3);
}

}  // namespace d2net
