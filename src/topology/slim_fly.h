// Diameter-two Slim Fly (Besta & Hoefler, SC'14) over MMS graphs
// (McKay, Miller & Širáň 1998), as described in Section 2.1.2 of
// Kathareios et al., SC'15.
//
// Given a prime power q = 4w + delta (delta in {-1, 0, +1}), the network has
// R = 2q^2 routers in two subgraphs of q columns x q rows. Router
// (0, x, y) connects to (0, x, y') iff y - y' is in the generator set X;
// (1, m, c) connects to (1, m, c') iff c - c' is in X'; and (0, x, y)
// connects to (1, m, c) iff y = m*x + c, all arithmetic over GF(q).
// The network radix is r' = (3q - delta) / 2 and each router hosts
// p = floor(r'/2) or ceil(r'/2) endpoints (the paper evaluates both).
#pragma once

#include <vector>

#include "topology/topology.h"

namespace d2net {

class GaloisField;

/// How to round the per-router endpoint count p = r'/2 (Section 2.1.2).
enum class SlimFlyP {
  kFloor,  ///< p = floor(r'/2): slightly under-subscribed, better performance
  kCeil,   ///< p = ceil(r'/2): higher scalability, earlier saturation
};

/// Parameters derived from q.
struct SlimFlyShape {
  int q = 0;
  int delta = 0;       ///< q = 4w + delta
  int w = 0;
  int network_radix = 0;  ///< r' = (3q - delta) / 2
  int num_routers = 0;    ///< 2 q^2
};

/// Validates q (prime power of the form 4w + delta) and derives the shape.
/// Throws ArgumentError for infeasible q.
SlimFlyShape slim_fly_shape(int q);

/// The MMS generator sets X (subgraph 0) and X' (subgraph 1) as field
/// elements; exposed for testing. Both have 2w elements and are closed
/// under negation.
struct MmsGeneratorSets {
  std::vector<int> x;
  std::vector<int> x_prime;
};
MmsGeneratorSets mms_generator_sets(const GaloisField& gf, int delta, int w);

/// Builds the Slim Fly for prime power q. If endpoints_per_router is < 0 the
/// count is derived from `rounding`; otherwise it overrides p directly.
/// Router ids follow the paper's contiguous mapping order:
/// subgraph-major, then column, then row.
Topology build_slim_fly(int q, SlimFlyP rounding = SlimFlyP::kFloor,
                        int endpoints_per_router = -1);

}  // namespace d2net
