#include "topology/oft.h"

#include <string>

#include "common/error.h"
#include "gf/galois_field.h"
#include "gf/mols.h"

namespace d2net {

Ml3bTable build_ml3b(int k) {
  D2NET_REQUIRE(k >= 2, "ML3B degree must be >= 2");
  const int n = k - 1;  // order of the Latin squares / projective plane
  // n == 1 (k == 2) is the trivial projective plane of order 1 (a triangle)
  // and needs no Latin squares.
  D2NET_REQUIRE(n == 1 || GaloisField::is_prime_power(n),
                "ML3B requires k - 1 to be a prime power, got k = " + std::to_string(k));
  const int rl = oft_routers_per_level(k);  // = n^2 + n + 1
  Ml3bTable table(rl, std::vector<int>(k, -1));

  // Step 1: first row holds RL-k .. RL-1.
  for (int c = 0; c < k; ++c) table[0][c] = rl - k + c;

  // Step 2: first column of the remaining rows holds k-1 copies of RL-k,
  // then k-1 copies of RL-k+1, ... (one block of n rows per value).
  for (int row = 1; row < rl; ++row) table[row][0] = rl - k + (row - 1) / n;

  // Step 3: the k(k-1) x (k-1) remainder is split into k squares of n x n.
  //   Square 0: 0 .. n^2-1 row-major.
  //   Square 1: its transpose.
  //   Squares 2..k-1: the k-2 MOLS of order n beyond the transpose pair,
  //   with column c (1-based within the square) increased by (c-1) * n.
  //
  // In GF terms squares 1..k-1 are L_a(r, c) = r + a*c (a = 0 for the
  // transpose, then each nonzero element) offset by c*n; together with
  // square 0 this realizes the line set of the projective plane PG(2, n).
  GaloisField gf(n == 1 ? 2 : n);  // n == 1 (k == 2) needs no squares beyond size-1
  auto row_of_square = [&](int s, int r) { return 1 + s * n + r; };
  for (int s = 0; s < k; ++s) {
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        int value;
        if (s == 0) {
          value = r * n + c;
        } else {
          // Multiplier a: 0 for s == 1 (transpose), else the (s-1)-th
          // nonzero field element in increasing encoding (for prime n this
          // is simply s - 1, recovering (r + (s-1)c) mod n).
          const int a = s - 1;
          const int raw = n == 1 ? 0 : gf.add(r, gf.mul(a, c));
          value = raw + c * n;
        }
        table[row_of_square(s, r)][c + 1] = value;
      }
    }
  }
  D2NET_ASSERT(ml3b_is_valid(table, k), "ML3B construction failed validity check");
  return table;
}

bool ml3b_is_valid(const Ml3bTable& table, int k) {
  const int rl = oft_routers_per_level(k);
  if (static_cast<int>(table.size()) != rl) return false;
  std::vector<int> appearances(rl, 0);
  for (const auto& row : table) {
    if (static_cast<int>(row.size()) != k) return false;
    for (int v : row) {
      if (v < 0 || v >= rl) return false;
      ++appearances[v];
    }
  }
  for (int v = 0; v < rl; ++v) {
    if (appearances[v] != k) return false;
  }
  // Pairwise single intersection (the SPT "exactly one minimal path"
  // property). O(RL^2 * k) with bitsets of row membership.
  std::vector<std::vector<bool>> member(rl, std::vector<bool>(rl, false));
  for (int i = 0; i < rl; ++i) {
    for (int v : table[i]) {
      if (member[i][v]) return false;  // duplicate within a row
      member[i][v] = true;
    }
  }
  for (int i = 0; i < rl; ++i) {
    for (int j = i + 1; j < rl; ++j) {
      int common = 0;
      for (int v : table[i]) common += member[j][v] ? 1 : 0;
      if (common != 1) return false;
    }
  }
  return true;
}

Topology build_oft(int k) {
  const Ml3bTable table = build_ml3b(k);
  const int rl = oft_routers_per_level(k);

  Topology topo("OFT(k=" + std::to_string(k) + ")", TopologyKind::kOft);
  // Endpoint-attached levels first so node ids are contiguous across L0
  // then L2 (paper Section 4.4 mapping); L1 routers carry no endpoints.
  for (int i = 0; i < rl; ++i) topo.add_router(RouterInfo{/*level=*/0, i, 0}, k);
  for (int i = 0; i < rl; ++i) topo.add_router(RouterInfo{/*level=*/2, i, 0}, k);
  for (int j = 0; j < rl; ++j) topo.add_router(RouterInfo{/*level=*/1, j, 0}, 0);

  const int l1_base = 2 * rl;
  for (int i = 0; i < rl; ++i) {
    for (int c = 0; c < k; ++c) {
      topo.add_link(i, l1_base + table[i][c]);           // L0 i ~ L1
      topo.add_link(rl + i, l1_base + table[i][c]);      // L2 i ~ L1
    }
  }

  topo.finalize();
  D2NET_ASSERT(topo.num_nodes() == 2 * k * rl, "OFT node count");
  for (int r = 0; r < topo.num_routers(); ++r) {
    D2NET_ASSERT(topo.network_degree(r) + topo.endpoints_of(r) == 2 * k, "OFT radix != 2k");
  }
  return topo;
}

}  // namespace d2net
