// Two-Level Orthogonal Fat-Tree (Valerio et al. 1993/94; Kathareios et al.
// SC'15, Section 2.2.4) — the r1 = r2 = k instance of the Stacked
// Single-Path Tree class.
//
// The k-OFT is a three-router-level indirect network. Levels L0, L1 and L2
// each contain RL = k^2 - k + 1 routers. L0 router i and L2 router i both
// connect to the k L1 routers listed in row i of the k-ML3B table (the
// "Maximal Leaves Basic Building Block"), so symmetric counterpart pairs
// (0,i)/(2,i) share all their L1 neighbors while any other L0/L2 pair of
// rows shares exactly one (projective-plane incidence). Every L0/L2 router
// hosts p = k endpoints; all routers have radix 2k. N = 2k(k^2 - k + 1).
#pragma once

#include <vector>

#include "topology/topology.h"

namespace d2net {

/// Tabular representation of the k-ML3B: RL rows of k L1-router indices.
/// Row i lists the L1 routers adjacent to L0 router i (and to L2 router i).
using Ml3bTable = std::vector<std::vector<int>>;

/// Builds the k-ML3B via the MOLS-based algorithm of Section 2.2.4.
/// Requires k - 1 to be a prime power (the paper states k = prime + 1; the
/// GF-based MOLS generalize this to prime powers). Throws otherwise.
Ml3bTable build_ml3b(int k);

/// Checks the defining SPT property: any two distinct rows intersect in
/// exactly one value, and every value in [0, RL) appears in exactly k rows.
bool ml3b_is_valid(const Ml3bTable& table, int k);

/// Builds the two-level k-OFT. Router id layout (matches the paper's
/// contiguous node mapping — endpoint-attached levels first):
///   L0 router i -> id i;  L2 router i -> id RL + i;  L1 router j -> 2RL + j.
Topology build_oft(int k);

/// Number of routers per OFT level for a given k.
inline int oft_routers_per_level(int k) { return k * k - k + 1; }

}  // namespace d2net
