// Export helpers: Graphviz DOT and a plain edge list, so topologies can be
// inspected with standard tooling or fed to external analyzers.
#pragma once

#include <iosfwd>

namespace d2net {

class Topology;

/// Writes the router graph as Graphviz DOT. Routers are labelled
/// "r<id>/p<endpoints>" and colored by their RouterInfo level (subgraph /
/// LR-GR / OFT level), which makes the structural families visible at a
/// glance.
void write_dot(const Topology& topo, std::ostream& os);

/// Writes a self-describing edge list:
///   # d2net <name> routers=<R> nodes=<N>
///   v <router> <endpoints> <level>
///   e <r1> <r2>
void write_edge_list(const Topology& topo, std::ostream& os);

}  // namespace d2net
