#include "topology/spec.h"

#include <map>
#include <sstream>

#include "common/error.h"
#include "topology/dragonfly.h"
#include "topology/fat_tree.h"
#include "topology/hyperx.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"
#include "topology/sspt.h"

namespace d2net {
namespace {

struct ParsedSpec {
  std::string family;
  std::map<std::string, std::string> kv;
};

ParsedSpec parse(const std::string& spec) {
  ParsedSpec out;
  const auto colon = spec.find(':');
  out.family = spec.substr(0, colon);
  if (colon == std::string::npos) return out;
  std::stringstream rest(spec.substr(colon + 1));
  std::string item;
  while (std::getline(rest, item, ',')) {
    const auto eq = item.find('=');
    D2NET_REQUIRE(eq != std::string::npos, "expected key=value in topology spec: " + item);
    out.kv[item.substr(0, eq)] = item.substr(eq + 1);
  }
  return out;
}

int get_int(const ParsedSpec& s, const std::string& key) {
  auto it = s.kv.find(key);
  D2NET_REQUIRE(it != s.kv.end(), "topology spec needs " + key + "=<int>");
  return std::stoi(it->second);
}

int get_int_or(const ParsedSpec& s, const std::string& key, int fallback) {
  auto it = s.kv.find(key);
  return it == s.kv.end() ? fallback : std::stoi(it->second);
}

}  // namespace

Topology build_topology_from_spec(const std::string& spec) {
  const ParsedSpec s = parse(spec);
  if (s.family == "sf" || s.family == "slimfly") {
    const int q = get_int(s, "q");
    auto it = s.kv.find("p");
    if (it == s.kv.end() || it->second == "floor") return build_slim_fly(q, SlimFlyP::kFloor);
    if (it->second == "ceil") return build_slim_fly(q, SlimFlyP::kCeil);
    return build_slim_fly(q, SlimFlyP::kFloor, std::stoi(it->second));
  }
  if (s.family == "mlfm") {
    const int h = get_int(s, "h");
    return build_mlfm(h, get_int_or(s, "l", h), get_int_or(s, "p", h));
  }
  if (s.family == "oft") return build_oft(get_int(s, "k"));
  if (s.family == "sspt") {
    const int r1 = get_int(s, "r1");
    const int r2 = get_int(s, "r2");
    D2NET_REQUIRE(r2 == 2 || r2 == r1,
                  "known SPT interconnection patterns exist for r2 = 2 and r2 = r1");
    const SptPattern pattern =
        r2 == 2 ? make_spt_pattern_mesh(r1) : make_spt_pattern_ml3b(r1);
    return build_sspt(pattern, get_int_or(s, "s", -1), get_int_or(s, "p", -1));
  }
  if (s.family == "hyperx") return build_hyperx2d_balanced(get_int(s, "r"));
  if (s.family == "dragonfly" || s.family == "df") {
    if (s.kv.count("r")) return build_dragonfly_balanced(get_int(s, "r"));
    return build_dragonfly(get_int(s, "a"), get_int(s, "h"), get_int(s, "p"));
  }
  if (s.family == "ft2") return build_fat_tree2(get_int(s, "r"));
  if (s.family == "ft3") return build_fat_tree3(get_int(s, "r"));
  D2NET_REQUIRE(false, "unknown topology family '" + s.family + "'; " + topology_spec_help());
  return Topology("", TopologyKind::kCustom);  // unreachable
}

const char* topology_spec_help() {
  return "specs: sf:q=<q>[,p=floor|ceil|<int>] | mlfm:h=<h>[,l=..,p=..] | oft:k=<k> | "
         "sspt:r1=<r1>,r2=<2|r1>[,s=..,p=..] | hyperx:r=<r> | dragonfly:a=..,h=..,p=.. | "
         "dragonfly:r=<r> | ft2:r=<r> | ft3:r=<r>";
}

}  // namespace d2net
