// Core graph model shared by all topology generators, the routing layer and
// the simulator.
//
// A Topology is a set of routers connected by full-duplex links, each router
// optionally hosting a number of endpoints (compute nodes). Endpoints are
// numbered contiguously per router in router-id order, which implements the
// paper's contiguous rank mapping (Section 4.4): generators order routers so
// that node ids run "first intra-router, then intra-column/intra-layer, then
// across subgraphs/levels".
#pragma once

#include <array>
#include <string>
#include <vector>

namespace d2net {

/// Which generator produced the topology; used by routing policies that need
/// topology-specific knowledge (eligible Valiant intermediates, VC policy).
enum class TopologyKind {
  kSlimFly,
  kMlfm,
  kOft,
  kHyperX2D,
  kFatTree2,
  kFatTree3,
  kDragonfly,
  kCustom,
};

const char* to_string(TopologyKind kind);

/// Per-router structural metadata filled in by the generators.
///
/// Interpretation by kind:
///   SlimFly:  level = subgraph (0/1), a = column (x or m), b = row (y or c)
///   MLFM:     level = 0 for local routers (a = layer, b = index) and
///             1 for global routers (a, b = the pair of LR indices served)
///   OFT:      level = 0/1/2, a = index within level
///   HyperX2D: a, b = coordinates
///   FatTree:  level = tree level (0 = leaves), a = index within level
struct RouterInfo {
  int level = 0;
  int a = 0;
  int b = 0;
};

/// An undirected router-to-router link (r1 < r2 after finalize()).
struct Link {
  int r1 = 0;
  int r2 = 0;
};

/// Immutable-after-finalize network graph.
class Topology {
 public:
  Topology(std::string name, TopologyKind kind) : name_(std::move(name)), kind_(kind) {}

  // ---- construction (generators only) ----

  /// Adds a router and returns its id.
  int add_router(const RouterInfo& info, int num_endpoints);

  /// Adds an undirected router-to-router link.
  void add_link(int r1, int r2);

  /// Validates the graph and builds the derived indices. Must be called
  /// exactly once, after which the topology is immutable.
  void finalize();

  // ---- read access ----

  const std::string& name() const { return name_; }
  TopologyKind kind() const { return kind_; }
  bool finalized() const { return finalized_; }

  int num_routers() const { return static_cast<int>(adj_.size()); }
  int num_nodes() const { return total_nodes_; }
  int num_links() const { return static_cast<int>(links_.size()); }  ///< router-router only

  /// Total router ports in use: network ports + endpoint ports.
  int num_ports() const;

  /// Neighbor routers of r, in port order. A neighbor may appear more than
  /// once if parallel links exist.
  const std::vector<int>& neighbors(int r) const { return adj_[r]; }
  int network_degree(int r) const { return static_cast<int>(adj_[r].size()); }
  int router_radix(int r) const { return network_degree(r) + endpoints_of(r); }

  int endpoints_of(int r) const { return nodes_per_router_[r]; }
  const RouterInfo& info(int r) const { return info_[r]; }

  /// First node id attached to router r (nodes are contiguous per router).
  int node_base(int r) const { return node_base_[r]; }
  int router_of_node(int node) const { return router_of_node_[node]; }

  /// Routers that host at least one endpoint, in id order.
  const std::vector<int>& edge_routers() const { return edge_routers_; }

  /// All undirected links with r1 < r2.
  const std::vector<Link>& links() const { return links_; }

  /// True if a and b are joined by at least one link.
  bool connected(int a, int b) const;

  /// Cost metrics from the paper's Fig. 3: links / ports per endpoint.
  /// Link count includes the node-to-router links (one per endpoint).
  double links_per_node() const;
  double ports_per_node() const;

 private:
  std::string name_;
  TopologyKind kind_;
  bool finalized_ = false;

  std::vector<std::vector<int>> adj_;
  std::vector<int> nodes_per_router_;
  std::vector<RouterInfo> info_;
  std::vector<Link> links_;

  // Derived by finalize():
  int total_nodes_ = 0;
  std::vector<int> node_base_;
  std::vector<int> router_of_node_;
  std::vector<int> edge_routers_;
  std::vector<std::vector<int>> sorted_adj_;  ///< For connected() lookups.
};

}  // namespace d2net
