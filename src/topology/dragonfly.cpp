#include "topology/dragonfly.h"

#include <string>

#include "common/error.h"

namespace d2net {

Topology build_dragonfly(int a, int h, int p) {
  D2NET_REQUIRE(a >= 2, "Dragonfly needs >= 2 routers per group");
  D2NET_REQUIRE(h >= 1, "Dragonfly needs >= 1 global link per router");
  D2NET_REQUIRE(p >= 1, "Dragonfly needs >= 1 endpoint per router");
  const int groups = a * h + 1;

  Topology topo("Dragonfly(a=" + std::to_string(a) + ",h=" + std::to_string(h) +
                    ",p=" + std::to_string(p) + ")",
                TopologyKind::kDragonfly);
  // Router id = group * a + index; node numbering is thus contiguous
  // intra-router, intra-group, then group-major.
  for (int g = 0; g < groups; ++g) {
    for (int r = 0; r < a; ++r) {
      topo.add_router(RouterInfo{/*level=*/0, /*a=*/g, /*b=*/r}, p);
    }
  }
  auto rid = [a](int group, int router) { return group * a + router; };

  // Intra-group full mesh.
  for (int g = 0; g < groups; ++g) {
    for (int r1 = 0; r1 < a; ++r1) {
      for (int r2 = r1 + 1; r2 < a; ++r2) {
        topo.add_link(rid(g, r1), rid(g, r2));
      }
    }
  }
  // Global links, consecutive arrangement: group G's global channel
  // c = offset - 1 (owned by router c / h) reaches group G + offset.
  for (int g = 0; g < groups; ++g) {
    for (int offset = 1; offset <= a * h; ++offset) {
      const int dst_group = (g + offset) % groups;
      if (dst_group < g) continue;  // each unordered pair once
      const int src_channel = offset - 1;
      const int dst_channel = a * h - offset;  // reverse offset - 1
      topo.add_link(rid(g, src_channel / h), rid(dst_group, dst_channel / h));
    }
  }

  topo.finalize();
  D2NET_ASSERT(topo.num_routers() == groups * a, "Dragonfly router count");
  for (int r = 0; r < topo.num_routers(); ++r) {
    D2NET_ASSERT(topo.network_degree(r) == a - 1 + h, "Dragonfly router degree");
  }
  return topo;
}

Topology build_dragonfly_balanced(int r) {
  D2NET_REQUIRE((r + 1) % 4 == 0, "balanced Dragonfly needs radix with (r+1) % 4 == 0");
  const int p = (r + 1) / 4;
  return build_dragonfly(2 * p, p, p);
}

}  // namespace d2net
