// Single-Path Trees (SPT) and Stacked Single-Path Trees (SSPT) — the
// indirect diameter-two topology class the paper introduces (Section
// 2.2.2). The MLFM is the r2 = 2 instance; the two-level OFT is the
// r2 = r1 instance.
//
// An SPT(r1, r2) is a two-level network where i) exactly one minimal path
// exists between any pair of level-one routers and ii) a minimal number of
// level-two routers is used. With level-one router-to-router radix r1 and
// level-two radix r2 it scales to R1 = 1 + r1*(r2 - 1) level-one routers,
// served by R2 = R1 * r1 / r2 level-two routers; each level-one router
// hosts p = r1 endpoints.
//
// Stacking instantiates s = 2*r1/r2 logical SPT copies and merges each
// s-tuple of corresponding level-two routers into one physical radix-2*r1
// router, yielding a single-radix network. Endpoint pairs in different
// copies that sit on *corresponding* level-one routers gain path diversity
// r1; every other pair keeps the single minimal path.
#pragma once

#include <vector>

#include "topology/topology.h"

namespace d2net {

/// The up-link incidence pattern of an SPT: row i lists the level-two
/// routers adjacent to level-one router i.
struct SptPattern {
  int r1 = 0;      ///< level-one router-to-router radix (row length)
  int r2 = 0;      ///< level-two radix (appearances of each L2 router)
  int num_l1 = 0;  ///< 1 + r1*(r2 - 1)
  int num_l2 = 0;  ///< num_l1 * r1 / r2
  std::vector<std::vector<int>> uplinks;
};

/// The r2 = 2 pattern (one L2 router per L1 pair — the MLFM's full mesh).
SptPattern make_spt_pattern_mesh(int r1);

/// The r2 = r1 = k pattern via the k-ML3B (requires k - 1 prime power).
SptPattern make_spt_pattern_ml3b(int k);

/// Checks the defining SPT properties: row lengths r1, every L2 router in
/// exactly r2 rows, and every pair of rows sharing exactly one L2 router.
bool spt_pattern_is_valid(const SptPattern& pattern);

/// Builds the plain (unstacked) SPT: level-one routers first (each hosting
/// `endpoints_per_router` nodes; default -1 = r1), then level-two routers.
Topology build_spt(const SptPattern& pattern, int endpoints_per_router = -1);

/// Builds the SSPT from `copies` logical SPT instances (default -1 =
/// 2*r1/r2, the single-radix stacking of the paper). Level-one routers are
/// copy-major (copy 0's L1 routers, then copy 1's, ...), and each merged
/// level-two router carries the links of all copies.
Topology build_sspt(const SptPattern& pattern, int copies = -1,
                    int endpoints_per_router = -1);

}  // namespace d2net
