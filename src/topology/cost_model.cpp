#include "topology/cost_model.h"

#include "common/error.h"
#include "gf/galois_field.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

TopologyCostPoint make_point(std::string family, std::string config, int radix, int nodes,
                             int routers, std::int64_t net_links, std::int64_t ports,
                             int diam) {
  TopologyCostPoint p;
  p.family = std::move(family);
  p.config = std::move(config);
  p.router_radix = radix;
  p.num_nodes = nodes;
  p.num_routers = routers;
  p.links_per_node = static_cast<double>(net_links + nodes) / nodes;
  p.ports_per_node = static_cast<double>(ports) / nodes;
  p.diameter = diam;
  return p;
}

}  // namespace

std::optional<TopologyCostPoint> best_slim_fly(int r, bool ceil_p) {
  std::optional<TopologyCostPoint> best;
  for (int q = 4; q <= 2 * r; ++q) {
    if (!GaloisField::is_prime_power(q) || q % 4 == 2) continue;
    const SlimFlyShape s = slim_fly_shape(q);
    const int p = ceil_p ? (s.network_radix + 1) / 2 : s.network_radix / 2;
    const int radix = s.network_radix + p;
    if (radix > r) continue;
    const int routers = s.num_routers;
    const int nodes = p * routers;
    const std::int64_t net_links = static_cast<std::int64_t>(s.network_radix) * routers / 2;
    const std::int64_t ports = static_cast<std::int64_t>(radix) * routers;
    if (!best || nodes > best->num_nodes) {
      best = make_point(ceil_p ? "SF(ceil)" : "SF(floor)", "q=" + std::to_string(q), radix,
                        nodes, routers, net_links, ports, 2);
    }
  }
  return best;
}

std::optional<TopologyCostPoint> best_mlfm(int r) {
  const int h = r / 2;
  if (h < 2) return std::nullopt;
  const int routers = h * (h + 1) + h * (h + 1) / 2;  // LRs + GRs
  const int nodes = h * h * (h + 1);
  // LR links up: h per LR; equivalently GR degree 2h summed over GRs / 2... each
  // GR has 2 links per layer * h layers = 2h; total = GRs * 2h / 1, each link
  // counted once from the GR side.
  const std::int64_t net_links = static_cast<std::int64_t>(h) * (h + 1) / 2 * 2 * h;
  const std::int64_t ports = 2 * net_links + nodes;
  return make_point("MLFM", "h=" + std::to_string(h), 2 * h, nodes, routers, net_links, ports,
                    2);
}

std::optional<TopologyCostPoint> best_oft(int r) {
  for (int k = r / 2; k >= 2; --k) {
    if (!GaloisField::is_prime_power(k - 1)) continue;
    const int rl = oft_routers_per_level(k);
    const int routers = 3 * rl;
    const int nodes = 2 * k * rl;
    const std::int64_t net_links = static_cast<std::int64_t>(2) * k * rl;  // k up-links per L0+L2 router
    const std::int64_t ports = 2 * net_links + nodes;
    return make_point("OFT", "k=" + std::to_string(k), 2 * k, nodes, routers, net_links, ports,
                      2);
  }
  return std::nullopt;
}

std::optional<TopologyCostPoint> best_hyperx2d(int r) {
  const int third = r / 3;
  if (third < 1) return std::nullopt;
  const int s = third + 1;
  const int routers = s * s;
  const int nodes = third * routers;
  // Each router: (s-1) row + (s-1) col network links.
  const std::int64_t net_links = static_cast<std::int64_t>(routers) * 2 * (s - 1) / 2;
  const std::int64_t ports = static_cast<std::int64_t>(routers) * (2 * (s - 1)) + nodes;
  return make_point("HyperX2D", std::to_string(s) + "x" + std::to_string(s), 3 * third, nodes,
                    routers, net_links, ports, 2);
}

std::optional<TopologyCostPoint> best_dragonfly(int r) {
  const int p = (r + 1) / 4;
  if (p < 1) return std::nullopt;
  const int a = 2 * p;
  const int h = p;
  const int groups = a * h + 1;
  const int routers = groups * a;
  const int nodes = routers * p;
  const std::int64_t net_links =
      static_cast<std::int64_t>(groups) * a * (a - 1) / 2 +
      static_cast<std::int64_t>(groups) * a * h / 2;
  const std::int64_t ports = static_cast<std::int64_t>(routers) * (p + a - 1 + h);
  return make_point("Dragonfly", "p=" + std::to_string(p), 4 * p - 1, nodes, routers,
                    net_links, ports, 3);
}

std::optional<TopologyCostPoint> best_fat_tree2(int r) {
  const int r2 = r - (r % 2);
  if (r2 < 2) return std::nullopt;
  const int half = r2 / 2;
  const int nodes = r2 * half;
  const int routers = r2 + half;
  const std::int64_t net_links = static_cast<std::int64_t>(r2) * half;
  const std::int64_t ports = 2 * net_links + nodes;
  return make_point("FT2", "r=" + std::to_string(r2), r2, nodes, routers, net_links, ports, 2);
}

std::optional<TopologyCostPoint> best_fat_tree3(int r) {
  const int r2 = r - (r % 2);
  if (r2 < 2) return std::nullopt;
  const int half = r2 / 2;
  const int nodes = r2 * half * half;
  const int routers = 2 * r2 * half + half * half;
  // leaf-agg: r2 pods * half * half; agg-core: same count.
  const std::int64_t net_links = 2LL * r2 * half * half;
  const std::int64_t ports = 2 * net_links + nodes;
  return make_point("FT3", "r=" + std::to_string(r2), r2, nodes, routers, net_links, ports, 4);
}

std::vector<TopologyCostPoint> max_scale_at_radix(int r) {
  D2NET_REQUIRE(r >= 2, "radix must be >= 2");
  std::vector<TopologyCostPoint> out;
  for (auto& pt : {best_hyperx2d(r), best_slim_fly(r, false), best_slim_fly(r, true),
                   best_fat_tree2(r), best_fat_tree3(r), best_mlfm(r), best_oft(r),
                   best_dragonfly(r)}) {
    if (pt) out.push_back(*pt);
  }
  return out;
}

}  // namespace d2net
