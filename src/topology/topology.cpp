#include "topology/topology.h"

#include <algorithm>

#include "common/error.h"

namespace d2net {

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kSlimFly: return "SlimFly";
    case TopologyKind::kMlfm: return "MLFM";
    case TopologyKind::kOft: return "OFT";
    case TopologyKind::kHyperX2D: return "HyperX2D";
    case TopologyKind::kFatTree2: return "FatTree2";
    case TopologyKind::kFatTree3: return "FatTree3";
    case TopologyKind::kDragonfly: return "Dragonfly";
    case TopologyKind::kCustom: return "Custom";
  }
  return "?";
}

int Topology::add_router(const RouterInfo& info, int num_endpoints) {
  D2NET_REQUIRE(!finalized_, "topology already finalized");
  D2NET_REQUIRE(num_endpoints >= 0, "negative endpoint count");
  adj_.emplace_back();
  nodes_per_router_.push_back(num_endpoints);
  info_.push_back(info);
  return num_routers() - 1;
}

void Topology::add_link(int r1, int r2) {
  D2NET_REQUIRE(!finalized_, "topology already finalized");
  D2NET_REQUIRE(r1 >= 0 && r1 < num_routers() && r2 >= 0 && r2 < num_routers(),
                "link endpoint out of range");
  D2NET_REQUIRE(r1 != r2, "self-loop links are not allowed");
  adj_[r1].push_back(r2);
  adj_[r2].push_back(r1);
  links_.push_back({std::min(r1, r2), std::max(r1, r2)});
}

void Topology::finalize() {
  D2NET_REQUIRE(!finalized_, "finalize() called twice");
  D2NET_REQUIRE(num_routers() > 0, "topology has no routers");
  node_base_.resize(num_routers() + 1);
  int next = 0;
  for (int r = 0; r < num_routers(); ++r) {
    node_base_[r] = next;
    next += nodes_per_router_[r];
    if (nodes_per_router_[r] > 0) edge_routers_.push_back(r);
  }
  node_base_[num_routers()] = next;
  total_nodes_ = next;
  D2NET_REQUIRE(total_nodes_ > 0, "topology has no endpoints");

  router_of_node_.resize(total_nodes_);
  for (int r = 0; r < num_routers(); ++r) {
    for (int n = node_base_[r]; n < node_base_[r + 1]; ++n) router_of_node_[n] = r;
  }

  sorted_adj_ = adj_;
  for (auto& v : sorted_adj_) std::sort(v.begin(), v.end());

  // Sanity: adjacency symmetry follows from add_link(); verify degree match
  // against link list as a defensive invariant.
  std::size_t degree_sum = 0;
  for (const auto& v : adj_) degree_sum += v.size();
  D2NET_ASSERT(degree_sum == 2 * links_.size(), "adjacency/link mismatch");

  finalized_ = true;
}

int Topology::num_ports() const {
  std::size_t ports = 0;
  for (int r = 0; r < num_routers(); ++r) {
    ports += adj_[r].size() + static_cast<std::size_t>(nodes_per_router_[r]);
  }
  return static_cast<int>(ports);
}

bool Topology::connected(int a, int b) const {
  D2NET_ASSERT(finalized_, "connected() before finalize()");
  const auto& v = sorted_adj_[a];
  return std::binary_search(v.begin(), v.end(), b);
}

double Topology::links_per_node() const {
  // Node-to-router links count once each; router-to-router links once each.
  return static_cast<double>(num_links() + num_nodes()) / num_nodes();
}

double Topology::ports_per_node() const {
  return static_cast<double>(num_ports()) / num_nodes();
}

}  // namespace d2net
