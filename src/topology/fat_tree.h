// Fat-Tree reference topologies (Section 2.2.1 and Fig. 3).
//
// * Two-level full-bisection Fat-Tree with uniform router radix r:
//   r leaf routers (r/2 endpoints + r/2 uplinks each) and r/2 spine routers
//   (radix r); N = r^2 / 2, diameter 2.
// * Three-level folded Clos ("fat-tree" in the Al-Fares sense) with uniform
//   radix r: r pods of r/2 leaf + r/2 aggregation routers plus (r/2)^2 core
//   routers; N = r^3 / 4, diameter 4. Used as the cost/scale baseline.
#pragma once

#include "topology/topology.h"

namespace d2net {

/// Two-level full-bisection Fat-Tree of even router radix r.
Topology build_fat_tree2(int r);

/// Three-level full-bisection folded Clos of even router radix r.
Topology build_fat_tree3(int r);

}  // namespace d2net
