#include "topology/degrade.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace d2net {
namespace {

/// Connectivity check over an edge list.
bool connected_graph(int num_routers, const std::vector<Link>& links) {
  if (num_routers == 0) return false;
  std::vector<std::vector<int>> adj(num_routers);
  for (const Link& l : links) {
    adj[l.r1].push_back(l.r2);
    adj[l.r2].push_back(l.r1);
  }
  std::vector<bool> seen(num_routers, false);
  std::queue<int> q;
  q.push(0);
  seen[0] = true;
  int visited = 0;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    ++visited;
    for (int v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return visited == num_routers;
}

}  // namespace

DegradeResult remove_random_links(const Topology& topo, int count, Rng& rng,
                                  bool keep_connected) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  D2NET_REQUIRE(count >= 0 && count < topo.num_links(),
                "cannot remove that many links");

  std::vector<Link> remaining(topo.links().begin(), topo.links().end());
  std::vector<Link> removed;
  std::vector<std::size_t> order(remaining.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  std::vector<bool> drop(remaining.size(), false);
  int dropped = 0;
  for (std::size_t idx : order) {
    if (dropped == count) break;
    drop[idx] = true;
    if (keep_connected) {
      std::vector<Link> trial;
      trial.reserve(remaining.size() - dropped - 1);
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (!drop[i]) trial.push_back(remaining[i]);
      }
      if (!connected_graph(topo.num_routers(), trial)) {
        drop[idx] = false;  // would disconnect; skip this candidate
        continue;
      }
    }
    removed.push_back(remaining[idx]);
    ++dropped;
  }

  Topology out(topo.name() + "-deg" + std::to_string(dropped), topo.kind());
  for (int r = 0; r < topo.num_routers(); ++r) {
    out.add_router(topo.info(r), topo.endpoints_of(r));
  }
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    if (!drop[i]) out.add_link(remaining[i].r1, remaining[i].r2);
  }
  out.finalize();
  return DegradeResult{std::move(out), std::move(removed), count};
}

}  // namespace d2net
