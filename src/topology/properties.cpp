#include "topology/properties.h"

#include <algorithm>
#include <queue>

#include "common/error.h"
#include "topology/topology.h"

namespace d2net {
namespace {

/// Single-source BFS filling one row of the distance matrix; returns the
/// visit order for DAG-based path counting.
std::vector<int> bfs(const Topology& topo, int src, std::vector<int>& dist) {
  dist.assign(topo.num_routers(), -1);
  std::vector<int> order;
  order.reserve(topo.num_routers());
  std::queue<int> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    order.push_back(u);
    for (int v : topo.neighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return order;
}

}  // namespace

DistanceMatrix all_pairs_distances(const Topology& topo) {
  const int n = topo.num_routers();
  DistanceMatrix out(n);
  std::vector<int> dist;
  for (int s = 0; s < n; ++s) {
    bfs(topo, s, dist);
    for (int t = 0; t < n; ++t) out.set(s, t, dist[t]);
  }
  return out;
}

int diameter(const DistanceMatrix& dist) {
  int d = 0;
  for (int a = 0; a < dist.size(); ++a) {
    for (int b = 0; b < dist.size(); ++b) {
      D2NET_REQUIRE(dist(a, b) >= 0, "graph is disconnected");
      d = std::max(d, dist(a, b));
    }
  }
  return d;
}

double average_distance(const DistanceMatrix& dist) {
  double sum = 0.0;
  std::int64_t pairs = 0;
  for (int a = 0; a < dist.size(); ++a) {
    for (int b = 0; b < dist.size(); ++b) {
      if (a == b) continue;
      sum += dist(a, b);
      ++pairs;
    }
  }
  return pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
}

std::vector<std::int64_t> shortest_path_counts(const Topology& topo) {
  const int n = topo.num_routers();
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n) * n, 0);
  std::vector<int> dist;
  std::vector<std::int64_t> c(n);
  for (int s = 0; s < n; ++s) {
    const std::vector<int> order = bfs(topo, s, dist);
    std::fill(c.begin(), c.end(), 0);
    c[s] = 1;
    // BFS order guarantees predecessors are finalized before successors.
    for (int u : order) {
      if (u == s) continue;
      for (int v : topo.neighbors(u)) {
        if (dist[v] >= 0 && dist[v] + 1 == dist[u]) c[u] += c[v];
      }
    }
    for (int t = 0; t < n; ++t) counts[static_cast<std::size_t>(s) * n + t] = c[t];
  }
  return counts;
}

PathDiversityStats path_diversity_at_distance(const Topology& topo, int distance) {
  const int n = topo.num_routers();
  const DistanceMatrix dist = all_pairs_distances(topo);
  const std::vector<std::int64_t> counts = shortest_path_counts(topo);
  PathDiversityStats out;
  double sum = 0.0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b || dist(a, b) != distance) continue;
      const std::int64_t c = counts[static_cast<std::size_t>(a) * n + b];
      ++out.pairs;
      sum += static_cast<double>(c);
      out.max = std::max(out.max, c);
      if (c > 1) ++out.pairs_with_diversity;
    }
  }
  out.mean = out.pairs > 0 ? sum / static_cast<double>(out.pairs) : 0.0;
  return out;
}

int node_diameter(const Topology& topo, const DistanceMatrix& dist) {
  int d = 0;
  for (int a : topo.edge_routers()) {
    for (int b : topo.edge_routers()) {
      D2NET_REQUIRE(dist(a, b) >= 0, "graph is disconnected");
      d = std::max(d, dist(a, b));
    }
  }
  return d;
}

}  // namespace d2net
