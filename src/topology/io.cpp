#include "topology/io.h"

#include <ostream>

#include "common/error.h"
#include "topology/topology.h"

namespace d2net {
namespace {

const char* level_color(int level) {
  switch (level & 3) {
    case 0: return "lightblue";
    case 1: return "lightsalmon";
    case 2: return "palegreen";
    default: return "plum";
  }
}

}  // namespace

void write_dot(const Topology& topo, std::ostream& os) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  os << "graph \"" << topo.name() << "\" {\n"
     << "  layout=neato;\n  node [style=filled, shape=circle, fontsize=9];\n";
  for (int r = 0; r < topo.num_routers(); ++r) {
    os << "  r" << r << " [label=\"r" << r << "/p" << topo.endpoints_of(r) << "\", fillcolor="
       << level_color(topo.info(r).level) << "];\n";
  }
  for (const Link& l : topo.links()) {
    os << "  r" << l.r1 << " -- r" << l.r2 << ";\n";
  }
  os << "}\n";
}

void write_edge_list(const Topology& topo, std::ostream& os) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  os << "# d2net " << topo.name() << " routers=" << topo.num_routers()
     << " nodes=" << topo.num_nodes() << "\n";
  for (int r = 0; r < topo.num_routers(); ++r) {
    os << "v " << r << ' ' << topo.endpoints_of(r) << ' ' << topo.info(r).level << "\n";
  }
  for (const Link& l : topo.links()) {
    os << "e " << l.r1 << ' ' << l.r2 << "\n";
  }
}

}  // namespace d2net
