// Structural graph properties: all-pairs distances, diameter, minimal-path
// counting (Section 2.3.3 "Diversity of shortest paths") and degree/cost
// summaries.
#pragma once

#include <cstdint>
#include <vector>

namespace d2net {

class Topology;

/// All-pairs router distance matrix (row-major, R x R), entries in hops;
/// -1 means unreachable.
class DistanceMatrix {
 public:
  DistanceMatrix(int n) : n_(n), d_(static_cast<std::size_t>(n) * n, -1) {}
  int operator()(int a, int b) const { return d_[static_cast<std::size_t>(a) * n_ + b]; }
  void set(int a, int b, int v) { d_[static_cast<std::size_t>(a) * n_ + b] = static_cast<std::int16_t>(v); }
  int size() const { return n_; }

 private:
  int n_;
  std::vector<std::int16_t> d_;
};

/// BFS from every router. O(R * (R + L)).
DistanceMatrix all_pairs_distances(const Topology& topo);

/// Largest finite distance; throws if the graph is disconnected.
int diameter(const DistanceMatrix& dist);

double average_distance(const DistanceMatrix& dist);

/// Number of distinct shortest paths between each router pair, computed by
/// per-source BFS DAG counting. Row-major R x R; diagonal entries are 1.
std::vector<std::int64_t> shortest_path_counts(const Topology& topo);

/// Summary of minimal-path diversity over router pairs at a given distance
/// (the paper quotes SF q=23 distance-2 pairs: mean ~1.1, max 8).
struct PathDiversityStats {
  std::int64_t pairs = 0;
  double mean = 0.0;
  std::int64_t max = 0;
  std::int64_t pairs_with_diversity = 0;  ///< pairs with more than one path
};

PathDiversityStats path_diversity_at_distance(const Topology& topo, int distance);

/// Endpoint-to-endpoint diameter in router hops (router diameter restricted
/// to endpoint-attached routers).
int node_diameter(const Topology& topo, const DistanceMatrix& dist);

}  // namespace d2net
