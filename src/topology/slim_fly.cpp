#include "topology/slim_fly.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "gf/galois_field.h"

namespace d2net {

SlimFlyShape slim_fly_shape(int q) {
  D2NET_REQUIRE(GaloisField::is_prime_power(q), "Slim Fly q must be a prime power, got " +
                                                    std::to_string(q));
  SlimFlyShape s;
  s.q = q;
  switch (q % 4) {
    case 1: s.delta = 1; break;
    case 0: s.delta = 0; break;
    case 3: s.delta = -1; break;
    default:
      // q % 4 == 2 means q = 2 (only even prime power with q/2 odd), which
      // cannot be written as 4w + delta with delta in {-1, 0, 1} and w >= 1.
      D2NET_REQUIRE(false, "q = " + std::to_string(q) + " is not of the form 4w + delta");
  }
  s.w = (q - s.delta) / 4;
  D2NET_REQUIRE(s.w >= 1, "q too small for an MMS graph: " + std::to_string(q));
  s.network_radix = (3 * q - s.delta) / 2;
  s.num_routers = 2 * q * q;
  return s;
}

MmsGeneratorSets mms_generator_sets(const GaloisField& gf, int delta, int w) {
  const int q = gf.order();
  const int xi = gf.primitive_element();
  MmsGeneratorSets out;
  auto push_powers = [&](std::vector<int>& dst, int from, int to, int step) {
    for (int e = from; e <= to; e += step) dst.push_back(gf.pow(xi, e));
  };
  if (delta == 1) {
    // X  = {1, xi^2, ..., xi^(q-3)};  X' = {xi, xi^3, ..., xi^(q-2)}.
    push_powers(out.x, 0, q - 3, 2);
    push_powers(out.x_prime, 1, q - 2, 2);
  } else if (delta == -1) {
    // X  = {1, xi^2, ..., xi^(2w-2)} u {xi^(2w-1), xi^(2w+1), ..., xi^(4w-3)}
    // X' = {xi, xi^3, ..., xi^(2w-1)} u {xi^(2w), xi^(2w+2), ..., xi^(4w-2)}.
    push_powers(out.x, 0, 2 * w - 2, 2);
    push_powers(out.x, 2 * w - 1, 4 * w - 3, 2);
    push_powers(out.x_prime, 1, 2 * w - 1, 2);
    push_powers(out.x_prime, 2 * w, 4 * w - 2, 2);
  } else {
    // delta == 0 (q = 4w, characteristic 2).
    // X = {1, xi^2, ..., xi^(q-2)};  X' = {xi, xi^3, ..., xi^(q-1)}.
    push_powers(out.x, 0, q - 2, 2);
    push_powers(out.x_prime, 1, q - 1, 2);
  }
  D2NET_ASSERT(static_cast<int>(out.x.size()) == 2 * w, "X size != 2w");
  D2NET_ASSERT(static_cast<int>(out.x_prime.size()) == 2 * w, "X' size != 2w");
  // The Cayley sets must be symmetric (closed under negation), otherwise the
  // intra-subgraph "links" would not be well-defined undirected edges.
  for (const auto* set : {&out.x, &out.x_prime}) {
    for (int s : *set) {
      D2NET_ASSERT(std::find(set->begin(), set->end(), gf.neg(s)) != set->end(),
                   "generator set not symmetric");
    }
  }
  return out;
}

Topology build_slim_fly(int q, SlimFlyP rounding, int endpoints_per_router) {
  const SlimFlyShape shape = slim_fly_shape(q);
  GaloisField gf(q);
  const MmsGeneratorSets gens = mms_generator_sets(gf, shape.delta, shape.w);

  int p = endpoints_per_router;
  if (p < 0) {
    p = rounding == SlimFlyP::kFloor ? shape.network_radix / 2
                                     : (shape.network_radix + 1) / 2;
  }

  Topology topo("SlimFly(q=" + std::to_string(q) + ",p=" + std::to_string(p) + ")",
                TopologyKind::kSlimFly);

  // Router id = subgraph * q^2 + column * q + row. Subgraph 0 uses (x, y)
  // as (column, row); subgraph 1 uses (m, c). This realizes the paper's
  // contiguous node ordering: intra-router, then intra-column, then
  // subgraph-major.
  auto rid = [q](int subgraph, int col, int row) { return subgraph * q * q + col * q + row; };
  for (int subgraph = 0; subgraph < 2; ++subgraph) {
    for (int col = 0; col < q; ++col) {
      for (int row = 0; row < q; ++row) {
        topo.add_router(RouterInfo{subgraph, col, row}, p);
      }
    }
  }

  // Intra-subgraph links: (0,x,y) ~ (0,x,y') iff y - y' in X;
  //                       (1,m,c) ~ (1,m,c') iff c - c' in X'.
  // Each unordered pair is visited once by requiring row < row2 via the
  // set membership of both differences (sets are symmetric).
  auto add_cayley_links = [&](int subgraph, const std::vector<int>& gen_set) {
    for (int col = 0; col < q; ++col) {
      for (int row = 0; row < q; ++row) {
        for (int g : gen_set) {
          const int row2 = gf.add(row, g);
          if (row < row2) topo.add_link(rid(subgraph, col, row), rid(subgraph, col, row2));
        }
      }
    }
  };
  add_cayley_links(0, gens.x);
  add_cayley_links(1, gens.x_prime);

  // Cross links: (0, x, y) ~ (1, m, c) iff y = m*x + c.
  for (int x = 0; x < q; ++x) {
    for (int m = 0; m < q; ++m) {
      for (int c = 0; c < q; ++c) {
        const int y = gf.add(gf.mul(m, x), c);
        topo.add_link(rid(0, x, y), rid(1, m, c));
      }
    }
  }

  topo.finalize();
  // Structural invariant: every router ends up with network radix r'.
  for (int r = 0; r < topo.num_routers(); ++r) {
    D2NET_ASSERT(topo.network_degree(r) == shape.network_radix,
                 "Slim Fly router degree != (3q - delta)/2");
  }
  return topo;
}

}  // namespace d2net
