// Fault injection: derive a degraded copy of a topology with a subset of
// its router-to-router links removed, for resilience studies. Low-diameter
// networks trade path diversity for scale, so even a few failed links can
// stretch the diameter and shift worst-case saturation — the degradation
// bench quantifies that.
#pragma once

#include <vector>

#include "common/rng.h"
#include "topology/topology.h"

namespace d2net {

struct DegradeResult {
  Topology topo;
  std::vector<Link> removed;
  /// Removals asked for; removed.size() < requested means keep_connected
  /// vetoed some candidates (callers should surface the shortfall).
  int requested = 0;

  bool shortfall() const { return static_cast<int>(removed.size()) < requested; }
};

/// Removes `count` uniformly chosen router-to-router links. When
/// `keep_connected` is set, candidate removals that would disconnect the
/// router graph are skipped (the result may then contain fewer removals
/// than requested). Endpoint attachments are never touched. The degraded
/// topology keeps the original's node numbering and kind (so routing
/// policies still apply), with "-deg<count>" appended to the name.
DegradeResult remove_random_links(const Topology& topo, int count, Rng& rng,
                                  bool keep_connected = true);

}  // namespace d2net
