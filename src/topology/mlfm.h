// Multi-Layer Full-Mesh (Fujitsu 2014; Kathareios et al. SC'15,
// Section 2.2.3) — the r2 = 2 instance of the Stacked Single-Path Tree
// class.
//
// The (h, l, p)-MLFM has l layers of h+1 local routers (LRs), each hosting
// p endpoints. The direct link of every full-mesh LR pair (i, j) is replaced
// by a global router (GR) shared by all layers: GR_{i,j} connects to LR i
// and LR j of every layer, so there are h(h+1)/2 GRs of radix 2l and the LR
// radix is h + p. The balanced single-radix configuration used throughout
// the paper is h = l = p (the "h-MLFM", router radix 2h, N = h^3 + h^2).
#pragma once

#include "topology/topology.h"

namespace d2net {

/// Builds the (h, l, p)-MLFM. Router ids: LRs first in layer-major order
/// (id = layer * (h+1) + index, matching the paper's contiguous node
/// mapping), then GRs in pair order (i < j).
Topology build_mlfm(int h, int l, int p);

/// Builds the balanced h-MLFM (h = l = p).
Topology build_mlfm(int h);

/// Local-router id for (layer, index); exposed for tests and traffic code.
inline int mlfm_lr_id(int h, int layer, int index) { return layer * (h + 1) + index; }

}  // namespace d2net
