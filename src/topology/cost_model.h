// Analytic scalability / cost model behind the paper's Fig. 3: for a given
// router radix r, the largest endpoint count each topology family reaches,
// plus links- and ports-per-endpoint. Exact feasible configurations are
// searched (prime powers for SF, prime-power k-1 for OFT, ...), matching
// how a system architect would instantiate the families.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace d2net {

/// One row of the Fig. 3 comparison for a specific feasible configuration.
struct TopologyCostPoint {
  std::string family;     ///< "SF", "MLFM", "OFT", "HyperX2D", "FT2", "FT3"
  std::string config;     ///< e.g. "q=13", "h=15", "k=12"
  int router_radix = 0;   ///< r actually used (<= the budget radix)
  int num_nodes = 0;      ///< N
  int num_routers = 0;    ///< R
  double links_per_node = 0.0;
  double ports_per_node = 0.0;
  int diameter = 0;
};

/// Largest feasible configuration of each family with router radix <= r.
/// Returns one point per family (families with no feasible configuration at
/// this radix are omitted).
std::vector<TopologyCostPoint> max_scale_at_radix(int r);

/// Individual family searches, exposed for tests. Each returns the largest
/// feasible configuration with router radix <= r, or nullopt.
std::optional<TopologyCostPoint> best_slim_fly(int r, bool ceil_p);
std::optional<TopologyCostPoint> best_mlfm(int r);
std::optional<TopologyCostPoint> best_oft(int r);
std::optional<TopologyCostPoint> best_hyperx2d(int r);
std::optional<TopologyCostPoint> best_dragonfly(int r);
std::optional<TopologyCostPoint> best_fat_tree2(int r);
std::optional<TopologyCostPoint> best_fat_tree3(int r);

/// Moore bound for diameter-2 graphs of degree d: d^2 + 1 routers.
inline std::int64_t moore_bound_d2(int degree) {
  return static_cast<std::int64_t>(degree) * degree + 1;
}

}  // namespace d2net
