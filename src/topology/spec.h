// Textual topology specs, so examples and tools can build any supported
// network from a command-line string:
//   "sf:q=7"            Slim Fly, p = floor(r'/2)
//   "sf:q=7,p=ceil"     Slim Fly, p = ceil(r'/2)
//   "sf:q=7,p=4"        Slim Fly with an explicit endpoint count
//   "mlfm:h=7"          balanced h-MLFM
//   "mlfm:h=4,l=2,p=3"  general (h,l,p)-MLFM
//   "oft:k=6"           two-level k-OFT
//   "hyperx:r=12"       balanced 2-D HyperX for radix r
//   "ft2:r=8" "ft3:r=8" two- / three-level Fat-Trees
#pragma once

#include <string>

#include "topology/topology.h"

namespace d2net {

/// Parses a spec string and builds the topology. Throws ArgumentError with
/// a usable message on malformed specs.
Topology build_topology_from_spec(const std::string& spec);

/// One-line human description of the supported spec grammar.
const char* topology_spec_help();

}  // namespace d2net
