#include "topology/sspt.h"

#include <string>

#include "common/error.h"
#include "topology/oft.h"

namespace d2net {

SptPattern make_spt_pattern_mesh(int r1) {
  D2NET_REQUIRE(r1 >= 2, "mesh SPT needs r1 >= 2");
  SptPattern p;
  p.r1 = r1;
  p.r2 = 2;
  p.num_l1 = r1 + 1;
  p.num_l2 = p.num_l1 * r1 / 2;
  p.uplinks.assign(p.num_l1, {});
  // L2 router per unordered L1 pair (i < j), numbered in pair order.
  int next = 0;
  std::vector<std::vector<int>> pair_id(p.num_l1, std::vector<int>(p.num_l1, -1));
  for (int i = 0; i < p.num_l1; ++i) {
    for (int j = i + 1; j < p.num_l1; ++j) {
      pair_id[i][j] = next++;
    }
  }
  for (int i = 0; i < p.num_l1; ++i) {
    for (int j = 0; j < p.num_l1; ++j) {
      if (i == j) continue;
      p.uplinks[i].push_back(pair_id[std::min(i, j)][std::max(i, j)]);
    }
  }
  D2NET_ASSERT(next == p.num_l2, "mesh L2 count mismatch");
  return p;
}

SptPattern make_spt_pattern_ml3b(int k) {
  SptPattern p;
  p.r1 = k;
  p.r2 = k;
  p.num_l1 = oft_routers_per_level(k);
  p.num_l2 = p.num_l1;
  p.uplinks = build_ml3b(k);
  return p;
}

bool spt_pattern_is_valid(const SptPattern& p) {
  if (p.num_l1 != 1 + p.r1 * (p.r2 - 1)) return false;
  if (static_cast<int>(p.uplinks.size()) != p.num_l1) return false;
  if (p.num_l2 * p.r2 != p.num_l1 * p.r1) return false;
  std::vector<int> degree(p.num_l2, 0);
  for (const auto& row : p.uplinks) {
    if (static_cast<int>(row.size()) != p.r1) return false;
    for (int v : row) {
      if (v < 0 || v >= p.num_l2) return false;
      ++degree[v];
    }
  }
  for (int d : degree) {
    if (d != p.r2) return false;
  }
  // Exactly one shared L2 router per L1 pair.
  std::vector<std::vector<bool>> member(p.num_l1, std::vector<bool>(p.num_l2, false));
  for (int i = 0; i < p.num_l1; ++i) {
    for (int v : p.uplinks[i]) {
      if (member[i][v]) return false;
      member[i][v] = true;
    }
  }
  for (int i = 0; i < p.num_l1; ++i) {
    for (int j = i + 1; j < p.num_l1; ++j) {
      int common = 0;
      for (int v : p.uplinks[i]) common += member[j][v] ? 1 : 0;
      if (common != 1) return false;
    }
  }
  return true;
}

Topology build_spt(const SptPattern& pattern, int endpoints_per_router) {
  D2NET_REQUIRE(spt_pattern_is_valid(pattern), "invalid SPT pattern");
  const int p = endpoints_per_router < 0 ? pattern.r1 : endpoints_per_router;
  Topology topo("SPT(r1=" + std::to_string(pattern.r1) + ",r2=" + std::to_string(pattern.r2) +
                    ")",
                TopologyKind::kCustom);
  for (int i = 0; i < pattern.num_l1; ++i) topo.add_router(RouterInfo{0, i, 0}, p);
  for (int j = 0; j < pattern.num_l2; ++j) topo.add_router(RouterInfo{1, j, 0}, 0);
  for (int i = 0; i < pattern.num_l1; ++i) {
    for (int v : pattern.uplinks[i]) topo.add_link(i, pattern.num_l1 + v);
  }
  topo.finalize();
  return topo;
}

Topology build_sspt(const SptPattern& pattern, int copies, int endpoints_per_router) {
  D2NET_REQUIRE(spt_pattern_is_valid(pattern), "invalid SPT pattern");
  int s = copies;
  if (s < 0) {
    D2NET_REQUIRE(2 * pattern.r1 % pattern.r2 == 0,
                  "single-radix stacking needs r2 | 2*r1");
    s = 2 * pattern.r1 / pattern.r2;
  }
  D2NET_REQUIRE(s >= 1, "need at least one copy");
  const int p = endpoints_per_router < 0 ? pattern.r1 : endpoints_per_router;

  Topology topo("SSPT(r1=" + std::to_string(pattern.r1) + ",r2=" + std::to_string(pattern.r2) +
                    ",s=" + std::to_string(s) + ")",
                TopologyKind::kCustom);
  // Level-one routers, copy-major — the contiguous node mapping runs
  // intra-router, intra-copy, then across copies.
  for (int c = 0; c < s; ++c) {
    for (int i = 0; i < pattern.num_l1; ++i) {
      topo.add_router(RouterInfo{0, c, i}, p);
    }
  }
  // Merged level-two routers.
  const int l2_base = s * pattern.num_l1;
  for (int j = 0; j < pattern.num_l2; ++j) topo.add_router(RouterInfo{1, j, 0}, 0);
  for (int c = 0; c < s; ++c) {
    for (int i = 0; i < pattern.num_l1; ++i) {
      for (int v : pattern.uplinks[i]) {
        topo.add_link(c * pattern.num_l1 + i, l2_base + v);
      }
    }
  }
  topo.finalize();
  return topo;
}

}  // namespace d2net
