#include "gf/galois_field.h"

#include <algorithm>

#include "common/error.h"

namespace d2net {
namespace {

/// Multiplies two polynomials over GF(p) (coefficient vectors, lowest first).
std::vector<int> poly_mul(const std::vector<int>& a, const std::vector<int>& b, int p) {
  std::vector<int> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = (out[i + j] + a[i] * b[j]) % p;
    }
  }
  return out;
}

/// Reduces `a` modulo the monic polynomial `mod` over GF(p), in place.
void poly_mod(std::vector<int>& a, const std::vector<int>& mod, int p) {
  const int deg_mod = static_cast<int>(mod.size()) - 1;
  for (int i = static_cast<int>(a.size()) - 1; i >= deg_mod; --i) {
    const int c = a[i];
    if (c == 0) continue;
    a[i] = 0;
    for (int j = 0; j < deg_mod; ++j) {
      // Subtract c * x^(i-deg_mod) * mod.
      a[i - deg_mod + j] = ((a[i - deg_mod + j] - c * mod[j]) % p + p) % p;
    }
  }
  a.resize(std::min<std::size_t>(a.size(), mod.size() - 1));
  a.resize(mod.size() - 1, 0);
}

/// Encodes a coefficient vector as an integer (base-p digits).
int poly_encode(const std::vector<int>& a, int p) {
  int v = 0;
  for (int i = static_cast<int>(a.size()) - 1; i >= 0; --i) v = v * p + a[i];
  return v;
}

/// Decodes an integer into m base-p digits.
std::vector<int> poly_decode(int v, int p, int m) {
  std::vector<int> a(m, 0);
  for (int i = 0; i < m; ++i) {
    a[i] = v % p;
    v /= p;
  }
  return a;
}

/// Tests whether a monic polynomial (lowest-first coefficients, degree >= 1)
/// is irreducible over GF(p) by trial division with all monic polynomials of
/// degree up to deg/2. Fine for the small degrees used here (m <= 6).
bool poly_irreducible(const std::vector<int>& f, int p) {
  const int deg = static_cast<int>(f.size()) - 1;
  for (int d = 1; d <= deg / 2; ++d) {
    // Enumerate all monic polynomials of degree d: p^d of them.
    int count = 1;
    for (int i = 0; i < d; ++i) count *= p;
    for (int code = 0; code < count; ++code) {
      std::vector<int> g = poly_decode(code, p, d);
      g.push_back(1);  // monic
      // Compute f mod g: synthetic division.
      std::vector<int> r = f;
      for (int i = static_cast<int>(r.size()) - 1; i >= d; --i) {
        const int c = r[i];
        if (c == 0) continue;
        r[i] = 0;
        for (int j = 0; j < d; ++j) {
          r[i - d + j] = ((r[i - d + j] - c * g[j]) % p + p) % p;
        }
      }
      bool zero = true;
      for (int i = 0; i < d; ++i) {
        if (r[i] != 0) {
          zero = false;
          break;
        }
      }
      if (zero) return false;
    }
  }
  return true;
}

}  // namespace

bool GaloisField::is_prime(int n) {
  if (n < 2) return false;
  for (int d = 2; static_cast<std::int64_t>(d) * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

bool GaloisField::factor_prime_power(int q, int& p, int& m) {
  if (q < 2) return false;
  for (int d = 2; static_cast<std::int64_t>(d) * d <= q; ++d) {
    if (q % d == 0) {
      // d is the smallest prime factor; q must be a power of d.
      int v = q;
      int e = 0;
      while (v % d == 0) {
        v /= d;
        ++e;
      }
      if (v != 1) return false;
      p = d;
      m = e;
      return true;
    }
  }
  p = q;  // q itself is prime
  m = 1;
  return true;
}

bool GaloisField::is_prime_power(int q) {
  int p = 0;
  int m = 0;
  return factor_prime_power(q, p, m);
}

GaloisField::GaloisField(int q) : q_(q) {
  D2NET_REQUIRE(factor_prime_power(q, p_, m_), "GF order must be a prime power >= 2, got " +
                                                   std::to_string(q));
  if (m_ > 1) {
    // Find the lexicographically first monic irreducible polynomial of
    // degree m over GF(p).
    int count = 1;
    for (int i = 0; i < m_; ++i) count *= p_;
    for (int code = 0; code < count; ++code) {
      std::vector<int> f = poly_decode(code, p_, m_);
      f.push_back(1);
      if (f[0] != 0 && poly_irreducible(f, p_)) {  // f(0) != 0 avoids factor x
        modulus_ = std::move(f);
        break;
      }
    }
    D2NET_ASSERT(!modulus_.empty(), "no irreducible polynomial found");
  } else {
    modulus_ = {0, 1};  // placeholder; unused for prime fields
  }
  build_tables();
}

int GaloisField::poly_mul_mod(int a, int b) const {
  if (m_ == 1) return static_cast<int>((static_cast<std::int64_t>(a) * b) % p_);
  std::vector<int> pa = poly_decode(a, p_, m_);
  std::vector<int> pb = poly_decode(b, p_, m_);
  std::vector<int> prod = poly_mul(pa, pb, p_);
  poly_mod(prod, modulus_, p_);
  return poly_encode(prod, p_);
}

void GaloisField::build_tables() {
  exp_.assign(q_ - 1, 0);
  log_.assign(q_, -1);
  // Find a generator: an element whose multiplicative order is q-1.
  // Candidates are tried in increasing integer encoding.
  for (int g = 2; g < q_; ++g) {
    int x = 1;
    int order = 0;
    do {
      x = poly_mul_mod(x, g);
      ++order;
    } while (x != 1 && order <= q_);
    if (order == q_ - 1) {
      generator_ = g;
      break;
    }
  }
  // GF(2) and GF(3) special-case: generator may be 1 (GF(2)) or 2 (GF(3)).
  if (generator_ == 0) {
    D2NET_ASSERT(q_ == 2, "failed to find a generator");
    generator_ = 1;
  }
  int x = 1;
  for (int i = 0; i < q_ - 1; ++i) {
    exp_[i] = x;
    D2NET_ASSERT(log_[x] == -1, "generator order too small");
    log_[x] = i;
    x = poly_mul_mod(x, generator_);
  }
  D2NET_ASSERT(x == 1, "generator order mismatch");
}

int GaloisField::add(int a, int b) const {
  D2NET_ASSERT(a >= 0 && a < q_ && b >= 0 && b < q_, "element out of range");
  if (m_ == 1) return (a + b) % p_;
  int out = 0;
  int mult = 1;
  for (int i = 0; i < m_; ++i) {
    out += ((a % p_ + b % p_) % p_) * mult;
    a /= p_;
    b /= p_;
    mult *= p_;
  }
  return out;
}

int GaloisField::neg(int a) const {
  D2NET_ASSERT(a >= 0 && a < q_, "element out of range");
  if (m_ == 1) return (p_ - a) % p_;
  int out = 0;
  int mult = 1;
  for (int i = 0; i < m_; ++i) {
    out += ((p_ - a % p_) % p_) * mult;
    a /= p_;
    mult *= p_;
  }
  return out;
}

int GaloisField::mul(int a, int b) const {
  D2NET_ASSERT(a >= 0 && a < q_ && b >= 0 && b < q_, "element out of range");
  if (a == 0 || b == 0) return 0;
  return exp_[(log_[a] + log_[b]) % (q_ - 1)];
}

int GaloisField::inv(int a) const {
  D2NET_REQUIRE(a != 0, "inverse of zero");
  D2NET_ASSERT(a > 0 && a < q_, "element out of range");
  return exp_[(q_ - 1 - log_[a]) % (q_ - 1)];
}

int GaloisField::pow(int a, std::int64_t e) const {
  D2NET_ASSERT(a >= 0 && a < q_, "element out of range");
  if (a == 0) {
    D2NET_REQUIRE(e > 0, "0^e undefined for e <= 0");
    return 0;
  }
  const std::int64_t period = q_ - 1;
  std::int64_t idx = (static_cast<std::int64_t>(log_[a]) * (e % period)) % period;
  if (idx < 0) idx += period;
  return exp_[idx];
}

int GaloisField::log(int a) const {
  D2NET_REQUIRE(a != 0, "log of zero");
  D2NET_ASSERT(a > 0 && a < q_, "element out of range");
  return log_[a];
}

int GaloisField::exp(int e) const {
  D2NET_ASSERT(e >= 0 && e < q_ - 1, "exponent out of range");
  return exp_[e];
}

}  // namespace d2net
