// Mutually Orthogonal Latin Squares (MOLS).
//
// For a prime-power order n, the n-1 squares L_a(r, c) = r + a*c over GF(n)
// (a ranging over the nonzero field elements) form a complete set of MOLS
// [Dénes & Keedwell 1974]. The OFT's ML3B construction (Valerio et al.;
// Kathareios et al. SC'15, Section 2.2.4) consumes the k-2 squares of order
// k-1 beyond the first two canonical ones.
#pragma once

#include <vector>

namespace d2net {

/// A Latin square of order n stored row-major; cell(r, c) in [0, n).
using LatinSquare = std::vector<std::vector<int>>;

/// Returns the complete set of n-1 mutually orthogonal Latin squares of
/// prime-power order n, in the canonical GF order: square index a-1 holds
/// L_a(r, c) = r + a*c (field arithmetic), for each nonzero element a in
/// increasing integer encoding. Throws ArgumentError if n is not a prime
/// power.
std::vector<LatinSquare> complete_mols(int n);

/// True if `square` is a Latin square (each symbol once per row and column).
bool is_latin_square(const LatinSquare& square);

/// True if superimposing a and b yields every ordered pair exactly once.
bool are_orthogonal(const LatinSquare& a, const LatinSquare& b);

}  // namespace d2net
