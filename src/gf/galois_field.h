// Finite-field arithmetic GF(p^m) for arbitrary prime powers.
//
// The Slim Fly's MMS graph construction (Besta & Hoefler, SC'14; McKay,
// Miller & Širáň 1998) needs a primitive element of GF(q) for prime powers
// q = 4w + δ, and the OFT's ML3B table needs mutually orthogonal Latin
// squares, which exist for any prime-power order via GF multiplication.
//
// Elements are encoded as integers in [0, q): an element's base-p digit
// expansion gives the coefficients of its polynomial representation over
// GF(p). Multiplication uses exp/log tables built from a primitive element;
// addition is digit-wise mod p (plain mod-p addition when m == 1).
#pragma once

#include <cstdint>
#include <vector>

namespace d2net {

/// Immutable finite field of prime-power order q = p^m.
class GaloisField {
 public:
  /// Constructs GF(q). Throws ArgumentError if q is not a prime power >= 2.
  explicit GaloisField(int q);

  int order() const { return q_; }           ///< q = p^m
  int characteristic() const { return p_; }  ///< p
  int degree() const { return m_; }          ///< m

  /// A fixed primitive element (generator of the multiplicative group).
  int primitive_element() const { return generator_; }

  int add(int a, int b) const;
  int neg(int a) const;
  int sub(int a, int b) const { return add(a, neg(b)); }
  int mul(int a, int b) const;
  int inv(int a) const;  ///< Throws on a == 0.
  int pow(int a, std::int64_t e) const;

  /// Discrete log base the primitive element; a must be nonzero.
  int log(int a) const;
  /// generator^e for e in [0, q-1).
  int exp(int e) const;

  /// The coefficients of the irreducible modulus polynomial (degree m,
  /// monic), lowest degree first; size m+1. For m == 1 this is {−(p), 1}
  /// conceptually, returned as {0, 1} placeholder — only meaningful m > 1.
  const std::vector<int>& modulus() const { return modulus_; }

  static bool is_prime(int n);
  /// If q = p^m for prime p, returns true and sets p and m; else false.
  static bool factor_prime_power(int q, int& p, int& m);
  static bool is_prime_power(int q);

 private:
  int poly_mul_mod(int a, int b) const;  ///< Polynomial multiply mod modulus_.
  void build_tables();

  int p_ = 0;
  int m_ = 0;
  int q_ = 0;
  int generator_ = 0;
  std::vector<int> modulus_;  ///< Irreducible polynomial, used when m > 1.
  std::vector<int> exp_;      ///< exp_[i] = g^i, i in [0, q-1).
  std::vector<int> log_;      ///< log_[exp_[i]] = i; log_[0] unused.
};

}  // namespace d2net
