#include "gf/mols.h"

#include "common/error.h"
#include "gf/galois_field.h"

namespace d2net {

std::vector<LatinSquare> complete_mols(int n) {
  D2NET_REQUIRE(n >= 2, "MOLS order must be >= 2");
  GaloisField gf(n);
  std::vector<LatinSquare> out;
  out.reserve(n - 1);
  for (int a = 1; a < n; ++a) {
    LatinSquare sq(n, std::vector<int>(n, 0));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        sq[r][c] = gf.add(r, gf.mul(a, c));
      }
    }
    out.push_back(std::move(sq));
  }
  return out;
}

bool is_latin_square(const LatinSquare& square) {
  const int n = static_cast<int>(square.size());
  if (n == 0) return false;
  for (const auto& row : square) {
    if (static_cast<int>(row.size()) != n) return false;
  }
  for (int r = 0; r < n; ++r) {
    std::vector<bool> seen_row(n, false);
    std::vector<bool> seen_col(n, false);
    for (int c = 0; c < n; ++c) {
      const int vr = square[r][c];
      const int vc = square[c][r];
      if (vr < 0 || vr >= n || vc < 0 || vc >= n) return false;
      if (seen_row[vr] || seen_col[vc]) return false;
      seen_row[vr] = true;
      seen_col[vc] = true;
    }
  }
  return true;
}

bool are_orthogonal(const LatinSquare& a, const LatinSquare& b) {
  const int n = static_cast<int>(a.size());
  if (n == 0 || b.size() != a.size()) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n) * n, false);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const int idx = a[r][c] * n + b[r][c];
      if (seen[idx]) return false;
      seen[idx] = true;
    }
  }
  return true;
}

}  // namespace d2net
