// Error-checking macros used across d2net.
//
// D2NET_REQUIRE validates user-supplied arguments and configuration and is
// always active. D2NET_ASSERT documents internal invariants; it is also
// always active because the library's hot paths are event handlers whose
// cost dwarfs a predictable branch, and a violated invariant in a network
// simulator silently corrupts every downstream statistic.
//
// D2NET_HOT_ASSERT is the exception for the handful of per-event
// invariants hot enough to measure (event-queue pop, VOQ link walks): it
// stays fatal whenever NDEBUG is absent or D2NET_DEBUG_ASSERTS is defined
// (Debug and sanitizer builds — scripts/ci.sh stages 2-3 run the suite
// under both), and compiles to an optimizer unreachability hint in plain
// release builds so the checked branch disappears entirely.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace d2net {

/// Exception type thrown on argument/configuration errors.
class ArgumentError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception type thrown on violated internal invariants.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_argument_error(const char* cond, const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw ArgumentError(os.str());
}

[[noreturn]] inline void throw_internal_error(const char* cond, const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": invariant violated: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace d2net

#define D2NET_REQUIRE(cond, msg)                                                      \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      ::d2net::detail::throw_argument_error(#cond, __FILE__, __LINE__, (msg));        \
    }                                                                                 \
  } while (0)

#define D2NET_ASSERT(cond, msg)                                                       \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      ::d2net::detail::throw_internal_error(#cond, __FILE__, __LINE__, (msg));        \
    }                                                                                 \
  } while (0)

#if defined(D2NET_DEBUG_ASSERTS) || !defined(NDEBUG)
#define D2NET_HOT_ASSERT(cond, msg) D2NET_ASSERT(cond, msg)
#else
#define D2NET_HOT_ASSERT(cond, msg)       \
  do {                                    \
    if (!(cond)) __builtin_unreachable(); \
  } while (0)
#endif
