// Streaming and sampled statistics used by the simulator's metric sinks
// and by the analysis/report code.
#pragma once

#include <cstdint>
#include <vector>

namespace d2net {

/// Numerically stable streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-layout logarithmic histogram for latency-like positive values.
///
/// Buckets are [0,1), [1,2), [2,4), ... doubling, up to 2^62; this gives
/// exact counts with ~3 % relative resolution via sub-bucket interpolation,
/// at a constant 63-slot footprint regardless of sample count. Values
/// outside the bucketed range are never folded into the edge buckets —
/// they land in the underflow/overflow counts, so percentile() can never
/// interpolate a saturated tail back into range.
class LogHistogram {
 public:
  void add(std::int64_t value);
  /// Element-wise accumulation of another histogram. For integer-valued
  /// inputs (every simulator use: latencies in whole ns) the running sum_
  /// stays an exactly-represented integer below 2^53, so merging per-shard
  /// histograms is exact and order-independent — sharded and serial runs
  /// report bit-identical means.
  void merge(const LogHistogram& other);
  std::int64_t count() const { return total_; }

  /// Approximate p-th percentile (p in [0,100]) by linear interpolation
  /// within the containing bucket, over the in-range samples only. Returns
  /// 0 for an empty histogram.
  double percentile(double p) const;

  double mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }

 private:
  static constexpr int kBuckets = 63;
  std::int64_t buckets_[kBuckets] = {};
  std::int64_t total_ = 0;
  std::int64_t underflow_ = 0;  ///< Count of negative inputs (out of range).
  std::int64_t overflow_ = 0;   ///< Count of inputs >= 2^62 (out of range).
  double sum_ = 0.0;
};

/// Exact percentile estimator that keeps all samples. Suitable for
/// experiment post-processing where sample counts are bounded.
///
/// percentile() sorts the samples on first use and is therefore non-const:
/// the previous lazy-sort-behind-const design mutated shared state from a
/// method that looked read-only, which is a data race the moment a const
/// SampleSet is shared across threads. Callers needing concurrent reads
/// must sort up front (call percentile once) and share the set immutably
/// afterwards.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }
  double percentile(double p);  ///< Nearest-rank; p in [0,100]. Sorts.
  double mean() const;

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace d2net
