#include "common/metrics.h"

namespace d2net {

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  return get_or_create(counters_, counter_index_, name);
}

RunningStats& MetricsRegistry::stats(const std::string& name) {
  return get_or_create(stats_, stats_index_, name);
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  return get_or_create(histograms_, histogram_index_, name);
}

const MetricsRegistry::Counter* MetricsRegistry::find_counter(const std::string& name) const {
  return find_in(counters_, counter_index_, name);
}

const RunningStats* MetricsRegistry::find_stats(const std::string& name) const {
  return find_in(stats_, stats_index_, name);
}

const LogHistogram* MetricsRegistry::find_histogram(const std::string& name) const {
  return find_in(histograms_, histogram_index_, name);
}

}  // namespace d2net
