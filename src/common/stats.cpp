#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.h"

namespace d2net {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void LogHistogram::add(std::int64_t value) {
  if (value < 0) {
    ++underflow_;
    return;
  }
  // Bucket 0: value 0; bucket b >= 1: [2^(b-1), 2^b).
  const int b = value == 0 ? 0 : 64 - std::countl_zero(static_cast<std::uint64_t>(value));
  if (b >= kBuckets) {
    ++overflow_;
    return;
  }
  buckets_[b]++;
  ++total_;
  sum_ += static_cast<double>(value);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total_);
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += buckets_[b];
    if (static_cast<double>(cum) >= target) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = b == 0 ? 1.0 : std::ldexp(1.0, b);
      // buckets_[b] > 0 here (empty buckets were skipped above).
      const double frac = (target - prev) / static_cast<double>(buckets_[b]);
      return lo + frac * (hi - lo);
    }
  }
  return std::ldexp(1.0, kBuckets - 1);
}

double SampleSet::percentile(double p) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

}  // namespace d2net
