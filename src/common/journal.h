// Crash-safe sweep journaling (see docs/durable_sweeps.md).
//
// A paper-scale sweep is hours of compute; a single OOM kill, pre-empted CI
// job or hung point must cost one point, not the campaign. The journal makes
// a sweep a restartable job:
//
//  - `manifest.json` pins the invocation: a human-readable config text plus
//    its FNV-1a hash (topology/routing/seeds/loads/build describe/options).
//    Resuming under a different configuration is a hard error — silently
//    mixing results from two configurations would be far worse than a
//    rerun.
//  - `journal.jsonl` is append-only, one line per *completed* point (ok,
//    timed out, or failed with its exception text), flushed immediately so
//    a SIGKILL loses at most the in-flight points. A torn final line — the
//    signature of dying mid-write — is skipped with a warning on replay.
//
// Replay loads completed entries keyed by "<sweep scope>#<point index>";
// the sweep runner skips those points and re-executes only missing/failed
// ones. Because every point derives its seed from (base seed, index), a
// resumed sweep is bit-identical to an uninterrupted one, and each entry
// carries the rendered result JSON so report output can be spliced back
// byte-for-byte.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace d2net {

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes and control characters (the latter as \uXXXX). Shared by
/// every place the project emits JSON — exception texts and spec strings
/// must never corrupt a report or a journal line.
std::string json_escape(std::string_view s);

/// FNV-1a 64-bit over the bytes of `s`; the manifest hash.
std::uint64_t fnv1a64(std::string_view s);

/// `git describe --always --dirty` captured at configure time ("unknown"
/// without git). Part of the sweep manifest: resuming a journal produced by
/// a different build of the simulator is a configuration mismatch.
const char* build_describe();

/// Reads `<dir>/manifest.json` back (text + recorded hash); false when the
/// file is missing or unparseable. The campaign merge step uses this to
/// verify every worker journal was written under the top-level manifest
/// before mixing their entries.
bool read_journal_manifest(const std::string& dir, std::string& text_out,
                           std::uint64_t& hash_out);

/// Makes durable whatever `dir` records about its entries: fsyncs the
/// directory fd so a freshly created/renamed file inside it survives a
/// host power loss (see docs/campaigns.md, distributed campaigns). Returns
/// false when the platform/filesystem refuses; callers treat that as
/// best-effort (the write itself already succeeded).
bool fsync_dir(const std::string& dir);

/// One journal line: the durable record of one finished sweep point (or,
/// for campaign exchange scopes, one finished exchange row).
struct JournalEntry {
  std::string key;    ///< "<scope>#<global point index>"
  std::string label;  ///< series label, validated on resume
  std::string topo;   ///< topology fingerprint ("r=..,n=..,l=.."), validated
  double load = 0.0;
  std::uint64_t seed = 0;  ///< first-attempt derived seed, validated
  std::string status;      ///< "ok" | "timed_out" | "failed"
  int attempts = 1;
  std::int64_t events = 0;
  double wall_seconds = 0.0;
  // Result summary for table printing on resume (full detail in payload):
  double throughput = 0.0;
  double avg_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  std::int64_t packets_measured = 0;
  // Exchange-row scope extension (see docs/campaigns.md): >= 0 marks the
  // entry as one row of an exchange table; 1 = the exchange completed,
  // 0 = it was cut short. Stays -1 on sweep-point entries, so journals
  // written before this extension parse unchanged.
  int exchange_completed = -1;
  double completion_us = 0.0;
  bool wedged = false;
  /// Worker id of the process that executed the point (multi-worker
  /// campaigns; see docs/campaigns.md). Empty on solo runs, and omitted
  /// from the serialized line when empty so solo journals are byte-stable
  /// across versions.
  std::string worker;
  std::string error;    ///< exception text when status == "failed"
  std::string payload;  ///< rendered result JSON object ("" when failed)

  bool completed() const { return status == "ok" || status == "timed_out"; }
};

/// Journal behavior knobs (defaults preserve the PR 4 semantics).
struct JournalOptions {
  /// fsync the journal fd after every appended entry (and the directory
  /// after the manifest write), so an acked point survives host power loss
  /// — not just a process kill. Off for plain benches (flush-only, the
  /// historical behavior); the campaign runner turns it on because the
  /// multi-worker claim protocol assumes acked points are truly recorded.
  bool durable = false;
  /// Worker id stamped on every appended entry and prefixed to this
  /// journal's stderr diagnostics, so interleaved logs from concurrent
  /// workers are attributable. Empty = solo (no stamp, no prefix).
  std::string worker;
};

/// One shard lease of the multi-worker claim protocol (see
/// docs/campaigns.md): the JSON document stored in
/// `<journal>/leases/shard-<id>.lease`. Timestamps are seconds since the
/// Unix epoch — leases are compared across processes and hosts, so they
/// use the shared wall clock (clock skew bounds are part of the protocol
/// contract; see the failure matrix in the docs).
struct LeaseRecord {
  std::string worker;
  std::int64_t shard = -1;
  std::uint64_t spec_hash = 0;   ///< manifest hash; claim/steal sanity check
  double acquired_at = 0.0;      ///< first claim time
  double heartbeat_at = 0.0;     ///< last refresh; staleness is judged on this
  std::uint64_t token = 0;       ///< unique per claim attempt (steal dedup)
};

/// Serializes a lease as a single JSON line (with trailing newline).
std::string render_lease(const LeaseRecord& l);
/// Parses a lease document; false on torn/corrupt input (a lease being
/// rewritten by a dying worker must read as "unparseable", never crash the
/// scanner).
bool parse_lease(std::string_view text, LeaseRecord& out);

/// Manifest + JSONL journal in one directory. Thread-safe appends (sweep
/// points complete on pool workers); each line is flushed before append()
/// returns, so a crash costs only in-flight points.
class SweepJournal {
 public:
  /// Opens `dir` (created if missing). With `resume` false any existing
  /// journal is truncated and a fresh manifest written. With `resume` true
  /// an existing manifest must hash-match `manifest_text` (ArgumentError
  /// otherwise — never silently mix configurations) and completed entries
  /// are loaded; a missing manifest degrades to a fresh start so one
  /// `--journal=d --resume` command works for both the first run and every
  /// restart after a crash.
  SweepJournal(std::string dir, std::string manifest_text, bool resume,
               JournalOptions options = {});
  ~SweepJournal();
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Entry for `key`, or nullptr if the journal has none. A later line for
  /// the same key supersedes an earlier one (a resumed run re-recording a
  /// previously failed point).
  const JournalEntry* find(const std::string& key) const;

  /// Appends one line and flushes it to disk. Thread-safe.
  void append(const JournalEntry& e);

  /// Registers a sweep scope (key prefix) and rejects duplicates: two
  /// sweeps sharing a title would silently collide in the key space.
  void register_scope(const std::string& scope);

  std::size_t loaded_points() const { return entries_.size(); }
  std::uint64_t manifest_hash() const { return hash_; }
  const std::string& dir() const { return dir_; }
  const JournalOptions& options() const { return options_; }

  /// Parses one journal line; nullopt on torn/corrupt input (the caller
  /// skips it). Exposed for tests.
  static bool parse_line(std::string_view line, JournalEntry& out);
  /// Serializes one entry as a single JSONL line (no trailing newline).
  static std::string render_line(const JournalEntry& e);

 private:
  std::string dir_;
  std::string manifest_text_;
  JournalOptions options_;
  std::uint64_t hash_ = 0;
  std::map<std::string, JournalEntry> entries_;
  std::map<std::string, bool> scopes_;
  /// stdio stream (not ofstream): durable mode needs the underlying fd for
  /// fdatasync after each appended line.
  std::FILE* out_ = nullptr;
  mutable std::mutex mu_;
};

}  // namespace d2net
