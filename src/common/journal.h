// Crash-safe sweep journaling (see docs/durable_sweeps.md).
//
// A paper-scale sweep is hours of compute; a single OOM kill, pre-empted CI
// job or hung point must cost one point, not the campaign. The journal makes
// a sweep a restartable job:
//
//  - `manifest.json` pins the invocation: a human-readable config text plus
//    its FNV-1a hash (topology/routing/seeds/loads/build describe/options).
//    Resuming under a different configuration is a hard error — silently
//    mixing results from two configurations would be far worse than a
//    rerun.
//  - `journal.jsonl` is append-only, one line per *completed* point (ok,
//    timed out, or failed with its exception text), flushed immediately so
//    a SIGKILL loses at most the in-flight points. A torn final line — the
//    signature of dying mid-write — is skipped with a warning on replay.
//
// Replay loads completed entries keyed by "<sweep scope>#<point index>";
// the sweep runner skips those points and re-executes only missing/failed
// ones. Because every point derives its seed from (base seed, index), a
// resumed sweep is bit-identical to an uninterrupted one, and each entry
// carries the rendered result JSON so report output can be spliced back
// byte-for-byte.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace d2net {

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes and control characters (the latter as \uXXXX). Shared by
/// every place the project emits JSON — exception texts and spec strings
/// must never corrupt a report or a journal line.
std::string json_escape(std::string_view s);

/// FNV-1a 64-bit over the bytes of `s`; the manifest hash.
std::uint64_t fnv1a64(std::string_view s);

/// `git describe --always --dirty` captured at configure time ("unknown"
/// without git). Part of the sweep manifest: resuming a journal produced by
/// a different build of the simulator is a configuration mismatch.
const char* build_describe();

/// One journal line: the durable record of one finished sweep point (or,
/// for campaign exchange scopes, one finished exchange row).
struct JournalEntry {
  std::string key;    ///< "<scope>#<global point index>"
  std::string label;  ///< series label, validated on resume
  std::string topo;   ///< topology fingerprint ("r=..,n=..,l=.."), validated
  double load = 0.0;
  std::uint64_t seed = 0;  ///< first-attempt derived seed, validated
  std::string status;      ///< "ok" | "timed_out" | "failed"
  int attempts = 1;
  std::int64_t events = 0;
  double wall_seconds = 0.0;
  // Result summary for table printing on resume (full detail in payload):
  double throughput = 0.0;
  double avg_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  std::int64_t packets_measured = 0;
  // Exchange-row scope extension (see docs/campaigns.md): >= 0 marks the
  // entry as one row of an exchange table; 1 = the exchange completed,
  // 0 = it was cut short. Stays -1 on sweep-point entries, so journals
  // written before this extension parse unchanged.
  int exchange_completed = -1;
  double completion_us = 0.0;
  bool wedged = false;
  std::string error;    ///< exception text when status == "failed"
  std::string payload;  ///< rendered result JSON object ("" when failed)

  bool completed() const { return status == "ok" || status == "timed_out"; }
};

/// Manifest + JSONL journal in one directory. Thread-safe appends (sweep
/// points complete on pool workers); each line is flushed before append()
/// returns, so a crash costs only in-flight points.
class SweepJournal {
 public:
  /// Opens `dir` (created if missing). With `resume` false any existing
  /// journal is truncated and a fresh manifest written. With `resume` true
  /// an existing manifest must hash-match `manifest_text` (ArgumentError
  /// otherwise — never silently mix configurations) and completed entries
  /// are loaded; a missing manifest degrades to a fresh start so one
  /// `--journal=d --resume` command works for both the first run and every
  /// restart after a crash.
  SweepJournal(std::string dir, std::string manifest_text, bool resume);

  /// Entry for `key`, or nullptr if the journal has none. A later line for
  /// the same key supersedes an earlier one (a resumed run re-recording a
  /// previously failed point).
  const JournalEntry* find(const std::string& key) const;

  /// Appends one line and flushes it to disk. Thread-safe.
  void append(const JournalEntry& e);

  /// Registers a sweep scope (key prefix) and rejects duplicates: two
  /// sweeps sharing a title would silently collide in the key space.
  void register_scope(const std::string& scope);

  std::size_t loaded_points() const { return entries_.size(); }
  std::uint64_t manifest_hash() const { return hash_; }
  const std::string& dir() const { return dir_; }

  /// Parses one journal line; nullopt on torn/corrupt input (the caller
  /// skips it). Exposed for tests.
  static bool parse_line(std::string_view line, JournalEntry& out);
  /// Serializes one entry as a single JSONL line (no trailing newline).
  static std::string render_line(const JournalEntry& e);

 private:
  std::string dir_;
  std::string manifest_text_;
  std::uint64_t hash_ = 0;
  std::map<std::string, JournalEntry> entries_;
  std::map<std::string, bool> scopes_;
  std::ofstream out_;
  mutable std::mutex mu_;
};

}  // namespace d2net
