// Minimal fixed-size thread pool for embarrassingly parallel experiment
// fan-out (one task per simulation point). Tasks are plain
// std::function<void()>; ordering across tasks is never relied upon —
// callers that need deterministic output index into pre-sized result
// vectors instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace d2net {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. A task that throws does not tear down its worker:
  /// the first exception is captured and rethrown from the next wait_idle()
  /// (or parallel_for()) on the calling thread; later ones are dropped.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any task raised since the last wait.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a >= 1 guarantee.
  static int hardware_concurrency();

  /// Runs body(0) .. body(n-1) across the pool plus the calling thread and
  /// returns when all are done. Indices are claimed from a shared counter,
  /// so any thread may run any index; bodies touching disjoint state need
  /// no further synchronization. If any body throws, the remaining claimed
  /// indices still run (default) and the first exception is rethrown here
  /// afterwards. With `stop_on_first_error` set, unclaimed indices are
  /// skipped once a body has thrown — for callers (journaled sweeps) whose
  /// partial results are already durable and who prefer failing fast over
  /// finishing a run that will be reported as failed anyway.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    bool stop_on_first_error = false);

 private:
  void worker_loop();
  /// Stores the first captured exception (later ones are dropped).
  void record_error(std::exception_ptr error);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_work_;   ///< signalled on submit/stop
  std::condition_variable cv_idle_;   ///< signalled when a task finishes
  std::size_t in_flight_ = 0;         ///< queued + executing tasks
  bool stop_ = false;
  std::exception_ptr first_error_;    ///< guarded by mu_; cleared on rethrow
};

}  // namespace d2net
