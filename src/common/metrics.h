// Lightweight named-metric registry: the simulator's observability
// substrate. A registry owns three kinds of sinks — monotonic Counters,
// RunningStats gauges and LogHistograms — addressed by name. Handles
// returned by the accessors stay valid for the registry's lifetime (and
// across further registrations), so hot paths resolve a name once and then
// update through the pointer at the cost of one increment.
//
// The registry itself is not thread-safe; each simulator instance owns its
// own (the parallel sweep runner builds one stack — and thus one registry —
// per in-flight point).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/stats.h"

namespace d2net {

class MetricsRegistry {
 public:
  /// Monotonic (or at least additive) named counter.
  struct Counter {
    std::int64_t value = 0;
    void add(std::int64_t delta = 1) { value += delta; }
  };

  /// Returns the sink registered under `name`, creating it on first use.
  /// The returned reference is stable: it survives later registrations.
  Counter& counter(const std::string& name);
  RunningStats& stats(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  /// Lookup without creating; nullptr when no sink of that kind and name
  /// has been registered.
  const Counter* find_counter(const std::string& name) const;
  const RunningStats* find_stats(const std::string& name) const;
  const LogHistogram* find_histogram(const std::string& name) const;

  std::size_t num_counters() const { return counters_.size(); }
  std::size_t num_stats() const { return stats_.size(); }
  std::size_t num_histograms() const { return histograms_.size(); }

  /// Visits every sink of one kind in registration order (deterministic —
  /// serialization of a run's metrics must not depend on map iteration).
  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    for (const auto& e : counters_) fn(e.name, e.sink);
  }
  template <typename Fn>
  void for_each_stats(Fn&& fn) const {
    for (const auto& e : stats_) fn(e.name, e.sink);
  }
  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
    for (const auto& e : histograms_) fn(e.name, e.sink);
  }

 private:
  template <typename T>
  struct Entry {
    std::string name;
    T sink;
  };

  // Deque storage keeps handles stable under growth; the map indexes into
  // it by registration position.
  template <typename T>
  T& get_or_create(std::deque<Entry<T>>& entries, std::map<std::string, std::size_t>& index,
                   const std::string& name) {
    auto it = index.find(name);
    if (it != index.end()) return entries[it->second].sink;
    index.emplace(name, entries.size());
    entries.push_back({name, T{}});
    return entries.back().sink;
  }

  template <typename T>
  static const T* find_in(const std::deque<Entry<T>>& entries,
                          const std::map<std::string, std::size_t>& index,
                          const std::string& name) {
    auto it = index.find(name);
    return it == index.end() ? nullptr : &entries[it->second].sink;
  }

  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<RunningStats>> stats_;
  std::deque<Entry<LogHistogram>> histograms_;
  std::map<std::string, std::size_t> counter_index_;
  std::map<std::string, std::size_t> stats_index_;
  std::map<std::string, std::size_t> histogram_index_;
};

}  // namespace d2net
