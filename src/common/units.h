// Physical units used throughout the simulator.
//
// All simulated time is held in integer picoseconds so that event ordering
// is exact and runs are bit-reproducible across platforms. Bandwidth is
// expressed as picoseconds per byte (100 Gb/s == 80 ps/B), which keeps the
// serialization-time computation a single integer multiply.
#pragma once

#include <cstdint>

namespace d2net {

/// Simulated time in picoseconds.
using TimePs = std::int64_t;

inline constexpr TimePs kPsPerNs = 1'000;
inline constexpr TimePs kPsPerUs = 1'000'000;

/// Converts nanoseconds to picoseconds.
constexpr TimePs ns(double v) { return static_cast<TimePs>(v * kPsPerNs); }

/// Converts microseconds to picoseconds.
constexpr TimePs us(double v) { return static_cast<TimePs>(v * kPsPerUs); }

/// Picoseconds needed to serialize one byte at a given line rate in Gb/s.
/// 100 Gb/s -> 80 ps/B; 25 Gb/s -> 320 ps/B.
constexpr TimePs ps_per_byte_at_gbps(double gbps) {
  return static_cast<TimePs>(8'000.0 / gbps);
}

/// Converts picoseconds to (floating) microseconds, for reporting.
constexpr double to_us(TimePs t) { return static_cast<double>(t) / kPsPerUs; }

/// Converts picoseconds to (floating) nanoseconds, for reporting.
constexpr double to_ns(TimePs t) { return static_cast<double>(t) / kPsPerNs; }

}  // namespace d2net
