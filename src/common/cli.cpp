#include "common/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace d2net {
namespace {

/// Splits "--name=value" / "--name" into (name, value, has_value).
struct ParsedArg {
  std::string name;
  std::string value;
  bool has_value = false;
};

ParsedArg split_arg(const std::string& arg) {
  D2NET_REQUIRE(arg.size() > 2 && arg[0] == '-' && arg[1] == '-',
                "arguments must look like --name[=value]: " + arg);
  ParsedArg out;
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    out.name = arg.substr(2);
  } else {
    out.name = arg.substr(2, eq - 2);
    out.value = arg.substr(eq + 1);
    out.has_value = true;
  }
  return out;
}

// Strict numeric parsing: the *entire* token must parse, so "--load=0.9o"
// or "--duration=10us" fail loudly instead of silently truncating (or, for
// strtod with a bad prefix, silently becoming 0).

std::int64_t parse_int_value(const std::string& name, const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  D2NET_REQUIRE(!s.empty() && end == s.c_str() + s.size() && errno != ERANGE,
                "flag --" + name + " expects an integer, got '" + s + "'");
  return static_cast<std::int64_t>(v);
}

double parse_double_value(const std::string& name, const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  D2NET_REQUIRE(!s.empty() && end == s.c_str() + s.size() && errno != ERANGE,
                "flag --" + name + " expects a number, got '" + s + "'");
  return v;
}

bool parse_bool_value(const std::string& name, const std::string& s) {
  if (s == "true" || s == "1") return true;
  if (s == "false" || s == "0") return false;
  D2NET_REQUIRE(false, "flag --" + name + " expects true/false/1/0, got '" + s + "'");
  return false;  // unreachable
}

}  // namespace

Cli::Cli(std::string program_description) : description_(std::move(program_description)) {}

Cli& Cli::flag(const std::string& name, std::int64_t v, const std::string& help) {
  D2NET_REQUIRE(entries_.emplace(name, Entry{v, help}).second, "duplicate flag " + name);
  order_.push_back(name);
  return *this;
}
Cli& Cli::flag(const std::string& name, double v, const std::string& help) {
  D2NET_REQUIRE(entries_.emplace(name, Entry{v, help}).second, "duplicate flag " + name);
  order_.push_back(name);
  return *this;
}
Cli& Cli::flag(const std::string& name, bool v, const std::string& help) {
  D2NET_REQUIRE(entries_.emplace(name, Entry{v, help}).second, "duplicate flag " + name);
  order_.push_back(name);
  return *this;
}
Cli& Cli::flag(const std::string& name, const std::string& v, const std::string& help) {
  D2NET_REQUIRE(entries_.emplace(name, Entry{v, help}).second, "duplicate flag " + name);
  order_.push_back(name);
  return *this;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    ParsedArg pa = split_arg(arg);
    auto it = entries_.find(pa.name);
    D2NET_REQUIRE(it != entries_.end(), "unknown flag --" + pa.name);
    Entry& entry = it->second;
    // Bool flags may omit the value ("--full" means true).
    if (!pa.has_value && !std::holds_alternative<bool>(entry.value)) {
      D2NET_REQUIRE(i + 1 < argc, "flag --" + pa.name + " expects a value");
      pa.value = argv[++i];
      pa.has_value = true;
    }
    if (std::holds_alternative<std::int64_t>(entry.value)) {
      entry.value = parse_int_value(pa.name, pa.value);
    } else if (std::holds_alternative<double>(entry.value)) {
      entry.value = parse_double_value(pa.name, pa.value);
    } else if (std::holds_alternative<bool>(entry.value)) {
      entry.value = !pa.has_value || parse_bool_value(pa.name, pa.value);
    } else {
      entry.value = pa.value;
    }
  }
  return true;
}

const Cli::Entry& Cli::lookup(const std::string& name) const {
  auto it = entries_.find(name);
  D2NET_REQUIRE(it != entries_.end(), "flag not declared: " + name);
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::get<std::int64_t>(lookup(name).value);
}
double Cli::get_double(const std::string& name) const {
  return std::get<double>(lookup(name).value);
}
bool Cli::get_bool(const std::string& name) const {
  return std::get<bool>(lookup(name).value);
}
const std::string& Cli::get_string(const std::string& name) const {
  return std::get<std::string>(lookup(name).value);
}

void Cli::print_help() const {
  std::printf("%s\n\nFlags:\n", description_.c_str());
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    std::string def;
    if (std::holds_alternative<std::int64_t>(e.value)) {
      def = std::to_string(std::get<std::int64_t>(e.value));
    } else if (std::holds_alternative<double>(e.value)) {
      def = std::to_string(std::get<double>(e.value));
    } else if (std::holds_alternative<bool>(e.value)) {
      def = std::get<bool>(e.value) ? "true" : "false";
    } else {
      def = std::get<std::string>(e.value);
    }
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), e.help.c_str(), def.c_str());
  }
}

}  // namespace d2net
