#include "common/json.h"

#include <cmath>
#include <cstdlib>
#include <ostream>

#include "common/error.h"

namespace d2net {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const char* to_string(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

namespace {

// Recursive-descent parser. Tracks line/column for error context; every
// failure path throws through fail(), so a malformed spec can never yield
// a half-built tree.
class Parser {
 public:
  Parser(std::string_view text, const std::string& where) : s_(text), where_(where) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (i_ < s_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    std::size_t line = 1, col = 1;
    for (std::size_t k = 0; k < i_ && k < s_.size(); ++k) {
      if (s_[k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ArgumentError(where_ + ":" + std::to_string(line) + ":" + std::to_string(col) +
                        ": " + msg);
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r'))
      ++i_;
  }

  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', found '" + s_[i_] + "'");
    ++i_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) return false;
    i_ += lit.size();
    return true;
  }

  std::string parse_string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string literal");
      char c = s_[i_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape sequence");
      char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // Specs are ASCII + UTF-8 pass-through; encode the code point as
          // UTF-8 (surrogate pairs are not needed for anything we emit).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    bool integral = true;
    while (i_ < s_.size()) {
      char c = s_[i_];
      if (c >= '0' && c <= '9') {
        ++i_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = c == '+' || c == '-' ? integral : false;
        ++i_;
      } else {
        break;
      }
    }
    const std::string raw(s_.substr(start, i_ - start));
    char* end = nullptr;
    const double d = std::strtod(raw.c_str(), &end);
    if (raw.empty() || end != raw.c_str() + raw.size() || !std::isfinite(d)) {
      i_ = start;
      fail("malformed number '" + raw + "'");
    }
    // strtod accepts a few non-JSON spellings ("01", "1.", ".5" can't get
    // here but leading zeros can); enforce the JSON grammar's int part.
    {
      std::size_t p = raw[0] == '-' ? 1 : 0;
      if (p >= raw.size() || !(raw[p] >= '0' && raw[p] <= '9') ||
          (raw[p] == '0' && p + 1 < raw.size() && raw[p + 1] >= '0' && raw[p + 1] <= '9')) {
        i_ = start;
        fail("malformed number '" + raw + "'");
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    if (integral) {
      char* iend = nullptr;
      const long long ll = std::strtoll(raw.c_str(), &iend, 10);
      if (iend == raw.c_str() + raw.size()) {
        v.number_is_int = true;
        v.integer = ll;
      }
    }
    return v;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': {
        ++i_;
        v.kind = JsonValue::Kind::kObject;
        if (try_consume('}')) return v;
        while (true) {
          skip_ws();
          std::string key = parse_string_literal();
          for (const auto& [k, unused] : v.object) {
            (void)unused;
            if (k == key) fail("duplicate object key \"" + key + "\"");
          }
          expect(':');
          v.object.emplace_back(std::move(key), parse_value());
          if (try_consume(',')) continue;
          expect('}');
          return v;
        }
      }
      case '[': {
        ++i_;
        v.kind = JsonValue::Kind::kArray;
        if (try_consume(']')) return v;
        while (true) {
          v.array.push_back(parse_value());
          if (try_consume(',')) continue;
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string_literal();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return v;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
  std::string where_;
};

}  // namespace

JsonValue parse_json(std::string_view text, const std::string& where) {
  Parser p(text, where);
  return p.parse_document();
}

std::ostream& write_json_double(std::ostream& os, double v) {
  if (std::isfinite(v)) return os << v;
  return os << "null";
}

}  // namespace d2net
