// Minimal ASCII table / CSV rendering for bench output.
//
// The benches print the same rows/series the paper's tables and figures
// report; this class keeps that output aligned and machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace d2net {

/// Column-aligned text table with an optional CSV rendering.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(to_cell(cells)), ...);
    add_row(std::move(row));
  }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(float v) { return to_cell(static_cast<double>(v)); }
  template <typename T>
  static std::string to_cell(T v)
    requires std::is_integral_v<T>
  {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt(double v, int decimals = 2);

/// Formats a fraction as a percentage string, e.g. 0.873 -> "87.3%".
std::string fmt_pct(double fraction, int decimals = 1);

}  // namespace d2net
