// Minimal strict JSON support for spec files and report emission.
//
// The campaign runner consumes committed spec files, so parse errors must
// be loud and located: parse_json() builds a small document tree and throws
// ArgumentError with line/column context on any malformation, including
// trailing junk after the document. Same dependency discipline as
// common/cli — no external JSON library.
//
// This is deliberately separate from the journal's tolerant line scanner
// (common/journal.cpp): a torn journal line is expected wear and gets
// skipped, a malformed spec file is a user error and gets rejected.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace d2net {

/// One JSON value. Object member order is preserved (specs are committed
/// files; deterministic iteration keeps error messages and expansion
/// stable).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Set for kNumber when the literal had no '.', 'e' or 'E' and fits
  /// int64 — lets integer fields reject 1.5 without float comparisons.
  bool number_is_int = false;
  std::int64_t integer = 0;
  std::string str;  ///< kString payload (unescaped)
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on an object; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
};

/// Human-readable name of a value kind, for error messages.
const char* to_string(JsonValue::Kind k);

/// Parses one complete JSON document. Throws ArgumentError("<where>: ...")
/// on malformed input, duplicate object keys, or trailing content; `where`
/// names the source (a file path) in the error text.
JsonValue parse_json(std::string_view text, const std::string& where = "json");

/// Writes a double as a JSON number using the stream's current formatting.
/// NaN and ±inf have no JSON representation — they are emitted as null, so
/// a wedged or timed-out point can never corrupt a report or journal line
/// (parsers reading the value back treat null as NaN; see
/// docs/durable_sweeps.md).
std::ostream& write_json_double(std::ostream& os, double v);

}  // namespace d2net
