#include "common/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.h"

#ifndef D2NET_BUILD_DESCRIBE
#define D2NET_BUILD_DESCRIBE "unknown"
#endif

namespace d2net {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

const char* build_describe() { return D2NET_BUILD_DESCRIBE; }

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

namespace {

// Minimal tolerant scanner for the flat JSON objects the journal itself
// writes. Any malformation flips `ok` and the caller discards the line —
// a torn tail from a crash mid-write must never abort a resume.
struct JsonScanner {
  std::string_view s;
  std::size_t i = 0;
  bool ok = true;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }

  bool consume(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return i < s.size() ? s[i] : '\0';
  }

  // Parses a string literal, returning the unescaped value.
  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      ok = false;
      return out;
    }
    while (i < s.size()) {
      char c = s[i++];
      if (c == '"') return out;
      if (c == '\\') {
        if (i >= s.size()) break;
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 > s.size()) {
              ok = false;
              return out;
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = s[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                ok = false;
                return out;
              }
            }
            // The journal only emits \u for ASCII control characters.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            ok = false;
            return out;
        }
      } else {
        out += c;
      }
    }
    ok = false;  // ran off the end inside the literal: torn line
    return out;
  }

  // Consumes any value, returning its raw text (nested objects/arrays are
  // brace-matched with string awareness).
  std::string_view parse_raw_value() {
    skip_ws();
    const std::size_t start = i;
    if (i >= s.size()) {
      ok = false;
      return {};
    }
    char c = s[i];
    if (c == '"') {
      parse_string();
    } else if (c == '{' || c == '[') {
      int depth = 0;
      bool in_str = false;
      while (i < s.size()) {
        char d = s[i++];
        if (in_str) {
          if (d == '\\' && i < s.size()) ++i;
          else if (d == '"') in_str = false;
        } else if (d == '"') {
          in_str = true;
        } else if (d == '{' || d == '[') {
          ++depth;
        } else if (d == '}' || d == ']') {
          if (--depth == 0) break;
        }
      }
      if (depth != 0) ok = false;
    } else {
      while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' && s[i] != ' ' &&
             s[i] != '\t' && s[i] != '\n' && s[i] != '\r')
        ++i;
      if (i == start) ok = false;
    }
    return s.substr(start, i - start);
  }

  double parse_double() {
    std::string raw(parse_raw_value());
    if (!ok) return 0.0;
    // Non-finite values are journaled as null (JSON has no NaN/inf
    // literal); read them back as NaN so resume can splice the entry.
    if (raw == "null") return std::numeric_limits<double>::quiet_NaN();
    char* end = nullptr;
    double v = std::strtod(raw.c_str(), &end);
    if (end != raw.c_str() + raw.size()) ok = false;
    return v;
  }

  std::int64_t parse_int() {
    std::string raw(parse_raw_value());
    if (!ok) return 0;
    char* end = nullptr;
    long long v = std::strtoll(raw.c_str(), &end, 10);
    if (end != raw.c_str() + raw.size()) ok = false;
    return v;
  }

  std::uint64_t parse_uint() {
    std::string raw(parse_raw_value());
    if (!ok) return 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (end != raw.c_str() + raw.size()) ok = false;
    return v;
  }
};

// %.17g round-trips any finite double exactly through strtod, so loads and
// result summaries survive journal replay bit-for-bit. NaN/±inf (a wedged
// or timed-out point's latency average) have no JSON literal — %.17g would
// emit bare `nan`/`inf` and corrupt the line for every downstream parser —
// so non-finite values are journaled as null (read back as NaN).
std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::filesystem::path manifest_path(const std::string& dir) {
  return std::filesystem::path(dir) / "manifest.json";
}

std::filesystem::path journal_path(const std::string& dir) {
  return std::filesystem::path(dir) / "journal.jsonl";
}

// Reads manifest.json; returns false if missing/unparseable.
bool read_manifest(const std::string& dir, std::string& text_out, std::uint64_t& hash_out) {
  std::ifstream in(manifest_path(dir));
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  JsonScanner sc{doc};
  if (!sc.consume('{')) return false;
  bool have_hash = false, have_text = false;
  while (sc.ok) {
    if (sc.peek() == '}') break;
    std::string key = sc.parse_string();
    if (!sc.ok || !sc.consume(':')) return false;
    if (key == "hash") {
      std::string hex = sc.parse_string();
      if (!sc.ok) return false;
      char* end = nullptr;
      hash_out = std::strtoull(hex.c_str(), &end, 16);
      have_hash = end == hex.c_str() + hex.size() && !hex.empty();
    } else if (key == "manifest") {
      text_out = sc.parse_string();
      have_text = sc.ok;
    } else {
      sc.parse_raw_value();
    }
    if (!sc.consume(',')) break;
  }
  return sc.ok && have_hash && have_text;
}

}  // namespace

bool read_journal_manifest(const std::string& dir, std::string& text_out,
                           std::uint64_t& hash_out) {
  return read_manifest(dir, text_out, hash_out);
}

std::string render_lease(const LeaseRecord& l) {
  std::ostringstream os;
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(l.spec_hash));
  os << "{\"worker\": \"" << json_escape(l.worker) << "\""
     << ", \"shard\": " << l.shard
     << ", \"spec_hash\": \"" << hex << "\""
     << ", \"acquired_at\": " << fmt_double(l.acquired_at)
     << ", \"heartbeat_at\": " << fmt_double(l.heartbeat_at)
     << ", \"token\": " << l.token << "}\n";
  return os.str();
}

bool parse_lease(std::string_view text, LeaseRecord& out) {
  JsonScanner sc{text};
  if (!sc.consume('{')) return false;
  out = LeaseRecord{};
  while (sc.ok) {
    if (sc.peek() == '}') break;
    std::string key = sc.parse_string();
    if (!sc.ok || !sc.consume(':')) return false;
    if (key == "worker") out.worker = sc.parse_string();
    else if (key == "shard") out.shard = sc.parse_int();
    else if (key == "spec_hash") {
      std::string hexs = sc.parse_string();
      if (!sc.ok) return false;
      char* end = nullptr;
      out.spec_hash = std::strtoull(hexs.c_str(), &end, 16);
      if (hexs.empty() || end != hexs.c_str() + hexs.size()) return false;
    } else if (key == "acquired_at") out.acquired_at = sc.parse_double();
    else if (key == "heartbeat_at") out.heartbeat_at = sc.parse_double();
    else if (key == "token") out.token = sc.parse_uint();
    else sc.parse_raw_value();  // forward compat
    if (!sc.consume(',')) break;
  }
  if (!sc.ok || !sc.consume('}')) return false;
  return !out.worker.empty() && out.shard >= 0;
}

std::string SweepJournal::render_line(const JournalEntry& e) {
  std::ostringstream os;
  os << "{\"key\": \"" << json_escape(e.key) << "\""
     << ", \"label\": \"" << json_escape(e.label) << "\""
     << ", \"topo\": \"" << json_escape(e.topo) << "\""
     << ", \"load\": " << fmt_double(e.load)
     << ", \"seed\": " << e.seed
     << ", \"status\": \"" << json_escape(e.status) << "\""
     << ", \"attempts\": " << e.attempts
     << ", \"events\": " << e.events
     << ", \"wall_seconds\": " << fmt_double(e.wall_seconds)
     << ", \"throughput\": " << fmt_double(e.throughput)
     << ", \"avg_latency_ns\": " << fmt_double(e.avg_latency_ns)
     << ", \"p99_latency_ns\": " << fmt_double(e.p99_latency_ns)
     << ", \"packets_measured\": " << e.packets_measured;
  if (e.exchange_completed >= 0) {
    os << ", \"exchange_completed\": " << e.exchange_completed
       << ", \"completion_us\": " << fmt_double(e.completion_us)
       << ", \"wedged\": " << (e.wedged ? "true" : "false");
  }
  // Worker attribution only when set: solo journals stay byte-stable.
  if (!e.worker.empty()) os << ", \"worker\": \"" << json_escape(e.worker) << "\"";
  if (!e.error.empty()) os << ", \"error\": \"" << json_escape(e.error) << "\"";
  os << ", \"result\": " << (e.payload.empty() ? "null" : e.payload) << "}";
  return os.str();
}

bool SweepJournal::parse_line(std::string_view line, JournalEntry& out) {
  JsonScanner sc{line};
  if (!sc.consume('{')) return false;
  out = JournalEntry{};
  out.attempts = 1;
  while (sc.ok) {
    if (sc.peek() == '}') break;
    std::string key = sc.parse_string();
    if (!sc.ok || !sc.consume(':')) return false;
    if (key == "key") out.key = sc.parse_string();
    else if (key == "label") out.label = sc.parse_string();
    else if (key == "topo") out.topo = sc.parse_string();
    else if (key == "load") out.load = sc.parse_double();
    else if (key == "seed") out.seed = sc.parse_uint();
    else if (key == "status") out.status = sc.parse_string();
    else if (key == "attempts") out.attempts = static_cast<int>(sc.parse_int());
    else if (key == "events") out.events = sc.parse_int();
    else if (key == "wall_seconds") out.wall_seconds = sc.parse_double();
    else if (key == "throughput") out.throughput = sc.parse_double();
    else if (key == "avg_latency_ns") out.avg_latency_ns = sc.parse_double();
    else if (key == "p99_latency_ns") out.p99_latency_ns = sc.parse_double();
    else if (key == "packets_measured") out.packets_measured = sc.parse_int();
    else if (key == "exchange_completed") out.exchange_completed = static_cast<int>(sc.parse_int());
    else if (key == "completion_us") out.completion_us = sc.parse_double();
    else if (key == "wedged") out.wedged = sc.parse_raw_value() == "true";
    else if (key == "worker") out.worker = sc.parse_string();
    else if (key == "error") out.error = sc.parse_string();
    else if (key == "result") {
      std::string_view raw = sc.parse_raw_value();
      out.payload = raw == "null" ? std::string{} : std::string(raw);
    } else {
      sc.parse_raw_value();  // unknown field: tolerate for forward compat
    }
    if (!sc.consume(',')) break;
  }
  if (!sc.ok || !sc.consume('}')) return false;
  if (out.key.empty()) return false;
  if (out.status != "ok" && out.status != "timed_out" && out.status != "failed") return false;
  return true;
}

SweepJournal::SweepJournal(std::string dir, std::string manifest_text, bool resume,
                           JournalOptions options)
    : dir_(std::move(dir)), manifest_text_(std::move(manifest_text)),
      options_(std::move(options)) {
  D2NET_REQUIRE(!dir_.empty(), "journal directory must not be empty");
  hash_ = fnv1a64(manifest_text_);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  D2NET_REQUIRE(!ec, "cannot create journal directory '" + dir_ + "': " + ec.message());
  // Interleaved stderr from concurrent campaign workers must be
  // attributable to the process that wrote it.
  const std::string diag_prefix =
      options_.worker.empty() ? "" : "[worker " + options_.worker + "] ";

  std::string prev_text;
  std::uint64_t prev_hash = 0;
  const bool have_prev = read_manifest(dir_, prev_text, prev_hash);

  if (resume && have_prev) {
    if (prev_hash != hash_ || prev_text != manifest_text_) {
      throw ArgumentError(
          "journal manifest mismatch in '" + dir_ +
          "': the journal was written by a different configuration.\n"
          "--- journal manifest ---\n" + prev_text +
          "--- current invocation ---\n" + manifest_text_ +
          "Re-run without --resume (or with a fresh --journal dir) to start over.");
    }
    // Replay completed entries; later lines supersede earlier ones.
    std::ifstream in(journal_path(dir_));
    std::string line;
    std::size_t lineno = 0, skipped = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      JournalEntry e;
      if (!parse_line(line, e)) {
        ++skipped;
        std::fprintf(stderr,
                     "%swarning: skipping torn/corrupt journal line %zu in %s\n",
                     diag_prefix.c_str(), lineno, journal_path(dir_).string().c_str());
        continue;
      }
      entries_[e.key] = std::move(e);
    }
    (void)skipped;
    // A crash mid-append leaves a torn final line with no newline; heal it
    // before appending, or the next entry would concatenate onto the
    // fragment and corrupt itself too.
    bool torn_tail = false;
    {
      std::ifstream tail(journal_path(dir_), std::ios::binary | std::ios::ate);
      if (tail.is_open() && tail.tellg() > 0) {
        tail.seekg(-1, std::ios::end);
        char last = '\n';
        tail.get(last);
        torn_tail = last != '\n';
      }
    }
    out_ = std::fopen(journal_path(dir_).string().c_str(), "ab");
    if (out_ != nullptr && torn_tail) std::fputc('\n', out_);
  } else {
    // Fresh start (also: --resume with no prior manifest, so the same
    // command line works for the first run and every restart). The
    // manifest is written to a temp name and renamed into place: a reader
    // (a concurrent campaign worker validating its configuration) never
    // sees a half-written manifest, and a crash mid-write leaves the old
    // one intact.
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(hash_));
    const std::filesystem::path tmp =
        std::filesystem::path(dir_) / ("manifest.json.tmp." + std::to_string(::getpid()));
    {
      std::ofstream mf(tmp, std::ios::trunc);
      mf << "{\"hash\": \"" << hex << "\", \"manifest\": \"" << json_escape(manifest_text_)
         << "\"}\n";
      mf.flush();
      D2NET_REQUIRE(mf.good(), "cannot write journal manifest in '" + dir_ + "'");
    }
    std::filesystem::rename(tmp, manifest_path(dir_), ec);
    D2NET_REQUIRE(!ec, "cannot install journal manifest in '" + dir_ + "': " + ec.message());
    if (options_.durable) fsync_dir(dir_);
    out_ = std::fopen(journal_path(dir_).string().c_str(), "wb");
  }
  D2NET_REQUIRE(out_ != nullptr, "cannot open journal file in '" + dir_ + "'");
}

SweepJournal::~SweepJournal() {
  if (out_ != nullptr) std::fclose(out_);
}

const JournalEntry* SweepJournal::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void SweepJournal::append(const JournalEntry& e) {
  // Entries from a worker-attributed journal carry the worker id even when
  // the caller did not stamp it (one stamping point instead of N call
  // sites).
  std::string line;
  if (!options_.worker.empty() && e.worker.empty()) {
    JournalEntry stamped = e;
    stamped.worker = options_.worker;
    line = render_line(stamped);
  } else {
    line = render_line(e);
  }
  std::lock_guard<std::mutex> lock(mu_);
  bool ok = std::fwrite(line.data(), 1, line.size(), out_) == line.size() &&
            std::fputc('\n', out_) != EOF && std::fflush(out_) == 0;
  // Durable mode: the entry must survive a host power loss, not just a
  // process kill — the claim protocol assumes an acked point is recorded.
  if (ok && options_.durable) ok = ::fdatasync(::fileno(out_)) == 0;
  D2NET_REQUIRE(ok, "journal append failed in '" + dir_ + "'");
}

void SweepJournal::register_scope(const std::string& scope) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = scopes_.emplace(scope, true);
  (void)it;
  D2NET_REQUIRE(inserted,
                "duplicate sweep scope '" + scope + "' — journaled sweeps need unique titles");
}

}  // namespace d2net
