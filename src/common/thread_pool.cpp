#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace d2net {

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;  // the pool stays usable after the rethrow
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::record_error(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_error_) first_error_ = std::move(error);
}

int ThreadPool::hardware_concurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              bool stop_on_first_error) {
  if (n == 0) return;
  // Shared claim counter: workers and the caller pull the next unclaimed
  // index until none remain. shared_ptr keeps it alive for stragglers.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto run_claims = [this, next, failed, n, stop_on_first_error, &body] {
    for (;;) {
      if (stop_on_first_error && failed->load(std::memory_order_relaxed)) return;
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      // Capture here (not only in worker_loop) so a throw on the calling
      // thread surfaces through the same wait_idle() path as a worker's.
      try {
        body(i);
      } catch (...) {
        failed->store(true, std::memory_order_relaxed);
        record_error(std::current_exception());
      }
    }
  };
  const std::size_t helpers = std::min(static_cast<std::size_t>(size()), n - 1);
  for (std::size_t t = 0; t < helpers; ++t) submit(run_claims);
  run_claims();  // the caller participates
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      record_error(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace d2net
