// Tiny command-line flag parser for benches and examples.
//
// Flags are declared with defaults, parsed from `--name=value` or
// `--name value` arguments; `--help` prints the registry. No external
// dependencies, deterministic errors on unknown flags and malformed
// values: numeric flags require the whole token to parse (no trailing
// junk), bool flags accept only true/false/1/0 (or no value, meaning
// true).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace d2net {

/// Declarative flag registry + parser.
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Declares a flag; returns *this for chaining.
  Cli& flag(const std::string& name, std::int64_t default_value, const std::string& help);
  Cli& flag(const std::string& name, double default_value, const std::string& help);
  Cli& flag(const std::string& name, bool default_value, const std::string& help);
  Cli& flag(const std::string& name, const std::string& default_value, const std::string& help);

  /// Parses argv. On `--help` prints usage and returns false (caller should
  /// exit 0). Throws ArgumentError on unknown flags or malformed values.
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

 private:
  using Value = std::variant<std::int64_t, double, bool, std::string>;

  struct Entry {
    Value value;
    std::string help;
  };

  const Entry& lookup(const std::string& name) const;
  void print_help() const;

  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;  ///< Declaration order, for --help.
};

}  // namespace d2net
