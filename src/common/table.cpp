#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.h"

namespace d2net {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  D2NET_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  D2NET_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_cell(double v) { return fmt(v, 3); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(width[c], '-');
    }
    os << "-+\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace d2net
