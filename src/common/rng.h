// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible: the same seed yields the same packet
// trace on every platform. We therefore avoid std::mt19937 +
// std::uniform_int_distribution (whose algorithm is implementation-defined)
// and ship xoshiro256** seeded through SplitMix64, with our own unbiased
// bounded-integer rejection sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace d2net {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via SplitMix64.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Unbiased (Lemire + rejection).
  std::uint64_t next_below(std::uint64_t bound) {
    D2NET_ASSERT(bound > 0, "next_below(0)");
    // Lemire's multiply-shift with rejection for exact uniformity.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    D2NET_ASSERT(lo <= hi, "uniform_int range");
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    D2NET_ASSERT(!v.empty(), "choice from empty vector");
    return v[next_below(v.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace d2net
