#include "flowsim/flow_graph.h"

#include <algorithm>

#include "common/error.h"

namespace d2net::flowsim {

FlowGraph::FlowGraph(const Topology& topo) {
  D2NET_REQUIRE(topo.finalized(), "topology must be finalized");
  const int R = topo.num_routers();
  num_nodes_ = topo.num_nodes();
  router_base_.resize(static_cast<std::size_t>(R) + 1);
  pon_base_.resize(static_cast<std::size_t>(R) + 1);
  std::int32_t base = 0;
  for (int r = 0; r < R; ++r) {
    router_base_[static_cast<std::size_t>(r)] = base;
    pon_base_[static_cast<std::size_t>(r)] = base;
    const auto& nbrs = topo.neighbors(r);
    const std::size_t first = port_of_neighbor_.size();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      port_of_neighbor_.emplace_back(nbrs[i], static_cast<std::int32_t>(i));
    }
    std::sort(port_of_neighbor_.begin() + static_cast<std::ptrdiff_t>(first),
              port_of_neighbor_.end());
    for (std::size_t i = first + 1; i < port_of_neighbor_.size(); ++i) {
      D2NET_REQUIRE(port_of_neighbor_[i].first != port_of_neighbor_[i - 1].first,
                    "parallel links are not supported by the flow engine");
    }
    base += static_cast<std::int32_t>(nbrs.size());
  }
  router_base_[static_cast<std::size_t>(R)] = base;
  pon_base_[static_cast<std::size_t>(R)] = base;
  net_links_ = base;
  total_links_ = net_links_ + 2 * num_nodes_;
}

int FlowGraph::link_between(int router, int neighbor) const {
  const auto first = port_of_neighbor_.begin() + pon_base_[static_cast<std::size_t>(router)];
  const auto last = port_of_neighbor_.begin() + pon_base_[static_cast<std::size_t>(router) + 1];
  const auto it = std::lower_bound(first, last, std::make_pair(neighbor, INT32_MIN));
  D2NET_HOT_ASSERT(it != last && it->first == neighbor, "route hop between non-adjacent routers");
  return router_base_[static_cast<std::size_t>(router)] + it->second;
}

int FlowGraph::links_of_route(int src_node, int dst_node, const Route& route,
                              std::int32_t* out) const {
  int n = 0;
  out[n++] = injection_link(src_node);
  for (int h = 0; h + 1 < static_cast<int>(route.routers.size()); ++h) {
    const std::int32_t l =
        static_cast<std::int32_t>(link_between(route.routers[static_cast<std::size_t>(h)],
                                               route.routers[static_cast<std::size_t>(h) + 1]));
    bool dup = false;
    for (int i = 1; i < n; ++i) dup = dup || (out[i] == l);
    if (!dup) out[n++] = l;
  }
  out[n++] = ejection_link(dst_node);
  D2NET_HOT_ASSERT(n <= kMaxLinksPerFlow, "route exceeds the per-flow link slab");
  return n;
}

}  // namespace d2net::flowsim
