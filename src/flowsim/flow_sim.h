// Flow-level max-min-fair fast engine (SimConfig::engine == kFlow; see
// docs/flow_engine.md).
//
// Instead of per-packet events, a flow carries a complete path (decided
// once at start by the ordinary routing layer — MIN / Valiant / UGAL over
// the same MinimalTable CSR tables the packet engine uses) and a rate
// assigned by progressive water-filling over link capacities (waterfill.h).
// Simulated time advances by flow arrival/start/finish events only, so one
// event covers what the packet engine spends thousands of events on — the
// scale lever that reaches 10^5-10^6 endpoints (ROADMAP's first open
// item).
//
// Two recompute disciplines, selected by FlowSimConfig::rate_interval:
//   0   exact: after every flow arrival/departure, re-waterfill the
//       affected connected component of the flow-link sharing graph
//       (components are independent under max-min fairness, so this is the
//       global fixed point). Default; right at validation scale.
//   > 0 batched: new/removed flows mark their links dirty; a periodic rate
//       tick re-waterfills the dirty components. New flows run at an
//       optimistic estimate (min over their links of 1/flow-count) until
//       the next tick. Amortizes recompute cost at saturation scale, where
//       one arrival would otherwise touch a network-spanning component.
//
// Determinism: a single event heap ordered by (time, seq) with seq
// assigned at push, per-node xoshiro streams seeded exactly like the
// packet engine's, and the waterfill's (ratio, link-id) ordering make every
// run bit-reproducible — independent of --jobs, because one simulation is
// always one serial event loop.
//
// Packet-only features are rejected up front (ArgumentError): fault
// schedules, --metrics, and --shards > 1 have no flow-level counterpart
// (see docs/flow_engine.md, "What is and isn't comparable").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "flowsim/flow_graph.h"
#include "flowsim/waterfill.h"
#include "routing/routing_algorithm.h"
#include "sim/config.h"
#include "sim/network.h"

namespace d2net {
class MinimalTable;
class Topology;
class TrafficPattern;
}  // namespace d2net

namespace d2net::flowsim {

class FlowSim final : public PortLoadProvider, private RateChangeSink {
 public:
  /// Throws ArgumentError when `cfg` requests packet-only features (fault
  /// injection, metrics, shards > 1) or carries invalid flow knobs.
  FlowSim(const Topology& topo, const SimConfig& cfg);

  /// Attaches the routing algorithm; must be called before running.
  /// Adaptive algorithms should be constructed with this object as their
  /// PortLoadProvider.
  void set_routing(const RoutingAlgorithm& algo) { routing_ = &algo; }

  /// Open-loop run: Poisson flow arrivals per node at `load` (fraction of
  /// line rate, flow size FlowSimConfig::flow_bytes), destinations drawn
  /// from `pattern` at flow start. Each node runs at most
  /// FlowSimConfig::max_active_per_node concurrent flows (NIC
  /// serialization); excess arrivals queue, which is what makes offered >
  /// capacity show up as accepted < offered. Throughput counts bytes
  /// delivered inside [warmup, duration]; latency is *flow completion*
  /// latency of flows started at or after warmup (not packet latency — see
  /// docs/flow_engine.md), and packets_injected/measured count flows.
  OpenLoopResult run_open_loop(const TrafficPattern& pattern, double load, TimePs duration,
                               TimePs warmup);

  /// Closed-loop exchange run over an explicit plan; aborts (completed =
  /// false) at `time_limit`. kSequential starts each node's message i+1
  /// when i finishes; kRoundRobin opens all of a node's messages
  /// concurrently and lets water-filling share the NIC.
  ExchangeResult run_exchange(const ExchangePlan& plan, TimePs time_limit);

  /// Closed-form fluid all-to-all completion (every node sends
  /// bytes_per_pair to every other node): expected per-link load under
  /// minimal routing (distance-1 pairs use the direct link; distance-2
  /// pairs split uniformly over the CSR next-hop set), bottleneck =
  /// most-loaded link including injection/ejection. This is the aggregate
  /// limit of the flow model — the only way to state all-to-all completion
  /// at >=10^5 endpoints, where the N^2 per-message plan cannot even be
  /// materialized. Requires a diameter-<=2 table; see docs/flow_engine.md
  /// for what this approximation does and doesn't capture.
  ExchangeResult run_fluid_all_to_all(const MinimalTable& table,
                                      std::int64_t bytes_per_pair) const;

  // PortLoadProvider (read by UGAL at flow start): occupancy is modeled as
  // flows-on-link x packet_bytes. Relative comparisons (UGAL's CM vs c*CI)
  // are meaningful; absolute thresholds calibrated against packet-queue
  // occupancy are not (docs/flow_engine.md).
  std::int64_t output_queue_bytes(int router, int next_hop) const override;
  std::int64_t output_queue_capacity() const override;

  /// Flow events dispatched by the last run.
  std::int64_t events_processed() const { return events_processed_; }
  /// Flows started / completed by the last run.
  std::int64_t flows_started() const { return flows_started_; }
  std::int64_t flows_completed() const { return flows_completed_; }

  const Topology& topology() const { return topo_; }
  const SimConfig& config() const { return cfg_; }

 private:
  enum class EventKind : std::uint8_t { kArrival = 0, kCompletion = 1, kRateTick = 2 };
  struct Event {
    TimePs time = 0;
    std::uint64_t seq = 0;
    std::int32_t a = -1;       ///< node (kArrival) or flow (kCompletion)
    std::uint32_t gen = 0;     ///< kCompletion: flow generation at push time
    EventKind kind = EventKind::kArrival;
  };

  void reset();
  void push_event(TimePs time, EventKind kind, std::int32_t a, std::uint32_t gen);
  bool run_until(TimePs end);  ///< returns false on wall-limit timeout
  void dispatch_arrival(const Event& e);
  void dispatch_completion(const Event& e);
  void dispatch_rate_tick();

  int start_flow(int src_node, int dst_node, double bytes);
  void finish_flow(int flow);
  void accrue(int flow);
  void schedule_completion(int flow);
  void mark_dirty(const std::int32_t* links, int n);
  void grow_flow_arrays();
  TimePs completion_delay(double remaining_bytes, double rate) const;
  void final_accrual(TimePs at);

  // RateChangeSink: accrue at the old rate, write the new one, reschedule.
  void on_rate_change(int flow, double new_rate) override;

  const Topology& topo_;
  const SimConfig cfg_;
  const RoutingAlgorithm* routing_ = nullptr;
  FlowGraph graph_;
  FlowTable table_;
  WaterfillScratch scratch_;

  // Per-flow (parallel to FlowTable ids).
  std::vector<std::int32_t> src_of_;
  std::vector<std::int32_t> dst_of_;
  std::vector<TimePs> start_of_;
  std::vector<TimePs> last_update_;
  std::vector<std::uint32_t> gen_of_;

  // Per-node open-loop / exchange state.
  std::vector<Rng> node_rng_;
  std::vector<std::int32_t> active_of_node_;
  std::vector<std::int32_t> backlog_of_node_;
  std::vector<std::int32_t> cursor_of_node_;  ///< exchange: next message index
  std::vector<double> ejected_per_node_;      ///< bytes into the window, by dst

  // Batched-mode dirty-link set (epoch-stamped dedup).
  std::vector<std::int32_t> dirty_links_;
  std::vector<std::uint32_t> dirty_mark_;
  std::uint32_t dirty_epoch_ = 0;

  // Event heap (min on (time, seq)) plus scratch for waterfill seeds.
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::int32_t link_scratch_[2 * kMaxLinksPerFlow] = {};
  Route route_scratch_;

  // Run state.
  const TrafficPattern* pattern_ = nullptr;
  const ExchangePlan* plan_ = nullptr;
  double load_ = 0.0;
  TimePs now_ = 0;
  TimePs gen_end_ = 0;
  TimePs window_start_ = 0;
  TimePs window_end_ = 0;
  bool exchange_mode_ = false;
  bool timed_out_ = false;
  /// Exchange setup: start_flow leaves rates at 0 for one waterfill_all.
  bool defer_rates_ = false;
  std::int64_t exchange_msgs_open_ = 0;
  std::int64_t exchange_msgs_total_ = 0;
  TimePs exchange_completion_ = -1;

  // Statistics.
  std::int64_t events_processed_ = 0;
  std::uint64_t event_digest_ = 0;
  std::int64_t flows_started_ = 0;
  std::int64_t flows_completed_ = 0;
  std::int64_t injected_warmup_ = 0;
  std::int64_t injected_measured_ = 0;
  std::int64_t delivered_warmup_ = 0;
  std::int64_t delivered_measured_ = 0;
  std::int64_t delivered_carryover_ = 0;
  std::int64_t hop_sum_ = 0;
  std::int64_t minimal_flows_ = 0;
  double delivered_window_bytes_ = 0.0;
  double delivered_total_bytes_ = 0.0;
  LogHistogram latency_ns_;
};

}  // namespace d2net::flowsim
