#include "flowsim/flow_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "routing/minimal_table.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace d2net::flowsim {

namespace {

// Residual bytes below this count as delivered (absorbs the <= 1 ps
// rounding of integer completion times against double byte accounting).
constexpr double kEpsBytes = 1e-4;
// Rates below this never schedule a completion; the flow waits for the next
// rate change. Max-min fair shares are bounded below by 1/flows-on-link, so
// this only guards floating-point corner cases.
constexpr double kMinRate = 1e-12;
constexpr std::int64_t kWallCheckInterval = 4096;

// Local equivalents of ExchangePlan::total_bytes()/active_nodes(): those
// are compiled into d2net_sim, which links *against* this library — keep
// flowsim free of sim symbols so the dependency stays one-directional.
std::int64_t plan_total_bytes(const ExchangePlan& plan) {
  std::int64_t total = 0;
  for (const auto& msgs : plan.per_node) {
    for (const ExchangeMessage& m : msgs) total += m.bytes;
  }
  return total;
}

int plan_active_nodes(const ExchangePlan& plan) {
  int active = 0;
  for (const auto& msgs : plan.per_node) {
    if (!msgs.empty()) ++active;
  }
  return active;
}

// SplitMix64 finalizer — same constants as the packet engine's mix_seed,
// so both engines derive per-node streams the same way from one run seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t w) {
  h ^= w;
  return h * 0x100000001B3ULL;
}

}  // namespace

FlowSim::FlowSim(const Topology& topo, const SimConfig& cfg)
    : topo_(topo), cfg_(cfg), graph_(topo) {
  D2NET_REQUIRE(!cfg.fault.enabled(),
                "the flow engine does not support fault injection; drop the fault "
                "schedule or use the packet engine (engine=packet)");
  D2NET_REQUIRE(!cfg.metrics.enabled,
                "the flow engine does not support per-port/VC metrics (--metrics); "
                "use the packet engine (engine=packet)");
  D2NET_REQUIRE(cfg.shards == 1,
                "the flow engine runs one serial event loop per simulation; use "
                "--jobs for sweep parallelism instead of --shards");
  D2NET_REQUIRE(cfg.flow.flow_bytes >= 1, "flow.flow_bytes must be >= 1");
  D2NET_REQUIRE(cfg.flow.max_active_per_node >= 1, "flow.max_active_per_node must be >= 1");
  D2NET_REQUIRE(cfg.flow.rate_interval >= 0, "flow.rate_interval must be >= 0");
}

void FlowSim::reset() {
  table_.reset(graph_.num_links());
  src_of_.clear();
  dst_of_.clear();
  start_of_.clear();
  last_update_.clear();
  gen_of_.clear();

  const std::size_t n = static_cast<std::size_t>(topo_.num_nodes());
  node_rng_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    node_rng_[i].reseed(mix_seed(cfg_.seed, static_cast<std::uint64_t>(i)));
  }
  active_of_node_.assign(n, 0);
  backlog_of_node_.assign(n, 0);
  cursor_of_node_.assign(n, 0);
  ejected_per_node_.assign(n, 0.0);

  dirty_links_.clear();
  dirty_mark_.assign(static_cast<std::size_t>(graph_.num_links()), 0);
  dirty_epoch_ = 1;

  heap_.clear();
  next_seq_ = 0;

  pattern_ = nullptr;
  plan_ = nullptr;
  load_ = 0.0;
  now_ = 0;
  gen_end_ = 0;
  window_start_ = 0;
  window_end_ = 0;
  exchange_mode_ = false;
  timed_out_ = false;
  defer_rates_ = false;
  exchange_msgs_open_ = 0;
  exchange_msgs_total_ = 0;
  exchange_completion_ = -1;

  events_processed_ = 0;
  event_digest_ = 0;
  flows_started_ = 0;
  flows_completed_ = 0;
  injected_warmup_ = 0;
  injected_measured_ = 0;
  delivered_warmup_ = 0;
  delivered_measured_ = 0;
  delivered_carryover_ = 0;
  hop_sum_ = 0;
  minimal_flows_ = 0;
  delivered_window_bytes_ = 0.0;
  delivered_total_bytes_ = 0.0;
  latency_ns_ = LogHistogram{};
}

void FlowSim::grow_flow_arrays() {
  const std::size_t cap = static_cast<std::size_t>(table_.capacity());
  if (src_of_.size() >= cap) return;
  src_of_.resize(cap, -1);
  dst_of_.resize(cap, -1);
  start_of_.resize(cap, 0);
  last_update_.resize(cap, 0);
  gen_of_.resize(cap, 0);
}

void FlowSim::push_event(TimePs time, EventKind kind, std::int32_t a, std::uint32_t gen) {
  Event e;
  e.time = time;
  e.seq = next_seq_++;
  e.a = a;
  e.gen = gen;
  e.kind = kind;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), [](const Event& x, const Event& y) {
    return x.time > y.time || (x.time == y.time && x.seq > y.seq);
  });
}

TimePs FlowSim::completion_delay(double remaining_bytes, double rate) const {
  const double ps =
      remaining_bytes * static_cast<double>(cfg_.ps_per_byte) / std::max(rate, kMinRate);
  constexpr double kCap = 4.0e18;  // stays well inside TimePs
  return static_cast<TimePs>(std::min(ps, kCap)) + 1;
}

void FlowSim::accrue(int flow) {
  const std::size_t f = static_cast<std::size_t>(flow);
  const TimePs dt = now_ - last_update_[f];
  if (dt <= 0) {
    last_update_[f] = now_;
    return;
  }
  const double rate = table_.rate[f];
  if (rate > 0.0) {
    const double bytes =
        rate * static_cast<double>(dt) / static_cast<double>(cfg_.ps_per_byte);
    const double before = table_.remaining[f];
    const double after = std::max(0.0, before - bytes);
    table_.remaining[f] = after;
    delivered_total_bytes_ += before - after;
    const TimePs lo = std::max(last_update_[f], window_start_);
    const TimePs hi = std::min(now_, window_end_);
    if (hi > lo) {
      const double wbytes =
          rate * static_cast<double>(hi - lo) / static_cast<double>(cfg_.ps_per_byte);
      delivered_window_bytes_ += wbytes;
      ejected_per_node_[static_cast<std::size_t>(dst_of_[f])] += wbytes;
    }
  }
  last_update_[f] = now_;
}

void FlowSim::schedule_completion(int flow) {
  const std::size_t f = static_cast<std::size_t>(flow);
  const double rate = table_.rate[f];
  if (rate <= kMinRate) return;  // re-armed by the next rate increase
  push_event(now_ + completion_delay(table_.remaining[f], rate), EventKind::kCompletion, flow,
             gen_of_[f]);
}

void FlowSim::on_rate_change(int flow, double new_rate) {
  accrue(flow);
  table_.rate[static_cast<std::size_t>(flow)] = new_rate;
  ++gen_of_[static_cast<std::size_t>(flow)];  // lazy-invalidate the old completion event
  schedule_completion(flow);
}

void FlowSim::mark_dirty(const std::int32_t* links, int n) {
  for (int i = 0; i < n; ++i) {
    const std::int32_t l = links[i];
    if (dirty_mark_[static_cast<std::size_t>(l)] == dirty_epoch_) continue;
    dirty_mark_[static_cast<std::size_t>(l)] = dirty_epoch_;
    dirty_links_.push_back(l);
  }
}

int FlowSim::start_flow(int src_node, int dst_node, double bytes) {
  const int src_router = topo_.router_of_node(src_node);
  const int dst_router = topo_.router_of_node(dst_node);
  route_scratch_.routers.clear();
  route_scratch_.vcs.clear();
  route_scratch_.intermediate_pos = -1;
  if (src_router == dst_router) {
    route_scratch_.routers.push_back(src_router);
  } else {
    routing_->route_into(src_router, dst_router, node_rng_[static_cast<std::size_t>(src_node)],
                         route_scratch_);
  }
  const int n = graph_.links_of_route(src_node, dst_node, route_scratch_, link_scratch_);
  const int f = table_.create(link_scratch_, n, bytes);
  grow_flow_arrays();
  const std::size_t fs = static_cast<std::size_t>(f);
  src_of_[fs] = src_node;
  dst_of_[fs] = dst_node;
  start_of_[fs] = now_;
  last_update_[fs] = now_;
  ++gen_of_[fs];

  ++flows_started_;
  if (now_ < window_start_) {
    ++injected_warmup_;
  } else {
    ++injected_measured_;
  }
  hop_sum_ += route_scratch_.hops();
  if (route_scratch_.minimal()) ++minimal_flows_;
  ++active_of_node_[static_cast<std::size_t>(src_node)];

  if (defer_rates_) {
    // Exchange setup: the caller settles every rate in one waterfill_all.
  } else if (cfg_.flow.rate_interval == 0) {
    waterfill_from(table_, link_scratch_, n, scratch_, *this);
  } else {
    // Optimistic estimate until the next rate tick: the fair share if every
    // link it crosses split evenly among its current flows.
    double est = 1.0;
    for (int i = 0; i < n; ++i) {
      est = std::min(est, 1.0 / table_.link_nflows[static_cast<std::size_t>(link_scratch_[i])]);
    }
    table_.rate[fs] = est;
    schedule_completion(f);
    mark_dirty(link_scratch_, n);
  }
  return f;
}

void FlowSim::finish_flow(int flow) {
  const std::size_t f = static_cast<std::size_t>(flow);
  const int src = src_of_[f];

  ++flows_completed_;
  if (now_ < window_start_) {
    ++delivered_warmup_;
  } else if (now_ <= window_end_) {
    if (start_of_[f] >= window_start_) {
      ++delivered_measured_;
      latency_ns_.add((now_ - start_of_[f]) / 1000);
    } else {
      ++delivered_carryover_;
    }
  }

  // Seeds for the post-removal recompute: the departing flow's links (its
  // component may split, but every affected link is among them), plus —
  // when a successor starts — the successor's links, so one waterfill
  // covers both changes.
  const int base = flow * kMaxLinksPerFlow;
  const int nold = table_.nlinks[f];
  for (int i = 0; i < nold; ++i) {
    link_scratch_[kMaxLinksPerFlow + i] = table_.slot_link[static_cast<std::size_t>(base + i)];
  }
  table_.destroy(flow);
  --active_of_node_[static_cast<std::size_t>(src)];
  if (cfg_.flow.rate_interval > 0) mark_dirty(link_scratch_ + kMaxLinksPerFlow, nold);

  if (exchange_mode_) {
    --exchange_msgs_open_;
    if (plan_->order == MessageOrder::kSequential) {
      auto& cursor = cursor_of_node_[static_cast<std::size_t>(src)];
      const auto& msgs = plan_->per_node[static_cast<std::size_t>(src)];
      if (cursor < static_cast<std::int32_t>(msgs.size())) {
        const ExchangeMessage& m = msgs[static_cast<std::size_t>(cursor)];
        ++cursor;
        ++exchange_msgs_open_;
        start_flow(src, m.dst_node, static_cast<double>(m.bytes));
      }
    }
    if (exchange_msgs_open_ == 0) exchange_completion_ = now_;
  } else {
    auto& backlog = backlog_of_node_[static_cast<std::size_t>(src)];
    if (backlog > 0) {
      --backlog;
      const int dst = pattern_->dest(src, node_rng_[static_cast<std::size_t>(src)]);
      start_flow(src, dst, static_cast<double>(cfg_.flow.flow_bytes));
    }
  }

  if (cfg_.flow.rate_interval == 0) {
    // start_flow already waterfilled the successor's component (which
    // includes any links shared with the departed flow); recompute from the
    // departed links too so split-off components are re-raised.
    waterfill_from(table_, link_scratch_ + kMaxLinksPerFlow, nold, scratch_, *this);
  }
}

void FlowSim::dispatch_arrival(const Event& e) {
  if (e.time >= gen_end_) return;
  const int node = e.a;
  const std::size_t ns = static_cast<std::size_t>(node);
  if (active_of_node_[ns] < cfg_.flow.max_active_per_node) {
    const int dst = pattern_->dest(node, node_rng_[ns]);
    start_flow(node, dst, static_cast<double>(cfg_.flow.flow_bytes));
  } else {
    ++backlog_of_node_[ns];
  }
  // Poisson arrivals: exponential gaps with mean flow_time / load.
  const double mean = static_cast<double>(cfg_.flow.flow_bytes) *
                      static_cast<double>(cfg_.ps_per_byte) / std::max(load_, 1e-9);
  const double u = 1.0 - node_rng_[ns].uniform();  // (0, 1]
  const auto dt = static_cast<TimePs>(-std::log(u) * mean) + 1;
  push_event(e.time + dt, EventKind::kArrival, node, 0);
}

void FlowSim::dispatch_completion(const Event& e) {
  const int flow = e.a;
  const std::size_t f = static_cast<std::size_t>(flow);
  if (!table_.in_use[f] || gen_of_[f] != e.gen) return;  // stale
  accrue(flow);
  if (table_.remaining[f] > kEpsBytes) {
    // Batched mode: the optimistic estimate overshot; re-arm at the
    // current (tick-corrected) rate.
    ++gen_of_[f];
    schedule_completion(flow);
    return;
  }
  finish_flow(flow);
}

void FlowSim::dispatch_rate_tick() {
  if (!dirty_links_.empty()) {
    waterfill_from(table_, dirty_links_.data(), static_cast<int>(dirty_links_.size()), scratch_,
                   *this);
    dirty_links_.clear();
    ++dirty_epoch_;
    if (dirty_epoch_ == 0) {
      std::fill(dirty_mark_.begin(), dirty_mark_.end(), 0);
      dirty_epoch_ = 1;
    }
  }
}

bool FlowSim::run_until(TimePs end) {
  const bool digest = cfg_.collect_event_digest;
  const double wall_limit = cfg_.wall_limit_seconds;
  const auto wall_start = std::chrono::steady_clock::now();
  std::int64_t since_check = 0;
  const auto after = [](const Event& x, const Event& y) {
    return x.time > y.time || (x.time == y.time && x.seq > y.seq);
  };
  while (!heap_.empty()) {
    const Event e = heap_.front();
    if (e.time > end) break;
    std::pop_heap(heap_.begin(), heap_.end(), after);
    heap_.pop_back();
    now_ = e.time;
    ++events_processed_;
    if (digest) {
      event_digest_ = fnv1a_step(event_digest_, static_cast<std::uint64_t>(e.time));
      event_digest_ = fnv1a_step(event_digest_, e.seq);
      event_digest_ = fnv1a_step(event_digest_,
                                 (static_cast<std::uint64_t>(e.kind) << 32) |
                                     static_cast<std::uint32_t>(e.a));
    }
    switch (e.kind) {
      case EventKind::kArrival:
        dispatch_arrival(e);
        break;
      case EventKind::kCompletion:
        dispatch_completion(e);
        break;
      case EventKind::kRateTick:
        dispatch_rate_tick();
        if (now_ + cfg_.flow.rate_interval <= end) {
          push_event(now_ + cfg_.flow.rate_interval, EventKind::kRateTick, 0, 0);
        }
        break;
    }
    if (exchange_mode_ && exchange_completion_ >= 0) return true;
    if (wall_limit > 0.0 && ++since_check >= kWallCheckInterval) {
      since_check = 0;
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - wall_start;
      if (elapsed.count() > wall_limit) {
        timed_out_ = true;
        return false;
      }
    }
  }
  return true;
}

void FlowSim::final_accrual(TimePs at) {
  now_ = at;
  for (int f = 0; f < table_.capacity(); ++f) {
    if (table_.in_use[static_cast<std::size_t>(f)]) accrue(f);
  }
}

OpenLoopResult FlowSim::run_open_loop(const TrafficPattern& pattern, double load,
                                      TimePs duration, TimePs warmup) {
  D2NET_REQUIRE(routing_ != nullptr, "set_routing() before running");
  D2NET_REQUIRE(load > 0.0 && load <= 1.0, "offered load must be in (0, 1]");
  D2NET_REQUIRE(duration > warmup && warmup >= 0, "need warmup < duration");
  reset();
  pattern_ = &pattern;
  load_ = load;
  gen_end_ = duration;
  window_start_ = warmup;
  window_end_ = duration;

  // Stagger first arrivals uniformly over one mean inter-arrival, from each
  // node's private stream (mirrors the packet engine's generation stagger).
  const double mean = static_cast<double>(cfg_.flow.flow_bytes) *
                      static_cast<double>(cfg_.ps_per_byte) / load;
  for (int node = 0; node < topo_.num_nodes(); ++node) {
    push_event(static_cast<TimePs>(node_rng_[static_cast<std::size_t>(node)].uniform() * mean),
               EventKind::kArrival, node, 0);
  }
  if (cfg_.flow.rate_interval > 0) {
    push_event(cfg_.flow.rate_interval, EventKind::kRateTick, 0, 0);
  }
  const bool finished = run_until(duration);
  if (finished) final_accrual(duration);

  OpenLoopResult res;
  res.offered_load = load;
  res.timed_out = timed_out_;
  const double window_ps = static_cast<double>(window_end_ - window_start_);
  const double capacity_bytes =
      window_ps / static_cast<double>(cfg_.ps_per_byte) * topo_.num_nodes();
  res.accepted_throughput = delivered_window_bytes_ / capacity_bytes;
  res.avg_latency_ns = latency_ns_.mean();
  res.p50_latency_ns = latency_ns_.percentile(50);
  res.p99_latency_ns = latency_ns_.percentile(99);
  res.packets_measured = latency_ns_.count();
  res.packets_injected = flows_started_;
  res.events_processed = events_processed_;
  res.event_digest = cfg_.collect_event_digest ? event_digest_ : 0;
  res.avg_hops = flows_started_ > 0
                     ? static_cast<double>(hop_sum_) / static_cast<double>(flows_started_)
                     : 0.0;
  res.fraction_minimal =
      flows_started_ > 0
          ? static_cast<double>(minimal_flows_) / static_cast<double>(flows_started_)
          : 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : ejected_per_node_) {
    sum += x;
    sum_sq += x * x;
  }
  res.jain_fairness =
      sum_sq > 0.0 ? sum * sum / (static_cast<double>(ejected_per_node_.size()) * sum_sq) : 0.0;
  res.phases.injected_warmup = injected_warmup_;
  res.phases.injected_measured = injected_measured_;
  res.phases.delivered_warmup = delivered_warmup_;
  res.phases.delivered_measured = delivered_measured_;
  res.phases.delivered_carryover = delivered_carryover_;
  res.phases.in_flight_at_end = table_.active;
  return res;
}

ExchangeResult FlowSim::run_exchange(const ExchangePlan& plan, TimePs time_limit) {
  D2NET_REQUIRE(routing_ != nullptr, "set_routing() before running");
  D2NET_REQUIRE(static_cast<int>(plan.per_node.size()) == topo_.num_nodes(),
                "plan arity must match node count");
  const std::int64_t total_bytes = plan_total_bytes(plan);
  D2NET_REQUIRE(total_bytes > 0, "empty exchange plan");
  reset();
  exchange_mode_ = true;
  plan_ = &plan;
  window_start_ = 0;
  window_end_ = time_limit;
  gen_end_ = 0;

  // Open the initial flows with rate 0 (defer_rates_), then assign all
  // starting rates in one global waterfill — cheaper than a per-flow
  // recompute and identical to it at the fixed point.
  defer_rates_ = true;
  for (int node = 0; node < topo_.num_nodes(); ++node) {
    const auto& msgs = plan.per_node[static_cast<std::size_t>(node)];
    exchange_msgs_total_ += static_cast<std::int64_t>(msgs.size());
    if (msgs.empty()) continue;
    const int open = plan.order == MessageOrder::kSequential ? 1 : static_cast<int>(msgs.size());
    for (int i = 0; i < open; ++i) {
      const ExchangeMessage& m = msgs[static_cast<std::size_t>(i)];
      start_flow(node, m.dst_node, static_cast<double>(m.bytes));
      ++exchange_msgs_open_;
    }
    cursor_of_node_[static_cast<std::size_t>(node)] = open;
  }
  defer_rates_ = false;
  waterfill_all(table_, scratch_, *this);
  if (cfg_.flow.rate_interval > 0) {
    push_event(cfg_.flow.rate_interval, EventKind::kRateTick, 0, 0);
  }

  const bool finished = run_until(time_limit);
  if (finished && exchange_completion_ < 0) {
    final_accrual(time_limit);
  } else if (!finished) {
    final_accrual(now_);
  }

  ExchangeResult res;
  res.total_bytes = total_bytes;
  res.timed_out = timed_out_;
  res.delivered_bytes =
      std::min(res.total_bytes, static_cast<std::int64_t>(delivered_total_bytes_ + 0.5));
  res.completed = exchange_completion_ >= 0;
  if (res.completed) {
    res.delivered_bytes = res.total_bytes;
    res.completion_us = to_us(exchange_completion_);
    const double per_node_bytes =
        static_cast<double>(res.total_bytes) / std::max(1, plan_active_nodes(plan));
    const double line_bytes =
        static_cast<double>(exchange_completion_) / static_cast<double>(cfg_.ps_per_byte);
    res.effective_throughput = per_node_bytes / line_bytes;
  }
  res.avg_latency_ns = latency_ns_.mean();
  res.event_digest = cfg_.collect_event_digest ? event_digest_ : 0;
  return res;
}

ExchangeResult FlowSim::run_fluid_all_to_all(const MinimalTable& table,
                                             std::int64_t bytes_per_pair) const {
  D2NET_REQUIRE(bytes_per_pair > 0, "bytes_per_pair must be > 0");
  D2NET_REQUIRE(table.num_routers() == topo_.num_routers(),
                "minimal table does not match the topology");
  D2NET_REQUIRE(table.diameter() <= 2,
                "the fluid all-to-all model covers diameter-2 topologies only");
  const int R = topo_.num_routers();
  const double B = static_cast<double>(bytes_per_pair);
  std::vector<double> rho(static_cast<std::size_t>(graph_.num_network_links()), 0.0);
  for (int a = 0; a < R; ++a) {
    const double pa = topo_.endpoints_of(a);
    if (pa <= 0) continue;
    for (int b = 0; b < R; ++b) {
      if (b == a) continue;
      const double pb = topo_.endpoints_of(b);
      if (pb <= 0) continue;
      const double traffic = pa * pb * B;
      if (table.distance(a, b) == 1) {
        rho[static_cast<std::size_t>(graph_.link_between(a, b))] += traffic;
      } else {
        const auto nh = table.next_hops(a, b);
        const double w = traffic / static_cast<double>(nh.size());
        for (int m : nh) {
          rho[static_cast<std::size_t>(graph_.link_between(a, m))] += w;
          rho[static_cast<std::size_t>(graph_.link_between(m, b))] += w;
        }
      }
    }
  }
  const int N = topo_.num_nodes();
  // Injection and ejection links carry (N-1) x B each under all-to-all.
  double max_rho = static_cast<double>(N - 1) * B;
  for (double r : rho) max_rho = std::max(max_rho, r);
  const double completion_ps = max_rho * static_cast<double>(cfg_.ps_per_byte);

  ExchangeResult res;
  res.completed = true;
  res.completion_us = completion_ps / 1e6;
  res.total_bytes = static_cast<std::int64_t>(N) * (N - 1) * bytes_per_pair;
  res.delivered_bytes = res.total_bytes;
  const double per_node_bytes = static_cast<double>(N - 1) * B;
  res.effective_throughput =
      per_node_bytes / (completion_ps / static_cast<double>(cfg_.ps_per_byte));
  return res;
}

std::int64_t FlowSim::output_queue_bytes(int router, int next_hop) const {
  return static_cast<std::int64_t>(
             table_.link_nflows[static_cast<std::size_t>(graph_.link_between(router, next_hop))]) *
         cfg_.packet_bytes;
}

std::int64_t FlowSim::output_queue_capacity() const { return cfg_.buffer_bytes_per_port; }

}  // namespace d2net::flowsim
