#include "flowsim/waterfill.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace d2net::flowsim {

void FlowTable::reset(int links) {
  num_links = links;
  active = 0;
  rate.clear();
  remaining.clear();
  nlinks.clear();
  in_use.clear();
  slot_link.clear();
  slot_next.clear();
  slot_prev.clear();
  link_head.assign(static_cast<std::size_t>(links), -1);
  link_nflows.assign(static_cast<std::size_t>(links), 0);
  free_list.clear();
}

int FlowTable::create(const std::int32_t* links, int n, double bytes) {
  D2NET_HOT_ASSERT(n >= 1 && n <= kMaxLinksPerFlow, "flow link count out of range");
  int f;
  if (!free_list.empty()) {
    f = free_list.back();
    free_list.pop_back();
  } else {
    f = static_cast<int>(rate.size());
    rate.push_back(0.0);
    remaining.push_back(0.0);
    nlinks.push_back(0);
    in_use.push_back(0);
    slot_link.resize(slot_link.size() + kMaxLinksPerFlow, -1);
    slot_next.resize(slot_next.size() + kMaxLinksPerFlow, -1);
    slot_prev.resize(slot_prev.size() + kMaxLinksPerFlow, -1);
  }
  rate[static_cast<std::size_t>(f)] = 0.0;
  remaining[static_cast<std::size_t>(f)] = bytes;
  nlinks[static_cast<std::size_t>(f)] = static_cast<std::int16_t>(n);
  in_use[static_cast<std::size_t>(f)] = 1;
  ++active;
  const int base = f * kMaxLinksPerFlow;
  for (int i = 0; i < n; ++i) {
    const std::int32_t l = links[i];
    const int s = base + i;
    slot_link[static_cast<std::size_t>(s)] = l;
    slot_prev[static_cast<std::size_t>(s)] = -1;
    const std::int32_t head = link_head[static_cast<std::size_t>(l)];
    slot_next[static_cast<std::size_t>(s)] = head;
    if (head >= 0) slot_prev[static_cast<std::size_t>(head)] = s;
    link_head[static_cast<std::size_t>(l)] = s;
    ++link_nflows[static_cast<std::size_t>(l)];
  }
  return f;
}

void FlowTable::destroy(int flow) {
  D2NET_HOT_ASSERT(in_use[static_cast<std::size_t>(flow)], "destroying a dead flow");
  const int base = flow * kMaxLinksPerFlow;
  for (int i = 0; i < nlinks[static_cast<std::size_t>(flow)]; ++i) {
    const int s = base + i;
    const std::int32_t l = slot_link[static_cast<std::size_t>(s)];
    const std::int32_t prev = slot_prev[static_cast<std::size_t>(s)];
    const std::int32_t next = slot_next[static_cast<std::size_t>(s)];
    if (prev >= 0) {
      slot_next[static_cast<std::size_t>(prev)] = next;
    } else {
      link_head[static_cast<std::size_t>(l)] = next;
    }
    if (next >= 0) slot_prev[static_cast<std::size_t>(next)] = prev;
    --link_nflows[static_cast<std::size_t>(l)];
  }
  in_use[static_cast<std::size_t>(flow)] = 0;
  nlinks[static_cast<std::size_t>(flow)] = 0;
  rate[static_cast<std::size_t>(flow)] = 0.0;
  free_list.push_back(flow);
  --active;
}

void WaterfillScratch::ensure(int num_links, int flow_capacity) {
  if (static_cast<int>(link_mark.size()) < num_links) {
    link_mark.resize(static_cast<std::size_t>(num_links), 0);
    rem_cap.resize(static_cast<std::size_t>(num_links), 0.0);
    unfrozen.resize(static_cast<std::size_t>(num_links), 0);
  }
  if (static_cast<int>(flow_mark.size()) < flow_capacity) {
    flow_mark.resize(static_cast<std::size_t>(flow_capacity), 0);
    flow_frozen.resize(static_cast<std::size_t>(flow_capacity), 0);
  }
  if (epoch == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(link_mark.begin(), link_mark.end(), 0);
    std::fill(flow_mark.begin(), flow_mark.end(), 0);
    std::fill(flow_frozen.begin(), flow_frozen.end(), 0);
    epoch = 0;
  }
}

namespace {
// Min-heap on (fill ratio, link id): the pair's lexicographic order makes
// the link id a deterministic tie-break.
struct HeapCmp {
  bool operator()(const std::pair<double, std::int32_t>& a,
                  const std::pair<double, std::int32_t>& b) const {
    return a > b;
  }
};
}  // namespace

void waterfill_from(FlowTable& t, const std::int32_t* seeds, int nseeds,
                    WaterfillScratch& ws, RateChangeSink& sink) {
  ws.ensure(t.num_links, t.capacity());
  const std::uint32_t epoch = ++ws.epoch;
  ws.links.clear();
  ws.flows.clear();
  ws.heap.clear();

  // Collect the component(s): alternate link -> member flows -> their links.
  // Only links that currently carry flows join (an empty seed contributes
  // nothing); every link of a marked flow carries at least that flow.
  for (int i = 0; i < nseeds; ++i) {
    const std::int32_t l = seeds[i];
    if (ws.link_mark[static_cast<std::size_t>(l)] == epoch) continue;
    ws.link_mark[static_cast<std::size_t>(l)] = epoch;
    if (t.link_nflows[static_cast<std::size_t>(l)] > 0) ws.links.push_back(l);
  }
  for (std::size_t qi = 0; qi < ws.links.size(); ++qi) {
    const std::int32_t l = ws.links[qi];
    for (std::int32_t s = t.link_head[static_cast<std::size_t>(l)]; s >= 0;
         s = t.slot_next[static_cast<std::size_t>(s)]) {
      const int f = s / kMaxLinksPerFlow;
      if (ws.flow_mark[static_cast<std::size_t>(f)] == epoch) continue;
      ws.flow_mark[static_cast<std::size_t>(f)] = epoch;
      ws.flows.push_back(f);
      const int base = f * kMaxLinksPerFlow;
      for (int j = 0; j < t.nlinks[static_cast<std::size_t>(f)]; ++j) {
        const std::int32_t m = t.slot_link[static_cast<std::size_t>(base + j)];
        if (ws.link_mark[static_cast<std::size_t>(m)] == epoch) continue;
        ws.link_mark[static_cast<std::size_t>(m)] = epoch;
        ws.links.push_back(m);
      }
    }
  }
  if (ws.flows.empty()) return;

  const HeapCmp cmp;
  for (std::int32_t l : ws.links) {
    ws.rem_cap[static_cast<std::size_t>(l)] = 1.0;
    ws.unfrozen[static_cast<std::size_t>(l)] = t.link_nflows[static_cast<std::size_t>(l)];
    ws.heap.emplace_back(1.0 / t.link_nflows[static_cast<std::size_t>(l)], l);
  }
  std::make_heap(ws.heap.begin(), ws.heap.end(), cmp);

  // Progressive filling: repeatedly freeze the flows of the link with the
  // smallest remaining fair share. Heap entries are lazy — every state
  // update pushes a fresh entry, so a popped entry whose ratio no longer
  // matches the link's current state is a stale duplicate to skip.
  std::size_t unfrozen_flows = ws.flows.size();
  while (unfrozen_flows > 0) {
    D2NET_ASSERT(!ws.heap.empty(), "waterfill heap drained with unfrozen flows");
    std::pop_heap(ws.heap.begin(), ws.heap.end(), cmp);
    const double ratio = ws.heap.back().first;
    const std::int32_t l = ws.heap.back().second;
    ws.heap.pop_back();
    if (ws.unfrozen[static_cast<std::size_t>(l)] <= 0) continue;
    const double cur = std::max(ws.rem_cap[static_cast<std::size_t>(l)], 0.0) /
                       ws.unfrozen[static_cast<std::size_t>(l)];
    if (cur != ratio) continue;

    const double fair = cur;
    for (std::int32_t s = t.link_head[static_cast<std::size_t>(l)]; s >= 0;
         s = t.slot_next[static_cast<std::size_t>(s)]) {
      const int f = s / kMaxLinksPerFlow;
      if (ws.flow_frozen[static_cast<std::size_t>(f)] == epoch) continue;
      ws.flow_frozen[static_cast<std::size_t>(f)] = epoch;
      --unfrozen_flows;
      // The sink accrues at the old rate and writes the new one back; it
      // must not create or destroy flows mid-pass.
      if (t.rate[static_cast<std::size_t>(f)] != fair) sink.on_rate_change(f, fair);
      const int base = f * kMaxLinksPerFlow;
      for (int j = 0; j < t.nlinks[static_cast<std::size_t>(f)]; ++j) {
        const std::int32_t m = t.slot_link[static_cast<std::size_t>(base + j)];
        ws.rem_cap[static_cast<std::size_t>(m)] -= fair;
        if (--ws.unfrozen[static_cast<std::size_t>(m)] > 0) {
          ws.heap.emplace_back(std::max(ws.rem_cap[static_cast<std::size_t>(m)], 0.0) /
                                   ws.unfrozen[static_cast<std::size_t>(m)],
                               m);
          std::push_heap(ws.heap.begin(), ws.heap.end(), cmp);
        }
      }
    }
  }
}

void waterfill_all(FlowTable& t, WaterfillScratch& ws, RateChangeSink& sink) {
  std::vector<std::int32_t> seeds;
  seeds.reserve(static_cast<std::size_t>(t.num_links));
  for (int l = 0; l < t.num_links; ++l) {
    if (t.link_nflows[static_cast<std::size_t>(l)] > 0) seeds.push_back(l);
  }
  waterfill_from(t, seeds.data(), static_cast<int>(seeds.size()), ws, sink);
}

}  // namespace d2net::flowsim
