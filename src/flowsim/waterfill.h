// Max-min-fair rate assignment by progressive water-filling.
//
// FlowTable is the engine's flow/link incidence structure: a fixed-stride
// slab of link slots per flow (flow -> links) threaded through intrusive
// doubly-linked membership lists (link -> flows). Every operation the hot
// path needs — create, destroy, iterate a link's flows — is O(1) or O(flow
// links), with no per-event allocation after warm-up.
//
// waterfill_from() recomputes exact max-min rates for the connected
// component(s) of the flow-link sharing graph reachable from a set of seed
// links. Components are independent under max-min fairness (no flow or
// capacity is shared across them), so a component-local recompute after a
// flow arrival or departure reproduces the global fixed point while
// touching only the affected flows — the incremental path the engine runs
// after every event in exact mode and per dirty component in batched mode
// (see docs/flow_engine.md).
//
// Determinism: the bottleneck selection heap orders by (fill ratio, link
// id) with exact double comparison, and membership lists are walked in
// their deterministic insertion order, so recomputing the same component
// always freezes flows in the same order and reproduces bit-identical
// rates.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "flowsim/flow_graph.h"

namespace d2net::flowsim {

/// Flow/link incidence plus per-flow rate and remaining-byte state. All
/// members are engine-internal; FlowSim and the waterfill functions are the
/// only clients.
struct FlowTable {
  int num_links = 0;
  int active = 0;

  // Per flow id.
  std::vector<double> rate;       ///< current max-min rate (1.0 = line rate)
  std::vector<double> remaining;  ///< bytes left to deliver
  std::vector<std::int16_t> nlinks;
  std::vector<std::uint8_t> in_use;

  // Per flow-link slot (flow * kMaxLinksPerFlow + i, i < nlinks[flow]).
  std::vector<std::int32_t> slot_link;
  std::vector<std::int32_t> slot_next;  ///< next slot on the link's list, -1 = end
  std::vector<std::int32_t> slot_prev;  ///< previous slot, -1 = list head

  // Per link id.
  std::vector<std::int32_t> link_head;    ///< first member slot, -1 = empty
  std::vector<std::int32_t> link_nflows;  ///< flows currently crossing the link

  std::vector<std::int32_t> free_list;

  /// Clears all flows and sizes the per-link arrays.
  void reset(int links);

  /// Registers a flow over `n` distinct links with `bytes` to deliver and
  /// rate 0; returns its id (slab slots are recycled via the free list).
  int create(const std::int32_t* links, int n, double bytes);

  /// Unlinks the flow from all membership lists and recycles its id.
  void destroy(int flow);

  /// Flow id upper bound (for sizing parallel per-flow arrays).
  int capacity() const { return static_cast<int>(rate.size()); }
};

/// Receives every rate change a waterfill pass decides. The sink is called
/// with the *new* rate while FlowTable still holds the old one, and is
/// responsible for writing the new rate back (after accruing delivered
/// bytes at the old rate — see FlowSim::on_rate_change). Flows whose
/// recomputed rate is bit-identical to the current one are not reported.
class RateChangeSink {
 public:
  virtual ~RateChangeSink() = default;
  virtual void on_rate_change(int flow, double new_rate) = 0;
};

/// Epoch-stamped scratch reused across waterfill passes; never shrinks.
struct WaterfillScratch {
  std::vector<std::uint32_t> link_mark;
  std::vector<std::uint32_t> flow_mark;    ///< component membership
  std::vector<std::uint32_t> flow_frozen;  ///< frozen during the current pass
  std::uint32_t epoch = 0;
  std::vector<double> rem_cap;
  std::vector<std::int32_t> unfrozen;
  std::vector<std::int32_t> links;  ///< collected component links
  std::vector<std::int32_t> flows;  ///< collected component flows
  std::vector<std::pair<double, std::int32_t>> heap;

  void ensure(int num_links, int flow_capacity);
};

/// Exact progressive water-filling over the component(s) reachable from
/// `seeds` (deduplicated internally; links without flows are fine). Every
/// rate change is reported through `sink`.
void waterfill_from(FlowTable& table, const std::int32_t* seeds, int nseeds,
                    WaterfillScratch& ws, RateChangeSink& sink);

/// Full recompute over every active flow (seed = all non-empty links).
void waterfill_all(FlowTable& table, WaterfillScratch& ws, RateChangeSink& sink);

}  // namespace d2net::flowsim
