// Directed-link index over a Topology for the flow-level engine.
//
// The flow engine models every directed resource a flow can saturate as one
// capacity-1.0 "link" (1.0 = line rate): each router-to-router channel in
// each direction, plus one injection link per node (NIC -> router) and one
// ejection link per node (router -> NIC). Injection/ejection links are what
// make per-node offered load self-limiting — without them a single node
// could source unbounded throughput across disjoint paths.
//
// Link ids are dense and stable: network links first (router-major, port
// order), then the N injection links, then the N ejection links, so every
// per-link engine array is a flat vector indexed by link id.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/route.h"
#include "topology/topology.h"

namespace d2net::flowsim {

/// Most directed links one flow can occupy: every hop of a maximal Route
/// plus its injection and ejection links. This fixed stride sizes the
/// per-flow link slabs (see waterfill.h).
inline constexpr int kMaxLinksPerFlow = Route::kMaxHops + 2;

class FlowGraph {
 public:
  explicit FlowGraph(const Topology& topo);

  int num_links() const { return total_links_; }
  int num_network_links() const { return net_links_; }
  int num_nodes() const { return num_nodes_; }

  /// Directed network link router -> neighbor; the routers must be adjacent.
  int link_between(int router, int neighbor) const;

  int injection_link(int node) const { return net_links_ + node; }
  int ejection_link(int node) const { return net_links_ + num_nodes_ + node; }

  /// Expands a route into the directed link ids the flow occupies:
  /// injection link, one link per hop, ejection link. `out` must hold
  /// kMaxLinksPerFlow entries; returns the count written. A degenerate
  /// route that crosses the same directed link twice (possible only for
  /// Valiant detours on tiny synthetic graphs) contributes it once.
  int links_of_route(int src_node, int dst_node, const Route& route, std::int32_t* out) const;

 private:
  int net_links_ = 0;
  int num_nodes_ = 0;
  int total_links_ = 0;
  /// First network link id of each router (prefix sum of degrees).
  std::vector<std::int32_t> router_base_;
  /// Per-router (neighbor, port) pairs sorted by neighbor, for binary-search
  /// resolution of a route hop to a link id; sliced by pon_base_.
  std::vector<std::pair<std::int32_t, std::int32_t>> port_of_neighbor_;
  std::vector<std::int32_t> pon_base_;
};

}  // namespace d2net::flowsim
