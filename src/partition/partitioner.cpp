#include "partition/partitioner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numeric>
#include <queue>

#include "common/error.h"
#include "common/rng.h"

namespace d2net {

std::int64_t CsrGraph::total_vertex_weight() const {
  return std::accumulate(vwgt.begin(), vwgt.end(), std::int64_t{0});
}

bool CsrGraph::is_symmetric() const {
  if (static_cast<int>(xadj.size()) != num_vertices + 1) return false;
  std::map<std::pair<int, int>, std::int64_t> w;
  for (int u = 0; u < num_vertices; ++u) {
    for (int e = xadj[u]; e < xadj[u + 1]; ++e) {
      const int v = adjncy[e];
      if (v < 0 || v >= num_vertices || v == u) return false;
      w[{u, v}] += adjwgt[e];
    }
  }
  for (const auto& [key, weight] : w) {
    auto it = w.find({key.second, key.first});
    if (it == w.end() || it->second != weight) return false;
  }
  return true;
}

CsrGraph make_csr(int num_vertices, const std::vector<std::array<int, 3>>& edges,
                  std::vector<int> vertex_weights) {
  D2NET_REQUIRE(static_cast<int>(vertex_weights.size()) == num_vertices,
                "vertex weight arity mismatch");
  // Merge parallel edges.
  std::map<std::pair<int, int>, std::int64_t> merged;
  for (const auto& [u, v, w] : edges) {
    D2NET_REQUIRE(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices && u != v,
                  "bad edge");
    merged[{std::min(u, v), std::max(u, v)}] += w;
  }
  CsrGraph g;
  g.num_vertices = num_vertices;
  g.vwgt = std::move(vertex_weights);
  std::vector<int> deg(num_vertices, 0);
  for (const auto& [key, w] : merged) {
    (void)w;
    ++deg[key.first];
    ++deg[key.second];
  }
  g.xadj.assign(num_vertices + 1, 0);
  for (int v = 0; v < num_vertices; ++v) g.xadj[v + 1] = g.xadj[v] + deg[v];
  g.adjncy.resize(g.xadj.back());
  g.adjwgt.resize(g.xadj.back());
  std::vector<int> fill(g.xadj.begin(), g.xadj.end() - 1);
  for (const auto& [key, w] : merged) {
    const auto [u, v] = key;
    g.adjncy[fill[u]] = v;
    g.adjwgt[fill[u]++] = static_cast<int>(w);
    g.adjncy[fill[v]] = u;
    g.adjwgt[fill[v]++] = static_cast<int>(w);
  }
  return g;
}

std::int64_t cut_weight(const CsrGraph& graph, const std::vector<std::uint8_t>& side) {
  std::int64_t cut = 0;
  for (int u = 0; u < graph.num_vertices; ++u) {
    for (int e = graph.xadj[u]; e < graph.xadj[u + 1]; ++e) {
      const int v = graph.adjncy[e];
      if (u < v && side[u] != side[v]) cut += graph.adjwgt[e];
    }
  }
  return cut;
}

namespace {

struct Coarsening {
  CsrGraph graph;
  std::vector<int> fine_to_coarse;
};

/// Heavy-edge matching contraction.
Coarsening coarsen(const CsrGraph& g, Rng& rng) {
  std::vector<int> order(g.num_vertices);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<int> match(g.num_vertices, -1);
  for (int u : order) {
    if (match[u] >= 0) continue;
    int best = -1;
    int best_w = -1;
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (match[v] < 0 && v != u && g.adjwgt[e] > best_w) {
        best_w = g.adjwgt[e];
        best = v;
      }
    }
    if (best >= 0) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;
    }
  }
  Coarsening out;
  out.fine_to_coarse.assign(g.num_vertices, -1);
  int next = 0;
  for (int u = 0; u < g.num_vertices; ++u) {
    if (out.fine_to_coarse[u] >= 0) continue;
    out.fine_to_coarse[u] = next;
    if (match[u] != u) out.fine_to_coarse[match[u]] = next;
    ++next;
  }
  std::vector<int> vwgt(next, 0);
  for (int u = 0; u < g.num_vertices; ++u) vwgt[out.fine_to_coarse[u]] += g.vwgt[u];
  std::vector<std::array<int, 3>> edges;
  edges.reserve(g.adjncy.size() / 2);
  for (int u = 0; u < g.num_vertices; ++u) {
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (u >= v) continue;
      const int cu = out.fine_to_coarse[u];
      const int cv = out.fine_to_coarse[v];
      if (cu != cv) edges.push_back({cu, cv, g.adjwgt[e]});
    }
  }
  out.graph = make_csr(next, edges, std::move(vwgt));
  return out;
}

/// Greedy BFS region growing from a random seed until side 0 reaches the
/// requested target weight.
std::vector<std::uint8_t> grow_initial(const CsrGraph& g, Rng& rng, std::int64_t target0) {
  std::vector<std::uint8_t> side(g.num_vertices, 1);
  std::vector<bool> visited(g.num_vertices, false);
  std::int64_t w0 = 0;
  std::queue<int> q;
  const int seed = static_cast<int>(rng.next_below(g.num_vertices));
  q.push(seed);
  visited[seed] = true;
  while (w0 < target0) {
    int u;
    if (q.empty()) {
      // Disconnected remainder: restart from any unvisited vertex.
      u = -1;
      for (int v = 0; v < g.num_vertices; ++v) {
        if (!visited[v]) {
          u = v;
          visited[v] = true;
          break;
        }
      }
      if (u < 0) break;
    } else {
      u = q.front();
      q.pop();
    }
    side[u] = 0;
    w0 += g.vwgt[u];
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (!visited[v]) {
        visited[v] = true;
        q.push(v);
      }
    }
  }
  return side;
}

/// One Fiduccia–Mattheyses pass with rollback to the best prefix.
/// Imbalance is measured as 2|w0 - target0| (for target0 = total/2 this is
/// the classic |w0 - w1|). Returns the cut improvement (>= 0).
std::int64_t fm_pass(const CsrGraph& g, std::vector<std::uint8_t>& side,
                     std::int64_t max_imbalance_weight, std::int64_t target0) {
  const int n = g.num_vertices;
  std::vector<std::int64_t> gain(n, 0);
  std::int64_t weight[2] = {0, 0};
  for (int u = 0; u < n; ++u) {
    weight[side[u]] += g.vwgt[u];
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      gain[u] += side[g.adjncy[e]] != side[u] ? g.adjwgt[e] : -g.adjwgt[e];
    }
  }
  const auto measure = [target0](std::int64_t w0) { return 2 * std::abs(w0 - target0); };
  // Exploration slack: FM must be able to leave a perfectly balanced state,
  // so intermediate states may be imbalanced by up to two of the heaviest
  // vertices; only prefixes within the *requested* tolerance (or at least
  // as balanced as the starting state) are accepted.
  std::int64_t max_vwgt = 1;
  for (int u = 0; u < n; ++u) max_vwgt = std::max<std::int64_t>(max_vwgt, g.vwgt[u]);
  const std::int64_t explore_slack = std::max(max_imbalance_weight, 2 * max_vwgt);
  const std::int64_t start_diff = measure(weight[0]);
  const std::int64_t accept_diff = std::max(max_imbalance_weight, start_diff);

  // Lazy max-heap of (gain, vertex); entries are validated on pop.
  using Entry = std::pair<std::int64_t, int>;
  std::priority_queue<Entry> heap;
  for (int u = 0; u < n; ++u) heap.push({gain[u], u});
  std::vector<bool> moved(n, false);

  std::vector<int> sequence;
  sequence.reserve(n);
  std::int64_t cum = 0;
  std::int64_t best_cum = 0;
  std::int64_t best_diff = start_diff;
  int best_len = 0;

  while (!heap.empty()) {
    auto [gv, u] = heap.top();
    heap.pop();
    if (moved[u] || gv != gain[u]) continue;  // stale entry
    // Balance feasibility: moving u from s to 1-s.
    const int s = side[u];
    const std::int64_t new_w0 = s == 0 ? weight[0] - g.vwgt[u] : weight[0] + g.vwgt[u];
    const std::int64_t new_diff = measure(new_w0);
    const std::int64_t old_diff = measure(weight[0]);
    if (new_diff > explore_slack && new_diff >= old_diff) continue;

    moved[u] = true;
    side[u] = static_cast<std::uint8_t>(1 - s);
    weight[s] -= g.vwgt[u];
    weight[1 - s] += g.vwgt[u];
    cum += gv;
    sequence.push_back(u);
    // Accept the prefix if it improves the cut, or matches the cut with a
    // better balance — and does not worsen the balance we started from.
    if (new_diff <= accept_diff &&
        (cum > best_cum || (cum == best_cum && new_diff < best_diff))) {
      best_cum = cum;
      best_diff = new_diff;
      best_len = static_cast<int>(sequence.size());
    }
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (moved[v]) continue;
      // u changed sides: edge contribution to v's gain flips by 2w.
      gain[v] += side[v] != side[u] ? 2 * g.adjwgt[e] : -2 * g.adjwgt[e];
      heap.push({gain[v], v});
    }
  }
  // Roll back past the best prefix.
  for (int i = static_cast<int>(sequence.size()) - 1; i >= best_len; --i) {
    side[sequence[i]] = static_cast<std::uint8_t>(1 - side[sequence[i]]);
  }
  return best_cum;
}

BisectionResult finalize_result(const CsrGraph& g, std::vector<std::uint8_t> side) {
  BisectionResult r;
  r.cut_weight = cut_weight(g, side);
  for (int u = 0; u < g.num_vertices; ++u) r.weight[side[u]] += g.vwgt[u];
  r.side = std::move(side);
  return r;
}

std::vector<std::uint8_t> bisect_recursive(const CsrGraph& g, const BisectionOptions& opts,
                                           Rng& rng, int depth) {
  const std::int64_t total = g.total_vertex_weight();
  const auto max_imb =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(opts.max_imbalance * total));
  const auto target0 =
      static_cast<std::int64_t>(std::llround(opts.target_fraction * static_cast<double>(total)));

  std::vector<std::uint8_t> side;
  if (g.num_vertices <= opts.coarsen_to || depth > 64) {
    std::int64_t best_cut = -1;
    for (int t = 0; t < opts.initial_tries; ++t) {
      std::vector<std::uint8_t> cand = grow_initial(g, rng, target0);
      for (int pass = 0; pass < opts.refine_passes; ++pass) {
        if (fm_pass(g, cand, max_imb, target0) == 0) break;
      }
      const std::int64_t c = cut_weight(g, cand);
      if (best_cut < 0 || c < best_cut) {
        best_cut = c;
        side = std::move(cand);
      }
    }
    return side;
  }

  Coarsening c = coarsen(g, rng);
  if (c.graph.num_vertices >= g.num_vertices) {
    // Matching failed to shrink the graph (e.g. star graphs) — fall back to
    // direct initial partitioning.
    BisectionOptions direct = opts;
    direct.coarsen_to = g.num_vertices;
    return bisect_recursive(g, direct, rng, depth + 1);
  }
  // Total vertex weight is preserved by contraction, so target0 transfers
  // unchanged to every level.
  const std::vector<std::uint8_t> coarse_side = bisect_recursive(c.graph, opts, rng, depth + 1);
  side.resize(g.num_vertices);
  for (int u = 0; u < g.num_vertices; ++u) side[u] = coarse_side[c.fine_to_coarse[u]];
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    if (fm_pass(g, side, max_imb, target0) == 0) break;
  }
  return side;
}

}  // namespace

BisectionResult bisect(const CsrGraph& graph, const BisectionOptions& options) {
  D2NET_REQUIRE(graph.num_vertices > 1, "bisection needs at least two vertices");
  D2NET_REQUIRE(options.target_fraction > 0.0 && options.target_fraction < 1.0,
                "target_fraction must be in (0, 1)");
  Rng rng(options.seed);
  std::vector<std::uint8_t> side = bisect_recursive(graph, options, rng, 0);
  return finalize_result(graph, std::move(side));
}

namespace {

/// Extracts the side-s induced subgraph (cut edges dropped) and records the
/// subgraph-to-parent vertex mapping.
CsrGraph extract_side(const CsrGraph& g, const std::vector<std::uint8_t>& side, int s,
                      std::vector<int>& to_parent) {
  std::vector<int> local(g.num_vertices, -1);
  to_parent.clear();
  for (int u = 0; u < g.num_vertices; ++u) {
    if (side[u] == s) {
      local[u] = static_cast<int>(to_parent.size());
      to_parent.push_back(u);
    }
  }
  std::vector<int> vwgt(to_parent.size());
  for (std::size_t i = 0; i < to_parent.size(); ++i) vwgt[i] = g.vwgt[to_parent[i]];
  std::vector<std::array<int, 3>> edges;
  for (int u = 0; u < g.num_vertices; ++u) {
    if (local[u] < 0) continue;
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (u < v && local[v] >= 0) edges.push_back({local[u], local[v], g.adjwgt[e]});
    }
  }
  return make_csr(static_cast<int>(to_parent.size()), edges, std::move(vwgt));
}

/// Recursive bisection: split k parts as floor(k/2) / ceil(k/2) with a
/// weight-proportional target fraction, so odd k stays balanced.
void kway_recurse(const CsrGraph& g, const std::vector<int>& to_global, int k, int part_base,
                  const BisectionOptions& opts, std::vector<int>& part) {
  if (k <= 1) {
    for (int v = 0; v < g.num_vertices; ++v) part[to_global[v]] = part_base;
    return;
  }
  if (g.num_vertices <= k) {
    // Degenerate: one vertex per part (trailing parts stay empty).
    for (int v = 0; v < g.num_vertices; ++v) part[to_global[v]] = part_base + v;
    return;
  }
  const int k0 = k / 2;
  BisectionOptions level = opts;
  level.target_fraction = static_cast<double>(k0) / static_cast<double>(k);
  const BisectionResult r = bisect(g, level);
  for (int s = 0; s < 2; ++s) {
    std::vector<int> to_parent;
    const CsrGraph sub = extract_side(g, r.side, s, to_parent);
    std::vector<int> sub_to_global(to_parent.size());
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      sub_to_global[i] = to_global[to_parent[i]];
    }
    kway_recurse(sub, sub_to_global, s == 0 ? k0 : k - k0,
                 s == 0 ? part_base : part_base + k0, opts, part);
  }
}

}  // namespace

KwayResult partition_kway(const CsrGraph& graph, int k, const BisectionOptions& options) {
  D2NET_REQUIRE(k >= 1, "partition_kway needs k >= 1");
  D2NET_REQUIRE(graph.num_vertices >= 1, "partition_kway needs a non-empty graph");
  KwayResult r;
  r.part.assign(graph.num_vertices, -1);
  std::vector<int> identity(graph.num_vertices);
  std::iota(identity.begin(), identity.end(), 0);
  kway_recurse(graph, identity, k, 0, options, r.part);
  r.weights.assign(k, 0);
  for (int u = 0; u < graph.num_vertices; ++u) {
    D2NET_REQUIRE(r.part[u] >= 0 && r.part[u] < k, "internal: unassigned vertex");
    r.weights[r.part[u]] += graph.vwgt[u];
  }
  for (int u = 0; u < graph.num_vertices; ++u) {
    for (int e = graph.xadj[u]; e < graph.xadj[u + 1]; ++e) {
      const int v = graph.adjncy[e];
      if (u < v && r.part[u] != r.part[v]) r.cut_weight += graph.adjwgt[e];
    }
  }
  return r;
}

}  // namespace d2net
