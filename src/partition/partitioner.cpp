#include "partition/partitioner.h"

#include <algorithm>
#include <array>
#include <map>
#include <numeric>
#include <queue>

#include "common/error.h"
#include "common/rng.h"

namespace d2net {

std::int64_t CsrGraph::total_vertex_weight() const {
  return std::accumulate(vwgt.begin(), vwgt.end(), std::int64_t{0});
}

bool CsrGraph::is_symmetric() const {
  if (static_cast<int>(xadj.size()) != num_vertices + 1) return false;
  std::map<std::pair<int, int>, std::int64_t> w;
  for (int u = 0; u < num_vertices; ++u) {
    for (int e = xadj[u]; e < xadj[u + 1]; ++e) {
      const int v = adjncy[e];
      if (v < 0 || v >= num_vertices || v == u) return false;
      w[{u, v}] += adjwgt[e];
    }
  }
  for (const auto& [key, weight] : w) {
    auto it = w.find({key.second, key.first});
    if (it == w.end() || it->second != weight) return false;
  }
  return true;
}

CsrGraph make_csr(int num_vertices, const std::vector<std::array<int, 3>>& edges,
                  std::vector<int> vertex_weights) {
  D2NET_REQUIRE(static_cast<int>(vertex_weights.size()) == num_vertices,
                "vertex weight arity mismatch");
  // Merge parallel edges.
  std::map<std::pair<int, int>, std::int64_t> merged;
  for (const auto& [u, v, w] : edges) {
    D2NET_REQUIRE(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices && u != v,
                  "bad edge");
    merged[{std::min(u, v), std::max(u, v)}] += w;
  }
  CsrGraph g;
  g.num_vertices = num_vertices;
  g.vwgt = std::move(vertex_weights);
  std::vector<int> deg(num_vertices, 0);
  for (const auto& [key, w] : merged) {
    (void)w;
    ++deg[key.first];
    ++deg[key.second];
  }
  g.xadj.assign(num_vertices + 1, 0);
  for (int v = 0; v < num_vertices; ++v) g.xadj[v + 1] = g.xadj[v] + deg[v];
  g.adjncy.resize(g.xadj.back());
  g.adjwgt.resize(g.xadj.back());
  std::vector<int> fill(g.xadj.begin(), g.xadj.end() - 1);
  for (const auto& [key, w] : merged) {
    const auto [u, v] = key;
    g.adjncy[fill[u]] = v;
    g.adjwgt[fill[u]++] = static_cast<int>(w);
    g.adjncy[fill[v]] = u;
    g.adjwgt[fill[v]++] = static_cast<int>(w);
  }
  return g;
}

std::int64_t cut_weight(const CsrGraph& graph, const std::vector<std::uint8_t>& side) {
  std::int64_t cut = 0;
  for (int u = 0; u < graph.num_vertices; ++u) {
    for (int e = graph.xadj[u]; e < graph.xadj[u + 1]; ++e) {
      const int v = graph.adjncy[e];
      if (u < v && side[u] != side[v]) cut += graph.adjwgt[e];
    }
  }
  return cut;
}

namespace {

struct Coarsening {
  CsrGraph graph;
  std::vector<int> fine_to_coarse;
};

/// Heavy-edge matching contraction.
Coarsening coarsen(const CsrGraph& g, Rng& rng) {
  std::vector<int> order(g.num_vertices);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<int> match(g.num_vertices, -1);
  for (int u : order) {
    if (match[u] >= 0) continue;
    int best = -1;
    int best_w = -1;
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (match[v] < 0 && v != u && g.adjwgt[e] > best_w) {
        best_w = g.adjwgt[e];
        best = v;
      }
    }
    if (best >= 0) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;
    }
  }
  Coarsening out;
  out.fine_to_coarse.assign(g.num_vertices, -1);
  int next = 0;
  for (int u = 0; u < g.num_vertices; ++u) {
    if (out.fine_to_coarse[u] >= 0) continue;
    out.fine_to_coarse[u] = next;
    if (match[u] != u) out.fine_to_coarse[match[u]] = next;
    ++next;
  }
  std::vector<int> vwgt(next, 0);
  for (int u = 0; u < g.num_vertices; ++u) vwgt[out.fine_to_coarse[u]] += g.vwgt[u];
  std::vector<std::array<int, 3>> edges;
  edges.reserve(g.adjncy.size() / 2);
  for (int u = 0; u < g.num_vertices; ++u) {
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (u >= v) continue;
      const int cu = out.fine_to_coarse[u];
      const int cv = out.fine_to_coarse[v];
      if (cu != cv) edges.push_back({cu, cv, g.adjwgt[e]});
    }
  }
  out.graph = make_csr(next, edges, std::move(vwgt));
  return out;
}

/// Greedy BFS region growing from a random seed.
std::vector<std::uint8_t> grow_initial(const CsrGraph& g, Rng& rng) {
  const std::int64_t total = g.total_vertex_weight();
  std::vector<std::uint8_t> side(g.num_vertices, 1);
  std::vector<bool> visited(g.num_vertices, false);
  std::int64_t w0 = 0;
  std::queue<int> q;
  const int seed = static_cast<int>(rng.next_below(g.num_vertices));
  q.push(seed);
  visited[seed] = true;
  while (w0 * 2 < total) {
    int u;
    if (q.empty()) {
      // Disconnected remainder: restart from any unvisited vertex.
      u = -1;
      for (int v = 0; v < g.num_vertices; ++v) {
        if (!visited[v]) {
          u = v;
          visited[v] = true;
          break;
        }
      }
      if (u < 0) break;
    } else {
      u = q.front();
      q.pop();
    }
    side[u] = 0;
    w0 += g.vwgt[u];
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (!visited[v]) {
        visited[v] = true;
        q.push(v);
      }
    }
  }
  return side;
}

/// One Fiduccia–Mattheyses pass with rollback to the best prefix.
/// Returns the cut improvement (>= 0).
std::int64_t fm_pass(const CsrGraph& g, std::vector<std::uint8_t>& side,
                     std::int64_t max_imbalance_weight) {
  const int n = g.num_vertices;
  std::vector<std::int64_t> gain(n, 0);
  std::int64_t weight[2] = {0, 0};
  for (int u = 0; u < n; ++u) {
    weight[side[u]] += g.vwgt[u];
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      gain[u] += side[g.adjncy[e]] != side[u] ? g.adjwgt[e] : -g.adjwgt[e];
    }
  }
  // Exploration slack: FM must be able to leave a perfectly balanced state,
  // so intermediate states may be imbalanced by up to two of the heaviest
  // vertices; only prefixes within the *requested* tolerance (or at least
  // as balanced as the starting state) are accepted.
  std::int64_t max_vwgt = 1;
  for (int u = 0; u < n; ++u) max_vwgt = std::max<std::int64_t>(max_vwgt, g.vwgt[u]);
  const std::int64_t explore_slack = std::max(max_imbalance_weight, 2 * max_vwgt);
  const std::int64_t start_diff = std::abs(weight[1] - weight[0]);
  const std::int64_t accept_diff = std::max(max_imbalance_weight, start_diff);

  // Lazy max-heap of (gain, vertex); entries are validated on pop.
  using Entry = std::pair<std::int64_t, int>;
  std::priority_queue<Entry> heap;
  for (int u = 0; u < n; ++u) heap.push({gain[u], u});
  std::vector<bool> moved(n, false);

  std::vector<int> sequence;
  sequence.reserve(n);
  std::int64_t cum = 0;
  std::int64_t best_cum = 0;
  std::int64_t best_diff = start_diff;
  int best_len = 0;

  while (!heap.empty()) {
    auto [gv, u] = heap.top();
    heap.pop();
    if (moved[u] || gv != gain[u]) continue;  // stale entry
    // Balance feasibility: moving u from s to 1-s.
    const int s = side[u];
    const std::int64_t new_diff =
        std::abs((weight[1 - s] + g.vwgt[u]) - (weight[s] - g.vwgt[u]));
    const std::int64_t old_diff = std::abs(weight[1] - weight[0]);
    if (new_diff > explore_slack && new_diff >= old_diff) continue;

    moved[u] = true;
    side[u] = static_cast<std::uint8_t>(1 - s);
    weight[s] -= g.vwgt[u];
    weight[1 - s] += g.vwgt[u];
    cum += gv;
    sequence.push_back(u);
    // Accept the prefix if it improves the cut, or matches the cut with a
    // better balance — and does not worsen the balance we started from.
    if (new_diff <= accept_diff &&
        (cum > best_cum || (cum == best_cum && new_diff < best_diff))) {
      best_cum = cum;
      best_diff = new_diff;
      best_len = static_cast<int>(sequence.size());
    }
    for (int e = g.xadj[u]; e < g.xadj[u + 1]; ++e) {
      const int v = g.adjncy[e];
      if (moved[v]) continue;
      // u changed sides: edge contribution to v's gain flips by 2w.
      gain[v] += side[v] != side[u] ? 2 * g.adjwgt[e] : -2 * g.adjwgt[e];
      heap.push({gain[v], v});
    }
  }
  // Roll back past the best prefix.
  for (int i = static_cast<int>(sequence.size()) - 1; i >= best_len; --i) {
    side[sequence[i]] = static_cast<std::uint8_t>(1 - side[sequence[i]]);
  }
  return best_cum;
}

BisectionResult finalize_result(const CsrGraph& g, std::vector<std::uint8_t> side) {
  BisectionResult r;
  r.cut_weight = cut_weight(g, side);
  for (int u = 0; u < g.num_vertices; ++u) r.weight[side[u]] += g.vwgt[u];
  r.side = std::move(side);
  return r;
}

std::vector<std::uint8_t> bisect_recursive(const CsrGraph& g, const BisectionOptions& opts,
                                           Rng& rng, int depth) {
  const std::int64_t total = g.total_vertex_weight();
  const auto max_imb =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(opts.max_imbalance * total));

  std::vector<std::uint8_t> side;
  if (g.num_vertices <= opts.coarsen_to || depth > 64) {
    std::int64_t best_cut = -1;
    for (int t = 0; t < opts.initial_tries; ++t) {
      std::vector<std::uint8_t> cand = grow_initial(g, rng);
      for (int pass = 0; pass < opts.refine_passes; ++pass) {
        if (fm_pass(g, cand, max_imb) == 0) break;
      }
      const std::int64_t c = cut_weight(g, cand);
      if (best_cut < 0 || c < best_cut) {
        best_cut = c;
        side = std::move(cand);
      }
    }
    return side;
  }

  Coarsening c = coarsen(g, rng);
  if (c.graph.num_vertices >= g.num_vertices) {
    // Matching failed to shrink the graph (e.g. star graphs) — fall back to
    // direct initial partitioning.
    BisectionOptions direct = opts;
    direct.coarsen_to = g.num_vertices;
    return bisect_recursive(g, direct, rng, depth + 1);
  }
  const std::vector<std::uint8_t> coarse_side = bisect_recursive(c.graph, opts, rng, depth + 1);
  side.resize(g.num_vertices);
  for (int u = 0; u < g.num_vertices; ++u) side[u] = coarse_side[c.fine_to_coarse[u]];
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    if (fm_pass(g, side, max_imb) == 0) break;
  }
  return side;
}

}  // namespace

BisectionResult bisect(const CsrGraph& graph, const BisectionOptions& options) {
  D2NET_REQUIRE(graph.num_vertices > 1, "bisection needs at least two vertices");
  Rng rng(options.seed);
  std::vector<std::uint8_t> side = bisect_recursive(graph, options, rng, 0);
  return finalize_result(graph, std::move(side));
}

}  // namespace d2net
