// Multilevel graph bisection — the METIS [Karypis & Kumar 1998] substitute
// used to approximate bisection bandwidth (paper Section 2.3.2, Fig. 4).
//
// Pipeline: heavy-edge-matching coarsening until the graph is small, greedy
// BFS region-growing for the initial bisection (best of several seeds),
// then Fiduccia–Mattheyses boundary refinement at every uncoarsening level,
// with a vertex-weight balance constraint.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace d2net {

class Rng;

/// Undirected weighted graph in CSR form.
struct CsrGraph {
  int num_vertices = 0;
  std::vector<int> xadj;     ///< size num_vertices + 1
  std::vector<int> adjncy;   ///< neighbor ids
  std::vector<int> adjwgt;   ///< edge weights, parallel to adjncy
  std::vector<int> vwgt;     ///< vertex weights, size num_vertices

  int degree(int v) const { return xadj[v + 1] - xadj[v]; }
  std::int64_t total_vertex_weight() const;
  /// Validates CSR symmetry and weight consistency (debug helper).
  bool is_symmetric() const;
};

/// Builds a CsrGraph from an edge list (u, v, w); parallel edges are merged
/// by summing weights.
CsrGraph make_csr(int num_vertices, const std::vector<std::array<int, 3>>& edges,
                  std::vector<int> vertex_weights);

struct BisectionResult {
  std::vector<std::uint8_t> side;  ///< 0/1 per vertex
  std::int64_t cut_weight = 0;
  std::int64_t weight[2] = {0, 0};
};

struct BisectionOptions {
  double max_imbalance = 0.02;  ///< allowed |w0 - w1| / total
  int coarsen_to = 64;          ///< stop coarsening below this many vertices
  int initial_tries = 8;        ///< region-growing restarts on coarsest graph
  int refine_passes = 8;        ///< max FM passes per level
  std::uint64_t seed = 1;
};

/// Bisects the graph minimizing edge cut subject to the balance constraint.
BisectionResult bisect(const CsrGraph& graph, const BisectionOptions& options = {});

/// Recomputes the cut of a given assignment (for verification in tests).
std::int64_t cut_weight(const CsrGraph& graph, const std::vector<std::uint8_t>& side);

}  // namespace d2net
