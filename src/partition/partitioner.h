// Multilevel graph bisection — the METIS [Karypis & Kumar 1998] substitute
// used to approximate bisection bandwidth (paper Section 2.3.2, Fig. 4).
//
// Pipeline: heavy-edge-matching coarsening until the graph is small, greedy
// BFS region-growing for the initial bisection (best of several seeds),
// then Fiduccia–Mattheyses boundary refinement at every uncoarsening level,
// with a vertex-weight balance constraint.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace d2net {

class Rng;

/// Undirected weighted graph in CSR form.
struct CsrGraph {
  int num_vertices = 0;
  std::vector<int> xadj;     ///< size num_vertices + 1
  std::vector<int> adjncy;   ///< neighbor ids
  std::vector<int> adjwgt;   ///< edge weights, parallel to adjncy
  std::vector<int> vwgt;     ///< vertex weights, size num_vertices

  int degree(int v) const { return xadj[v + 1] - xadj[v]; }
  std::int64_t total_vertex_weight() const;
  /// Validates CSR symmetry and weight consistency (debug helper).
  bool is_symmetric() const;
};

/// Builds a CsrGraph from an edge list (u, v, w); parallel edges are merged
/// by summing weights.
CsrGraph make_csr(int num_vertices, const std::vector<std::array<int, 3>>& edges,
                  std::vector<int> vertex_weights);

struct BisectionResult {
  std::vector<std::uint8_t> side;  ///< 0/1 per vertex
  std::int64_t cut_weight = 0;
  std::int64_t weight[2] = {0, 0};
};

struct BisectionOptions {
  double max_imbalance = 0.02;  ///< allowed 2|w0 - target0| / total
  int coarsen_to = 64;          ///< stop coarsening below this many vertices
  int initial_tries = 8;        ///< region-growing restarts on coarsest graph
  int refine_passes = 8;        ///< max FM passes per level
  std::uint64_t seed = 1;
  /// Fraction of the total vertex weight assigned to side 0. The default is
  /// a classic balanced bisection; partition_kway uses skewed fractions
  /// (e.g. 2/5) to split an odd part count without cascading imbalance.
  double target_fraction = 0.5;
};

/// Bisects the graph minimizing edge cut subject to the balance constraint.
BisectionResult bisect(const CsrGraph& graph, const BisectionOptions& options = {});

/// Recomputes the cut of a given assignment (for verification in tests).
std::int64_t cut_weight(const CsrGraph& graph, const std::vector<std::uint8_t>& side);

/// K-way partition produced by recursive bisection.
struct KwayResult {
  std::vector<int> part;              ///< part id per vertex, in [0, k)
  std::vector<std::int64_t> weights;  ///< vertex weight per part, size k
  std::int64_t cut_weight = 0;        ///< total weight of inter-part edges
};

/// Partitions the graph into k parts by recursive bisection with
/// weight-proportional target fractions (so k need not be a power of two).
/// Parts may be empty only when k exceeds the vertex count. Deterministic
/// for a fixed (graph, k, options). options.target_fraction is ignored —
/// each bisection level derives its own fraction from the part split.
KwayResult partition_kway(const CsrGraph& graph, int k, const BisectionOptions& options = {});

}  // namespace d2net
