// Approximate bisection bandwidth of a topology (paper Section 2.3.2,
// Fig. 4): partition the routers into two halves with (approximately) equal
// endpoint counts, minimizing cut links; report cut bandwidth per endpoint
// in one half, in units of the link bandwidth b. Full bisection == 1.0 b.
#pragma once

#include <cstdint>

namespace d2net {

class Topology;

struct BisectionBandwidth {
  std::int64_t cut_links = 0;
  std::int64_t nodes_side0 = 0;
  std::int64_t nodes_side1 = 0;
  /// Cut bandwidth normalized per endpoint of the larger half, in units of
  /// the link bandwidth b (the paper's "x b per end-node" metric).
  double per_node = 0.0;
};

/// Runs the multilevel partitioner on the router graph (vertex weight =
/// endpoints attached, edge weight = 1 per link) with several seeds and
/// returns the best (smallest-cut) balanced bisection found.
BisectionBandwidth approximate_bisection_bandwidth(const Topology& topo, int seeds = 6);

}  // namespace d2net
