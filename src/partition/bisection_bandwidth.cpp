#include "partition/bisection_bandwidth.h"

#include <algorithm>
#include <array>
#include <vector>

#include "partition/partitioner.h"
#include "topology/topology.h"

namespace d2net {

BisectionBandwidth approximate_bisection_bandwidth(const Topology& topo, int seeds) {
  std::vector<std::array<int, 3>> edges;
  edges.reserve(topo.links().size());
  for (const Link& l : topo.links()) edges.push_back({l.r1, l.r2, 1});
  std::vector<int> vwgt(topo.num_routers());
  for (int r = 0; r < topo.num_routers(); ++r) vwgt[r] = topo.endpoints_of(r);
  const CsrGraph g = make_csr(topo.num_routers(), edges, std::move(vwgt));

  BisectionResult best;
  bool have = false;
  for (int s = 1; s <= seeds; ++s) {
    BisectionOptions opts;
    opts.seed = static_cast<std::uint64_t>(s) * 0x9E3779B9u + 7;
    BisectionResult r = bisect(g, opts);
    if (!have || r.cut_weight < best.cut_weight) {
      best = std::move(r);
      have = true;
    }
  }

  BisectionBandwidth out;
  out.cut_links = best.cut_weight;
  out.nodes_side0 = best.weight[0];
  out.nodes_side1 = best.weight[1];
  const auto larger = std::max(out.nodes_side0, out.nodes_side1);
  out.per_node = larger > 0 ? static_cast<double>(out.cut_links) / static_cast<double>(larger)
                            : 0.0;
  return out;
}

}  // namespace d2net
