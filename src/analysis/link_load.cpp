#include "analysis/link_load.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"
#include "routing/minimal_table.h"
#include "topology/topology.h"

namespace d2net {
namespace {

/// Dense directed-channel indexing: channel (u -> neighbors(u)[i]) has id
/// base[u] + i.
struct ChannelIndex {
  explicit ChannelIndex(const Topology& topo) : topo_(&topo) {
    base.resize(topo.num_routers() + 1, 0);
    for (int r = 0; r < topo.num_routers(); ++r) {
      base[r + 1] = base[r] + topo.network_degree(r);
    }
  }

  int id(int u, int v) const {
    const auto& nbrs = topo_->neighbors(u);
    for (int i = 0; i < static_cast<int>(nbrs.size()); ++i) {
      if (nbrs[i] == v) return base[u] + i;
    }
    D2NET_ASSERT(false, "channel lookup failed");
    return -1;
  }

  int count() const { return base.back(); }

  const Topology* topo_;
  std::vector<int> base;
};

/// Adds `weight` units of flow from s to d, splitting uniformly over the
/// shortest-path DAG (how MinimalRouting samples next hops). Paths in the
/// studied networks are <= 2 hops with tiny diversity, so the recursive
/// walk is cheap.
void propagate_minimal(const Topology& topo, const MinimalTable& table,
                       const ChannelIndex& channels, int s, int d, double weight,
                       std::vector<double>& loads) {
  if (s == d || weight == 0.0) return;
  const auto nh = table.next_hops(s, d);
  const double share = weight / static_cast<double>(nh.size());
  for (int h : nh) {
    loads[channels.id(s, h)] += share;
    propagate_minimal(topo, table, channels, h, d, share, loads);
  }
}

/// Router-level traffic matrix from a node permutation: weight(s, d) =
/// number of node pairs routed s -> d (each node injects one unit).
std::vector<std::pair<std::pair<int, int>, double>> router_pairs(
    const Topology& topo, const std::vector<int>& dest_of) {
  D2NET_REQUIRE(static_cast<int>(dest_of.size()) == topo.num_nodes(),
                "permutation arity mismatch");
  std::vector<std::pair<std::pair<int, int>, double>> out;
  std::map<std::pair<int, int>, double> acc;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const int s = topo.router_of_node(n);
    const int d = topo.router_of_node(dest_of[n]);
    if (s != d) acc[{s, d}] += 1.0;
  }
  out.assign(acc.begin(), acc.end());
  return out;
}

LinkLoadReport finalize(std::vector<double> loads) {
  LinkLoadReport rep;
  rep.loads = std::move(loads);
  double sum = 0.0;
  for (double l : rep.loads) {
    rep.max_load = std::max(rep.max_load, l);
    sum += l;
  }
  rep.mean_load = rep.loads.empty() ? 0.0 : sum / static_cast<double>(rep.loads.size());
  rep.throughput_bound = rep.max_load > 0.0 ? std::min(1.0, 1.0 / rep.max_load) : 1.0;
  return rep;
}

}  // namespace

LinkLoadReport minimal_link_loads_matrix(const Topology& topo, const MinimalTable& table,
                                         const std::vector<NodeFlow>& flows) {
  const ChannelIndex channels(topo);
  std::vector<double> loads(channels.count(), 0.0);
  // Group node flows by router pair before propagating.
  std::map<std::pair<int, int>, double> acc;
  for (const NodeFlow& f : flows) {
    const int s = topo.router_of_node(f.src_node);
    const int d = topo.router_of_node(f.dst_node);
    if (s != d) acc[{s, d}] += f.weight;
  }
  for (const auto& [pair, w] : acc) {
    propagate_minimal(topo, table, channels, pair.first, pair.second, w, loads);
  }
  return finalize(std::move(loads));
}

LinkLoadReport minimal_link_loads(const Topology& topo, const MinimalTable& table,
                                  const std::vector<int>& dest_of) {
  const ChannelIndex channels(topo);
  std::vector<double> loads(channels.count(), 0.0);
  for (const auto& [pair, w] : router_pairs(topo, dest_of)) {
    propagate_minimal(topo, table, channels, pair.first, pair.second, w, loads);
  }
  return finalize(std::move(loads));
}

LinkLoadReport minimal_link_loads_uniform(const Topology& topo, const MinimalTable& table) {
  const ChannelIndex channels(topo);
  std::vector<double> loads(channels.count(), 0.0);
  const double unit = 1.0 / static_cast<double>(topo.num_nodes() - 1);
  for (int s : topo.edge_routers()) {
    const double ps = topo.endpoints_of(s);
    for (int d : topo.edge_routers()) {
      if (s == d) continue;
      // Every node of s sends `unit` to every node of d.
      propagate_minimal(topo, table, channels, s, d,
                        ps * topo.endpoints_of(d) * unit, loads);
    }
  }
  return finalize(std::move(loads));
}

LinkLoadComparison compare_link_loads(const LinkLoadReport& analytic,
                                      const std::vector<double>& observed_utilization,
                                      double offered_load) {
  D2NET_REQUIRE(analytic.loads.size() == observed_utilization.size(),
                "analytic and observed channel counts differ");
  D2NET_REQUIRE(offered_load > 0.0, "offered load must be positive");
  LinkLoadComparison cmp;
  cmp.channels = static_cast<int>(analytic.loads.size());
  cmp.offered_load = offered_load;
  if (cmp.channels == 0) return cmp;

  // Expected utilization: analytic loads are per unit offered injection
  // bandwidth; a channel cannot exceed its line rate.
  std::vector<double> expected(analytic.loads.size());
  for (std::size_t c = 0; c < analytic.loads.size(); ++c) {
    expected[c] = std::min(1.0, analytic.loads[c] * offered_load);
  }

  double sum_e = 0.0, sum_o = 0.0;
  for (std::size_t c = 0; c < expected.size(); ++c) {
    cmp.expected_util_max = std::max(cmp.expected_util_max, expected[c]);
    cmp.observed_util_max = std::max(cmp.observed_util_max, observed_utilization[c]);
    const double err = std::abs(observed_utilization[c] - expected[c]);
    cmp.mean_abs_error += err;
    cmp.max_abs_error = std::max(cmp.max_abs_error, err);
    sum_e += expected[c];
    sum_o += observed_utilization[c];
  }
  const double n = static_cast<double>(expected.size());
  cmp.mean_abs_error /= n;

  const double mean_e = sum_e / n;
  const double mean_o = sum_o / n;
  double cov = 0.0, var_e = 0.0, var_o = 0.0;
  for (std::size_t c = 0; c < expected.size(); ++c) {
    const double de = expected[c] - mean_e;
    const double dob = observed_utilization[c] - mean_o;
    cov += de * dob;
    var_e += de * de;
    var_o += dob * dob;
  }
  cmp.correlation =
      var_e > 0.0 && var_o > 0.0 ? cov / std::sqrt(var_e * var_o) : 0.0;
  return cmp;
}

LinkLoadReport valiant_link_loads(const Topology& topo, const MinimalTable& table,
                                  const std::vector<int>& dest_of,
                                  const std::vector<int>& intermediates) {
  const ChannelIndex channels(topo);
  std::vector<double> loads(channels.count(), 0.0);
  for (const auto& [pair, w] : router_pairs(topo, dest_of)) {
    const auto [s, d] = pair;
    // Count eligible intermediates (excluding s and d).
    int eligible = 0;
    for (int via : intermediates) eligible += (via != s && via != d) ? 1 : 0;
    D2NET_REQUIRE(eligible > 0, "no eligible Valiant intermediate");
    const double share = w / static_cast<double>(eligible);
    for (int via : intermediates) {
      if (via == s || via == d) continue;
      propagate_minimal(topo, table, channels, s, via, share, loads);
      propagate_minimal(topo, table, channels, via, d, share, loads);
    }
  }
  return finalize(std::move(loads));
}

}  // namespace d2net
