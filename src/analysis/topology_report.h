// One-stop structural analysis of a topology: the quantities Sections 2.3.1
// - 2.3.3 of the paper discuss (scale, cost, diameter, bisection, path
// diversity), plus the deadlock-freedom verdicts of Section 3.4.
#pragma once

#include <iosfwd>
#include <string>

#include "partition/bisection_bandwidth.h"
#include "topology/properties.h"

namespace d2net {

class Topology;

struct TopologyReport {
  std::string name;
  int num_nodes = 0;
  int num_routers = 0;
  int num_links = 0;
  int max_radix = 0;
  double links_per_node = 0.0;
  double ports_per_node = 0.0;
  int router_diameter = 0;
  int node_diameter = 0;  ///< between endpoint-attached routers
  double avg_distance = 0.0;
  PathDiversityStats diversity_d2;
  BisectionBandwidth bisection;
  double moore_fraction = 0.0;  ///< routers / Moore bound at the network degree
};

/// Computes the full report (runs all-pairs BFS and the partitioner; cost
/// grows with R^2, intended for topologies up to a few thousand routers).
TopologyReport analyze_topology(const Topology& topo);

/// Pretty-prints the report.
void print_topology_report(const TopologyReport& report, std::ostream& os);

struct DeadlockReport {
  bool minimal_ok = false;
  bool indirect_ok = false;
  bool single_vc_cyclic = false;  ///< negative control: 1 VC must cycle
};

/// Runs the CDG checks of Section 3.4 for the topology's routing family.
DeadlockReport check_deadlock_freedom(const Topology& topo);

void print_deadlock_report(const DeadlockReport& report, std::ostream& os);

}  // namespace d2net
