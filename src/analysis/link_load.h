// Analytic (expected) channel-load model for oblivious routing.
//
// For a traffic pattern and an oblivious routing policy the expected load
// on every directed channel is computable exactly: minimal routing splits
// flow uniformly over the next hops at each step of the shortest-path DAG,
// and Valiant routing averages two minimal segments over the eligible
// intermediates. The most-loaded channel then bounds the saturation
// throughput at 1 / max_load — this is exactly how Section 4.2 of the
// paper derives the 1/2p (SF), 1/h (MLFM) and 1/k (OFT) worst-case
// saturation points, and the simulator is expected to confirm it.
#pragma once

#include <vector>

namespace d2net {

class Topology;
class MinimalTable;

/// Expected channel loads, in units of one node's injection bandwidth.
struct LinkLoadReport {
  double max_load = 0.0;
  double mean_load = 0.0;
  /// Saturation bound: with links and NICs at the same line rate, the
  /// network saturates when the hottest channel reaches capacity, i.e. at
  /// offered fraction min(1, 1 / max_load).
  double throughput_bound = 0.0;
  /// Load of every directed router-to-router channel (channel c of router
  /// u toward neighbors(u)[i] sits at prefix_degree(u) + i).
  std::vector<double> loads;
};

/// One traffic-matrix entry: src_node sends `weight` units (fractions of
/// its injection bandwidth) to dst_node.
struct NodeFlow {
  int src_node = -1;
  int dst_node = -1;
  double weight = 1.0;
};

/// Expected loads under oblivious minimal routing for an arbitrary traffic
/// matrix (e.g. the 6-neighbor halo exchange of Fig. 14).
LinkLoadReport minimal_link_loads_matrix(const Topology& topo, const MinimalTable& table,
                                         const std::vector<NodeFlow>& flows);

/// Expected loads under oblivious minimal routing for a node permutation
/// (dest_of[n] == destination of node n; every node injects one unit).
LinkLoadReport minimal_link_loads(const Topology& topo, const MinimalTable& table,
                                  const std::vector<int>& dest_of);

/// Same under uniform random traffic (every node sends 1/(N-1) units to
/// every other node).
LinkLoadReport minimal_link_loads_uniform(const Topology& topo, const MinimalTable& table);

/// Expected loads under Valiant/indirect-random routing for a permutation;
/// `intermediates` as produced by valiant_intermediates().
LinkLoadReport valiant_link_loads(const Topology& topo, const MinimalTable& table,
                                  const std::vector<int>& dest_of,
                                  const std::vector<int>& intermediates);

}  // namespace d2net
