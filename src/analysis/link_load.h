// Analytic (expected) channel-load model for oblivious routing.
//
// For a traffic pattern and an oblivious routing policy the expected load
// on every directed channel is computable exactly: minimal routing splits
// flow uniformly over the next hops at each step of the shortest-path DAG,
// and Valiant routing averages two minimal segments over the eligible
// intermediates. The most-loaded channel then bounds the saturation
// throughput at 1 / max_load — this is exactly how Section 4.2 of the
// paper derives the 1/2p (SF), 1/h (MLFM) and 1/k (OFT) worst-case
// saturation points, and the simulator is expected to confirm it.
#pragma once

#include <vector>

namespace d2net {

class Topology;
class MinimalTable;

/// Expected channel loads, in units of one node's injection bandwidth.
struct LinkLoadReport {
  double max_load = 0.0;
  double mean_load = 0.0;
  /// Saturation bound: with links and NICs at the same line rate, the
  /// network saturates when the hottest channel reaches capacity, i.e. at
  /// offered fraction min(1, 1 / max_load).
  double throughput_bound = 0.0;
  /// Load of every directed router-to-router channel (channel c of router
  /// u toward neighbors(u)[i] sits at prefix_degree(u) + i).
  std::vector<double> loads;
};

/// One traffic-matrix entry: src_node sends `weight` units (fractions of
/// its injection bandwidth) to dst_node.
struct NodeFlow {
  int src_node = -1;
  int dst_node = -1;
  double weight = 1.0;
};

/// Expected loads under oblivious minimal routing for an arbitrary traffic
/// matrix (e.g. the 6-neighbor halo exchange of Fig. 14).
LinkLoadReport minimal_link_loads_matrix(const Topology& topo, const MinimalTable& table,
                                         const std::vector<NodeFlow>& flows);

/// Expected loads under oblivious minimal routing for a node permutation
/// (dest_of[n] == destination of node n; every node injects one unit).
LinkLoadReport minimal_link_loads(const Topology& topo, const MinimalTable& table,
                                  const std::vector<int>& dest_of);

/// Same under uniform random traffic (every node sends 1/(N-1) units to
/// every other node).
LinkLoadReport minimal_link_loads_uniform(const Topology& topo, const MinimalTable& table);

/// Expected loads under Valiant/indirect-random routing for a permutation;
/// `intermediates` as produced by valiant_intermediates().
LinkLoadReport valiant_link_loads(const Topology& topo, const MinimalTable& table,
                                  const std::vector<int>& dest_of,
                                  const std::vector<int>& intermediates);

/// Per-channel agreement between the analytic expectation and a measured
/// run. Expected utilization of channel c at offered load f is
/// min(1, f * loads[c]); `observed` is the simulator's measured fraction
/// of line rate per channel, in the same (router, port) order the report
/// uses — exactly what NetworkSim::channel_stats() yields.
struct LinkLoadComparison {
  int channels = 0;
  double offered_load = 0.0;
  double expected_util_max = 0.0;
  double observed_util_max = 0.0;
  double mean_abs_error = 0.0;  ///< mean |observed - expected| over channels
  double max_abs_error = 0.0;
  /// Pearson correlation between expected and observed utilization
  /// (0 when either side has no variance).
  double correlation = 0.0;
};

/// Compares an analytic link-load report against observed per-channel
/// utilizations from a simulation at `offered_load`.
LinkLoadComparison compare_link_loads(const LinkLoadReport& analytic,
                                      const std::vector<double>& observed_utilization,
                                      double offered_load);

}  // namespace d2net
