#include "analysis/topology_report.h"

#include <algorithm>
#include <ostream>

#include "common/table.h"
#include "routing/cdg.h"
#include "routing/factory.h"
#include "routing/minimal_table.h"
#include "routing/valiant_routing.h"
#include "topology/cost_model.h"
#include "topology/topology.h"

namespace d2net {

TopologyReport analyze_topology(const Topology& topo) {
  TopologyReport rep;
  rep.name = topo.name();
  rep.num_nodes = topo.num_nodes();
  rep.num_routers = topo.num_routers();
  rep.num_links = topo.num_links();
  rep.links_per_node = topo.links_per_node();
  rep.ports_per_node = topo.ports_per_node();
  int max_net_degree = 0;
  for (int r = 0; r < topo.num_routers(); ++r) {
    rep.max_radix = std::max(rep.max_radix, topo.router_radix(r));
    max_net_degree = std::max(max_net_degree, topo.network_degree(r));
  }
  const DistanceMatrix dist = all_pairs_distances(topo);
  rep.router_diameter = diameter(dist);
  rep.node_diameter = node_diameter(topo, dist);
  rep.avg_distance = average_distance(dist);
  rep.diversity_d2 = path_diversity_at_distance(topo, 2);
  rep.bisection = approximate_bisection_bandwidth(topo);
  rep.moore_fraction = static_cast<double>(topo.num_routers()) /
                       static_cast<double>(moore_bound_d2(max_net_degree));
  return rep;
}

void print_topology_report(const TopologyReport& rep, std::ostream& os) {
  Table t({"metric", "value"});
  t.add("topology", rep.name);
  t.add("endpoints (N)", rep.num_nodes);
  t.add("routers (R)", rep.num_routers);
  t.add("router-router links", rep.num_links);
  t.add("max router radix", rep.max_radix);
  t.add("links per endpoint", fmt(rep.links_per_node, 3));
  t.add("ports per endpoint", fmt(rep.ports_per_node, 3));
  t.add("router diameter", rep.router_diameter);
  t.add("endpoint diameter", rep.node_diameter);
  t.add("avg router distance", fmt(rep.avg_distance, 3));
  t.add("dist-2 path diversity (mean)", fmt(rep.diversity_d2.mean, 3));
  t.add("dist-2 path diversity (max)", static_cast<std::int64_t>(rep.diversity_d2.max));
  t.add("bisection bw per node (b)", fmt(rep.bisection.per_node, 3));
  t.add("Moore-bound fraction", fmt(rep.moore_fraction, 3));
  t.print(os);
}

DeadlockReport check_deadlock_freedom(const Topology& topo) {
  const MinimalTable table(topo);
  const VcPolicy policy = vc_policy_for(topo.kind());
  const std::vector<int> vias = valiant_intermediates(topo);
  DeadlockReport rep;
  rep.minimal_ok = check_minimal_deadlock_freedom(topo, table, policy).acyclic;
  rep.indirect_ok = check_indirect_deadlock_freedom(topo, table, policy, vias).acyclic;
  rep.single_vc_cyclic = !check_indirect_single_vc(topo, table, vias).acyclic;
  return rep;
}

void print_deadlock_report(const DeadlockReport& rep, std::ostream& os) {
  Table t({"check", "result"});
  t.add("minimal routing CDG acyclic", rep.minimal_ok ? "yes" : "NO");
  t.add("indirect routing CDG acyclic (with VCs)", rep.indirect_ok ? "yes" : "NO");
  t.add("indirect on 1 VC cyclic (negative control)", rep.single_vc_cyclic ? "yes" : "NO");
  t.print(os);
}

}  // namespace d2net
