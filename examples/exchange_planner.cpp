// Exchange planner: estimate completion time and effective throughput of
// collective exchanges (all-to-all, 3-D-torus nearest-neighbor) on a chosen
// topology and routing — the workloads HPC applications actually run
// (paper Section 4.4).
//
//   exchange_planner --topo=oft:k=6 --exchange=a2a --bytes=7680
//   exchange_planner --topo=mlfm:h=7 --exchange=nn --bytes=65536 --routing=ugal-th
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "sim/exchange.h"
#include "sim/experiment.h"
#include "topology/spec.h"

using namespace d2net;

namespace {

RoutingStrategy parse_strategy(const std::string& s) {
  if (s == "min") return RoutingStrategy::kMinimal;
  if (s == "inr") return RoutingStrategy::kValiant;
  if (s == "ugal") return RoutingStrategy::kUgal;
  if (s == "ugal-th") return RoutingStrategy::kUgalThreshold;
  throw ArgumentError("unknown routing '" + s + "' (min|inr|ugal|ugal-th)");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Estimate collective-exchange performance on diameter-two networks");
  cli.flag("topo", std::string("oft:k=6"), "topology spec");
  cli.flag("exchange", std::string("a2a"), "a2a | nn");
  cli.flag("bytes", std::int64_t{7680}, "bytes per pair (a2a) or per neighbor (nn)");
  cli.flag("routing", std::string("all"), "min | inr | ugal | ugal-th | all");
  cli.flag("seed", std::int64_t{1}, "seed");
  cli.flag("limit-ms", 20000.0, "simulated-time abort limit");
  if (!cli.parse(argc, argv)) return 0;

  const Topology topo = build_topology_from_spec(cli.get_string("topo"));
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const TimePs limit = us(cli.get_double("limit-ms") * 1000.0);
  const std::int64_t bytes = cli.get_int("bytes");

  ExchangePlan plan;
  if (cli.get_string("exchange") == "a2a") {
    plan = make_all_to_all_plan(topo.num_nodes(), bytes, A2aOrder::kShuffled, cfg.seed);
  } else {
    const auto dims = best_torus_dims(topo.num_nodes());
    std::printf("embedded torus: %dx%dx%d (%d of %d nodes active)\n", dims[0], dims[1],
                dims[2], dims[0] * dims[1] * dims[2], topo.num_nodes());
    plan = make_nearest_neighbor_plan(topo.num_nodes(), dims, bytes);
  }
  std::printf("exchange: %s, %lld bytes total\n", plan.name.c_str(),
              static_cast<long long>(plan.total_bytes()));

  std::vector<RoutingStrategy> strategies;
  if (cli.get_string("routing") == "all") {
    strategies = {RoutingStrategy::kMinimal, RoutingStrategy::kValiant, RoutingStrategy::kUgal,
                  RoutingStrategy::kUgalThreshold};
  } else {
    strategies = {parse_strategy(cli.get_string("routing"))};
  }

  Table t({"routing", "completed", "completion (us)", "effective throughput"});
  for (RoutingStrategy s : strategies) {
    SimStack stack(topo, s, cfg);
    const ExchangeResult r = stack.run_exchange(plan, limit);
    t.add(to_string(s), r.completed ? "yes" : "NO", fmt(r.completion_us, 1),
          fmt(r.effective_throughput, 3));
  }
  t.print(std::cout);
  return 0;
}
