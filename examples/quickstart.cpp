// Quickstart: build a diameter-two topology, inspect it, attach adaptive
// routing, and measure throughput/latency under uniform and adversarial
// traffic — the library's core loop in ~60 lines.
#include <cstdio>

#include "common/rng.h"
#include "sim/experiment.h"
#include "sim/traffic.h"
#include "topology/oft.h"

using namespace d2net;

int main() {
  // 1. Build a two-level Orthogonal Fat-Tree with k = 6:
  //    31 routers per level, 372 endpoints, every router radix 12.
  const Topology topo = build_oft(6);
  std::printf("built %s: %d endpoints, %d routers, %.1f ports/endpoint\n",
              topo.name().c_str(), topo.num_nodes(), topo.num_routers(),
              topo.ports_per_node());

  // 2. Assemble a simulation stack. SimStack wires together the minimal
  //    routing table, the UGAL-L adaptive algorithm with the paper's tuned
  //    parameters, VC-based deadlock avoidance and the flit-accurate
  //    credit-flow simulator.
  SimConfig cfg;  // paper defaults: 100 Gb/s links, 50 ns wires, 100 ns routers
  SimStack stack(topo, RoutingStrategy::kUgalThreshold, cfg);

  // 3. Uniform random traffic at 90% injection: adaptive routing should
  //    deliver nearly all of it minimally.
  UniformTraffic uniform(topo.num_nodes());
  const OpenLoopResult uni = stack.run_open_loop(uniform, 0.9, us(20), us(4));
  std::printf("uniform @0.9: accepted %.3f, mean latency %.0f ns, %.0f%% minimal\n",
              uni.accepted_throughput, uni.avg_latency_ns, 100 * uni.fraction_minimal);

  // 4. The OFT's worst case (Section 4.2): every endpoint of router i sends
  //    to the corresponding endpoint of router i+1 — minimal routing would
  //    collapse to 1/k, but UGAL diverts over random intermediates.
  const MinimalTable table(topo);
  Rng rng(1);
  const auto wc = make_worst_case(topo, table, rng);
  const OpenLoopResult adv = stack.run_open_loop(*wc, 0.4, us(20), us(4));
  std::printf("worst-case @0.4: accepted %.3f, mean latency %.0f ns, %.0f%% minimal\n",
              adv.accepted_throughput, adv.avg_latency_ns, 100 * adv.fraction_minimal);

  // 5. For reference, the same adversary under oblivious minimal routing.
  SimStack minimal(topo, RoutingStrategy::kMinimal, cfg);
  const OpenLoopResult min_adv = minimal.run_open_loop(*wc, 0.4, us(20), us(4));
  std::printf("worst-case @0.4 with MIN: accepted %.3f (the 1/k collapse)\n",
              min_adv.accepted_throughput);
  return 0;
}
