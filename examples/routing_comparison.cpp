// Routing comparison: sweep offered load on one topology and compare all
// four routing strategies (MIN, INR, UGAL, UGAL-Th) under a chosen traffic
// pattern — the tool behind "which routing should my deployment use?".
//
//   routing_comparison --topo=mlfm:h=7 --pattern=uniform
//   routing_comparison --topo=sf:q=7 --pattern=worst-case --duration-us=24
//   routing_comparison --topo=oft:k=6 --pattern=shift --shift=12
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "sim/experiment.h"
#include "sim/traffic.h"
#include "topology/spec.h"

using namespace d2net;

int main(int argc, char** argv) {
  Cli cli("Compare MIN / INR / UGAL / UGAL-Th on one topology and pattern");
  cli.flag("topo", std::string("mlfm:h=7"), "topology spec");
  cli.flag("pattern", std::string("uniform"), "uniform | worst-case | shift");
  cli.flag("shift", std::int64_t{1}, "node shift for --pattern=shift");
  cli.flag("duration-us", 16.0, "simulated time per point");
  cli.flag("warmup-us", 4.0, "warmup");
  cli.flag("seed", std::int64_t{1}, "seed");
  if (!cli.parse(argc, argv)) return 0;

  const Topology topo = build_topology_from_spec(cli.get_string("topo"));
  const MinimalTable table(topo);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::unique_ptr<TrafficPattern> pattern;
  const std::string pname = cli.get_string("pattern");
  if (pname == "uniform") {
    pattern = std::make_unique<UniformTraffic>(topo.num_nodes());
  } else if (pname == "worst-case") {
    pattern = make_worst_case(topo, table, rng);
  } else if (pname == "shift") {
    pattern = make_node_shift(topo.num_nodes(), static_cast<int>(cli.get_int("shift")));
  } else {
    std::fprintf(stderr, "unknown pattern '%s'\n", pname.c_str());
    return 1;
  }

  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const TimePs duration = us(cli.get_double("duration-us"));
  const TimePs warmup = us(cli.get_double("warmup-us"));
  const std::vector<double> loads{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  std::printf("== %s under %s traffic ==\n", topo.name().c_str(), pattern->name().c_str());
  Table t({"load", "MIN thr", "MIN lat", "INR thr", "INR lat", "UGAL thr", "UGAL lat",
           "UGAL-Th thr", "UGAL-Th lat"});
  std::vector<std::unique_ptr<SimStack>> stacks;
  for (RoutingStrategy s : {RoutingStrategy::kMinimal, RoutingStrategy::kValiant,
                            RoutingStrategy::kUgal, RoutingStrategy::kUgalThreshold}) {
    stacks.push_back(std::make_unique<SimStack>(topo, s, cfg));
  }
  for (double load : loads) {
    std::vector<std::string> row{fmt(load, 2)};
    for (auto& stack : stacks) {
      const OpenLoopResult r = stack->run_open_loop(*pattern, load, duration, warmup);
      row.push_back(fmt(r.accepted_throughput, 3));
      row.push_back(fmt(r.avg_latency_ns, 0));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}
