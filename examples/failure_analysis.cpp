// Failure analysis: inject random link failures into a topology and
// quantify the damage — diameter stretch, bisection loss, and the
// throughput/latency cost under minimal vs adaptive routing — with an
// optional per-packet trace of the degraded run for offline inspection.
//
//   failure_analysis --topo=sf:q=7 --fail-fraction=0.05
//   failure_analysis --topo=oft:k=6 --fail-fraction=0.1 --trace=/tmp/deg.csv
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "partition/bisection_bandwidth.h"
#include "sim/experiment.h"
#include "topology/degrade.h"
#include "topology/properties.h"
#include "topology/spec.h"

using namespace d2net;

int main(int argc, char** argv) {
  Cli cli("Quantify the impact of random link failures on a diameter-two network");
  cli.flag("topo", std::string("sf:q=7"), "topology spec");
  cli.flag("fail-fraction", 0.05, "fraction of router-router links to remove");
  cli.flag("load", 0.8, "offered uniform load for the throughput comparison");
  cli.flag("seed", std::int64_t{1}, "seed");
  cli.flag("trace", std::string(""), "write a packet trace CSV of the degraded UGAL run");
  if (!cli.parse(argc, argv)) return 0;

  const Topology healthy = build_topology_from_spec(cli.get_string("topo"));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const int fail_count =
      static_cast<int>(cli.get_double("fail-fraction") * healthy.num_links());
  const DegradeResult deg = remove_random_links(healthy, fail_count, rng);
  std::printf("%s: removed %zu of %d links\n", healthy.name().c_str(), deg.removed.size(),
              healthy.num_links());

  Table s({"metric", "healthy", "degraded"});
  {
    const DistanceMatrix dh = all_pairs_distances(healthy);
    const DistanceMatrix dd = all_pairs_distances(deg.topo);
    s.add("endpoint diameter", node_diameter(healthy, dh), node_diameter(deg.topo, dd));
    s.add("avg router distance", fmt(average_distance(dh), 3), fmt(average_distance(dd), 3));
    s.add("bisection bw per node", fmt(approximate_bisection_bandwidth(healthy).per_node, 3),
          fmt(approximate_bisection_bandwidth(deg.topo).per_node, 3));
  }
  s.print(std::cout);

  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double load = cli.get_double("load");
  UniformTraffic uni(healthy.num_nodes());

  Table t({"network", "routing", "accepted", "mean latency (ns)", "p99 (ns)", "fairness"});
  for (const Topology* topo : {&healthy, &deg.topo}) {
    for (RoutingStrategy strat : {RoutingStrategy::kMinimal, RoutingStrategy::kUgalThreshold}) {
      SimStack stack(*topo, strat, cfg);
      PacketTraceSink trace;
      const bool want_trace = topo == &deg.topo &&
                              strat == RoutingStrategy::kUgalThreshold &&
                              !cli.get_string("trace").empty();
      if (want_trace) stack.sim().set_trace(&trace);
      const OpenLoopResult r = stack.run_open_loop(uni, load, us(20), us(4));
      t.add(topo == &healthy ? "healthy" : "degraded", to_string(strat),
            fmt(r.accepted_throughput, 3), fmt(r.avg_latency_ns, 0), fmt(r.p99_latency_ns, 0),
            fmt(r.jain_fairness, 3));
      if (want_trace) {
        std::ofstream out(cli.get_string("trace"));
        trace.write_csv(out);
        std::printf("wrote %zu trace entries to %s\n", trace.entries().size(),
                    cli.get_string("trace").c_str());
      }
    }
  }
  t.print(std::cout);
  return 0;
}
