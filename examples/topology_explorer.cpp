// Topology explorer: build any supported network from a command-line spec
// and print its full structural report — scale, cost, diameter, bisection
// bandwidth, minimal-path diversity — plus the Section 3.4 deadlock-freedom
// verdicts for its routing family.
//
//   topology_explorer --topo=sf:q=11
//   topology_explorer --topo=mlfm:h=9 --deadlock=false
//   topology_explorer --topo=oft:k=8 --compare=sf:q=9 --compare2=mlfm:h=8
#include <cstdio>
#include <iostream>

#include <fstream>

#include "analysis/topology_report.h"
#include "common/cli.h"
#include "topology/io.h"
#include "topology/spec.h"

using namespace d2net;

namespace {

void report_one(const std::string& spec, bool deadlock) {
  const Topology topo = build_topology_from_spec(spec);
  std::printf("\n== %s ==\n", topo.name().c_str());
  print_topology_report(analyze_topology(topo), std::cout);
  if (deadlock) {
    std::printf("deadlock-freedom (CDG checks):\n");
    print_deadlock_report(check_deadlock_freedom(topo), std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(std::string("Structural analysis of diameter-two topologies. ") +
          topology_spec_help());
  cli.flag("topo", std::string("oft:k=6"), "topology spec");
  cli.flag("compare", std::string(""), "optional second spec to analyze");
  cli.flag("compare2", std::string(""), "optional third spec to analyze");
  cli.flag("deadlock", true, "run the CDG deadlock checks (costlier)");
  cli.flag("dot", std::string(""), "write the primary topology as Graphviz DOT to this file");
  if (!cli.parse(argc, argv)) return 0;

  report_one(cli.get_string("topo"), cli.get_bool("deadlock"));
  if (!cli.get_string("dot").empty()) {
    std::ofstream out(cli.get_string("dot"));
    write_dot(build_topology_from_spec(cli.get_string("topo")), out);
    std::printf("wrote %s\n", cli.get_string("dot").c_str());
  }
  if (!cli.get_string("compare").empty()) {
    report_one(cli.get_string("compare"), cli.get_bool("deadlock"));
  }
  if (!cli.get_string("compare2").empty()) {
    report_one(cli.get_string("compare2"), cli.get_bool("deadlock"));
  }
  return 0;
}
