// Flow-level engine (src/flowsim/): water-filling unit behavior, engine
// sanity on tiny topologies, batched-vs-exact recompute agreement,
// flow-vs-packet cross-validation (saturation knee within one load step,
// exchange completion-time ordering), determinism across --jobs, journal
// resume byte-identity, and strict rejection of packet-only
// configuration. See docs/flow_engine.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/error.h"
#include "common/journal.h"
#include "flowsim/flow_sim.h"
#include "flowsim/waterfill.h"
#include "sim/campaign.h"
#include "sim/exchange.h"
#include "sim/experiment.h"
#include "sim/sweep_runner.h"
#include "sim/traffic.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

namespace fs = std::filesystem;

using flowsim::FlowSim;
using flowsim::FlowTable;
using flowsim::RateChangeSink;
using flowsim::WaterfillScratch;

// Records on_rate_change callbacks into the table like FlowSim does.
struct ApplySink final : RateChangeSink {
  FlowTable* table;
  explicit ApplySink(FlowTable* t) : table(t) {}
  void on_rate_change(int flow, double new_rate) override {
    table->rate[static_cast<std::size_t>(flow)] = new_rate;
  }
};

TEST(Waterfill, LoneFlowRunsAtLineRate) {
  FlowTable t;
  t.reset(4);
  const std::int32_t links[] = {0, 1, 3};
  const int f = t.create(links, 3, 1000.0);
  WaterfillScratch ws;
  ApplySink sink(&t);
  flowsim::waterfill_all(t, ws, sink);
  EXPECT_DOUBLE_EQ(t.rate[static_cast<std::size_t>(f)], 1.0);
}

TEST(Waterfill, TwoFlowsShareABottleneckEvenly) {
  FlowTable t;
  t.reset(5);
  const std::int32_t a[] = {0, 2};
  const std::int32_t b[] = {1, 2};
  const int fa = t.create(a, 2, 1000.0);
  const int fb = t.create(b, 2, 1000.0);
  WaterfillScratch ws;
  ApplySink sink(&t);
  flowsim::waterfill_all(t, ws, sink);
  EXPECT_DOUBLE_EQ(t.rate[static_cast<std::size_t>(fa)], 0.5);
  EXPECT_DOUBLE_EQ(t.rate[static_cast<std::size_t>(fb)], 0.5);
}

TEST(Waterfill, MaxMinUnfreezesSpareCapacity) {
  // Chain f0 -[l0]- f1 -[l1]- f2: link 0 freezes f0 and f1 at 0.5; link 1
  // then has 0.5 left for f2 alone.
  FlowTable t;
  t.reset(2);
  const std::int32_t l0[] = {0};
  const std::int32_t l01[] = {0, 1};
  const std::int32_t l1[] = {1};
  const int f0 = t.create(l0, 1, 1.0);
  const int f1 = t.create(l01, 2, 1.0);
  const int f2 = t.create(l1, 1, 1.0);
  WaterfillScratch ws;
  ApplySink sink(&t);
  flowsim::waterfill_all(t, ws, sink);
  EXPECT_DOUBLE_EQ(t.rate[static_cast<std::size_t>(f0)], 0.5);
  EXPECT_DOUBLE_EQ(t.rate[static_cast<std::size_t>(f1)], 0.5);
  EXPECT_DOUBLE_EQ(t.rate[static_cast<std::size_t>(f2)], 0.5);
}

TEST(Waterfill, AsymmetricChainIsMaxMinNotEqual) {
  // f0..f2 share link 0 (fair 1/3); f3 shares link 1 with f2 only. After
  // link 0 freezes f2 at 1/3, f3 takes the remaining 2/3 — max-min is not
  // global equality.
  FlowTable t;
  t.reset(2);
  const std::int32_t l0[] = {0};
  const std::int32_t l01[] = {0, 1};
  const std::int32_t l1[] = {1};
  const int f0 = t.create(l0, 1, 1.0);
  const int f1 = t.create(l0, 1, 1.0);
  const int f2 = t.create(l01, 2, 1.0);
  const int f3 = t.create(l1, 1, 1.0);
  WaterfillScratch ws;
  ApplySink sink(&t);
  flowsim::waterfill_all(t, ws, sink);
  EXPECT_NEAR(t.rate[static_cast<std::size_t>(f0)], 1.0 / 3, 1e-12);
  EXPECT_NEAR(t.rate[static_cast<std::size_t>(f1)], 1.0 / 3, 1e-12);
  EXPECT_NEAR(t.rate[static_cast<std::size_t>(f2)], 1.0 / 3, 1e-12);
  EXPECT_NEAR(t.rate[static_cast<std::size_t>(f3)], 2.0 / 3, 1e-12);
}

// Two routers, one node each, one link: a lone flow must complete in
// bytes x ps_per_byte (rate 1.0), so flow latency is the serialization
// time and accepted throughput tracks offered load closely.
Topology tiny_pair() {
  Topology t("pair", TopologyKind::kCustom);
  t.add_router({}, 1);
  t.add_router({}, 1);
  t.add_link(0, 1);
  t.finalize();
  return t;
}

TEST(FlowSim, LoneFlowLatencyIsSerializationTime) {
  const Topology topo = tiny_pair();
  SimConfig cfg;
  cfg.engine = SimEngine::kFlow;
  cfg.flow.flow_bytes = 4096;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  const auto shift = make_node_shift(topo.num_nodes(), 1);
  // Low load: flows essentially never overlap, every flow runs alone at
  // rate 1.0 end to end.
  const OpenLoopResult res = stack.run_open_loop(*shift, 0.05, us(200), us(20));
  ASSERT_GT(res.packets_measured, 0);
  const double ser_ns = 4096 * 80 / 1000.0;  // 327.68 ns at 100 Gb/s
  EXPECT_NEAR(res.avg_latency_ns, ser_ns, ser_ns * 0.25);
  EXPECT_NEAR(res.accepted_throughput, 0.05, 0.015);
}

TEST(FlowSim, SaturatedPairDeliversLineRate) {
  const Topology topo = tiny_pair();
  SimConfig cfg;
  cfg.engine = SimEngine::kFlow;
  cfg.flow.flow_bytes = 4096;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  const auto shift = make_node_shift(topo.num_nodes(), 1);
  // Disjoint node pairs at full offered load: the engine must sustain
  // ~line rate (back-to-back flows, no sharing).
  const OpenLoopResult res = stack.run_open_loop(*shift, 1.0, us(200), us(20));
  EXPECT_GT(res.accepted_throughput, 0.9);
}

OpenLoopResult run_point(const Topology& topo, SimEngine eng, double load,
                         TimePs rate_interval = 0) {
  SimConfig cfg;
  cfg.engine = eng;
  cfg.flow.rate_interval = rate_interval;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  return stack.run_open_loop(uni, load, us(8), us(2));
}

TEST(FlowSim, BatchedRecomputeMatchesExactThroughput) {
  // The batched tick path assigns optimistic estimates and corrects them
  // at tick/pop time; bytes accrue at the actually-assigned rates, so
  // accepted throughput must land on the exact-recompute value (small
  // slack: estimates shift individual completion times across the window
  // edge).
  const Topology topo = build_slim_fly(5);
  for (const double load : {0.3, 0.6}) {
    const OpenLoopResult exact = run_point(topo, SimEngine::kFlow, load, 0);
    const OpenLoopResult batched = run_point(topo, SimEngine::kFlow, load, ns(200));
    EXPECT_NEAR(batched.accepted_throughput, exact.accepted_throughput, 0.03)
        << "load " << load;
  }
}

// Index of the saturation knee on `loads`: the first offered load whose
// accepted throughput falls more than 15% short, or loads.size() if the
// system tracks offered load everywhere. The 15% band absorbs the flow
// model's conservative saturation (max-min rates under the flow-count
// cap deliver a few percent less than packet multiplexing past the knee;
// see docs/flow_engine.md) without masking a shifted knee.
template <typename RunPoint>
std::size_t knee_index(const std::vector<double>& loads, RunPoint&& run) {
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (run(loads[i]) < 0.85 * loads[i]) return i;
  }
  return loads.size();
}

TEST(FlowVsPacket, SaturationKneeWithinOneLoadStep) {
  // The acceptance cross-validation: on small instances of all three
  // paper families, both engines must place the uniform-traffic MIN
  // saturation knee within one step of each other on a coarse load grid.
  const std::vector<double> loads{0.25, 0.5, 0.75, 1.0};
  const Topology sf = build_slim_fly(5);
  const Topology mlfm = build_mlfm(3);
  const Topology oft = build_oft(4);
  for (const Topology* topo : {&sf, &mlfm, &oft}) {
    const std::size_t kf = knee_index(loads, [&](double l) {
      return run_point(*topo, SimEngine::kFlow, l, ns(200)).accepted_throughput;
    });
    const std::size_t kp = knee_index(loads, [&](double l) {
      return run_point(*topo, SimEngine::kPacket, l).accepted_throughput;
    });
    const std::size_t lo = std::min(kf, kp);
    const std::size_t hi = std::max(kf, kp);
    EXPECT_LE(hi - lo, 1u) << topo->name() << ": flow knee at index " << kf
                           << ", packet knee at index " << kp;
  }
}

TEST(FlowVsPacket, ExchangeCompletionOrderingAgrees) {
  // All-to-all completion times on small SF/MLFM/OFT: the flow engine
  // must rank the three systems the same way the packet engine does
  // (absolute times differ by model — see docs/flow_engine.md).
  const Topology sf = build_slim_fly(5);
  const Topology mlfm = build_mlfm(3);
  const Topology oft = build_oft(4);
  const std::vector<const Topology*> topos{&sf, &mlfm, &oft};
  std::vector<double> flow_us;
  std::vector<double> pkt_us;
  for (const Topology* topo : topos) {
    const ExchangePlan plan = make_all_to_all_plan(topo->num_nodes(), 1024);
    for (const SimEngine eng : {SimEngine::kFlow, SimEngine::kPacket}) {
      SimConfig cfg;
      cfg.engine = eng;
      // Batched ticks: the round-robin plan keeps every message open at
      // once, so exact per-completion recompute would walk the full
      // network-spanning component tens of thousands of times.
      if (eng == SimEngine::kFlow) cfg.flow.rate_interval = ns(200);
      SimStack stack(*topo, RoutingStrategy::kMinimal, cfg);
      const ExchangeResult res = stack.run_exchange(plan, us(40'000));
      ASSERT_TRUE(res.completed) << topo->name();
      (eng == SimEngine::kFlow ? flow_us : pkt_us).push_back(res.completion_us);
    }
  }
  const auto order = [&](const std::vector<double>& v) {
    std::vector<std::size_t> idx{0, 1, 2};
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return v[a] < v[b];
    });
    return idx;
  };
  EXPECT_EQ(order(flow_us), order(pkt_us))
      << "flow: sf=" << flow_us[0] << " mlfm=" << flow_us[1] << " oft=" << flow_us[2]
      << "  pkt: sf=" << pkt_us[0] << " mlfm=" << pkt_us[1] << " oft=" << pkt_us[2];
}

void expect_identical(const OpenLoopResult& a, const OpenLoopResult& b) {
  EXPECT_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_EQ(a.p50_latency_ns, b.p50_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.fraction_minimal, b.fraction_minimal);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.event_digest, b.event_digest);
}

std::vector<SweepSeriesSpec> flow_specs(const Topology& sf, const Topology& oft,
                                        const TrafficPattern& uni_sf,
                                        const TrafficPattern& uni_oft) {
  std::vector<SweepSeriesSpec> specs(3);
  specs[0].label = "SF MIN";
  specs[0].topo = &sf;
  specs[0].strategy = RoutingStrategy::kMinimal;
  specs[0].pattern = &uni_sf;
  specs[0].loads = {0.2, 0.5, 0.9};
  specs[1].label = "SF UGAL";
  specs[1].topo = &sf;
  specs[1].strategy = RoutingStrategy::kUgal;
  specs[1].pattern = &uni_sf;
  specs[1].loads = {0.2, 0.5, 0.9};
  specs[2].label = "OFT INR";
  specs[2].topo = &oft;
  specs[2].strategy = RoutingStrategy::kValiant;
  specs[2].pattern = &uni_oft;
  specs[2].loads = {0.2, 0.5, 0.9};
  return specs;
}

SweepRunOptions flow_opts(std::uint64_t seed) {
  SweepRunOptions opts;
  opts.duration = us(8);
  opts.warmup = us(2);
  opts.config.seed = seed;
  opts.config.engine = SimEngine::kFlow;
  // Batched rate recompute: the 0.9 points sit past the knee, where exact
  // per-event recompute touches a network-spanning bottleneck component.
  opts.config.flow.rate_interval = ns(200);
  opts.config.collect_event_digest = true;
  return opts;
}

TEST(FlowSweep, ParallelJobsMatchSerial) {
  // Flow-engine sweeps under --jobs: every point is an independent
  // simulation, so jobs=4 must reproduce jobs=1 bit-for-bit, event
  // digests included (MIN, UGAL and Valiant cover all route_into paths).
  const Topology sf = build_slim_fly(5);
  const Topology oft = build_oft(4);
  const UniformTraffic uni_sf(sf.num_nodes());
  const UniformTraffic uni_oft(oft.num_nodes());
  const auto specs = flow_specs(sf, oft, uni_sf, uni_oft);

  SweepRunOptions opts = flow_opts(7);
  opts.jobs = 1;
  SweepRunner serial(opts);
  const auto a = serial.run(specs);
  opts.jobs = 4;
  SweepRunner parallel(opts);
  const auto b = parallel.run(specs);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size());
    for (std::size_t l = 0; l < a[s].size(); ++l) {
      EXPECT_EQ(a[s][l].offered, b[s][l].offered);
      expect_identical(a[s][l].result, b[s][l].result);
      EXPECT_NE(a[s][l].result.event_digest, 0u);
    }
  }
}

TEST(FlowSweep, KillMidSweepThenResumeIsByteIdentical) {
  // The durability guarantee under --engine flow: a journaled sweep cut
  // off mid-file (torn final line, what SIGKILL leaves) resumes to
  // byte-identical render_point_json output.
  const Topology sf = build_slim_fly(5);
  const Topology oft = build_oft(4);
  const UniformTraffic uni_sf(sf.num_nodes());
  const UniformTraffic uni_oft(oft.num_nodes());
  const auto specs = flow_specs(sf, oft, uni_sf, uni_oft);
  const std::string manifest = "bench=test_flow\nengine=flow\nseed=9\n";

  const auto journal_opts = [&](SweepJournal* journal) {
    SweepRunOptions opts = flow_opts(9);
    opts.jobs = 2;
    opts.journal = journal;
    opts.scope = "sweep";
    opts.serialize = [](const SweepPoint& pt) { return bench::render_point_json(pt); };
    return opts;
  };
  const auto temp_dir = [](const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("d2net_" + name);
    fs::remove_all(dir);
    return dir.string();
  };

  const std::string dir_a = temp_dir("flow_resume_a");
  SweepJournal ja(dir_a, manifest, false);
  SweepRunner full(journal_opts(&ja));
  const auto ref = full.run(specs);

  const std::string dir_b = temp_dir("flow_resume_b");
  {
    SweepJournal jb(dir_b, manifest, false);
    SweepRunner first(journal_opts(&jb));
    first.run(specs);
  }
  const fs::path jpath = fs::path(dir_b) / "journal.jsonl";
  std::vector<std::string> lines;
  {
    std::ifstream in(jpath);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 9u);
  {
    std::ofstream out(jpath, std::ios::trunc);
    out << lines[0] << "\n" << lines[1] << "\n" << lines[2] << "\n";
    out << "{\"key\": \"sweep#3\", \"lab";  // torn final line, no newline
  }

  SweepJournal jb(dir_b, manifest, true);
  EXPECT_EQ(jb.loaded_points(), 3u);
  SweepRunner resumed(journal_opts(&jb));
  const auto res = resumed.run(specs);
  EXPECT_EQ(resumed.stats().restored_points, 3);

  ASSERT_EQ(res.size(), ref.size());
  for (std::size_t s = 0; s < ref.size(); ++s) {
    ASSERT_EQ(res[s].size(), ref[s].size());
    for (std::size_t l = 0; l < ref[s].size(); ++l) {
      EXPECT_EQ(bench::render_point_json(res[s][l]),
                bench::render_point_json(ref[s][l]))
          << "series " << s << " point " << l;
    }
  }
}

TEST(FlowValidation, RejectsPacketOnlyFeaturesUpFront) {
  const Topology topo = build_slim_fly(5);

  SimConfig fault_cfg;
  fault_cfg.engine = SimEngine::kFlow;
  fault_cfg.fault.schedule.push_back(FaultEvent{us(1), FaultKind::kLinkDown, 0, 1});
  EXPECT_THROW(SimStack(topo, RoutingStrategy::kMinimal, fault_cfg), ArgumentError);

  SimConfig metrics_cfg;
  metrics_cfg.engine = SimEngine::kFlow;
  metrics_cfg.metrics.enabled = true;
  EXPECT_THROW(SimStack(topo, RoutingStrategy::kMinimal, metrics_cfg), ArgumentError);

  SimConfig shards_cfg;
  shards_cfg.engine = SimEngine::kFlow;
  shards_cfg.shards = 2;
  EXPECT_THROW(SimStack(topo, RoutingStrategy::kMinimal, shards_cfg), ArgumentError);

  SimConfig bad_knobs;
  bad_knobs.engine = SimEngine::kFlow;
  bad_knobs.flow.flow_bytes = 0;
  EXPECT_THROW(SimStack(topo, RoutingStrategy::kMinimal, bad_knobs), ArgumentError);
}

std::string parse_error(const std::string& text) {
  try {
    parse_campaign_spec(text, "spec");
  } catch (const ArgumentError& e) {
    return e.what();
  }
  return {};
}

TEST(FlowValidation, CampaignEngineKeyIsStrict) {
  // Unknown engine tokens are located, and engine=flow refuses fault
  // schedules with the offending spec path.
  EXPECT_NE(parse_error(R"({"name": "t", "engine": "quantum",
      "systems": [{"label": "S", "topology": "sf:q=5"}],
      "sweeps": [{"title": "u", "loads": [0.5],
                  "series": [{"routing": "min"}]}]})")
                .find("$.engine"),
            std::string::npos);
  const std::string err = parse_error(R"({"name": "t", "engine": "flow",
      "systems": [{"label": "S", "topology": "sf:q=5"}],
      "sweeps": [{"title": "u", "loads": [0.5],
                  "fault": {"frac": 0.1},
                  "series": [{"routing": "min"}]}]})");
  EXPECT_NE(err.find("$.sweeps[0].fault"), std::string::npos) << err;
  EXPECT_NE(err.find("flow engine"), std::string::npos) << err;

  // The same spec without the fault block parses and carries the engine.
  const CampaignSpec ok = parse_campaign_spec(R"({"name": "t", "engine": "flow",
      "systems": [{"label": "S", "topology": "sf:q=5"}],
      "sweeps": [{"title": "u", "loads": [0.5],
                  "series": [{"routing": "min"}]}]})");
  ASSERT_TRUE(ok.engine.has_value());
  EXPECT_EQ(*ok.engine, SimEngine::kFlow);
}

}  // namespace
}  // namespace d2net
