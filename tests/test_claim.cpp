// Multi-worker campaign claim-protocol tests (see docs/campaigns.md,
// "Distributed campaigns"): the lease codec, claim/steal/heartbeat state
// machine under an injected clock (no sleeping), shard planning over an
// expanded campaign, journal merging with deduplication, and — the
// crash-tolerance contract — an end-to-end two-worker campaign whose
// merged output matches a single-process run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "campaign_worker.h"
#include "common/error.h"
#include "common/journal.h"
#include "common/units.h"
#include "sim/campaign.h"
#include "sim/claim.h"

namespace d2net {
namespace {

namespace fs = std::filesystem;

// Fresh per-test directory under the build tree.
std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("d2net_claim_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// Injected clock over a shared fake "now"; sleep advances it, so TTL
// expiry is driven synchronously.
struct FakeClock {
  double t = 0.0;
  ClaimClock clock() {
    return ClaimClock{[this] { return t; }, [this](double s) { t += s; }};
  }
};

ClaimOptions claim_opts(const std::string& dir, const std::string& worker,
                        FakeClock& fc, double ttl = 10.0) {
  ClaimOptions o;
  o.dir = dir;
  o.worker = worker;
  o.spec_hash = 0xfeedbeefull;
  o.lease_ttl = ttl;
  o.durable = false;  // tests don't need power-loss guarantees
  o.clock = fc.clock();
  return o;
}

// ------------------------------------------------------------ lease codec

TEST(LeaseCodec, RoundTripsAllFields) {
  LeaseRecord in;
  in.worker = "host-3:w\"7\"";  // id with JSON-hostile characters
  in.shard = 42;
  in.spec_hash = 0xdeadbeefcafef00dull;
  in.acquired_at = 1723180000.25;
  in.heartbeat_at = 1723180009.5;
  in.token = 0x123456789abcdef0ull;

  LeaseRecord out;
  ASSERT_TRUE(parse_lease(render_lease(in), out));
  EXPECT_EQ(out.worker, in.worker);
  EXPECT_EQ(out.shard, in.shard);
  EXPECT_EQ(out.spec_hash, in.spec_hash);
  EXPECT_DOUBLE_EQ(out.acquired_at, in.acquired_at);
  EXPECT_DOUBLE_EQ(out.heartbeat_at, in.heartbeat_at);
  EXPECT_EQ(out.token, in.token);
}

TEST(LeaseCodec, RejectsTornOrCorruptInput) {
  LeaseRecord rec;
  rec.worker = "w";
  rec.shard = 1;
  const std::string full = render_lease(rec);
  LeaseRecord out;
  // A worker dying mid-write leaves a prefix: must read as unparseable.
  EXPECT_FALSE(parse_lease(full.substr(0, full.size() / 2), out));
  EXPECT_FALSE(parse_lease("", out));
  EXPECT_FALSE(parse_lease("not json at all", out));
}

// --------------------------------------------------- claim state machine

TEST(ShardClaimerTest, ClaimCompleteLifecycle) {
  const std::string dir = temp_dir("lifecycle");
  FakeClock fc;
  ShardClaimer a(claim_opts(dir, "alpha", fc));

  EXPECT_EQ(a.inspect(0).state, ShardState::kUnclaimed);
  ASSERT_TRUE(a.try_claim(0));
  EXPECT_EQ(a.inspect(0).state, ShardState::kLeased);
  EXPECT_EQ(a.inspect(0).lease.worker, "alpha");
  EXPECT_FALSE(a.is_done(0));

  a.complete(0);
  EXPECT_TRUE(a.is_done(0));
  EXPECT_EQ(a.inspect(0).state, ShardState::kDone);
  // The lease is released with the done marker.
  EXPECT_FALSE(fs::exists(a.lease_path(0)));
  // Completing twice (double execution after a steal race) is harmless.
  a.complete(0);
  // A done shard is never claimed again.
  EXPECT_FALSE(a.try_claim(0));
}

TEST(ShardClaimerTest, SecondClaimerLosesTheRace) {
  const std::string dir = temp_dir("contend");
  FakeClock fc;
  ShardClaimer a(claim_opts(dir, "alpha", fc));
  ShardClaimer b(claim_opts(dir, "beta", fc));

  ASSERT_TRUE(a.try_claim(3));
  EXPECT_FALSE(b.try_claim(3));
  EXPECT_EQ(b.inspect(3).lease.worker, "alpha");
}

TEST(ShardClaimerTest, ConcurrentClaimersPartitionTheShards) {
  const std::string dir = temp_dir("threads");
  constexpr int kShards = 32;
  FakeClock fc;
  std::vector<int> won_a, won_b;
  // Two claimers racing over every shard from two threads: each shard must
  // be won exactly once.
  std::thread ta([&] {
    ShardClaimer a(claim_opts(dir, "alpha", fc));
    for (int s = 0; s < kShards; ++s)
      if (a.try_claim(s)) won_a.push_back(s);
  });
  std::thread tb([&] {
    ShardClaimer b(claim_opts(dir, "beta", fc));
    for (int s = 0; s < kShards; ++s)
      if (b.try_claim(s)) won_b.push_back(s);
  });
  ta.join();
  tb.join();

  std::vector<char> owner(kShards, 0);
  for (int s : won_a) ++owner[static_cast<std::size_t>(s)];
  for (int s : won_b) ++owner[static_cast<std::size_t>(s)];
  for (int s = 0; s < kShards; ++s)
    EXPECT_EQ(owner[static_cast<std::size_t>(s)], 1) << "shard " << s;
}

TEST(ShardClaimerTest, HeartbeatKeepsLeaseFreshAndBlocksSteal) {
  const std::string dir = temp_dir("heartbeat");
  FakeClock fc;
  ShardClaimer a(claim_opts(dir, "alpha", fc));
  ShardClaimer b(claim_opts(dir, "beta", fc));

  ASSERT_TRUE(a.try_claim(0));
  // Just short of the TTL the lease is live: no steal.
  fc.t += 9.0;
  EXPECT_EQ(b.inspect(0).state, ShardState::kLeased);
  EXPECT_FALSE(b.try_steal(0));
  ASSERT_TRUE(a.heartbeat(0));
  // The refresh restarts the staleness window.
  fc.t += 9.0;
  EXPECT_FALSE(b.try_steal(0));
  EXPECT_EQ(b.inspect(0).state, ShardState::kLeased);
}

TEST(ShardClaimerTest, StaleLeaseIsStolenAndOwnerNoticesOnHeartbeat) {
  const std::string dir = temp_dir("steal");
  FakeClock fc;
  ShardClaimer a(claim_opts(dir, "alpha", fc));
  ShardClaimer b(claim_opts(dir, "beta", fc));

  ASSERT_TRUE(a.try_claim(0));
  fc.t += 11.0;  // past the 10s TTL: alpha is presumed dead
  EXPECT_EQ(b.inspect(0).state, ShardState::kStale);
  ASSERT_TRUE(b.try_steal(0));
  EXPECT_EQ(b.inspect(0).state, ShardState::kLeased);
  EXPECT_EQ(b.inspect(0).lease.worker, "beta");
  // The resurrected original owner must learn it lost the shard.
  EXPECT_FALSE(a.heartbeat(0));
  // ... and the thief's lease survives the failed heartbeat untouched.
  EXPECT_EQ(b.inspect(0).lease.worker, "beta");
  ASSERT_TRUE(b.heartbeat(0));
}

TEST(ShardClaimerTest, OnlyOneOfManyStealersWins) {
  const std::string dir = temp_dir("steal_race");
  FakeClock fc;
  ShardClaimer dead(claim_opts(dir, "dead", fc));
  ASSERT_TRUE(dead.try_claim(0));
  fc.t += 20.0;

  int wins = 0;
  for (const char* id : {"s1", "s2", "s3"}) {
    ShardClaimer s(claim_opts(dir, id, fc));
    if (s.try_steal(0)) ++wins;
  }
  EXPECT_EQ(wins, 1);
}

TEST(ShardClaimerTest, RestartedWorkerStealsItsOwnStaleLease) {
  // Same worker id, new process (new token): the restart must be able to
  // take over the lease its previous incarnation left behind.
  const std::string dir = temp_dir("restart");
  FakeClock fc;
  {
    ShardClaimer first(claim_opts(dir, "alpha", fc));
    ASSERT_TRUE(first.try_claim(0));
  }  // process "dies" without completing
  fc.t += 11.0;
  ShardClaimer second(claim_opts(dir, "alpha", fc));
  EXPECT_FALSE(second.try_claim(0));  // lease file still there
  EXPECT_TRUE(second.try_steal(0));
  ASSERT_TRUE(second.heartbeat(0));
}

TEST(ShardClaimerTest, LiveOwnLeaseIsNotStolen) {
  const std::string dir = temp_dir("own_live");
  FakeClock fc;
  ShardClaimer a(claim_opts(dir, "alpha", fc));
  ASSERT_TRUE(a.try_claim(0));
  // A worker scanning for work must never steal the shard it is itself
  // heartbeating, no matter the clock.
  EXPECT_FALSE(a.try_steal(0));
}

TEST(ShardClaimerTest, TornLeaseAgesByMtimeAndBecomesStealable) {
  const std::string dir = temp_dir("torn_lease");
  FakeClock fc;
  ShardClaimer b(claim_opts(dir, "beta", fc, /*ttl=*/0.01));
  {
    std::ofstream out(b.lease_path(0), std::ios::binary);
    out << "{\"worker\": \"al";  // writer died mid-write
  }
  // The file's mtime (real clock) must age the unparseable lease: wait out
  // the tiny TTL in wall time.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(b.inspect(0).state, ShardState::kStale);
  EXPECT_TRUE(b.try_steal(0));
  EXPECT_EQ(b.inspect(0).lease.worker, "beta");
}

TEST(ShardClaimerTest, CrashBetweenClaimAndFirstJournalEntryRecovers) {
  // The narrowest recovery window: a worker claims a shard, then dies
  // before writing a single journal entry. Another worker must steal the
  // lease, execute the shard from scratch and complete it.
  const std::string dir = temp_dir("claim_then_die");
  FakeClock fc;
  {
    ShardClaimer victim(claim_opts(dir, "victim", fc));
    ASSERT_TRUE(victim.try_claim(0));
  }  // SIGKILL: no journal entries, no heartbeats, lease left behind
  fc.t += 11.0;

  ShardClaimer survivor(claim_opts(dir, "survivor", fc));
  ASSERT_TRUE(survivor.try_steal(0));
  // "Execute" the shard: the survivor records the point in its own journal.
  {
    SweepJournal j(dir + "/workers/survivor", "manifest", /*resume=*/false);
    j.register_scope("s");
    JournalEntry e;
    e.key = "s#0";
    e.label = "L";
    e.topo = "r=1,n=1,l=1";
    e.seed = 7;
    e.status = "ok";
    e.payload = "{}";
    j.append(e);
  }
  survivor.complete(0);
  EXPECT_TRUE(survivor.is_done(0));

  // Merging sees the survivor's record; nothing is missing.
  SweepJournal top(dir, "manifest", /*resume=*/false);
  const CampaignMergeStats stats = merge_worker_journals(dir, {{"s", 1}});
  EXPECT_EQ(stats.expected, 1u);
  EXPECT_EQ(stats.merged, 1u);
  EXPECT_EQ(stats.missing, 0u);
}

TEST(ShardClaimerTest, PinPlanFirstWinsAndMismatchIsLoud) {
  const std::string dir = temp_dir("pin_plan");
  FakeClock fc;
  ShardClaimer a(claim_opts(dir, "alpha", fc));
  a.pin_plan(6, 2);
  // Same plan: fine (every later worker re-pins on startup).
  ShardClaimer b(claim_opts(dir, "beta", fc));
  b.pin_plan(6, 2);
  // Different shard geometry over one journal would corrupt the campaign.
  EXPECT_THROW(b.pin_plan(5, 2), ArgumentError);
  EXPECT_THROW(b.pin_plan(6, 3), ArgumentError);
  // A different campaign (spec hash) must not share the lease directory.
  ClaimOptions other = claim_opts(dir, "gamma", fc);
  other.spec_hash = 0x1234;
  ShardClaimer c(other);
  EXPECT_THROW(c.pin_plan(6, 2), ArgumentError);
}

TEST(ShardClaimerTest, BackoffIsBoundedExponential) {
  const std::string dir = temp_dir("backoff");
  FakeClock fc;
  ShardClaimer a(claim_opts(dir, "alpha", fc, /*ttl=*/30.0));
  EXPECT_DOUBLE_EQ(a.next_backoff(), 0.05);
  EXPECT_DOUBLE_EQ(a.next_backoff(), 0.1);
  EXPECT_DOUBLE_EQ(a.next_backoff(), 0.2);
  double last = 0.0;
  for (int i = 0; i < 20; ++i) last = a.next_backoff();
  EXPECT_DOUBLE_EQ(last, 2.0);  // capped at min(2, TTL)
  a.reset_backoff();
  EXPECT_DOUBLE_EQ(a.next_backoff(), 0.05);

  // With a TTL below the 2s cap, the TTL caps the backoff: waiting longer
  // than the staleness window would delay steals pointlessly.
  ShardClaimer b(claim_opts(dir, "beta", fc, /*ttl=*/0.5));
  double cap = 0.0;
  for (int i = 0; i < 20; ++i) cap = b.next_backoff();
  EXPECT_DOUBLE_EQ(cap, 0.5);
}

// --------------------------------------------------------- shard planning

CampaignSpec mini_spec() {
  const std::string text = R"({
    "name": "claim_mini",
    "systems": [{"label": "SF q=5", "topology": "sf:q=5"}],
    "sweeps": [
      {"title": "mini sweep", "traffic": "uniform", "loads": [0.3, 0.5],
       "series": [{"routing": "min"}]},
      {"title": "mini exchange", "kind": "exchange", "bytes_per_pair": 64,
       "order": "shuffled", "time_limit_us": 5000000,
       "series": [{"routing": "min"}]}
    ]
  })";
  return parse_campaign_spec(text, "<test>");
}

TEST(ShardPlanning, ShardsNeverSpanStepsAndCoverEveryPoint) {
  const CampaignSpec spec = mini_spec();
  const CampaignParams params{false, 1, us(4.0), us(1.0)};
  const ExpandedCampaign plan = expand_campaign(spec, params);

  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(step_point_count(plan.steps[0]), 2u);  // 1 series x 2 loads
  EXPECT_EQ(step_point_count(plan.steps[1]), 1u);  // 1 exchange row

  const std::vector<CampaignScope> scopes = campaign_scopes(plan);
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_EQ(scopes[0].scope, "mini sweep");
  EXPECT_EQ(scopes[0].points, 2u);
  EXPECT_EQ(scopes[1].scope,
            exchange_table_title("mini exchange", 64, A2aOrder::kShuffled));
  EXPECT_EQ(scopes[1].points, 1u);

  const std::vector<CampaignShard> shards = plan_campaign_shards(plan, 1);
  ASSERT_EQ(shards.size(), 3u);
  for (std::size_t i = 0; i < shards.size(); ++i)
    EXPECT_EQ(shards[i].id, static_cast<int>(i));
  EXPECT_EQ(shards[0].step, 0u);
  EXPECT_EQ(shards[1].step, 0u);
  EXPECT_EQ(shards[2].step, 1u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 1u);
  EXPECT_EQ(shards[1].begin, 1u);
  EXPECT_EQ(shards[1].end, 2u);

  // A shard size that doesn't divide a step still never spans steps: the
  // sweep step's last shard is simply short.
  const std::vector<CampaignShard> wide = plan_campaign_shards(plan, 100);
  ASSERT_EQ(wide.size(), 2u);
  EXPECT_EQ(wide[0].step, 0u);
  EXPECT_EQ(wide[0].end, 2u);
  EXPECT_EQ(wide[1].step, 1u);
  EXPECT_EQ(wide[1].end, 1u);
}

// ----------------------------------------------------------------- merge

JournalEntry make_entry(const std::string& key, const std::string& status,
                        double throughput = 0.5) {
  JournalEntry e;
  e.key = key;
  e.label = "L";
  e.topo = "r=1,n=1,l=1";
  e.seed = 7;
  e.status = status;
  e.throughput = throughput;
  if (status == "failed")
    e.error = "boom";
  else
    e.payload = "{\"x\": 1}";
  return e;
}

void write_worker_journal(const std::string& dir, const std::string& worker,
                          const std::string& manifest,
                          const std::vector<JournalEntry>& entries) {
  SweepJournal j(dir + "/workers/" + worker, manifest, /*resume=*/false,
                 JournalOptions{false, worker});
  j.register_scope("s");
  for (const JournalEntry& e : entries) j.append(e);
}

TEST(MergeWorkerJournals, DeduplicatesWithCompletedWinning) {
  const std::string dir = temp_dir("merge_dedup");
  const std::string manifest = "m";
  { SweepJournal top(dir, manifest, /*resume=*/false); }

  // alpha ran s#0 ok and s#1 failed; beta double-executed s#0 (steal race)
  // and re-ran s#1 successfully, plus s#2.
  write_worker_journal(dir, "alpha", manifest,
                       {make_entry("s#0", "ok"), make_entry("s#1", "failed")});
  write_worker_journal(dir, "beta", manifest,
                       {make_entry("s#0", "ok"), make_entry("s#1", "ok"),
                        make_entry("s#2", "timed_out")});

  const CampaignMergeStats stats = merge_worker_journals(dir, {{"s", 3}});
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.expected, 3u);
  EXPECT_EQ(stats.merged, 3u);
  EXPECT_EQ(stats.missing, 0u);
  EXPECT_EQ(stats.duplicates, 2u);  // s#0 and s#1 each recorded twice
  EXPECT_EQ(stats.failed, 0u);

  // The merged journal holds every key once, in expansion order, with the
  // deterministic winner: completed beats failed, ties go to the
  // lexicographically-first worker.
  std::ifstream in(dir + "/journal.jsonl");
  std::string line;
  std::vector<JournalEntry> merged;
  while (std::getline(in, line)) {
    JournalEntry e;
    ASSERT_TRUE(SweepJournal::parse_line(line, e)) << line;
    merged.push_back(e);
  }
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, "s#0");
  EXPECT_EQ(merged[0].worker, "alpha");  // tie between two "ok" copies
  EXPECT_EQ(merged[1].key, "s#1");
  EXPECT_EQ(merged[1].worker, "beta");  // "ok" beats alpha's "failed"
  EXPECT_EQ(merged[1].status, "ok");
  EXPECT_EQ(merged[2].key, "s#2");
  EXPECT_EQ(merged[2].status, "timed_out");
}

TEST(MergeWorkerJournals, KeepsFailedEntriesAndCountsMissing) {
  const std::string dir = temp_dir("merge_missing");
  const std::string manifest = "m";
  { SweepJournal top(dir, manifest, /*resume=*/false); }
  // Only 2 of 4 expected points recorded; one of them permanently failed.
  write_worker_journal(dir, "alpha", manifest,
                       {make_entry("s#1", "failed"), make_entry("s#3", "ok")});

  const CampaignMergeStats stats = merge_worker_journals(dir, {{"s", 4}});
  EXPECT_EQ(stats.expected, 4u);
  EXPECT_EQ(stats.merged, 2u);
  EXPECT_EQ(stats.missing, 2u);
  EXPECT_EQ(stats.duplicates, 0u);
  // Failed points are merged, not dropped: the post-merge resume run
  // re-executes them exactly as a solo --resume would.
  EXPECT_EQ(stats.failed, 1u);
}

TEST(MergeWorkerJournals, RejectsWorkerWithMismatchedManifest) {
  const std::string dir = temp_dir("merge_mismatch");
  { SweepJournal top(dir, "campaign config A", /*resume=*/false); }
  write_worker_journal(dir, "alpha", "campaign config A", {make_entry("s#0", "ok")});
  write_worker_journal(dir, "rogue", "campaign config B", {make_entry("s#1", "ok")});
  EXPECT_THROW(merge_worker_journals(dir, {{"s", 2}}), ArgumentError);
}

TEST(MergeWorkerJournals, RequiresTopManifestAndWorkers) {
  const std::string dir = temp_dir("merge_empty");
  fs::create_directories(dir);
  EXPECT_THROW(merge_worker_journals(dir, {{"s", 1}}), ArgumentError);
  { SweepJournal top(dir, "m", /*resume=*/false); }
  EXPECT_THROW(merge_worker_journals(dir, {{"s", 1}}), ArgumentError);
}

// ----------------------------------------------- end-to-end two workers

// Strips the fields that legitimately differ between two executions of the
// same deterministic campaign (wall-clock timing) before comparing output.
std::string normalize_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  static const std::regex kTiming(
      "\"(wall_seconds|events_per_second)\": [-0-9.e+]+");
  return std::regex_replace(os.str(), kTiming, "\"$1\": X");
}

TEST(DistributedCampaign, TwoWorkersMergeByteIdenticalToSolo) {
  const CampaignSpec spec = mini_spec();
  bench::BenchOptions opts;
  opts.duration = us(4.0);
  opts.warmup = us(1.0);
  opts.seed = 1;
  opts.jobs = 1;
  const CampaignParams params{opts.full, opts.seed, opts.duration, opts.warmup};
  const ExpandedCampaign plan = expand_campaign(spec, params);
  const std::string extra = "spec=<test>\n";

  // Reference: one process, one journal.
  const std::string solo_dir = temp_dir("e2e_solo");
  const std::string solo_json = solo_dir + ".json";
  bench::BenchOptions solo = opts;
  solo.journal_dir = solo_dir;
  solo.json_path = solo_json;
  ASSERT_EQ(bench::execute_campaign(spec, plan, solo, extra), 0);

  // Two cooperating workers over one shared journal directory.
  const std::string dist_dir = temp_dir("e2e_dist");
  auto worker = [&](const std::string& id) {
    bench::BenchOptions w = opts;
    w.journal_dir = dist_dir;
    w.journal_durable = true;
    w.journal_worker = id;
    bench::CampaignWorkerOptions wopts;
    wopts.workers = 2;
    wopts.worker_id = id;
    wopts.lease_ttl = 60.0;  // no steals expected in a healthy run
    wopts.shard_points = 1;
    EXPECT_EQ(bench::run_campaign_worker(spec, plan, w, extra, wopts), 0);
  };
  std::thread t1(worker, "alpha");
  std::thread t2(worker, "beta");
  t1.join();
  t2.join();

  const CampaignMergeStats stats =
      merge_worker_journals(dist_dir, campaign_scopes(plan));
  EXPECT_EQ(stats.expected, 3u);
  EXPECT_EQ(stats.merged, 3u);
  EXPECT_EQ(stats.missing, 0u);
  EXPECT_EQ(stats.failed, 0u);

  // Presenting the merged journal through the ordinary resume path must
  // reproduce the solo run's JSON byte-for-byte (modulo wall-clock
  // timing) — the determinism contract of the whole protocol.
  const std::string merged_json = dist_dir + ".json";
  bench::BenchOptions merged = opts;
  merged.journal_dir = dist_dir;
  merged.resume = true;
  merged.json_path = merged_json;
  ASSERT_EQ(bench::execute_campaign(spec, plan, merged, extra), 0);
  EXPECT_EQ(normalize_json(solo_json), normalize_json(merged_json));
}

}  // namespace
}  // namespace d2net
