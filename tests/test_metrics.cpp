// Observability-layer tests: run-phase accounting, the warmup-window
// latency filter, the perturbation-free guarantee of detailed metrics, and
// the per-port/VC instrumentation itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "sim/experiment.h"
#include "sim/network.h"
#include "sim/traffic.h"
#include "topology/mlfm.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

SimConfig base_config(bool metrics) {
  SimConfig cfg;  // paper defaults: 100 Gb/s, 50 ns links, 100 ns routers
  cfg.seed = 11;
  cfg.metrics.enabled = metrics;
  cfg.metrics.sample_period = us(0.5);
  return cfg;
}

// ------------------------------------------------- measurement-window fix

TEST(MeasurementWindow, CarryoverDeliveriesExcludedFromLatencyStats) {
  // At 70% load a warmup boundary always cuts through in-flight packets:
  // some are generated before the window opens and delivered inside it.
  // The packet trace records every in-window delivery with its gen_time,
  // so it is ground truth for what the latency statistics should count.
  const Topology topo = build_mlfm(4);
  SimStack stack(topo, RoutingStrategy::kMinimal, base_config(false));
  PacketTraceSink trace;
  stack.sim().set_trace(&trace);
  const UniformTraffic uni(topo.num_nodes());
  const TimePs warmup = us(4);
  const OpenLoopResult r = stack.run_open_loop(uni, 0.7, us(16), warmup);

  ASSERT_EQ(trace.dropped(), 0);
  std::int64_t carryover = 0;
  std::int64_t window_born = 0;
  for (const PacketTraceEntry& e : trace.entries()) {
    ++(e.gen_time < warmup ? carryover : window_born);
  }
  ASSERT_GT(carryover, 0) << "scenario must exercise warmup-born deliveries";
  ASSERT_GT(window_born, 0);
  // The core regression: packets_measured counts only window-born packets.
  EXPECT_EQ(r.packets_measured, window_born);
  EXPECT_EQ(r.phases.delivered_measured, window_born);
  EXPECT_EQ(r.phases.delivered_carryover, carryover);
}

TEST(RunPhases, AccountingIdentitiesHold) {
  const Topology topo = build_slim_fly(5);
  SimStack stack(topo, RoutingStrategy::kMinimal, base_config(false));
  const UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.6, us(12), us(3));
  const RunPhaseBreakdown& ph = r.phases;

  EXPECT_GT(ph.injected_warmup, 0);
  EXPECT_GT(ph.injected_measured, 0);
  EXPECT_GT(ph.delivered_warmup, 0);
  EXPECT_GT(ph.delivered_measured, 0);
  EXPECT_EQ(ph.injected_warmup + ph.injected_measured, r.packets_injected);
  // Every injected packet is delivered in exactly one phase or still in
  // flight when the run stops.
  EXPECT_EQ(ph.delivered_warmup + ph.delivered_measured + ph.delivered_carryover +
                ph.in_flight_at_end,
            r.packets_injected);
  EXPECT_EQ(ph.delivered_measured, r.packets_measured);
}

// -------------------------------------------- perturbation-free guarantee

TEST(Metrics, EnablingDoesNotPerturbResults) {
  // Same topology, seed and workload; one run with full instrumentation,
  // one without. Every core result field must be bit-identical — the
  // instrumentation must not touch the RNG or the event order. UGAL is the
  // most sensitive strategy here because it reads live queue state.
  const Topology topo = build_slim_fly(5);
  const UniformTraffic uni(topo.num_nodes());
  SimStack plain(topo, RoutingStrategy::kUgal, base_config(false));
  SimStack instrumented(topo, RoutingStrategy::kUgal, base_config(true));
  const OpenLoopResult a = plain.run_open_loop(uni, 0.8, us(12), us(3));
  const OpenLoopResult b = instrumented.run_open_loop(uni, 0.8, us(12), us(3));

  EXPECT_EQ(a.packets_injected, b.packets_injected);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_DOUBLE_EQ(a.p50_latency_ns, b.p50_latency_ns);
  EXPECT_DOUBLE_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_DOUBLE_EQ(a.avg_hops, b.avg_hops);
  EXPECT_DOUBLE_EQ(a.fraction_minimal, b.fraction_minimal);
  EXPECT_DOUBLE_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.phases.injected_warmup, b.phases.injected_warmup);
  EXPECT_EQ(a.phases.injected_measured, b.phases.injected_measured);
  EXPECT_EQ(a.phases.delivered_warmup, b.phases.delivered_warmup);
  EXPECT_EQ(a.phases.delivered_measured, b.phases.delivered_measured);
  EXPECT_EQ(a.phases.delivered_carryover, b.phases.delivered_carryover);
  EXPECT_EQ(a.phases.in_flight_at_end, b.phases.in_flight_at_end);
  // The detail block only exists on the instrumented run.
  EXPECT_EQ(a.metrics, nullptr);
  ASSERT_NE(b.metrics, nullptr);
}

// ------------------------------------------------ per-port/VC accounting

TEST(Metrics, PortAndVcAccountingIsConsistent) {
  const Topology topo = build_slim_fly(5);
  SimStack stack(topo, RoutingStrategy::kValiant, base_config(true));
  const UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.5, us(12), us(3));
  ASSERT_NE(r.metrics, nullptr);
  const SimMetrics& m = *r.metrics;

  // Network ports must agree exactly with channel_stats(), which gates its
  // byte counts at the same grant point.
  const auto chans = stack.sim().channel_stats();
  std::vector<const PortMetrics*> net_ports;
  std::int64_t ejected_packets = 0;
  for (const PortMetrics& pm : m.ports) {
    if (pm.peer_router >= 0) {
      net_ports.push_back(&pm);
    } else {
      ASSERT_GE(pm.peer_node, 0);
      ejected_packets += pm.packets_forwarded;
    }
    std::int64_t vc_packets = 0;
    std::int64_t vc_bytes = 0;
    std::int64_t vc_routed = 0;
    for (const VcMetrics& vm : pm.vcs) {
      vc_packets += vm.packets;
      vc_bytes += vm.bytes;
      vc_routed += vm.minimal_packets + vm.indirect_packets;
    }
    EXPECT_EQ(vc_packets, pm.packets_forwarded);
    EXPECT_EQ(vc_bytes, pm.bytes_forwarded);
    EXPECT_EQ(vc_routed, pm.packets_forwarded);
  }
  ASSERT_EQ(net_ports.size(), chans.size());
  for (std::size_t i = 0; i < chans.size(); ++i) {
    EXPECT_EQ(net_ports[i]->router, chans[i].router);
    EXPECT_EQ(net_ports[i]->peer_router, chans[i].neighbor);
    EXPECT_EQ(net_ports[i]->bytes_forwarded, chans[i].bytes);
  }
  // INR routes every packet through an intermediate, so both route classes
  // and more than one VC must show traffic.
  std::int64_t minimal = 0;
  std::int64_t indirect = 0;
  int vcs_used = 0;
  std::vector<std::int64_t> by_vc;
  for (const PortMetrics& pm : m.ports) {
    if (by_vc.size() < pm.vcs.size()) by_vc.resize(pm.vcs.size());
    for (std::size_t v = 0; v < pm.vcs.size(); ++v) {
      minimal += pm.vcs[v].minimal_packets;
      indirect += pm.vcs[v].indirect_packets;
      by_vc[v] += pm.vcs[v].packets;
    }
  }
  for (std::int64_t n : by_vc) vcs_used += n > 0 ? 1 : 0;
  EXPECT_GT(indirect, 0);
  EXPECT_GT(vcs_used, 1);
  // Ejection ports see every in-window delivery granted to a NIC.
  EXPECT_GT(ejected_packets, 0);

  // Registry scalars.
  const MetricsRegistry::Counter* grants = m.registry.find_counter("grants");
  ASSERT_NE(grants, nullptr);
  EXPECT_GT(grants->value, 0);
  const MetricsRegistry::Counter* samples = m.registry.find_counter("occupancy_samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_EQ(samples->value, static_cast<std::int64_t>(m.occupancy.size()));
  const LogHistogram* carry = m.registry.find_histogram("carryover_latency_ns");
  ASSERT_NE(carry, nullptr);
  EXPECT_EQ(carry->count(), m.phases.delivered_carryover);
}

TEST(Metrics, OccupancySeriesCoversTheRun) {
  const Topology topo = build_mlfm(4);
  SimConfig cfg = base_config(true);
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  const UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.6, us(12), us(3));
  ASSERT_NE(r.metrics, nullptr);
  const SimMetrics& m = *r.metrics;
  ASSERT_FALSE(m.occupancy.empty());
  EXPECT_EQ(m.sample_period, cfg.metrics.sample_period);
  EXPECT_EQ(m.occupancy.front().time, cfg.metrics.sample_period);
  for (std::size_t i = 1; i < m.occupancy.size(); ++i) {
    EXPECT_EQ(m.occupancy[i].time - m.occupancy[i - 1].time, cfg.metrics.sample_period);
  }
  EXPECT_LE(m.occupancy.back().time, us(12));
  // Ticks cover the whole run: floor(duration / period) of them.
  EXPECT_EQ(static_cast<std::int64_t>(m.occupancy.size()), us(12) / cfg.metrics.sample_period);
  // At 60% load the network holds traffic at some sampled instant.
  std::int64_t peak = 0;
  for (const OccupancySample& s : m.occupancy) {
    peak = std::max(peak, s.buffered_bytes);
    EXPECT_GE(s.buffered_bytes, 0);
  }
  EXPECT_GT(peak, 0);
}

TEST(Metrics, CreditStallTimeAccruesUnderAdversarialSaturation) {
  // Worst-case traffic at full load drives the hot channels into credit
  // back-pressure, so some port must accumulate stall time.
  const Topology topo = build_slim_fly(5);
  const MinimalTable table(topo);
  Rng rng(3);
  const auto wc = make_worst_case(topo, table, rng);
  SimStack stack(topo, RoutingStrategy::kMinimal, base_config(true));
  const OpenLoopResult r = stack.run_open_loop(*wc, 1.0, us(12), us(3));
  ASSERT_NE(r.metrics, nullptr);

  TimePs total_stall = 0;
  for (const PortMetrics& pm : r.metrics->ports) {
    EXPECT_GE(pm.credit_stall_ps, 0);
    total_stall += pm.credit_stall_ps;
  }
  EXPECT_GT(total_stall, 0);
  const MetricsRegistry::Counter* skips =
      r.metrics->registry.find_counter("credit_blocked_skips");
  ASSERT_NE(skips, nullptr);
  EXPECT_GT(skips->value, 0);
}

TEST(Metrics, ExchangeRunExportsMetrics) {
  const Topology topo = build_mlfm(4);
  SimStack off(topo, RoutingStrategy::kMinimal, base_config(false));
  SimStack on(topo, RoutingStrategy::kMinimal, base_config(true));
  const ExchangePlan plan = make_all_to_all_plan(topo.num_nodes(), 4096);
  const ExchangeResult a = off.run_exchange(plan, us(2000));
  const ExchangeResult b = on.run_exchange(plan, us(2000));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.metrics, nullptr);
  ASSERT_NE(b.metrics, nullptr);
  // Bit-identical core results with metrics enabled.
  EXPECT_DOUBLE_EQ(a.completion_us, b.completion_us);
  EXPECT_DOUBLE_EQ(a.effective_throughput, b.effective_throughput);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_GT(b.metrics->occupancy.size(), 0u);
}

}  // namespace
}  // namespace d2net
