// Tests for the generic SPT / SSPT construction (paper Section 2.2.2) and
// its relationship to the MLFM (r2 = 2) and OFT (r2 = r1) instances.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "sim/experiment.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/properties.h"
#include "topology/spec.h"
#include "topology/sspt.h"

namespace d2net {
namespace {

// ---------------------------------------------------------------- patterns

TEST(SptPattern, MeshPatternIsValid) {
  for (int r1 : {2, 3, 5, 8, 15}) {
    const SptPattern p = make_spt_pattern_mesh(r1);
    EXPECT_EQ(p.num_l1, r1 + 1);
    EXPECT_EQ(p.num_l2, r1 * (r1 + 1) / 2);
    EXPECT_TRUE(spt_pattern_is_valid(p)) << r1;
  }
}

TEST(SptPattern, Ml3bPatternIsValid) {
  for (int k : {3, 4, 5, 6, 8, 12}) {
    const SptPattern p = make_spt_pattern_ml3b(k);
    EXPECT_EQ(p.num_l1, k * k - k + 1);
    EXPECT_EQ(p.num_l2, p.num_l1);
    EXPECT_TRUE(spt_pattern_is_valid(p)) << k;
  }
}

TEST(SptPattern, ValidityCatchesBrokenPatterns) {
  SptPattern p = make_spt_pattern_mesh(4);
  auto broken = p;
  std::swap(broken.uplinks[0][0], broken.uplinks[0][1]);  // still valid (order-free)
  EXPECT_TRUE(spt_pattern_is_valid(broken));
  broken = p;
  broken.uplinks[0][0] = broken.uplinks[0][1];  // duplicate in a row
  EXPECT_FALSE(spt_pattern_is_valid(broken));
  broken = p;
  // Rows 0 and 1 already share their pair-(0,1) router; adding row 0's
  // second entry to row 1 makes the intersection 2 and skews degrees.
  broken.uplinks[1][1] = broken.uplinks[0][1];
  EXPECT_FALSE(spt_pattern_is_valid(broken));
}

// --------------------------------------------------------------------- SPT

TEST(Spt, SinglePathBetweenAllLevelOnePairs) {
  for (const SptPattern& p : {make_spt_pattern_mesh(5), make_spt_pattern_ml3b(4)}) {
    const Topology topo = build_spt(p);
    const auto counts = shortest_path_counts(topo);
    const int n = topo.num_routers();
    for (int i = 0; i < p.num_l1; ++i) {
      for (int j = 0; j < p.num_l1; ++j) {
        if (i == j) continue;
        EXPECT_EQ(counts[static_cast<std::size_t>(i) * n + j], 1)
            << topo.name() << " " << i << "," << j;
      }
    }
    const DistanceMatrix dist = all_pairs_distances(topo);
    EXPECT_EQ(node_diameter(topo, dist), 2);
  }
}

TEST(Spt, ScaleMatchesFormula) {
  for (const SptPattern& p : {make_spt_pattern_mesh(6), make_spt_pattern_ml3b(5)}) {
    const Topology topo = build_spt(p);
    // N = p * R1 with p = r1: N = r1 * (1 + r1*(r2-1)) + ... endpoints only.
    EXPECT_EQ(topo.num_nodes(), p.r1 * (1 + p.r1 * (p.r2 - 1)));
    // 3 ports and 2 links per endpoint (Section 2.2.2).
    EXPECT_NEAR(topo.ports_per_node(), 3.0, 1e-9);
    EXPECT_NEAR(topo.links_per_node(), 2.0, 1e-9);
  }
}

// -------------------------------------------------------------------- SSPT

TEST(Sspt, StackedMeshMatchesMlfm) {
  // SSPT(mesh(h), s = h) must be structurally identical to the h-MLFM.
  const int h = 5;
  const Topology sspt = build_sspt(make_spt_pattern_mesh(h));
  const Topology mlfm = build_mlfm(h);
  EXPECT_EQ(sspt.num_nodes(), mlfm.num_nodes());
  EXPECT_EQ(sspt.num_routers(), mlfm.num_routers());
  EXPECT_EQ(sspt.num_links(), mlfm.num_links());
  const DistanceMatrix da = all_pairs_distances(sspt);
  const DistanceMatrix db = all_pairs_distances(mlfm);
  EXPECT_EQ(node_diameter(sspt, da), node_diameter(mlfm, db));
  EXPECT_NEAR(average_distance(da), average_distance(db), 1e-9);
  const PathDiversityStats pa = path_diversity_at_distance(sspt, 2);
  const PathDiversityStats pb = path_diversity_at_distance(mlfm, 2);
  EXPECT_EQ(pa.pairs, pb.pairs);
  EXPECT_NEAR(pa.mean, pb.mean, 1e-9);
  EXPECT_EQ(pa.max, pb.max);
}

TEST(Sspt, StackedMl3bMatchesOft) {
  const int k = 5;
  const Topology sspt = build_sspt(make_spt_pattern_ml3b(k));  // s = 2
  const Topology oft = build_oft(k);
  EXPECT_EQ(sspt.num_nodes(), oft.num_nodes());
  EXPECT_EQ(sspt.num_routers(), oft.num_routers());
  EXPECT_EQ(sspt.num_links(), oft.num_links());
  const PathDiversityStats pa = path_diversity_at_distance(sspt, 2);
  const PathDiversityStats pb = path_diversity_at_distance(oft, 2);
  EXPECT_EQ(pa.pairs, pb.pairs);
  EXPECT_NEAR(pa.mean, pb.mean, 1e-9);
  EXPECT_EQ(pa.max, pb.max);
}

TEST(Sspt, ScaleMatchesPaperFormula) {
  // N = r^3/4 * (r2-1)/r2 + r^2/(2*r2), r = 2*r1 (Section 2.2.2).
  for (const SptPattern& p : {make_spt_pattern_mesh(6), make_spt_pattern_ml3b(6)}) {
    const Topology topo = build_sspt(p);
    const double r = 2.0 * p.r1;
    const double expected =
        r * r * r / 4.0 * (p.r2 - 1) / p.r2 + r * r / (2.0 * p.r2);
    EXPECT_DOUBLE_EQ(static_cast<double>(topo.num_nodes()), expected) << topo.name();
  }
}

TEST(Sspt, SingleRadixAfterStacking) {
  const Topology topo = build_sspt(make_spt_pattern_mesh(6));
  for (int r = 0; r < topo.num_routers(); ++r) {
    EXPECT_EQ(topo.network_degree(r) + topo.endpoints_of(r), 2 * 6);
  }
}

TEST(Sspt, CounterpartPairsHaveR1Diversity) {
  // Corresponding level-one routers in different copies share all their
  // (merged) level-two neighbors: path diversity r1; all other pairs 1.
  const SptPattern p = make_spt_pattern_ml3b(4);
  const Topology topo = build_sspt(p);  // 2 copies
  const auto counts = shortest_path_counts(topo);
  const int n = topo.num_routers();
  auto paths = [&](int a, int b) { return counts[static_cast<std::size_t>(a) * n + b]; };
  EXPECT_EQ(paths(0, p.num_l1 + 0), p.r1);
  EXPECT_EQ(paths(2, p.num_l1 + 2), p.r1);
  EXPECT_EQ(paths(0, p.num_l1 + 1), 1);
  EXPECT_EQ(paths(0, 1), 1);
}

TEST(Sspt, CustomCopyCountAndEndpoints) {
  const Topology topo = build_sspt(make_spt_pattern_mesh(4), /*copies=*/2, /*endpoints=*/3);
  EXPECT_EQ(topo.num_nodes(), 2 * 5 * 3);
  // Same structure as the (4,2,3)-MLFM.
  const Topology mlfm = build_mlfm(4, 2, 3);
  EXPECT_EQ(topo.num_routers(), mlfm.num_routers());
  EXPECT_EQ(topo.num_links(), mlfm.num_links());
}

TEST(Sspt, RejectsNonDivisibleStacking) {
  // 2*r1/r2 must be integral for single-radix stacking; r1 = 4, r2 = 3 has
  // no valid mesh/ML3B pattern anyway, so emulate via explicit copies.
  const SptPattern p = make_spt_pattern_mesh(4);
  EXPECT_THROW(build_sspt(p, 0), ArgumentError);
}

TEST(Sspt, GenericInstanceRunsThroughTheFullStack) {
  // An SSPT that is NEITHER the MLFM nor the OFT: stack three copies of
  // the mesh SPT (r1 = 6, r2 = 2 would give s = 6; force s = 3). The
  // routing, VC and simulation machinery must handle it like any SSPT.
  const Topology topo = build_sspt(make_spt_pattern_mesh(6), /*copies=*/3);
  const MinimalTable table(topo);
  const DistanceMatrix dist = all_pairs_distances(topo);
  EXPECT_EQ(node_diameter(topo, dist), 2);

  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kUgalThreshold, cfg);
  UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.5, us(16), us(4));
  EXPECT_NEAR(r.accepted_throughput, 0.5, 0.03);
}

TEST(Sspt, SpecBuildsSspt) {
  const Topology t = build_topology_from_spec("sspt:r1=4,r2=2");
  EXPECT_EQ(t.num_nodes(), build_mlfm(4).num_nodes());
  const Topology t2 = build_topology_from_spec("sspt:r1=4,r2=4");
  EXPECT_EQ(t2.num_nodes(), build_oft(4).num_nodes());
  EXPECT_THROW(build_topology_from_spec("sspt:r1=6,r2=3"), ArgumentError);
}

}  // namespace
}  // namespace d2net
