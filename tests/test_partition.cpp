// Tests for the multilevel bisection partitioner and the bisection-
// bandwidth estimator, including the paper's Fig. 4 expectations.
#include <gtest/gtest.h>

#include <array>

#include "common/error.h"
#include "partition/bisection_bandwidth.h"
#include "partition/partitioner.h"
#include "topology/fat_tree.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

CsrGraph ring(int n) {
  std::vector<std::array<int, 3>> edges;
  for (int i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n, 1});
  return make_csr(n, edges, std::vector<int>(n, 1));
}

CsrGraph grid(int rows, int cols) {
  std::vector<std::array<int, 3>> edges;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1), 1});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c), 1});
    }
  }
  return make_csr(rows * cols, edges, std::vector<int>(rows * cols, 1));
}

TEST(Csr, MergesParallelEdgesAndIsSymmetric) {
  const CsrGraph g = make_csr(3, {{0, 1, 2}, {1, 0, 3}, {1, 2, 1}}, {1, 1, 1});
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  // Merged weight 5 on edge (0,1).
  for (int e = g.xadj[0]; e < g.xadj[1]; ++e) {
    EXPECT_EQ(g.adjncy[e], 1);
    EXPECT_EQ(g.adjwgt[e], 5);
  }
}

TEST(Csr, RejectsBadEdges) {
  EXPECT_THROW(make_csr(2, {{0, 0, 1}}, {1, 1}), ArgumentError);
  EXPECT_THROW(make_csr(2, {{0, 5, 1}}, {1, 1}), ArgumentError);
}

TEST(Partitioner, RingCutIsTwo) {
  // Any balanced bisection of an even ring cuts exactly 2 edges.
  const BisectionResult r = bisect(ring(64));
  EXPECT_EQ(r.cut_weight, 2);
  EXPECT_EQ(r.weight[0] + r.weight[1], 64);
  EXPECT_LE(std::abs(r.weight[0] - r.weight[1]), 2);
  EXPECT_EQ(cut_weight(ring(64), r.side), r.cut_weight);
}

TEST(Partitioner, GridCutNearOneSideLength) {
  // The optimal bisection of an 8x8 grid cuts 8 edges (a straight line);
  // the FM heuristic is allowed a small margin above the optimum.
  const BisectionResult r = bisect(grid(8, 8));
  EXPECT_GE(r.cut_weight, 8);
  EXPECT_LE(r.cut_weight, 12);
  EXPECT_LE(std::abs(r.weight[0] - r.weight[1]), 2);
}

TEST(Partitioner, TwoCliquesWithBridge) {
  // Two 16-cliques joined by one edge: optimum cut = 1.
  std::vector<std::array<int, 3>> edges;
  for (int side = 0; side < 2; ++side) {
    const int base = side * 16;
    for (int i = 0; i < 16; ++i) {
      for (int j = i + 1; j < 16; ++j) edges.push_back({base + i, base + j, 1});
    }
  }
  edges.push_back({0, 16, 1});
  const CsrGraph g = make_csr(32, edges, std::vector<int>(32, 1));
  const BisectionResult r = bisect(g);
  EXPECT_EQ(r.cut_weight, 1);
}

TEST(Partitioner, RespectsVertexWeights) {
  // A path of 4 vertices with weights 3,1,1,3: balance needs {3,1}|{1,3}.
  const CsrGraph g = make_csr(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}, {3, 1, 1, 3});
  BisectionOptions opts;
  opts.coarsen_to = 16;
  const BisectionResult r = bisect(g, opts);
  EXPECT_EQ(r.weight[0], 4);
  EXPECT_EQ(r.weight[1], 4);
}

TEST(Partitioner, LargerRandomRegularStaysBalanced) {
  // Property: on a pseudo-random 4-regular graph the cut is positive and
  // the balance constraint holds.
  const int n = 500;
  std::vector<std::array<int, 3>> edges;
  for (int i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, 1});
    edges.push_back({i, (i * 7 + 3) % n == i ? (i + 2) % n : (i * 7 + 3) % n, 1});
  }
  const CsrGraph g = make_csr(n, edges, std::vector<int>(n, 1));
  const BisectionResult r = bisect(g);
  EXPECT_GT(r.cut_weight, 0);
  EXPECT_LE(std::abs(r.weight[0] - r.weight[1]),
            static_cast<std::int64_t>(0.05 * n) + 2);
  EXPECT_EQ(cut_weight(g, r.side), r.cut_weight);
}

// ------------------------------------- shard-assignment quality (paper scale)

// The sharded simulator partitions the router graph with partition_kway
// (vertex weight = per-router event work: 2 x endpoints + network degree).
// These tests pin the quality the sharding relies on, at the paper's
// system scales: near-balanced parts (load balance across worker cores)
// and a cut far below the total edge weight (cross-shard traffic bounded).
CsrGraph router_graph(const Topology& topo) {
  std::vector<std::array<int, 3>> edges;
  std::vector<int> vwgt(static_cast<std::size_t>(topo.num_routers()));
  for (int r = 0; r < topo.num_routers(); ++r) {
    vwgt[static_cast<std::size_t>(r)] =
        2 * topo.endpoints_of(r) + topo.network_degree(r);
    for (int n : topo.neighbors(r)) {
      if (n > r) edges.push_back({r, n, 1});
    }
  }
  return make_csr(topo.num_routers(), edges, std::move(vwgt));
}

void expect_quality_kway(const Topology& topo, int k, double max_cut_fraction) {
  const CsrGraph g = router_graph(topo);
  const KwayResult r = partition_kway(g, k);
  ASSERT_EQ(static_cast<int>(r.weights.size()), k);
  ASSERT_EQ(static_cast<int>(r.part.size()), g.num_vertices);

  // Validity: every vertex assigned, per-part weights consistent.
  std::int64_t total = 0;
  std::vector<std::int64_t> recount(k, 0);
  for (int v = 0; v < g.num_vertices; ++v) {
    ASSERT_GE(r.part[v], 0);
    ASSERT_LT(r.part[v], k);
    recount[r.part[v]] += g.vwgt[v];
    total += g.vwgt[v];
  }
  const double ideal = static_cast<double>(total) / k;
  for (int p = 0; p < k; ++p) {
    EXPECT_EQ(recount[p], r.weights[p]);
    // Balance: every part within 5% of the ideal share.
    EXPECT_NEAR(static_cast<double>(r.weights[p]), ideal, 0.05 * ideal)
        << "part " << p << " of " << k << " unbalanced";
  }

  // Cut sanity: recompute independently and bound it as a fraction of the
  // total edge weight. Diameter-2 graphs are expanders, so cuts are large
  // in absolute terms — but a partition that cut most edges would make
  // sharding pointless.
  std::int64_t cut = 0;
  std::int64_t edge_total = 0;
  for (int v = 0; v < g.num_vertices; ++v) {
    for (int e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const int u = g.adjncy[e];
      if (u < v) continue;  // count each undirected edge once
      edge_total += g.adjwgt[e];
      if (r.part[v] != r.part[u]) cut += g.adjwgt[e];
    }
  }
  EXPECT_EQ(cut, r.cut_weight);
  EXPECT_GT(cut, 0);
  EXPECT_LT(static_cast<double>(cut), max_cut_fraction * static_cast<double>(edge_total));
}

TEST(Partitioner, PaperScaleSlimFlyQ19FourWay) {
  // SF(q=19): 722 routers, the largest MMS instance near the paper's scale.
  expect_quality_kway(build_slim_fly(19), 4, 0.80);
}

TEST(Partitioner, PaperScaleMlfmFourWay) {
  // MLFM h=15 (the paper's full-scale configuration): the two-layer
  // structure gives the partitioner natural seams, so demand a lower cut.
  expect_quality_kway(build_mlfm(15), 4, 0.70);
}

TEST(Partitioner, PaperScaleOftFourWay) {
  // OFT k=12 (paper scale, 3 levels).
  expect_quality_kway(build_oft(12), 4, 0.80);
}

// ------------------------------------------------ bisection bandwidth (Fig. 4)

TEST(BisectionBandwidth, FatTree2IsFullBisection) {
  const BisectionBandwidth bb = approximate_bisection_bandwidth(build_fat_tree2(8));
  EXPECT_NEAR(bb.per_node, 1.0, 0.15);
}

TEST(BisectionBandwidth, MlfmIsAboutHalf) {
  // Fig. 4: MLFM limited to ~0.5 b per endpoint.
  const BisectionBandwidth bb = approximate_bisection_bandwidth(build_mlfm(7));
  EXPECT_GT(bb.per_node, 0.40);
  EXPECT_LT(bb.per_node, 0.70);
}

TEST(BisectionBandwidth, OftBeatsSlimFlyBeatsMlfm) {
  // Fig. 4 ordering at comparable scale: OFT > SF(floor) > MLFM. (Our
  // partitioner finds tighter OFT cuts than the paper's ~0.81-0.89 — the
  // heuristic value is an upper bound on true bisection — but the ranking
  // and the SF/MLFM levels match; see EXPERIMENTS.md.)
  const double oft = approximate_bisection_bandwidth(build_oft(10)).per_node;
  const double sf =
      approximate_bisection_bandwidth(build_slim_fly(11, SlimFlyP::kFloor)).per_node;
  const double sf_ceil =
      approximate_bisection_bandwidth(build_slim_fly(11, SlimFlyP::kCeil)).per_node;
  const double mlfm = approximate_bisection_bandwidth(build_mlfm(11)).per_node;
  EXPECT_GT(oft, sf);
  EXPECT_GT(sf, sf_ceil);  // ceil(p) over-subscribes and lowers per-node bisection
  EXPECT_GT(sf_ceil, mlfm);
  EXPECT_GT(oft, 0.68);
  EXPECT_GT(sf, 0.60);
  EXPECT_LT(mlfm, 0.60);
}

TEST(BisectionBandwidth, BalancedHalves) {
  const BisectionBandwidth bb = approximate_bisection_bandwidth(build_oft(6));
  const auto total = bb.nodes_side0 + bb.nodes_side1;
  EXPECT_EQ(total, build_oft(6).num_nodes());
  EXPECT_LE(std::abs(bb.nodes_side0 - bb.nodes_side1), total / 10);
}

}  // namespace
}  // namespace d2net
