// Tests for the analysis reports and the textual topology specs.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/topology_report.h"
#include "common/error.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"
#include "topology/spec.h"

namespace d2net {
namespace {

TEST(TopologyReport, OftNumbers) {
  const TopologyReport rep = analyze_topology(build_oft(4));
  EXPECT_EQ(rep.num_nodes, 104);
  EXPECT_EQ(rep.num_routers, 39);
  EXPECT_EQ(rep.node_diameter, 2);
  // The OFT graph is bipartite (L0 u L2 vs L1): a non-adjacent L0-L1 pair
  // sits at odd distance 3, so the *router* diameter exceeds the endpoint
  // diameter. Only endpoint-attached routers source traffic, so the
  // network is still "diameter two" in the paper's sense.
  EXPECT_EQ(rep.router_diameter, 3);
  EXPECT_NEAR(rep.ports_per_node, 3.0, 1e-9);
  EXPECT_NEAR(rep.links_per_node, 2.0, 1e-9);
  EXPECT_GT(rep.bisection.per_node, 0.3);
  EXPECT_EQ(rep.diversity_d2.max, 4);  // symmetric pairs
}

TEST(TopologyReport, SlimFlyMooreFraction) {
  const TopologyReport rep = analyze_topology(build_slim_fly(7));
  EXPECT_GT(rep.moore_fraction, 0.75);
  EXPECT_LT(rep.moore_fraction, 1.0);
  EXPECT_EQ(rep.router_diameter, 2);
}

TEST(TopologyReport, PrintsAllMetrics) {
  std::ostringstream os;
  print_topology_report(analyze_topology(build_mlfm(3)), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("MLFM"), std::string::npos);
  EXPECT_NE(text.find("bisection"), std::string::npos);
  EXPECT_NE(text.find("Moore"), std::string::npos);
}

TEST(DeadlockReportTest, AllThreeTopologiesPass) {
  for (const Topology& topo : {build_slim_fly(5), build_mlfm(4), build_oft(4)}) {
    const DeadlockReport rep = check_deadlock_freedom(topo);
    EXPECT_TRUE(rep.minimal_ok) << topo.name();
    EXPECT_TRUE(rep.indirect_ok) << topo.name();
    EXPECT_TRUE(rep.single_vc_cyclic) << topo.name();
  }
}

// -------------------------------------------------------------------- spec

TEST(Spec, BuildsEveryFamily) {
  EXPECT_EQ(build_topology_from_spec("sf:q=5").num_routers(), 50);
  EXPECT_EQ(build_topology_from_spec("sf:q=5,p=ceil").num_nodes(), 200);
  EXPECT_EQ(build_topology_from_spec("sf:q=5,p=2").num_nodes(), 100);
  EXPECT_EQ(build_topology_from_spec("mlfm:h=4").num_nodes(), 80);
  EXPECT_EQ(build_topology_from_spec("mlfm:h=4,l=2,p=3").num_nodes(), 30);
  EXPECT_EQ(build_topology_from_spec("oft:k=4").num_nodes(), 104);
  EXPECT_EQ(build_topology_from_spec("hyperx:r=12").num_nodes(), 100);
  EXPECT_EQ(build_topology_from_spec("ft2:r=8").num_nodes(), 32);
  EXPECT_EQ(build_topology_from_spec("ft3:r=8").num_nodes(), 128);
}

TEST(Spec, RejectsMalformed) {
  EXPECT_THROW(build_topology_from_spec("nope:q=5"), ArgumentError);
  EXPECT_THROW(build_topology_from_spec("sf"), ArgumentError);        // missing q
  EXPECT_THROW(build_topology_from_spec("sf:q"), ArgumentError);      // no value
  EXPECT_THROW(build_topology_from_spec("mlfm:x=4"), ArgumentError);  // wrong key
}

}  // namespace
}  // namespace d2net
