// Simulator edge cases: backpressure with tiny buffers, generic topologies
// (Fat-Trees, HyperX) through the engine, degraded networks with stretched
// diameters, fairness, and latency monotonicity.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "sim/experiment.h"
#include "topology/degrade.h"
#include "topology/fat_tree.h"
#include "topology/hyperx.h"
#include "topology/mlfm.h"
#include "topology/oft.h"
#include "topology/slim_fly.h"

namespace d2net {
namespace {

TEST(SimEdge, TinyBuffersStillDeliverAndThrottle) {
  // One packet of buffering per VC: heavy backpressure, but no deadlock and
  // no loss — throughput degrades gracefully.
  const Topology topo = build_mlfm(3);
  SimConfig cfg;
  cfg.buffer_bytes_per_port = 512;  // 2 packets per port
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 1.0, us(20), us(4));
  // 512 B cannot cover the ~150 ns credit round-trip at 100 Gb/s (~1.9 KB
  // bandwidth-delay product), so links run at a fraction of line rate —
  // but traffic still flows and nothing deadlocks.
  EXPECT_GT(r.accepted_throughput, 0.05);
  EXPECT_LT(r.accepted_throughput, 0.5);
}

TEST(SimEdge, BufferTooSmallForPacketIsRejected) {
  const Topology topo = build_mlfm(3);
  SimConfig cfg;
  cfg.buffer_bytes_per_port = 100;  // < one 256 B packet
  EXPECT_THROW(SimStack(topo, RoutingStrategy::kMinimal, cfg), ArgumentError);
}

TEST(SimEdge, FatTree2RunsAtFullBisection) {
  const Topology topo = build_fat_tree2(8);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.9, us(24), us(4));
  EXPECT_GT(r.accepted_throughput, 0.85);
}

TEST(SimEdge, FatTree3HandlesFourHopRoutes) {
  const Topology topo = build_fat_tree3(4);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.5, us(24), us(4));
  EXPECT_NEAR(r.accepted_throughput, 0.5, 0.05);
  EXPECT_GT(r.avg_hops, 2.0);  // mix of 2- and 4-hop routes
}

TEST(SimEdge, HyperXDiameterTwo) {
  const Topology topo = build_hyperx2d_balanced(9);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.8, us(24), us(4));
  EXPECT_GT(r.accepted_throughput, 0.75);
  EXPECT_LE(r.avg_hops, 2.0);
}

TEST(SimEdge, DegradedSlimFlyWithStretchedDiameter) {
  // Removing links stretches some minimal paths to 3 hops; the hop-indexed
  // VC provisioning must follow the new diameter automatically.
  const Topology topo = build_slim_fly(5);
  Rng rng(11);
  const DegradeResult deg = remove_random_links(topo, 40, rng);
  const MinimalTable table(deg.topo);
  EXPECT_GE(table.diameter(), 2);
  SimConfig cfg;
  SimStack stack(deg.topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(deg.topo.num_nodes());
  const OpenLoopResult r = stack.run_open_loop(uni, 0.3, us(20), us(4));
  EXPECT_NEAR(r.accepted_throughput, 0.3, 0.03);
}

TEST(SimEdge, LatencyIsMonotonicInLoadUnderUniform) {
  const Topology topo = build_oft(4);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  double last = 0.0;
  for (double load : {0.1, 0.4, 0.7, 0.95}) {
    const OpenLoopResult r = stack.run_open_loop(uni, load, us(20), us(4));
    EXPECT_GE(r.avg_latency_ns, last * 0.98) << load;  // allow sampling noise
    last = r.avg_latency_ns;
  }
}

TEST(SimEdge, PerRunIsolation) {
  // Back-to-back runs on the same stack must not leak state.
  const Topology topo = build_mlfm(3);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kValiant, cfg);
  UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult a = stack.run_open_loop(uni, 0.5, us(16), us(4));
  const OpenLoopResult heavy = stack.run_open_loop(uni, 1.0, us(16), us(4));
  const OpenLoopResult b = stack.run_open_loop(uni, 0.5, us(16), us(4));
  (void)heavy;
  EXPECT_DOUBLE_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_EQ(a.packets_injected, b.packets_injected);
}

TEST(SimEdge, InvalidRunParametersThrow) {
  const Topology topo = build_mlfm(3);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  EXPECT_THROW(stack.run_open_loop(uni, 0.0, us(10), us(1)), ArgumentError);
  EXPECT_THROW(stack.run_open_loop(uni, 1.5, us(10), us(1)), ArgumentError);
  EXPECT_THROW(stack.run_open_loop(uni, 0.5, us(10), us(20)), ArgumentError);
}

TEST(SimEdge, FractionMinimalReportsObliviousExtremes) {
  const Topology topo = build_oft(4);
  SimConfig cfg;
  UniformTraffic uni(topo.num_nodes());
  SimStack min_stack(topo, RoutingStrategy::kMinimal, cfg);
  EXPECT_DOUBLE_EQ(min_stack.run_open_loop(uni, 0.3, us(12), us(2)).fraction_minimal, 1.0);
  SimStack inr_stack(topo, RoutingStrategy::kValiant, cfg);
  // Valiant never routes minimally across the network; the small residue
  // is same-router traffic, which bypasses routing entirely.
  EXPECT_LT(inr_stack.run_open_loop(uni, 0.3, us(12), us(2)).fraction_minimal, 0.05);
}

TEST(SimEdge, SteadyStateIsStationary) {
  // The measurement window is long enough that doubling it moves accepted
  // throughput by well under 1% — the stationarity claim behind the scaled
  // 16 us default (DESIGN.md).
  const Topology topo = build_mlfm(4);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  UniformTraffic uni(topo.num_nodes());
  const OpenLoopResult short_run = stack.run_open_loop(uni, 0.8, us(16), us(4));
  const OpenLoopResult long_run = stack.run_open_loop(uni, 0.8, us(32), us(4));
  EXPECT_NEAR(short_run.accepted_throughput, long_run.accepted_throughput, 0.008);
  EXPECT_NEAR(short_run.avg_latency_ns, long_run.avg_latency_ns,
              0.05 * long_run.avg_latency_ns);
}

TEST(SimEdge, PacketTraceRecordsDeliveries) {
  const Topology topo = build_mlfm(3);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  PacketTraceSink trace;
  stack.sim().set_trace(&trace);
  auto shift = make_node_shift(topo.num_nodes(), topo.endpoints_of(0));
  const OpenLoopResult r = stack.run_open_loop(*shift, 0.1, us(16), us(4));
  // The trace holds every in-window delivery — the measured packets plus
  // the warmup-born carryover the latency statistics exclude.
  ASSERT_EQ(static_cast<std::int64_t>(trace.entries().size()),
            r.phases.delivered_measured + r.phases.delivered_carryover);
  std::int64_t window_born = 0;
  for (const PacketTraceEntry& e : trace.entries()) {
    window_born += e.gen_time >= us(4) ? 1 : 0;
  }
  EXPECT_EQ(window_born, r.packets_measured);
  for (const PacketTraceEntry& e : trace.entries()) {
    EXPECT_EQ(e.hops, 2);
    EXPECT_TRUE(e.minimal);
    EXPECT_GE(e.inject_time, e.gen_time);
    EXPECT_GT(e.eject_time, e.inject_time);
    EXPECT_EQ((e.dst_node - e.src_node + topo.num_nodes()) % topo.num_nodes(),
              topo.endpoints_of(0));
  }
  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_NE(os.str().find("latency_ns"), std::string::npos);
}

TEST(SimEdge, PacketTraceCapacityBounds) {
  const Topology topo = build_mlfm(3);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  PacketTraceSink trace(/*capacity=*/10);
  stack.sim().set_trace(&trace);
  UniformTraffic uni(topo.num_nodes());
  (void)stack.run_open_loop(uni, 0.5, us(16), us(2));
  EXPECT_EQ(trace.entries().size(), 10u);
  EXPECT_GT(trace.dropped(), 0);
}

TEST(SimEdge, CutThroughRemovesPerHopSerialization) {
  // Store-and-forward 2-hop latency: 4*(20.48 + 50) + 3*100 = 581.92 ns.
  // VCT keeps only the final-link serialization: 3*50 + (20.48+50) + 300
  // = 520.48 ns.
  const Topology topo = build_mlfm(3);
  SimConfig vct;
  vct.cut_through = true;
  SimStack stack(topo, RoutingStrategy::kMinimal, vct);
  auto shift = make_node_shift(topo.num_nodes(), topo.endpoints_of(0));
  const OpenLoopResult r = stack.run_open_loop(*shift, 0.01, us(40), us(4));
  ASSERT_GT(r.packets_measured, 100);
  EXPECT_NEAR(r.avg_latency_ns, 520.5, 12.0);
}

TEST(SimEdge, CutThroughKeepsSaturationBehavior) {
  const Topology topo = build_oft(4);
  UniformTraffic uni(topo.num_nodes());
  SimConfig sf_cfg;
  SimConfig vct_cfg;
  vct_cfg.cut_through = true;
  SimStack sf_stack(topo, RoutingStrategy::kMinimal, sf_cfg);
  SimStack vct_stack(topo, RoutingStrategy::kMinimal, vct_cfg);
  const OpenLoopResult a = sf_stack.run_open_loop(uni, 1.0, us(24), us(6));
  const OpenLoopResult b = vct_stack.run_open_loop(uni, 1.0, us(24), us(6));
  EXPECT_NEAR(a.accepted_throughput, b.accepted_throughput, 0.02);
  EXPECT_LT(b.avg_latency_ns, a.avg_latency_ns);  // strictly faster per hop
}

TEST(SimEdge, CutThroughRejectsSlowRouters) {
  const Topology topo = build_mlfm(3);
  SimConfig cfg;
  cfg.cut_through = true;
  cfg.router_latency = ns(10);  // < 20.48 ns packet serialization
  EXPECT_THROW(SimStack(topo, RoutingStrategy::kMinimal, cfg), ArgumentError);
}

TEST(SimEdge, SameRouterTrafficBypassesNetwork) {
  // A shift of 1 inside a p=7 router keeps most traffic router-local; the
  // network channels stay almost idle while throughput is full.
  const Topology topo = build_mlfm(7);
  SimConfig cfg;
  SimStack stack(topo, RoutingStrategy::kMinimal, cfg);
  auto shift = make_node_shift(topo.num_nodes(), 1);
  const OpenLoopResult r = stack.run_open_loop(*shift, 0.9, us(16), us(4));
  EXPECT_GT(r.accepted_throughput, 0.85);
  EXPECT_LT(r.avg_hops, 0.5);  // 6 of 7 pairs stay on their router
}

}  // namespace
}  // namespace d2net
